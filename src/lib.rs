//! Repository facade for the Nest scheduler reproduction.
//!
//! This crate re-exports the public API of [`nest_core`] so that the
//! repo-level examples and integration tests have a single import root.
//! Library users should depend on `nest-core` directly.

pub use nest_core::*;

/// The paper reproduced by this repository.
pub const PAPER: &str =
    "OS Scheduling with Nest: Keeping Tasks Close Together on Warm Cores (EuroSys 2022)";
