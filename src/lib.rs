#![deny(missing_docs)]

//! Repository facade for the Nest scheduler reproduction.
//!
//! This crate re-exports the public API of [`nest_core`] so that the
//! repo-level examples and integration tests have a single import root.
//! Library users should depend on `nest-core` directly.

pub use nest_core::*;

/// The scenario layer: registries and the declarative [`Scenario`]
/// (`nest-sim`'s engine). See `DESIGN.md` §4.3.
///
/// [`Scenario`]: nest_scenario::Scenario
pub use nest_scenario as scenario;

/// The observability layer: trace capture, Chrome-trace export, and
/// decision metrics (`nest-sim trace`/`stats`). See `PROFILING.md`.
pub use nest_obs as obs;

/// The paper reproduced by this repository.
pub const PAPER: &str =
    "OS Scheduling with Nest: Keeping Tasks Close Together on Warm Cores (EuroSys 2022)";
