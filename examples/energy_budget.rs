//! Energy study: does concentrating work on warm cores cost or save
//! energy? Runs a DaCapo-style server application under every
//! scheduler/governor combination and reports joules and
//! joules-per-unit-of-work — the paper's §5.2 energy discussion.
//!
//! Run with: `cargo run --release --example energy_budget`
//!
//! The energy lens is one field on the result; sweeping configurations
//! is just a loop over policies and governors:
//!
//! ```no_run
//! use nest_repro::{presets, run_once, Governor, PolicyKind, SimConfig};
//! use nest_workloads::dacapo::Dacapo;
//!
//! let cfg = SimConfig::new(presets::xeon_6130(2))
//!     .policy(PolicyKind::Nest)
//!     .governor(Governor::Schedutil);
//! let r = run_once(&cfg, &Dacapo::named("graphchi-eval"));
//! println!("{:.1} J over {:.2} s → {:.1} W", r.energy_j, r.time_s, r.energy_j / r.time_s);
//! ```

use nest_repro::{presets, run_once, Governor, PolicyKind, SimConfig};
use nest_workloads::dacapo::Dacapo;

fn main() {
    let machine = presets::xeon_6130(2);
    let workload = Dacapo::named("graphchi-eval");
    println!(
        "graphchi-eval on {} — energy under each configuration:\n",
        machine.name
    );
    println!(
        "{:<14} {:>9} {:>11} {:>14}",
        "config", "time(s)", "energy(J)", "avg power(W)"
    );
    let mut base: Option<(f64, f64)> = None;
    for governor in [Governor::Schedutil, Governor::Performance] {
        for policy in [PolicyKind::Cfs, PolicyKind::Nest] {
            let cfg = SimConfig::new(machine.clone())
                .policy(policy.clone())
                .governor(governor);
            let r = run_once(&cfg, &workload);
            let label = format!("{} {}", policy.label(), governor.short_name());
            println!(
                "{:<14} {:>9.2} {:>11.0} {:>14.1}",
                label,
                r.time_s,
                r.energy_j,
                r.energy_j / r.time_s
            );
            if base.is_none() {
                base = Some((r.time_s, r.energy_j));
            }
        }
    }
    let (bt, be) = base.unwrap();
    println!(
        "\nBaseline CFS-schedutil: {bt:.2}s, {be:.0}J. The paper's point:\n\
         higher frequencies draw more power, but finishing sooner can\n\
         still reduce total CPU energy — check the energy column."
    );
}
