//! Quickstart: simulate one workload under CFS and under Nest and compare.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! The whole API surface this needs is three calls — build a config,
//! run a workload, read the result:
//!
//! ```no_run
//! use nest_repro::{presets, run_once, PolicyKind, SimConfig};
//! use nest_workloads::configure::Configure;
//!
//! let cfg = SimConfig::new(presets::xeon_5218()).policy(PolicyKind::Nest);
//! let result = run_once(&cfg, &Configure::named("gdb"));
//! println!("{:.3} s, {:.1} J", result.time_s, result.energy_j);
//! ```

use nest_repro::{presets, run_once, Governor, PolicyKind, SimConfig};
use nest_workloads::configure::Configure;

fn main() {
    // Pick a machine from the paper's Table 2 …
    let machine = presets::xeon_5218();
    // … and a workload from its evaluation (the gdb configure script).
    let workload = Configure::named("gdb");

    println!("machine: {} | workload: configure-gdb", machine.name);
    println!();

    let mut baseline = None;
    for policy in [PolicyKind::Cfs, PolicyKind::Nest] {
        let cfg = SimConfig::new(machine.clone())
            .policy(policy.clone())
            .governor(Governor::Schedutil)
            .seed(1);
        let r = run_once(&cfg, &workload);
        println!(
            "{:<5} schedutil: {:.3}s, {:.1} J, {} tasks, underload/s {:.2}, \
             {:.0}% of busy time in the top frequency buckets",
            policy.label(),
            r.time_s,
            r.energy_j,
            r.total_tasks,
            r.underload.underload_per_second(),
            100.0 * r.freq.top_fraction(2),
        );
        match baseline {
            None => baseline = Some(r.time_s),
            Some(base) => {
                println!(
                    "\nNest speedup vs CFS: {:+.1}%  (paper reports 10%-2x \
                     for workloads of this class)",
                    nest_metrics::speedup_pct(base, r.time_s)
                );
            }
        }
    }
}
