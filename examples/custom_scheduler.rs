//! Extending the framework: implement a custom scheduling policy (a
//! deliberately naive "random idle core" scheduler) and race it against
//! CFS and Nest on the same workload — showing how the public policy
//! trait composes with the engine.
//!
//! Run with: `cargo run --release --example custom_scheduler`
//!
//! A policy is four [`SchedPolicy`](nest_sched::SchedPolicy) hooks —
//! place a fork, place a wakeup, react to an idle core, react to a
//! tick. The heart of this example's "random idle core" placement:
//!
//! ```no_run
//! use nest_sched::{KernelState, Placement, SchedEnv};
//! use nest_simcore::{CoreId, PlacementPath};
//!
//! fn place(k: &KernelState, env: &mut SchedEnv<'_>) -> Placement {
//!     let n = env.topo.n_cores() as u64;
//!     let core = CoreId::from_index(env.rng.uniform_u64(0, n - 1) as usize);
//!     Placement::simple(core, PlacementPath::CfsFork)
//! }
//! ```

use nest_engine::Engine;
use nest_repro::{presets, EngineConfig, Workload};
use nest_sched::{
    Cfs, IdleAction, IdleReason, KernelState, Nest, Placement, SchedEnv, SchedPolicy,
};
use nest_simcore::{CoreId, PlacementPath, TaskId};
use nest_workloads::configure::Configure;

/// Places every task on a uniformly random idle core — maximal dispersal,
/// the exact opposite of Nest's core reuse.
struct RandomPlacement;

impl RandomPlacement {
    fn pick(&self, k: &KernelState, env: &mut SchedEnv<'_>) -> CoreId {
        let n = env.topo.n_cores();
        // Try a few random probes, then fall back to a linear scan.
        for _ in 0..8 {
            let c = CoreId::from_index(env.rng.uniform_u64(0, n as u64 - 1) as usize);
            if k.core(c).is_idle() {
                return c;
            }
        }
        env.topo
            .cores()
            .find(|&c| k.core(c).is_idle())
            .unwrap_or(CoreId(0))
    }
}

impl SchedPolicy for RandomPlacement {
    fn name(&self) -> &'static str {
        "Random"
    }

    fn select_core_fork(
        &mut self,
        k: &mut KernelState,
        env: &mut SchedEnv<'_>,
        _task: TaskId,
        _parent_core: CoreId,
    ) -> Placement {
        Placement::simple(self.pick(k, env), PlacementPath::CfsFork)
    }

    fn select_core_wakeup(
        &mut self,
        k: &mut KernelState,
        env: &mut SchedEnv<'_>,
        _task: TaskId,
        _waker_core: CoreId,
    ) -> Placement {
        Placement::simple(self.pick(k, env), PlacementPath::CfsWakeup)
    }

    fn on_core_idle(
        &mut self,
        _k: &mut KernelState,
        _env: &mut SchedEnv<'_>,
        _core: CoreId,
        _reason: IdleReason,
    ) -> IdleAction {
        IdleAction::default()
    }

    fn on_tick(
        &mut self,
        _k: &mut KernelState,
        _env: &mut SchedEnv<'_>,
        _core: CoreId,
    ) -> Option<CoreId> {
        None
    }
}

fn run(policy: Box<dyn SchedPolicy>) -> f64 {
    let machine = presets::xeon_5218();
    let mut engine = Engine::new(EngineConfig::new(machine), policy);
    let mut rng = nest_simcore::SimRng::new(9);
    let name = engine.policy_name();
    for t in Configure::named("imagemagick").build(&mut engine, &mut rng) {
        engine.spawn(t);
    }
    let out = engine.run();
    let secs = out.finished_at.as_secs_f64();
    println!("{name:<8} {secs:.3}s  ({:.0} J)", out.energy_joules);
    secs
}

fn main() {
    println!("imagemagick configure on the 5218, three policies:\n");
    let random = run(Box::new(RandomPlacement));
    let cfs = run(Box::new(Cfs::new()));
    let nest = run(Box::new(Nest::new(64)));
    println!(
        "\nNest vs CFS: {:+.1}% | CFS vs Random: {:+.1}%",
        nest_metrics::speedup_pct(cfs, nest),
        nest_metrics::speedup_pct(random, cfs),
    );
    println!("Even CFS's partial reuse beats random dispersal; Nest's");
    println!("deliberate reuse beats both.");
}
