//! Warm cores under the microscope: run a custom fork-heavy workload and
//! trace exactly where tasks land and at which frequencies, for CFS vs
//! Nest — a miniature version of the paper's Figure 2 built from the
//! public API.
//!
//! Run with: `cargo run --release --example warm_cores`
//!
//! Tracing is one builder call; the trace then answers "which cores,
//! at which frequencies":
//!
//! ```no_run
//! use nest_repro::{presets, run_once, PolicyKind, SimConfig};
//! use nest_workloads::configure::Configure;
//!
//! let cfg = SimConfig::new(presets::xeon_5218())
//!     .policy(PolicyKind::Nest)
//!     .with_trace();
//! let r = run_once(&cfg, &Configure::named("gdb"));
//! let trace = r.trace.expect("trace requested");
//! println!("cores touched: {}", trace.cores_used().len());
//! ```

use nest_repro::{presets, run_once, PolicyKind, SimConfig, Workload};
use nest_simcore::{Action, SimRng, SimSetup, TaskSpec};

/// A shell-script-like workload: 100 sequential short jobs, each forked
/// and waited for — the pattern that makes CFS disperse tasks onto cold
/// cores.
struct ShellScript;

impl Workload for ShellScript {
    fn name(&self) -> String {
        "shell-script".into()
    }

    fn build(&self, _setup: &mut dyn SimSetup, _rng: &mut SimRng) -> Vec<TaskSpec> {
        let mut script = Vec::new();
        for i in 0..100 {
            script.push(Action::Compute { cycles: 1_500_000 }); // shell work
            script.push(Action::Fork {
                child: TaskSpec::script(
                    format!("job{i}"),
                    vec![Action::Compute {
                        cycles: 9_000_000, // ~3 ms at 3 GHz
                    }],
                ),
            });
            script.push(Action::WaitChildren);
        }
        vec![TaskSpec::script("sh", script)]
    }
}

fn main() {
    let machine = presets::xeon_5218();
    println!("One shell script, 100 forked jobs, on a {}:", machine.name);
    for policy in [PolicyKind::Cfs, PolicyKind::Nest] {
        let cfg = SimConfig::new(machine.clone())
            .policy(policy.clone())
            .with_trace();
        let r = run_once(&cfg, &ShellScript);
        let trace = r.trace.expect("trace requested");
        println!("\n=== {} ===", policy.label());
        println!(
            "time {:.3}s | cores touched: {} | placements: {} over {} cores",
            r.time_s,
            trace.cores_used().len(),
            r.placements.total(),
            r.placements.distinct_cores(),
        );
        println!(
            "busy time above 3.6 GHz: {:.1}%",
            100.0 * trace.busy_fraction_in(3.6, 4.0)
        );
        println!(
            "{}",
            trace.render_ascii(r.time_s as u64 * 10_000_000 / 4 + 1, 3.9)
        );
    }
    println!("Nest should reuse one or two warm cores at the top turbo");
    println!("frequency; CFS walks across cold cores in the lower range.");
}
