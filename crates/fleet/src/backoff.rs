//! Deterministic capped exponential backoff.
//!
//! The delay before retry `k` of a request is `min(cap, base·2^(k-1))`
//! scaled by a jitter factor in `[0.5, 1.0]` drawn from a [`SimRng`]
//! seeded by `(seed, request id, attempt)`. No shared RNG stream is
//! consumed: the schedule is a pure function of those three values, so it
//! is byte-identical whatever else the run interleaves (the same recipe
//! `nest-serve` uses for arrival plans).

use nest_simcore::rng::{hash_str, mix64};
use nest_simcore::SimRng;

/// Salt folded into the seed so backoff draws are independent of every
/// other consumer of the cell seed.
const BACKOFF_STREAM_SALT: u64 = 0xBAC0_FF5A_17ED_0001;

/// A deterministic backoff schedule generator.
#[derive(Clone, Debug)]
pub struct BackoffSampler {
    base_ns: u64,
    cap_ns: u64,
    seed: u64,
}

impl BackoffSampler {
    /// Creates a sampler for the given base delay, cap, and cell seed.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < base_ns <= cap_ns`.
    pub fn new(base_ns: u64, cap_ns: u64, seed: u64) -> BackoffSampler {
        assert!(base_ns > 0 && base_ns <= cap_ns, "need 0 < base <= cap");
        BackoffSampler {
            base_ns,
            cap_ns,
            seed: mix64(seed, BACKOFF_STREAM_SALT),
        }
    }

    /// The delay before retry `attempt` (1-based) of `request_id`.
    /// Always in `[1, cap]`; a pure function of the constructor seed and
    /// the two arguments.
    pub fn delay_ns(&self, request_id: &str, attempt: u32) -> u64 {
        assert!(attempt >= 1, "attempt numbering is 1-based");
        let doublings = (attempt - 1).min(20);
        let raw = self.base_ns.saturating_mul(1u64 << doublings);
        let capped = raw.min(self.cap_ns);
        // Jitter in [capped/2, capped]: decorrelates retry storms without
        // ever exceeding the cap.
        let mut rng = SimRng::new(mix64(
            mix64(self.seed, hash_str(request_id)),
            attempt as u64,
        ));
        let lo = (capped / 2).max(1);
        rng.uniform_u64(lo, capped.max(1))
    }

    /// The full schedule for `retries` retries of one request.
    pub fn schedule(&self, request_id: &str, retries: u32) -> Vec<u64> {
        (1..=retries)
            .map(|k| self.delay_ns(request_id, k))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_are_deterministic_and_capped() {
        let s = BackoffSampler::new(1_000_000, 20_000_000, 42);
        for attempt in 1..=8 {
            let d = s.delay_ns("req:0:17", attempt);
            assert_eq!(d, s.delay_ns("req:0:17", attempt), "pure function");
            assert!((1..=20_000_000).contains(&d), "attempt {attempt}: {d}");
        }
    }

    #[test]
    fn delays_grow_then_saturate() {
        let s = BackoffSampler::new(1_000_000, 8_000_000, 1);
        // The jitter floor of attempt k is base·2^(k-1)/2; by attempt 4
        // the cap binds and the floor stops growing.
        let floor = |attempt: u32| {
            (0..64)
                .map(|i| s.delay_ns(&format!("req:0:{i}"), attempt))
                .min()
                .unwrap()
        };
        assert!(floor(3) > floor(1));
        let d = s.delay_ns("req:0:0", 9);
        assert!((4_000_000..=8_000_000).contains(&d), "saturated: {d}");
    }

    #[test]
    fn different_requests_decorrelate() {
        let s = BackoffSampler::new(1_000_000, 20_000_000, 7);
        let a = s.schedule("req:0:1", 4);
        let b = s.schedule("req:0:2", 4);
        assert_ne!(a, b);
    }

    #[test]
    fn huge_attempt_counts_do_not_overflow() {
        let s = BackoffSampler::new(u64::MAX / 2, u64::MAX, 3);
        let d = s.delay_ns("r", u32::MAX);
        // The real assertion is that the call returns at all (no shift or
        // multiply overflow panics) and the jitter floor holds.
        assert!(d >= 1);
    }
}
