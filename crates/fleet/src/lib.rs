#![deny(missing_docs)]

//! Multi-host fleet front-end for the Nest reproduction.
//!
//! The paper keeps tasks on *warm cores* within one machine; this crate
//! supplies the cluster-scale vocabulary for asking the same question
//! across machines: a `fleet:` spec (hosts, load-balancing policy,
//! client-side robustness knobs, host-level fault clauses), pure
//! load-balancer choice functions, and a deterministic
//! capped-exponential-backoff sampler. The co-simulation driver that
//! executes a fleet lives in `nest-core` (it owns the engine); this crate
//! holds only plain data and pure functions so every layer — scenario
//! parsing, the driver, the figure binaries — shares one definition.
//!
//! * [`FleetSpec`] — the `fleet:hosts=4,lb=warmth,retry=2,timeout=50ms`
//!   grammar: parsing, validation, canonical rendering.
//! * [`choose_host`] — round-robin / least-outstanding / warmth-aware
//!   host selection over [`HostView`]s.
//! * [`BackoffSampler`] — capped exponential backoff with deterministic
//!   jitter: the delay is a pure function of `(seed, request id,
//!   attempt)`, so retry schedules are byte-identical at any `NEST_JOBS`.

pub mod backoff;
pub mod lb;
pub mod spec;

pub use backoff::BackoffSampler;
pub use lb::{choose_host, HostView};
pub use spec::{FleetError, FleetSpec, HedgeMode, HostDegrade, HostDown, LbPolicy};
