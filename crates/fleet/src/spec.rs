//! The `fleet:` spec: hosts, balancing policy, robustness knobs, and
//! host-level fault clauses.
//!
//! A fleet spec is the first `+`-part of a workload string:
//!
//! ```text
//! fleet:hosts=4,lb=warmth,retry=2,timeout=50ms,hedge=p95+serve:rate=800
//! ```
//!
//! Knobs at their default drop out of the canonical rendering (the
//! workload-registry convention), so equivalent specs share one cache
//! key. Durations use the `nest-serve` suffix grammar (`50ms`, `2s`).

use nest_serve::{format_duration, parse_duration};

/// Default host count.
pub const DEFAULT_HOSTS: u32 = 2;
/// Default per-attempt timeout (50 ms).
pub const DEFAULT_TIMEOUT_NS: u64 = 50_000_000;
/// Default backoff base delay (1 ms).
pub const DEFAULT_BACKOFF_NS: u64 = 1_000_000;
/// Default backoff cap (20 ms).
pub const DEFAULT_CAP_NS: u64 = 20_000_000;
/// Default retry budget per request.
pub const DEFAULT_RETRY: u32 = 1;
/// Hard ceiling on the host count (each host is a full engine cell).
pub const MAX_HOSTS: u32 = 16;

/// A malformed fleet parameter: which knob, and why.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FleetError {
    /// The offending parameter (e.g. `"hostdown"`).
    pub param: String,
    /// What was wrong with it.
    pub reason: String,
}

impl FleetError {
    fn new(param: &str, reason: impl Into<String>) -> FleetError {
        FleetError {
            param: param.to_string(),
            reason: reason.into(),
        }
    }
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fleet parameter \"{}\": {}", self.param, self.reason)
    }
}

impl std::error::Error for FleetError {}

/// How the balancer picks a host for an attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum LbPolicy {
    /// Rotate over eligible hosts.
    #[default]
    RoundRobin,
    /// Fewest outstanding requests (ties to the lowest index).
    LeastOutstanding,
    /// Largest primary nest — route to the *warmest* host (ties to the
    /// least outstanding, then the lowest index).
    Warmth,
}

impl LbPolicy {
    /// The registry key (`rr`, `leastq`, `warmth`).
    pub fn key(&self) -> &'static str {
        match self {
            LbPolicy::RoundRobin => "rr",
            LbPolicy::LeastOutstanding => "leastq",
            LbPolicy::Warmth => "warmth",
        }
    }

    /// Parses a registry key.
    pub fn from_key(key: &str) -> Option<LbPolicy> {
        match key {
            "rr" => Some(LbPolicy::RoundRobin),
            "leastq" => Some(LbPolicy::LeastOutstanding),
            "warmth" => Some(LbPolicy::Warmth),
            _ => None,
        }
    }
}

/// When a duplicate (hedged) attempt launches.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum HedgeMode {
    /// Never hedge.
    #[default]
    Off,
    /// Hedge after the running p95 of observed request latencies.
    P95,
    /// Hedge after a fixed delay.
    After(u64),
}

/// A host-crash clause: `hostdown=K@TIME[:DUR]`. At `TIME`, the first `K`
/// hosts crash (all warmth and in-flight work lost); after `DUR` they
/// restart *cold*. Without `DUR` they stay down for the rest of the run.
///
/// Crashing the *lowest*-indexed hosts is deliberate: every balancer
/// breaks ties toward low indices, so host 0 is the busiest — and under
/// `lb=warmth` the warmest — host in the fleet. Killing it is the
/// worst-case failover, which is what a failover figure should show.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HostDown {
    /// How many hosts crash (the lowest-indexed ones, deterministically).
    pub count: u32,
    /// Crash onset, nanoseconds since run start.
    pub at_ns: u64,
    /// Downtime before the cold restart; `None` = never restarts.
    pub dur_ns: Option<u64>,
}

/// A per-host degraded mode: `degrade=hK:F@TIME[:DUR]` throttles every
/// socket of host `K` by factor `F` (via the existing `nest-faults`
/// throttle clause) starting at `TIME`, for `DUR` (or the rest of the
/// run). Several clauses join with `;`.
#[derive(Clone, Debug, PartialEq)]
pub struct HostDegrade {
    /// Which host degrades.
    pub host: u32,
    /// Frequency cap factor in `(0, 1]`.
    pub factor: f64,
    /// Onset, nanoseconds since run start.
    pub at_ns: u64,
    /// Window length; `None` = the rest of the run.
    pub dur_ns: Option<u64>,
}

/// A fully resolved `fleet:` spec — plain data, cheap to clone.
#[derive(Clone, Debug, PartialEq)]
pub struct FleetSpec {
    /// Number of per-host simulations.
    pub hosts: u32,
    /// Load-balancing policy.
    pub lb: LbPolicy,
    /// Retry budget per request (re-routed to an untried host).
    pub retry: u32,
    /// Per-attempt timeout.
    pub timeout_ns: u64,
    /// Backoff base delay (doubles per retry).
    pub backoff_ns: u64,
    /// Backoff delay cap.
    pub cap_ns: u64,
    /// Hedged-request mode.
    pub hedge: HedgeMode,
    /// SLO-aware load shedding: avoid hosts whose p99 estimate breaches
    /// the SLO, and shed the request when every live host is browned out.
    pub shed: bool,
    /// Host-crash clause.
    pub down: Option<HostDown>,
    /// Per-host degraded-mode clauses.
    pub degrade: Vec<HostDegrade>,
}

impl Default for FleetSpec {
    fn default() -> FleetSpec {
        FleetSpec {
            hosts: DEFAULT_HOSTS,
            lb: LbPolicy::default(),
            retry: DEFAULT_RETRY,
            timeout_ns: DEFAULT_TIMEOUT_NS,
            backoff_ns: DEFAULT_BACKOFF_NS,
            cap_ns: DEFAULT_CAP_NS,
            hedge: HedgeMode::default(),
            shed: false,
            down: None,
            degrade: Vec::new(),
        }
    }
}

fn parse_dur(param: &str, s: &str) -> Result<u64, FleetError> {
    parse_duration(s)
        .ok_or_else(|| FleetError::new(param, format!("\"{s}\" is not a duration like 50ms")))
}

/// Parses `K@TIME[:DUR]`.
fn parse_hostdown(v: &str) -> Result<HostDown, FleetError> {
    let p = "hostdown";
    let (count, when) = v
        .split_once('@')
        .ok_or_else(|| FleetError::new(p, "expected K@TIME[:DUR], e.g. 1@250ms:250ms"))?;
    let count: u32 = count
        .parse()
        .map_err(|_| FleetError::new(p, format!("\"{count}\" is not a host count")))?;
    let (at, dur) = match when.split_once(':') {
        Some((at, dur)) => (parse_dur(p, at)?, Some(parse_dur(p, dur)?)),
        None => (parse_dur(p, when)?, None),
    };
    if count == 0 {
        return Err(FleetError::new(p, "at least one host must crash"));
    }
    Ok(HostDown {
        count,
        at_ns: at,
        dur_ns: dur,
    })
}

/// Parses one `hK:F@TIME[:DUR]` clause.
fn parse_degrade(clause: &str) -> Result<HostDegrade, FleetError> {
    let p = "degrade";
    let err = || FleetError::new(p, "expected hK:F@TIME[:DUR], e.g. h1:0.5@200ms:300ms");
    let rest = clause.strip_prefix('h').ok_or_else(err)?;
    let (host, rest) = rest.split_once(':').ok_or_else(err)?;
    let host: u32 = host.parse().map_err(|_| err())?;
    let (factor, when) = rest.split_once('@').ok_or_else(err)?;
    let factor: f64 = factor.parse().map_err(|_| err())?;
    if !(factor > 0.0 && factor <= 1.0) {
        return Err(FleetError::new(p, "factor must be in (0, 1]"));
    }
    let (at, dur) = match when.split_once(':') {
        Some((at, dur)) => (parse_dur(p, at)?, Some(parse_dur(p, dur)?)),
        None => (parse_dur(p, when)?, None),
    };
    Ok(HostDegrade {
        host,
        factor,
        at_ns: at,
        dur_ns: dur,
    })
}

impl FleetSpec {
    /// Builds a spec from the shared grammar's `key=value` pairs (the
    /// scenario layer splits the string; this validates the semantics).
    pub fn from_params(params: &[(String, String)]) -> Result<FleetSpec, FleetError> {
        let mut s = FleetSpec::default();
        for (k, v) in params {
            match k.as_str() {
                "hosts" => {
                    s.hosts = v
                        .parse()
                        .map_err(|_| FleetError::new(k, "expected a host count"))?
                }
                "lb" => {
                    s.lb = LbPolicy::from_key(v)
                        .ok_or_else(|| FleetError::new(k, "one of rr|leastq|warmth"))?
                }
                "retry" => {
                    s.retry = v
                        .parse()
                        .map_err(|_| FleetError::new(k, "expected a retry count"))?
                }
                "timeout" => s.timeout_ns = parse_dur(k, v)?,
                "backoff" => s.backoff_ns = parse_dur(k, v)?,
                "cap" => s.cap_ns = parse_dur(k, v)?,
                "hedge" => {
                    s.hedge = match v.as_str() {
                        "off" => HedgeMode::Off,
                        "p95" => HedgeMode::P95,
                        other => HedgeMode::After(parse_dur(k, other)?),
                    }
                }
                "shed" => {
                    s.shed = match v.as_str() {
                        "on" => true,
                        "off" => false,
                        _ => return Err(FleetError::new(k, "on|off")),
                    }
                }
                "hostdown" => s.down = Some(parse_hostdown(v)?),
                "degrade" => {
                    s.degrade = v
                        .split(';')
                        .map(parse_degrade)
                        .collect::<Result<Vec<_>, _>>()?
                }
                _ => {
                    return Err(FleetError::new(
                        k,
                        "unknown; valid: hosts, lb, retry, timeout, backoff, cap, \
                         hedge, shed, hostdown, degrade",
                    ))
                }
            }
        }
        s.validate()?;
        Ok(s)
    }

    /// Checks cross-knob consistency.
    pub fn validate(&self) -> Result<(), FleetError> {
        if self.hosts == 0 || self.hosts > MAX_HOSTS {
            return Err(FleetError::new(
                "hosts",
                format!("must be 1..={MAX_HOSTS} (each host is a full engine cell)"),
            ));
        }
        if self.retry > 10 {
            return Err(FleetError::new("retry", "at most 10 retries per request"));
        }
        if self.timeout_ns == 0 {
            return Err(FleetError::new("timeout", "must be positive"));
        }
        if self.backoff_ns == 0 {
            return Err(FleetError::new("backoff", "must be positive"));
        }
        if self.cap_ns < self.backoff_ns {
            return Err(FleetError::new("cap", "must be at least the backoff base"));
        }
        if let Some(d) = &self.down {
            if d.count >= self.hosts {
                return Err(FleetError::new(
                    "hostdown",
                    "must leave at least one host alive",
                ));
            }
        }
        for d in &self.degrade {
            if d.host >= self.hosts {
                return Err(FleetError::new(
                    "degrade",
                    format!("host h{} does not exist (hosts={})", d.host, self.hosts),
                ));
            }
        }
        Ok(())
    }

    /// The canonical spec string: `fleet` plus only the knobs that differ
    /// from the defaults, in declaration order.
    pub fn canonical(&self) -> String {
        let base = FleetSpec::default();
        let mut parts = Vec::new();
        if self.hosts != base.hosts {
            parts.push(format!("hosts={}", self.hosts));
        }
        if self.lb != base.lb {
            parts.push(format!("lb={}", self.lb.key()));
        }
        if self.retry != base.retry {
            parts.push(format!("retry={}", self.retry));
        }
        if self.timeout_ns != base.timeout_ns {
            parts.push(format!("timeout={}", format_duration(self.timeout_ns)));
        }
        if self.backoff_ns != base.backoff_ns {
            parts.push(format!("backoff={}", format_duration(self.backoff_ns)));
        }
        if self.cap_ns != base.cap_ns {
            parts.push(format!("cap={}", format_duration(self.cap_ns)));
        }
        match self.hedge {
            HedgeMode::Off => {}
            HedgeMode::P95 => parts.push("hedge=p95".to_string()),
            HedgeMode::After(ns) => parts.push(format!("hedge={}", format_duration(ns))),
        }
        if self.shed {
            parts.push("shed=on".to_string());
        }
        if let Some(d) = &self.down {
            let mut clause = format!("hostdown={}@{}", d.count, format_duration(d.at_ns));
            if let Some(dur) = d.dur_ns {
                clause.push(':');
                clause.push_str(&format_duration(dur));
            }
            parts.push(clause);
        }
        if !self.degrade.is_empty() {
            let clauses: Vec<String> = self
                .degrade
                .iter()
                .map(|d| {
                    let mut c = format!("h{}:{}@{}", d.host, d.factor, format_duration(d.at_ns));
                    if let Some(dur) = d.dur_ns {
                        c.push(':');
                        c.push_str(&format_duration(dur));
                    }
                    c
                })
                .collect();
            parts.push(format!("degrade={}", clauses.join(";")));
        }
        if parts.is_empty() {
            "fleet".to_string()
        } else {
            format!("fleet:{}", parts.join(","))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs(s: &[(&str, &str)]) -> Vec<(String, String)> {
        s.iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn defaults_render_bare() {
        let s = FleetSpec::from_params(&[]).unwrap();
        assert_eq!(s, FleetSpec::default());
        assert_eq!(s.canonical(), "fleet");
    }

    #[test]
    fn full_spec_round_trips() {
        let s = FleetSpec::from_params(&pairs(&[
            ("hosts", "4"),
            ("lb", "warmth"),
            ("retry", "2"),
            ("timeout", "50ms"),
            ("hedge", "p95"),
            ("shed", "on"),
            ("hostdown", "1@250ms:250ms"),
            ("degrade", "h1:0.5@200ms:300ms"),
        ]))
        .unwrap();
        assert_eq!(s.hosts, 4);
        assert_eq!(s.lb, LbPolicy::Warmth);
        assert_eq!(s.retry, 2);
        assert_eq!(s.hedge, HedgeMode::P95);
        assert!(s.shed);
        let d = s.down.as_ref().unwrap();
        assert_eq!(
            (d.count, d.at_ns, d.dur_ns),
            (1, 250_000_000, Some(250_000_000))
        );
        assert_eq!(s.degrade.len(), 1);
        assert_eq!(s.degrade[0].host, 1);
        assert_eq!(s.degrade[0].factor, 0.5);
        // timeout=50ms is the default, so it canonicalizes away.
        assert_eq!(
            s.canonical(),
            "fleet:hosts=4,lb=warmth,retry=2,hedge=p95,shed=on,\
             hostdown=1@250ms:250ms,degrade=h1:0.5@200ms:300ms"
        );
    }

    #[test]
    fn hedge_accepts_fixed_delay() {
        let s = FleetSpec::from_params(&pairs(&[("hedge", "10ms")])).unwrap();
        assert_eq!(s.hedge, HedgeMode::After(10_000_000));
        assert_eq!(s.canonical(), "fleet:hedge=10ms");
    }

    #[test]
    fn validation_rejects_nonsense() {
        for (k, v, needle) in [
            ("hosts", "0", "1..="),
            ("hosts", "99", "1..="),
            ("retry", "11", "at most 10"),
            ("timeout", "0ms", "positive"),
            ("cap", "1us", "at least the backoff base"),
            ("lb", "random", "rr|leastq|warmth"),
            ("hostdown", "2@1ms", "at least one host alive"),
            ("hostdown", "0@1ms", "at least one host must crash"),
            ("degrade", "h7:0.5@1ms", "does not exist"),
            ("degrade", "h0:1.5@1ms", "(0, 1]"),
            ("frobnicate", "1", "unknown"),
        ] {
            let e = FleetSpec::from_params(&pairs(&[(k, v)])).unwrap_err();
            assert!(e.to_string().contains(needle), "{k}={v}: {e}");
        }
    }

    #[test]
    fn multiple_degrade_clauses_join_with_semicolon() {
        let s = FleetSpec::from_params(&pairs(&[
            ("hosts", "3"),
            ("degrade", "h1:0.5@200ms;h2:0.8@100ms:50ms"),
        ]))
        .unwrap();
        assert_eq!(s.degrade.len(), 2);
        assert_eq!(
            s.canonical(),
            "fleet:hosts=3,degrade=h1:0.5@200ms;h2:0.8@100ms:50ms"
        );
    }
}
