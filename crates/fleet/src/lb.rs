//! Pure load-balancer choice functions.
//!
//! The co-simulation driver snapshots each host into a [`HostView`] and
//! asks [`choose_host`] where the next attempt goes. Keeping the choice a
//! pure function of the views (plus the round-robin cursor) makes the
//! routing decisions unit-testable and trivially deterministic.

use crate::spec::LbPolicy;

/// What the balancer knows about one host when routing.
#[derive(Clone, Copy, Debug, Default)]
pub struct HostView {
    /// The host accepts traffic (not crashed, not finished).
    pub alive: bool,
    /// Requests dispatched to the host and not yet completed.
    pub outstanding: u32,
    /// Size of the host's primary nest (0 for policies without nests) —
    /// the warmth signal.
    pub nest_primary: u32,
    /// The host's p99 latency estimate currently breaches the SLO.
    pub brownout: bool,
}

/// Picks a host for the next attempt among `eligible` indices (already
/// filtered for liveness/exclusions by the caller), or `None` when the
/// slate is empty.
///
/// * round-robin — the next eligible index after the cursor (which
///   advances to the choice);
/// * least-outstanding — fewest outstanding, ties to the lowest index;
/// * warmth — largest *spare* warm capacity (primary nest minus
///   outstanding attempts), ties to the least outstanding, then the
///   lowest index. Scoring spare capacity rather than raw nest size
///   matters: a saturated warm host scores no better than an idle cold
///   one, so overflow spills over and warms the rest of the fleet
///   instead of piling onto one nest without bound.
pub fn choose_host(
    lb: LbPolicy,
    hosts: &[HostView],
    eligible: &[usize],
    rr_cursor: &mut usize,
) -> Option<usize> {
    if eligible.is_empty() {
        return None;
    }
    match lb {
        LbPolicy::RoundRobin => {
            let n = hosts.len();
            for step in 1..=n {
                let idx = (*rr_cursor + step) % n;
                if eligible.contains(&idx) {
                    *rr_cursor = idx;
                    return Some(idx);
                }
            }
            None
        }
        LbPolicy::LeastOutstanding => eligible
            .iter()
            .copied()
            .min_by_key(|&i| (hosts[i].outstanding, i)),
        LbPolicy::Warmth => eligible.iter().copied().min_by_key(|&i| {
            let spare = hosts[i].nest_primary.saturating_sub(hosts[i].outstanding);
            (std::cmp::Reverse(spare), hosts[i].outstanding, i)
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn views(specs: &[(bool, u32, u32)]) -> Vec<HostView> {
        specs
            .iter()
            .map(|&(alive, outstanding, nest_primary)| HostView {
                alive,
                outstanding,
                nest_primary,
                brownout: false,
            })
            .collect()
    }

    #[test]
    fn round_robin_rotates_over_eligible() {
        let hosts = views(&[(true, 0, 0); 4]);
        let mut cursor = 3; // so the first pick is host 0
        let eligible = [0, 1, 3];
        let picks: Vec<usize> = (0..6)
            .map(|_| choose_host(LbPolicy::RoundRobin, &hosts, &eligible, &mut cursor).unwrap())
            .collect();
        assert_eq!(picks, [0, 1, 3, 0, 1, 3]);
    }

    #[test]
    fn least_outstanding_prefers_empty_queue_then_index() {
        let hosts = views(&[(true, 5, 0), (true, 2, 0), (true, 2, 0)]);
        let mut c = 0;
        assert_eq!(
            choose_host(LbPolicy::LeastOutstanding, &hosts, &[0, 1, 2], &mut c),
            Some(1)
        );
    }

    #[test]
    fn warmth_prefers_largest_spare_capacity_then_least_outstanding() {
        let hosts = views(&[(true, 0, 2), (true, 3, 6), (true, 1, 6)]);
        let mut c = 0;
        assert_eq!(
            choose_host(LbPolicy::Warmth, &hosts, &[0, 1, 2], &mut c),
            Some(2),
            "most spare warm capacity (6-1=5) wins"
        );
    }

    #[test]
    fn warmth_spills_over_when_the_warm_host_saturates() {
        // Host 0 is warm but fully loaded (nest 4, outstanding 4): zero
        // spare capacity ties it with the idle cold host, and the tie
        // breaks toward the shorter queue — traffic spreads instead of
        // piling onto the one warm nest forever.
        let hosts = views(&[(true, 4, 4), (true, 0, 0)]);
        let mut c = 0;
        assert_eq!(
            choose_host(LbPolicy::Warmth, &hosts, &[0, 1], &mut c),
            Some(1)
        );
    }

    #[test]
    fn empty_slate_yields_none() {
        let hosts = views(&[(true, 0, 0)]);
        let mut c = 0;
        assert_eq!(choose_host(LbPolicy::RoundRobin, &hosts, &[], &mut c), None);
        assert_eq!(choose_host(LbPolicy::Warmth, &hosts, &[], &mut c), None);
    }
}
