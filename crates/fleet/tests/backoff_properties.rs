//! Property tests for the retry backoff/jitter sampler.
//!
//! The fleet driver relies on three properties to stay byte-deterministic
//! at any `NEST_JOBS` setting: a retry schedule is a pure function of
//! `(cell seed, request id)`, every delay is bounded by the configured
//! cap, and no shared RNG stream is consumed (so concurrent cells — or
//! threads within one workflow — can sample in any order without
//! perturbing each other). The unit tests in `src/backoff.rs` spot-check
//! these; here they are swept across a seed × request grid and across
//! real thread interleavings.

use nest_fleet::BackoffSampler;

const BASE_NS: u64 = 1_000_000; // 1 ms
const CAP_NS: u64 = 20_000_000; // 20 ms

fn req_id(host: usize, idx: usize) -> String {
    format!("req:{host}:{idx}")
}

#[test]
fn schedules_are_bounded_by_the_cap_and_floored_by_half() {
    for seed in [0u64, 1, 42, u64::MAX] {
        let s = BackoffSampler::new(BASE_NS, CAP_NS, seed);
        for host in 0..4 {
            for idx in 0..64 {
                for (k, d) in s.schedule(&req_id(host, idx), 8).iter().enumerate() {
                    let attempt = k as u32 + 1;
                    // The un-jittered delay of attempt k is
                    // min(cap, base·2^(k-1)); jitter stays in [that/2, that].
                    let nominal = BASE_NS.saturating_mul(1 << k.min(20)).min(CAP_NS);
                    assert!(
                        *d >= nominal / 2 && *d <= nominal,
                        "seed {seed} req {host}/{idx} attempt {attempt}: {d} outside [{}, {nominal}]",
                        nominal / 2
                    );
                }
            }
        }
    }
}

#[test]
fn identical_seed_and_request_yield_byte_identical_schedules() {
    // Two independently constructed samplers — as two worker threads
    // re-materializing the same cell would build — must agree on every
    // schedule, and sampling in a different order must not matter.
    let a = BackoffSampler::new(BASE_NS, CAP_NS, 0xD00D);
    let b = BackoffSampler::new(BASE_NS, CAP_NS, 0xD00D);
    let forward: Vec<Vec<u64>> = (0..128).map(|i| a.schedule(&req_id(0, i), 6)).collect();
    let backward: Vec<Vec<u64>> = (0..128)
        .rev()
        .map(|i| b.schedule(&req_id(0, i), 6))
        .collect();
    for (i, sched) in forward.iter().enumerate() {
        assert_eq!(*sched, backward[127 - i], "request {i} drifted with order");
    }
}

#[test]
fn different_seeds_or_requests_decorrelate() {
    let s1 = BackoffSampler::new(BASE_NS, CAP_NS, 1);
    let s2 = BackoffSampler::new(BASE_NS, CAP_NS, 2);
    let mut seen = std::collections::HashSet::new();
    for idx in 0..32 {
        assert!(seen.insert(s1.schedule(&req_id(0, idx), 4)), "collision");
        assert!(seen.insert(s2.schedule(&req_id(0, idx), 4)), "collision");
    }
}

#[test]
fn schedules_survive_thread_interleaving() {
    // The `NEST_JOBS` property, exercised for real: many threads sample
    // overlapping (request, attempt) pairs concurrently, and every
    // thread must observe exactly the reference schedule — the sampler
    // holds no mutable state to race on.
    let reference: Vec<Vec<u64>> = {
        let s = BackoffSampler::new(BASE_NS, CAP_NS, 99);
        (0..64).map(|i| s.schedule(&req_id(1, i), 5)).collect()
    };
    let results: Vec<Vec<Vec<u64>>> = std::thread::scope(|scope| {
        (0..8)
            .map(|t| {
                let reference = &reference;
                scope
                    .spawn(move || {
                        let s = BackoffSampler::new(BASE_NS, CAP_NS, 99);
                        // Each thread walks the grid with a different odd
                        // stride (coprime with 64, so every index is hit)
                        // so the interleavings genuinely differ.
                        let mut out = vec![Vec::new(); 64];
                        for step in 0..64 {
                            let i = (step * (2 * t + 1) + t) % 64;
                            out[i] = s.schedule(&req_id(1, i), 5);
                        }
                        assert_eq!(out.len(), reference.len());
                        out
                    })
                    .join()
                    .expect("sampler thread panicked")
            })
            .collect()
    });
    for (t, out) in results.iter().enumerate() {
        assert_eq!(*out, reference, "thread {t} drifted from the reference");
    }
}
