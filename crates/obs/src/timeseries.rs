//! Interval-sampled machine telemetry.
//!
//! [`TimeSeriesSampler`] mirrors the machine's externally visible state
//! (per-core busy/spin flags, per-physical-core frequency, runnable
//! depth, nest occupancy) from the trace stream and snapshots it on a
//! fixed simulated-time grid, producing a compact columnar
//! [`TimeSeries`]: per-socket and per-CCX utilization, mean frequency,
//! nest primary/reserve sizes, runnable depth, and instantaneous power
//! (computed with the frequency model's own pure power function,
//! [`nest_freq::instant_power_w`], so the sampled watts are exactly what
//! the energy integrator charges at that state).
//!
//! Samples are taken *between* events: the first event at or past a grid
//! point records the state as of that grid point, which is exact — state
//! only changes at events. No timer events are injected, so the sampler
//! is a pure observer and runs with or without it are byte-identical.
//!
//! The series is bounded: at [`SAMPLE_CAP`] samples it halves its
//! resolution (keeping every other sample and doubling the interval), so
//! arbitrarily long runs produce a fixed-size telemetry block that still
//! spans the whole run.

use std::cell::RefCell;
use std::rc::Rc;

use nest_freq::{instant_power_w, Activity};
use nest_simcore::json::{obj, Json};
use nest_simcore::{snap, Freq, Probe, Time, TraceEvent};
use nest_topology::MachineSpec;

/// Registry kind under which [`TimeSeriesSampler`] snapshots itself.
pub const TIMESERIES_PROBE_KIND: &str = "obs.timeseries";

/// Maximum samples kept; reaching it halves the resolution.
pub const SAMPLE_CAP: usize = 256;

/// Initial sampling interval (1 ms of simulated time).
pub const DEFAULT_SAMPLE_INTERVAL_NS: u64 = 1_000_000;

/// A columnar machine-state time series: parallel per-sample columns
/// plus two per-domain column groups.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TimeSeries {
    /// Sampling interval at the end of the run (doubles on truncation).
    pub interval_ns: u64,
    /// How many times the series halved its resolution.
    pub truncated_halvings: u32,
    /// Sample timestamps (ns).
    pub t_ns: Vec<u64>,
    /// Instantaneous machine power (W) at each sample.
    pub power_w: Vec<f64>,
    /// Mean frequency over all physical cores (kHz) at each sample.
    pub mean_freq_khz: Vec<u64>,
    /// Runnable tasks (running + queued) at each sample.
    pub runnable: Vec<u64>,
    /// Primary-nest size at each sample (0 under non-Nest policies).
    pub nest_primary: Vec<u64>,
    /// Reserve-nest size at each sample (0 under non-Nest policies).
    pub nest_reserve: Vec<u64>,
    /// Busy fraction of each socket's cores: `socket_util[s][i]` is
    /// socket `s` at sample `i`.
    pub socket_util: Vec<Vec<f64>>,
    /// Busy fraction of each CCX's cores: `ccx_util[x][i]`.
    pub ccx_util: Vec<Vec<f64>>,
}

impl TimeSeries {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.t_ns.len()
    }

    /// True when no sample was taken.
    pub fn is_empty(&self) -> bool {
        self.t_ns.is_empty()
    }

    /// Serializes the series as the columnar `timeseries` telemetry
    /// block.
    pub fn to_json(&self) -> Json {
        let u64s = |v: &[u64]| Json::Arr(v.iter().map(|&x| Json::u64(x)).collect());
        let f64s = |v: &[f64]| Json::Arr(v.iter().map(|&x| Json::f64(x)).collect());
        obj(vec![
            ("interval_ns", Json::u64(self.interval_ns)),
            ("samples", Json::usize(self.len())),
            (
                "truncated_halvings",
                Json::u64(self.truncated_halvings as u64),
            ),
            ("t_ns", u64s(&self.t_ns)),
            ("power_w", f64s(&self.power_w)),
            ("mean_freq_khz", u64s(&self.mean_freq_khz)),
            ("runnable", u64s(&self.runnable)),
            ("nest_primary", u64s(&self.nest_primary)),
            ("nest_reserve", u64s(&self.nest_reserve)),
            (
                "socket_util",
                Json::Arr(self.socket_util.iter().map(|v| f64s(v)).collect()),
            ),
            (
                "ccx_util",
                Json::Arr(self.ccx_util.iter().map(|v| f64s(v)).collect()),
            ),
        ])
    }
}

/// A probe sampling machine state on a simulated-time grid.
pub struct TimeSeriesSampler {
    out: Rc<RefCell<TimeSeries>>,
    s: TimeSeries,
    spec: MachineSpec,
    /// Socket index of each logical core.
    socket_of: Vec<u32>,
    /// CCX index of each logical core.
    ccx_of: Vec<u32>,
    /// Physical-core index behind each logical core.
    phys_of: Vec<usize>,
    /// Cores per socket / per CCX, for utilization denominators.
    socket_cores: Vec<u64>,
    ccx_cores: Vec<u64>,
    /// Mirrored machine state.
    busy: Vec<bool>,
    spinning: Vec<bool>,
    phys_freq: Vec<Freq>,
    runnable: u64,
    nest_primary: u64,
    nest_reserve: u64,
    /// Next grid point to sample at (ns).
    next_at: u64,
}

impl TimeSeriesSampler {
    /// Creates a sampler for `spec` with the per-core CCX and socket
    /// tables (as computed by the topology). The handle receives the
    /// series after the run finishes.
    pub fn new(
        spec: &MachineSpec,
        ccx_of: Vec<u32>,
        socket_of: Vec<u32>,
    ) -> (TimeSeriesSampler, Rc<RefCell<TimeSeries>>) {
        let n_cores = spec.n_cores();
        assert_eq!(ccx_of.len(), n_cores, "ccx table must cover every core");
        assert_eq!(
            socket_of.len(),
            n_cores,
            "socket table must cover every core"
        );
        let pps = spec.phys_per_socket;
        let cps = spec.cores_per_socket();
        let phys_of = (0..n_cores)
            .map(|c| (c / cps) * pps + (c % cps) % pps)
            .collect();
        let domain_sizes = |of: &[u32]| {
            let n = of.iter().copied().max().map_or(0, |m| m as usize + 1);
            let mut sizes = vec![0u64; n];
            for &d in of {
                sizes[d as usize] += 1;
            }
            sizes
        };
        let socket_cores = domain_sizes(&socket_of);
        let ccx_cores = domain_sizes(&ccx_of);
        let out = Rc::new(RefCell::new(TimeSeries::default()));
        let probe = TimeSeriesSampler {
            out: Rc::clone(&out),
            s: TimeSeries {
                interval_ns: DEFAULT_SAMPLE_INTERVAL_NS,
                socket_util: vec![Vec::new(); socket_cores.len()],
                ccx_util: vec![Vec::new(); ccx_cores.len()],
                ..TimeSeries::default()
            },
            spec: spec.clone(),
            socket_of,
            ccx_of,
            phys_of,
            socket_cores,
            ccx_cores,
            busy: vec![false; n_cores],
            spinning: vec![false; n_cores],
            phys_freq: vec![spec.freq.fnominal; spec.sockets * pps],
            runnable: 0,
            nest_primary: 0,
            nest_reserve: 0,
            next_at: DEFAULT_SAMPLE_INTERVAL_NS,
        };
        (probe, out)
    }

    /// Records one sample of the mirrored state, stamped `t_ns`.
    fn sample(&mut self, t_ns: u64) {
        self.s.t_ns.push(t_ns);
        self.s.power_w.push(instant_power_w(
            &self.spec,
            |t| {
                if self.busy[t] {
                    Activity::Busy
                } else if self.spinning[t] {
                    Activity::Spinning
                } else {
                    Activity::Idle
                }
            },
            |phys| self.phys_freq[phys],
        ));
        let khz_sum: u64 = self.phys_freq.iter().map(|f| f.as_khz()).sum();
        self.s
            .mean_freq_khz
            .push(khz_sum / self.phys_freq.len() as u64);
        self.s.runnable.push(self.runnable);
        self.s.nest_primary.push(self.nest_primary);
        self.s.nest_reserve.push(self.nest_reserve);
        let mut socket_busy = vec![0u64; self.socket_cores.len()];
        let mut ccx_busy = vec![0u64; self.ccx_cores.len()];
        for (c, &b) in self.busy.iter().enumerate() {
            if b {
                socket_busy[self.socket_of[c] as usize] += 1;
                ccx_busy[self.ccx_of[c] as usize] += 1;
            }
        }
        for (s, &n) in socket_busy.iter().enumerate() {
            self.s.socket_util[s].push(n as f64 / self.socket_cores[s] as f64);
        }
        for (x, &n) in ccx_busy.iter().enumerate() {
            self.s.ccx_util[x].push(n as f64 / self.ccx_cores[x] as f64);
        }
        if self.s.len() > SAMPLE_CAP {
            self.halve_resolution();
        }
    }

    /// Keeps every other sample and doubles the interval.
    fn halve_resolution(&mut self) {
        fn keep_even<T: Copy>(v: &mut Vec<T>) {
            let mut i = 0;
            v.retain(|_| {
                let keep = i % 2 == 0;
                i += 1;
                keep
            });
        }
        keep_even(&mut self.s.t_ns);
        keep_even(&mut self.s.power_w);
        keep_even(&mut self.s.mean_freq_khz);
        keep_even(&mut self.s.runnable);
        keep_even(&mut self.s.nest_primary);
        keep_even(&mut self.s.nest_reserve);
        for v in &mut self.s.socket_util {
            keep_even(v);
        }
        for v in &mut self.s.ccx_util {
            keep_even(v);
        }
        self.s.interval_ns *= 2;
        self.s.truncated_halvings += 1;
        self.next_at = self.s.t_ns.last().copied().unwrap_or(0) + self.s.interval_ns;
    }
}

impl Probe for TimeSeriesSampler {
    fn on_event(&mut self, now: Time, event: &TraceEvent) {
        // Sample every grid point the simulation has stepped past: the
        // mirrored state is still the state *before* this event, which
        // is exact at each grid point since nothing happened in between.
        while self.next_at <= now.as_nanos() {
            let at = self.next_at;
            self.sample(at);
            self.next_at += self.s.interval_ns;
        }
        match event {
            TraceEvent::RunStart { core, .. } => self.busy[core.index()] = true,
            TraceEvent::RunStop { core, .. } => self.busy[core.index()] = false,
            TraceEvent::SpinStart { core } => self.spinning[core.index()] = true,
            TraceEvent::SpinEnd { core } => self.spinning[core.index()] = false,
            TraceEvent::FreqChange { core, freq } => {
                self.phys_freq[self.phys_of[core.index()]] = *freq;
            }
            TraceEvent::RunnableCount { count } => self.runnable = *count as u64,
            TraceEvent::NestExpand {
                primary, reserve, ..
            }
            | TraceEvent::NestShrink {
                primary, reserve, ..
            }
            | TraceEvent::NestCompaction {
                primary, reserve, ..
            } => {
                self.nest_primary = *primary as u64;
                self.nest_reserve = *reserve as u64;
            }
            TraceEvent::CoreOffline { core } => {
                self.busy[core.index()] = false;
                self.spinning[core.index()] = false;
            }
            _ => {}
        }
    }

    fn on_finish(&mut self, now: Time) {
        // Drain grid points the run ended past, then take a closing
        // sample at the final instant, so even sub-interval runs report
        // at least one row.
        while self.next_at <= now.as_nanos() {
            let at = self.next_at;
            self.sample(at);
            self.next_at += self.s.interval_ns;
        }
        if self.s.t_ns.last() != Some(&now.as_nanos()) {
            self.sample(now.as_nanos());
        }
        *self.out.borrow_mut() = std::mem::take(&mut self.s);
        // Re-arm the moved-out series' domain columns in case the probe
        // is (incorrectly) reused; keeps the invariant len == domains.
        self.s.socket_util = vec![Vec::new(); self.socket_cores.len()];
        self.s.ccx_util = vec![Vec::new(); self.ccx_cores.len()];
        self.s.interval_ns = DEFAULT_SAMPLE_INTERVAL_NS;
    }

    fn snap(&self) -> Option<(&'static str, Json)> {
        // The machine shape comes from construction; the mirrored state
        // and accumulated columns travel.
        let u64s = |v: &[u64]| Json::Arr(v.iter().map(|&x| Json::u64(x)).collect());
        let f64s = |v: &[f64]| Json::Arr(v.iter().map(|&x| snap::f64_bits(x)).collect());
        let bools = |v: &[bool]| Json::Arr(v.iter().map(|&b| Json::Bool(b)).collect());
        Some((
            TIMESERIES_PROBE_KIND,
            obj(vec![
                ("interval_ns", Json::u64(self.s.interval_ns)),
                (
                    "truncated_halvings",
                    Json::u64(self.s.truncated_halvings as u64),
                ),
                ("next_at", Json::u64(self.next_at)),
                ("t_ns", u64s(&self.s.t_ns)),
                ("power_w", f64s(&self.s.power_w)),
                ("mean_freq_khz", u64s(&self.s.mean_freq_khz)),
                ("runnable_col", u64s(&self.s.runnable)),
                ("nest_primary_col", u64s(&self.s.nest_primary)),
                ("nest_reserve_col", u64s(&self.s.nest_reserve)),
                (
                    "socket_util",
                    Json::Arr(self.s.socket_util.iter().map(|v| f64s(v)).collect()),
                ),
                (
                    "ccx_util",
                    Json::Arr(self.s.ccx_util.iter().map(|v| f64s(v)).collect()),
                ),
                ("busy", bools(&self.busy)),
                ("spinning", bools(&self.spinning)),
                (
                    "phys_freq",
                    Json::Arr(
                        self.phys_freq
                            .iter()
                            .map(|f| Json::u64(f.as_khz()))
                            .collect(),
                    ),
                ),
                ("runnable", Json::u64(self.runnable)),
                ("nest_primary", Json::u64(self.nest_primary)),
                ("nest_reserve", Json::u64(self.nest_reserve)),
            ]),
        ))
    }

    fn snap_restore(&mut self, state: &Json) -> Result<(), String> {
        let u64s = |name: &str| -> Result<Vec<u64>, String> {
            snap::get_arr(state, name)?
                .iter()
                .map(snap::elem_u64)
                .collect()
        };
        let f64_col = |arr: &Json| -> Result<Vec<f64>, String> {
            arr.as_arr()
                .ok_or("column is not an array")?
                .iter()
                .map(|j| Ok(f64::from_bits(snap::elem_u64(j)?)))
                .collect()
        };
        let expect_len = |name: &str, got: usize, want: usize| {
            if got == want {
                Ok(())
            } else {
                Err(format!(
                    "timeseries snapshot \"{name}\" has {got} entries, the machine needs {want}"
                ))
            }
        };
        self.s.interval_ns = snap::get_u64(state, "interval_ns")?;
        self.s.truncated_halvings = snap::get_u64(state, "truncated_halvings")? as u32;
        self.next_at = snap::get_u64(state, "next_at")?;
        self.s.t_ns = u64s("t_ns")?;
        self.s.power_w = f64_col(snap::field(state, "power_w")?)?;
        self.s.mean_freq_khz = u64s("mean_freq_khz")?;
        self.s.runnable = u64s("runnable_col")?;
        self.s.nest_primary = u64s("nest_primary_col")?;
        self.s.nest_reserve = u64s("nest_reserve_col")?;
        let socket_util = snap::get_arr(state, "socket_util")?;
        expect_len("socket_util", socket_util.len(), self.socket_cores.len())?;
        self.s.socket_util = socket_util.iter().map(f64_col).collect::<Result<_, _>>()?;
        let ccx_util = snap::get_arr(state, "ccx_util")?;
        expect_len("ccx_util", ccx_util.len(), self.ccx_cores.len())?;
        self.s.ccx_util = ccx_util.iter().map(f64_col).collect::<Result<_, _>>()?;
        let busy = snap::get_arr(state, "busy")?;
        expect_len("busy", busy.len(), self.busy.len())?;
        for (slot, j) in self.busy.iter_mut().zip(busy) {
            *slot = j.as_bool().ok_or("busy flag is not a bool")?;
        }
        let spinning = snap::get_arr(state, "spinning")?;
        expect_len("spinning", spinning.len(), self.spinning.len())?;
        for (slot, j) in self.spinning.iter_mut().zip(spinning) {
            *slot = j.as_bool().ok_or("spin flag is not a bool")?;
        }
        let freqs = snap::get_arr(state, "phys_freq")?;
        expect_len("phys_freq", freqs.len(), self.phys_freq.len())?;
        for (slot, j) in self.phys_freq.iter_mut().zip(freqs) {
            *slot = Freq::from_khz(snap::elem_u64(j)?);
        }
        self.runnable = snap::get_u64(state, "runnable")?;
        self.nest_primary = snap::get_u64(state, "nest_primary")?;
        self.nest_reserve = snap::get_u64(state, "nest_reserve")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nest_simcore::{CoreId, TaskId};
    use nest_topology::presets;

    fn sampler() -> (TimeSeriesSampler, Rc<RefCell<TimeSeries>>) {
        let spec = presets::xeon_6130(2);
        let n = spec.n_cores();
        let cps = spec.cores_per_socket();
        let socket_of: Vec<u32> = (0..n).map(|c| (c / cps) as u32).collect();
        // One CCX per socket on the Intel presets.
        let ccx_of = socket_of.clone();
        TimeSeriesSampler::new(&spec, ccx_of, socket_of)
    }

    fn start(task: u32, core: u32) -> TraceEvent {
        TraceEvent::RunStart {
            task: TaskId(task),
            core: CoreId(core),
        }
    }

    #[test]
    fn samples_on_the_grid_and_at_the_end() {
        let (mut p, out) = sampler();
        let t = Time::from_nanos;
        p.on_event(t(10), &start(1, 0));
        // Stepping past 3 grid points samples each exactly once.
        p.on_event(t(3_200_000), &TraceEvent::RunnableCount { count: 4 });
        p.on_finish(t(4_000_000));
        let s = out.borrow();
        assert_eq!(s.t_ns, vec![1_000_000, 2_000_000, 3_000_000, 4_000_000]);
        // Core 0 was busy the whole time: socket 0 util 1/32, socket 1
        // idle; runnable was 0 until after the grid points passed.
        assert_eq!(s.socket_util[0], vec![1.0 / 32.0; 4]);
        assert_eq!(s.socket_util[1], vec![0.0; 4]);
        assert_eq!(s.runnable, vec![0, 0, 0, 4]);
        assert!(s.power_w.iter().all(|&w| w > 0.0));
        // All phys at nominal: mean is exactly nominal.
        assert_eq!(s.mean_freq_khz, vec![2_100_000; 4]);
    }

    #[test]
    fn state_at_a_grid_point_excludes_later_events() {
        let (mut p, out) = sampler();
        let t = Time::from_nanos;
        // The busy transition happens at 1.5 ms: the 1 ms sample sees
        // idle, the 2 ms sample sees busy.
        p.on_event(t(1_500_000), &start(1, 5));
        p.on_finish(t(2_000_000));
        let s = out.borrow();
        assert_eq!(s.t_ns, vec![1_000_000, 2_000_000]);
        assert_eq!(s.socket_util[0], vec![0.0, 1.0 / 32.0]);
    }

    #[test]
    fn caps_by_halving_resolution() {
        let (mut p, out) = sampler();
        // 1000 intervals: must stay under the cap by doubling.
        for i in 1..=1000u64 {
            p.on_event(
                Time::from_nanos(i * DEFAULT_SAMPLE_INTERVAL_NS),
                &TraceEvent::RunnableCount { count: i as u32 },
            );
        }
        p.on_finish(Time::from_nanos(1_001 * DEFAULT_SAMPLE_INTERVAL_NS));
        let s = out.borrow();
        assert!(s.len() <= SAMPLE_CAP, "{}", s.len());
        assert!(s.truncated_halvings >= 2);
        assert_eq!(
            s.interval_ns,
            DEFAULT_SAMPLE_INTERVAL_NS << s.truncated_halvings
        );
        // Columns stay parallel.
        assert_eq!(s.power_w.len(), s.len());
        assert_eq!(s.runnable.len(), s.len());
        assert_eq!(s.socket_util[0].len(), s.len());
        // Timestamps stay sorted.
        assert!(s.t_ns.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn freq_changes_move_the_mean_and_power() {
        let (mut p, out) = sampler();
        let t = Time::from_nanos;
        p.on_event(t(0), &start(1, 0));
        p.on_event(
            t(10),
            &TraceEvent::FreqChange {
                core: CoreId(0),
                freq: Freq::from_ghz(3.7),
            },
        );
        p.on_finish(t(1_000_000));
        let s = out.borrow();
        assert_eq!(s.len(), 1);
        // 32 phys cores, one at 3.7 GHz instead of 2.1.
        let expect = (31 * 2_100_000u64 + 3_700_000) / 32;
        assert_eq!(s.mean_freq_khz, vec![expect]);
    }

    #[test]
    fn json_block_is_columnar_and_round_trips() {
        let (mut p, out) = sampler();
        let t = Time::from_nanos;
        p.on_event(t(10), &start(1, 0));
        p.on_finish(t(2_500_000));
        let json = out.borrow().to_json();
        for key in [
            "interval_ns",
            "samples",
            "t_ns",
            "power_w",
            "mean_freq_khz",
            "runnable",
            "nest_primary",
            "nest_reserve",
            "socket_util",
            "ccx_util",
        ] {
            assert!(json.get(key).is_some(), "missing {key}");
        }
        assert_eq!(json.get("samples").and_then(Json::as_u64), Some(3));
        let text = json.to_pretty();
        assert_eq!(nest_simcore::json::parse(&text).unwrap(), json);
    }

    #[test]
    fn snapshot_round_trip_resumes_identically() {
        let t = Time::from_nanos;
        let feed_first = |p: &mut TimeSeriesSampler| {
            p.on_event(t(10), &start(1, 0));
            p.on_event(t(500_000), &TraceEvent::SpinStart { core: CoreId(2) });
            p.on_event(t(1_200_000), &TraceEvent::RunnableCount { count: 3 });
        };
        let feed_second = |p: &mut TimeSeriesSampler| {
            p.on_event(
                t(2_200_000),
                &TraceEvent::RunStop {
                    task: TaskId(1),
                    core: CoreId(0),
                    reason: nest_simcore::StopReason::Exit,
                },
            );
            p.on_finish(t(3_000_000));
        };
        let (mut straight, straight_out) = sampler();
        feed_first(&mut straight);
        let (kind, state) = straight.snap().unwrap();
        assert_eq!(kind, TIMESERIES_PROBE_KIND);
        let (mut restored, restored_out) = sampler();
        restored.snap_restore(&state).unwrap();
        feed_second(&mut straight);
        feed_second(&mut restored);
        let (a, b) = (straight_out.borrow(), restored_out.borrow());
        assert_eq!(*a, *b);
        assert_eq!(a.len(), 3);
        // Power is compared bit-for-bit through PartialEq on f64 —
        // identical inputs through the pure power function.
        assert_eq!(a.power_w[0].to_bits(), b.power_w[0].to_bits());
    }
}
