//! Bounded trace capture with class and window filters.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use nest_simcore::{Probe, Time, TraceEvent};

/// A coarse classification of [`TraceEvent`]s, used by capture filters
/// and the `nest-sim trace --events` flag.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventClass {
    /// Task lifetime: `TaskCreated`, `TaskExited`.
    Task,
    /// Placement decisions: `Placed`, `Woken`.
    Placement,
    /// Core occupancy: `RunStart`, `RunStop`.
    Run,
    /// Frequency changes: `FreqChange`.
    Freq,
    /// Idle spinning: `SpinStart`, `SpinEnd`.
    Spin,
    /// Nest lifecycle: `NestExpand`, `NestShrink`, `NestCompaction`.
    Nest,
    /// Machine-wide runnable count: `RunnableCount`.
    Runnable,
    /// Fault injection: `CoreOffline`, `CoreOnline`, `SocketThrottle`.
    Fault,
}

impl EventClass {
    /// Every class, in display order.
    pub const ALL: [EventClass; 8] = [
        EventClass::Task,
        EventClass::Placement,
        EventClass::Run,
        EventClass::Freq,
        EventClass::Spin,
        EventClass::Nest,
        EventClass::Runnable,
        EventClass::Fault,
    ];

    /// The class of `event`.
    pub fn of(event: &TraceEvent) -> EventClass {
        match event {
            TraceEvent::TaskCreated { .. } | TraceEvent::TaskExited { .. } => EventClass::Task,
            TraceEvent::Placed { .. } | TraceEvent::Woken { .. } => EventClass::Placement,
            TraceEvent::RunStart { .. } | TraceEvent::RunStop { .. } => EventClass::Run,
            TraceEvent::FreqChange { .. } => EventClass::Freq,
            TraceEvent::SpinStart { .. } | TraceEvent::SpinEnd { .. } => EventClass::Spin,
            TraceEvent::NestExpand { .. }
            | TraceEvent::NestShrink { .. }
            | TraceEvent::NestCompaction { .. } => EventClass::Nest,
            TraceEvent::RunnableCount { .. } => EventClass::Runnable,
            TraceEvent::CoreOffline { .. }
            | TraceEvent::CoreOnline { .. }
            | TraceEvent::SocketThrottle { .. } => EventClass::Fault,
        }
    }

    /// The lower-case name used by CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            EventClass::Task => "task",
            EventClass::Placement => "placement",
            EventClass::Run => "run",
            EventClass::Freq => "freq",
            EventClass::Spin => "spin",
            EventClass::Nest => "nest",
            EventClass::Runnable => "runnable",
            EventClass::Fault => "fault",
        }
    }

    /// Parses a CLI class name ([`EventClass::name`]).
    pub fn parse(s: &str) -> Option<EventClass> {
        EventClass::ALL.iter().copied().find(|c| c.name() == s)
    }

    fn bit(self) -> u32 {
        1 << (self as u32)
    }
}

/// The captured slice of a run's trace, filled in by [`TraceCollector`]
/// when the simulation finishes.
#[derive(Default)]
pub struct TraceLog {
    /// Captured `(time, event)` pairs, in emission order.
    pub events: Vec<(Time, TraceEvent)>,
    /// Events that passed the filters but were evicted by the ring bound
    /// (the ring keeps the most recent `capacity` events).
    pub dropped: u64,
    /// The simulation finish time.
    pub duration: Time,
}

/// A bounded ring-buffer capture probe.
///
/// Events are filtered by class and time window, then kept in a ring of
/// fixed capacity: when full, the oldest captured event is evicted (and
/// counted in [`TraceLog::dropped`]), so the log always holds the most
/// recent slice. The window is half-open, `lo <= t < hi`.
pub struct TraceCollector {
    out: Rc<RefCell<TraceLog>>,
    buf: VecDeque<(Time, TraceEvent)>,
    capacity: usize,
    window: Option<(Time, Time)>,
    class_mask: u32,
    dropped: u64,
}

impl TraceCollector {
    /// The default ring capacity, in events.
    pub const DEFAULT_CAPACITY: usize = 1 << 20;

    /// Creates a collector keeping at most `capacity` events. The handle
    /// receives the captured [`TraceLog`] after the run finishes.
    pub fn new(capacity: usize) -> (TraceCollector, Rc<RefCell<TraceLog>>) {
        let out = Rc::new(RefCell::new(TraceLog::default()));
        let collector = TraceCollector {
            out: Rc::clone(&out),
            buf: VecDeque::new(),
            capacity: capacity.max(1),
            window: None,
            class_mask: u32::MAX,
            dropped: 0,
        };
        (collector, out)
    }

    /// Restricts capture to events with `lo <= t < hi`.
    pub fn with_window(mut self, lo: Time, hi: Time) -> TraceCollector {
        self.window = Some((lo, hi));
        self
    }

    /// Restricts capture to the given event classes (default: all).
    pub fn with_classes(mut self, classes: &[EventClass]) -> TraceCollector {
        self.class_mask = classes.iter().fold(0, |m, c| m | c.bit());
        self
    }
}

impl Probe for TraceCollector {
    fn on_event(&mut self, now: Time, event: &TraceEvent) {
        if EventClass::of(event).bit() & self.class_mask == 0 {
            return;
        }
        if let Some((lo, hi)) = self.window {
            if now < lo || now >= hi {
                return;
            }
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back((now, event.clone()));
    }

    fn on_finish(&mut self, now: Time) {
        let mut log = self.out.borrow_mut();
        log.events = std::mem::take(&mut self.buf).into();
        log.dropped = self.dropped;
        log.duration = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nest_simcore::{CoreId, TaskId};

    fn woken(t: u64) -> (Time, TraceEvent) {
        (Time::from_nanos(t), TraceEvent::Woken { task: TaskId(1) })
    }

    fn feed(c: &mut TraceCollector, events: &[(Time, TraceEvent)], finish: u64) {
        for (t, ev) in events {
            c.on_event(*t, ev);
        }
        c.on_finish(Time::from_nanos(finish));
    }

    #[test]
    fn ring_keeps_most_recent_and_counts_drops() {
        let (mut c, log) = TraceCollector::new(2);
        feed(&mut c, &[woken(1), woken(2), woken(3)], 10);
        let log = log.borrow();
        assert_eq!(log.dropped, 1);
        assert_eq!(log.duration, Time::from_nanos(10));
        let times: Vec<u64> = log.events.iter().map(|(t, _)| t.as_nanos()).collect();
        assert_eq!(times, vec![2, 3]);
    }

    #[test]
    fn window_filter_is_half_open() {
        let (c, log) = TraceCollector::new(16);
        let mut c = c.with_window(Time::from_nanos(2), Time::from_nanos(4));
        feed(&mut c, &[woken(1), woken(2), woken(3), woken(4)], 10);
        let times: Vec<u64> = log
            .borrow()
            .events
            .iter()
            .map(|(t, _)| t.as_nanos())
            .collect();
        assert_eq!(times, vec![2, 3], "window is [lo, hi)");
    }

    #[test]
    fn class_filter_selects_classes() {
        let (c, log) = TraceCollector::new(16);
        let mut c = c.with_classes(&[EventClass::Spin]);
        c.on_event(Time::from_nanos(1), &TraceEvent::Woken { task: TaskId(1) });
        c.on_event(
            Time::from_nanos(2),
            &TraceEvent::SpinStart { core: CoreId(0) },
        );
        c.on_finish(Time::from_nanos(3));
        let log = log.borrow();
        assert_eq!(log.events.len(), 1);
        assert_eq!(log.events[0].1, TraceEvent::SpinStart { core: CoreId(0) });
    }

    #[test]
    fn class_names_round_trip() {
        for c in EventClass::ALL {
            assert_eq!(EventClass::parse(c.name()), Some(c));
        }
        assert_eq!(EventClass::parse("bogus"), None);
    }

    #[test]
    fn every_event_kind_has_a_class() {
        // Representative events; a new TraceEvent variant without a class
        // arm fails to compile in `EventClass::of`.
        let nest = TraceEvent::NestCompaction {
            core: CoreId(1),
            primary: 2,
            reserve: 3,
        };
        assert_eq!(EventClass::of(&nest), EventClass::Nest);
    }
}
