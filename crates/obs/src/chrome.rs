//! Chrome trace-event JSON export.
//!
//! Converts a captured [`TraceLog`] into the Chrome trace-event "JSON
//! Object Format", loadable in the Perfetto UI
//! (<https://ui.perfetto.dev>) or chrome://tracing. Track layout:
//!
//! * one thread track per core (`pid` 1, `tid` = core index) holding task
//!   run spans (`"X"` complete events named by task label), idle-spin
//!   spans, placement instant events annotated with their
//!   [`PlacementPath`](nest_simcore::PlacementPath), and nest-lifecycle
//!   instants;
//! * counter tracks (`"C"`): `freq cNN` (per-core frequency in GHz),
//!   `runnable` (machine-wide runnable count), and `nest` (primary and
//!   reserve nest sizes as two series).
//!
//! Timestamps are in microseconds (the format's unit) carried with
//! nanosecond precision as decimal fractions, so the export is lossless.

use std::collections::{BTreeSet, HashMap};

use nest_simcore::json::{obj, Json};
use nest_simcore::{CoreId, TaskId, Time, TraceEvent};

use crate::collector::TraceLog;
use crate::timeseries::TimeSeries;

/// The process id used for every track (one simulated machine).
const PID: u64 = 1;

/// `t` as a microsecond timestamp with nanosecond precision.
fn us(t: Time) -> Json {
    ns_as_us(t.as_nanos())
}

fn ns_as_us(ns: u64) -> Json {
    Json::Num(format!("{}.{:03}", ns / 1_000, ns % 1_000))
}

fn span(name: &str, cat: &str, core: CoreId, start: Time, end: Time, args: Json) -> Json {
    obj(vec![
        ("name", Json::str(name)),
        ("cat", Json::str(cat)),
        ("ph", Json::str("X")),
        ("ts", us(start)),
        (
            "dur",
            ns_as_us(end.as_nanos().saturating_sub(start.as_nanos())),
        ),
        ("pid", Json::u64(PID)),
        ("tid", Json::u64(core.index() as u64)),
        ("args", args),
    ])
}

fn instant(name: &str, cat: &str, core: CoreId, t: Time, args: Json) -> Json {
    obj(vec![
        ("name", Json::str(name)),
        ("cat", Json::str(cat)),
        ("ph", Json::str("i")),
        ("s", Json::str("t")),
        ("ts", us(t)),
        ("pid", Json::u64(PID)),
        ("tid", Json::u64(core.index() as u64)),
        ("args", args),
    ])
}

fn counter(name: String, t: Time, series: Vec<(&str, Json)>) -> Json {
    obj(vec![
        ("name", Json::Str(name)),
        ("ph", Json::str("C")),
        ("ts", us(t)),
        ("pid", Json::u64(PID)),
        ("args", obj(series)),
    ])
}

fn task_name(labels: &HashMap<TaskId, String>, task: TaskId) -> String {
    labels
        .get(&task)
        .cloned()
        .unwrap_or_else(|| format!("task {}", task.index()))
}

/// Exports `log` as a Chrome trace-event JSON tree.
///
/// Spans still open when the log ends (a task running or a core spinning
/// at the capture boundary) are closed at [`TraceLog::duration`].
pub fn chrome_trace_json(log: &TraceLog) -> Json {
    let mut events: Vec<Json> = Vec::new();
    let mut labels: HashMap<TaskId, String> = HashMap::new();
    let mut cores: BTreeSet<u32> = BTreeSet::new();
    let mut open_run: HashMap<CoreId, (TaskId, Time)> = HashMap::new();
    let mut open_spin: HashMap<CoreId, Time> = HashMap::new();

    for (t, ev) in &log.events {
        let t = *t;
        match ev {
            TraceEvent::TaskCreated { task, label, .. } => {
                labels.insert(*task, label.clone());
            }
            TraceEvent::TaskExited { .. } | TraceEvent::Woken { .. } => {}
            TraceEvent::Placed { task, core, path } => {
                cores.insert(core.0);
                events.push(instant(
                    &format!("place {:?}", path),
                    "placement",
                    *core,
                    t,
                    obj(vec![
                        ("task", Json::Str(task_name(&labels, *task))),
                        ("path", Json::Str(format!("{path:?}"))),
                    ]),
                ));
            }
            TraceEvent::RunStart { task, core } => {
                cores.insert(core.0);
                open_run.insert(*core, (*task, t));
            }
            TraceEvent::RunStop { task, core, reason } => {
                cores.insert(core.0);
                if let Some((started, t0)) = open_run.remove(core) {
                    events.push(span(
                        &task_name(&labels, started),
                        "run",
                        *core,
                        t0,
                        t,
                        obj(vec![
                            ("task", Json::usize(task.index())),
                            ("stop", Json::Str(format!("{reason:?}"))),
                        ]),
                    ));
                }
            }
            TraceEvent::RunnableCount { count } => {
                events.push(counter(
                    "runnable".to_string(),
                    t,
                    vec![("count", Json::u64(*count as u64))],
                ));
            }
            TraceEvent::FreqChange { core, freq } => {
                events.push(counter(
                    format!("freq c{:02}", core.index()),
                    t,
                    vec![("ghz", Json::f64(freq.as_khz() as f64 / 1e6))],
                ));
            }
            TraceEvent::SpinStart { core } => {
                cores.insert(core.0);
                open_spin.insert(*core, t);
            }
            TraceEvent::SpinEnd { core } => {
                cores.insert(core.0);
                if let Some(t0) = open_spin.remove(core) {
                    events.push(span("spin", "spin", *core, t0, t, obj(vec![])));
                }
            }
            TraceEvent::NestExpand {
                core,
                primary,
                reserve,
            }
            | TraceEvent::NestShrink {
                core,
                primary,
                reserve,
            }
            | TraceEvent::NestCompaction {
                core,
                primary,
                reserve,
            } => {
                cores.insert(core.0);
                let name = match ev {
                    TraceEvent::NestExpand { .. } => "nest expand",
                    TraceEvent::NestShrink { .. } => "nest shrink",
                    _ => "nest compaction",
                };
                events.push(instant(
                    name,
                    "nest",
                    *core,
                    t,
                    obj(vec![
                        ("primary", Json::u64(*primary as u64)),
                        ("reserve", Json::u64(*reserve as u64)),
                    ]),
                ));
                events.push(counter(
                    "nest".to_string(),
                    t,
                    vec![
                        ("primary", Json::u64(*primary as u64)),
                        ("reserve", Json::u64(*reserve as u64)),
                    ],
                ));
            }
            TraceEvent::CoreOffline { core } | TraceEvent::CoreOnline { core } => {
                cores.insert(core.0);
                let name = match ev {
                    TraceEvent::CoreOffline { .. } => "core offline",
                    _ => "core online",
                };
                events.push(instant(name, "fault", *core, t, obj(vec![])));
            }
            TraceEvent::SocketThrottle { socket, factor } => {
                events.push(counter(
                    format!("throttle s{socket}"),
                    t,
                    vec![("factor", Json::f64(*factor))],
                ));
            }
        }
    }

    // Close spans still open at the end of the captured window.
    for (core, (task, t0)) in open_run {
        events.push(span(
            &task_name(&labels, task),
            "run",
            core,
            t0,
            log.duration,
            obj(vec![("task", Json::usize(task.index()))]),
        ));
    }
    for (core, t0) in open_spin {
        events.push(span("spin", "spin", core, t0, log.duration, obj(vec![])));
    }

    // Track metadata first: a process name plus one named thread per core.
    let mut all = vec![obj(vec![
        ("name", Json::str("process_name")),
        ("ph", Json::str("M")),
        ("pid", Json::u64(PID)),
        ("args", obj(vec![("name", Json::str("simulated machine"))])),
    ])];
    for c in cores {
        all.push(obj(vec![
            ("name", Json::str("thread_name")),
            ("ph", Json::str("M")),
            ("pid", Json::u64(PID)),
            ("tid", Json::u64(c as u64)),
            ("args", obj(vec![("name", Json::Str(format!("core {c}")))])),
        ]));
    }
    all.extend(events);

    obj(vec![
        ("displayTimeUnit", Json::str("ms")),
        ("traceEvents", Json::Arr(all)),
    ])
}

/// Exports a sampled [`TimeSeries`] as chrome-trace counter events
/// (`"ts *"` counter tracks), one per column group.
pub fn timeseries_counters(ts: &TimeSeries) -> Vec<Json> {
    let mut events = Vec::new();
    for (i, &t) in ts.t_ns.iter().enumerate() {
        let t = Time::from_nanos(t);
        events.push(counter(
            "ts power".to_string(),
            t,
            vec![("watts", Json::f64(ts.power_w[i]))],
        ));
        events.push(counter(
            "ts mean freq".to_string(),
            t,
            vec![("ghz", Json::f64(ts.mean_freq_khz[i] as f64 / 1e6))],
        ));
        events.push(counter(
            "ts runnable".to_string(),
            t,
            vec![("count", Json::u64(ts.runnable[i]))],
        ));
        events.push(counter(
            "ts nest".to_string(),
            t,
            vec![
                ("primary", Json::u64(ts.nest_primary[i])),
                ("reserve", Json::u64(ts.nest_reserve[i])),
            ],
        ));
        for (s, col) in ts.socket_util.iter().enumerate() {
            events.push(counter(
                format!("ts util s{s}"),
                t,
                vec![("busy_fraction", Json::f64(col[i]))],
            ));
        }
        for (x, col) in ts.ccx_util.iter().enumerate() {
            events.push(counter(
                format!("ts util x{x}"),
                t,
                vec![("busy_fraction", Json::f64(col[i]))],
            ));
        }
    }
    events
}

/// Exports `log` with the sampled [`TimeSeries`] appended as counter
/// tracks — the full observability view in one Perfetto-loadable file.
pub fn chrome_trace_with_timeseries(log: &TraceLog, ts: &TimeSeries) -> Json {
    let mut json = chrome_trace_json(log);
    if let Json::Obj(fields) = &mut json {
        for (key, value) in fields.iter_mut() {
            if key == "traceEvents" {
                if let Json::Arr(events) = value {
                    events.extend(timeseries_counters(ts));
                }
            }
        }
    }
    json
}

#[cfg(test)]
mod tests {
    use super::*;
    use nest_simcore::{Freq, PlacementPath, StopReason};

    fn demo_log() -> TraceLog {
        let t = Time::from_micros;
        TraceLog {
            events: vec![
                (
                    t(0),
                    TraceEvent::TaskCreated {
                        task: TaskId(0),
                        label: "worker".into(),
                        parent: None,
                    },
                ),
                (
                    t(1),
                    TraceEvent::Placed {
                        task: TaskId(0),
                        core: CoreId(2),
                        path: PlacementPath::NestPrimary,
                    },
                ),
                (
                    t(1),
                    TraceEvent::NestExpand {
                        core: CoreId(2),
                        primary: 1,
                        reserve: 0,
                    },
                ),
                (
                    t(2),
                    TraceEvent::RunStart {
                        task: TaskId(0),
                        core: CoreId(2),
                    },
                ),
                (
                    t(3),
                    TraceEvent::FreqChange {
                        core: CoreId(2),
                        freq: Freq::from_ghz(2.5),
                    },
                ),
                (
                    t(5),
                    TraceEvent::RunStop {
                        task: TaskId(0),
                        core: CoreId(2),
                        reason: StopReason::Block,
                    },
                ),
                (t(5), TraceEvent::SpinStart { core: CoreId(2) }),
                (t(6), TraceEvent::RunnableCount { count: 0 }),
            ],
            dropped: 0,
            duration: t(8),
        }
    }

    fn phases_named(json: &Json, ph: &str) -> Vec<String> {
        json.get("traceEvents")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some(ph))
            .map(|e| e.get("name").and_then(Json::as_str).unwrap().to_string())
            .collect()
    }

    #[test]
    fn exports_spans_counters_instants_and_metadata() {
        let json = chrome_trace_json(&demo_log());
        let spans = phases_named(&json, "X");
        assert!(
            spans.contains(&"worker".to_string()),
            "run span named by label"
        );
        assert!(
            spans.contains(&"spin".to_string()),
            "open spin closed at end"
        );
        let counters = phases_named(&json, "C");
        assert!(counters.contains(&"freq c02".to_string()));
        assert!(counters.contains(&"runnable".to_string()));
        assert!(counters.contains(&"nest".to_string()));
        let instants = phases_named(&json, "i");
        assert!(instants.contains(&"place NestPrimary".to_string()));
        assert!(instants.contains(&"nest expand".to_string()));
        let meta = phases_named(&json, "M");
        assert!(meta.contains(&"process_name".to_string()));
        assert!(meta.contains(&"thread_name".to_string()));
    }

    #[test]
    fn run_span_timing_is_lossless_microseconds() {
        let json = chrome_trace_json(&demo_log());
        let events = json.get("traceEvents").and_then(Json::as_arr).unwrap();
        let run = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("worker"))
            .unwrap();
        assert_eq!(run.get("ts"), Some(&Json::Num("2.000".into())));
        assert_eq!(run.get("dur"), Some(&Json::Num("3.000".into())));
        assert_eq!(run.get("tid").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn timeseries_counters_ride_along_as_counter_tracks() {
        let ts = TimeSeries {
            interval_ns: 1_000_000,
            truncated_halvings: 0,
            t_ns: vec![1_000_000, 2_000_000],
            power_w: vec![100.0, 120.0],
            mean_freq_khz: vec![2_100_000, 2_800_000],
            runnable: vec![3, 1],
            nest_primary: vec![2, 2],
            nest_reserve: vec![1, 0],
            socket_util: vec![vec![0.5, 0.25]],
            ccx_util: vec![vec![0.5, 0.25], vec![0.0, 0.0]],
        };
        let json = chrome_trace_with_timeseries(&demo_log(), &ts);
        let counters = phases_named(&json, "C");
        for name in ["ts power", "ts mean freq", "ts runnable", "ts nest"] {
            assert_eq!(
                counters.iter().filter(|c| *c == name).count(),
                2,
                "two samples of {name}"
            );
        }
        assert!(counters.contains(&"ts util s0".to_string()));
        assert!(counters.contains(&"ts util x1".to_string()));
        let text = json.to_pretty();
        assert_eq!(nest_simcore::json::parse(&text).unwrap(), json);
    }

    #[test]
    fn round_trips_through_the_in_tree_codec() {
        let json = chrome_trace_json(&demo_log());
        let text = json.to_pretty();
        let parsed = nest_simcore::json::parse(&text).expect("valid JSON");
        assert_eq!(parsed, json);
    }
}
