//! Runtime invariant checking over the trace stream.
//!
//! [`InvariantChecker`] is a [`Probe`] that replays the engine's
//! kernel-state machine from the trace alone and validates consistency
//! on every event:
//!
//! * a task runs on at most one core, and a core runs at most one task
//!   (RunStart/RunStop pairing, per task *and* per core);
//! * no new activity — placement, run start, spin start — ever targets
//!   an offline core (run *stops* on a dead core are legal: the engine
//!   emits them while migrating its victims);
//! * Nest's primary nest stays inside the online set: a core must have
//!   been shed (NestShrink) before its CoreOffline, and NestExpand must
//!   target an online core; the primary-size payloads must agree with
//!   the set the trace implies;
//! * every frequency reported by FreqChange lies within the machine's
//!   `[fmin, fmax]` envelope — throttling caps are floored at `fmin`, so
//!   even faulted runs must respect it;
//! * spin sessions pair up (no double SpinStart, no SpinEnd without a
//!   spin, no spin on a busy core);
//! * throttle factors stay in `(0, 1]`.
//!
//! Two modes: **fail-fast** panics on the first violation (for tests:
//! the panic message names the rule, the event, and the simulation
//! time), while the default **counting** mode tallies violations per
//! rule into a shared [`InvariantCounts`] that the harness merges into
//! `.telemetry.json`. Like every probe, the checker only observes —
//! attaching it cannot perturb a run.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::rc::Rc;

use nest_simcore::json::{obj, Json};
use nest_simcore::{snap, Probe, TaskId, Time, TraceEvent};

/// Registry kind under which [`InvariantChecker`] snapshots itself.
pub const INVARIANT_CHECKER_KIND: &str = "obs.invariants";

/// Every rule name the checker can tally. Restore maps snapshot strings
/// back to these `&'static str`s (the [`InvariantCounts::by_rule`] keys),
/// so a new rule must be added here too — the round-trip test catches a
/// missing entry.
const RULE_NAMES: &[&str] = &[
    "core-out-of-range",
    "double-occupancy",
    "double-offline",
    "double-online",
    "double-spin-start",
    "exit-while-running",
    "freq-out-of-range",
    "nest-expand-offline",
    "nest-size-mismatch",
    "offline-core-in-primary",
    "placed-offline",
    "run-start-offline",
    "run-start-while-spinning",
    "run-stop-mismatch",
    "spin-end-without-spin",
    "spin-start-offline",
    "spin-while-running",
    "task-on-two-cores",
    "throttle-factor-out-of-range",
];

/// Violation tallies produced by a counting-mode [`InvariantChecker`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct InvariantCounts {
    /// Total trace events inspected.
    pub events_checked: u64,
    /// Total violations across all rules.
    pub violations: u64,
    /// Violations per rule name, in stable (sorted) order.
    pub by_rule: BTreeMap<&'static str, u64>,
    /// Tasks that were woken but never placed by the end of the run.
    /// On a *completed* run this is always zero (a task with a pending
    /// wakeup is live, and live tasks keep the run going); on a
    /// horizon-truncated run a wakeup caught mid-flight is benign, so
    /// this is reported separately rather than counted as a violation.
    pub woken_unplaced_at_finish: u64,
    /// Tasks with a placement still in flight (Placed, but no RunStart,
    /// further placement, or exit) when the run ended. Same caveat as
    /// [`InvariantCounts::woken_unplaced_at_finish`]: only suspicious
    /// when the run completed, which the engine itself precludes.
    pub placed_unstarted_at_finish: u64,
    /// Whether every created task had exited when the run finished.
    pub completed: bool,
}

impl InvariantCounts {
    /// Serializes the tallies as the `invariants` telemetry block.
    pub fn to_json(&self) -> Json {
        let rules: Vec<(String, Json)> = self
            .by_rule
            .iter()
            .map(|(rule, n)| (rule.to_string(), Json::u64(*n)))
            .collect();
        obj(vec![
            ("events_checked", Json::u64(self.events_checked)),
            ("violations", Json::u64(self.violations)),
            ("by_rule", Json::Obj(rules)),
            (
                "woken_unplaced_at_finish",
                Json::u64(self.woken_unplaced_at_finish),
            ),
            (
                "placed_unstarted_at_finish",
                Json::u64(self.placed_unstarted_at_finish),
            ),
            ("completed", Json::Bool(self.completed)),
        ])
    }

    /// Merges another run's tallies into this one (rule-wise sums; the
    /// finish-time diagnostics add, `completed` ANDs).
    pub fn merge(&mut self, other: &InvariantCounts) {
        self.events_checked += other.events_checked;
        self.violations += other.violations;
        for (rule, n) in &other.by_rule {
            *self.by_rule.entry(rule).or_insert(0) += n;
        }
        self.woken_unplaced_at_finish += other.woken_unplaced_at_finish;
        self.placed_unstarted_at_finish += other.placed_unstarted_at_finish;
        self.completed &= other.completed;
    }
}

/// A [`Probe`] that validates kernel-state consistency on every event.
///
/// Construct with [`InvariantChecker::new`] (counting mode) and opt into
/// panics with [`InvariantChecker::fail_fast`]. One checker validates
/// one engine run; attach a fresh one per run.
pub struct InvariantChecker {
    fail_fast: bool,
    lo_khz: u64,
    hi_khz: u64,
    online: Vec<bool>,
    spinning: Vec<bool>,
    running: Vec<Option<TaskId>>,
    task_core: HashMap<TaskId, usize>,
    primary: HashSet<u32>,
    woken_pending: HashSet<TaskId>,
    placed_pending: HashSet<TaskId>,
    created: u64,
    exited: u64,
    counts: Rc<RefCell<InvariantCounts>>,
}

impl InvariantChecker {
    /// A counting-mode checker for a machine of `n_cores` whose valid
    /// frequency envelope is `[freq_lo_khz, freq_hi_khz]` (pass `fmin`
    /// and the single-core turbo limit `fmax`). Returns the checker and
    /// a shared handle to its tallies, live as the run progresses and
    /// final after the engine calls `on_finish`.
    pub fn new(
        n_cores: usize,
        freq_lo_khz: u64,
        freq_hi_khz: u64,
    ) -> (InvariantChecker, Rc<RefCell<InvariantCounts>>) {
        let counts = Rc::new(RefCell::new(InvariantCounts {
            completed: false,
            ..InvariantCounts::default()
        }));
        let checker = InvariantChecker {
            fail_fast: false,
            lo_khz: freq_lo_khz,
            hi_khz: freq_hi_khz,
            online: vec![true; n_cores],
            spinning: vec![false; n_cores],
            running: vec![None; n_cores],
            task_core: HashMap::new(),
            primary: HashSet::new(),
            woken_pending: HashSet::new(),
            placed_pending: HashSet::new(),
            created: 0,
            exited: 0,
            counts: Rc::clone(&counts),
        };
        (checker, counts)
    }

    /// Switches the checker to fail-fast mode: the first violation
    /// panics with the rule name, the offending event, and the
    /// simulation time. Use in tests where any inconsistency should
    /// abort loudly.
    pub fn fail_fast(mut self) -> InvariantChecker {
        self.fail_fast = true;
        self
    }

    fn violation(&mut self, now: Time, rule: &'static str, detail: String) {
        if self.fail_fast {
            panic!("invariant violation [{rule}] at {now}: {detail}");
        }
        let mut c = self.counts.borrow_mut();
        c.violations += 1;
        *c.by_rule.entry(rule).or_insert(0) += 1;
    }

    fn check_online(&mut self, now: Time, core: u32, rule: &'static str, what: &str) {
        let idx = core as usize;
        if idx >= self.online.len() {
            self.violation(now, "core-out-of-range", format!("{what} on core {core}"));
        } else if !self.online[idx] {
            self.violation(now, rule, format!("{what} on offline core {core}"));
        }
    }
}

impl Probe for InvariantChecker {
    fn on_event(&mut self, now: Time, event: &TraceEvent) {
        self.counts.borrow_mut().events_checked += 1;
        match *event {
            TraceEvent::TaskCreated { .. } => self.created += 1,
            TraceEvent::TaskExited { task } => {
                self.exited += 1;
                if let Some(core) = self.task_core.remove(&task) {
                    self.violation(
                        now,
                        "exit-while-running",
                        format!("{task:?} exited while still running on core {core}"),
                    );
                    self.running[core] = None;
                }
                self.woken_pending.remove(&task);
                self.placed_pending.remove(&task);
            }
            TraceEvent::Placed { task, core, .. } => {
                self.check_online(now, core.0, "placed-offline", "placement");
                self.woken_pending.remove(&task);
                self.placed_pending.insert(task);
            }
            TraceEvent::RunStart { task, core } => {
                self.check_online(now, core.0, "run-start-offline", "run start");
                let idx = core.0 as usize;
                if idx < self.running.len() {
                    if self.spinning[idx] {
                        self.violation(
                            now,
                            "run-start-while-spinning",
                            format!("core {core:?} started {task:?} without ending its spin"),
                        );
                        self.spinning[idx] = false;
                    }
                    if let Some(prev) = self.running[idx] {
                        self.violation(
                            now,
                            "double-occupancy",
                            format!("core {core:?} started {task:?} while running {prev:?}"),
                        );
                    }
                    self.running[idx] = Some(task);
                }
                if let Some(other) = self.task_core.insert(task, idx) {
                    if other != idx {
                        self.violation(
                            now,
                            "task-on-two-cores",
                            format!("{task:?} started on core {core:?} while on core {other}"),
                        );
                        if other < self.running.len() && self.running[other] == Some(task) {
                            self.running[other] = None;
                        }
                    }
                }
                self.woken_pending.remove(&task);
                self.placed_pending.remove(&task);
            }
            TraceEvent::RunStop { task, core, .. } => {
                let idx = core.0 as usize;
                if idx < self.running.len() && self.running[idx] == Some(task) {
                    self.running[idx] = None;
                    self.task_core.remove(&task);
                } else {
                    let actual = self.running.get(idx).copied().flatten();
                    self.violation(
                        now,
                        "run-stop-mismatch",
                        format!("RunStop for {task:?} on core {core:?}, which runs {actual:?}"),
                    );
                }
            }
            TraceEvent::Woken { task } => {
                self.woken_pending.insert(task);
            }
            TraceEvent::SpinStart { core } => {
                self.check_online(now, core.0, "spin-start-offline", "spin start");
                let idx = core.0 as usize;
                if idx < self.spinning.len() {
                    if self.spinning[idx] {
                        self.violation(
                            now,
                            "double-spin-start",
                            format!("core {core:?} started a spin while already spinning"),
                        );
                    }
                    if self.running[idx].is_some() {
                        self.violation(
                            now,
                            "spin-while-running",
                            format!("core {core:?} started a spin while running a task"),
                        );
                    }
                    self.spinning[idx] = true;
                }
            }
            TraceEvent::SpinEnd { core } => {
                let idx = core.0 as usize;
                if idx < self.spinning.len() && !self.spinning[idx] {
                    self.violation(
                        now,
                        "spin-end-without-spin",
                        format!("core {core:?} ended a spin it never started"),
                    );
                }
                if idx < self.spinning.len() {
                    self.spinning[idx] = false;
                }
            }
            TraceEvent::FreqChange { core, freq } => {
                let khz = freq.as_khz();
                if khz < self.lo_khz || khz > self.hi_khz {
                    self.violation(
                        now,
                        "freq-out-of-range",
                        format!(
                            "core {core:?} at {khz} kHz, outside [{}, {}]",
                            self.lo_khz, self.hi_khz
                        ),
                    );
                }
            }
            TraceEvent::NestExpand {
                core,
                primary: size,
                ..
            } => {
                self.check_online(now, core.0, "nest-expand-offline", "nest expansion");
                self.primary.insert(core.0);
                if self.primary.len() != size as usize {
                    self.violation(
                        now,
                        "nest-size-mismatch",
                        format!(
                            "NestExpand reports primary={size}, trace implies {}",
                            self.primary.len()
                        ),
                    );
                }
            }
            TraceEvent::NestShrink {
                core,
                primary: size,
                ..
            }
            | TraceEvent::NestCompaction {
                core,
                primary: size,
                ..
            } => {
                // A shrink may concern the reserve nest only, in which
                // case the primary set is untouched and remove() no-ops;
                // the size payload must agree either way.
                self.primary.remove(&core.0);
                if self.primary.len() != size as usize {
                    self.violation(
                        now,
                        "nest-size-mismatch",
                        format!(
                            "nest shrink reports primary={size}, trace implies {}",
                            self.primary.len()
                        ),
                    );
                }
            }
            TraceEvent::CoreOffline { core } => {
                let idx = core.0 as usize;
                if idx < self.online.len() && !self.online[idx] {
                    self.violation(
                        now,
                        "double-offline",
                        format!("core {core:?} offlined while already offline"),
                    );
                }
                if self.primary.contains(&core.0) {
                    self.violation(
                        now,
                        "offline-core-in-primary",
                        format!("core {core:?} went offline while still in the primary nest"),
                    );
                    self.primary.remove(&core.0);
                }
                if idx < self.online.len() {
                    self.online[idx] = false;
                }
            }
            TraceEvent::CoreOnline { core } => {
                let idx = core.0 as usize;
                if idx < self.online.len() && self.online[idx] {
                    self.violation(
                        now,
                        "double-online",
                        format!("core {core:?} onlined while already online"),
                    );
                }
                if idx < self.online.len() {
                    self.online[idx] = true;
                }
            }
            TraceEvent::SocketThrottle { socket, factor } => {
                if !(factor > 0.0 && factor <= 1.0) {
                    self.violation(
                        now,
                        "throttle-factor-out-of-range",
                        format!("socket {socket} throttled to {factor}"),
                    );
                }
            }
            TraceEvent::RunnableCount { .. } => {}
        }
    }

    fn on_finish(&mut self, _now: Time) {
        let mut c = self.counts.borrow_mut();
        c.woken_unplaced_at_finish = self.woken_pending.len() as u64;
        c.placed_unstarted_at_finish = self.placed_pending.len() as u64;
        c.completed = self.created > 0 && self.created == self.exited;
    }

    fn snap(&self) -> Option<(&'static str, Json)> {
        let bool_arr = |v: &[bool]| Json::Arr(v.iter().map(|&b| Json::Bool(b)).collect());
        // Sets travel sorted so the snapshot bytes are independent of
        // hash iteration order.
        let sorted_tasks = |set: &HashSet<TaskId>| {
            let mut ids: Vec<u32> = set.iter().map(|t| t.0).collect();
            ids.sort_unstable();
            Json::Arr(ids.into_iter().map(|id| Json::u64(id as u64)).collect())
        };
        let mut task_core: Vec<(u32, usize)> =
            self.task_core.iter().map(|(t, &c)| (t.0, c)).collect();
        task_core.sort_unstable();
        let mut primary: Vec<u32> = self.primary.iter().copied().collect();
        primary.sort_unstable();
        let c = self.counts.borrow();
        Some((
            INVARIANT_CHECKER_KIND,
            obj(vec![
                ("online", bool_arr(&self.online)),
                ("spinning", bool_arr(&self.spinning)),
                (
                    "running",
                    Json::Arr(
                        self.running
                            .iter()
                            .map(|t| Json::opt_u64(t.map(|t| t.0 as u64)))
                            .collect(),
                    ),
                ),
                (
                    "task_core",
                    Json::Arr(
                        task_core
                            .into_iter()
                            .map(|(t, c)| Json::Arr(vec![Json::u64(t as u64), Json::usize(c)]))
                            .collect(),
                    ),
                ),
                (
                    "primary",
                    Json::Arr(primary.into_iter().map(|c| Json::u64(c as u64)).collect()),
                ),
                ("woken_pending", sorted_tasks(&self.woken_pending)),
                ("placed_pending", sorted_tasks(&self.placed_pending)),
                ("created", Json::u64(self.created)),
                ("exited", Json::u64(self.exited)),
                ("events_checked", Json::u64(c.events_checked)),
                ("violations", Json::u64(c.violations)),
                (
                    "by_rule",
                    Json::Arr(
                        c.by_rule
                            .iter()
                            .map(|(rule, &n)| Json::Arr(vec![Json::str(rule), Json::u64(n)]))
                            .collect(),
                    ),
                ),
            ]),
        ))
    }

    fn snap_restore(&mut self, state: &Json) -> Result<(), String> {
        let load_bools = |key: &str, want: usize| -> Result<Vec<bool>, String> {
            let arr = snap::get_arr(state, key)?;
            if arr.len() != want {
                return Err(format!(
                    "invariant snapshot \"{key}\" has {} entries, expected {want}",
                    arr.len()
                ));
            }
            arr.iter()
                .map(|b| b.as_bool().ok_or(format!("{key} entry is not a bool")))
                .collect()
        };
        self.online = load_bools("online", self.online.len())?;
        self.spinning = load_bools("spinning", self.spinning.len())?;
        let running = snap::get_arr(state, "running")?;
        if running.len() != self.running.len() {
            return Err(format!(
                "invariant snapshot has {} cores, the machine has {}",
                running.len(),
                self.running.len()
            ));
        }
        for (slot, t) in self.running.iter_mut().zip(running) {
            *slot = if t.is_null() {
                None
            } else {
                Some(TaskId(snap::elem_u64(t)? as u32))
            };
        }
        self.task_core.clear();
        for pair in snap::get_arr(state, "task_core")? {
            let items = pair.as_arr().ok_or("task_core entry is not a pair")?;
            if items.len() != 2 {
                return Err("task_core entry is not a [task, core] pair".to_string());
            }
            self.task_core.insert(
                TaskId(snap::elem_u64(&items[0])? as u32),
                snap::elem_u64(&items[1])? as usize,
            );
        }
        let load_id_set = |key: &str| -> Result<HashSet<TaskId>, String> {
            snap::get_arr(state, key)?
                .iter()
                .map(|id| Ok(TaskId(snap::elem_u64(id)? as u32)))
                .collect()
        };
        self.primary = snap::get_arr(state, "primary")?
            .iter()
            .map(|c| Ok::<u32, String>(snap::elem_u64(c)? as u32))
            .collect::<Result<_, _>>()?;
        self.woken_pending = load_id_set("woken_pending")?;
        self.placed_pending = load_id_set("placed_pending")?;
        self.created = snap::get_u64(state, "created")?;
        self.exited = snap::get_u64(state, "exited")?;
        let mut c = self.counts.borrow_mut();
        c.events_checked = snap::get_u64(state, "events_checked")?;
        c.violations = snap::get_u64(state, "violations")?;
        c.by_rule.clear();
        for pair in snap::get_arr(state, "by_rule")? {
            let items = pair.as_arr().ok_or("by_rule entry is not a pair")?;
            if items.len() != 2 {
                return Err("by_rule entry is not a [rule, count] pair".to_string());
            }
            let name = items[0].as_str().ok_or("rule name is not a string")?;
            let rule = RULE_NAMES
                .iter()
                .find(|r| **r == name)
                .ok_or_else(|| format!("snapshot tallies unknown invariant rule \"{name}\""))?;
            c.by_rule.insert(rule, snap::elem_u64(&items[1])?);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nest_simcore::{CoreId, PlacementPath, StopReason};

    fn t(ns: u64) -> Time {
        Time::from_nanos(ns)
    }

    fn feed(events: &[(u64, TraceEvent)]) -> InvariantCounts {
        let (mut checker, counts) = InvariantChecker::new(4, 1_000_000, 3_900_000);
        for (ns, ev) in events {
            checker.on_event(t(*ns), ev);
        }
        checker.on_finish(t(events.last().map(|(ns, _)| *ns).unwrap_or(0)));
        let out = counts.borrow().clone();
        out
    }

    fn lifecycle(task: u32, core: u32) -> Vec<(u64, TraceEvent)> {
        vec![
            (
                0,
                TraceEvent::TaskCreated {
                    task: TaskId(task),
                    label: format!("t{task}"),
                    parent: None,
                },
            ),
            (
                10,
                TraceEvent::Placed {
                    task: TaskId(task),
                    core: CoreId(core),
                    path: PlacementPath::CfsFork,
                },
            ),
            (
                20,
                TraceEvent::RunStart {
                    task: TaskId(task),
                    core: CoreId(core),
                },
            ),
            (
                30,
                TraceEvent::RunStop {
                    task: TaskId(task),
                    core: CoreId(core),
                    reason: StopReason::Exit,
                },
            ),
            (30, TraceEvent::TaskExited { task: TaskId(task) }),
        ]
    }

    #[test]
    fn clean_lifecycle_has_no_violations() {
        let c = feed(&lifecycle(1, 2));
        assert_eq!(c.violations, 0);
        assert_eq!(c.events_checked, 5);
        assert!(c.completed);
        assert_eq!(c.woken_unplaced_at_finish, 0);
        assert_eq!(c.placed_unstarted_at_finish, 0);
    }

    #[test]
    fn double_occupancy_and_two_cores_are_caught() {
        let events = vec![
            (
                0,
                TraceEvent::RunStart {
                    task: TaskId(1),
                    core: CoreId(0),
                },
            ),
            // Second task on the same core.
            (
                5,
                TraceEvent::RunStart {
                    task: TaskId(2),
                    core: CoreId(0),
                },
            ),
            // Task 2 also starts on core 1 without stopping.
            (
                9,
                TraceEvent::RunStart {
                    task: TaskId(2),
                    core: CoreId(1),
                },
            ),
        ];
        let c = feed(&events);
        assert_eq!(c.by_rule["double-occupancy"], 1);
        assert_eq!(c.by_rule["task-on-two-cores"], 1);
        assert_eq!(c.violations, 2);
    }

    #[test]
    fn activity_on_offline_cores_is_caught() {
        let events = vec![
            (0, TraceEvent::CoreOffline { core: CoreId(3) }),
            (
                1,
                TraceEvent::Placed {
                    task: TaskId(1),
                    core: CoreId(3),
                    path: PlacementPath::LoadBalance,
                },
            ),
            (
                2,
                TraceEvent::RunStart {
                    task: TaskId(1),
                    core: CoreId(3),
                },
            ),
            (3, TraceEvent::SpinStart { core: CoreId(3) }),
            // A stop on the dead core is legal: migration in progress.
            (
                4,
                TraceEvent::RunStop {
                    task: TaskId(1),
                    core: CoreId(3),
                    reason: StopReason::Preempt,
                },
            ),
        ];
        let c = feed(&events);
        assert_eq!(c.by_rule["placed-offline"], 1);
        assert_eq!(c.by_rule["run-start-offline"], 1);
        assert_eq!(c.by_rule["spin-start-offline"], 1);
        assert!(!c.by_rule.contains_key("run-stop-mismatch"));
    }

    #[test]
    fn primary_nest_must_be_shed_before_offline() {
        let events = vec![
            (
                0,
                TraceEvent::NestExpand {
                    core: CoreId(2),
                    primary: 1,
                    reserve: 0,
                },
            ),
            (5, TraceEvent::CoreOffline { core: CoreId(2) }),
        ];
        let c = feed(&events);
        assert_eq!(c.by_rule["offline-core-in-primary"], 1);

        // The compliant ordering: shed first, then offline.
        let ok = vec![
            (
                0,
                TraceEvent::NestExpand {
                    core: CoreId(2),
                    primary: 1,
                    reserve: 0,
                },
            ),
            (
                5,
                TraceEvent::NestShrink {
                    core: CoreId(2),
                    primary: 0,
                    reserve: 1,
                },
            ),
            (5, TraceEvent::CoreOffline { core: CoreId(2) }),
        ];
        assert_eq!(feed(&ok).violations, 0);
    }

    #[test]
    fn freq_envelope_and_throttle_factor_are_checked() {
        use nest_simcore::Freq;
        let events = vec![
            (
                0,
                TraceEvent::FreqChange {
                    core: CoreId(0),
                    freq: Freq::from_khz(900_000),
                },
            ),
            (
                1,
                TraceEvent::FreqChange {
                    core: CoreId(0),
                    freq: Freq::from_khz(4_000_000),
                },
            ),
            (
                2,
                TraceEvent::FreqChange {
                    core: CoreId(0),
                    freq: Freq::from_khz(2_000_000),
                },
            ),
            (
                3,
                TraceEvent::SocketThrottle {
                    socket: 0,
                    factor: 0.0,
                },
            ),
        ];
        let c = feed(&events);
        assert_eq!(c.by_rule["freq-out-of-range"], 2);
        assert_eq!(c.by_rule["throttle-factor-out-of-range"], 1);
    }

    #[test]
    fn spin_pairing_is_checked() {
        let events = vec![
            (0, TraceEvent::SpinStart { core: CoreId(1) }),
            (1, TraceEvent::SpinStart { core: CoreId(1) }),
            (2, TraceEvent::SpinEnd { core: CoreId(1) }),
            (3, TraceEvent::SpinEnd { core: CoreId(1) }),
        ];
        let c = feed(&events);
        assert_eq!(c.by_rule["double-spin-start"], 1);
        assert_eq!(c.by_rule["spin-end-without-spin"], 1);
    }

    #[test]
    fn lost_wakeup_is_reported_at_finish() {
        let events = vec![
            (
                0,
                TraceEvent::TaskCreated {
                    task: TaskId(1),
                    label: "t".to_string(),
                    parent: None,
                },
            ),
            (5, TraceEvent::Woken { task: TaskId(1) }),
        ];
        let c = feed(&events);
        assert_eq!(c.woken_unplaced_at_finish, 1);
        assert!(!c.completed);
    }

    #[test]
    #[should_panic(expected = "invariant violation [double-occupancy]")]
    fn fail_fast_panics_with_rule_name() {
        let (checker, _counts) = InvariantChecker::new(4, 1_000_000, 3_900_000);
        let mut checker = checker.fail_fast();
        checker.on_event(
            t(0),
            &TraceEvent::RunStart {
                task: TaskId(1),
                core: CoreId(0),
            },
        );
        checker.on_event(
            t(1),
            &TraceEvent::RunStart {
                task: TaskId(2),
                core: CoreId(0),
            },
        );
    }

    #[test]
    fn merge_sums_rule_wise() {
        let mut a = feed(&lifecycle(1, 0));
        let b = feed(&[(0, TraceEvent::SpinEnd { core: CoreId(0) })]);
        a.merge(&b);
        assert_eq!(a.by_rule["spin-end-without-spin"], 1);
        assert_eq!(a.violations, 1);
        assert_eq!(a.events_checked, 6);
        assert!(!a.completed, "merge ANDs completion");
    }

    #[test]
    fn to_json_round_trips_the_counts() {
        let c = feed(&[(0, TraceEvent::SpinEnd { core: CoreId(2) })]);
        let json = c.to_json();
        let text = json.to_pretty();
        assert!(text.contains("\"violations\": 1"), "{text}");
        assert!(text.contains("spin-end-without-spin"), "{text}");
    }
}
