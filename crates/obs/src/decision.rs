//! Scheduling-decision metrics.
//!
//! [`DecisionMetricsProbe`] watches one run's trace and aggregates the
//! decision-level quantities the paper reasons about: how long woken
//! tasks wait before running, which placement path fired, how often tasks
//! migrate, how often Nest falls back to CFS, how much time cores burn
//! spinning, and how the nests' occupancy evolves. The result is a plain
//! [`DecisionMetrics`] of order-independent sums, so per-run and per-cell
//! metrics merge associatively; the harness folds them in slot order and
//! writes the aggregate into every `.telemetry.json` sidecar.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use nest_simcore::json::{obj, Json};
use nest_simcore::{snap, CoreId, PlacementPath, Probe, TaskId, Time, TraceEvent};

/// Registry kind under which [`DecisionMetricsProbe`] snapshots itself.
pub const DECISION_METRICS_PROBE_KIND: &str = "obs.decision_metrics";

/// Upper edges (ns) of the log-scale wakeup→run latency buckets: powers
/// of two from 2^10 ns (≈1 µs) to 2^26 ns (≈67 ms). Bucket `i` counts
/// latencies in `(edge[i-1], edge[i]]`; one extra overflow bucket catches
/// longer latencies.
pub const LATENCY_BUCKET_EDGES_NS: [u64; 17] = [
    1 << 10,
    1 << 11,
    1 << 12,
    1 << 13,
    1 << 14,
    1 << 15,
    1 << 16,
    1 << 17,
    1 << 18,
    1 << 19,
    1 << 20,
    1 << 21,
    1 << 22,
    1 << 23,
    1 << 24,
    1 << 25,
    1 << 26,
];

/// Points kept in the nest-occupancy timeline before it is truncated.
pub const TIMELINE_CAP: usize = 1024;

/// Aggregated decision metrics over one or more runs.
///
/// Every field is an order-independent sum or max over runs (the
/// occupancy timeline is the exception: it belongs to the first run that
/// contributed one), so merging in any grouping yields the same values.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DecisionMetrics {
    /// Runs merged into this aggregate.
    pub runs: u64,
    /// Total simulated nanoseconds across those runs.
    pub sim_ns: u64,
    /// Latency histogram counts, one per [`LATENCY_BUCKET_EDGES_NS`] edge
    /// plus a final overflow bucket.
    pub latency_counts: Vec<u64>,
    /// Total wakeup→run latency samples.
    pub latency_samples: u64,
    /// Summed wakeup→run latency in nanoseconds.
    pub latency_sum_ns: u64,
    /// Placement counts indexed by [`PlacementPath::ALL`].
    pub placements: Vec<u64>,
    /// Run starts on a different core than the task's previous run.
    pub migrations: u64,
    /// Migrations whose source and destination lie in different CCXs
    /// (last-level-cache domains).
    pub cross_ccx_migrations: u64,
    /// Migrations whose source and destination lie in different sockets.
    pub cross_socket_migrations: u64,
    /// Per-core idle-spin nanoseconds.
    pub spin_ns: Vec<u64>,
    /// Σ primary-nest-size · dt (ns·cores), for the time-weighted mean.
    pub nest_primary_ns: u64,
    /// Σ reserve-nest-size · dt (ns·cores).
    pub nest_reserve_ns: u64,
    /// Peak primary-nest size.
    pub nest_primary_max: u32,
    /// Peak reserve-nest size.
    pub nest_reserve_max: u32,
    /// Nest lifecycle transitions (expand + shrink + compaction).
    pub nest_transitions: u64,
    /// Compaction demotions alone.
    pub nest_compactions: u64,
    /// Σ (primary-nest members in CCX i) · dt (ns·cores), one entry per
    /// CCX — the per-domain nest occupancy integral.
    pub nest_ccx_primary_ns: Vec<u64>,
    /// `(t_ns, primary, reserve)` nest-size samples of the first run that
    /// contributed one, capped at [`TIMELINE_CAP`] points.
    pub occupancy_timeline: Vec<(u64, u32, u32)>,
    /// `true` if the timeline hit the cap.
    pub timeline_truncated: bool,
}

fn add_assign(dst: &mut Vec<u64>, src: &[u64]) {
    if dst.len() < src.len() {
        dst.resize(src.len(), 0);
    }
    for (d, s) in dst.iter_mut().zip(src) {
        *d += s;
    }
}

impl DecisionMetrics {
    /// The latency bucket index for a sample of `ns` nanoseconds.
    pub fn latency_bucket(ns: u64) -> usize {
        LATENCY_BUCKET_EDGES_NS
            .iter()
            .position(|&edge| ns <= edge)
            .unwrap_or(LATENCY_BUCKET_EDGES_NS.len())
    }

    /// Folds `other` into `self`.
    pub fn merge(&mut self, other: &DecisionMetrics) {
        self.runs += other.runs;
        self.sim_ns += other.sim_ns;
        add_assign(&mut self.latency_counts, &other.latency_counts);
        self.latency_samples += other.latency_samples;
        self.latency_sum_ns += other.latency_sum_ns;
        add_assign(&mut self.placements, &other.placements);
        self.migrations += other.migrations;
        self.cross_ccx_migrations += other.cross_ccx_migrations;
        self.cross_socket_migrations += other.cross_socket_migrations;
        add_assign(&mut self.spin_ns, &other.spin_ns);
        self.nest_primary_ns += other.nest_primary_ns;
        self.nest_reserve_ns += other.nest_reserve_ns;
        self.nest_primary_max = self.nest_primary_max.max(other.nest_primary_max);
        self.nest_reserve_max = self.nest_reserve_max.max(other.nest_reserve_max);
        self.nest_transitions += other.nest_transitions;
        self.nest_compactions += other.nest_compactions;
        add_assign(&mut self.nest_ccx_primary_ns, &other.nest_ccx_primary_ns);
        if self.occupancy_timeline.is_empty() && !other.occupancy_timeline.is_empty() {
            self.occupancy_timeline = other.occupancy_timeline.clone();
            self.timeline_truncated = other.timeline_truncated;
        }
    }

    /// Total placements across all paths.
    pub fn total_placements(&self) -> u64 {
        self.placements.iter().sum()
    }

    /// The count for one placement path.
    pub fn placement_count(&self, path: PlacementPath) -> u64 {
        self.placements.get(path.index()).copied().unwrap_or(0)
    }

    /// Simulated seconds across all runs.
    pub fn sim_secs(&self) -> f64 {
        self.sim_ns as f64 / 1e9
    }

    /// Migrations per simulated second.
    pub fn migrations_per_sec(&self) -> Option<f64> {
        (self.sim_ns > 0).then(|| self.migrations as f64 / self.sim_secs())
    }

    /// Cross-CCX migrations per simulated second.
    pub fn cross_ccx_migrations_per_sec(&self) -> Option<f64> {
        (self.sim_ns > 0).then(|| self.cross_ccx_migrations as f64 / self.sim_secs())
    }

    /// Cross-socket migrations per simulated second.
    pub fn cross_socket_migrations_per_sec(&self) -> Option<f64> {
        (self.sim_ns > 0).then(|| self.cross_socket_migrations as f64 / self.sim_secs())
    }

    /// Time-weighted mean primary-nest members in CCX `ccx`.
    pub fn mean_nest_primary_in_ccx(&self, ccx: usize) -> Option<f64> {
        let ns = *self.nest_ccx_primary_ns.get(ccx)?;
        (self.sim_ns > 0).then(|| ns as f64 / self.sim_ns as f64)
    }

    /// Mean wakeup→run latency in nanoseconds.
    pub fn mean_latency_ns(&self) -> Option<f64> {
        (self.latency_samples > 0).then(|| self.latency_sum_ns as f64 / self.latency_samples as f64)
    }

    /// The fraction of Nest placements that fell back to CFS
    /// (`NestFallback` over all `Nest*` paths); `None` off the Nest
    /// policy.
    pub fn nest_fallback_rate(&self) -> Option<f64> {
        let fallback = self.placement_count(PlacementPath::NestFallback);
        let nest_total = fallback
            + self.placement_count(PlacementPath::NestPrimary)
            + self.placement_count(PlacementPath::NestReserve);
        (nest_total > 0).then(|| fallback as f64 / nest_total as f64)
    }

    /// Total idle-spin nanoseconds across cores.
    pub fn spin_total_ns(&self) -> u64 {
        self.spin_ns.iter().sum()
    }

    /// Machine-wide spin duty-cycle: spin time over total core time.
    pub fn spin_duty_cycle(&self) -> Option<f64> {
        let denom = self.sim_ns.saturating_mul(self.spin_ns.len() as u64);
        (denom > 0).then(|| self.spin_total_ns() as f64 / denom as f64)
    }

    /// One core's spin duty-cycle.
    pub fn spin_duty_of(&self, core: usize) -> Option<f64> {
        let spin = *self.spin_ns.get(core)?;
        (self.sim_ns > 0).then(|| spin as f64 / self.sim_ns as f64)
    }

    /// Time-weighted mean primary-nest size.
    pub fn mean_nest_primary(&self) -> Option<f64> {
        (self.sim_ns > 0).then(|| self.nest_primary_ns as f64 / self.sim_ns as f64)
    }

    /// Time-weighted mean reserve-nest size.
    pub fn mean_nest_reserve(&self) -> Option<f64> {
        (self.sim_ns > 0).then(|| self.nest_reserve_ns as f64 / self.sim_ns as f64)
    }

    /// Serializes the metrics as the `decision_metrics` telemetry block.
    pub fn to_json(&self) -> Json {
        let paths: Vec<(String, Json)> = PlacementPath::ALL
            .iter()
            .map(|p| (format!("{p:?}"), Json::u64(self.placement_count(*p))))
            .collect();
        obj(vec![
            ("runs", Json::u64(self.runs)),
            ("sim_ns", Json::u64(self.sim_ns)),
            (
                "wakeup_latency",
                obj(vec![
                    (
                        "bucket_edges_ns",
                        Json::Arr(
                            LATENCY_BUCKET_EDGES_NS
                                .iter()
                                .map(|&e| Json::u64(e))
                                .collect(),
                        ),
                    ),
                    (
                        "counts",
                        Json::Arr(self.latency_counts.iter().map(|&c| Json::u64(c)).collect()),
                    ),
                    ("samples", Json::u64(self.latency_samples)),
                    ("mean_ns", Json::opt_f64(self.mean_latency_ns())),
                ]),
            ),
            ("placements", Json::Obj(paths)),
            ("migrations", Json::u64(self.migrations)),
            (
                "migrations_per_sec",
                Json::opt_f64(self.migrations_per_sec()),
            ),
            ("cross_ccx_migrations", Json::u64(self.cross_ccx_migrations)),
            (
                "cross_socket_migrations",
                Json::u64(self.cross_socket_migrations),
            ),
            (
                "nest_fallback_rate",
                Json::opt_f64(self.nest_fallback_rate()),
            ),
            (
                "spin",
                obj(vec![
                    (
                        "per_core_ns",
                        Json::Arr(self.spin_ns.iter().map(|&n| Json::u64(n)).collect()),
                    ),
                    ("total_ns", Json::u64(self.spin_total_ns())),
                    ("duty_cycle", Json::opt_f64(self.spin_duty_cycle())),
                ]),
            ),
            (
                "nest",
                obj(vec![
                    ("mean_primary", Json::opt_f64(self.mean_nest_primary())),
                    ("mean_reserve", Json::opt_f64(self.mean_nest_reserve())),
                    ("max_primary", Json::u64(self.nest_primary_max as u64)),
                    ("max_reserve", Json::u64(self.nest_reserve_max as u64)),
                    ("transitions", Json::u64(self.nest_transitions)),
                    ("compactions", Json::u64(self.nest_compactions)),
                    (
                        "per_ccx_primary_ns",
                        Json::Arr(
                            self.nest_ccx_primary_ns
                                .iter()
                                .map(|&n| Json::u64(n))
                                .collect(),
                        ),
                    ),
                    (
                        "occupancy_timeline",
                        Json::Arr(
                            self.occupancy_timeline
                                .iter()
                                .map(|&(t, p, r)| {
                                    Json::Arr(vec![
                                        Json::u64(t),
                                        Json::u64(p as u64),
                                        Json::u64(r as u64),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                    ("timeline_truncated", Json::Bool(self.timeline_truncated)),
                ]),
            ),
        ])
    }
}

/// A probe computing [`DecisionMetrics`] over one run.
pub struct DecisionMetricsProbe {
    out: Rc<RefCell<DecisionMetrics>>,
    m: DecisionMetrics,
    woken_at: HashMap<TaskId, Time>,
    last_core: HashMap<TaskId, CoreId>,
    spin_since: Vec<Option<Time>>,
    cur_primary: u32,
    cur_reserve: u32,
    last_nest_change: Time,
    /// CCX index of each core; all zeros when the probe has no topology.
    ccx_of: Vec<u32>,
    /// Socket index of each core; all zeros when the probe has no topology.
    socket_of: Vec<u32>,
    /// Which cores currently sit in the primary nest.
    nest_member: Vec<bool>,
    /// Primary-nest member count per CCX, derived from `nest_member`.
    cur_ccx_primary: Vec<u32>,
}

impl DecisionMetricsProbe {
    /// Creates a probe for a machine with `n_cores` cores. The handle
    /// receives the metrics after the run finishes. The whole machine is
    /// treated as a single domain; use [`DecisionMetricsProbe::with_domains`]
    /// to classify migrations and occupancy by CCX and socket.
    pub fn new(n_cores: usize) -> (DecisionMetricsProbe, Rc<RefCell<DecisionMetrics>>) {
        Self::with_domains(vec![0; n_cores], vec![0; n_cores])
    }

    /// Creates a probe that attributes migrations and nest occupancy to
    /// scheduling domains. `ccx_of[c]` / `socket_of[c]` give core `c`'s CCX
    /// and socket index; both slices have one entry per core.
    pub fn with_domains(
        ccx_of: Vec<u32>,
        socket_of: Vec<u32>,
    ) -> (DecisionMetricsProbe, Rc<RefCell<DecisionMetrics>>) {
        assert_eq!(
            ccx_of.len(),
            socket_of.len(),
            "domain maps disagree on core count"
        );
        let n_cores = ccx_of.len();
        let n_ccx = ccx_of.iter().map(|&cx| cx as usize + 1).max().unwrap_or(1);
        let out = Rc::new(RefCell::new(DecisionMetrics::default()));
        let probe = DecisionMetricsProbe {
            out: Rc::clone(&out),
            m: DecisionMetrics {
                latency_counts: vec![0; LATENCY_BUCKET_EDGES_NS.len() + 1],
                placements: vec![0; PlacementPath::ALL.len()],
                spin_ns: vec![0; n_cores],
                nest_ccx_primary_ns: vec![0; n_ccx],
                ..DecisionMetrics::default()
            },
            woken_at: HashMap::new(),
            last_core: HashMap::new(),
            spin_since: vec![None; n_cores],
            cur_primary: 0,
            cur_reserve: 0,
            last_nest_change: Time::ZERO,
            ccx_of,
            socket_of,
            nest_member: vec![false; n_cores],
            cur_ccx_primary: vec![0; n_ccx],
        };
        (probe, out)
    }

    /// Accumulates the nest-size integrals up to `now`.
    fn advance_nest(&mut self, now: Time) {
        let dt = now.saturating_since(self.last_nest_change);
        self.m.nest_primary_ns += self.cur_primary as u64 * dt;
        self.m.nest_reserve_ns += self.cur_reserve as u64 * dt;
        for (acc, &members) in self
            .m
            .nest_ccx_primary_ns
            .iter_mut()
            .zip(&self.cur_ccx_primary)
        {
            *acc += members as u64 * dt;
        }
        self.last_nest_change = now;
    }

    /// Marks `core` as inside (or outside) the primary nest, keeping the
    /// per-CCX member counts in step. Call after `advance_nest` so the
    /// integral is charged at the old occupancy.
    fn set_nest_member(&mut self, core: CoreId, member: bool) {
        let Some(slot) = self.nest_member.get_mut(core.index()) else {
            return;
        };
        if *slot == member {
            return;
        }
        *slot = member;
        let cx = self.ccx_of[core.index()] as usize;
        if member {
            self.cur_ccx_primary[cx] += 1;
        } else {
            self.cur_ccx_primary[cx] = self.cur_ccx_primary[cx].saturating_sub(1);
        }
    }

    fn on_nest_sizes(&mut self, now: Time, primary: u32, reserve: u32) {
        self.advance_nest(now);
        self.cur_primary = primary;
        self.cur_reserve = reserve;
        self.m.nest_primary_max = self.m.nest_primary_max.max(primary);
        self.m.nest_reserve_max = self.m.nest_reserve_max.max(reserve);
        self.m.nest_transitions += 1;
        if self.m.occupancy_timeline.len() < TIMELINE_CAP {
            self.m
                .occupancy_timeline
                .push((now.as_nanos(), primary, reserve));
        } else {
            self.m.timeline_truncated = true;
        }
    }
}

impl Probe for DecisionMetricsProbe {
    fn on_event(&mut self, now: Time, event: &TraceEvent) {
        match event {
            TraceEvent::Woken { task } => {
                self.woken_at.insert(*task, now);
            }
            TraceEvent::Placed { path, .. } => {
                self.m.placements[path.index()] += 1;
            }
            TraceEvent::RunStart { task, core } => {
                if let Some(woken) = self.woken_at.remove(task) {
                    let ns = now.saturating_since(woken);
                    self.m.latency_counts[DecisionMetrics::latency_bucket(ns)] += 1;
                    self.m.latency_samples += 1;
                    self.m.latency_sum_ns += ns;
                }
                if let Some(prev) = self.last_core.insert(*task, *core) {
                    if prev != *core {
                        self.m.migrations += 1;
                        let (p, c) = (prev.index(), core.index());
                        if self.ccx_of.get(p) != self.ccx_of.get(c) {
                            self.m.cross_ccx_migrations += 1;
                        }
                        if self.socket_of.get(p) != self.socket_of.get(c) {
                            self.m.cross_socket_migrations += 1;
                        }
                    }
                }
            }
            TraceEvent::SpinStart { core } => {
                if let Some(slot) = self.spin_since.get_mut(core.index()) {
                    *slot = Some(now);
                }
            }
            TraceEvent::SpinEnd { core } => {
                if let Some(since) = self.spin_since.get_mut(core.index()).and_then(Option::take) {
                    self.m.spin_ns[core.index()] += now.saturating_since(since);
                }
            }
            TraceEvent::NestExpand {
                core,
                primary,
                reserve,
            } => {
                self.on_nest_sizes(now, *primary, *reserve);
                self.set_nest_member(*core, true);
            }
            TraceEvent::NestShrink {
                core,
                primary,
                reserve,
            } => {
                self.on_nest_sizes(now, *primary, *reserve);
                self.set_nest_member(*core, false);
            }
            TraceEvent::NestCompaction {
                core,
                primary,
                reserve,
            } => {
                self.on_nest_sizes(now, *primary, *reserve);
                self.set_nest_member(*core, false);
                self.m.nest_compactions += 1;
            }
            _ => {}
        }
    }

    fn on_finish(&mut self, now: Time) {
        for i in 0..self.spin_since.len() {
            if let Some(since) = self.spin_since[i].take() {
                self.m.spin_ns[i] += now.saturating_since(since);
            }
        }
        self.advance_nest(now);
        self.m.sim_ns = now.as_nanos();
        self.m.runs = 1;
        *self.out.borrow_mut() = std::mem::take(&mut self.m);
    }

    fn snap(&self) -> Option<(&'static str, Json)> {
        let u64_arr = |v: &[u64]| Json::Arr(v.iter().map(|&n| Json::u64(n)).collect());
        // Maps travel sorted by task id so the snapshot bytes are
        // independent of HashMap iteration order.
        let mut woken: Vec<(&TaskId, &Time)> = self.woken_at.iter().collect();
        woken.sort_by_key(|(task, _)| task.0);
        let mut cores: Vec<(&TaskId, &CoreId)> = self.last_core.iter().collect();
        cores.sort_by_key(|(task, _)| task.0);
        Some((
            DECISION_METRICS_PROBE_KIND,
            obj(vec![
                ("latency_counts", u64_arr(&self.m.latency_counts)),
                ("latency_samples", Json::u64(self.m.latency_samples)),
                ("latency_sum_ns", Json::u64(self.m.latency_sum_ns)),
                ("placements", u64_arr(&self.m.placements)),
                ("migrations", Json::u64(self.m.migrations)),
                (
                    "cross_ccx_migrations",
                    Json::u64(self.m.cross_ccx_migrations),
                ),
                (
                    "cross_socket_migrations",
                    Json::u64(self.m.cross_socket_migrations),
                ),
                ("spin_ns", u64_arr(&self.m.spin_ns)),
                ("nest_ccx_primary_ns", u64_arr(&self.m.nest_ccx_primary_ns)),
                (
                    "nest_member",
                    Json::Arr(self.nest_member.iter().map(|&b| Json::Bool(b)).collect()),
                ),
                ("nest_primary_ns", Json::u64(self.m.nest_primary_ns)),
                ("nest_reserve_ns", Json::u64(self.m.nest_reserve_ns)),
                (
                    "nest_primary_max",
                    Json::u64(self.m.nest_primary_max as u64),
                ),
                (
                    "nest_reserve_max",
                    Json::u64(self.m.nest_reserve_max as u64),
                ),
                ("nest_transitions", Json::u64(self.m.nest_transitions)),
                ("nest_compactions", Json::u64(self.m.nest_compactions)),
                (
                    "occupancy_timeline",
                    Json::Arr(
                        self.m
                            .occupancy_timeline
                            .iter()
                            .map(|&(t, p, r)| {
                                Json::Arr(vec![
                                    Json::u64(t),
                                    Json::u64(p as u64),
                                    Json::u64(r as u64),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("timeline_truncated", Json::Bool(self.m.timeline_truncated)),
                (
                    "woken_at",
                    Json::Arr(
                        woken
                            .into_iter()
                            .map(|(task, &at)| {
                                Json::Arr(vec![Json::u64(task.0 as u64), snap::time_json(at)])
                            })
                            .collect(),
                    ),
                ),
                (
                    "last_core",
                    Json::Arr(
                        cores
                            .into_iter()
                            .map(|(task, core)| {
                                Json::Arr(vec![Json::u64(task.0 as u64), Json::usize(core.index())])
                            })
                            .collect(),
                    ),
                ),
                (
                    "spin_since",
                    Json::Arr(
                        self.spin_since
                            .iter()
                            .map(|&t| snap::opt_time_json(t))
                            .collect(),
                    ),
                ),
                ("cur_primary", Json::u64(self.cur_primary as u64)),
                ("cur_reserve", Json::u64(self.cur_reserve as u64)),
                ("last_nest_change", snap::time_json(self.last_nest_change)),
            ]),
        ))
    }

    fn snap_restore(&mut self, state: &Json) -> Result<(), String> {
        let load_u64s = |key: &str, want: usize| -> Result<Vec<u64>, String> {
            let arr = snap::get_arr(state, key)?;
            if arr.len() != want {
                return Err(format!(
                    "decision snapshot \"{key}\" has {} entries, expected {want}",
                    arr.len()
                ));
            }
            arr.iter().map(snap::elem_u64).collect()
        };
        self.m.latency_counts = load_u64s("latency_counts", self.m.latency_counts.len())?;
        self.m.latency_samples = snap::get_u64(state, "latency_samples")?;
        self.m.latency_sum_ns = snap::get_u64(state, "latency_sum_ns")?;
        self.m.placements = load_u64s("placements", self.m.placements.len())?;
        self.m.migrations = snap::get_u64(state, "migrations")?;
        self.m.cross_ccx_migrations = snap::get_u64(state, "cross_ccx_migrations")?;
        self.m.cross_socket_migrations = snap::get_u64(state, "cross_socket_migrations")?;
        self.m.spin_ns = load_u64s("spin_ns", self.m.spin_ns.len())?;
        self.m.nest_ccx_primary_ns =
            load_u64s("nest_ccx_primary_ns", self.m.nest_ccx_primary_ns.len())?;
        let members = snap::get_arr(state, "nest_member")?;
        if members.len() != self.nest_member.len() {
            return Err(format!(
                "decision snapshot tracks {} nest cores, the machine has {}",
                members.len(),
                self.nest_member.len()
            ));
        }
        self.cur_ccx_primary.fill(0);
        for (i, entry) in members.iter().enumerate() {
            let member = entry
                .as_bool()
                .ok_or("nest_member entry is not a boolean")?;
            self.nest_member[i] = member;
            if member {
                self.cur_ccx_primary[self.ccx_of[i] as usize] += 1;
            }
        }
        self.m.nest_primary_ns = snap::get_u64(state, "nest_primary_ns")?;
        self.m.nest_reserve_ns = snap::get_u64(state, "nest_reserve_ns")?;
        self.m.nest_primary_max = snap::get_u32(state, "nest_primary_max")?;
        self.m.nest_reserve_max = snap::get_u32(state, "nest_reserve_max")?;
        self.m.nest_transitions = snap::get_u64(state, "nest_transitions")?;
        self.m.nest_compactions = snap::get_u64(state, "nest_compactions")?;
        self.m.occupancy_timeline = snap::get_arr(state, "occupancy_timeline")?
            .iter()
            .map(|entry| {
                let items = entry.as_arr().ok_or("timeline entry is not a triple")?;
                if items.len() != 3 {
                    return Err("timeline entry is not a [t, primary, reserve] triple".to_string());
                }
                Ok((
                    snap::elem_u64(&items[0])?,
                    snap::elem_u64(&items[1])? as u32,
                    snap::elem_u64(&items[2])? as u32,
                ))
            })
            .collect::<Result<Vec<_>, String>>()?;
        self.m.timeline_truncated = snap::get_bool(state, "timeline_truncated")?;
        self.woken_at.clear();
        for pair in snap::get_arr(state, "woken_at")? {
            let items = pair.as_arr().ok_or("woken_at entry is not a pair")?;
            if items.len() != 2 {
                return Err("woken_at entry is not a [task, time] pair".to_string());
            }
            self.woken_at.insert(
                TaskId(snap::elem_u64(&items[0])? as u32),
                Time::from_nanos(snap::elem_u64(&items[1])?),
            );
        }
        self.last_core.clear();
        for pair in snap::get_arr(state, "last_core")? {
            let items = pair.as_arr().ok_or("last_core entry is not a pair")?;
            if items.len() != 2 {
                return Err("last_core entry is not a [task, core] pair".to_string());
            }
            let core = snap::elem_u64(&items[1])? as usize;
            if core >= self.spin_since.len() {
                return Err(format!(
                    "last_core names core {core}, but the machine has {}",
                    self.spin_since.len()
                ));
            }
            self.last_core.insert(
                TaskId(snap::elem_u64(&items[0])? as u32),
                CoreId::from_index(core),
            );
        }
        let spin_since = snap::get_arr(state, "spin_since")?;
        if spin_since.len() != self.spin_since.len() {
            return Err(format!(
                "decision snapshot has {} cores, the machine has {}",
                spin_since.len(),
                self.spin_since.len()
            ));
        }
        for (slot, t) in self.spin_since.iter_mut().zip(spin_since) {
            *slot = if t.is_null() {
                None
            } else {
                Some(Time::from_nanos(snap::elem_u64(t)?))
            };
        }
        self.cur_primary = snap::get_u32(state, "cur_primary")?;
        self.cur_reserve = snap::get_u32(state, "cur_reserve")?;
        self.last_nest_change = snap::get_time(state, "last_nest_change")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe() -> (DecisionMetricsProbe, Rc<RefCell<DecisionMetrics>>) {
        DecisionMetricsProbe::new(4)
    }

    #[test]
    fn latency_buckets_are_half_open_log2() {
        assert_eq!(DecisionMetrics::latency_bucket(0), 0);
        assert_eq!(DecisionMetrics::latency_bucket(1024), 0, "edge inclusive");
        assert_eq!(DecisionMetrics::latency_bucket(1025), 1);
        assert_eq!(
            DecisionMetrics::latency_bucket(u64::MAX),
            LATENCY_BUCKET_EDGES_NS.len(),
            "overflow bucket"
        );
    }

    #[test]
    fn wakeup_to_run_latency_and_migrations() {
        let (mut p, out) = probe();
        let t = Time::from_nanos;
        p.on_event(t(100), &TraceEvent::Woken { task: TaskId(1) });
        p.on_event(
            t(100),
            &TraceEvent::Placed {
                task: TaskId(1),
                core: CoreId(0),
                path: PlacementPath::NestPrimary,
            },
        );
        p.on_event(
            t(2100),
            &TraceEvent::RunStart {
                task: TaskId(1),
                core: CoreId(0),
            },
        );
        // Second stint on another core: a migration, but no new wakeup.
        p.on_event(
            t(9000),
            &TraceEvent::RunStart {
                task: TaskId(1),
                core: CoreId(3),
            },
        );
        p.on_finish(t(10_000));
        let m = out.borrow();
        assert_eq!(m.latency_samples, 1);
        assert_eq!(m.latency_sum_ns, 2000);
        assert_eq!(m.latency_counts[DecisionMetrics::latency_bucket(2000)], 1);
        assert_eq!(m.migrations, 1);
        assert_eq!(m.placement_count(PlacementPath::NestPrimary), 1);
        assert_eq!(m.runs, 1);
        assert_eq!(m.sim_ns, 10_000);
    }

    #[test]
    fn spin_time_closes_open_spans_at_finish() {
        let (mut p, out) = probe();
        let t = Time::from_nanos;
        p.on_event(t(100), &TraceEvent::SpinStart { core: CoreId(1) });
        p.on_event(t(400), &TraceEvent::SpinEnd { core: CoreId(1) });
        p.on_event(t(900), &TraceEvent::SpinStart { core: CoreId(2) });
        p.on_finish(t(1000));
        let m = out.borrow();
        assert_eq!(m.spin_ns, vec![0, 300, 100, 0]);
        assert_eq!(m.spin_total_ns(), 400);
        assert_eq!(m.spin_duty_cycle(), Some(0.1));
    }

    #[test]
    fn nest_occupancy_is_time_weighted() {
        let (mut p, out) = probe();
        let t = Time::from_nanos;
        p.on_event(
            t(200),
            &TraceEvent::NestExpand {
                core: CoreId(0),
                primary: 2,
                reserve: 1,
            },
        );
        p.on_event(
            t(700),
            &TraceEvent::NestCompaction {
                core: CoreId(0),
                primary: 1,
                reserve: 2,
            },
        );
        p.on_finish(t(1000));
        let m = out.borrow();
        // 0 until 200, 2 over [200,700), 1 over [700,1000).
        assert_eq!(m.nest_primary_ns, 2 * 500 + 300);
        assert_eq!(m.nest_reserve_ns, 500 + 2 * 300);
        assert_eq!(m.nest_primary_max, 2);
        assert_eq!(m.nest_transitions, 2);
        assert_eq!(m.nest_compactions, 1);
        assert_eq!(m.occupancy_timeline, vec![(200, 2, 1), (700, 1, 2)]);
        assert!(!m.timeline_truncated);
    }

    #[test]
    fn domains_classify_migrations_and_occupancy() {
        // 8 cores, two sockets of two CCXs each: CCXs {0,1}, {2,3}, {4,5},
        // {6,7}; sockets {0..4}, {4..8}.
        let ccx_of = vec![0, 0, 1, 1, 2, 2, 3, 3];
        let socket_of = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let (mut p, out) = DecisionMetricsProbe::with_domains(ccx_of, socket_of);
        let t = Time::from_nanos;
        let run = |core| TraceEvent::RunStart {
            task: TaskId(1),
            core: CoreId(core),
        };
        p.on_event(t(0), &run(0));
        p.on_event(t(100), &run(1)); // same CCX, same socket
        p.on_event(t(200), &run(2)); // cross CCX, same socket
        p.on_event(t(300), &run(6)); // cross CCX, cross socket
                                     // Primary nest: core 2 (CCX 1) from t=400, core 5 (CCX 2) from
                                     // t=600; core 2 demoted at t=800.
        p.on_event(
            t(400),
            &TraceEvent::NestExpand {
                core: CoreId(2),
                primary: 1,
                reserve: 0,
            },
        );
        p.on_event(
            t(600),
            &TraceEvent::NestExpand {
                core: CoreId(5),
                primary: 2,
                reserve: 0,
            },
        );
        p.on_event(
            t(800),
            &TraceEvent::NestShrink {
                core: CoreId(2),
                primary: 1,
                reserve: 1,
            },
        );
        p.on_finish(t(1000));
        let m = out.borrow();
        assert_eq!(m.migrations, 3);
        assert_eq!(m.cross_ccx_migrations, 2);
        assert_eq!(m.cross_socket_migrations, 1);
        // CCX 1 occupied over [400,800); CCX 2 over [600,1000).
        assert_eq!(m.nest_ccx_primary_ns, vec![0, 400, 400, 0]);
        assert_eq!(m.nest_primary_ns, m.nest_ccx_primary_ns.iter().sum::<u64>());
        assert_eq!(m.mean_nest_primary_in_ccx(1), Some(0.4));
    }

    #[test]
    fn single_domain_probe_reports_no_cross_domain_migrations() {
        let (mut p, out) = probe();
        let t = Time::from_nanos;
        for (at, core) in [(0, 0), (100, 3), (200, 1)] {
            p.on_event(
                t(at),
                &TraceEvent::RunStart {
                    task: TaskId(7),
                    core: CoreId(core),
                },
            );
        }
        p.on_finish(t(1000));
        let m = out.borrow();
        assert_eq!(m.migrations, 2);
        assert_eq!(m.cross_ccx_migrations, 0);
        assert_eq!(m.cross_socket_migrations, 0);
    }

    #[test]
    fn merge_is_order_independent_sums() {
        let (mut p1, out1) = probe();
        let (mut p2, out2) = probe();
        let t = Time::from_nanos;
        for (p, task) in [(&mut p1, TaskId(1)), (&mut p2, TaskId(2))] {
            p.on_event(t(0), &TraceEvent::Woken { task });
            p.on_event(
                t(500),
                &TraceEvent::RunStart {
                    task,
                    core: CoreId(0),
                },
            );
            p.on_finish(t(1000));
        }
        let (a, b) = (out1.borrow(), out2.borrow());
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        // The timeline slot differs by merge order (both empty here); all
        // sums must agree.
        assert_eq!(ab, ba);
        assert_eq!(ab.runs, 2);
        assert_eq!(ab.sim_ns, 2000);
        assert_eq!(ab.latency_samples, 2);
    }

    #[test]
    fn fallback_rate_counts_only_nest_paths() {
        let mut m = DecisionMetrics {
            placements: vec![0; PlacementPath::ALL.len()],
            ..DecisionMetrics::default()
        };
        m.placements[PlacementPath::CfsWakeup.index()] = 10;
        assert_eq!(m.nest_fallback_rate(), None);
        m.placements[PlacementPath::NestPrimary.index()] = 3;
        m.placements[PlacementPath::NestFallback.index()] = 1;
        assert_eq!(m.nest_fallback_rate(), Some(0.25));
    }

    #[test]
    fn json_block_has_the_documented_fields() {
        let (mut p, out) = probe();
        p.on_finish(Time::from_nanos(10));
        let json = out.borrow().to_json();
        for key in [
            "runs",
            "sim_ns",
            "wakeup_latency",
            "placements",
            "migrations",
            "migrations_per_sec",
            "nest_fallback_rate",
            "spin",
            "nest",
        ] {
            assert!(json.get(key).is_some(), "missing {key}");
        }
        let text = json.to_pretty();
        assert_eq!(nest_simcore::json::parse(&text).unwrap(), json);
    }
}
