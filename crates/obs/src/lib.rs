//! Observability for the Nest simulator.
//!
//! The paper diagnoses Nest's behavior by reading `trace-cmd`/kernelshark
//! execution traces and frequency timelines (Figures 2, 8, 9); this crate
//! gives the simulator the same lens. It consumes the engine's
//! [`TraceEvent`](nest_simcore::TraceEvent) stream through two probes:
//!
//! * [`TraceCollector`] — a bounded ring-buffer capture with event-class
//!   and time-window filters, exported to Chrome trace-event JSON by
//!   [`chrome_trace_json`] (loadable in the Perfetto UI or
//!   chrome://tracing);
//! * [`DecisionMetricsProbe`] — aggregates scheduling-decision metrics
//!   (wakeup→run latency histogram, placement-path breakdown,
//!   migrations/sec, Nest fallback rate, spin duty-cycle, nest-occupancy
//!   timeline) into a [`DecisionMetrics`], which the harness merges into
//!   every `.telemetry.json` sidecar;
//! * [`InvariantChecker`] — replays the kernel-state machine from the
//!   trace and validates consistency on every event (task on ≤ 1 core,
//!   nests ⊆ online cores, frequencies inside the machine envelope, …),
//!   either failing fast for tests or tallying [`InvariantCounts`] for
//!   telemetry;
//! * [`TimeSeriesSampler`] — interval-sampled machine state (per-domain
//!   utilization, mean frequency, nest occupancy, runnable depth,
//!   instantaneous power) as a bounded columnar [`TimeSeries`], also
//!   exportable as chrome-trace counter tracks via
//!   [`timeseries_counters`] ([`chrome_trace_with_timeseries`] merges
//!   them into a collected trace, which is what `nest-sim trace` writes).
//!
//! All are strictly observers: they never touch engine state, so running
//! with or without them produces byte-identical `results/*.json`.

#![deny(missing_docs)]

pub mod chrome;
pub mod collector;
pub mod decision;
pub mod invariant;
pub mod timeseries;

pub use chrome::{chrome_trace_json, chrome_trace_with_timeseries, timeseries_counters};
pub use collector::{EventClass, TraceCollector, TraceLog};
pub use decision::{
    DecisionMetrics, DecisionMetricsProbe, DECISION_METRICS_PROBE_KIND, LATENCY_BUCKET_EDGES_NS,
    TIMELINE_CAP,
};
pub use invariant::{InvariantChecker, InvariantCounts, INVARIANT_CHECKER_KIND};
pub use timeseries::{
    TimeSeries, TimeSeriesSampler, DEFAULT_SAMPLE_INTERVAL_NS, SAMPLE_CAP, TIMESERIES_PROBE_KIND,
};
