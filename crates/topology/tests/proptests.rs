//! Property-based tests for CPU sets and topology.

// Property-based tests need the external `proptest` crate; the offline
// default build compiles this file to an empty test binary. Enable with
// `--features proptest` after adding proptest to [dev-dependencies].
#![cfg(feature = "proptest")]

use std::collections::BTreeSet;

use proptest::prelude::*;

use nest_simcore::{CoreId, Freq};
use nest_topology::{
    machine::{FreqSpec, MachineSpec, NumaKind, PowerSpec, TurboDomain},
    CpuSet, Topology,
};

#[derive(Clone, Debug)]
enum Op {
    Insert(u8),
    Remove(u8),
    Clear,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..160).prop_map(Op::Insert),
        (0u8..160).prop_map(Op::Remove),
        Just(Op::Clear),
    ]
}

proptest! {
    /// CpuSet behaves exactly like a BTreeSet<u32> model under arbitrary
    /// operation sequences.
    #[test]
    fn cpuset_matches_model(ops in prop::collection::vec(op_strategy(), 0..300)) {
        let mut set = CpuSet::new(160);
        let mut model: BTreeSet<u32> = BTreeSet::new();
        for op in ops {
            match op {
                Op::Insert(c) => {
                    let a = set.insert(CoreId(c as u32));
                    let b = model.insert(c as u32);
                    prop_assert_eq!(a, b);
                }
                Op::Remove(c) => {
                    let a = set.remove(CoreId(c as u32));
                    let b = model.remove(&(c as u32));
                    prop_assert_eq!(a, b);
                }
                Op::Clear => {
                    set.clear();
                    model.clear();
                }
            }
            prop_assert_eq!(set.len(), model.len());
            prop_assert_eq!(set.is_empty(), model.is_empty());
            let iter: Vec<u32> = set.iter().map(|c| c.0).collect();
            let expect: Vec<u32> = model.iter().copied().collect();
            prop_assert_eq!(iter, expect);
            prop_assert_eq!(set.first().map(|c| c.0), model.first().copied());
        }
    }

    /// The wrapping iterator is a rotation of the plain iterator.
    #[test]
    fn wrapping_iter_is_rotation(
        cores in prop::collection::btree_set(0u32..160, 0..80),
        start in 0u32..160,
    ) {
        let set = CpuSet::from_cores(
            160,
            &cores.iter().map(|&c| CoreId(c)).collect::<Vec<_>>(),
        );
        let wrapped: Vec<u32> = set.iter_wrapping_from(CoreId(start)).map(|c| c.0).collect();
        let mut plain: Vec<u32> = set.iter().map(|c| c.0).collect();
        let pivot = plain.iter().position(|&c| c >= start).unwrap_or(0);
        plain.rotate_left(pivot);
        prop_assert_eq!(wrapped, plain);
    }

    /// Set algebra laws against the model.
    #[test]
    fn cpuset_algebra_laws(
        a in prop::collection::btree_set(0u32..96, 0..50),
        b in prop::collection::btree_set(0u32..96, 0..50),
    ) {
        let to_set = |m: &BTreeSet<u32>| {
            CpuSet::from_cores(96, &m.iter().map(|&c| CoreId(c)).collect::<Vec<_>>())
        };
        let sa = to_set(&a);
        let sb = to_set(&b);
        let mut union = sa.clone();
        union.union_with(&sb);
        let mut inter = sa.clone();
        inter.intersect_with(&sb);
        let mut diff = sa.clone();
        diff.subtract(&sb);
        prop_assert_eq!(union.len(), a.union(&b).count());
        prop_assert_eq!(inter.len(), a.intersection(&b).count());
        prop_assert_eq!(diff.len(), a.difference(&b).count());
        prop_assert_eq!(sa.intersection_len(&sb), a.intersection(&b).count());
        prop_assert_eq!(sa.is_disjoint(&sb), a.is_disjoint(&b));
        // Inclusion-exclusion.
        prop_assert_eq!(union.len() + inter.len(), sa.len() + sb.len());
    }

    /// Topology invariants hold for arbitrary machine shapes: sibling is
    /// an involution on the same socket, socket spans partition the
    /// machine, nearest-first starts home and covers all sockets, and CCX
    /// spans refine socket spans.
    #[test]
    fn topology_invariants(sockets in 1usize..5, ccx in 1usize..4, phys_per_ccx in 1usize..8) {
        let phys = ccx * phys_per_ccx;
        let spec = MachineSpec {
            name: "prop".to_string(),
            microarch: "prop",
            sockets,
            phys_per_socket: phys,
            ccx_per_socket: ccx,
            smt: 2,
            numa: NumaKind::Flat,
            freq: FreqSpec {
                fmin: Freq::from_ghz(1.0),
                fnominal: Freq::from_ghz(2.0),
                turbo: vec![Freq::from_ghz(3.0)],
                turbo_domain: TurboDomain::Socket,
                ramp_up_khz_per_ms: 1,
                ramp_down_khz_per_ms: 1,
                idle_cooldown_ns: 1,
                turbo_window_ns: 1,
                residency_buckets_ghz: vec![3.0],
            },
            power: PowerSpec {
                uncore_w: 1.0,
                core_idle_w: 0.1,
                dyn_coeff_w_per_ghz: 1.0,
                spin_power_factor: 0.3,
                v_at_fmin: 0.6,
                v_at_fmax: 1.0,
            },
        };
        let topo = Topology::new(spec);
        let mut seen = CpuSet::new(topo.n_cores());
        for s in topo.sockets() {
            let span = topo.socket_span(s);
            prop_assert!(seen.is_disjoint(span));
            seen.union_with(span);
        }
        prop_assert_eq!(seen.len(), topo.n_cores());
        for c in topo.cores() {
            let sib = topo.sibling(c);
            prop_assert_ne!(sib, c);
            prop_assert_eq!(topo.sibling(sib), c);
            prop_assert_eq!(topo.socket_of(sib), topo.socket_of(c));
            prop_assert_eq!(
                topo.is_primary_thread(c),
                !topo.is_primary_thread(sib)
            );
            let order = topo.sockets_nearest_first(c);
            prop_assert_eq!(order.len(), sockets);
            prop_assert_eq!(order[0], topo.socket_of(c));
            // CCX membership is consistent with the span tables.
            let cx = topo.ccx_of(c);
            prop_assert!(topo.ccx_span(cx).contains(c));
            prop_assert_eq!(topo.domains().socket_of_ccx(cx), topo.socket_of(c));
            let ccx_order = topo.ccxs_nearest_first(c);
            prop_assert_eq!(ccx_order.len(), topo.n_ccx());
            prop_assert_eq!(ccx_order[0], cx);
        }
        // CCX spans partition each socket span.
        for s in topo.sockets() {
            let mut seen = CpuSet::new(topo.n_cores());
            for cx in topo.domains().ccxs_in_socket(s) {
                prop_assert!(seen.is_disjoint(topo.ccx_span(cx)));
                seen.union_with(topo.ccx_span(cx));
            }
            prop_assert_eq!(&seen, topo.socket_span(s));
        }
    }
}
