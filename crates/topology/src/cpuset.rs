//! Sets of CPUs, the simulator's `cpumask_t`.
//!
//! [`CpuSet`] is a fixed-capacity bitset over core identifiers. Nest's
//! primary and reserve nests, scheduling-domain spans, and group masks are
//! all `CpuSet`s. Iteration is always in ascending core-number order, and
//! [`CpuSet::iter_wrapping_from`] provides the "numerical order, modulo the
//! number of cores, starting from a given core" scan that both CFS and Nest
//! use.

use std::fmt;

use nest_simcore::CoreId;

const WORD_BITS: usize = 64;

/// A set of cores, stored as a bitmask.
///
/// # Examples
///
/// ```
/// use nest_simcore::CoreId;
/// use nest_topology::CpuSet;
///
/// let mut s = CpuSet::new(8);
/// s.insert(CoreId(2));
/// s.insert(CoreId(5));
/// assert!(s.contains(CoreId(2)));
/// assert_eq!(s.len(), 2);
/// let order: Vec<u32> = s.iter_wrapping_from(CoreId(4)).map(|c| c.0).collect();
/// assert_eq!(order, vec![5, 2]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct CpuSet {
    words: Vec<u64>,
    capacity: usize,
}

impl CpuSet {
    /// Creates an empty set with room for cores `0..capacity`.
    pub fn new(capacity: usize) -> CpuSet {
        CpuSet {
            words: vec![0; capacity.div_ceil(WORD_BITS)],
            capacity,
        }
    }

    /// Creates a set containing all cores `0..capacity`.
    pub fn full(capacity: usize) -> CpuSet {
        let mut s = CpuSet::new(capacity);
        for i in 0..capacity {
            s.insert(CoreId::from_index(i));
        }
        s
    }

    /// Creates a set from the given cores.
    ///
    /// # Panics
    ///
    /// Panics if any core is `>= capacity`.
    pub fn from_cores(capacity: usize, cores: &[CoreId]) -> CpuSet {
        let mut s = CpuSet::new(capacity);
        for &c in cores {
            s.insert(c);
        }
        s
    }

    /// Returns the capacity (the machine's core count).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn check(&self, core: CoreId) {
        assert!(
            core.index() < self.capacity,
            "core {core} out of range (capacity {})",
            self.capacity
        );
    }

    /// Inserts a core. Returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if the core is out of range.
    pub fn insert(&mut self, core: CoreId) -> bool {
        self.check(core);
        let (w, b) = (core.index() / WORD_BITS, core.index() % WORD_BITS);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !was
    }

    /// Removes a core. Returns `true` if it was present.
    ///
    /// # Panics
    ///
    /// Panics if the core is out of range.
    pub fn remove(&mut self, core: CoreId) -> bool {
        self.check(core);
        let (w, b) = (core.index() / WORD_BITS, core.index() % WORD_BITS);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        was
    }

    /// Returns `true` if the core is in the set.
    pub fn contains(&self, core: CoreId) -> bool {
        if core.index() >= self.capacity {
            return false;
        }
        let (w, b) = (core.index() / WORD_BITS, core.index() % WORD_BITS);
        self.words[w] & (1 << b) != 0
    }

    /// Returns the number of cores in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes all cores.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Returns the lowest-numbered core in the set, if any.
    pub fn first(&self) -> Option<CoreId> {
        for (i, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(CoreId::from_index(
                    i * WORD_BITS + w.trailing_zeros() as usize,
                ));
            }
        }
        None
    }

    /// Iterates over cores in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = CoreId> + '_ {
        self.words.iter().enumerate().flat_map(|(i, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let b = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(CoreId::from_index(i * WORD_BITS + b))
            })
        })
    }

    /// Iterates over cores in numerical order modulo the capacity,
    /// starting from `start` (inclusive) — the scan order of CFS's and
    /// Nest's core searches.
    pub fn iter_wrapping_from(&self, start: CoreId) -> impl Iterator<Item = CoreId> + '_ {
        let cap = self.capacity;
        let s = start.index().min(cap.saturating_sub(1));
        (0..cap)
            .map(move |off| CoreId::from_index((s + off) % cap.max(1)))
            .filter(move |&c| self.contains(c))
    }

    /// In-place union.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn union_with(&mut self, other: &CpuSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn intersect_with(&mut self, other: &CpuSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place difference (`self \ other`).
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn subtract(&mut self, other: &CpuSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Returns `true` if the two sets share no core.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn is_disjoint(&self, other: &CpuSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// Counts the cores present in both sets.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn intersection_len(&self, other: &CpuSet) -> usize {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }
}

impl fmt::Debug for CpuSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CpuSet{{")?;
        for (i, c) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(cap: usize, cores: &[u32]) -> CpuSet {
        CpuSet::from_cores(cap, &cores.iter().map(|&c| CoreId(c)).collect::<Vec<_>>())
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = CpuSet::new(130);
        assert!(s.insert(CoreId(129)));
        assert!(!s.insert(CoreId(129)));
        assert!(s.contains(CoreId(129)));
        assert!(s.remove(CoreId(129)));
        assert!(!s.remove(CoreId(129)));
        assert!(s.is_empty());
    }

    #[test]
    fn contains_out_of_range_is_false() {
        let s = CpuSet::new(4);
        assert!(!s.contains(CoreId(4)));
        assert!(!s.contains(CoreId(1000)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        CpuSet::new(4).insert(CoreId(4));
    }

    #[test]
    fn full_and_len() {
        let s = CpuSet::full(100);
        assert_eq!(s.len(), 100);
        assert_eq!(s.first(), Some(CoreId(0)));
    }

    #[test]
    fn iter_is_ascending() {
        let s = set(200, &[150, 3, 64, 65, 199]);
        let v: Vec<u32> = s.iter().map(|c| c.0).collect();
        assert_eq!(v, vec![3, 64, 65, 150, 199]);
    }

    #[test]
    fn wrapping_iter_starts_at_start() {
        let s = set(8, &[0, 2, 5, 7]);
        let v: Vec<u32> = s.iter_wrapping_from(CoreId(5)).map(|c| c.0).collect();
        assert_eq!(v, vec![5, 7, 0, 2]);
    }

    #[test]
    fn wrapping_iter_covers_whole_set() {
        let s = set(64, &[1, 10, 63]);
        assert_eq!(s.iter_wrapping_from(CoreId(11)).count(), 3);
    }

    #[test]
    fn set_algebra() {
        let mut a = set(16, &[1, 2, 3]);
        let b = set(16, &[3, 4]);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.len(), 4);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i, set(16, &[3]));
        a.subtract(&b);
        assert_eq!(a, set(16, &[1, 2]));
        assert!(a.is_disjoint(&b));
        assert_eq!(u.intersection_len(&b), 2);
    }

    #[test]
    fn clear_empties() {
        let mut s = set(16, &[1, 2]);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", set(8, &[1, 3])), "CpuSet{1,3}");
    }
}
