//! Sets of CPUs, the simulator's `cpumask_t`.
//!
//! [`CpuSet`] is a fixed-capacity bitset over core identifiers. Nest's
//! primary and reserve nests, scheduling-domain spans, and group masks are
//! all `CpuSet`s. Iteration is always in ascending core-number order, and
//! [`CpuSet::iter_wrapping_from`] provides the "numerical order, modulo the
//! number of cores, starting from a given core" scan that both CFS and Nest
//! use.

use std::fmt;

use nest_simcore::CoreId;

const WORD_BITS: usize = 64;

/// A set of cores, stored as a bitmask.
///
/// # Examples
///
/// ```
/// use nest_simcore::CoreId;
/// use nest_topology::CpuSet;
///
/// let mut s = CpuSet::new(8);
/// s.insert(CoreId(2));
/// s.insert(CoreId(5));
/// assert!(s.contains(CoreId(2)));
/// assert_eq!(s.len(), 2);
/// let order: Vec<u32> = s.iter_wrapping_from(CoreId(4)).map(|c| c.0).collect();
/// assert_eq!(order, vec![5, 2]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct CpuSet {
    words: Vec<u64>,
    capacity: usize,
}

impl CpuSet {
    /// Creates an empty set with room for cores `0..capacity`.
    pub fn new(capacity: usize) -> CpuSet {
        CpuSet {
            words: vec![0; capacity.div_ceil(WORD_BITS)],
            capacity,
        }
    }

    /// Creates a set containing all cores `0..capacity`.
    pub fn full(capacity: usize) -> CpuSet {
        let mut s = CpuSet::new(capacity);
        for i in 0..capacity {
            s.insert(CoreId::from_index(i));
        }
        s
    }

    /// Creates a set from the given cores.
    ///
    /// # Panics
    ///
    /// Panics if any core is `>= capacity`.
    pub fn from_cores(capacity: usize, cores: &[CoreId]) -> CpuSet {
        let mut s = CpuSet::new(capacity);
        for &c in cores {
            s.insert(c);
        }
        s
    }

    /// Returns the capacity (the machine's core count).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn check(&self, core: CoreId) {
        assert!(
            core.index() < self.capacity,
            "core {core} out of range (capacity {})",
            self.capacity
        );
    }

    /// Inserts a core. Returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if the core is out of range.
    pub fn insert(&mut self, core: CoreId) -> bool {
        self.check(core);
        let (w, b) = (core.index() / WORD_BITS, core.index() % WORD_BITS);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !was
    }

    /// Removes a core. Returns `true` if it was present.
    ///
    /// # Panics
    ///
    /// Panics if the core is out of range.
    pub fn remove(&mut self, core: CoreId) -> bool {
        self.check(core);
        let (w, b) = (core.index() / WORD_BITS, core.index() % WORD_BITS);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        was
    }

    /// Returns `true` if the core is in the set.
    pub fn contains(&self, core: CoreId) -> bool {
        if core.index() >= self.capacity {
            return false;
        }
        let (w, b) = (core.index() / WORD_BITS, core.index() % WORD_BITS);
        self.words[w] & (1 << b) != 0
    }

    /// Returns the number of cores in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes all cores.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Returns the lowest-numbered core in the set, if any.
    pub fn first(&self) -> Option<CoreId> {
        for (i, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(CoreId::from_index(
                    i * WORD_BITS + w.trailing_zeros() as usize,
                ));
            }
        }
        None
    }

    /// Iterates over cores in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = CoreId> + '_ {
        self.words.iter().enumerate().flat_map(|(i, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let b = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(CoreId::from_index(i * WORD_BITS + b))
            })
        })
    }

    /// Iterates over cores in numerical order modulo the capacity,
    /// starting from `start` (inclusive) — the scan order of CFS's and
    /// Nest's core searches.
    ///
    /// Word-wise: cost is proportional to the number of bitmask words plus
    /// the number of set bits actually consumed, not to the capacity.
    pub fn iter_wrapping_from(&self, start: CoreId) -> impl Iterator<Item = CoreId> + '_ {
        let cap = self.capacity;
        let s = start.index().min(cap.saturating_sub(1));
        RangeBits::new(&self.words, None, s, cap)
            .chain(RangeBits::new(&self.words, None, 0, s))
            .map(CoreId::from_index)
    }

    /// Like [`CpuSet::iter_wrapping_from`], but restricted to cores also
    /// present in `mask` — the common "scan this span, but only its idle
    /// (or nest-member) cores" pattern, without materializing the
    /// intersection.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn iter_wrapping_from_masked<'a>(
        &'a self,
        mask: &'a CpuSet,
        start: CoreId,
    ) -> impl Iterator<Item = CoreId> + 'a {
        assert_eq!(self.capacity, mask.capacity, "capacity mismatch");
        let cap = self.capacity;
        let s = start.index().min(cap.saturating_sub(1));
        RangeBits::new(&self.words, Some(&mask.words), s, cap)
            .chain(RangeBits::new(&self.words, Some(&mask.words), 0, s))
            .map(CoreId::from_index)
    }

    /// Iterates over the intersection with `mask` in ascending order.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn iter_masked<'a>(&'a self, mask: &'a CpuSet) -> impl Iterator<Item = CoreId> + 'a {
        assert_eq!(self.capacity, mask.capacity, "capacity mismatch");
        RangeBits::new(&self.words, Some(&mask.words), 0, self.capacity).map(CoreId::from_index)
    }

    /// `true` if the two sets share at least one core.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn intersects(&self, other: &CpuSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Overwrites this set with the contents of `other`, without
    /// reallocating — the allocation-free alternative to `clone()` for
    /// persistent scratch sets.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn copy_from(&mut self, other: &CpuSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        self.words.copy_from_slice(&other.words);
    }

    /// In-place union.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn union_with(&mut self, other: &CpuSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn intersect_with(&mut self, other: &CpuSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place difference (`self \ other`).
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn subtract(&mut self, other: &CpuSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Returns `true` if the two sets share no core.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn is_disjoint(&self, other: &CpuSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// Counts the cores present in both sets.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn intersection_len(&self, other: &CpuSet) -> usize {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }
}

/// Iterator over the set bits of `a` (optionally ANDed with `b`) whose
/// indices fall in `[lo, hi)`, ascending. The workhorse behind every
/// `CpuSet` scan: each 64-core word costs one load (plus one AND for
/// masked scans) and one trailing-zeros per set bit.
struct RangeBits<'a> {
    a: &'a [u64],
    b: Option<&'a [u64]>,
    wi: usize,
    cur: u64,
    hi: usize,
}

impl<'a> RangeBits<'a> {
    fn new(a: &'a [u64], b: Option<&'a [u64]>, lo: usize, hi: usize) -> RangeBits<'a> {
        let wi = lo / WORD_BITS;
        let mut r = RangeBits {
            a,
            b,
            wi,
            cur: 0,
            hi,
        };
        if lo < hi {
            r.cur = r.fetch(wi) & (!0u64 << (lo % WORD_BITS));
        }
        r
    }

    fn fetch(&self, i: usize) -> u64 {
        let w = self.a.get(i).copied().unwrap_or(0);
        match self.b {
            Some(m) => w & m.get(i).copied().unwrap_or(0),
            None => w,
        }
    }
}

impl Iterator for RangeBits<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.cur != 0 {
                let b = self.cur.trailing_zeros() as usize;
                self.cur &= self.cur - 1;
                let idx = self.wi * WORD_BITS + b;
                if idx >= self.hi {
                    // Bits ascend, so everything further is past `hi` too.
                    self.cur = 0;
                    self.wi = self.a.len();
                    return None;
                }
                return Some(idx);
            }
            self.wi += 1;
            if self.wi >= self.a.len() || self.wi * WORD_BITS >= self.hi {
                return None;
            }
            self.cur = self.fetch(self.wi);
        }
    }
}

impl fmt::Debug for CpuSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CpuSet{{")?;
        for (i, c) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(cap: usize, cores: &[u32]) -> CpuSet {
        CpuSet::from_cores(cap, &cores.iter().map(|&c| CoreId(c)).collect::<Vec<_>>())
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = CpuSet::new(130);
        assert!(s.insert(CoreId(129)));
        assert!(!s.insert(CoreId(129)));
        assert!(s.contains(CoreId(129)));
        assert!(s.remove(CoreId(129)));
        assert!(!s.remove(CoreId(129)));
        assert!(s.is_empty());
    }

    #[test]
    fn contains_out_of_range_is_false() {
        let s = CpuSet::new(4);
        assert!(!s.contains(CoreId(4)));
        assert!(!s.contains(CoreId(1000)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        CpuSet::new(4).insert(CoreId(4));
    }

    #[test]
    fn full_and_len() {
        let s = CpuSet::full(100);
        assert_eq!(s.len(), 100);
        assert_eq!(s.first(), Some(CoreId(0)));
    }

    #[test]
    fn iter_is_ascending() {
        let s = set(200, &[150, 3, 64, 65, 199]);
        let v: Vec<u32> = s.iter().map(|c| c.0).collect();
        assert_eq!(v, vec![3, 64, 65, 150, 199]);
    }

    #[test]
    fn wrapping_iter_starts_at_start() {
        let s = set(8, &[0, 2, 5, 7]);
        let v: Vec<u32> = s.iter_wrapping_from(CoreId(5)).map(|c| c.0).collect();
        assert_eq!(v, vec![5, 7, 0, 2]);
    }

    #[test]
    fn wrapping_iter_covers_whole_set() {
        let s = set(64, &[1, 10, 63]);
        assert_eq!(s.iter_wrapping_from(CoreId(11)).count(), 3);
    }

    #[test]
    fn wrapping_iter_matches_naive_scan_everywhere() {
        // Oracle: the original O(capacity) formulation.
        for cap in [1usize, 8, 63, 64, 65, 130, 192] {
            let cores: Vec<u32> = (0..cap as u32)
                .filter(|c| c % 7 == 3 || c % 11 == 0)
                .collect();
            let s = set(cap, &cores);
            for start in [0usize, 1, cap / 2, cap - 1, cap, cap + 5] {
                let sc = CoreId(start as u32);
                let naive: Vec<u32> = {
                    let st = start.min(cap - 1);
                    (0..cap)
                        .map(|off| ((st + off) % cap) as u32)
                        .filter(|&c| s.contains(CoreId(c)))
                        .collect()
                };
                let fast: Vec<u32> = s.iter_wrapping_from(sc).map(|c| c.0).collect();
                assert_eq!(fast, naive, "cap={cap} start={start}");
            }
        }
    }

    #[test]
    fn masked_wrapping_iter_equals_filtered_iter() {
        let s = set(130, &[0, 3, 64, 65, 100, 129]);
        let m = set(130, &[3, 64, 100, 128]);
        let masked: Vec<u32> = s
            .iter_wrapping_from_masked(&m, CoreId(65))
            .map(|c| c.0)
            .collect();
        let filtered: Vec<u32> = s
            .iter_wrapping_from(CoreId(65))
            .filter(|&c| m.contains(c))
            .map(|c| c.0)
            .collect();
        assert_eq!(masked, filtered);
        assert_eq!(masked, vec![100, 3, 64]);
    }

    #[test]
    fn iter_masked_is_ascending_intersection() {
        let s = set(100, &[1, 2, 50, 99]);
        let m = set(100, &[2, 50, 98]);
        let v: Vec<u32> = s.iter_masked(&m).map(|c| c.0).collect();
        assert_eq!(v, vec![2, 50]);
    }

    #[test]
    fn intersects_and_copy_from() {
        let a = set(70, &[1, 69]);
        let b = set(70, &[69]);
        let c = set(70, &[2]);
        assert!(a.intersects(&b));
        assert!(!b.intersects(&c));
        let mut d = CpuSet::new(70);
        d.copy_from(&a);
        assert_eq!(d, a);
    }

    #[test]
    fn set_algebra() {
        let mut a = set(16, &[1, 2, 3]);
        let b = set(16, &[3, 4]);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.len(), 4);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i, set(16, &[3]));
        a.subtract(&b);
        assert_eq!(a, set(16, &[1, 2]));
        assert!(a.is_disjoint(&b));
        assert_eq!(u.intersection_len(&b), 2);
    }

    #[test]
    fn clear_empties() {
        let mut s = set(16, &[1, 2]);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", set(8, &[1, 3])), "CpuSet{1,3}");
    }
}
