//! Machine presets for the paper's test machines and synthetic scaling
//! machines.
//!
//! Table 2 machines: a 4-socket 160-core Intel Xeon E7-8870 v4 (Broadwell),
//! 2- and 4-socket Intel Xeon Gold 6130 (Skylake), and a 2-socket Intel
//! Xeon Gold 5218 (Cascade Lake). Turbo ladders come from Table 3. The
//! §5.6 mono-socket machines (Intel Xeon 5220, AMD Ryzen 5 PRO 4650G) are
//! included as well. All paper machines are degenerate domain trees: one
//! CCX per socket, flat NUMA, socket-scoped turbo.
//!
//! [`synth`] builds the synthetic multi-CCX machines (256–1024 cores)
//! used by the scaling experiments: AMD-like parts whose turbo ladder is
//! counted per CCX, optionally with ring NUMA distances.
//!
//! Ramp-rate and power constants are model calibration, not datasheet
//! values: the Skylake/Cascade Lake machines use Intel Speed Shift
//! (hardware-managed, fast ramp), while the Broadwell E7-8870 v4 uses
//! Enhanced Intel SpeedStep (OS-paced, slow ramp and eager decay), which is
//! the paper's explanation for the E7's tendency to linger at subturbo
//! frequencies whenever computation has gaps.

use nest_simcore::Freq;

use crate::machine::{FreqSpec, MachineSpec, NumaKind, PowerSpec, TurboDomain};

fn ghz(v: f64) -> Freq {
    Freq::from_ghz(v)
}

/// Expands a turbo ladder given as `(count, GHz)` runs into a per-count
/// table.
fn ladder(entries: &[(usize, f64)]) -> Vec<Freq> {
    let mut out = Vec::new();
    for &(count, f) in entries {
        for _ in 0..count {
            out.push(ghz(f));
        }
    }
    out
}

/// Intel-like power constants, scaled by physical core count so that a
/// fully loaded socket lands near a plausible TDP.
fn intel_power(phys: usize) -> PowerSpec {
    PowerSpec {
        uncore_w: 18.0 + 0.55 * phys as f64,
        core_idle_w: 0.45,
        dyn_coeff_w_per_ghz: 2.6,
        spin_power_factor: 0.3,
        v_at_fmin: 0.62,
        v_at_fmax: 1.0,
    }
}

/// 4-socket Intel Xeon E7-8870 v4 (Broadwell), 160 hardware threads.
///
/// Table 2: min 1.2 GHz, nominal 2.1 GHz, max turbo 3.0 GHz.
/// Table 3 ladder: 3.0 / 3.0 / 2.8 / 2.7 / 2.6 (5+ cores).
pub fn e7_8870_v4() -> MachineSpec {
    MachineSpec {
        name: "160-core Intel E7-8870 v4".to_string(),
        microarch: "Broadwell",
        sockets: 4,
        phys_per_socket: 20,
        ccx_per_socket: 1,
        smt: 2,
        numa: NumaKind::Flat,
        freq: FreqSpec {
            fmin: ghz(1.2),
            fnominal: ghz(2.1),
            turbo: ladder(&[(1, 3.0), (1, 3.0), (1, 2.8), (1, 2.7), (16, 2.6)]),
            turbo_domain: TurboDomain::Socket,
            // Enhanced SpeedStep: slow to rise, quick to fall — any gap
            // in the computation drops the frequency, and climbing back
            // takes many milliseconds (§5.2, §5.3).
            ramp_up_khz_per_ms: 180_000,
            ramp_down_khz_per_ms: 350_000,
            idle_cooldown_ns: 2_000_000,
            turbo_window_ns: 50_000_000,
            residency_buckets_ghz: vec![1.2, 1.7, 2.1, 2.6, 3.0],
        },
        power: intel_power(20),
    }
}

/// Intel Xeon Gold 6130 (Skylake) with the given socket count (2 or 4 in
/// the paper), 32 hardware threads per socket.
///
/// Table 2: min 1.0 GHz, nominal 2.1 GHz, max turbo 3.7 GHz.
/// Table 3 ladder: 3.7 / 3.7 / 3.5 / 3.5 / 3.4 (5-8) / 3.1 (9-12) /
/// 2.8 (13-16).
pub fn xeon_6130(sockets: usize) -> MachineSpec {
    MachineSpec {
        name: match sockets {
            2 => "64-core Intel 6130",
            4 => "128-core Intel 6130",
            _ => "Intel 6130",
        }
        .to_string(),
        microarch: "Skylake",
        sockets,
        phys_per_socket: 16,
        ccx_per_socket: 1,
        smt: 2,
        numa: NumaKind::Flat,
        freq: FreqSpec {
            fmin: ghz(1.0),
            fnominal: ghz(2.1),
            turbo: ladder(&[(2, 3.7), (2, 3.5), (4, 3.4), (4, 3.1), (4, 2.8)]),
            turbo_domain: TurboDomain::Socket,
            // Intel Speed Shift: fast hardware-managed ramp, gentle
            // decay while idle.
            ramp_up_khz_per_ms: 1_200_000,
            ramp_down_khz_per_ms: 80_000,
            idle_cooldown_ns: 6_000_000,
            turbo_window_ns: 60_000_000,
            residency_buckets_ghz: vec![1.0, 1.6, 2.1, 2.8, 3.1, 3.4, 3.7],
        },
        power: intel_power(16),
    }
}

/// 2-socket Intel Xeon Gold 5218 (Cascade Lake), 64 hardware threads.
///
/// Table 2: min 1.0 GHz, nominal 2.3 GHz, max turbo 3.9 GHz.
/// Table 3 ladder: 3.9 / 3.9 / 3.7 / 3.7 / 3.6 (5-8) / 3.1 (9-12) /
/// 2.8 (13-16).
pub fn xeon_5218() -> MachineSpec {
    MachineSpec {
        name: "64-core Intel 5218".to_string(),
        microarch: "Cascade Lake",
        sockets: 2,
        phys_per_socket: 16,
        ccx_per_socket: 1,
        smt: 2,
        numa: NumaKind::Flat,
        freq: FreqSpec {
            fmin: ghz(1.0),
            fnominal: ghz(2.3),
            turbo: ladder(&[(2, 3.9), (2, 3.7), (4, 3.6), (4, 3.1), (4, 2.8)]),
            turbo_domain: TurboDomain::Socket,
            ramp_up_khz_per_ms: 1_300_000,
            ramp_down_khz_per_ms: 80_000,
            idle_cooldown_ns: 6_000_000,
            turbo_window_ns: 60_000_000,
            residency_buckets_ghz: vec![1.0, 1.6, 2.3, 2.8, 3.1, 3.6, 3.9],
        },
        power: intel_power(16),
    }
}

/// Mono-socket Intel Xeon 5220 (Cascade Lake, 18 physical cores, 36
/// hardware threads, max turbo 3.9 GHz) from §5.6.
pub fn xeon_5220() -> MachineSpec {
    MachineSpec {
        name: "36-core Intel 5220".to_string(),
        microarch: "Cascade Lake",
        sockets: 1,
        phys_per_socket: 18,
        ccx_per_socket: 1,
        smt: 2,
        numa: NumaKind::Flat,
        freq: FreqSpec {
            fmin: ghz(1.0),
            fnominal: ghz(2.2),
            turbo: ladder(&[(2, 3.9), (2, 3.7), (4, 3.6), (4, 3.2), (6, 2.9)]),
            turbo_domain: TurboDomain::Socket,
            ramp_up_khz_per_ms: 1_300_000,
            ramp_down_khz_per_ms: 80_000,
            idle_cooldown_ns: 6_000_000,
            turbo_window_ns: 60_000_000,
            residency_buckets_ghz: vec![1.0, 1.6, 2.2, 2.9, 3.2, 3.6, 3.9],
        },
        power: intel_power(18),
    }
}

/// Mono-socket AMD Ryzen 5 PRO 4650G (Zen 2, 6 physical cores, 12 hardware
/// threads, max boost 4.2 GHz) from §5.6.
///
/// AMD's boost ladder is flatter than Intel's (Precision Boost scales with
/// thermal headroom more than with active-core count), so concentrating
/// tasks pays off mostly through reuse of already-warm cores.
pub fn amd_4650g() -> MachineSpec {
    MachineSpec {
        name: "12-core AMD 4650G".to_string(),
        microarch: "Zen 2",
        sockets: 1,
        phys_per_socket: 6,
        ccx_per_socket: 1,
        smt: 2,
        numa: NumaKind::Flat,
        freq: FreqSpec {
            fmin: ghz(1.4),
            fnominal: ghz(3.7),
            turbo: ladder(&[(1, 4.2), (1, 4.2), (1, 4.1), (1, 4.0), (2, 3.9)]),
            turbo_domain: TurboDomain::Socket,
            ramp_up_khz_per_ms: 1_000_000,
            ramp_down_khz_per_ms: 80_000,
            idle_cooldown_ns: 8_000_000,
            turbo_window_ns: 40_000_000,
            residency_buckets_ghz: vec![1.4, 2.2, 3.0, 3.7, 4.0, 4.2],
        },
        power: PowerSpec {
            uncore_w: 9.0,
            core_idle_w: 0.3,
            dyn_coeff_w_per_ghz: 1.9,
            spin_power_factor: 0.3,
            v_at_fmin: 0.7,
            v_at_fmax: 1.1,
        },
    }
}

/// A synthetic AMD-like multi-CCX machine for the scaling experiments:
/// `sockets` sockets, `ccx` CCXs per socket, `cores` physical cores per
/// CCX, SMT width 1 or 2, and the given NUMA layout.
///
/// The turbo ladder is counted **per CCX** (Zen-style Precision Boost):
/// one or two active cores in a CCX boost to 3.5/3.4 GHz, falling to a
/// 3.0 GHz all-core ceiling — so a nest confined to one CCX keeps both
/// its own ladder high (few active cores per window) and sibling CCXs
/// entirely dark. The name is the canonical registry string for the
/// shape, so every distinct synthetic machine hashes to distinct harness
/// seeds.
///
/// # Panics
///
/// Panics if any count is zero (the resulting spec would be empty).
pub fn synth(sockets: usize, ccx: usize, cores: usize, smt: usize, numa: NumaKind) -> MachineSpec {
    assert!(
        sockets > 0 && ccx > 0 && cores > 0,
        "empty synthetic machine"
    );
    let mut name = format!("synth:sockets={sockets},ccx={ccx},cores={cores}");
    if smt != 1 {
        name.push_str(&format!(",smt={smt}"));
    }
    if numa == NumaKind::Ring {
        name.push_str(",numa=ring");
    }
    // Ladder over active cores of one CCX; clamp the run lengths so tiny
    // CCXs still get a monotone table.
    let all_core = cores.saturating_sub(4).max(1);
    MachineSpec {
        name,
        microarch: "synthetic",
        sockets,
        phys_per_socket: ccx * cores,
        ccx_per_socket: ccx,
        smt,
        numa,
        freq: FreqSpec {
            fmin: ghz(1.5),
            fnominal: ghz(2.4),
            turbo: ladder(&[(2, 3.5), (2, 3.2), (all_core, 3.0)]),
            turbo_domain: TurboDomain::Ccx,
            ramp_up_khz_per_ms: 1_000_000,
            ramp_down_khz_per_ms: 80_000,
            idle_cooldown_ns: 8_000_000,
            turbo_window_ns: 40_000_000,
            residency_buckets_ghz: vec![1.5, 2.0, 2.4, 3.0, 3.2, 3.5],
        },
        power: PowerSpec {
            uncore_w: 14.0 + 0.3 * (ccx * cores) as f64,
            core_idle_w: 0.3,
            dyn_coeff_w_per_ghz: 1.9,
            spin_power_factor: 0.3,
            v_at_fmin: 0.7,
            v_at_fmax: 1.1,
        },
    }
}

/// The four paper machines (Table 2), in the order the figures use.
pub fn paper_machines() -> Vec<MachineSpec> {
    vec![xeon_6130(2), xeon_6130(4), xeon_5218(), e7_8870_v4()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladders_match_table3() {
        let e7 = e7_8870_v4();
        assert_eq!(e7.freq.turbo_limit(1), ghz(3.0));
        assert_eq!(e7.freq.turbo_limit(3), ghz(2.8));
        assert_eq!(e7.freq.turbo_limit(4), ghz(2.7));
        assert_eq!(e7.freq.turbo_limit(20), ghz(2.6));

        let m5218 = xeon_5218();
        assert_eq!(m5218.freq.turbo_limit(2), ghz(3.9));
        assert_eq!(m5218.freq.turbo_limit(5), ghz(3.6));
        assert_eq!(m5218.freq.turbo_limit(10), ghz(3.1));
        assert_eq!(m5218.freq.turbo_limit(16), ghz(2.8));
    }

    #[test]
    fn nominal_below_max_turbo() {
        for m in paper_machines() {
            assert!(m.freq.fnominal < m.freq.fmax(), "{}", m.name);
            assert!(m.freq.fmin < m.freq.fnominal, "{}", m.name);
        }
    }

    #[test]
    fn turbo_ladder_is_monotone_nonincreasing() {
        for m in paper_machines().into_iter().chain([
            xeon_5220(),
            amd_4650g(),
            synth(4, 8, 8, 1, NumaKind::Flat),
            synth(1, 2, 2, 2, NumaKind::Flat),
        ]) {
            for w in m.freq.turbo.windows(2) {
                assert!(w[0] >= w[1], "{}: ladder not monotone", m.name);
            }
        }
    }

    #[test]
    fn paper_machines_core_counts() {
        let counts: Vec<usize> = paper_machines().iter().map(|m| m.n_cores()).collect();
        assert_eq!(counts, vec![64, 128, 64, 160]);
    }

    #[test]
    fn paper_machines_are_degenerate_trees() {
        for m in paper_machines()
            .into_iter()
            .chain([xeon_5220(), amd_4650g()])
        {
            assert_eq!(m.ccx_per_socket, 1, "{}", m.name);
            assert_eq!(m.numa, NumaKind::Flat, "{}", m.name);
            assert_eq!(m.freq.turbo_domain, TurboDomain::Socket, "{}", m.name);
        }
    }

    #[test]
    fn synth_shapes_and_names() {
        let m = synth(4, 8, 8, 1, NumaKind::Flat);
        assert_eq!(m.n_cores(), 256);
        assert_eq!(m.n_ccx(), 32);
        assert_eq!(m.cores_per_ccx(), 8);
        assert_eq!(m.name, "synth:sockets=4,ccx=8,cores=8");
        assert_eq!(m.freq.turbo_domain, TurboDomain::Ccx);

        let m = synth(8, 8, 8, 2, NumaKind::Ring);
        assert_eq!(m.n_cores(), 1024);
        assert_eq!(m.name, "synth:sockets=8,ccx=8,cores=8,smt=2,numa=ring");
    }

    #[test]
    fn broadwell_ramps_slower_than_skylake() {
        assert!(e7_8870_v4().freq.ramp_up_khz_per_ms < xeon_6130(2).freq.ramp_up_khz_per_ms);
    }
}
