//! The scheduling-domain hierarchy.
//!
//! [`DomainTree`] is the spine every layer of the simulator consumes: a
//! core belongs to a CCX (last-level-cache domain), a CCX to a socket,
//! and a socket to the machine, with a NUMA distance matrix between
//! sockets. The paper's Table 2 machines are *degenerate* trees — one CCX
//! per socket, flat NUMA — so on those machines every CCX-level query
//! collapses to the socket-level answer and the tree adds no behaviour.
//! Synthetic AMD-like machines split each socket into several CCXs and
//! may use a non-flat distance matrix, which is where the hierarchy earns
//! its keep: scans and nest bookkeeping become domain-local, and
//! "nearest" is defined by distance instead of by numerical order.
//!
//! Distances follow the Linux SLIT convention: a domain is at distance 10
//! from itself (`LOCAL_DISTANCE`), and remote distances grow from 20.

use nest_simcore::{CcxId, CoreId, SocketId};

use crate::cpuset::CpuSet;
use crate::machine::{MachineSpec, NumaKind};

/// SLIT-style distance of a socket to itself.
pub const LOCAL_DISTANCE: u32 = 10;

/// SLIT-style distance between directly adjacent sockets.
pub const REMOTE_DISTANCE: u32 = 20;

/// One level of the scheduling-domain hierarchy, smallest first.
///
/// The `Core` level is implicit (a core is its own domain); the tree
/// stores spans for the three aggregate levels.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DomainLevel {
    /// Cores sharing one last-level-cache slice (a CCX). Coincides with
    /// the socket on single-LLC-per-die machines.
    Ccx,
    /// Cores of one socket (the die).
    Socket,
    /// All cores of the machine.
    Machine,
}

impl DomainLevel {
    /// The aggregate levels, smallest first.
    pub const ALL: [DomainLevel; 3] = [DomainLevel::Ccx, DomainLevel::Socket, DomainLevel::Machine];
}

/// The computed domain hierarchy of one machine: per-level [`CpuSet`]
/// spans plus the socket NUMA-distance matrix.
#[derive(Clone, Debug)]
pub struct DomainTree {
    ccx_spans: Vec<CpuSet>,
    socket_spans: Vec<CpuSet>,
    machine: CpuSet,
    ccx_home: Vec<SocketId>,
    /// Row-major `sockets × sockets` distance matrix.
    socket_distance: Vec<u32>,
    sockets: usize,
    ccx_per_socket: usize,
}

impl DomainTree {
    /// Builds the tree for a machine description.
    ///
    /// # Panics
    ///
    /// Panics if `ccx_per_socket` is zero or does not divide
    /// `phys_per_socket` (a CCX cannot straddle a physical core, and all
    /// CCXs of a socket are the same size).
    pub fn new(spec: &MachineSpec) -> DomainTree {
        assert!(
            spec.ccx_per_socket > 0,
            "machine needs at least one CCX per socket"
        );
        assert_eq!(
            spec.phys_per_socket % spec.ccx_per_socket,
            0,
            "ccx_per_socket must divide phys_per_socket"
        );
        let n = spec.n_cores();
        let cps = spec.cores_per_socket();
        let ppc = spec.phys_per_ccx();
        let mut socket_spans = Vec::with_capacity(spec.sockets);
        let mut ccx_spans = Vec::with_capacity(spec.sockets * spec.ccx_per_socket);
        let mut ccx_home = Vec::with_capacity(spec.sockets * spec.ccx_per_socket);
        for s in 0..spec.sockets {
            let base = s * cps;
            let mut span = CpuSet::new(n);
            for i in 0..cps {
                span.insert(CoreId::from_index(base + i));
            }
            socket_spans.push(span);
            for c in 0..spec.ccx_per_socket {
                // A CCX owns physical cores `c·ppc .. (c+1)·ppc` of its
                // socket: their first hardware threads, plus (with SMT)
                // the hyperthread block offset by `phys_per_socket`.
                let mut span = CpuSet::new(n);
                for p in c * ppc..(c + 1) * ppc {
                    for t in 0..spec.smt {
                        span.insert(CoreId::from_index(base + t * spec.phys_per_socket + p));
                    }
                }
                ccx_spans.push(span);
                ccx_home.push(SocketId::from_index(s));
            }
        }
        let socket_distance = (0..spec.sockets)
            .flat_map(|a| {
                (0..spec.sockets).map(move |b| numa_distance(spec.numa, a, b, spec.sockets))
            })
            .collect();
        DomainTree {
            ccx_spans,
            socket_spans,
            machine: CpuSet::full(n),
            ccx_home,
            socket_distance,
            sockets: spec.sockets,
            ccx_per_socket: spec.ccx_per_socket,
        }
    }

    /// Number of domains at a level.
    pub fn n_domains(&self, level: DomainLevel) -> usize {
        match level {
            DomainLevel::Ccx => self.ccx_spans.len(),
            DomainLevel::Socket => self.sockets,
            DomainLevel::Machine => 1,
        }
    }

    /// Span of domain `idx` at a level.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range for the level.
    pub fn span(&self, level: DomainLevel, idx: usize) -> &CpuSet {
        match level {
            DomainLevel::Ccx => &self.ccx_spans[idx],
            DomainLevel::Socket => &self.socket_spans[idx],
            DomainLevel::Machine => {
                assert_eq!(idx, 0, "the machine level has one domain");
                &self.machine
            }
        }
    }

    /// Number of CCXs on the machine.
    pub fn n_ccx(&self) -> usize {
        self.ccx_spans.len()
    }

    /// CCXs per socket.
    pub fn ccx_per_socket(&self) -> usize {
        self.ccx_per_socket
    }

    /// Span of one CCX.
    ///
    /// # Panics
    ///
    /// Panics if the CCX is out of range.
    pub fn ccx_span(&self, ccx: CcxId) -> &CpuSet {
        &self.ccx_spans[ccx.index()]
    }

    /// Span of one socket.
    ///
    /// # Panics
    ///
    /// Panics if the socket is out of range.
    pub fn socket_span(&self, socket: SocketId) -> &CpuSet {
        &self.socket_spans[socket.index()]
    }

    /// Span of the whole machine.
    pub fn machine_span(&self) -> &CpuSet {
        &self.machine
    }

    /// The socket owning a CCX.
    ///
    /// # Panics
    ///
    /// Panics if the CCX is out of range.
    pub fn socket_of_ccx(&self, ccx: CcxId) -> SocketId {
        self.ccx_home[ccx.index()]
    }

    /// Iterates over the CCXs of one socket, in numerical order.
    pub fn ccxs_in_socket(&self, socket: SocketId) -> impl Iterator<Item = CcxId> {
        let base = socket.index() * self.ccx_per_socket;
        (base..base + self.ccx_per_socket).map(CcxId::from_index)
    }

    /// SLIT-style NUMA distance between two sockets (10 on the diagonal).
    ///
    /// # Panics
    ///
    /// Panics if either socket is out of range.
    pub fn socket_distance(&self, a: SocketId, b: SocketId) -> u32 {
        assert!(a.index() < self.sockets && b.index() < self.sockets);
        self.socket_distance[a.index() * self.sockets + b.index()]
    }

    /// Distance between two CCXs: 0 for the same CCX, otherwise the
    /// distance between their sockets (so two CCXs of one socket are at
    /// [`LOCAL_DISTANCE`], strictly closer than any remote socket).
    pub fn ccx_distance(&self, a: CcxId, b: CcxId) -> u32 {
        if a == b {
            0
        } else {
            self.socket_distance(self.socket_of_ccx(a), self.socket_of_ccx(b))
        }
    }

    /// Sockets ordered by distance from `home` (ties by socket number,
    /// `home` itself first). On a flat machine this is `home` followed by
    /// the other sockets in numerical order — the search order Nest uses
    /// to reduce the number of used dies (§3.1).
    pub fn sockets_nearest_first(&self, home: SocketId) -> Vec<SocketId> {
        let mut order: Vec<SocketId> = (0..self.sockets).map(SocketId::from_index).collect();
        order.sort_by_key(|&s| {
            let d = if s == home {
                0
            } else {
                self.socket_distance(home, s)
            };
            (d, s.index())
        });
        order
    }

    /// CCXs ordered by distance from `home` (ties by CCX number): `home`
    /// first, then the other CCXs of its socket, then remote CCXs by
    /// socket distance. The expansion order of the domain-local Nest's
    /// overflow path.
    pub fn ccxs_nearest_first(&self, home: CcxId) -> Vec<CcxId> {
        let mut order: Vec<CcxId> = (0..self.n_ccx()).map(CcxId::from_index).collect();
        order.sort_by_key(|&c| (self.ccx_distance(home, c), c.index()));
        order
    }
}

/// Distance between two sockets under a NUMA layout.
fn numa_distance(kind: NumaKind, a: usize, b: usize, sockets: usize) -> u32 {
    if a == b {
        return LOCAL_DISTANCE;
    }
    match kind {
        NumaKind::Flat => REMOTE_DISTANCE,
        NumaKind::Ring => {
            let hop = (a as i64 - b as i64).unsigned_abs() as u32;
            let hops = hop.min(sockets as u32 - hop);
            LOCAL_DISTANCE + LOCAL_DISTANCE * hops
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn degenerate_tree_collapses_to_sockets() {
        let spec = presets::xeon_6130(4);
        let tree = DomainTree::new(&spec);
        assert_eq!(tree.n_ccx(), 4);
        for s in 0..4 {
            let sock = SocketId::from_index(s);
            let ccx = CcxId::from_index(s);
            assert_eq!(tree.ccx_span(ccx), tree.socket_span(sock));
            assert_eq!(tree.socket_of_ccx(ccx), sock);
            assert_eq!(tree.ccxs_in_socket(sock).collect::<Vec<_>>(), vec![ccx]);
        }
    }

    #[test]
    fn multi_ccx_spans_partition_each_socket() {
        let spec = presets::synth(2, 4, 8, 2, NumaKind::Flat);
        let tree = DomainTree::new(&spec);
        assert_eq!(tree.n_ccx(), 8);
        for s in 0..2 {
            let sock = SocketId::from_index(s);
            let mut seen = CpuSet::new(spec.n_cores());
            for ccx in tree.ccxs_in_socket(sock) {
                let span = tree.ccx_span(ccx);
                assert_eq!(span.len(), 16);
                assert!(seen.is_disjoint(span));
                seen.union_with(span);
            }
            assert_eq!(&seen, tree.socket_span(sock));
        }
    }

    #[test]
    fn smt2_ccx_span_contains_both_threads() {
        // 2 sockets × 2 CCX × 4 phys, SMT-2: socket 0 is cores 0..16,
        // primaries 0..8, hyperthreads 8..16. CCX 1 of socket 0 owns phys
        // 4..8 → threads {4,5,6,7} ∪ {12,13,14,15}.
        let spec = presets::synth(2, 2, 4, 2, NumaKind::Flat);
        let tree = DomainTree::new(&spec);
        let span: Vec<u32> = tree.ccx_span(CcxId(1)).iter().map(|c| c.0).collect();
        assert_eq!(span, vec![4, 5, 6, 7, 12, 13, 14, 15]);
    }

    #[test]
    fn flat_nearest_first_is_home_then_ascending() {
        let tree = DomainTree::new(&presets::xeon_6130(4));
        let order: Vec<usize> = tree
            .sockets_nearest_first(SocketId(2))
            .iter()
            .map(|s| s.index())
            .collect();
        assert_eq!(order, vec![2, 0, 1, 3]);
    }

    #[test]
    fn ring_distance_orders_by_hops() {
        let spec = presets::synth(4, 2, 8, 1, NumaKind::Ring);
        let tree = DomainTree::new(&spec);
        assert_eq!(tree.socket_distance(SocketId(0), SocketId(0)), 10);
        assert_eq!(tree.socket_distance(SocketId(0), SocketId(1)), 20);
        assert_eq!(tree.socket_distance(SocketId(0), SocketId(2)), 30);
        assert_eq!(tree.socket_distance(SocketId(0), SocketId(3)), 20);
        let order: Vec<usize> = tree
            .sockets_nearest_first(SocketId(0))
            .iter()
            .map(|s| s.index())
            .collect();
        assert_eq!(order, vec![0, 1, 3, 2]);
    }

    #[test]
    fn ccxs_nearest_first_prefers_home_socket() {
        let spec = presets::synth(2, 2, 8, 1, NumaKind::Flat);
        let tree = DomainTree::new(&spec);
        let order: Vec<usize> = tree
            .ccxs_nearest_first(CcxId(1))
            .iter()
            .map(|c| c.index())
            .collect();
        // Home CCX, then its socket sibling, then the remote socket's.
        assert_eq!(order, vec![1, 0, 2, 3]);
    }

    #[test]
    fn level_spans_cover_machine() {
        let spec = presets::synth(2, 2, 4, 2, NumaKind::Flat);
        let tree = DomainTree::new(&spec);
        for level in DomainLevel::ALL {
            let mut seen = CpuSet::new(spec.n_cores());
            for i in 0..tree.n_domains(level) {
                seen.union_with(tree.span(level, i));
            }
            assert_eq!(seen.len(), spec.n_cores(), "{level:?}");
        }
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn ccx_must_divide_phys() {
        let mut spec = presets::synth(1, 2, 4, 1, NumaKind::Flat);
        spec.ccx_per_socket = 3;
        DomainTree::new(&spec);
    }
}
