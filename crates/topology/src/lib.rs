#![deny(missing_docs)]

//! Multicore machine topology.
//!
//! This crate models the machines of the Nest paper (Table 2): CPU sets
//! ([`CpuSet`]), socket-major core numbering with SMT pairing, die/socket
//! spans, and presets for every evaluated machine including the Table 3
//! turbo-frequency ladders.

pub mod cpuset;
pub mod machine;
pub mod presets;

pub use cpuset::CpuSet;
pub use machine::{FreqSpec, MachineSpec, PowerSpec, Topology};
