#![deny(missing_docs)]

//! Multicore machine topology.
//!
//! This crate models the machines of the Nest paper (Table 2) and the
//! synthetic many-core machines that extend them: CPU sets ([`CpuSet`]),
//! socket-major core numbering with SMT pairing, the scheduling-domain
//! hierarchy ([`DomainTree`]: core → CCX → socket → machine, with a NUMA
//! distance matrix), and presets for every evaluated machine including
//! the Table 3 turbo-frequency ladders.

pub mod cpuset;
pub mod domain;
pub mod machine;
pub mod presets;

pub use cpuset::CpuSet;
pub use domain::{DomainLevel, DomainTree, LOCAL_DISTANCE, REMOTE_DISTANCE};
pub use machine::{FreqSpec, MachineSpec, NumaKind, PowerSpec, Topology, TurboDomain};
