//! Machine description and computed topology.
//!
//! [`MachineSpec`] is pure data describing a machine: socket/CCX/core/SMT
//! counts plus the frequency behaviour ([`FreqSpec`], Table 3) and a power
//! model ([`PowerSpec`]). The paper's test machines (Table 2) and the
//! synthetic many-core machines share this one description. [`Topology`]
//! derives the structures schedulers need: core numbering, hyperthread
//! pairing, and the scheduling-domain hierarchy ([`DomainTree`]) whose
//! socket level the pre-existing socket API is a view over.
//!
//! Core numbering is socket-major, matching the renumbering the paper
//! applies to its traces ("cores on the same socket have adjacent
//! numbers"): on a machine with `P` physical cores per socket, socket `s`
//! owns cores `s·smt·P .. (s+1)·smt·P`, where local index `p < P` is the
//! first hardware thread of physical core `p` and (with SMT) `p + P` is
//! its hyperthread. CCXs partition the physical cores of a socket into
//! equal contiguous runs, so CCX numbering is socket-major too.

use nest_simcore::{CcxId, CoreId, Freq, SocketId};

use crate::cpuset::CpuSet;
use crate::domain::DomainTree;

/// The domain over which the hardware counts active physical cores when
/// choosing a turbo ceiling.
///
/// Intel's ladders (Table 3) apply per socket; AMD-like parts boost per
/// CCX, which is what makes nest locality pay on synthetic multi-CCX
/// machines: concentrating work keeps sibling CCXs' windowed activity at
/// zero and their ladders uncapped.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TurboDomain {
    /// Active cores are counted over the whole socket (Intel-like).
    Socket,
    /// Active cores are counted per CCX (AMD-like).
    Ccx,
}

/// The NUMA layout of a machine's sockets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NumaKind {
    /// All remote sockets are equidistant (the paper's machines).
    Flat,
    /// Sockets form a ring; distance grows with hop count. Used by the
    /// synthetic large machines to exercise distance-ordered search.
    Ring,
}

/// Frequency behaviour of a machine (paper Table 3 plus ramp dynamics).
#[derive(Clone, Debug)]
pub struct FreqSpec {
    /// Minimum frequency a core can drop to.
    pub fmin: Freq,
    /// Nominal (base) frequency; the `performance` governor's floor.
    pub fnominal: Freq,
    /// Turbo ceiling by number of active physical cores on the turbo
    /// domain: `turbo[0]` applies with 1 active core, `turbo[1]` with 2,
    /// …; the last entry extends to all higher counts.
    pub turbo: Vec<Freq>,
    /// The domain over which active cores are counted for the ladder.
    pub turbo_domain: TurboDomain,
    /// How fast the hardware raises a busy core's frequency, in kHz per
    /// millisecond. Models the difference between Intel Speed Shift
    /// (fast) and Enhanced SpeedStep on the older Broadwell (slow) that
    /// §5.2 and §5.3 of the paper highlight.
    pub ramp_up_khz_per_ms: u64,
    /// How fast an idle core's frequency decays, in kHz per millisecond.
    pub ramp_down_khz_per_ms: u64,
    /// Idle time before the frequency starts decaying, in nanoseconds.
    pub idle_cooldown_ns: u64,
    /// Window over which the hardware counts a physical core as "active"
    /// for turbo-ladder purposes. The processor does not react instantly
    /// to activity changes (§5.2: "the processor does not react quickly
    /// enough to the change of core activity, and the cores stay in the
    /// lower turbo range"), so dispersing short tasks over many cores
    /// keeps the windowed count — and hence the turbo cap — high.
    pub turbo_window_ns: u64,
    /// Bucket upper edges used by the paper's frequency-distribution
    /// figures for this machine (Figures 6 and 11).
    pub residency_buckets_ghz: Vec<f64>,
}

impl FreqSpec {
    /// Returns the turbo ceiling when `active_phys` physical cores of a
    /// turbo domain are active.
    ///
    /// With zero active cores there is no constraint; the single-core
    /// ceiling is returned. What counts as "a turbo domain" — the socket,
    /// or one CCX — is [`FreqSpec::turbo_domain`]; callers obtain the
    /// count through [`Topology::turbo_domain_of_phys`] so the domain
    /// choice is threaded through one accessor.
    pub fn turbo_limit(&self, active_phys: usize) -> Freq {
        assert!(!self.turbo.is_empty(), "empty turbo table");
        let idx = active_phys.saturating_sub(1).min(self.turbo.len() - 1);
        self.turbo[idx]
    }

    /// Returns the highest turbo frequency (single active core).
    pub fn fmax(&self) -> Freq {
        self.turbo_limit(1)
    }
}

/// A simple CPU power model, calibrated per machine.
///
/// Socket power = `uncore_w` (charged whenever the machine is up — the
/// paper notes sockets never enter deep sleep while any core is active)
/// plus per-core idle power plus per-active-core dynamic power `k·f·V²`,
/// where the socket voltage `V` tracks the fastest active core on the
/// socket (§5.2: "the CPU energy consumption is determined by the
/// consumption of the highest frequency core on the socket").
#[derive(Clone, Debug)]
pub struct PowerSpec {
    /// Constant per-socket uncore power in watts.
    pub uncore_w: f64,
    /// Power of an idle (non-spinning) core in watts.
    pub core_idle_w: f64,
    /// Dynamic coefficient: watts per GHz at V = 1.
    pub dyn_coeff_w_per_ghz: f64,
    /// Fraction of the dynamic power a *spinning* idle loop draws: the
    /// pause-loop keeps the core awake without driving the execution
    /// units at full activity factor.
    pub spin_power_factor: f64,
    /// Voltage at the minimum frequency (relative units).
    pub v_at_fmin: f64,
    /// Voltage at the maximum turbo frequency (relative units).
    pub v_at_fmax: f64,
}

impl PowerSpec {
    /// Returns the relative socket voltage when the fastest active core on
    /// the socket runs at `f`, interpolating linearly in frequency.
    pub fn voltage(&self, f: Freq, fmin: Freq, fmax: Freq) -> f64 {
        if fmax <= fmin {
            return self.v_at_fmax;
        }
        let t = (f.as_khz().saturating_sub(fmin.as_khz())) as f64
            / (fmax.as_khz() - fmin.as_khz()) as f64;
        self.v_at_fmin + t.clamp(0.0, 1.0) * (self.v_at_fmax - self.v_at_fmin)
    }
}

/// A complete machine description.
#[derive(Clone, Debug)]
pub struct MachineSpec {
    /// Short name, e.g. `"4-socket Intel 6130"`. Synthetic machines carry
    /// their canonical registry string (e.g.
    /// `"synth:sockets=4,ccx=8,cores=8"`) so that harness seeds derived
    /// from the name distinguish every shape.
    pub name: String,
    /// Microarchitecture, e.g. `"Skylake"`.
    pub microarch: &'static str,
    /// Number of sockets. A socket is a die (one NUMA node) on all
    /// modeled machines, as in the paper.
    pub sockets: usize,
    /// Physical cores per socket.
    pub phys_per_socket: usize,
    /// CCXs (last-level-cache domains) per socket. 1 on the paper's
    /// Intel machines — the die is one LLC domain; synthetic AMD-like
    /// machines split the socket. Must divide `phys_per_socket`.
    pub ccx_per_socket: usize,
    /// Hardware threads per physical core (1 or 2).
    pub smt: usize,
    /// NUMA layout of the sockets.
    pub numa: NumaKind,
    /// Frequency behaviour.
    pub freq: FreqSpec,
    /// Power model.
    pub power: PowerSpec,
}

impl MachineSpec {
    /// Total number of hardware threads ("cores" in the paper's
    /// terminology).
    pub fn n_cores(&self) -> usize {
        self.sockets * self.phys_per_socket * self.smt
    }

    /// Hardware threads per socket.
    pub fn cores_per_socket(&self) -> usize {
        self.phys_per_socket * self.smt
    }

    /// Physical cores per CCX.
    pub fn phys_per_ccx(&self) -> usize {
        self.phys_per_socket / self.ccx_per_socket
    }

    /// Hardware threads per CCX.
    pub fn cores_per_ccx(&self) -> usize {
        self.phys_per_ccx() * self.smt
    }

    /// Total number of CCXs.
    pub fn n_ccx(&self) -> usize {
        self.sockets * self.ccx_per_socket
    }
}

/// Computed topology: numbering, pairing, spans, domains.
///
/// The socket-level API predates the domain hierarchy and is retained as
/// a view over [`DomainTree`]'s socket level; CCX-level queries are
/// answered by the same tree.
#[derive(Clone, Debug)]
pub struct Topology {
    spec: MachineSpec,
    domains: DomainTree,
}

impl Topology {
    /// Builds the topology for a machine.
    ///
    /// # Panics
    ///
    /// Panics if the spec has zero sockets/cores, an SMT width other than
    /// 1 or 2, or a CCX count that does not divide the physical cores.
    pub fn new(spec: MachineSpec) -> Topology {
        assert!(
            spec.sockets > 0 && spec.phys_per_socket > 0,
            "empty machine"
        );
        assert!(
            spec.smt == 1 || spec.smt == 2,
            "only SMT widths 1 and 2 are modeled"
        );
        let domains = DomainTree::new(&spec);
        Topology { spec, domains }
    }

    /// Returns the machine description.
    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    /// Returns the scheduling-domain hierarchy.
    pub fn domains(&self) -> &DomainTree {
        &self.domains
    }

    /// Returns the total number of hardware threads.
    pub fn n_cores(&self) -> usize {
        self.spec.n_cores()
    }

    /// Returns the number of sockets.
    pub fn n_sockets(&self) -> usize {
        self.spec.sockets
    }

    /// Returns the number of CCXs.
    pub fn n_ccx(&self) -> usize {
        self.domains.n_ccx()
    }

    /// `true` if any socket holds more than one CCX — i.e. the CCX level
    /// of the tree is not just the socket level under another name.
    /// Degenerate (paper) machines answer `false`, and schedulers use
    /// that to keep their historical per-socket scan paths bit-for-bit.
    pub fn has_subsocket_domains(&self) -> bool {
        self.spec.ccx_per_socket > 1
    }

    /// Returns the socket that owns a core.
    ///
    /// # Panics
    ///
    /// Panics if the core is out of range.
    pub fn socket_of(&self, core: CoreId) -> SocketId {
        assert!(core.index() < self.n_cores(), "core {core} out of range");
        SocketId::from_index(core.index() / self.spec.cores_per_socket())
    }

    /// Returns the CCX that owns a core.
    ///
    /// # Panics
    ///
    /// Panics if the core is out of range.
    pub fn ccx_of(&self, core: CoreId) -> CcxId {
        let socket = self.socket_of(core);
        let local = self.phys_index(core) / self.spec.phys_per_ccx();
        CcxId::from_index(socket.index() * self.spec.ccx_per_socket + local)
    }

    /// Returns the hyperthread sharing the physical core with `core`, or
    /// `core` itself on an SMT-1 machine (every core is its own pair,
    /// which makes the hyperthread-pairing heuristics degrade to no-ops).
    ///
    /// # Panics
    ///
    /// Panics if the core is out of range.
    pub fn sibling(&self, core: CoreId) -> CoreId {
        assert!(core.index() < self.n_cores(), "core {core} out of range");
        if self.spec.smt == 1 {
            return core;
        }
        let cps = self.spec.cores_per_socket();
        let p = self.spec.phys_per_socket;
        let base = core.index() / cps * cps;
        let local = core.index() % cps;
        let sib = if local < p { local + p } else { local - p };
        CoreId::from_index(base + sib)
    }

    /// Returns the physical-core index of `core` within its socket.
    pub fn phys_index(&self, core: CoreId) -> usize {
        let local = core.index() % self.spec.cores_per_socket();
        local % self.spec.phys_per_socket
    }

    /// Returns `true` if `core` is the first hardware thread of its
    /// physical core (always true on SMT-1 machines).
    pub fn is_primary_thread(&self, core: CoreId) -> bool {
        core.index() % self.spec.cores_per_socket() < self.spec.phys_per_socket
    }

    /// Returns the span of a socket (its die).
    ///
    /// # Panics
    ///
    /// Panics if the socket is out of range.
    pub fn socket_span(&self, socket: SocketId) -> &CpuSet {
        self.domains.socket_span(socket)
    }

    /// Returns the span of a CCX (the cores sharing one LLC slice).
    ///
    /// # Panics
    ///
    /// Panics if the CCX is out of range.
    pub fn ccx_span(&self, ccx: CcxId) -> &CpuSet {
        self.domains.ccx_span(ccx)
    }

    /// Returns the span of the whole machine.
    pub fn all_cores(&self) -> &CpuSet {
        self.domains.machine_span()
    }

    /// Iterates over socket ids.
    pub fn sockets(&self) -> impl Iterator<Item = SocketId> {
        (0..self.spec.sockets).map(SocketId::from_index)
    }

    /// Iterates over CCX ids.
    pub fn ccxs(&self) -> impl Iterator<Item = CcxId> {
        (0..self.n_ccx()).map(CcxId::from_index)
    }

    /// Iterates over all cores in numerical order.
    pub fn cores(&self) -> impl Iterator<Item = CoreId> {
        (0..self.n_cores()).map(CoreId::from_index)
    }

    /// Returns sockets ordered by NUMA distance from `from`'s socket,
    /// ties broken by socket number. On flat machines this is `from`'s
    /// own die first, then the others in numerical order — the search
    /// order Nest uses to reduce the number of used dies (§3.1).
    pub fn sockets_nearest_first(&self, from: CoreId) -> Vec<SocketId> {
        self.domains.sockets_nearest_first(self.socket_of(from))
    }

    /// Returns CCXs ordered by distance from `from`'s CCX: home CCX
    /// first, then the rest of the home socket, then remote sockets by
    /// NUMA distance.
    pub fn ccxs_nearest_first(&self, from: CoreId) -> Vec<CcxId> {
        self.domains.ccxs_nearest_first(self.ccx_of(from))
    }

    /// Number of turbo-counting domains, per [`FreqSpec::turbo_domain`]:
    /// one per socket, or one per CCX.
    pub fn n_turbo_domains(&self) -> usize {
        match self.spec.freq.turbo_domain {
            TurboDomain::Socket => self.spec.sockets,
            TurboDomain::Ccx => self.n_ccx(),
        }
    }

    /// Physical cores per turbo-counting domain.
    pub fn turbo_domain_phys(&self) -> usize {
        match self.spec.freq.turbo_domain {
            TurboDomain::Socket => self.spec.phys_per_socket,
            TurboDomain::Ccx => self.spec.phys_per_ccx(),
        }
    }

    /// Turbo-counting domain of a global physical-core index (physical
    /// cores are numbered socket-major, `socket · phys_per_socket + p`).
    /// This is the one accessor through which both the frequency model's
    /// active-core windows and any scheduler-side ladder queries resolve
    /// the counting domain, so neither layer hard-codes "socket".
    pub fn turbo_domain_of_phys(&self, phys: usize) -> usize {
        assert!(
            phys < self.spec.sockets * self.spec.phys_per_socket,
            "physical core {phys} out of range"
        );
        phys / self.turbo_domain_phys()
    }

    /// Turbo-counting domain of a core.
    pub fn turbo_domain_of(&self, core: CoreId) -> usize {
        let phys = self.socket_of(core).index() * self.spec.phys_per_socket + self.phys_index(core);
        self.turbo_domain_of_phys(phys)
    }

    /// The socket a turbo-counting domain lies on (used for per-socket
    /// throttle composition).
    pub fn socket_of_turbo_domain(&self, domain: usize) -> SocketId {
        match self.spec.freq.turbo_domain {
            TurboDomain::Socket => SocketId::from_index(domain),
            TurboDomain::Ccx => self.domains.socket_of_ccx(CcxId::from_index(domain)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    fn topo_6130_4s() -> Topology {
        Topology::new(presets::xeon_6130(4))
    }

    fn topo_synth() -> Topology {
        // 2 sockets × 4 CCX × 8 phys, SMT-1 → 64 cores, CCX turbo.
        Topology::new(presets::synth(2, 4, 8, 1, NumaKind::Flat))
    }

    #[test]
    fn core_counts_match_table2() {
        assert_eq!(Topology::new(presets::e7_8870_v4()).n_cores(), 160);
        assert_eq!(Topology::new(presets::xeon_6130(2)).n_cores(), 64);
        assert_eq!(Topology::new(presets::xeon_6130(4)).n_cores(), 128);
        assert_eq!(Topology::new(presets::xeon_5218()).n_cores(), 64);
    }

    #[test]
    fn socket_of_is_socket_major() {
        let t = topo_6130_4s();
        assert_eq!(t.socket_of(CoreId(0)), SocketId(0));
        assert_eq!(t.socket_of(CoreId(31)), SocketId(0));
        assert_eq!(t.socket_of(CoreId(32)), SocketId(1));
        assert_eq!(t.socket_of(CoreId(127)), SocketId(3));
    }

    #[test]
    fn sibling_is_involutive_and_same_socket() {
        let t = topo_6130_4s();
        for c in t.cores() {
            let s = t.sibling(c);
            assert_ne!(s, c);
            assert_eq!(t.sibling(s), c);
            assert_eq!(t.socket_of(s), t.socket_of(c));
            assert_eq!(t.phys_index(s), t.phys_index(c));
        }
    }

    #[test]
    fn sibling_pairing_layout() {
        // 16 physical cores per socket: thread 0 of phys 0 is core 0, its
        // hyperthread is core 16.
        let t = topo_6130_4s();
        assert_eq!(t.sibling(CoreId(0)), CoreId(16));
        assert_eq!(t.sibling(CoreId(16)), CoreId(0));
        assert_eq!(t.sibling(CoreId(32)), CoreId(48));
        assert!(t.is_primary_thread(CoreId(0)));
        assert!(!t.is_primary_thread(CoreId(16)));
    }

    #[test]
    fn smt1_sibling_is_self() {
        let t = topo_synth();
        for c in t.cores() {
            assert_eq!(t.sibling(c), c);
            assert!(t.is_primary_thread(c));
            assert_eq!(t.phys_index(c), c.index() % 32);
        }
    }

    #[test]
    fn socket_spans_partition_machine() {
        let t = topo_6130_4s();
        let mut seen = CpuSet::new(t.n_cores());
        for s in t.sockets() {
            let span = t.socket_span(s);
            assert_eq!(span.len(), 32);
            assert!(seen.is_disjoint(span));
            seen.union_with(span);
        }
        assert_eq!(seen.len(), t.n_cores());
    }

    #[test]
    fn degenerate_ccx_equals_socket() {
        let t = topo_6130_4s();
        assert!(!t.has_subsocket_domains());
        assert_eq!(t.n_ccx(), t.n_sockets());
        for c in t.cores() {
            assert_eq!(t.ccx_of(c).index(), t.socket_of(c).index());
        }
        for s in t.sockets() {
            assert_eq!(t.ccx_span(CcxId(s.0)), t.socket_span(s));
        }
    }

    #[test]
    fn ccx_of_is_socket_major_blocks() {
        let t = topo_synth();
        assert!(t.has_subsocket_domains());
        assert_eq!(t.n_ccx(), 8);
        assert_eq!(t.ccx_of(CoreId(0)), CcxId(0));
        assert_eq!(t.ccx_of(CoreId(7)), CcxId(0));
        assert_eq!(t.ccx_of(CoreId(8)), CcxId(1));
        assert_eq!(t.ccx_of(CoreId(31)), CcxId(3));
        assert_eq!(t.ccx_of(CoreId(32)), CcxId(4));
        assert_eq!(t.ccx_of(CoreId(63)), CcxId(7));
        for c in t.cores() {
            assert!(t.ccx_span(t.ccx_of(c)).contains(c));
        }
    }

    #[test]
    fn nearest_first_starts_home() {
        let t = topo_6130_4s();
        let order = t.sockets_nearest_first(CoreId(40));
        assert_eq!(order[0], SocketId(1));
        assert_eq!(order.len(), 4);
    }

    #[test]
    fn ccxs_nearest_first_covers_all() {
        let t = topo_synth();
        let order = t.ccxs_nearest_first(CoreId(17));
        assert_eq!(order.len(), 8);
        assert_eq!(order[0], CcxId(2));
        // Rest of socket 0 before socket 1's CCXs.
        assert_eq!(&order[1..4], &[CcxId(0), CcxId(1), CcxId(3)]);
    }

    #[test]
    fn turbo_domains_follow_spec() {
        let intel = topo_6130_4s();
        assert_eq!(intel.n_turbo_domains(), 4);
        assert_eq!(intel.turbo_domain_phys(), 16);
        assert_eq!(intel.turbo_domain_of_phys(17), 1);
        assert_eq!(intel.turbo_domain_of(CoreId(48)), 1);
        let amd = topo_synth();
        assert_eq!(amd.n_turbo_domains(), 8);
        assert_eq!(amd.turbo_domain_phys(), 8);
        assert_eq!(amd.turbo_domain_of_phys(17), 2);
        assert_eq!(amd.socket_of_turbo_domain(5), SocketId(1));
    }

    #[test]
    fn turbo_limit_extends_last_entry() {
        let spec = presets::xeon_6130(2);
        assert_eq!(spec.freq.turbo_limit(1), Freq::from_ghz(3.7));
        assert_eq!(spec.freq.turbo_limit(4), Freq::from_ghz(3.5));
        assert_eq!(spec.freq.turbo_limit(8), Freq::from_ghz(3.4));
        assert_eq!(spec.freq.turbo_limit(12), Freq::from_ghz(3.1));
        assert_eq!(spec.freq.turbo_limit(16), Freq::from_ghz(2.8));
        assert_eq!(spec.freq.turbo_limit(100), Freq::from_ghz(2.8));
        assert_eq!(spec.freq.turbo_limit(0), Freq::from_ghz(3.7));
    }

    #[test]
    fn voltage_interpolates() {
        let spec = presets::xeon_6130(2);
        let p = &spec.power;
        let vmin = p.voltage(spec.freq.fmin, spec.freq.fmin, spec.freq.fmax());
        let vmax = p.voltage(spec.freq.fmax(), spec.freq.fmin, spec.freq.fmax());
        assert!((vmin - p.v_at_fmin).abs() < 1e-12);
        assert!((vmax - p.v_at_fmax).abs() < 1e-12);
        let mid = p.voltage(Freq::from_ghz(2.35), spec.freq.fmin, spec.freq.fmax());
        assert!(mid > vmin && mid < vmax);
    }
}
