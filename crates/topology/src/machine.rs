//! Machine description and computed topology.
//!
//! [`MachineSpec`] is pure data describing one of the paper's test machines
//! (Table 2): socket/core/SMT counts plus the frequency behaviour
//! ([`FreqSpec`], Table 3) and a power model ([`PowerSpec`]).
//! [`Topology`] derives the structures schedulers need: core numbering,
//! hyperthread pairing, socket (die) spans, and the SMT/DIE/NUMA
//! scheduling-domain views.
//!
//! Core numbering is socket-major, matching the renumbering the paper
//! applies to its traces ("cores on the same socket have adjacent
//! numbers"): on a machine with `P` physical cores per socket, socket `s`
//! owns cores `s·2P .. (s+1)·2P`, where local index `p < P` is the first
//! hardware thread of physical core `p` and `p + P` is its hyperthread.

use nest_simcore::{CoreId, Freq, SocketId};

use crate::cpuset::CpuSet;

/// Frequency behaviour of a machine (paper Table 3 plus ramp dynamics).
#[derive(Clone, Debug)]
pub struct FreqSpec {
    /// Minimum frequency a core can drop to.
    pub fmin: Freq,
    /// Nominal (base) frequency; the `performance` governor's floor.
    pub fnominal: Freq,
    /// Turbo ceiling by number of active physical cores on the socket:
    /// `turbo[0]` applies with 1 active core, `turbo[1]` with 2, …; the
    /// last entry extends to all higher counts.
    pub turbo: Vec<Freq>,
    /// How fast the hardware raises a busy core's frequency, in kHz per
    /// millisecond. Models the difference between Intel Speed Shift
    /// (fast) and Enhanced SpeedStep on the older Broadwell (slow) that
    /// §5.2 and §5.3 of the paper highlight.
    pub ramp_up_khz_per_ms: u64,
    /// How fast an idle core's frequency decays, in kHz per millisecond.
    pub ramp_down_khz_per_ms: u64,
    /// Idle time before the frequency starts decaying, in nanoseconds.
    pub idle_cooldown_ns: u64,
    /// Window over which the hardware counts a physical core as "active"
    /// for turbo-ladder purposes. The processor does not react instantly
    /// to activity changes (§5.2: "the processor does not react quickly
    /// enough to the change of core activity, and the cores stay in the
    /// lower turbo range"), so dispersing short tasks over many cores
    /// keeps the windowed count — and hence the turbo cap — high.
    pub turbo_window_ns: u64,
    /// Bucket upper edges used by the paper's frequency-distribution
    /// figures for this machine (Figures 6 and 11).
    pub residency_buckets_ghz: Vec<f64>,
}

impl FreqSpec {
    /// Returns the turbo ceiling when `active_phys` physical cores of a
    /// socket are active.
    ///
    /// With zero active cores there is no constraint; the single-core
    /// ceiling is returned.
    pub fn turbo_limit(&self, active_phys: usize) -> Freq {
        assert!(!self.turbo.is_empty(), "empty turbo table");
        let idx = active_phys.saturating_sub(1).min(self.turbo.len() - 1);
        self.turbo[idx]
    }

    /// Returns the highest turbo frequency (single active core).
    pub fn fmax(&self) -> Freq {
        self.turbo_limit(1)
    }
}

/// A simple CPU power model, calibrated per machine.
///
/// Socket power = `uncore_w` (charged whenever the machine is up — the
/// paper notes sockets never enter deep sleep while any core is active)
/// plus per-core idle power plus per-active-core dynamic power `k·f·V²`,
/// where the socket voltage `V` tracks the fastest active core on the
/// socket (§5.2: "the CPU energy consumption is determined by the
/// consumption of the highest frequency core on the socket").
#[derive(Clone, Debug)]
pub struct PowerSpec {
    /// Constant per-socket uncore power in watts.
    pub uncore_w: f64,
    /// Power of an idle (non-spinning) core in watts.
    pub core_idle_w: f64,
    /// Dynamic coefficient: watts per GHz at V = 1.
    pub dyn_coeff_w_per_ghz: f64,
    /// Fraction of the dynamic power a *spinning* idle loop draws: the
    /// pause-loop keeps the core awake without driving the execution
    /// units at full activity factor.
    pub spin_power_factor: f64,
    /// Voltage at the minimum frequency (relative units).
    pub v_at_fmin: f64,
    /// Voltage at the maximum turbo frequency (relative units).
    pub v_at_fmax: f64,
}

impl PowerSpec {
    /// Returns the relative socket voltage when the fastest active core on
    /// the socket runs at `f`, interpolating linearly in frequency.
    pub fn voltage(&self, f: Freq, fmin: Freq, fmax: Freq) -> f64 {
        if fmax <= fmin {
            return self.v_at_fmax;
        }
        let t = (f.as_khz().saturating_sub(fmin.as_khz())) as f64
            / (fmax.as_khz() - fmin.as_khz()) as f64;
        self.v_at_fmin + t.clamp(0.0, 1.0) * (self.v_at_fmax - self.v_at_fmin)
    }
}

/// A complete machine description.
#[derive(Clone, Debug)]
pub struct MachineSpec {
    /// Short name, e.g. `"4-socket Intel 6130"`.
    pub name: &'static str,
    /// Microarchitecture, e.g. `"Skylake"`.
    pub microarch: &'static str,
    /// Number of sockets. A die coincides with a socket on all modeled
    /// machines (shared last-level cache), as in the paper.
    pub sockets: usize,
    /// Physical cores per socket.
    pub phys_per_socket: usize,
    /// Hardware threads per physical core (2 on all modeled machines).
    pub smt: usize,
    /// Frequency behaviour.
    pub freq: FreqSpec,
    /// Power model.
    pub power: PowerSpec,
}

impl MachineSpec {
    /// Total number of hardware threads ("cores" in the paper's
    /// terminology).
    pub fn n_cores(&self) -> usize {
        self.sockets * self.phys_per_socket * self.smt
    }

    /// Hardware threads per socket.
    pub fn cores_per_socket(&self) -> usize {
        self.phys_per_socket * self.smt
    }
}

/// Computed topology: numbering, pairing, spans, domains.
#[derive(Clone, Debug)]
pub struct Topology {
    spec: MachineSpec,
    socket_spans: Vec<CpuSet>,
    all: CpuSet,
}

impl Topology {
    /// Builds the topology for a machine.
    ///
    /// # Panics
    ///
    /// Panics if the spec has zero sockets/cores or `smt != 2` (the only
    /// SMT width the paper's heuristics are defined for).
    pub fn new(spec: MachineSpec) -> Topology {
        assert!(
            spec.sockets > 0 && spec.phys_per_socket > 0,
            "empty machine"
        );
        assert_eq!(spec.smt, 2, "only 2-way SMT is modeled");
        let n = spec.n_cores();
        let mut socket_spans = Vec::with_capacity(spec.sockets);
        for s in 0..spec.sockets {
            let mut span = CpuSet::new(n);
            let base = s * spec.cores_per_socket();
            for i in 0..spec.cores_per_socket() {
                span.insert(CoreId::from_index(base + i));
            }
            socket_spans.push(span);
        }
        Topology {
            all: CpuSet::full(n),
            socket_spans,
            spec,
        }
    }

    /// Returns the machine description.
    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    /// Returns the total number of hardware threads.
    pub fn n_cores(&self) -> usize {
        self.spec.n_cores()
    }

    /// Returns the number of sockets.
    pub fn n_sockets(&self) -> usize {
        self.spec.sockets
    }

    /// Returns the socket that owns a core.
    ///
    /// # Panics
    ///
    /// Panics if the core is out of range.
    pub fn socket_of(&self, core: CoreId) -> SocketId {
        assert!(core.index() < self.n_cores(), "core {core} out of range");
        SocketId::from_index(core.index() / self.spec.cores_per_socket())
    }

    /// Returns the hyperthread sharing the physical core with `core`.
    ///
    /// # Panics
    ///
    /// Panics if the core is out of range.
    pub fn sibling(&self, core: CoreId) -> CoreId {
        assert!(core.index() < self.n_cores(), "core {core} out of range");
        let cps = self.spec.cores_per_socket();
        let p = self.spec.phys_per_socket;
        let base = core.index() / cps * cps;
        let local = core.index() % cps;
        let sib = if local < p { local + p } else { local - p };
        CoreId::from_index(base + sib)
    }

    /// Returns the physical-core index of `core` within its socket.
    pub fn phys_index(&self, core: CoreId) -> usize {
        let local = core.index() % self.spec.cores_per_socket();
        local % self.spec.phys_per_socket
    }

    /// Returns `true` if `core` is the first hardware thread of its
    /// physical core.
    pub fn is_primary_thread(&self, core: CoreId) -> bool {
        core.index() % self.spec.cores_per_socket() < self.spec.phys_per_socket
    }

    /// Returns the span of a socket (its die — all cores sharing the LLC).
    ///
    /// # Panics
    ///
    /// Panics if the socket is out of range.
    pub fn socket_span(&self, socket: SocketId) -> &CpuSet {
        &self.socket_spans[socket.index()]
    }

    /// Returns the span of the whole machine.
    pub fn all_cores(&self) -> &CpuSet {
        &self.all
    }

    /// Iterates over socket ids.
    pub fn sockets(&self) -> impl Iterator<Item = SocketId> {
        (0..self.spec.sockets).map(SocketId::from_index)
    }

    /// Iterates over all cores in numerical order.
    pub fn cores(&self) -> impl Iterator<Item = CoreId> {
        (0..self.n_cores()).map(CoreId::from_index)
    }

    /// Returns sockets ordered by distance from `from`'s socket: `from`'s
    /// own die first, then the others in numerical order — the search
    /// order Nest uses to reduce the number of used dies (§3.1).
    pub fn sockets_nearest_first(&self, from: CoreId) -> Vec<SocketId> {
        let home = self.socket_of(from);
        let mut order = vec![home];
        order.extend(self.sockets().filter(|&s| s != home));
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    fn topo_6130_4s() -> Topology {
        Topology::new(presets::xeon_6130(4))
    }

    #[test]
    fn core_counts_match_table2() {
        assert_eq!(Topology::new(presets::e7_8870_v4()).n_cores(), 160);
        assert_eq!(Topology::new(presets::xeon_6130(2)).n_cores(), 64);
        assert_eq!(Topology::new(presets::xeon_6130(4)).n_cores(), 128);
        assert_eq!(Topology::new(presets::xeon_5218()).n_cores(), 64);
    }

    #[test]
    fn socket_of_is_socket_major() {
        let t = topo_6130_4s();
        assert_eq!(t.socket_of(CoreId(0)), SocketId(0));
        assert_eq!(t.socket_of(CoreId(31)), SocketId(0));
        assert_eq!(t.socket_of(CoreId(32)), SocketId(1));
        assert_eq!(t.socket_of(CoreId(127)), SocketId(3));
    }

    #[test]
    fn sibling_is_involutive_and_same_socket() {
        let t = topo_6130_4s();
        for c in t.cores() {
            let s = t.sibling(c);
            assert_ne!(s, c);
            assert_eq!(t.sibling(s), c);
            assert_eq!(t.socket_of(s), t.socket_of(c));
            assert_eq!(t.phys_index(s), t.phys_index(c));
        }
    }

    #[test]
    fn sibling_pairing_layout() {
        // 16 physical cores per socket: thread 0 of phys 0 is core 0, its
        // hyperthread is core 16.
        let t = topo_6130_4s();
        assert_eq!(t.sibling(CoreId(0)), CoreId(16));
        assert_eq!(t.sibling(CoreId(16)), CoreId(0));
        assert_eq!(t.sibling(CoreId(32)), CoreId(48));
        assert!(t.is_primary_thread(CoreId(0)));
        assert!(!t.is_primary_thread(CoreId(16)));
    }

    #[test]
    fn socket_spans_partition_machine() {
        let t = topo_6130_4s();
        let mut seen = CpuSet::new(t.n_cores());
        for s in t.sockets() {
            let span = t.socket_span(s);
            assert_eq!(span.len(), 32);
            assert!(seen.is_disjoint(span));
            seen.union_with(span);
        }
        assert_eq!(seen.len(), t.n_cores());
    }

    #[test]
    fn nearest_first_starts_home() {
        let t = topo_6130_4s();
        let order = t.sockets_nearest_first(CoreId(40));
        assert_eq!(order[0], SocketId(1));
        assert_eq!(order.len(), 4);
    }

    #[test]
    fn turbo_limit_extends_last_entry() {
        let spec = presets::xeon_6130(2);
        assert_eq!(spec.freq.turbo_limit(1), Freq::from_ghz(3.7));
        assert_eq!(spec.freq.turbo_limit(4), Freq::from_ghz(3.5));
        assert_eq!(spec.freq.turbo_limit(8), Freq::from_ghz(3.4));
        assert_eq!(spec.freq.turbo_limit(12), Freq::from_ghz(3.1));
        assert_eq!(spec.freq.turbo_limit(16), Freq::from_ghz(2.8));
        assert_eq!(spec.freq.turbo_limit(100), Freq::from_ghz(2.8));
        assert_eq!(spec.freq.turbo_limit(0), Freq::from_ghz(3.7));
    }

    #[test]
    fn voltage_interpolates() {
        let spec = presets::xeon_6130(2);
        let p = &spec.power;
        let vmin = p.voltage(spec.freq.fmin, spec.freq.fmin, spec.freq.fmax());
        let vmax = p.voltage(spec.freq.fmax(), spec.freq.fmin, spec.freq.fmax());
        assert!((vmin - p.v_at_fmin).abs() < 1e-12);
        assert!((vmax - p.v_at_fmax).abs() < 1e-12);
        let mid = p.voltage(Freq::from_ghz(2.35), spec.freq.fmin, spec.freq.fmax());
        assert!(mid > vmin && mid < vmax);
    }
}
