//! End-to-end tests of the `nest-sim replay` surface, driving the real
//! binary: pause-and-snapshot versus restore-and-continue must produce
//! byte-identical artifacts, and every typed failure (corrupt snapshot,
//! wrong scenario, malformed flags) must exit with status 2 and a
//! readable message — never a panic, never a quiet success.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn nest_sim() -> &'static str {
    env!("CARGO_BIN_EXE_nest-sim")
}

/// A scratch directory unique to this test, wiped on entry.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nest-replay-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Runs `nest-sim` with `args`, artifacts under `results_dir`.
fn run(results_dir: &Path, args: &[&str]) -> Output {
    Command::new(nest_sim())
        .args(args)
        .env("NEST_RESULTS_DIR", results_dir)
        .env("NEST_PROGRESS", "0")
        .env("NEST_CACHE", "off")
        .output()
        .expect("nest-sim spawns")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

const SCENARIO: &[&str] = &[
    "--machine",
    "5218",
    "--policy",
    "nest",
    "--governor",
    "schedutil",
    "--workload",
    "configure:gdb",
    "--seed",
    "7",
];

#[test]
fn pause_and_restore_write_byte_identical_artifacts() {
    let dir = scratch("roundtrip");
    let (dir_a, dir_b) = (dir.join("a"), dir.join("b"));
    let snap = dir.join("warm.snap");
    let snap_s = snap.to_str().unwrap();

    // Mode A: run from the scenario, snapshot at 50ms, continue to the end.
    let mut args: Vec<&str> = vec!["replay", "--at", "0.05", "--snap", snap_s];
    args.extend_from_slice(SCENARIO);
    let a = run(&dir_a, &args);
    assert!(a.status.success(), "mode A failed: {}", stderr_of(&a));
    assert!(snap.exists(), "snapshot file written");

    // Mode B: restore the snapshot and continue, artifacts to a second
    // directory so the two runs are compared on content alone.
    let b = run(&dir_b, &["replay", "--from", snap_s]);
    assert!(b.status.success(), "mode B failed: {}", stderr_of(&b));

    let bytes_a = std::fs::read(dir_a.join("replay.json")).expect("mode A artifact");
    let bytes_b = std::fs::read(dir_b.join("replay.json")).expect("mode B artifact");
    assert!(!bytes_a.is_empty());
    assert_eq!(bytes_a, bytes_b, "replay continuation changed the artifact");

    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn a_corrupted_snapshot_exits_2_with_a_typed_error() {
    let dir = scratch("corrupt");
    let snap = dir.join("warm.snap");
    let snap_s = snap.to_str().unwrap();

    let mut args: Vec<&str> = vec!["replay", "--at", "0.05", "--snap", snap_s];
    args.extend_from_slice(SCENARIO);
    let a = run(&dir, &args);
    assert!(a.status.success(), "{}", stderr_of(&a));

    // Flip a body value without touching the header: the checksum check
    // must catch it.
    let text = std::fs::read_to_string(&snap).unwrap();
    let bad = text.replace("\"kernel\"", "\"kernell\"");
    assert_ne!(text, bad, "corruption must actually hit");
    std::fs::write(&snap, bad).unwrap();

    let b = run(&dir, &["replay", "--from", snap_s]);
    assert_eq!(b.status.code(), Some(2), "typed errors exit 2");
    let err = stderr_of(&b);
    assert!(err.contains("corrupt"), "unhelpful message: {err}");

    // Outright garbage is a parse error, same exit status.
    std::fs::write(&snap, "not a snapshot at all").unwrap();
    let c = run(&dir, &["replay", "--from", snap_s]);
    assert_eq!(
        c.status.code(),
        Some(2),
        "garbage exits 2: {}",
        stderr_of(&c)
    );

    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn conflicting_replay_flags_are_rejected() {
    let dir = scratch("flags");

    // --at and --from together are ambiguous.
    let out = run(&dir, &["replay", "--at", "0.05", "--from", "x.snap"]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr_of(&out));

    // --from refuses scenario-overriding flags (only --faults/--policy
    // may branch).
    let out = run(
        &dir,
        &["replay", "--from", "x.snap", "--workload", "configure:gdb"],
    );
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr_of(&out).contains("--from"), "{}", stderr_of(&out));

    // Replay flags are rejected outside `replay`.
    let mut args: Vec<&str> = vec!["run", "--at", "0.05"];
    args.extend_from_slice(SCENARIO);
    let out = run(&dir, &args);
    assert_eq!(out.status.code(), Some(2));

    let _ = std::fs::remove_dir_all(dir);
}
