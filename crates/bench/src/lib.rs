//! Shared harness utilities for the figure/table binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the Nest
//! paper and prints the same rows/series the paper reports. Common knobs
//! come from the environment:
//!
//! * `NEST_RUNS` — measured runs per configuration (default 3; the paper
//!   uses 10 after 2 warmups).
//! * `NEST_QUICK=1` — restrict to the two-socket machines and one run,
//!   for smoke testing.
//! * `NEST_SEED` — base seed (default 42).

use nest_core::experiment::SchedulerSetup;
use nest_topology::presets;
use nest_topology::MachineSpec;

/// Measured runs per configuration.
pub fn runs() -> usize {
    std::env::var("NEST_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
}

/// `true` in quick (smoke-test) mode.
pub fn quick() -> bool {
    std::env::var("NEST_QUICK").map_or(false, |v| v == "1")
}

/// Base seed.
pub fn seed() -> u64 {
    std::env::var("NEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(42)
}

/// The machines a figure sweeps over (Table 2 set, or a subset in quick
/// mode).
pub fn figure_machines() -> Vec<MachineSpec> {
    if quick() {
        vec![presets::xeon_5218()]
    } else {
        presets::paper_machines()
    }
}

/// The scheduler sets used by the figures.
pub fn paper_schedulers() -> Vec<SchedulerSetup> {
    SchedulerSetup::paper_set()
}

/// Prints the standard figure banner.
pub fn banner(figure: &str, what: &str) {
    println!("==================================================================");
    println!("{figure}: {what}");
    println!("(runs per config: {}, seed: {}{})", runs(), seed(),
        if quick() { ", QUICK mode" } else { "" });
    println!("==================================================================");
}

use nest_core::experiment::{
    compare_schedulers,
    Comparison,
};
use nest_workloads::Workload;

/// Runs one workload across the figure machines under `schedulers`,
/// returning one comparison per machine.
pub fn sweep_machines(
    workload: &dyn Workload,
    schedulers: &[SchedulerSetup],
) -> Vec<Comparison> {
    figure_machines()
        .iter()
        .map(|m| compare_schedulers(m, workload, schedulers, runs(), seed()))
        .collect()
}

/// Runs the full §5.2 configure matrix: 11 benchmarks × machines ×
/// schedulers. Returns `(machine name, benchmark comparisons)` pairs.
pub fn configure_matrix(schedulers: &[SchedulerSetup]) -> Vec<(String, Vec<Comparison>)> {
    figure_machines()
        .iter()
        .map(|m| {
            let comps = nest_workloads::configure::all_specs()
                .into_iter()
                .map(|spec| {
                    let w = nest_workloads::configure::Configure::new(spec);
                    compare_schedulers(m, &w, schedulers, runs(), seed())
                })
                .collect();
            (m.name.to_string(), comps)
        })
        .collect()
}

/// Formats a per-benchmark metric row: benchmark name then one value per
/// scheduler.
pub fn metric_row(name: &str, values: &[String]) -> String {
    let mut s = format!("{name:<14}");
    for v in values {
        s.push_str(&format!(" {v:>12}"));
    }
    s
}
