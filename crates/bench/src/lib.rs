#![deny(missing_docs)]

//! Shared harness utilities for the figure/table binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the Nest
//! paper and prints the same rows/series the paper reports. Since PR 1 the
//! binaries describe their experiment matrices to `nest-harness`, which
//! fans the cells across worker threads with result caching, and each
//! binary emits a structured JSON artifact under `results/` next to its
//! ASCII output. Common knobs come from the environment:
//!
//! * `NEST_RUNS` — measured runs per configuration (default 3; the paper
//!   uses 10 after 2 warmups).
//! * `NEST_QUICK=1` — restrict to the two-socket machines and one run,
//!   for smoke testing.
//! * `NEST_SEED` — base seed (default 42).
//! * `NEST_JOBS` / `NEST_CACHE` / `NEST_RESULTS_DIR` — see `nest-harness`.

use nest_core::experiment::{Comparison, SchedulerSetup};
use nest_harness::{Artifact, Json, Matrix, Telemetry, WorkloadFactory};
use nest_scenario::Scenario;
use nest_topology::MachineSpec;
use nest_workloads::Workload;

/// Measured runs per configuration.
pub fn runs() -> usize {
    std::env::var("NEST_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
}

/// `true` in quick (smoke-test) mode.
pub fn quick() -> bool {
    std::env::var("NEST_QUICK").is_ok_and(|v| v == "1")
}

/// Base seed.
pub fn seed() -> u64 {
    std::env::var("NEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(42)
}

/// Registry keys of the machines a figure sweeps over (Table 2 set, or a
/// subset in quick mode).
pub fn figure_machine_keys() -> Vec<&'static str> {
    if quick() {
        vec!["5218"]
    } else {
        nest_scenario::paper_machine_keys().to_vec()
    }
}

/// The machines a figure sweeps over, resolved through the registry.
pub fn figure_machines() -> Vec<MachineSpec> {
    figure_machine_keys()
        .iter()
        .map(|k| nest_scenario::machine(k).expect("figure machines are registered"))
        .collect()
}

/// The `(policy, governor)` registry pairs of the paper's standard
/// comparison (CFS/Nest × schedutil/performance).
pub fn paper_setup_pairs() -> Vec<(&'static str, &'static str)> {
    vec![
        ("cfs", "schedutil"),
        ("cfs", "performance"),
        ("nest", "schedutil"),
        ("nest", "performance"),
    ]
}

/// The §5.2 configure comparison: the paper set plus Smove-schedutil.
pub fn configure_setup_pairs() -> Vec<(&'static str, &'static str)> {
    let mut pairs = paper_setup_pairs();
    pairs.push(("smove", "schedutil"));
    pairs
}

/// The scheduler sets used by the figures, resolved through the registry.
pub fn paper_schedulers() -> Vec<SchedulerSetup> {
    setups_of(&paper_setup_pairs())
}

/// Resolves `(policy, governor)` registry pairs to scheduler setups.
pub fn setups_of(pairs: &[(&str, &str)]) -> Vec<SchedulerSetup> {
    pairs
        .iter()
        .map(|(p, g)| {
            SchedulerSetup::new(
                nest_scenario::policy(p).expect("figure policies are registered"),
                nest_scenario::governor(g).expect("figure governors are registered"),
            )
        })
        .collect()
}

/// One [`Scenario`] from registry strings, with the environment's seed
/// and run count applied. Figure binaries compose known-good strings, so
/// a registry error here is a bug — fail loudly.
pub fn scenario(machine: &str, policy: &str, governor: &str, workload: &str) -> Scenario {
    Scenario::parse(machine, policy, governor, workload)
        .unwrap_or_else(|e| panic!("figure scenario invalid: {e}"))
        .with_seed(seed())
        .with_runs(runs())
}

/// One scenario per `(policy, governor)` pair — the rows of one
/// comparison block — on one machine/workload.
pub fn scenario_block(machine: &str, pairs: &[(&str, &str)], workload: &str) -> Vec<Scenario> {
    pairs
        .iter()
        .map(|(p, g)| scenario(machine, p, g, workload))
        .collect()
}

/// Adds one scenario block to `m` (a comparison row per pair), with an
/// optional run-count override (`None` = the environment's).
pub fn add_block(
    m: &mut Matrix,
    machine: &str,
    pairs: &[(&str, &str)],
    workload: &str,
    runs_override: Option<usize>,
) {
    let block: Vec<Scenario> = scenario_block(machine, pairs, workload)
        .into_iter()
        .map(|s| match runs_override {
            Some(n) => s.with_runs(n),
            None => s,
        })
        .collect();
    m.add_scenarios(&block)
        .unwrap_or_else(|e| panic!("figure scenario block invalid: {e}"));
}

/// Prints the standard figure banner.
pub fn banner(figure: &str, what: &str) {
    println!("==================================================================");
    println!("{figure}: {what}");
    println!(
        "(runs per config: {}, seed: {}{})",
        runs(),
        seed(),
        if quick() { ", QUICK mode" } else { "" }
    );
    println!("==================================================================");
}

/// An empty experiment matrix for `figure`, seeded from `NEST_SEED` and
/// configured (`NEST_JOBS`, `NEST_CACHE`) from the environment.
pub fn matrix(figure: &str) -> Matrix {
    Matrix::new(figure, seed())
}

/// Wraps a cheap `Fn() -> impl Workload` closure as a harness factory.
pub fn factory<W, F>(make: F) -> WorkloadFactory
where
    W: Workload + 'static,
    F: Fn() -> W + Send + Sync + 'static,
{
    Box::new(move || Box::new(make()))
}

/// Runs one workload spec across the figure machines under the given
/// `(policy, governor)` pairs, returning one comparison per machine. All
/// machines execute in one matrix so the worker pool spans the whole
/// figure.
pub fn sweep_machines(
    figure: &str,
    pairs: &[(&str, &str)],
    workload: &str,
) -> (Vec<Comparison>, Telemetry) {
    let mut m = matrix(figure);
    for key in figure_machine_keys() {
        add_block(&mut m, key, pairs, workload, None);
    }
    m.run()
}

/// Runs the full §5.2 configure matrix: 11 benchmarks × machines ×
/// scheduler pairs, as one harness matrix. Returns `(machine name,
/// benchmark comparisons)` pairs plus the run telemetry.
pub fn configure_matrix(
    figure: &str,
    pairs: &[(&str, &str)],
) -> (Vec<(String, Vec<Comparison>)>, Telemetry) {
    let machine_keys = figure_machine_keys();
    let members = nest_scenario::suite_members("configure").expect("configure is registered");
    let mut m = matrix(figure);
    for key in &machine_keys {
        for member in &members {
            add_block(&mut m, key, pairs, &format!("configure:{member}"), None);
        }
    }
    let (comps, telemetry) = m.run();
    let grouped = machine_keys
        .iter()
        .zip(comps.chunks(members.len()))
        .map(|(key, chunk)| {
            let name = nest_scenario::machine(key)
                .expect("figure machines are registered")
                .name
                .to_string();
            (name, chunk.to_vec())
        })
        .collect();
    (grouped, telemetry)
}

/// Writes the figure's JSON artifact (and its telemetry sidecar, when the
/// figure ran through a matrix) and prints where they went.
///
/// The main artifact is deterministic for a given seed — comparisons plus
/// any figure-specific `extra` fields; nondeterministic wall-clock/cache
/// telemetry goes only to the sidecar.
pub fn emit_artifact(
    figure: &str,
    comparisons: &[Comparison],
    extra: Vec<(&str, Json)>,
    telemetry: Option<&Telemetry>,
) {
    let mut a = Artifact::new(figure, seed());
    a.push("runs_per_config", Json::usize(runs()));
    a.push("quick", Json::Bool(quick()));
    for (k, v) in extra {
        a.push(k, v);
    }
    if !comparisons.is_empty() {
        a.comparisons(comparisons);
    }
    match a.write() {
        Ok(path) => println!("\nartifact: {}", path.display()),
        Err(e) => eprintln!("warning: could not write {figure} artifact: {e}"),
    }
    if let Some(t) = telemetry {
        match a.write_telemetry(t) {
            Ok(path) => println!("telemetry: {}", path.display()),
            Err(e) => eprintln!("warning: could not write {figure} telemetry: {e}"),
        }
    }
}

/// Averages each row's per-run frequency-residency fractions; returns
/// `(bucket labels, per-row fractions)` for residency figures (6 and 11).
pub fn mean_freq_fractions(c: &Comparison) -> (Vec<String>, Vec<Vec<f64>>) {
    let labels = c.rows[0].runs[0].freq_labels();
    let rows = c
        .rows
        .iter()
        .map(|r| {
            let n = r.runs.len() as f64;
            let mut acc = vec![0.0; labels.len()];
            for run in &r.runs {
                for (a, f) in acc.iter_mut().zip(run.freq_fractions()) {
                    *a += f / n;
                }
            }
            acc
        })
        .collect();
    (labels, rows)
}

/// Formats a per-benchmark metric row: benchmark name then one value per
/// scheduler.
pub fn metric_row(name: &str, values: &[String]) -> String {
    let mut s = format!("{name:<14}");
    for v in values {
        s.push_str(&format!(" {v:>12}"));
    }
    s
}
