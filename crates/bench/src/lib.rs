//! Shared harness utilities for the figure/table binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the Nest
//! paper and prints the same rows/series the paper reports. Since PR 1 the
//! binaries describe their experiment matrices to `nest-harness`, which
//! fans the cells across worker threads with result caching, and each
//! binary emits a structured JSON artifact under `results/` next to its
//! ASCII output. Common knobs come from the environment:
//!
//! * `NEST_RUNS` — measured runs per configuration (default 3; the paper
//!   uses 10 after 2 warmups).
//! * `NEST_QUICK=1` — restrict to the two-socket machines and one run,
//!   for smoke testing.
//! * `NEST_SEED` — base seed (default 42).
//! * `NEST_JOBS` / `NEST_CACHE` / `NEST_RESULTS_DIR` — see `nest-harness`.

use nest_core::experiment::{Comparison, SchedulerSetup};
use nest_harness::{Artifact, Json, Matrix, Telemetry, WorkloadFactory};
use nest_topology::presets;
use nest_topology::MachineSpec;
use nest_workloads::Workload;

/// Measured runs per configuration.
pub fn runs() -> usize {
    std::env::var("NEST_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
}

/// `true` in quick (smoke-test) mode.
pub fn quick() -> bool {
    std::env::var("NEST_QUICK").is_ok_and(|v| v == "1")
}

/// Base seed.
pub fn seed() -> u64 {
    std::env::var("NEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(42)
}

/// The machines a figure sweeps over (Table 2 set, or a subset in quick
/// mode).
pub fn figure_machines() -> Vec<MachineSpec> {
    if quick() {
        vec![presets::xeon_5218()]
    } else {
        presets::paper_machines()
    }
}

/// The scheduler sets used by the figures.
pub fn paper_schedulers() -> Vec<SchedulerSetup> {
    SchedulerSetup::paper_set()
}

/// Prints the standard figure banner.
pub fn banner(figure: &str, what: &str) {
    println!("==================================================================");
    println!("{figure}: {what}");
    println!(
        "(runs per config: {}, seed: {}{})",
        runs(),
        seed(),
        if quick() { ", QUICK mode" } else { "" }
    );
    println!("==================================================================");
}

/// An empty experiment matrix for `figure`, seeded from `NEST_SEED` and
/// configured (`NEST_JOBS`, `NEST_CACHE`) from the environment.
pub fn matrix(figure: &str) -> Matrix {
    Matrix::new(figure, seed())
}

/// Wraps a cheap `Fn() -> impl Workload` closure as a harness factory.
pub fn factory<W, F>(make: F) -> WorkloadFactory
where
    W: Workload + 'static,
    F: Fn() -> W + Send + Sync + 'static,
{
    Box::new(move || Box::new(make()))
}

/// Runs one workload across the figure machines under `schedulers`,
/// returning one comparison per machine. All machines execute in one
/// matrix so the worker pool spans the whole figure.
pub fn sweep_machines<W, F>(
    figure: &str,
    schedulers: &[SchedulerSetup],
    make: F,
) -> (Vec<Comparison>, Telemetry)
where
    W: Workload + 'static,
    F: Fn() -> W + Send + Sync + Clone + 'static,
{
    let mut m = matrix(figure);
    for machine in figure_machines() {
        m.add(machine, schedulers, runs(), factory(make.clone()));
    }
    m.run()
}

/// Runs the full §5.2 configure matrix: 11 benchmarks × machines ×
/// schedulers, as one harness matrix. Returns `(machine name, benchmark
/// comparisons)` pairs plus the run telemetry.
pub fn configure_matrix(
    figure: &str,
    schedulers: &[SchedulerSetup],
) -> (Vec<(String, Vec<Comparison>)>, Telemetry) {
    let machines = figure_machines();
    let specs = nest_workloads::configure::all_specs();
    let mut m = matrix(figure);
    for machine in &machines {
        for spec in &specs {
            let spec = spec.clone();
            m.add(
                machine.clone(),
                schedulers,
                runs(),
                factory(move || nest_workloads::configure::Configure::new(spec.clone())),
            );
        }
    }
    let (comps, telemetry) = m.run();
    let grouped = machines
        .iter()
        .zip(comps.chunks(specs.len()))
        .map(|(machine, chunk)| (machine.name.to_string(), chunk.to_vec()))
        .collect();
    (grouped, telemetry)
}

/// Writes the figure's JSON artifact (and its telemetry sidecar, when the
/// figure ran through a matrix) and prints where they went.
///
/// The main artifact is deterministic for a given seed — comparisons plus
/// any figure-specific `extra` fields; nondeterministic wall-clock/cache
/// telemetry goes only to the sidecar.
pub fn emit_artifact(
    figure: &str,
    comparisons: &[Comparison],
    extra: Vec<(&str, Json)>,
    telemetry: Option<&Telemetry>,
) {
    let mut a = Artifact::new(figure, seed());
    a.push("runs_per_config", Json::usize(runs()));
    a.push("quick", Json::Bool(quick()));
    for (k, v) in extra {
        a.push(k, v);
    }
    if !comparisons.is_empty() {
        a.comparisons(comparisons);
    }
    match a.write() {
        Ok(path) => println!("\nartifact: {}", path.display()),
        Err(e) => eprintln!("warning: could not write {figure} artifact: {e}"),
    }
    if let Some(t) = telemetry {
        match a.write_telemetry(t) {
            Ok(path) => println!("telemetry: {}", path.display()),
            Err(e) => eprintln!("warning: could not write {figure} telemetry: {e}"),
        }
    }
}

/// Averages each row's per-run frequency-residency fractions; returns
/// `(bucket labels, per-row fractions)` for residency figures (6 and 11).
pub fn mean_freq_fractions(c: &Comparison) -> (Vec<String>, Vec<Vec<f64>>) {
    let labels = c.rows[0].runs[0].freq_labels();
    let rows = c
        .rows
        .iter()
        .map(|r| {
            let n = r.runs.len() as f64;
            let mut acc = vec![0.0; labels.len()];
            for run in &r.runs {
                for (a, f) in acc.iter_mut().zip(run.freq_fractions()) {
                    *a += f / n;
                }
            }
            acc
        })
        .collect();
    (labels, rows)
}

/// Formats a per-benchmark metric row: benchmark name then one value per
/// scheduler.
pub fn metric_row(name: &str, values: &[String]) -> String {
    let mut s = format!("{name:<14}");
    for v in values {
        s.push_str(&format!(" {v:>12}"));
    }
    s
}
