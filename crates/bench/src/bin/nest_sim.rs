//! `nest-sim`: compose and run one scheduling scenario from the command
//! line — any (machine, policy, governor, workload) combination the
//! registries can express, not just the combinations the figure binaries
//! hard-code.
//!
//! ```text
//! nest-sim list [machines|policies|governors|workloads]
//! nest-sim id  --machine 5218 --policy nest --governor perf --workload hackbench
//! nest-sim run --machine i80 --policy nest:spin=off --governor performance \
//!              --workload hackbench --runs 10
//! ```
//!
//! `run` accepts `--policy` and `--governor` more than once; the rows of
//! the resulting comparison are the policy-major cartesian product, with
//! the first row as the speedup baseline. Results land in the standard
//! `results/<name>.json` artifact plus its `.telemetry.json` sidecar,
//! exactly like the figure binaries (`NEST_RESULTS_DIR`, `NEST_CACHE`,
//! `NEST_JOBS` all apply).

use nest_core::experiment::format_table;
use nest_harness::{Artifact, Json, Matrix};
use nest_scenario::{Scenario, DEFAULT_RUNS, DEFAULT_SEED};

const USAGE: &str = "\
nest-sim: compose and run one scheduling scenario

USAGE:
    nest-sim list [machines|policies|governors|workloads]
    nest-sim id  --machine <key> --policy <spec> --governor <key> --workload <spec>
                 [--seed <n>] [--runs <n>] [--horizon <secs>]
    nest-sim run --machine <key> --policy <spec> [--policy <spec>]...
                 --governor <key> [--governor <key>]... --workload <spec>
                 [--seed <n>] [--runs <n>] [--horizon <secs>] [--out <name>]

EXAMPLES:
    nest-sim list workloads
    nest-sim run --machine i80 --policy nest:spin=off --governor performance \\
                 --workload hackbench --runs 10
    nest-sim run --machine 5220 --policy cfs --policy smove --governor perf \\
                 --workload schbench:mt=2,w=2 --out smove_tail

`nest-sim list` prints every registry key a flag accepts; unknown keys
fail with the list of valid entries.";

fn fail(msg: &str) -> ! {
    eprintln!("nest-sim: {msg}");
    eprintln!("(run `nest-sim list` to see the registries, or `nest-sim --help`)");
    std::process::exit(2);
}

fn list(section: Option<&str>) {
    let want = |s: &str| section.is_none_or(|w| w == s);
    if !["machines", "policies", "governors", "workloads"]
        .iter()
        .any(|s| want(s))
    {
        fail(&format!(
            "unknown list section \"{}\"; valid: machines, policies, governors, workloads",
            section.unwrap_or_default()
        ));
    }
    if want("machines") {
        println!("machines (--machine):");
        for e in nest_scenario::machine_entries() {
            let alias = if e.aliases.is_empty() {
                String::new()
            } else {
                format!(" (aliases: {})", e.aliases.join(", "))
            };
            println!("  {:<10} {}{}", e.key, e.summary, alias);
        }
    }
    if want("policies") {
        println!("policies (--policy, parameters as key=value after ':'):");
        for (key, summary) in nest_scenario::policy_entries() {
            println!("  {key:<10} {summary}");
        }
    }
    if want("governors") {
        println!("governors (--governor):");
        for (key, _, summary) in nest_scenario::governor_entries() {
            println!("  {key:<12} {summary}");
        }
    }
    if want("workloads") {
        println!("workloads (--workload, '+' combines, knobs as key=value):");
        for (key, summary) in nest_scenario::workload_entries() {
            println!("  {key:<10} {summary}");
        }
    }
}

#[derive(Default)]
struct RunArgs {
    machine: Option<String>,
    policies: Vec<String>,
    governors: Vec<String>,
    workload: Option<String>,
    seed: Option<u64>,
    runs: Option<usize>,
    horizon: Option<u64>,
    out: Option<String>,
}

fn parse_run_args(args: &[String]) -> RunArgs {
    let mut out = RunArgs::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let (flag, inline) = match flag.split_once('=') {
            Some((f, v)) => (f, Some(v.to_string())),
            None => (flag.as_str(), None),
        };
        let mut value = || {
            inline.clone().unwrap_or_else(|| {
                it.next()
                    .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
                    .clone()
            })
        };
        match flag {
            "--machine" => out.machine = Some(value()),
            "--policy" => out.policies.push(value()),
            "--governor" => out.governors.push(value()),
            "--workload" => out.workload = Some(value()),
            "--seed" => {
                out.seed = Some(
                    value()
                        .parse()
                        .unwrap_or_else(|_| fail("--seed needs an integer")),
                )
            }
            "--runs" => {
                let n: usize = value()
                    .parse()
                    .unwrap_or_else(|_| fail("--runs needs an integer"));
                if n == 0 {
                    fail("--runs must be at least 1");
                }
                out.runs = Some(n);
            }
            "--horizon" => {
                out.horizon = Some(
                    value()
                        .parse()
                        .unwrap_or_else(|_| fail("--horizon needs seconds")),
                )
            }
            "--out" => out.out = Some(value()),
            other => fail(&format!("unknown flag \"{other}\"")),
        }
    }
    out
}

/// The policy-major cartesian product of the requested rows, validated
/// through the registries.
fn scenarios_of(a: &RunArgs) -> Vec<Scenario> {
    let machine = a
        .machine
        .as_deref()
        .unwrap_or_else(|| fail("--machine is required"));
    let workload = a
        .workload
        .as_deref()
        .unwrap_or_else(|| fail("--workload is required"));
    if a.policies.is_empty() {
        fail("at least one --policy is required");
    }
    if a.governors.is_empty() {
        fail("at least one --governor is required");
    }
    let mut scenarios = Vec::new();
    for policy in &a.policies {
        for governor in &a.governors {
            let s = Scenario::parse(machine, policy, governor, workload)
                .unwrap_or_else(|e| fail(&e.to_string()))
                .with_seed(a.seed.unwrap_or(DEFAULT_SEED))
                .with_runs(a.runs.unwrap_or(DEFAULT_RUNS));
            scenarios.push(match a.horizon {
                Some(h) => s.with_horizon_s(h),
                None => s,
            });
        }
    }
    scenarios
}

fn run(args: &[String]) {
    let a = parse_run_args(args);
    let scenarios = scenarios_of(&a);
    let first = &scenarios[0];
    let name = a.out.as_deref().unwrap_or("nest_sim");

    println!("machine:  {}", first.resolve_machine().name);
    println!("workload: {}", first.workload());
    println!(
        "seed {} × {} runs, horizon {}s",
        first.seed(),
        first.runs(),
        first.horizon_s()
    );
    for s in &scenarios {
        println!("  row: {}", s.identity());
    }

    let mut m = Matrix::new(name, first.seed());
    m.add_scenarios(&scenarios)
        .unwrap_or_else(|e| fail(&e.to_string()));
    let (comps, telemetry) = m.run();
    for c in &comps {
        print!("\n{}", format_table(c));
    }

    let mut artifact = Artifact::new(name, first.seed());
    artifact.push("runs_per_config", Json::usize(first.runs()));
    artifact.push(
        "scenarios",
        Json::Arr(scenarios.iter().map(|s| s.to_json()).collect()),
    );
    artifact.comparisons(&comps);
    match artifact.write() {
        Ok(path) => println!("\nartifact: {}", path.display()),
        Err(e) => fail(&format!("could not write artifact: {e}")),
    }
    match artifact.write_telemetry(&telemetry) {
        Ok(path) => println!("telemetry: {}", path.display()),
        Err(e) => fail(&format!("could not write telemetry: {e}")),
    }
}

fn id(args: &[String]) {
    let a = parse_run_args(args);
    for s in scenarios_of(&a) {
        println!("{}", s.identity());
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => list(args.get(1).map(String::as_str)),
        Some("id") => id(&args[1..]),
        Some("run") => run(&args[1..]),
        Some("--help") | Some("-h") | Some("help") | None => println!("{USAGE}"),
        Some(other) => fail(&format!(
            "unknown subcommand \"{other}\"; valid: list, id, run"
        )),
    }
}
