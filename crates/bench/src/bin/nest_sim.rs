//! `nest-sim`: compose and run one scheduling scenario from the command
//! line — any (machine, policy, governor, workload) combination the
//! registries can express, not just the combinations the figure binaries
//! hard-code.
//!
//! ```text
//! nest-sim list [machines|policies|governors|workloads]
//! nest-sim id  --machine 5218 --policy nest --governor perf --workload hackbench
//! nest-sim run --machine i80 --policy nest:spin=off --governor performance \
//!              --workload hackbench --runs 10
//! nest-sim trace --machine 5218 --policy nest --governor schedutil \
//!                --workload configure:gdb --out trace.json
//! nest-sim stats --machine 5218 --policy nest --governor schedutil \
//!                --workload configure:gdb
//! ```
//!
//! `run` accepts `--policy` and `--governor` more than once; the rows of
//! the resulting comparison are the policy-major cartesian product, with
//! the first row as the speedup baseline. Results land in the standard
//! `results/<name>.json` artifact plus its `.telemetry.json` sidecar,
//! exactly like the figure binaries (`NEST_RESULTS_DIR`, `NEST_CACHE`,
//! `NEST_JOBS` all apply).
//!
//! `trace` runs one scenario once with a [`TraceCollector`] attached and
//! exports the capture as Chrome trace-event JSON — loadable in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`. `stats` runs a
//! scenario and prints its aggregated [`DecisionMetrics`] as a
//! human-readable table. Both are pure observers: they reuse the exact
//! simulation the figure binaries run, so tracing a scenario cannot
//! change its results.

use nest_core::experiment::format_table;
use nest_core::{run_many, run_once_with};
use nest_harness::{Artifact, Json, Matrix};
use nest_metrics::{FleetMetrics, PhaseMetrics, ServeMetrics, PHASE_NAMES};
use nest_obs::{chrome_trace_with_timeseries, DecisionMetrics, EventClass, TraceCollector};
use nest_scenario::{Scenario, DEFAULT_RUNS, DEFAULT_SEED};
use nest_simcore::json::obj;
use nest_simcore::{PlacementPath, Time};

const USAGE: &str = "\
nest-sim: compose and run one scheduling scenario

USAGE:
    nest-sim list [machines|policies|governors|workloads]
    nest-sim id  --machine <key> --policy <spec> --governor <key> --workload <spec>
                 [--seed <n>] [--runs <n>] [--horizon <secs>]
    nest-sim run --machine <key> --policy <spec> [--policy <spec>]...
                 --governor <key> [--governor <key>]... --workload <spec>
                 [--seed <n>] [--runs <n>] [--horizon <secs>] [--out <name>]
                 [--faults <spec>]
    nest-sim trace --machine <key> --policy <spec> --governor <key> --workload <spec>
                 [--seed <n>] [--horizon <secs>] [--out <file>]
                 [--window <lo:hi>] [--events <class,...>] [--capacity <n>]
    nest-sim stats --machine <key> --policy <spec> --governor <key> --workload <spec>
                 [--seed <n>] [--runs <n>] [--horizon <secs>] [--json]
    nest-sim diff <A.telemetry.json> <B.telemetry.json>
                 [--threshold <pct>] [--json]
    nest-sim replay --machine <key> --policy <spec> --governor <key> --workload <spec>
                 [--seed <n>] [--horizon <secs>] [--faults <spec>]
                 --at <secs> [--snap <file>] [--out <name>]
    nest-sim replay --from <file> [--faults <spec>] [--policy <spec>] [--out <name>]

EXAMPLES:
    nest-sim list workloads
    nest-sim run --machine i80 --policy nest:spin=off --governor performance \\
                 --workload hackbench --runs 10
    nest-sim run --machine 5220 --policy cfs --policy smove --governor perf \\
                 --workload schbench:mt=2,w=2 --out smove_tail
    nest-sim run --machine 6130-4 --policy nest --governor schedutil \\
                 --workload configure:gdb \\
                 --faults hotplug=8@100ms:2s,throttle=s0:0.8
    nest-sim trace --machine 5218 --policy nest --governor schedutil \\
                 --workload configure:gdb --out trace.json --window 0:2 \\
                 --events run,placement,nest
    nest-sim stats --machine 5218 --policy nest --governor schedutil \\
                 --workload configure:gdb --runs 3
    nest-sim replay --machine 5218 --policy nest --governor schedutil \\
                 --workload configure:gdb --at 0.05 --snap warm.snap
    nest-sim replay --from warm.snap --faults \"hotplug=8@100ms:1s\"

`replay --at T` runs a scenario until every event at or before T has
been dispatched, writes a versioned snapshot (schema, scenario
identity, FNV checksum), then continues to completion — the artifact is
byte-identical to an unpaused run. `replay --from FILE` restores a
snapshot and continues; restoring onto the wrong scenario, schema, or a
corrupted file exits 2 with a typed error. `--faults`/`--policy` with
`--from` branch a what-if future at the pause point (same simulated
prefix, different remainder) — compare the branched artifact against
the unbranched one to isolate the effect of the injected change.

`trace` writes Chrome trace-event JSON (open in https://ui.perfetto.dev
or chrome://tracing); `--window` bounds are simulated seconds, and
`--events` takes classes from: task, placement, run, freq, spin, nest,
runnable. `stats` prints the scheduler's decision metrics (placement
paths, wakeup latency, migrations, spinning, nest occupancy) — plus
request tail latency (p50/p99/p999), SLO goodput, and energy per
request when the workload includes a `serve:` stream
(e.g. --workload \"serve:rate=500,dist=lognorm,slo=2ms\"), and the
per-request latency-phase breakdown (arrival queueing, runqueue wait,
service at fmax, frequency-ramp penalty, spin overlap, migration
stall, fan-out merge wait). `--json` emits the same metrics as one
machine-readable JSON document instead of tables.

`diff` compares two `.telemetry.json` sidecars (as written by `run` or
the figure binaries): decision metrics, serving percentiles, and the
phase breakdown, each with its relative delta. A change past
`--threshold` (percent, default 5) in the regression direction —
latency up, goodput down — exits 1, so CI can gate on it. `--json`
emits the comparison as a JSON document.

`--faults` injects a seeded fault plan into every row (grammar:
`hotplug=N@TIME[:DUR]`, `throttle=sK:F[@TIME[:DUR]]` joined with '+',
`jitter=TIME`, `stragglers=N[@TIME[:DUR]]`; clauses comma-separated —
see README \"Fault injection\"). It applies to `run`, `id`, `trace`,
and `stats` alike; the fault plan is part of the scenario identity, so
faulted results never collide with fault-free caches.

`nest-sim list` prints every registry key a flag accepts; unknown keys
fail with the list of valid entries.";

fn fail(msg: &str) -> ! {
    eprintln!("nest-sim: {msg}");
    eprintln!("(run `nest-sim list` to see the registries, or `nest-sim --help`)");
    std::process::exit(2);
}

fn list(section: Option<&str>) {
    let want = |s: &str| section.is_none_or(|w| w == s);
    if !["machines", "policies", "governors", "workloads"]
        .iter()
        .any(|s| want(s))
    {
        fail(&format!(
            "unknown list section \"{}\"; valid: machines, policies, governors, workloads",
            section.unwrap_or_default()
        ));
    }
    if want("machines") {
        println!("machines (--machine):");
        for e in nest_scenario::machine_entries() {
            let alias = if e.aliases.is_empty() {
                String::new()
            } else {
                format!(" (aliases: {})", e.aliases.join(", "))
            };
            println!("  {:<10} {}{}", e.key, e.summary, alias);
        }
    }
    if want("policies") {
        println!("policies (--policy, parameters as key=value after ':'):");
        for (key, summary) in nest_scenario::policy_entries() {
            println!("  {key:<10} {summary}");
        }
    }
    if want("governors") {
        println!("governors (--governor):");
        for (key, _, summary) in nest_scenario::governor_entries() {
            println!("  {key:<12} {summary}");
        }
    }
    if want("workloads") {
        println!("workloads (--workload, '+' combines, knobs as key=value):");
        for (key, summary) in nest_scenario::workload_entries() {
            println!("  {key:<10} {summary}");
        }
    }
}

#[derive(Default)]
struct RunArgs {
    machine: Option<String>,
    policies: Vec<String>,
    governors: Vec<String>,
    workload: Option<String>,
    seed: Option<u64>,
    runs: Option<usize>,
    horizon: Option<u64>,
    out: Option<String>,
    faults: Option<String>,
    window: Option<(Time, Time)>,
    events: Option<Vec<EventClass>>,
    capacity: Option<usize>,
    at: Option<Time>,
    snap: Option<String>,
    from: Option<String>,
    json: bool,
}

impl RunArgs {
    /// Rejects the trace-only flags for subcommands that ignore them.
    fn no_trace_flags(&self, subcommand: &str) {
        if self.window.is_some() || self.events.is_some() || self.capacity.is_some() {
            fail(&format!(
                "--window/--events/--capacity apply to `nest-sim trace`, not `{subcommand}`"
            ));
        }
    }

    /// Rejects the replay-only flags for subcommands that ignore them.
    fn no_replay_flags(&self, subcommand: &str) {
        if self.at.is_some() || self.snap.is_some() || self.from.is_some() {
            fail(&format!(
                "--at/--snap/--from apply to `nest-sim replay`, not `{subcommand}`"
            ));
        }
    }

    /// Rejects `--json` for subcommands without a JSON surface.
    fn no_json_flag(&self, subcommand: &str) {
        if self.json {
            fail(&format!(
                "--json applies to `nest-sim stats` and `nest-sim diff`, not `{subcommand}`"
            ));
        }
    }
}

/// Parses a `--window lo:hi` bound pair (simulated seconds, fractions
/// allowed) into the half-open time window `[lo, hi)`.
fn parse_window(spec: &str) -> (Time, Time) {
    let (lo, hi) = spec
        .split_once(':')
        .unwrap_or_else(|| fail("--window needs the form lo:hi (simulated seconds)"));
    let secs = |s: &str| -> f64 {
        s.parse()
            .unwrap_or_else(|_| fail("--window bounds must be numbers (simulated seconds)"))
    };
    let (lo, hi) = (secs(lo), secs(hi));
    if !(lo >= 0.0 && hi > lo) {
        fail("--window needs 0 <= lo < hi");
    }
    (
        Time::from_nanos((lo * 1e9) as u64),
        Time::from_nanos((hi * 1e9) as u64),
    )
}

/// Parses a `--events` comma list of [`EventClass`] names.
fn parse_events(spec: &str) -> Vec<EventClass> {
    spec.split(',')
        .map(|name| {
            EventClass::parse(name.trim()).unwrap_or_else(|| {
                let valid: Vec<&str> = EventClass::ALL.iter().map(|c| c.name()).collect();
                fail(&format!(
                    "unknown event class \"{name}\"; valid: {}",
                    valid.join(", ")
                ))
            })
        })
        .collect()
}

fn parse_run_args(args: &[String]) -> RunArgs {
    let mut out = RunArgs::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let (flag, inline) = match flag.split_once('=') {
            Some((f, v)) => (f, Some(v.to_string())),
            None => (flag.as_str(), None),
        };
        let mut value = || {
            inline.clone().unwrap_or_else(|| {
                it.next()
                    .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
                    .clone()
            })
        };
        match flag {
            "--machine" => out.machine = Some(value()),
            "--policy" => out.policies.push(value()),
            "--governor" => out.governors.push(value()),
            "--workload" => out.workload = Some(value()),
            "--seed" => {
                out.seed = Some(
                    value()
                        .parse()
                        .unwrap_or_else(|_| fail("--seed needs an integer")),
                )
            }
            "--runs" => {
                let n: usize = value()
                    .parse()
                    .unwrap_or_else(|_| fail("--runs needs an integer"));
                if n == 0 {
                    fail("--runs must be at least 1");
                }
                out.runs = Some(n);
            }
            "--horizon" => {
                out.horizon = Some(
                    value()
                        .parse()
                        .unwrap_or_else(|_| fail("--horizon needs seconds")),
                )
            }
            "--out" => out.out = Some(value()),
            "--faults" => out.faults = Some(value()),
            "--window" => out.window = Some(parse_window(&value())),
            "--events" => out.events = Some(parse_events(&value())),
            "--capacity" => {
                let n: usize = value()
                    .parse()
                    .unwrap_or_else(|_| fail("--capacity needs an integer"));
                if n == 0 {
                    fail("--capacity must be at least 1");
                }
                out.capacity = Some(n);
            }
            "--at" => {
                let secs: f64 = value()
                    .parse()
                    .unwrap_or_else(|_| fail("--at needs simulated seconds (fractions allowed)"));
                if secs.is_nan() || secs <= 0.0 {
                    fail("--at must be positive");
                }
                out.at = Some(Time::from_nanos((secs * 1e9) as u64));
            }
            "--snap" => out.snap = Some(value()),
            "--from" => out.from = Some(value()),
            "--json" => out.json = true,
            other => fail(&format!("unknown flag \"{other}\"")),
        }
    }
    out
}

/// The policy-major cartesian product of the requested rows, validated
/// through the registries.
fn scenarios_of(a: &RunArgs) -> Vec<Scenario> {
    let machine = a
        .machine
        .as_deref()
        .unwrap_or_else(|| fail("--machine is required"));
    let workload = a
        .workload
        .as_deref()
        .unwrap_or_else(|| fail("--workload is required"));
    if a.policies.is_empty() {
        fail("at least one --policy is required");
    }
    if a.governors.is_empty() {
        fail("at least one --governor is required");
    }
    let mut scenarios = Vec::new();
    for policy in &a.policies {
        for governor in &a.governors {
            let mut s = Scenario::parse(machine, policy, governor, workload)
                .unwrap_or_else(|e| fail(&e.to_string()))
                .with_seed(a.seed.unwrap_or(DEFAULT_SEED))
                .with_runs(a.runs.unwrap_or(DEFAULT_RUNS));
            if let Some(h) = a.horizon {
                s = s.with_horizon_s(h);
            }
            if let Some(f) = &a.faults {
                s = s.with_faults(f).unwrap_or_else(|e| fail(&e.to_string()));
            }
            scenarios.push(s);
        }
    }
    scenarios
}

/// The single scenario `trace` and `stats` operate on.
fn single_scenario(a: &RunArgs, subcommand: &str) -> Scenario {
    let mut scenarios = scenarios_of(a);
    if scenarios.len() != 1 {
        fail(&format!(
            "`nest-sim {subcommand}` takes exactly one --policy and one --governor"
        ));
    }
    scenarios.remove(0)
}

fn run(args: &[String]) {
    let a = parse_run_args(args);
    a.no_trace_flags("run");
    a.no_replay_flags("run");
    a.no_json_flag("run");
    let scenarios = scenarios_of(&a);
    let first = &scenarios[0];
    let name = a.out.as_deref().unwrap_or("nest_sim");

    println!("machine:  {}", first.resolve_machine().name);
    println!("workload: {}", first.workload());
    println!(
        "seed {} × {} runs, horizon {}s",
        first.seed(),
        first.runs(),
        first.horizon_s()
    );
    if !first.faults().is_empty() {
        println!("faults:   {}", first.faults());
    }
    for s in &scenarios {
        println!("  row: {}", s.identity());
    }

    let mut m = Matrix::new(name, first.seed());
    m.add_scenarios(&scenarios)
        .unwrap_or_else(|e| fail(&e.to_string()));
    let (comps, telemetry) = m.run();
    for c in &comps {
        print!("\n{}", format_table(c));
    }

    let mut artifact = Artifact::new(name, first.seed());
    artifact.push("runs_per_config", Json::usize(first.runs()));
    artifact.push(
        "scenarios",
        Json::Arr(scenarios.iter().map(|s| s.to_json()).collect()),
    );
    artifact.comparisons(&comps);
    match artifact.write() {
        Ok(path) => println!("\nartifact: {}", path.display()),
        Err(e) => fail(&format!("could not write artifact: {e}")),
    }
    match artifact.write_telemetry(&telemetry) {
        Ok(path) => println!("telemetry: {}", path.display()),
        Err(e) => fail(&format!("could not write telemetry: {e}")),
    }
    if telemetry.invariants.violations > 0 {
        eprintln!(
            "nest-sim: {} invariant violation(s) detected (see telemetry)",
            telemetry.invariants.violations
        );
        std::process::exit(1);
    }
    if !telemetry.all_cells_ok() {
        for f in &telemetry.failures {
            eprintln!("nest-sim: cell failed: {}: {}", f.cell, f.message);
        }
        std::process::exit(1);
    }
}

fn id(args: &[String]) {
    let a = parse_run_args(args);
    a.no_trace_flags("id");
    a.no_replay_flags("id");
    a.no_json_flag("id");
    for s in scenarios_of(&a) {
        println!("{}", s.identity());
    }
}

/// Writes the deterministic single-run replay artifact. The pause point
/// is deliberately *not* recorded: the paper's determinism contract says
/// run-to-end equals snapshot-and-continue byte-for-byte, so the
/// artifact must not depend on where (or whether) the run was paused —
/// CI diffs these files across pause points to enforce exactly that.
fn write_replay_artifact(name: &str, scenario: &Scenario, result: &nest_core::RunResult) {
    let mut artifact = Artifact::new(name, scenario.seed());
    artifact.push("scenario", scenario.to_json());
    artifact.push(
        "summary",
        nest_harness::cache::summary_to_json(&result.summarize()),
    );
    match artifact.write() {
        Ok(path) => println!("artifact: {}", path.display()),
        Err(e) => fail(&format!("could not write artifact: {e}")),
    }
}

/// `replay --at T`: run the scenario to the pause point, snapshot it,
/// then continue to completion.
fn replay_pause(a: &RunArgs, at: Time) {
    let s = single_scenario(a, "replay");
    let name = a.out.as_deref().unwrap_or("replay");
    let snap_path = a.snap.clone().unwrap_or_else(|| {
        nest_harness::results_dir()
            .join(format!("{name}.snap"))
            .display()
            .to_string()
    });
    println!("scenario: {}", s.identity());
    let workload = s.build_workload();
    match nest_core::run_until(&s.sim_config(), workload.as_ref(), at) {
        nest_core::Progress::Done(r) => {
            eprintln!(
                "nest-sim: run finished at {:.3}s, before the {:.3}s pause point; \
                 no snapshot written",
                r.time_s,
                at.as_secs_f64()
            );
            write_replay_artifact(name, &s, &r);
        }
        nest_core::Progress::Paused(p) => {
            let text = p
                .snapshot(&s.identity(), s.to_json())
                .unwrap_or_else(|e| fail(&e.to_string()));
            if let Some(dir) = std::path::Path::new(&snap_path).parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            if let Err(e) = std::fs::write(&snap_path, &text) {
                fail(&format!("could not write {snap_path}: {e}"));
            }
            println!(
                "snapshot: {snap_path} ({} events dispatched by {:.3}s)",
                p.events_dispatched(),
                p.now().as_secs_f64()
            );
            let r = p.resume();
            println!("run completed in {:.3}s simulated", r.time_s);
            write_replay_artifact(name, &s, &r);
        }
    }
}

/// `replay --from FILE`: restore a snapshot and continue, optionally
/// branching the future with a different fault plan or policy parameters.
fn replay_restore(a: &RunArgs, path: &str) {
    if a.machine.is_some()
        || a.workload.is_some()
        || !a.governors.is_empty()
        || a.seed.is_some()
        || a.horizon.is_some()
        || a.snap.is_some()
    {
        fail(
            "--from restores the snapshot's own scenario; \
             only --faults and --policy may override it (branching)",
        );
    }
    if a.policies.len() > 1 {
        fail("`replay --from` takes at most one --policy override");
    }
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("could not read {path}: {e}")));
    let (header, scenario_json) =
        nest_core::read_header(&text).unwrap_or_else(|e| fail(&e.to_string()));
    let base = Scenario::from_json(&scenario_json)
        .unwrap_or_else(|e| fail(&format!("snapshot's embedded scenario: {e}")));

    // Branch overrides are re-validated through the registries, exactly
    // like fresh flags. The *identity check* below still uses the base
    // scenario: the snapshot prefix was simulated under it, and the
    // engine applies the branched future from the pause point onward.
    let mut branched = base.clone();
    if let Some(policy) = a.policies.first() {
        branched = Scenario::parse(base.machine(), policy, base.governor(), base.workload())
            .unwrap_or_else(|e| fail(&e.to_string()))
            .with_seed(base.seed())
            .with_runs(base.runs())
            .with_horizon_s(base.horizon_s())
            .with_faults(base.faults())
            .unwrap_or_else(|e| fail(&e.to_string()));
    }
    if let Some(faults) = &a.faults {
        branched = branched
            .with_faults(faults)
            .unwrap_or_else(|e| fail(&e.to_string()));
    }
    let branchinfo = if branched == base {
        String::new()
    } else {
        format!(
            " (branched: policy={}, faults={:?})",
            branched.policy(),
            branched.faults()
        )
    };

    println!("scenario: {}{branchinfo}", base.identity());
    let workload = base.build_workload();
    let paused = nest_core::restore(
        &branched.sim_config(),
        workload.as_ref(),
        &text,
        &base.identity(),
    )
    .unwrap_or_else(|e| fail(&e.to_string()));
    println!(
        "restored at {:.3}s ({} events skipped)",
        paused.now().as_secs_f64(),
        header.events
    );
    let r = paused.resume();
    println!("run completed in {:.3}s simulated", r.time_s);
    let name = a.out.as_deref().unwrap_or("replay");
    // An unbranched continue writes the base scenario (byte-identical to
    // the `--at` artifact); a branched one records what actually ran.
    write_replay_artifact(name, &branched, &r);
}

fn replay(args: &[String]) {
    let a = parse_run_args(args);
    a.no_trace_flags("replay");
    a.no_json_flag("replay");
    if a.runs.is_some() {
        fail("--runs applies to `run` and `stats`; `replay` is a single-run surface");
    }
    match (&a.from, a.at) {
        (Some(_), Some(_)) => fail("--from and --at are mutually exclusive"),
        (None, None) => fail(
            "`replay` needs either --at <secs> (pause a scenario and snapshot) \
             or --from <file> (restore a snapshot and continue)",
        ),
        (None, Some(at)) => replay_pause(&a, at),
        (Some(path), None) => replay_restore(&a, &path.clone()),
    }
}

fn trace(args: &[String]) {
    let a = parse_run_args(args);
    a.no_replay_flags("trace");
    a.no_json_flag("trace");
    if a.runs.is_some() {
        fail("--runs applies to `run` and `stats`; `trace` captures a single run");
    }
    let s = single_scenario(&a, "trace");
    let out_path = a.out.as_deref().unwrap_or("trace.json");

    let capacity = a.capacity.unwrap_or(TraceCollector::DEFAULT_CAPACITY);
    let (mut collector, log) = TraceCollector::new(capacity);
    if let Some((lo, hi)) = a.window {
        collector = collector.with_window(lo, hi);
    }
    if let Some(classes) = &a.events {
        collector = collector.with_classes(classes);
    }

    println!("scenario: {}", s.identity());
    let workload = s.build_workload();
    let result = run_once_with(
        &s.sim_config(),
        workload.as_ref(),
        vec![Box::new(collector)],
    );

    let log = log.borrow();
    // Per-core spans/counters from the trace ring, plus the run's
    // machine-level time series as extra counter tracks (power,
    // utilization, frequency, nest occupancy, runnable depth).
    let json = chrome_trace_with_timeseries(&log, &result.timeseries);
    let mut text = json.to_pretty();
    text.push('\n');
    // Self-check before writing: the exporter's output must parse with
    // the same codec the artifacts use (CI relies on this).
    let back = nest_simcore::json::parse(&text)
        .unwrap_or_else(|e| fail(&format!("exported trace does not re-parse: {e}")));
    let n_records = back
        .get("traceEvents")
        .and_then(|j| j.as_arr())
        .map_or(0, |a| a.len());
    if let Err(e) = std::fs::write(out_path, &text) {
        fail(&format!("could not write {out_path}: {e}"));
    }

    println!(
        "captured {} events over {:.3}s simulated ({} evicted by the ring)",
        log.events.len(),
        log.duration.as_secs_f64(),
        log.dropped
    );
    println!("run completed in {:.3}s simulated", result.time_s);
    println!("trace: {out_path} ({n_records} trace records; open in https://ui.perfetto.dev)");
}

/// Formats a nanosecond quantity with a readable unit.
fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn fmt_opt_pct(x: Option<f64>) -> String {
    x.map_or_else(|| "n/a".to_string(), |v| format!("{:.2}%", v * 100.0))
}

/// Renders one scenario's aggregated [`DecisionMetrics`] as a table.
fn stats_report(s: &Scenario, m: &DecisionMetrics) -> String {
    let mut out = String::new();
    let mut line = |s: String| {
        out.push_str(&s);
        out.push('\n');
    };

    line(format!("scenario: {}", s.identity()));
    line(format!("{} run(s), {:.3}s simulated", m.runs, m.sim_secs()));

    line(String::new());
    line(format!("{:<28}{:>12}{:>9}", "placements", "count", "share"));
    let total = m.total_placements();
    for path in PlacementPath::ALL {
        let count = m.placement_count(path);
        if count == 0 {
            continue;
        }
        let share = count as f64 / total.max(1) as f64 * 100.0;
        line(format!(
            "  {:<26}{count:>12}{share:>8.1}%",
            format!("{path:?}")
        ));
    }
    line(format!("  {:<26}{total:>12}{:>9}", "total", "100.0%"));
    line(format!(
        "nest fallback rate: {}",
        fmt_opt_pct(m.nest_fallback_rate())
    ));
    line(format!(
        "migrations: {} ({})",
        m.migrations,
        m.migrations_per_sec()
            .map_or_else(|| "n/a".to_string(), |r| format!("{r:.1}/s"))
    ));
    let rate = |r: Option<f64>| r.map_or_else(|| "n/a".to_string(), |r| format!("{r:.1}/s"));
    line(format!(
        "  cross-CCX: {} ({}), cross-socket: {} ({})",
        m.cross_ccx_migrations,
        rate(m.cross_ccx_migrations_per_sec()),
        m.cross_socket_migrations,
        rate(m.cross_socket_migrations_per_sec())
    ));

    line(String::new());
    line(format!(
        "wakeup→run latency: {} samples, mean {}",
        m.latency_samples,
        m.mean_latency_ns()
            .map_or_else(|| "n/a".to_string(), fmt_ns)
    ));
    let peak = m.latency_counts.iter().copied().max().unwrap_or(0);
    for (i, &count) in m.latency_counts.iter().enumerate() {
        if count == 0 {
            continue;
        }
        let label = match nest_obs::LATENCY_BUCKET_EDGES_NS.get(i) {
            Some(&edge) => format!("≤ {}", fmt_ns(edge as f64)),
            None => format!(
                "> {}",
                fmt_ns(*nest_obs::LATENCY_BUCKET_EDGES_NS.last().unwrap() as f64)
            ),
        };
        let bar = "#".repeat((count * 40).div_ceil(peak.max(1)) as usize);
        line(format!("  {label:<12}{count:>10}  {bar}"));
    }

    line(String::new());
    let busiest = (0..m.spin_ns.len()).max_by_key(|&i| m.spin_ns[i]);
    line(format!(
        "idle spinning: total {}, duty cycle {}{}",
        fmt_ns(m.spin_total_ns() as f64),
        fmt_opt_pct(m.spin_duty_cycle()),
        busiest
            .filter(|&i| m.spin_ns[i] > 0)
            .map_or_else(String::new, |i| format!(
                " (busiest core {i}: {})",
                fmt_opt_pct(m.spin_duty_of(i))
            ))
    ));
    let mean = |v: Option<f64>| v.map_or_else(|| "n/a".to_string(), |x| format!("{x:.2}"));
    line(format!(
        "nest occupancy: primary mean {} (max {}), reserve mean {} (max {})",
        mean(m.mean_nest_primary()),
        m.nest_primary_max,
        mean(m.mean_nest_reserve()),
        m.nest_reserve_max
    ));
    line(format!(
        "nest transitions: {} ({} compactions)",
        m.nest_transitions, m.nest_compactions
    ));
    if m.nest_ccx_primary_ns.iter().any(|&ns| ns > 0) {
        let per_ccx: Vec<String> = (0..m.nest_ccx_primary_ns.len())
            .map(|i| format!("x{i} {}", mean(m.mean_nest_primary_in_ccx(i))))
            .collect();
        line(format!("nest occupancy by CCX: {}", per_ccx.join(", ")));
    }
    out
}

/// Renders the per-request latency-phase breakdown; empty when the
/// scenario carries no `serve:` stream.
fn phase_report(m: &PhaseMetrics) -> String {
    if m.requests == 0 {
        return String::new();
    }
    let mut out = String::new();
    let mut line = |s: String| {
        out.push_str(&s);
        out.push('\n');
    };
    line(String::new());
    line(format!(
        "latency attribution: {} requests, {} identity violation(s)",
        m.requests, m.identity_violations
    ));
    let q = |h: &nest_metrics::TailHistogram, p: f64| {
        h.quantile(p)
            .map_or_else(|| "n/a".to_string(), |ns| fmt_ns(ns as f64))
    };
    line(format!(
        "{:<18}{:>12}{:>12}{:>12}{:>9}",
        "phase", "p50", "p99", "p999", "share"
    ));
    for (i, name) in PHASE_NAMES.iter().enumerate() {
        let h = &m.phases[i];
        line(format!(
            "  {:<16}{:>12}{:>12}{:>12}{:>9}",
            name,
            q(h, 0.50),
            q(h, 0.99),
            q(h, 0.999),
            fmt_opt_pct(m.share(i))
        ));
    }
    line(format!(
        "  {:<16}{:>12}{:>12}{:>12}{:>9}",
        "total",
        q(&m.total, 0.50),
        q(&m.total, 0.99),
        q(&m.total, 0.999),
        "100.0%"
    ));
    out
}

/// Renders the serving tail-latency lens; empty when the scenario
/// carries no `serve:` stream.
fn serve_report(m: &ServeMetrics) -> String {
    if m.offered == 0 {
        return String::new();
    }
    let mut out = String::new();
    let mut line = |s: String| {
        out.push_str(&s);
        out.push('\n');
    };
    let or_na = |v: Option<String>| v.unwrap_or_else(|| "n/a".to_string());
    line(String::new());
    line(format!(
        "serving: {} requests offered ({:.1}/s), {} completed, {} within SLO ({})",
        m.offered,
        m.offered_per_s().unwrap_or(0.0),
        m.completed,
        m.within_slo,
        fmt_opt_pct(m.slo_fraction())
    ));
    let q = |p: f64| or_na(m.hist.quantile(p).map(|ns| fmt_ns(ns as f64)));
    line(format!(
        "request latency: p50 {}, p99 {}, p999 {} (mean {}, SLO {})",
        q(0.50),
        q(0.99),
        q(0.999),
        or_na(m.hist.mean().map(fmt_ns)),
        fmt_ns(m.slo_ns as f64)
    ));
    line(format!(
        "SLO goodput: {}, energy per request: {}",
        or_na(m.goodput_per_s().map(|g| format!("{g:.1}/s"))),
        or_na(
            m.energy_per_request_j()
                .map(|e| format!("{:.3} mJ", e * 1e3))
        )
    ));
    out
}

/// Renders the multi-host fleet lens; empty unless the scenario ran
/// under a `fleet:` front-end.
fn fleet_report(m: &FleetMetrics) -> String {
    if m.runs == 0 {
        return String::new();
    }
    let mut out = String::new();
    let mut line = |s: String| {
        out.push_str(&s);
        out.push('\n');
    };
    let or_na = |v: Option<String>| v.unwrap_or_else(|| "n/a".to_string());
    line(String::new());
    line(format!(
        "fleet: {} host(s), {} offered, {} completed, {} failed, {} shed",
        m.hosts, m.offered, m.completed, m.failed, m.shed
    ));
    line(format!(
        "robustness: {} timeout(s), {} retr{}, {} hedge(s) ({} won), {} late completion(s)",
        m.timeouts,
        m.retries,
        if m.retries == 1 { "y" } else { "ies" },
        m.hedges,
        m.hedge_wins,
        m.late_completions
    ));
    let q = |p: f64| or_na(m.hist.quantile(p).map(|ns| fmt_ns(ns as f64)));
    line(format!(
        "fleet latency: p50 {}, p99 {}, p999 {} (mean {})",
        q(0.50),
        q(0.99),
        q(0.999),
        or_na(m.hist.mean().map(fmt_ns))
    ));
    line(format!(
        "goodput: {}, retries: {}, shed rate: {}",
        or_na(m.goodput_per_s().map(|g| format!("{g:.1}/s"))),
        or_na(m.retries_per_s().map(|r| format!("{r:.2}/s"))),
        fmt_opt_pct(m.shed_rate())
    ));
    if m.crashes > 0 {
        line(format!(
            "failover: {} crash(es), {} restart(s), {} request(s) lost in flight, time-to-warm {}",
            m.crashes,
            m.restarts,
            m.in_flight_lost,
            or_na(m.time_to_warm_ns().map(fmt_ns))
        ));
    }
    out
}

fn stats(args: &[String]) {
    let a = parse_run_args(args);
    a.no_trace_flags("stats");
    a.no_replay_flags("stats");
    let s = single_scenario(&a, "stats");
    let runs = a.runs.unwrap_or(1);

    let workload = s.build_workload();
    let results = run_many(&s.sim_config(), workload.as_ref(), runs);
    let mut merged = DecisionMetrics::default();
    let mut serve = ServeMetrics::default();
    let mut phases = PhaseMetrics::default();
    let mut fleet = FleetMetrics::default();
    for r in &results {
        merged.merge(&r.decision);
        serve.merge(&r.serve);
        phases.merge(&r.phases);
        if let Some(f) = &r.fleet {
            fleet.merge(&f.metrics);
        }
    }
    if a.json {
        let mut fields = vec![
            ("scenario", s.to_json()),
            ("runs", Json::usize(runs)),
            ("decision_metrics", merged.to_json()),
        ];
        if serve.runs > 0 {
            fields.push(("serve_metrics", serve.to_json()));
        }
        if phases.runs > 0 {
            fields.push(("phase_metrics", phases.to_json()));
        }
        if fleet.runs > 0 {
            fields.push(("fleet_metrics", fleet.to_json()));
        }
        println!("{}", obj(fields).to_pretty());
        return;
    }
    print!("{}", stats_report(&s, &merged));
    print!("{}", serve_report(&serve));
    print!("{}", phase_report(&phases));
    print!("{}", fleet_report(&fleet));
}

/// Which direction of change counts as a regression for one metric.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Worse {
    /// An increase past the threshold is a regression (latencies).
    Higher,
    /// A decrease past the threshold is a regression (goodput).
    Lower,
    /// Informational only; never gates.
    Info,
}

/// The telemetry metrics `diff` compares, as dotted paths into the
/// `.telemetry.json` document (`stats --json` documents share the same
/// block names, so those diff too).
fn diff_metrics() -> Vec<(String, Worse)> {
    let mut m: Vec<(String, Worse)> = [
        ("decision_metrics.wakeup_latency.mean_ns", Worse::Higher),
        ("decision_metrics.migrations", Worse::Info),
        ("decision_metrics.cross_ccx_migrations", Worse::Info),
        ("decision_metrics.cross_socket_migrations", Worse::Info),
        ("decision_metrics.spin.total_ns", Worse::Info),
        ("decision_metrics.nest.mean_primary", Worse::Info),
        ("decision_metrics.nest.transitions", Worse::Info),
        ("serve_metrics.latency.p50_ns", Worse::Higher),
        ("serve_metrics.latency.p99_ns", Worse::Higher),
        ("serve_metrics.latency.p999_ns", Worse::Higher),
        ("serve_metrics.latency.mean_ns", Worse::Higher),
        ("serve_metrics.slo_fraction", Worse::Lower),
        ("serve_metrics.goodput_per_s", Worse::Lower),
        ("serve_metrics.energy_per_request_j", Worse::Higher),
        ("phase_metrics.total.p99_ns", Worse::Higher),
        ("phase_metrics.total.p999_ns", Worse::Higher),
        ("phase_metrics.identity_violations", Worse::Higher),
        ("fleet_metrics.latency.p99_ns", Worse::Higher),
        ("fleet_metrics.latency.p999_ns", Worse::Higher),
        ("fleet_metrics.goodput_per_s", Worse::Lower),
        ("fleet_metrics.retries_per_s", Worse::Higher),
        ("fleet_metrics.shed_rate", Worse::Higher),
        ("fleet_metrics.timeouts", Worse::Higher),
        ("fleet_metrics.hedges", Worse::Info),
        ("fleet_metrics.time_to_warm_ns", Worse::Info),
    ]
    .iter()
    .map(|&(p, w)| (p.to_string(), w))
    .collect();
    for name in PHASE_NAMES {
        m.push((format!("phase_metrics.phases.{name}.p99_ns"), Worse::Higher));
        m.push((
            format!("phase_metrics.phases.{name}.mean_ns"),
            Worse::Higher,
        ));
        m.push((format!("phase_metrics.phases.{name}.share"), Worse::Info));
    }
    m
}

/// Walks a dotted path into a JSON document, returning the numeric leaf.
fn lookup_num(doc: &Json, path: &str) -> Option<f64> {
    let mut cur = doc;
    for seg in path.split('.') {
        cur = cur.get(seg)?;
    }
    cur.as_f64()
}

/// One compared metric: both values present, with the relative delta.
struct DiffRow {
    metric: String,
    a: f64,
    b: f64,
    delta_pct: f64,
    regression: bool,
}

/// Relative change from `a` to `b` in percent. A zero baseline with a
/// nonzero comparison is an unbounded change, pinned at 100%.
fn delta_pct(a: f64, b: f64) -> f64 {
    if a == b {
        0.0
    } else if a == 0.0 {
        100.0 * (b - a).signum()
    } else {
        (b - a) / a.abs() * 100.0
    }
}

fn diff(args: &[String]) {
    let mut files: Vec<String> = Vec::new();
    let mut threshold = 5.0_f64;
    let mut json = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let (flag, inline) = match arg.split_once('=') {
            Some((f, v)) => (f, Some(v.to_string())),
            None => (arg.as_str(), None),
        };
        match flag {
            "--threshold" => {
                let v = inline.clone().unwrap_or_else(|| {
                    it.next()
                        .unwrap_or_else(|| fail("--threshold needs a value"))
                        .clone()
                });
                threshold = v
                    .parse()
                    .unwrap_or_else(|_| fail("--threshold needs a percentage (e.g. 5)"));
                if !(threshold >= 0.0 && threshold.is_finite()) {
                    fail("--threshold must be a non-negative percentage");
                }
            }
            "--json" => json = true,
            f if f.starts_with("--") => fail(&format!("unknown flag \"{f}\"")),
            _ => files.push(arg.clone()),
        }
    }
    let [a_path, b_path] = files.as_slice() else {
        fail("`nest-sim diff` takes exactly two telemetry files (A B)");
    };
    let read = |path: &str| -> Json {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(&format!("could not read {path}: {e}")));
        nest_simcore::json::parse(&text)
            .unwrap_or_else(|e| fail(&format!("{path} is not valid JSON: {e}")))
    };
    let (doc_a, doc_b) = (read(a_path), read(b_path));

    let mut rows: Vec<DiffRow> = Vec::new();
    let mut skipped: Vec<String> = Vec::new();
    for (metric, worse) in diff_metrics() {
        let (va, vb) = (lookup_num(&doc_a, &metric), lookup_num(&doc_b, &metric));
        match (va, vb) {
            (Some(a), Some(b)) => {
                let d = delta_pct(a, b);
                let regression = match worse {
                    Worse::Higher => d > threshold,
                    Worse::Lower => d < -threshold,
                    Worse::Info => false,
                };
                rows.push(DiffRow {
                    metric,
                    a,
                    b,
                    delta_pct: d,
                    regression,
                });
            }
            (None, None) => {}
            _ => skipped.push(metric),
        }
    }
    if rows.is_empty() {
        fail("the two files share no comparable metrics (are they telemetry files?)");
    }
    let regressions = rows.iter().filter(|r| r.regression).count();

    if json {
        let doc = obj(vec![
            ("a", Json::str(a_path)),
            ("b", Json::str(b_path)),
            ("threshold_pct", Json::f64(threshold)),
            ("regressions", Json::usize(regressions)),
            (
                "metrics",
                Json::Arr(
                    rows.iter()
                        .map(|r| {
                            obj(vec![
                                ("metric", Json::str(&r.metric)),
                                ("a", Json::f64(r.a)),
                                ("b", Json::f64(r.b)),
                                ("delta_pct", Json::f64(r.delta_pct)),
                                ("regression", Json::Bool(r.regression)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "skipped",
                Json::Arr(skipped.iter().map(|s| Json::str(s)).collect()),
            ),
        ]);
        println!("{}", doc.to_pretty());
    } else {
        println!("diff: A = {a_path}");
        println!("      B = {b_path}");
        println!("{:<44}{:>14}{:>14}{:>10}", "metric", "A", "B", "delta");
        let fmt_v = |v: f64| {
            if v == v.trunc() && v.abs() < 1e15 {
                format!("{v:.0}")
            } else {
                format!("{v:.4}")
            }
        };
        for r in &rows {
            println!(
                "  {:<42}{:>14}{:>14}{:>+9.1}%{}",
                r.metric,
                fmt_v(r.a),
                fmt_v(r.b),
                r.delta_pct,
                if r.regression { "  REGRESSION" } else { "" }
            );
        }
        for s in &skipped {
            println!("  {s:<42} (present in only one file; skipped)");
        }
        println!(
            "{regressions} regression(s) past the ±{threshold}% threshold over {} metrics",
            rows.len()
        );
    }
    if regressions > 0 {
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => list(args.get(1).map(String::as_str)),
        Some("id") => id(&args[1..]),
        Some("run") => run(&args[1..]),
        Some("trace") => trace(&args[1..]),
        Some("stats") => stats(&args[1..]),
        Some("diff") => diff(&args[1..]),
        Some("replay") => replay(&args[1..]),
        Some("--help") | Some("-h") | Some("help") | None => println!("{USAGE}"),
        Some(other) => fail(&format!(
            "unknown subcommand \"{other}\"; valid: list, id, run, trace, stats, diff, replay"
        )),
    }
}
