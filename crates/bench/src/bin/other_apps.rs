//! §5.6 "Other applications": hackbench, schbench, the server tests,
//! multiple concurrent applications, and the mono-socket machines.
//!
//! The paper's findings: hackbench slows down substantially under Nest
//! (placement-heavy, adversarial); schbench tail latency shows no clear
//! winner; Nest helps leveldb (+25%) and redis (+7%) but lags CFS on
//! apache as concurrency rises while matching it on nginx; running two
//! applications concurrently keeps Nest's individual advantages; the
//! mono-socket 5220 behaves like the big Intels for configure and the
//! AMD 4650G favours Nest broadly.

use nest_bench::{
    banner,
    quick,
    runs,
    seed,
};
use nest_core::experiment::{
    compare_schedulers,
    format_table,
    SchedulerSetup,
};
use nest_core::{
    run_many,
    Governor,
    PolicyKind,
    SimConfig,
};
use nest_topology::presets;
use nest_workloads::{
    configure::Configure,
    hackbench::{
        Hackbench,
        HackbenchSpec,
    },
    phoronix::Phoronix,
    schbench::{
        Schbench,
        SchbenchSpec,
    },
    server::{
        Server,
        ServerSpec,
    },
};

use nest_simcore::{
    SimRng,
    SimSetup,
    TaskSpec,
};

/// Two applications launched together (multi-application scenario).
struct Combined {
    a: Box<dyn nest_workloads::Workload>,
    b: Box<dyn nest_workloads::Workload>,
}

impl nest_workloads::Workload for Combined {
    fn name(&self) -> String {
        format!("{} + {}", self.a.name(), self.b.name())
    }

    fn build(&self, setup: &mut dyn SimSetup, rng: &mut SimRng) -> Vec<TaskSpec> {
        let mut tasks = self.a.build(setup, rng);
        tasks.extend(self.b.build(setup, rng));
        tasks
    }
}

fn main() {
    banner("§5.6", "hackbench, schbench, servers, multi-app, mono-socket");
    let two = vec![
        SchedulerSetup::new(PolicyKind::Cfs, Governor::Schedutil),
        SchedulerSetup::new(PolicyKind::Nest, Governor::Schedutil),
    ];
    let m5218 = presets::xeon_5218();

    println!("\n# hackbench (message-churn stress; paper: Nest much slower)");
    let hb = Hackbench::new(HackbenchSpec::default());
    let c = compare_schedulers(&m5218, &hb, &two, runs().min(2), seed());
    print!("{}", format_table(&c));

    println!("\n# schbench p99.9 wakeup latency (paper: no clear winner)");
    for (mt, wt) in [(4u32, 4u32), (8, 8), (16, 16)] {
        let sb = Schbench::new(SchbenchSpec {
            message_threads: mt,
            workers_per_message: wt,
            requests_per_worker: if quick() { 20 } else { 50 },
            think_ms: 3.0,
        });
        print!("m{mt} w{wt}: ");
        for s in &two {
            let cfg = SimConfig::new(m5218.clone())
                .policy(s.policy.clone())
                .governor(s.governor)
                .seed(seed());
            let rs = run_many(&cfg, &sb, runs().min(2));
            let p999: Vec<f64> = rs
                .iter()
                .filter_map(|r| r.latency.p999())
                .map(|v| v as f64 / 1e3)
                .collect();
            let mean = p999.iter().sum::<f64>() / p999.len().max(1) as f64;
            print!(" {}: p99.9 {:8.1}µs ", s.label(), mean);
        }
        println!();
    }

    println!("\n# server tests on the 2-socket 6130 (paper machine for §5.6)");
    let m6130 = presets::xeon_6130(2);
    let servers: Vec<ServerSpec> = vec![
        ServerSpec::nginx(50),
        ServerSpec::nginx(200),
        ServerSpec::apache(50),
        ServerSpec::apache(200),
        ServerSpec::leveldb(),
        ServerSpec::redis(),
    ];
    // Completion time is arrival-limited for these open-loop tests, so
    // the scheduler-sensitive metric is the request (wakeup) latency.
    for spec in servers {
        let w = Server::new(spec);
        let c = compare_schedulers(&m6130, &w, &two, runs().min(2), seed());
        let p99 = |rows: &nest_core::experiment::SchedulerOutcome| {
            let vals: Vec<f64> = rows
                .runs
                .iter()
                .filter_map(|r| r.latency.p99())
                .map(|v| v as f64 / 1e3)
                .collect();
            vals.iter().sum::<f64>() / vals.len().max(1) as f64
        };
        println!(
            "{:<12} CFS {:.3}s p99 {:8.1}µs | Nest {:+.1}% p99 {:8.1}µs",
            c.workload,
            c.rows[0].time.mean,
            p99(&c.rows[0]),
            c.rows[1].speedup_pct.as_ref().unwrap().mean,
            p99(&c.rows[1]),
        );
    }

    println!("\n# multiple concurrent applications (zstd 7 + libgav1 4)");
    let combo = Combined {
        a: Box::new(Phoronix::named("zstd compression 7")),
        b: Box::new(Phoronix::named("libgav1 4")),
    };
    let c = compare_schedulers(&m6130, &combo, &two, runs().min(2), seed());
    print!("{}", format_table(&c));

    println!("\n# mono-socket machines (configure gdb + llvm_ninja)");
    for machine in [presets::xeon_5220(), presets::amd_4650g()] {
        for bench in ["gdb", "llvm_ninja"] {
            let c = compare_schedulers(
                &machine,
                &Configure::named(bench),
                &SchedulerSetup::paper_set(),
                runs().min(2),
                seed(),
            );
            let label = |i: usize| c.rows[i].speedup_pct.as_ref().unwrap().mean;
            println!(
                "{:<22} {:<10} CFS {:.2}s | CFSperf {:+.1}% Nestsched {:+.1}% Nestperf {:+.1}%",
                machine.name,
                bench,
                c.rows[0].time.mean,
                label(1),
                label(2),
                label(3)
            );
        }
    }
}
