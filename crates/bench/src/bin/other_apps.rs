//! §5.6 "Other applications": hackbench, schbench, the server tests,
//! multiple concurrent applications, and the mono-socket machines.
//!
//! The paper's findings: hackbench slows down substantially under Nest
//! (placement-heavy, adversarial); schbench tail latency shows no clear
//! winner; Nest helps leveldb (+25%) and redis (+7%) but lags CFS on
//! apache as concurrency rises while matching it on nginx; running two
//! applications concurrently keeps Nest's individual advantages; the
//! mono-socket 5220 behaves like the big Intels for configure and the
//! AMD 4650G favours Nest broadly.

use nest_bench::{add_block, banner, emit_artifact, matrix, paper_setup_pairs, quick, runs};
use nest_core::experiment::{format_table, SchedulerOutcome};

/// Mean p99 wakeup latency over a row's runs, in microseconds.
fn mean_p99_us(row: &SchedulerOutcome) -> f64 {
    let vals: Vec<f64> = row
        .runs
        .iter()
        .filter_map(|r| r.latency.p99_ns)
        .map(|v| v as f64 / 1e3)
        .collect();
    vals.iter().sum::<f64>() / vals.len().max(1) as f64
}

fn main() {
    banner(
        "§5.6",
        "hackbench, schbench, servers, multi-app, mono-socket",
    );
    let two = [("cfs", "schedutil"), ("nest", "schedutil")];
    let short_runs = Some(runs().min(2));

    // The whole section is one matrix so every sub-experiment shares the
    // worker pool; comparisons come back in insertion order.
    let mut m = matrix("other_apps");

    add_block(&mut m, "5218", &two, "hackbench", short_runs);

    let schbench_sizes = [(4u32, 4u32), (8, 8), (16, 16)];
    for (mt, wt) in schbench_sizes {
        let requests = if quick() { 20 } else { 50 };
        add_block(
            &mut m,
            "5218",
            &two,
            &format!("schbench:mt={mt},w={wt},requests={requests}"),
            short_runs,
        );
    }

    let servers = [
        "server:nginx,c=50",
        "server:nginx,c=200",
        "server:apache,c=50",
        "server:apache,c=200",
        "server:leveldb",
        "server:redis",
    ];
    for spec in servers {
        add_block(&mut m, "6130-2", &two, spec, short_runs);
    }

    add_block(
        &mut m,
        "6130-2",
        &two,
        "phoronix:zstd compression 7+phoronix:libgav1 4",
        short_runs,
    );

    let mono_keys = ["5220", "4650g"];
    let mono_machines: Vec<_> = mono_keys
        .iter()
        .map(|k| nest_scenario::machine(k).expect("mono machines are registered"))
        .collect();
    for key in mono_keys {
        for bench in ["gdb", "llvm_ninja"] {
            add_block(
                &mut m,
                key,
                &paper_setup_pairs(),
                &format!("configure:{bench}"),
                short_runs,
            );
        }
    }

    let (comps, telemetry) = m.run();
    let mut it = comps.iter();

    println!("\n# hackbench (message-churn stress; paper: Nest much slower)");
    print!("{}", format_table(it.next().unwrap()));

    println!("\n# schbench p99.9 wakeup latency (paper: no clear winner)");
    for (mt, wt) in schbench_sizes {
        let c = it.next().unwrap();
        print!("m{mt} w{wt}: ");
        for row in &c.rows {
            let p999: Vec<f64> = row
                .runs
                .iter()
                .filter_map(|r| r.latency.p999_ns)
                .map(|v| v as f64 / 1e3)
                .collect();
            let mean = p999.iter().sum::<f64>() / p999.len().max(1) as f64;
            print!(" {}: p99.9 {:8.1}µs ", row.label, mean);
        }
        println!();
    }

    println!("\n# server tests on the 2-socket 6130 (paper machine for §5.6)");
    // Completion time is arrival-limited for these open-loop tests, so
    // the scheduler-sensitive metric is the request (wakeup) latency.
    for _ in 0..servers.len() {
        let c = it.next().unwrap();
        println!(
            "{:<12} CFS {:.3}s p99 {:8.1}µs | Nest {:+.1}% p99 {:8.1}µs",
            c.workload,
            c.rows[0].time.mean,
            mean_p99_us(&c.rows[0]),
            c.rows[1].speedup_pct.as_ref().unwrap().mean,
            mean_p99_us(&c.rows[1]),
        );
    }

    println!("\n# multiple concurrent applications (zstd 7 + libgav1 4)");
    print!("{}", format_table(it.next().unwrap()));

    println!("\n# mono-socket machines (configure gdb + llvm_ninja)");
    for machine in &mono_machines {
        for bench in ["gdb", "llvm_ninja"] {
            let c = it.next().unwrap();
            let label = |i: usize| c.rows[i].speedup_pct.as_ref().unwrap().mean;
            println!(
                "{:<22} {:<10} CFS {:.2}s | CFSperf {:+.1}% Nestsched {:+.1}% Nestperf {:+.1}%",
                machine.name,
                bench,
                c.rows[0].time.mean,
                label(1),
                label(2),
                label(3)
            );
        }
    }

    emit_artifact("other_apps", &comps, vec![], Some(&telemetry));
}
