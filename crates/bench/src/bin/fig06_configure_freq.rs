//! Figure 6: frequency-residency distribution of the configure tests per
//! scheduler and machine.
//!
//! The paper's claim: with Nest, the cores executing the configure script
//! spend nearly all busy time in the highest frequency buckets.

use nest_bench::{
    banner,
    configure_matrix,
    paper_schedulers,
};

fn main() {
    banner("Figure 6", "configure frequency distribution");
    let schedulers = paper_schedulers();
    for (machine, comps) in configure_matrix(&schedulers) {
        println!("\n### {machine}");
        for c in &comps {
            println!("\n{}:", c.workload);
            for r in &c.rows {
                // Average the residency fractions over the runs.
                let n = r.runs.len() as f64;
                let labels = r.runs[0].freq.labels();
                let mut acc = vec![0.0; labels.len()];
                for run in &r.runs {
                    for (a, f) in acc.iter_mut().zip(run.freq.fractions()) {
                        *a += f / n;
                    }
                }
                let speedup = r
                    .speedup_pct
                    .as_ref()
                    .map_or("  base".to_string(), |s| format!("{:+5.1}%", s.mean));
                let cells: Vec<String> = labels
                    .iter()
                    .zip(&acc)
                    .map(|(l, f)| format!("{l}:{:4.1}%", 100.0 * f))
                    .collect();
                println!("  {:<11} {speedup}  {}", r.label, cells.join(" "));
            }
        }
    }
    println!("\nExpected shape (paper): Nest rows concentrate residency in");
    println!("the top one or two buckets; CFS-sched spreads into mid turbo.");
}
