//! Figure 6: frequency-residency distribution of the configure tests per
//! scheduler and machine.
//!
//! The paper's claim: with Nest, the cores executing the configure script
//! spend nearly all busy time in the highest frequency buckets.

use nest_bench::{banner, configure_matrix, emit_artifact, mean_freq_fractions, paper_setup_pairs};

fn main() {
    banner("Figure 6", "configure frequency distribution");
    let (grouped, telemetry) = configure_matrix("fig06_configure_freq", &paper_setup_pairs());
    let mut all = Vec::new();
    for (machine, comps) in grouped {
        println!("\n### {machine}");
        for c in &comps {
            println!("\n{}:", c.workload);
            let (labels, fractions) = mean_freq_fractions(c);
            for (r, acc) in c.rows.iter().zip(&fractions) {
                let speedup = r
                    .speedup_pct
                    .as_ref()
                    .map_or("  base".to_string(), |s| format!("{:+5.1}%", s.mean));
                let cells: Vec<String> = labels
                    .iter()
                    .zip(acc)
                    .map(|(l, f)| format!("{l}:{:4.1}%", 100.0 * f))
                    .collect();
                println!("  {:<11} {speedup}  {}", r.label, cells.join(" "));
            }
        }
        all.extend(comps);
    }
    println!("\nExpected shape (paper): Nest rows concentrate residency in");
    println!("the top one or two buckets; CFS-sched spreads into mid turbo.");
    emit_artifact("fig06_configure_freq", &all, vec![], Some(&telemetry));
}
