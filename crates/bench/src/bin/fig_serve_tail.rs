//! fig_serve_tail: request tail latency and SLO goodput of an open-loop
//! serving stream as offered load grows, under CFS, Nest, and Smove
//! (all schedutil, where core-packing effects on frequency matter).
//!
//! The serving lens the paper motivates but never plots directly: an
//! open-loop Poisson-arrival stream of lognormal requests against a 2 ms
//! SLO, swept across offered load. Keeping the stream on warm cores
//! should show up as lower p99/p999 and higher SLO goodput at the same
//! offered rate; the energy-per-request column shows what that costs.

use nest_bench::{add_block, banner, emit_artifact, matrix, metric_row, quick};
use nest_core::experiment::{Comparison, SchedulerOutcome};
use nest_harness::json::obj;
use nest_harness::Json;

/// The `(policy, governor)` rows of every load point.
fn pairs() -> Vec<(&'static str, &'static str)> {
    vec![
        ("cfs", "schedutil"),
        ("nest", "schedutil"),
        ("smove", "schedutil"),
    ]
}

/// Offered loads swept (requests per second).
fn rates() -> Vec<u32> {
    if quick() {
        vec![200, 800]
    } else {
        vec![100, 200, 400, 800, 1600]
    }
}

/// The registry string of one load point. Quick mode shrinks the request
/// count so the smoke sweep stays fast.
fn workload_of(rate: u32) -> String {
    let requests = if quick() { ",requests=300" } else { "" };
    format!("serve:rate={rate},dist=lognorm{requests}")
}

/// Mean of the values present; `None` when no run carried one.
fn mean_of(xs: Vec<f64>) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Per-row means of one serving scalar, pulled out of the per-run
/// [`nest_metrics::ServeSummary`] projections.
fn row_mean<F>(r: &SchedulerOutcome, f: F) -> Option<f64>
where
    F: Fn(&nest_metrics::ServeSummary) -> Option<f64>,
{
    mean_of(
        r.runs
            .iter()
            .filter_map(|run| run.serve.as_ref().and_then(&f))
            .collect(),
    )
}

fn fmt_us(ns: Option<f64>) -> String {
    ns.map_or_else(|| "n/a".to_string(), |v| format!("{:.0}µs", v / 1e3))
}

fn fmt_or_na(v: Option<f64>, unit: &str) -> String {
    v.map_or_else(|| "n/a".to_string(), |x| format!("{x:.1}{unit}"))
}

/// One load point's JSON series entry: the mean serving scalars per row.
fn series_entry(rate: u32, c: &Comparison) -> Json {
    let rows: Vec<Json> = c
        .rows
        .iter()
        .map(|r| {
            obj(vec![
                ("label", Json::str(&r.label)),
                (
                    "p50_ns",
                    Json::opt_f64(row_mean(r, |s| s.p50_ns.map(|v| v as f64))),
                ),
                (
                    "p99_ns",
                    Json::opt_f64(row_mean(r, |s| s.p99_ns.map(|v| v as f64))),
                ),
                (
                    "p999_ns",
                    Json::opt_f64(row_mean(r, |s| s.p999_ns.map(|v| v as f64))),
                ),
                (
                    "goodput_per_s",
                    Json::opt_f64(row_mean(r, |s| s.goodput_per_s)),
                ),
                (
                    "slo_fraction",
                    Json::opt_f64(row_mean(r, |s| {
                        (s.offered > 0).then(|| s.within_slo as f64 / s.offered as f64)
                    })),
                ),
                (
                    "energy_per_request_j",
                    Json::opt_f64(row_mean(r, |s| s.energy_per_request_j)),
                ),
            ])
        })
        .collect();
    obj(vec![
        ("rate_per_s", Json::u64(rate as u64)),
        ("rows", Json::Arr(rows)),
    ])
}

fn main() {
    banner(
        "Serve tail",
        "open-loop serving: tail latency & SLO goodput vs offered load",
    );
    let mut m = matrix("fig_serve_tail");
    for rate in rates() {
        add_block(&mut m, "5218", &pairs(), &workload_of(rate), None);
    }
    let (comps, telemetry) = m.run();

    let mut series = Vec::new();
    for (rate, c) in rates().iter().zip(&comps) {
        println!("\n### offered load {rate}/s ({})", c.workload);
        let labels = vec![
            "p50".to_string(),
            "p99".to_string(),
            "p999".to_string(),
            "goodput".to_string(),
            "SLO%".to_string(),
            "mJ/req".to_string(),
        ];
        println!("{}", metric_row("scheduler", &labels));
        for r in &c.rows {
            let vals = vec![
                fmt_us(row_mean(r, |s| s.p50_ns.map(|v| v as f64))),
                fmt_us(row_mean(r, |s| s.p99_ns.map(|v| v as f64))),
                fmt_us(row_mean(r, |s| s.p999_ns.map(|v| v as f64))),
                fmt_or_na(row_mean(r, |s| s.goodput_per_s), "/s"),
                fmt_or_na(
                    row_mean(r, |s| {
                        (s.offered > 0).then(|| s.within_slo as f64 / s.offered as f64 * 100.0)
                    }),
                    "%",
                ),
                fmt_or_na(row_mean(r, |s| s.energy_per_request_j.map(|e| e * 1e3)), ""),
            ];
            println!("{}", metric_row(&r.label, &vals));
        }
        series.push(series_entry(*rate, c));
    }

    println!("\nExpected shape: Nest holds p99/p999 and SLO goodput closer to");
    println!("the offered load than CFS as the rate grows, at similar or");
    println!("better energy per request (warm cores run at higher frequency).");
    emit_artifact(
        "fig_serve_tail",
        &comps,
        vec![("series", Json::Arr(series))],
        Some(&telemetry),
    );
}
