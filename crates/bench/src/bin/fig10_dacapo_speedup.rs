//! Figure 10: DaCapo speedups vs CFS-schedutil across 21 applications and
//! the four machines, with the underload-per-second annotation (u:X).
//!
//! The paper's claims: results range from a ~6% degradation (fop on the
//! E7) to over 40% speedup; the highest Nest-schedutil speedups are on
//! h2, tradebeans, and graphchi-eval, which have high underload; blue
//! (single-task) applications stay near ±5%.

use nest_bench::{
    add_block, banner, emit_artifact, figure_machine_keys, figure_machines, matrix, metric_row,
    paper_schedulers, paper_setup_pairs,
};
use nest_workloads::dacapo;

fn main() {
    banner("Figure 10", "DaCapo speedup vs CFS-schedutil");
    let schedulers = paper_schedulers();
    let pairs = paper_setup_pairs();
    let machines = figure_machines();
    let specs = dacapo::all_specs();
    let mut m = matrix("fig10_dacapo_speedup");
    for key in figure_machine_keys() {
        for spec in &specs {
            add_block(&mut m, key, &pairs, &format!("dacapo:{}", spec.name), None);
        }
    }
    let (comps, telemetry) = m.run();
    for (machine, chunk) in machines.iter().zip(comps.chunks(specs.len())) {
        println!("\n### {}", machine.name);
        let mut head = vec!["base time / u:X".to_string()];
        head.extend(schedulers.iter().skip(1).map(|s| format!("{}%", s.label())));
        println!("{}", metric_row("app", &head));
        for (spec, c) in specs.iter().zip(chunk) {
            let base = &c.rows[0];
            let mut vals = vec![format!(
                "{:.1}s u:{:.1}",
                base.time.mean, base.underload_per_s
            )];
            for r in c.rows.iter().skip(1) {
                vals.push(format!("{:+.1}", r.speedup_pct.as_ref().unwrap().mean));
            }
            let marker = if spec.single_task { "*" } else { " " };
            println!("{marker}{}", metric_row(&c.workload, &vals));
        }
    }
    println!("\n(*) single/few-task applications (blue in the paper).");
    println!("Expected shape (paper): h2/tradebeans/graphchi-eval highest;");
    println!("single-task apps within ±5%; no degradation beyond ~-6%.");
    emit_artifact("fig10_dacapo_speedup", &comps, vec![], Some(&telemetry));
}
