//! Figure 5: configure-test speedups vs CFS-schedutil for CFS-perf,
//! Nest-sched, Nest-perf, and Smove-sched, per machine.
//!
//! The paper's claims: Nest speedups exceed 5% everywhere except NodeJS
//! (trivial), reaching 37% on the E7-8870 v4; CFS-performance helps
//! little on the 6130/5218 (CFS-schedutil already reaches turbo) but a
//! lot on the E7; Smove stays under 5% except ~9% on LLVM.

use nest_bench::{
    banner, configure_matrix, configure_setup_pairs, emit_artifact, metric_row, setups_of,
};

fn main() {
    banner("Figure 5", "configure speedup vs CFS-schedutil");
    let schedulers = setups_of(&configure_setup_pairs());
    let (grouped, telemetry) =
        configure_matrix("fig05_configure_speedup", &configure_setup_pairs());
    let mut all = Vec::new();
    for (machine, comps) in grouped {
        println!("\n### {machine}");
        let labels: Vec<String> = schedulers
            .iter()
            .skip(1)
            .map(|s| format!("{}%", s.label()))
            .collect();
        let mut head = vec!["base time ±%".to_string()];
        head.extend(labels);
        println!("{}", metric_row("benchmark", &head));
        for c in &comps {
            let base = &c.rows[0];
            let mut vals = vec![format!(
                "{:.2}s ±{:.0}%",
                base.time.mean,
                base.time.std_pct()
            )];
            for r in c.rows.iter().skip(1) {
                let s = r.speedup_pct.as_ref().expect("non-baseline");
                vals.push(format!("{:+.1}", s.mean));
            }
            println!("{}", metric_row(&c.workload, &vals));
        }
        all.extend(comps);
    }
    println!("\nExpected shape (paper): Nest +10..+37% except nodejs (<5%);");
    println!("CFS-perf <5% on 6130/5218 but large on the E7; Smove <10%.");
    emit_artifact("fig05_configure_speedup", &all, vec![], Some(&telemetry));
}
