//! Figure 3: underload timeline (4 ms intervals) for the first 0.3 s of
//! LLVM-ninja configuration, CFS-schedutil vs Nest-schedutil on the 5218.
//!
//! The paper's claim: CFS shows substantial underload (up to ~6 per
//! interval); with Nest it has almost disappeared.

use nest_bench::{
    banner,
    seed,
};
use nest_core::{
    run_once,
    PolicyKind,
    SimConfig,
};
use nest_topology::presets;
use nest_workloads::configure::Configure;

fn main() {
    banner("Figure 3", "underload timeline, LLVM-ninja configure (5218, schedutil)");
    let machine = presets::xeon_5218();
    for policy in [PolicyKind::Cfs, PolicyKind::Nest] {
        let cfg = SimConfig::new(machine.clone()).policy(policy.clone()).seed(seed());
        let label = policy.label();
        let r = run_once(&cfg, &Configure::named("llvm_ninja"));
        let series = r.underload.series();
        println!("\n--- {label} ---");
        println!("t(s)    underload   (first 0.3 s, 4 ms intervals)");
        let mut max_u = 0;
        for (t, u) in series.iter().take(75) {
            max_u = max_u.max(*u);
            if *u > 0 {
                println!("{t:.3}   {u:>3}  {}", "#".repeat(*u as usize));
            }
        }
        let total: u64 = series.iter().take(75).map(|(_, u)| *u as u64).sum();
        println!("intervals with underload: {} / 75, peak {}, total {}",
            series.iter().take(75).filter(|(_, u)| *u > 0).count(), max_u, total);
        println!("whole-run underload/s: {:.2}", r.underload.underload_per_second());
    }
    println!("\nExpected shape (paper): substantial CFS underload, nearly");
    println!("none under Nest.");
}
