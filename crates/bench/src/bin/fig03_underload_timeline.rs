//! Figure 3: underload timeline (4 ms intervals) for the first 0.3 s of
//! LLVM-ninja configuration, CFS-schedutil vs Nest-schedutil on the 5218.
//!
//! The paper's claim: CFS shows substantial underload (up to ~6 per
//! interval); with Nest it has almost disappeared.

use nest_bench::{banner, emit_artifact, scenario};
use nest_harness::{jobs, run_raw, Json, RawCell};

fn main() {
    banner(
        "Figure 3",
        "underload timeline, LLVM-ninja configure (5218, schedutil)",
    );
    let scenarios: Vec<_> = ["cfs", "nest"]
        .iter()
        .map(|p| scenario("5218", p, "schedutil", "configure:llvm_ninja"))
        .collect();
    let cells: Vec<RawCell> = scenarios
        .iter()
        .map(|s| {
            let spec = s.workload_spec();
            RawCell {
                cfg: s.sim_config(),
                make: Box::new(move || spec.build()),
            }
        })
        .collect();
    let (results, telemetry) = run_raw(cells, jobs());

    let mut timelines = Vec::new();
    for (s, r) in scenarios.iter().zip(&results) {
        let label = s.resolve_policy().label();
        let series = r.underload.series();
        println!("\n--- {label} ---");
        println!("t(s)    underload   (first 0.3 s, 4 ms intervals)");
        let mut max_u = 0;
        for (t, u) in series.iter().take(75) {
            max_u = max_u.max(*u);
            if *u > 0 {
                println!("{t:.3}   {u:>3}  {}", "#".repeat(*u as usize));
            }
        }
        let total: u64 = series.iter().take(75).map(|(_, u)| *u as u64).sum();
        println!(
            "intervals with underload: {} / 75, peak {}, total {}",
            series.iter().take(75).filter(|(_, u)| *u > 0).count(),
            max_u,
            total
        );
        println!(
            "whole-run underload/s: {:.2}",
            r.underload.underload_per_second()
        );
        timelines.push(Json::Obj(vec![
            ("policy".to_string(), Json::str(label)),
            (
                "intervals".to_string(),
                Json::Arr(
                    series
                        .iter()
                        .take(75)
                        .map(|(t, u)| Json::Arr(vec![Json::f64(*t), Json::u64(*u as u64)]))
                        .collect(),
                ),
            ),
            ("peak".to_string(), Json::u64(max_u as u64)),
            ("total_first_300ms".to_string(), Json::u64(total)),
            (
                "underload_per_s".to_string(),
                Json::f64(r.underload.underload_per_second()),
            ),
        ]));
    }
    println!("\nExpected shape (paper): substantial CFS underload, nearly");
    println!("none under Nest.");
    emit_artifact(
        "fig03_underload_timeline",
        &[],
        vec![("timelines", Json::Arr(timelines))],
        Some(&telemetry),
    );
}
