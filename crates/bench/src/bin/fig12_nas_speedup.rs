//! Figure 12: NAS Parallel Benchmark (class C) speedups vs CFS-schedutil
//! across the nine kernels and four machines.
//!
//! The paper's claims: on the 2-socket 6130 and 5218, CFS and Nest have
//! essentially the same performance (the nest does not get in the way of
//! highly parallel applications); the 4-socket machines show larger and
//! noisier effects, with Nest winning on the E7 thanks to its more
//! aggressive wakeup work conservation.

use nest_bench::{
    add_block, banner, emit_artifact, figure_machine_keys, figure_machines, matrix, metric_row,
    paper_schedulers, paper_setup_pairs,
};
use nest_workloads::nas;

fn main() {
    banner("Figure 12", "NAS class C speedup vs CFS-schedutil");
    let schedulers = paper_schedulers();
    let pairs = paper_setup_pairs();
    let machines = figure_machines();
    let specs = nas::all_specs();
    let mut m = matrix("fig12_nas_speedup");
    for key in figure_machine_keys() {
        for spec in &specs {
            add_block(&mut m, key, &pairs, &format!("nas:{}", spec.name), None);
        }
    }
    let (comps, telemetry) = m.run();
    for (machine, chunk) in machines.iter().zip(comps.chunks(specs.len())) {
        println!("\n### {}", machine.name);
        let mut head = vec!["base time ±%".to_string()];
        head.extend(schedulers.iter().skip(1).map(|s| format!("{}%", s.label())));
        println!("{}", metric_row("kernel", &head));
        for c in chunk {
            let base = &c.rows[0];
            let mut vals = vec![format!(
                "{:.2}s ±{:.0}%",
                base.time.mean,
                base.time.std_pct()
            )];
            for r in c.rows.iter().skip(1) {
                vals.push(format!("{:+.1}", r.speedup_pct.as_ref().unwrap().mean));
            }
            println!("{}", metric_row(&c.workload, &vals));
        }
    }
    println!("\nExpected shape (paper): ±5% parity on the 2-socket machines;");
    println!("larger, noisier wins for Nest on the 4-socket machines.");
    emit_artifact("fig12_nas_speedup", &comps, vec![], Some(&telemetry));
}
