//! Figure 11: DaCapo frequency-residency distributions per scheduler and
//! machine, annotated with the speedup vs CFS-schedutil.
//!
//! The paper's claim: the applications that speed up with Nest (h2,
//! tradebeans, graphchi-eval) achieve visibly higher frequencies with it.

use nest_bench::{
    add_block, banner, emit_artifact, figure_machine_keys, figure_machines, matrix,
    mean_freq_fractions, paper_setup_pairs,
};
use nest_workloads::dacapo;

fn main() {
    banner("Figure 11", "DaCapo frequency distribution");
    let pairs = paper_setup_pairs();
    // The full 21-app sweep is in fig10; the frequency figure focuses on
    // a representative subset to keep output readable (the paper's full
    // grid is reproduced by passing NEST_ALL=1).
    let apps: Vec<&str> = if std::env::var("NEST_ALL").is_ok_and(|v| v == "1") {
        dacapo::all_specs().iter().map(|s| s.name).collect()
    } else {
        vec![
            "h2",
            "tradebeans",
            "graphchi-eval",
            "fop",
            "lusearch",
            "sunflow",
        ]
    };
    let machines = figure_machines();
    let mut m = matrix("fig11_dacapo_freq");
    for key in figure_machine_keys() {
        for app in &apps {
            add_block(&mut m, key, &pairs, &format!("dacapo:{app}"), None);
        }
    }
    let (comps, telemetry) = m.run();
    for (machine, chunk) in machines.iter().zip(comps.chunks(apps.len())) {
        println!("\n### {}", machine.name);
        for c in chunk {
            println!("\n{}:", c.workload);
            let (labels, fractions) = mean_freq_fractions(c);
            for (r, acc) in c.rows.iter().zip(&fractions) {
                let speedup = r
                    .speedup_pct
                    .as_ref()
                    .map_or("  base".to_string(), |s| format!("{:+5.1}%", s.mean));
                let cells: Vec<String> = labels
                    .iter()
                    .zip(acc)
                    .map(|(l, f)| format!("{l}:{:4.1}%", 100.0 * f))
                    .collect();
                println!("  {:<11} {speedup}  {}", r.label, cells.join(" "));
            }
        }
    }
    println!("\nExpected shape (paper): apps with green (>5%) speedups show");
    println!("residency shifted into higher buckets under Nest.");
    emit_artifact("fig11_dacapo_freq", &comps, vec![], Some(&telemetry));
}
