//! Figure 11: DaCapo frequency-residency distributions per scheduler and
//! machine, annotated with the speedup vs CFS-schedutil.
//!
//! The paper's claim: the applications that speed up with Nest (h2,
//! tradebeans, graphchi-eval) achieve visibly higher frequencies with it.

use nest_bench::{
    banner,
    figure_machines,
    paper_schedulers,
    runs,
    seed,
};
use nest_core::experiment::compare_schedulers;
use nest_workloads::dacapo;

fn main() {
    banner("Figure 11", "DaCapo frequency distribution");
    let schedulers = paper_schedulers();
    // The full 21-app sweep is in fig10; the frequency figure focuses on
    // a representative subset to keep output readable (the paper's full
    // grid is reproduced by passing NEST_ALL=1).
    let apps: Vec<&str> = if std::env::var("NEST_ALL").map_or(false, |v| v == "1") {
        dacapo::all_specs().iter().map(|s| s.name).collect()
    } else {
        vec!["h2", "tradebeans", "graphchi-eval", "fop", "lusearch", "sunflow"]
    };
    for machine in figure_machines() {
        println!("\n### {}", machine.name);
        for app in &apps {
            let w = dacapo::Dacapo::named(app);
            let c = compare_schedulers(&machine, &w, &schedulers, runs(), seed());
            println!("\n{app}:");
            for r in &c.rows {
                let n = r.runs.len() as f64;
                let labels = r.runs[0].freq.labels();
                let mut acc = vec![0.0; labels.len()];
                for run in &r.runs {
                    for (a, f) in acc.iter_mut().zip(run.freq.fractions()) {
                        *a += f / n;
                    }
                }
                let speedup = r
                    .speedup_pct
                    .as_ref()
                    .map_or("  base".to_string(), |s| format!("{:+5.1}%", s.mean));
                let cells: Vec<String> = labels
                    .iter()
                    .zip(&acc)
                    .map(|(l, f)| format!("{l}:{:4.1}%", 100.0 * f))
                    .collect();
                println!("  {:<11} {speedup}  {}", r.label, cells.join(" "));
            }
        }
    }
    println!("\nExpected shape (paper): apps with green (>5%) speedups show");
    println!("residency shifted into higher buckets under Nest.");
}
