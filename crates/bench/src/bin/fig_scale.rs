//! `fig_scale`: engine throughput and decision quality as the machine
//! grows from 256 to 1024 cores.
//!
//! Sweeps synthetic multi-CCX machines (PR 8's `synth:` presets) crossed
//! with the three policies plus the domain-local Nest variant
//! (`nest:domain=ccx`), under schedutil, on a schbench load scaled to the
//! core count. Two outputs per cell:
//!
//! * **decision quality** (deterministic, main artifact): wakeup-latency
//!   mean, migrations/s split into cross-CCX and cross-socket rates, and
//!   the mean busiest-CCX nest occupancy — the numbers that must stay flat
//!   (or improve) as the scan structures shard by domain;
//! * **throughput** (nondeterministic, `fig_scale.perf.json` sidecar):
//!   wall seconds and simulated events/s, the scaling curve the CI
//!   regression guard compares against the committed `BENCH_pr8.json`.
//!
//! Quick mode (`NEST_QUICK=1`) restricts to the 256-core machine.

use std::time::Instant;

use nest_bench::{banner, metric_row, quick, seed};
use nest_core::{run_once, SimConfig};
use nest_harness::json::obj;
use nest_harness::{results_dir, Artifact, Json};
use nest_simcore::profile;

/// `(machine, workload)` pairs: the schbench load scales with the core
/// count so every size runs at comparable per-core pressure.
fn sweep() -> Vec<(&'static str, &'static str)> {
    let all = vec![
        (
            "synth:sockets=4,ccx=8,cores=8,numa=ring",
            "schbench:mt=16,w=15,requests=50",
        ),
        (
            "synth:sockets=4,ccx=8,cores=16,numa=ring",
            "schbench:mt=32,w=15,requests=50",
        ),
        (
            "synth:sockets=8,ccx=8,cores=16,numa=ring",
            "schbench:mt=64,w=15,requests=50",
        ),
    ];
    if quick() {
        all[..1].to_vec()
    } else {
        all
    }
}

const POLICIES: [&str; 4] = ["cfs", "nest", "smove", "nest:domain=ccx"];

struct Cell {
    machine: String,
    n_cores: usize,
    policy: String,
    workload: String,
    // Deterministic decision-quality numbers.
    sim_s: f64,
    latency_mean_us: Option<f64>,
    migrations_per_sec: Option<f64>,
    cross_ccx_per_sec: Option<f64>,
    cross_socket_per_sec: Option<f64>,
    busiest_ccx_nest: f64,
    // Nondeterministic throughput numbers.
    wall_s: f64,
    events_total: u64,
    events_per_sec: f64,
}

fn run_cell(machine_str: &str, policy_str: &str, workload_str: &str) -> Cell {
    let machine = nest_scenario::machine(machine_str).expect("figure machines parse");
    let policy = nest_scenario::policy(policy_str).expect("figure policies are registered");
    let governor = nest_scenario::governor("schedutil").expect("schedutil is registered");
    let workload = nest_scenario::parse_workload(workload_str).expect("figure workloads parse");
    let n_cores = machine.n_cores();
    let cfg = SimConfig::new(machine)
        .policy(policy)
        .governor(governor)
        .seed(seed());

    let events_before = profile::events_total();
    let started = Instant::now();
    let r = run_once(&cfg, &*workload.build());
    let wall_s = started.elapsed().as_secs_f64();
    let events_total = profile::events_total() - events_before;

    let d = &r.decision;
    let busiest_ccx_nest = (0..d.nest_ccx_primary_ns.len())
        .filter_map(|cx| d.mean_nest_primary_in_ccx(cx))
        .fold(0.0, f64::max);
    Cell {
        machine: machine_str.to_string(),
        n_cores,
        policy: policy_str.to_string(),
        workload: workload_str.to_string(),
        sim_s: r.time_s,
        latency_mean_us: d.mean_latency_ns().map(|ns| ns / 1e3),
        migrations_per_sec: d.migrations_per_sec(),
        cross_ccx_per_sec: d.cross_ccx_migrations_per_sec(),
        cross_socket_per_sec: d.cross_socket_migrations_per_sec(),
        busiest_ccx_nest,
        wall_s,
        events_total,
        events_per_sec: if wall_s > 0.0 {
            events_total as f64 / wall_s
        } else {
            0.0
        },
    }
}

fn fmt_opt(v: Option<f64>) -> String {
    v.map_or("-".to_string(), |x| format!("{x:.1}"))
}

fn main() {
    banner(
        "Figure scale",
        "throughput and decision quality, 256-1024 synthetic cores",
    );
    let mut cells = Vec::new();
    for (machine, workload) in sweep() {
        println!("\n### {machine} ({workload})");
        println!(
            "{}",
            metric_row(
                "policy",
                &[
                    "events/s".to_string(),
                    "wall s".to_string(),
                    "lat us".to_string(),
                    "migr/s".to_string(),
                    "xccx/s".to_string(),
                    "xsock/s".to_string(),
                    "ccx nest".to_string(),
                ],
            )
        );
        for policy in POLICIES {
            let c = run_cell(machine, policy, workload);
            println!(
                "{}",
                metric_row(
                    policy,
                    &[
                        format!("{:.0}", c.events_per_sec),
                        format!("{:.2}", c.wall_s),
                        fmt_opt(c.latency_mean_us),
                        fmt_opt(c.migrations_per_sec),
                        fmt_opt(c.cross_ccx_per_sec),
                        fmt_opt(c.cross_socket_per_sec),
                        format!("{:.2}", c.busiest_ccx_nest),
                    ],
                )
            );
            cells.push(c);
        }
    }
    println!("\nExpected shape: events/s degrades sublinearly with core count");
    println!("(no O(n_cores) decision paths), and nest:domain=ccx keeps");
    println!("cross-CCX migration rates below machine-global nest.");

    // Deterministic decision-quality artifact.
    let mut a = Artifact::new("fig_scale", seed());
    a.push("quick", Json::Bool(quick()));
    a.push(
        "cells",
        Json::Arr(
            cells
                .iter()
                .map(|c| {
                    obj(vec![
                        ("machine", Json::str(&c.machine)),
                        ("n_cores", Json::usize(c.n_cores)),
                        ("policy", Json::str(&c.policy)),
                        ("workload", Json::str(&c.workload)),
                        ("sim_s", Json::f64(c.sim_s)),
                        ("latency_mean_us", Json::opt_f64(c.latency_mean_us)),
                        ("migrations_per_sec", Json::opt_f64(c.migrations_per_sec)),
                        ("cross_ccx_per_sec", Json::opt_f64(c.cross_ccx_per_sec)),
                        (
                            "cross_socket_per_sec",
                            Json::opt_f64(c.cross_socket_per_sec),
                        ),
                        ("busiest_ccx_nest", Json::f64(c.busiest_ccx_nest)),
                    ])
                })
                .collect(),
        ),
    );
    match a.write() {
        Ok(path) => println!("\nartifact: {}", path.display()),
        Err(e) => eprintln!("warning: could not write fig_scale artifact: {e}"),
    }

    // Nondeterministic throughput sidecar (wall-clock; never hashed).
    let perf = Json::Obj(vec![
        ("figure".to_string(), Json::str("fig_scale")),
        ("schema".to_string(), Json::u64(1)),
        ("seed".to_string(), Json::u64(seed())),
        ("quick".to_string(), Json::Bool(quick())),
        (
            "cells".to_string(),
            Json::Arr(
                cells
                    .iter()
                    .map(|c| {
                        obj(vec![
                            ("machine", Json::str(&c.machine)),
                            ("policy", Json::str(&c.policy)),
                            ("n_cores", Json::usize(c.n_cores)),
                            ("wall_s", Json::f64(c.wall_s)),
                            ("events_total", Json::u64(c.events_total)),
                            ("events_per_sec", Json::f64(c.events_per_sec)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    let path = results_dir().join("fig_scale.perf.json");
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let mut text = perf.to_pretty();
    text.push('\n');
    match std::fs::write(&path, text) {
        Ok(()) => println!("perf sidecar: {}", path.display()),
        Err(e) => eprintln!("warning: could not write fig_scale perf sidecar: {e}"),
    }
}
