//! Figure 2: core/frequency trace of the first 0.3 s of LLVM
//! configuration (Ninja build) under CFS-schedutil vs Nest-schedutil on
//! the 2-socket Intel 5218.
//!
//! The paper's claim: CFS forks tasks onto cores with increasing numbers,
//! dispersing over ~8 cores that linger in the lower turbo range; Nest
//! places them on ~2 cores that stay at the highest frequencies.
//!
//! Trace runs carry full execution traces, which are too heavy for the
//! result cache; they go through the harness's raw parallel path instead.

use nest_bench::{banner, emit_artifact, scenario};
use nest_harness::{jobs, run_raw, Json, RawCell};

fn main() {
    banner(
        "Figure 2",
        "LLVM-ninja configure trace, CFS vs Nest (5218, schedutil)",
    );
    let scenarios: Vec<_> = ["cfs", "nest"]
        .iter()
        .map(|p| scenario("5218", p, "schedutil", "configure:llvm_ninja"))
        .collect();
    let fmax = scenarios[0].resolve_machine().freq.fmax().as_ghz();
    let cells: Vec<RawCell> = scenarios
        .iter()
        .map(|s| {
            let spec = s.workload_spec();
            RawCell {
                cfg: s.sim_config().with_trace(),
                make: Box::new(move || spec.build()),
            }
        })
        .collect();
    let (results, telemetry) = run_raw(cells, jobs());

    // The paper's frequency bands for the 5218.
    let bands = [(0.0, 1.0), (1.0, 1.6), (1.6, 2.3), (2.3, 3.6), (3.6, 3.9)];
    let mut series = Vec::new();
    for (s, r) in scenarios.iter().zip(&results) {
        let label = s.resolve_policy().label();
        let trace = r.trace.as_ref().expect("trace requested");
        // Keep the first 0.3 s, as the paper does.
        let cutoff = nest_simcore::Time::from_millis(300);
        let spans: Vec<_> = trace
            .spans
            .iter()
            .filter(|s| s.start < cutoff)
            .cloned()
            .collect();
        let window = nest_metrics::ExecutionTrace {
            spans,
            duration: cutoff,
        };
        println!("\n--- {label} (first 0.3 s) ---");
        println!(
            "cores used: {} ({:?})",
            window.cores_used().len(),
            window.cores_used()
        );
        let mut band_json = Vec::new();
        for (lo, hi) in bands {
            let frac = window.busy_fraction_in(lo, hi);
            println!("  ({lo:.1},{hi:.1}] GHz: {:5.2}%", 100.0 * frac);
            band_json.push(Json::Obj(vec![
                ("lo_ghz".to_string(), Json::f64(lo)),
                ("hi_ghz".to_string(), Json::f64(hi)),
                ("busy_fraction".to_string(), Json::f64(frac)),
            ]));
        }
        println!("{}", window.render_ascii(3_000_000, fmax));
        println!("full run: {:.3}s", r.time_s);
        series.push(Json::Obj(vec![
            ("policy".to_string(), Json::str(label)),
            (
                "cores_used".to_string(),
                Json::Arr(
                    window
                        .cores_used()
                        .iter()
                        .map(|&c| Json::u64(c as u64))
                        .collect(),
                ),
            ),
            ("bands".to_string(), Json::Arr(band_json)),
            ("full_run_time_s".to_string(), Json::f64(r.time_s)),
        ]));
    }
    println!("\nExpected shape (paper): CFS uses ~8 cores mostly in the");
    println!("(2.3,3.6] band; Nest uses ~2 cores mostly in (3.6,3.9].");
    emit_artifact(
        "fig02_trace",
        &[],
        vec![("traces", Json::Arr(series))],
        Some(&telemetry),
    );
}
