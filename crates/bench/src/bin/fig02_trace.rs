//! Figure 2: core/frequency trace of the first 0.3 s of LLVM
//! configuration (Ninja build) under CFS-schedutil vs Nest-schedutil on
//! the 2-socket Intel 5218.
//!
//! The paper's claim: CFS forks tasks onto cores with increasing numbers,
//! dispersing over ~8 cores that linger in the lower turbo range; Nest
//! places them on ~2 cores that stay at the highest frequencies.

use nest_bench::{
    banner,
    seed,
};
use nest_core::{
    run_once,
    PolicyKind,
    SimConfig,
};
use nest_topology::presets;
use nest_workloads::configure::Configure;

fn main() {
    banner("Figure 2", "LLVM-ninja configure trace, CFS vs Nest (5218, schedutil)");
    let machine = presets::xeon_5218();
    let fmax = machine.freq.fmax().as_ghz();
    for policy in [PolicyKind::Cfs, PolicyKind::Nest] {
        let cfg = SimConfig::new(machine.clone())
            .policy(policy.clone())
            .seed(seed())
            .with_trace();
        let label = policy.label();
        let r = run_once(&cfg, &Configure::named("llvm_ninja"));
        let trace = r.trace.expect("trace requested");
        // Keep the first 0.3 s, as the paper does.
        let cutoff = nest_simcore::Time::from_millis(300);
        let spans: Vec<_> = trace
            .spans
            .iter()
            .filter(|s| s.start < cutoff)
            .cloned()
            .collect();
        let window = nest_metrics::ExecutionTrace {
            spans,
            duration: cutoff,
        };
        println!("\n--- {label} (first 0.3 s) ---");
        println!(
            "cores used: {} ({:?})",
            window.cores_used().len(),
            window.cores_used()
        );
        // The paper's frequency bands for the 5218.
        let bands = [(0.0, 1.0), (1.0, 1.6), (1.6, 2.3), (2.3, 3.6), (3.6, 3.9)];
        for (lo, hi) in bands {
            println!(
                "  ({lo:.1},{hi:.1}] GHz: {:5.2}%",
                100.0 * window.busy_fraction_in(lo, hi)
            );
        }
        println!("{}", window.render_ascii(3_000_000, fmax));
        println!("full run: {:.3}s", r.time_s);
    }
    println!("\nExpected shape (paper): CFS uses ~8 cores mostly in the");
    println!("(2.3,3.6] band; Nest uses ~2 cores mostly in (3.6,3.9].");
}
