//! Figures 8 and 9: execution traces of the DaCapo h2 benchmark on the
//! 4-socket Intel 6130, CFS-schedutil vs Nest-schedutil.
//!
//! The paper's claims: CFS disperses h2's tasks over most of one socket
//! (sometimes several sockets — the slow runs of Figure 9), spending ~2/3
//! of the time at or below 3.1 GHz; Nest keeps the tasks on ~10 cores
//! that spend >2/3 of the time above 3.1 GHz, for ~20% speedup (more than
//! 2× against the multi-socket runs).

use nest_bench::{banner, emit_artifact, scenario};
use nest_harness::{jobs, run_raw, Json, RawCell};

fn main() {
    banner(
        "Figures 8/9",
        "h2 execution trace, CFS vs Nest (4-socket 6130, schedutil)",
    );
    let scenarios: Vec<_> = ["cfs", "nest"]
        .iter()
        .map(|p| scenario("6130-4", p, "schedutil", "dacapo:h2"))
        .collect();
    let cores_per_socket = scenarios[0].resolve_machine().cores_per_socket();
    let cells: Vec<RawCell> = scenarios
        .iter()
        .map(|s| {
            let spec = s.workload_spec();
            RawCell {
                cfg: s.sim_config().with_trace(),
                make: Box::new(move || spec.build()),
            }
        })
        .collect();
    let (results, telemetry) = run_raw(cells, jobs());

    let bands = [
        (0.0, 1.0),
        (1.0, 1.6),
        (1.6, 2.1),
        (2.1, 2.8),
        (2.8, 3.1),
        (3.1, 3.4),
        (3.4, 3.7),
    ];
    let mut series = Vec::new();
    for (s, r) in scenarios.iter().zip(&results) {
        let label = s.resolve_policy().label();
        let trace = r.trace.as_ref().expect("trace requested");
        let cores = trace.cores_used();
        let sockets: std::collections::BTreeSet<usize> = cores
            .iter()
            .map(|&c| c as usize / cores_per_socket)
            .collect();
        println!("\n--- {label} ---");
        println!("time: {:.2}s  energy: {:.0}J", r.time_s, r.energy_j);
        println!(
            "cores with activity: {}   sockets: {:?}",
            cores.len(),
            sockets
        );
        // Per-socket placement distribution.
        for s in &sockets {
            let n = cores
                .iter()
                .filter(|&&c| c as usize / cores_per_socket == *s)
                .count();
            println!("  socket {s}: {n} cores touched");
        }
        let mut band_json = Vec::new();
        for (lo, hi) in bands {
            let frac = trace.busy_fraction_in(lo, hi);
            println!("  ({lo:.1},{hi:.1}] GHz: {:5.2}%", 100.0 * frac);
            band_json.push(Json::Obj(vec![
                ("lo_ghz".to_string(), Json::f64(lo)),
                ("hi_ghz".to_string(), Json::f64(hi)),
                ("busy_fraction".to_string(), Json::f64(frac)),
            ]));
        }
        let above = trace.busy_fraction_in(3.1, 4.0);
        println!("  busy time above 3.1 GHz: {:.1}%", 100.0 * above);
        series.push(Json::Obj(vec![
            ("policy".to_string(), Json::str(label)),
            ("time_s".to_string(), Json::f64(r.time_s)),
            ("energy_j".to_string(), Json::f64(r.energy_j)),
            ("cores_with_activity".to_string(), Json::usize(cores.len())),
            (
                "sockets".to_string(),
                Json::Arr(sockets.iter().map(|&s| Json::usize(s)).collect()),
            ),
            ("bands".to_string(), Json::Arr(band_json)),
            ("busy_above_3p1ghz".to_string(), Json::f64(above)),
        ]));
    }
    println!("\nExpected shape (paper): CFS touches most of a socket with");
    println!("<1/3 of time above 3.1 GHz; Nest stays on ~10 cores with");
    println!(">2/3 above 3.1 GHz.");
    emit_artifact(
        "fig08_h2_trace",
        &[],
        vec![("traces", Json::Arr(series))],
        Some(&telemetry),
    );
}
