//! Figures 8 and 9: execution traces of the DaCapo h2 benchmark on the
//! 4-socket Intel 6130, CFS-schedutil vs Nest-schedutil.
//!
//! The paper's claims: CFS disperses h2's tasks over most of one socket
//! (sometimes several sockets — the slow runs of Figure 9), spending ~2/3
//! of the time at or below 3.1 GHz; Nest keeps the tasks on ~10 cores
//! that spend >2/3 of the time above 3.1 GHz, for ~20% speedup (more than
//! 2× against the multi-socket runs).

use nest_bench::{
    banner,
    seed,
};
use nest_core::{
    run_once,
    PolicyKind,
    SimConfig,
};
use nest_topology::presets;
use nest_workloads::dacapo::Dacapo;

fn main() {
    banner("Figures 8/9", "h2 execution trace, CFS vs Nest (4-socket 6130, schedutil)");
    let machine = presets::xeon_6130(4);
    let cores_per_socket = machine.cores_per_socket();
    for policy in [PolicyKind::Cfs, PolicyKind::Nest] {
        let cfg = SimConfig::new(machine.clone())
            .policy(policy.clone())
            .seed(seed())
            .with_trace();
        let label = policy.label();
        let r = run_once(&cfg, &Dacapo::named("h2"));
        let trace = r.trace.expect("trace requested");
        let cores = trace.cores_used();
        let sockets: std::collections::BTreeSet<usize> = cores
            .iter()
            .map(|&c| c as usize / cores_per_socket)
            .collect();
        println!("\n--- {label} ---");
        println!("time: {:.2}s  energy: {:.0}J", r.time_s, r.energy_j);
        println!(
            "cores with activity: {}   sockets: {:?}",
            cores.len(),
            sockets
        );
        // Per-socket placement distribution.
        for s in &sockets {
            let n = cores
                .iter()
                .filter(|&&c| c as usize / cores_per_socket == *s)
                .count();
            println!("  socket {s}: {n} cores touched");
        }
        let bands = [(0.0, 1.0), (1.0, 1.6), (1.6, 2.1), (2.1, 2.8), (2.8, 3.1), (3.1, 3.4), (3.4, 3.7)];
        for (lo, hi) in bands {
            println!(
                "  ({lo:.1},{hi:.1}] GHz: {:5.2}%",
                100.0 * trace.busy_fraction_in(lo, hi)
            );
        }
        let above = trace.busy_fraction_in(3.1, 4.0);
        println!("  busy time above 3.1 GHz: {:.1}%", 100.0 * above);
    }
    println!("\nExpected shape (paper): CFS touches most of a socket with");
    println!("<1/3 of time above 3.1 GHz; Nest stays on ~10 cores with");
    println!(">2/3 above 3.1 GHz.");
}
