//! Figure 4: underload per second for the 11 configure benchmarks, with
//! CFS and Nest under schedutil and performance, on each machine.
//!
//! The paper's claim: CFS accrues a few underload units per second; Nest
//! nearly eliminates it on every machine.

use nest_bench::{
    banner, configure_matrix, emit_artifact, metric_row, paper_schedulers, paper_setup_pairs,
};

fn main() {
    banner(
        "Figure 4",
        "configure underload per second (CFS/Nest × sched/perf)",
    );
    let schedulers = paper_schedulers();
    let (grouped, telemetry) = configure_matrix("fig04_underload", &paper_setup_pairs());
    let mut all = Vec::new();
    for (machine, comps) in grouped {
        println!("\n### {machine}");
        let labels: Vec<String> = schedulers.iter().map(|s| s.label()).collect();
        println!("{}", metric_row("benchmark", &labels));
        for c in &comps {
            let vals: Vec<String> = c
                .rows
                .iter()
                .map(|r| format!("{:.2}", r.underload_per_s))
                .collect();
            println!("{}", metric_row(&c.workload, &vals));
        }
        all.extend(comps);
    }
    println!("\nExpected shape (paper): CFS rows noticeably positive, Nest");
    println!("rows near zero on all four machines.");
    emit_artifact("fig04_underload", &all, vec![], Some(&telemetry));
}
