//! Latency attribution: where does request latency go under each
//! policy, as offered load rises?
//!
//! For an open-loop lognormal `serve:` stream on the 2-socket 5218, the
//! per-request latency-phase breakdown (arrival queueing, runqueue
//! wait, service at fmax, frequency-ramp penalty, spin overlap,
//! migration stall, merge wait) is swept over offered rates under
//! CFS, Nest, and Smove (all schedutil).
//!
//! The paper's §2 diagnosis, restated as an attribution claim: CFS
//! disperses wakeups onto cold cores, so a large slice of each
//! request's latency is the *frequency-ramp penalty* — extra
//! nanoseconds spent because the core had not yet reached fmax. Nest
//! keeps requests on warm cores, so that slice shrinks. The phase
//! histograms make the claim directly measurable.
//!
//! Phase breakdowns ride in full [`RunResult`](nest_core::RunResult)s,
//! so the sweep goes through the harness's raw parallel path like the
//! trace figures.

use nest_bench::{banner, emit_artifact, quick, scenario};
use nest_harness::{jobs, run_raw, Json, RawCell};
use nest_metrics::{PhaseMetrics, PHASE_NAMES};

/// Offered request rates (per second) for the sweep.
fn rates() -> Vec<u64> {
    if quick() {
        vec![200, 800]
    } else {
        vec![100, 200, 400, 800, 1600]
    }
}

const POLICIES: [&str; 3] = ["cfs", "nest", "smove"];
const REQUESTS: u64 = 400;

/// The phase block of one cell's artifact entry: exact sums (u64, the
/// golden-hash anchor) plus quantiles and shares.
fn phases_json(m: &PhaseMetrics) -> Json {
    let block = |h: &nest_metrics::TailHistogram, share: Option<f64>| {
        Json::Obj(vec![
            ("p50_ns".to_string(), Json::opt_u64(h.quantile(0.50))),
            ("p99_ns".to_string(), Json::opt_u64(h.quantile(0.99))),
            ("p999_ns".to_string(), Json::opt_u64(h.quantile(0.999))),
            ("sum_ns".to_string(), Json::u64(h.sum)),
            ("share".to_string(), Json::opt_f64(share)),
        ])
    };
    let mut fields = vec![
        ("requests".to_string(), Json::u64(m.requests)),
        (
            "identity_violations".to_string(),
            Json::u64(m.identity_violations),
        ),
        ("total".to_string(), block(&m.total, None)),
    ];
    for (i, name) in PHASE_NAMES.iter().enumerate() {
        fields.push((name.to_string(), block(&m.phases[i], m.share(i))));
    }
    Json::Obj(fields)
}

fn main() {
    banner(
        "Latency attribution",
        "per-request phase breakdown vs offered load (5218, schedutil)",
    );
    let rates = rates();
    // Policy-major cells, mirroring the row order of the figures.
    let mut coords = Vec::new();
    for policy in POLICIES {
        for &rate in &rates {
            coords.push((policy, rate));
        }
    }
    let cells: Vec<RawCell> = coords
        .iter()
        .map(|&(policy, rate)| {
            let s = scenario(
                "5218",
                policy,
                "schedutil",
                &format!("serve:rate={rate},requests={REQUESTS},dist=lognorm,slo=2ms"),
            );
            let spec = s.workload_spec();
            RawCell {
                cfg: s.sim_config(),
                make: Box::new(move || spec.build()),
            }
        })
        .collect();
    let (results, telemetry) = run_raw(cells, jobs());

    // Ramp-penalty share per (policy, rate): the figure's headline.
    println!("\nramp-penalty share of total request latency:");
    print!("{:>8}", "rate/s");
    for policy in POLICIES {
        print!("{policy:>10}");
    }
    println!();
    let ramp = PHASE_NAMES
        .iter()
        .position(|&n| n == "ramp_penalty")
        .expect("ramp phase exists");
    let share_of = |policy: &str, rate: u64| -> Option<f64> {
        let i = coords.iter().position(|&c| c == (policy, rate))?;
        results[i].phases.share(ramp)
    };
    for &rate in &rates {
        print!("{rate:>8}");
        for policy in POLICIES {
            match share_of(policy, rate) {
                Some(s) => print!("{:>9.2}%", 100.0 * s),
                None => print!("{:>10}", "n/a"),
            }
        }
        println!();
    }

    println!("\np99 request latency (total):");
    print!("{:>8}", "rate/s");
    for policy in POLICIES {
        print!("{policy:>12}");
    }
    println!();
    for &rate in &rates {
        print!("{rate:>8}");
        for policy in POLICIES {
            let i = coords
                .iter()
                .position(|&c| c == (policy, rate))
                .expect("cell exists");
            match results[i].phases.total.quantile(0.99) {
                Some(ns) => print!("{:>9.2} ms", ns as f64 / 1e6),
                None => print!("{:>12}", "n/a"),
            }
        }
        println!();
    }

    let violations: u64 = results.iter().map(|r| r.phases.identity_violations).sum();
    println!("\nphase-identity violations across the sweep: {violations}");
    let moderate = rates[rates.len() / 2];
    if let (Some(cfs), Some(nest)) = (share_of("cfs", moderate), share_of("nest", moderate)) {
        println!(
            "at {moderate}/s: ramp penalty is {:.2}% of latency under CFS, {:.2}% under Nest",
            100.0 * cfs,
            100.0 * nest
        );
        println!("expected shape (paper §2): Nest's warm cores shrink the ramp slice");
    }

    let series: Vec<Json> = coords
        .iter()
        .zip(&results)
        .map(|(&(policy, rate), r)| {
            Json::Obj(vec![
                ("policy".to_string(), Json::str(policy)),
                ("rate_per_s".to_string(), Json::u64(rate)),
                ("phases".to_string(), phases_json(&r.phases)),
            ])
        })
        .collect();
    emit_artifact(
        "fig_attribution",
        &[],
        vec![
            (
                "rates_per_s",
                Json::Arr(rates.iter().map(|&r| Json::u64(r)).collect()),
            ),
            ("requests_per_cell", Json::u64(REQUESTS)),
            ("series", Json::Arr(series)),
        ],
        Some(&telemetry),
    );
}
