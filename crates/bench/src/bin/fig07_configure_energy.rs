//! Figure 7: reduction in CPU energy consumption for the configure tests
//! relative to CFS-schedutil.
//!
//! The paper's claim: by shortening execution while keeping the
//! computation on few cores, Nest reduces CPU energy by up to ~19-20%.

use nest_bench::{
    banner, configure_matrix, emit_artifact, metric_row, paper_schedulers, paper_setup_pairs,
};

fn main() {
    banner("Figure 7", "configure CPU energy savings vs CFS-schedutil");
    let schedulers = paper_schedulers();
    let (grouped, telemetry) = configure_matrix("fig07_configure_energy", &paper_setup_pairs());
    let mut all = Vec::new();
    for (machine, comps) in grouped {
        println!("\n### {machine}");
        let labels: Vec<String> = schedulers
            .iter()
            .skip(1)
            .map(|s| format!("{}%", s.label()))
            .collect();
        let mut head = vec!["base energy ±%".to_string()];
        head.extend(labels);
        println!("{}", metric_row("benchmark", &head));
        for c in &comps {
            let base = &c.rows[0];
            let mut vals = vec![format!(
                "{:.0}J ±{:.0}%",
                base.energy.mean,
                base.energy.std_pct()
            )];
            for r in c.rows.iter().skip(1) {
                vals.push(format!(
                    "{:+.1}",
                    r.energy_savings_pct.expect("non-baseline")
                ));
            }
            println!("{}", metric_row(&c.workload, &vals));
        }
        all.extend(comps);
    }
    println!("\nExpected shape (paper): positive savings for Nest on most");
    println!("benchmarks, up to ~19%.");
    emit_artifact("fig07_configure_energy", &all, vec![], Some(&telemetry));
}
