//! Runs every experiment harness in sequence — the one-command
//! reproduction of the paper's evaluation section. Each section's binary
//! can also be run standalone; see DESIGN.md §4 for the index.
//!
//! Respects `NEST_RUNS` / `NEST_QUICK` / `NEST_SEED` / `NEST_JOBS` /
//! `NEST_CACHE` like the individual binaries. Output order follows the
//! paper. A failing section is reported (exit status, elapsed time) and
//! the remaining sections still run; the process exits non-zero if any
//! section failed, with a summary table at the end.

use std::process::Command;
use std::time::Instant;

use nest_harness::{results_dir, Json};

const SECTIONS: [&str; 15] = [
    "table23_machines",
    "fig02_trace",
    "fig03_underload_timeline",
    "fig04_underload",
    "fig05_configure_speedup",
    "fig06_configure_freq",
    "fig07_configure_energy",
    "fig08_h2_trace",
    "fig10_dacapo_speedup",
    "fig11_dacapo_freq",
    "fig12_nas_speedup",
    "fig13_phoronix_speedup",
    "table4_overview",
    "ablation",
    "other_apps",
];

struct SectionResult {
    bin: &'static str,
    outcome: Result<(), String>,
    elapsed_s: f64,
}

fn run(bin: &'static str) -> SectionResult {
    println!("\n################ {bin} ################\n");
    let started = Instant::now();
    let exe = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.join(bin)));
    let outcome = match exe {
        None => Err("could not locate sibling binary".to_string()),
        Some(path) => match Command::new(&path).status() {
            Err(e) => Err(format!("failed to launch: {e}")),
            Ok(status) if status.success() => Ok(()),
            Ok(status) => Err(match status.code() {
                Some(code) => format!("exit code {code}"),
                None => "terminated by signal".to_string(),
            }),
        },
    };
    SectionResult {
        bin,
        outcome,
        elapsed_s: started.elapsed().as_secs_f64(),
    }
}

fn write_summary(results: &[SectionResult], wall_s: f64) {
    let sections = Json::Arr(
        results
            .iter()
            .map(|r| {
                Json::Obj(vec![
                    ("bin".to_string(), Json::str(r.bin)),
                    ("ok".to_string(), Json::Bool(r.outcome.is_ok())),
                    (
                        "error".to_string(),
                        match &r.outcome {
                            Ok(()) => Json::Null,
                            Err(e) => Json::str(e),
                        },
                    ),
                    ("elapsed_s".to_string(), Json::f64(r.elapsed_s)),
                ])
            })
            .collect(),
    );
    let root = Json::Obj(vec![
        ("figure".to_string(), Json::str("reproduce_all")),
        ("jobs".to_string(), Json::usize(nest_harness::jobs())),
        ("sections".to_string(), sections),
        ("wall_s".to_string(), Json::f64(wall_s)),
    ]);
    let path = results_dir().join("reproduce_all.telemetry.json");
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let mut text = root.to_pretty();
    text.push('\n');
    match std::fs::write(&path, text) {
        Ok(()) => println!("telemetry: {}", path.display()),
        Err(e) => eprintln!("warning: could not write run telemetry: {e}"),
    }
}

fn main() {
    let started = Instant::now();
    let results: Vec<SectionResult> = SECTIONS.iter().map(|bin| run(bin)).collect();
    let wall_s = started.elapsed().as_secs_f64();

    println!("\n################ summary ################\n");
    println!("{:<26} {:>8} {:>10}", "section", "status", "elapsed");
    for r in &results {
        println!(
            "{:<26} {:>8} {:>9.1}s",
            r.bin,
            if r.outcome.is_ok() { "ok" } else { "FAILED" },
            r.elapsed_s
        );
    }
    let failed: Vec<&SectionResult> = results.iter().filter(|r| r.outcome.is_err()).collect();
    println!(
        "\n{} of {} sections succeeded in {:.1}s ({} jobs)",
        results.len() - failed.len(),
        results.len(),
        wall_s,
        nest_harness::jobs()
    );
    write_summary(&results, wall_s);

    if failed.is_empty() {
        println!("\nAll experiments completed.");
    } else {
        for r in &failed {
            eprintln!(
                "FAILED: {} ({}) after {:.1}s",
                r.bin,
                r.outcome.as_ref().unwrap_err(),
                r.elapsed_s
            );
        }
        std::process::exit(1);
    }
}
