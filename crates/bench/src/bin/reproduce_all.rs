//! Runs every experiment harness in sequence — the one-command
//! reproduction of the paper's evaluation section. Each section's binary
//! can also be run standalone; see DESIGN.md §4 for the index.
//!
//! Respects `NEST_RUNS` / `NEST_QUICK` / `NEST_SEED` / `NEST_JOBS` /
//! `NEST_CACHE` like the individual binaries. Output order follows the
//! paper. A failing section is reported (exit status, elapsed time) and
//! the remaining sections still run; the process exits non-zero if any
//! section failed, with a summary table at the end.
//!
//! The summary table folds in each section's `.telemetry.json` sidecar:
//! simulated events per second (the engine's throughput metric, see
//! EXPERIMENTS.md) and the result-cache hit ratio.
//!
//! `--bench` puts the run in benchmark mode: sections run with the result
//! cache off and the self-profiler on (`NEST_CACHE=off NEST_PROFILE=1`),
//! so every section reports fresh-simulation throughput and per-subsystem
//! wall time (see PROFILING.md), and the per-section throughput summary is
//! additionally written to `results/bench.json` — the measurement that
//! feeds the `BENCH_*.json` perf-trajectory files at the repo root.

use std::process::Command;
use std::time::Instant;

use nest_harness::{json, results_dir, Json};

const SECTIONS: [&str; 15] = [
    "table23_machines",
    "fig02_trace",
    "fig03_underload_timeline",
    "fig04_underload",
    "fig05_configure_speedup",
    "fig06_configure_freq",
    "fig07_configure_energy",
    "fig08_h2_trace",
    "fig10_dacapo_speedup",
    "fig11_dacapo_freq",
    "fig12_nas_speedup",
    "fig13_phoronix_speedup",
    "table4_overview",
    "ablation",
    "other_apps",
];

struct SectionResult {
    bin: &'static str,
    outcome: Result<(), String>,
    elapsed_s: f64,
    telemetry: Option<SectionTelemetry>,
}

/// The slice of a section's `.telemetry.json` sidecar the summary uses.
struct SectionTelemetry {
    events_total: u64,
    events_per_sec: f64,
    cells_total: u64,
    cells_cached: u64,
    /// Cells whose simulation panicked; the section's harness contained
    /// them and completed the rest, so its results are partial, not gone.
    failed_cells: Vec<String>,
    /// Kernel-state invariant violations counted across the section.
    invariant_violations: u64,
}

fn run(bin: &'static str, bench: bool) -> SectionResult {
    println!("\n################ {bin} ################\n");
    let started = Instant::now();
    let exe = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.join(bin)));
    let outcome = match exe {
        None => Err("could not locate sibling binary".to_string()),
        Some(path) => {
            let mut cmd = Command::new(&path);
            if bench {
                cmd.env("NEST_CACHE", "off").env("NEST_PROFILE", "1");
            }
            match cmd.status() {
                Err(e) => Err(format!("failed to launch: {e}")),
                Ok(status) if status.success() => Ok(()),
                Ok(status) => Err(match status.code() {
                    Some(code) => format!("exit code {code}"),
                    None => "terminated by signal".to_string(),
                }),
            }
        }
    };
    SectionResult {
        bin,
        outcome,
        elapsed_s: started.elapsed().as_secs_f64(),
        telemetry: read_section_telemetry(bin),
    }
}

/// Reads the sidecar the section just wrote; `None` when the section does
/// not emit one (or failed before writing it).
fn read_section_telemetry(bin: &str) -> Option<SectionTelemetry> {
    let path = results_dir().join(format!("{bin}.telemetry.json"));
    let root = json::parse(&std::fs::read_to_string(path).ok()?).ok()?;
    let failed_cells = root
        .get("failures")
        .and_then(|j| j.as_arr())
        .map(|arr| {
            arr.iter()
                .filter_map(|f| {
                    let cell = f.get("cell")?.as_str()?;
                    let message = f.get("message")?.as_str()?;
                    Some(format!("{cell}: {message}"))
                })
                .collect()
        })
        .unwrap_or_default();
    let invariant_violations = root
        .get("invariants")
        .and_then(|j| j.get("violations"))
        .and_then(|j| j.as_u64())
        .unwrap_or(0);
    Some(SectionTelemetry {
        events_total: root.get("events_total")?.as_u64()?,
        events_per_sec: root.get("events_per_sec")?.as_f64()?,
        cells_total: root.get("cells_total")?.as_u64()?,
        cells_cached: root.get("cells_cached")?.as_u64()?,
        failed_cells,
        invariant_violations,
    })
}

fn write_summary(results: &[SectionResult], wall_s: f64) {
    let sections = Json::Arr(
        results
            .iter()
            .map(|r| {
                let mut fields = vec![
                    ("bin".to_string(), Json::str(r.bin)),
                    ("ok".to_string(), Json::Bool(r.outcome.is_ok())),
                    (
                        "error".to_string(),
                        match &r.outcome {
                            Ok(()) => Json::Null,
                            Err(e) => Json::str(e),
                        },
                    ),
                    ("elapsed_s".to_string(), Json::f64(r.elapsed_s)),
                ];
                if let Some(t) = &r.telemetry {
                    fields.push(("events_total".to_string(), Json::u64(t.events_total)));
                    fields.push(("events_per_sec".to_string(), Json::f64(t.events_per_sec)));
                    fields.push(("cells_total".to_string(), Json::u64(t.cells_total)));
                    fields.push(("cells_cached".to_string(), Json::u64(t.cells_cached)));
                    fields.push((
                        "cells_failed".to_string(),
                        Json::usize(t.failed_cells.len()),
                    ));
                    fields.push((
                        "failed_cells".to_string(),
                        Json::Arr(t.failed_cells.iter().map(|c| Json::str(c)).collect()),
                    ));
                    fields.push((
                        "invariant_violations".to_string(),
                        Json::u64(t.invariant_violations),
                    ));
                }
                Json::Obj(fields)
            })
            .collect(),
    );
    let root = Json::Obj(vec![
        ("figure".to_string(), Json::str("reproduce_all")),
        ("jobs".to_string(), Json::usize(nest_harness::jobs())),
        ("sections".to_string(), sections),
        ("wall_s".to_string(), Json::f64(wall_s)),
    ]);
    write_json(&results_dir().join("reproduce_all.telemetry.json"), root);
}

/// In `--bench` mode: the per-section throughput record, the raw material
/// for the repo-root `BENCH_*.json` perf trajectory (see EXPERIMENTS.md).
fn write_bench(results: &[SectionResult]) {
    let sections: Vec<(String, Json)> = results
        .iter()
        .filter_map(|r| {
            let t = r.telemetry.as_ref()?;
            Some((
                r.bin.to_string(),
                Json::Obj(vec![
                    ("wall_s".to_string(), Json::f64(r.elapsed_s)),
                    ("events_total".to_string(), Json::u64(t.events_total)),
                    ("events_per_sec".to_string(), Json::f64(t.events_per_sec)),
                ]),
            ))
        })
        .collect();
    let root = Json::Obj(vec![
        ("schema".to_string(), Json::u64(1)),
        ("sections".to_string(), Json::Obj(sections)),
    ]);
    write_json(&results_dir().join("bench.json"), root);
}

fn write_json(path: &std::path::Path, root: Json) {
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let mut text = root.to_pretty();
    text.push('\n');
    match std::fs::write(path, text) {
        Ok(()) => println!("telemetry: {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

fn main() {
    let bench = std::env::args().any(|a| a == "--bench");
    let started = Instant::now();
    let results: Vec<SectionResult> = SECTIONS.iter().map(|bin| run(bin, bench)).collect();
    let wall_s = started.elapsed().as_secs_f64();

    println!("\n################ summary ################\n");
    println!(
        "{:<26} {:>8} {:>10} {:>12} {:>9} {:>7}",
        "section", "status", "elapsed", "events/s", "cache", "cells"
    );
    for r in &results {
        let (events, cache, cells) = match &r.telemetry {
            Some(t) => (
                format!("{:.0}k", t.events_per_sec / 1e3),
                format!("{}/{}", t.cells_cached, t.cells_total),
                if t.failed_cells.is_empty() {
                    "ok".to_string()
                } else {
                    format!("{} BAD", t.failed_cells.len())
                },
            ),
            None => ("-".to_string(), "-".to_string(), "-".to_string()),
        };
        let status = match (&r.outcome, &r.telemetry) {
            (Err(_), _) => "FAILED",
            (Ok(()), Some(t)) if !t.failed_cells.is_empty() => "partial",
            _ => "ok",
        };
        println!(
            "{:<26} {:>8} {:>9.1}s {:>12} {:>9} {:>7}",
            r.bin, status, r.elapsed_s, events, cache, cells
        );
    }
    let failed: Vec<&SectionResult> = results.iter().filter(|r| r.outcome.is_err()).collect();
    println!(
        "\n{} of {} sections succeeded in {:.1}s ({} jobs{})",
        results.len() - failed.len(),
        results.len(),
        wall_s,
        nest_harness::jobs(),
        if bench { ", bench mode" } else { "" }
    );
    write_summary(&results, wall_s);
    if bench {
        write_bench(&results);
    }

    // Cell-level failures: the section's harness contained a panicking
    // cell and finished the rest, so its artifact exists but is partial.
    // Completed sections (and cells) are kept; the run still fails.
    let partial: Vec<&SectionResult> = results
        .iter()
        .filter(|r| {
            r.outcome.is_ok()
                && r.telemetry
                    .as_ref()
                    .is_some_and(|t| !t.failed_cells.is_empty())
        })
        .collect();
    for r in &partial {
        for cell in &r.telemetry.as_ref().unwrap().failed_cells {
            eprintln!("FAILED CELL: {}: {cell}", r.bin);
        }
    }
    let violations: u64 = results
        .iter()
        .filter_map(|r| r.telemetry.as_ref())
        .map(|t| t.invariant_violations)
        .sum();
    if violations > 0 {
        eprintln!("WARNING: {violations} kernel-state invariant violation(s) across sections");
    }

    if failed.is_empty() && partial.is_empty() {
        println!("\nAll experiments completed.");
    } else {
        for r in &failed {
            eprintln!(
                "FAILED: {} ({}) after {:.1}s",
                r.bin,
                r.outcome.as_ref().unwrap_err(),
                r.elapsed_s
            );
        }
        std::process::exit(1);
    }
}
