//! Runs every experiment harness in sequence — the one-command
//! reproduction of the paper's evaluation section. Each section's binary
//! can also be run standalone; see DESIGN.md §4 for the index.
//!
//! Respects `NEST_RUNS` / `NEST_QUICK` / `NEST_SEED` like the individual
//! binaries. Output order follows the paper.

use std::process::Command;

fn run(bin: &str) {
    println!("\n################ {bin} ################\n");
    let status = Command::new(std::env::current_exe().unwrap().parent().unwrap().join(bin))
        .status()
        .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
    assert!(status.success(), "{bin} failed");
}

fn main() {
    for bin in [
        "table23_machines",
        "fig02_trace",
        "fig03_underload_timeline",
        "fig04_underload",
        "fig05_configure_speedup",
        "fig06_configure_freq",
        "fig07_configure_energy",
        "fig08_h2_trace",
        "fig10_dacapo_speedup",
        "fig11_dacapo_freq",
        "fig12_nas_speedup",
        "fig13_phoronix_speedup",
        "table4_overview",
        "ablation",
        "other_apps",
    ] {
        run(bin);
    }
    println!("\nAll experiments completed.");
}
