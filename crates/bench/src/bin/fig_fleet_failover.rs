//! fig_fleet_failover: goodput dip and recovery when one of four hosts
//! crashes mid-run, under CFS, Nest, and Smove (all schedutil).
//!
//! The fleet front-end routes an open-loop serving stream across four
//! simulated hosts with warmth-aware balancing, bounded retries, and
//! p95 hedging. Halfway through, one host crashes (losing its warm
//! nest and every in-flight request) and later restarts cold. The
//! figure tracks fleet goodput per 50 ms window through the failure:
//! the dip is bounded by retry/hedge cover, and the recovery slope
//! shows how fast the restarted host's nest re-forms — the paper's
//! warm-core story, at fleet scale.

use nest_bench::{add_block, banner, emit_artifact, matrix, metric_row, quick};
use nest_core::experiment::{Comparison, SchedulerOutcome};
use nest_harness::json::obj;
use nest_harness::Json;
use nest_metrics::FleetSummary;

/// The `(policy, governor)` rows of the comparison.
fn pairs() -> Vec<(&'static str, &'static str)> {
    vec![
        ("cfs", "schedutil"),
        ("nest", "schedutil"),
        ("smove", "schedutil"),
    ]
}

/// The fleet scenario: four hosts, warmth-aware balancing, bounded
/// retries with hedging, and one host crashing mid-run. Quick mode
/// shrinks the stream so the smoke sweep stays fast.
fn workload() -> String {
    let (requests, rate, down) = if quick() {
        (600, 2000, "1@100ms:100ms")
    } else {
        (2400, 2000, "1@400ms:300ms")
    };
    format!(
        "fleet:hosts=4,lb=warmth,retry=2,timeout=50ms,hedge=p95,hostdown={down}\
         +serve:rate={rate},dist=lognorm,requests={requests}"
    )
}

/// The first run's fleet summary — the deterministic representative the
/// table and the artifact series report.
fn row_fleet(r: &SchedulerOutcome) -> Option<&FleetSummary> {
    r.runs.first().and_then(|run| run.fleet.as_ref())
}

fn fmt_us(ns: Option<u64>) -> String {
    ns.map_or_else(|| "n/a".to_string(), |v| format!("{:.0}µs", v as f64 / 1e3))
}

fn fmt_or_na(v: Option<f64>, unit: &str) -> String {
    v.map_or_else(|| "n/a".to_string(), |x| format!("{x:.1}{unit}"))
}

/// One row's JSON series entry: failover scalars plus the goodput
/// timeline (`[arrived, ok]` per window).
fn series_entry(r: &SchedulerOutcome) -> Json {
    let Some(f) = row_fleet(r) else {
        return obj(vec![("label", Json::str(&r.label))]);
    };
    obj(vec![
        ("label", Json::str(&r.label)),
        ("offered", Json::u64(f.offered)),
        ("completed", Json::u64(f.completed)),
        ("failed", Json::u64(f.failed)),
        ("shed", Json::u64(f.shed)),
        ("timeouts", Json::u64(f.timeouts)),
        ("retries", Json::u64(f.retries)),
        ("hedges", Json::u64(f.hedges)),
        ("hedge_wins", Json::u64(f.hedge_wins)),
        ("crashes", Json::u64(f.crashes)),
        ("restarts", Json::u64(f.restarts)),
        ("p99_ns", Json::opt_u64(f.p99_ns)),
        ("p999_ns", Json::opt_u64(f.p999_ns)),
        ("goodput_per_s", Json::opt_f64(f.goodput_per_s)),
        ("time_to_warm_s", Json::opt_f64(f.time_to_warm_s)),
        ("timeline_window_ns", Json::u64(f.timeline_window_ns)),
        (
            "timeline",
            Json::Arr(
                f.timeline
                    .iter()
                    .map(|&(arrived, ok)| Json::Arr(vec![Json::u64(arrived), Json::u64(ok)]))
                    .collect(),
            ),
        ),
    ])
}

fn print_table(c: &Comparison) {
    let labels = vec![
        "done/offered".to_string(),
        "timeouts".to_string(),
        "retries".to_string(),
        "hedges".to_string(),
        "p99".to_string(),
        "p999".to_string(),
        "goodput".to_string(),
        "warm-in".to_string(),
    ];
    println!("{}", metric_row("scheduler", &labels));
    for r in &c.rows {
        let vals = match row_fleet(r) {
            Some(f) => vec![
                format!("{}/{}", f.completed, f.offered),
                f.timeouts.to_string(),
                f.retries.to_string(),
                format!("{}({})", f.hedges, f.hedge_wins),
                fmt_us(f.p99_ns),
                fmt_us(f.p999_ns),
                fmt_or_na(f.goodput_per_s, "/s"),
                fmt_or_na(f.time_to_warm_s.map(|s| s * 1e3), "ms"),
            ],
            None => vec!["n/a".to_string(); labels.len()],
        };
        println!("{}", metric_row(&r.label, &vals));
    }
}

fn main() {
    banner(
        "Fleet failover",
        "kill 1 of 4 hosts mid-run: goodput dip, retry cover, nest re-warm",
    );
    let wl = workload();
    println!("\nscenario: {wl}");
    let mut m = matrix("fig_fleet_failover");
    add_block(&mut m, "5218", &pairs(), &wl, None);
    let (comps, telemetry) = m.run();

    let mut series = Vec::new();
    for c in &comps {
        println!();
        print_table(c);
        series.extend(c.rows.iter().map(series_entry));
    }

    println!("\nExpected shape: all three schedulers absorb the crash with");
    println!("bounded goodput dips (retries re-route, hedges cover the tail),");
    println!("but Nest recovers its pre-crash latency faster — the restarted");
    println!("host re-forms a nest instead of rediscovering warm cores.");
    emit_artifact(
        "fig_fleet_failover",
        &comps,
        vec![("series", Json::Arr(series))],
        Some(&telemetry),
    );
}
