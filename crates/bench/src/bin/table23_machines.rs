//! Tables 2 and 3: the modeled machines and their turbo-frequency
//! ladders, printed from the presets so the reproduction's hardware model
//! can be checked against the paper at a glance.

use nest_bench::{banner, emit_artifact};
use nest_harness::Json;
use nest_scenario::{machine, paper_machine_keys};
use nest_topology::MachineSpec;

fn machine_json(m: &MachineSpec) -> Json {
    Json::Obj(vec![
        ("name".to_string(), Json::str(&m.name)),
        ("microarch".to_string(), Json::str(m.microarch)),
        ("sockets".to_string(), Json::usize(m.sockets)),
        (
            "phys_per_socket".to_string(),
            Json::usize(m.phys_per_socket),
        ),
        ("n_cores".to_string(), Json::usize(m.n_cores())),
        ("fmin_ghz".to_string(), Json::f64(m.freq.fmin.as_ghz())),
        (
            "fnominal_ghz".to_string(),
            Json::f64(m.freq.fnominal.as_ghz()),
        ),
        ("fmax_ghz".to_string(), Json::f64(m.freq.fmax().as_ghz())),
        (
            "turbo_ladder_ghz".to_string(),
            Json::Arr(
                (1..=m.phys_per_socket)
                    .map(|c| Json::f64(m.freq.turbo_limit(c).as_ghz()))
                    .collect(),
            ),
        ),
    ])
}

fn main() {
    banner("Tables 2/3", "machine characteristics and turbo ladders");
    println!(
        "{:<28} {:<13} {:>7} {:>9} {:>9} {:>10}",
        "CPU", "microarch", "cores", "min freq", "max freq", "max turbo"
    );
    let machines: Vec<MachineSpec> = paper_machine_keys()
        .iter()
        .map(|k| machine(k).expect("paper machines are registered"))
        .collect();
    for m in &machines {
        println!(
            "{:<28} {:<13} {:>7} {:>9} {:>9} {:>10}",
            m.name,
            m.microarch,
            format!("{}x{}x2={}", m.sockets, m.phys_per_socket, m.n_cores()),
            format!("{}", m.freq.fmin),
            format!("{}", m.freq.fnominal),
            format!("{}", m.freq.fmax()),
        );
    }
    println!("\nTurbo ladders (GHz by active physical cores on a socket):");
    let cols = [1usize, 2, 3, 4, 5, 8, 9, 12, 13, 16, 17, 20];
    print!("{:<28}", "machine");
    for c in cols {
        print!(" {c:>5}");
    }
    println!();
    for m in &machines {
        print!("{:<28}", m.name);
        for c in cols {
            if c <= m.phys_per_socket {
                print!(" {:>5.1}", m.freq.turbo_limit(c).as_ghz());
            } else {
                print!(" {:>5}", "-");
            }
        }
        println!();
    }
    println!("\n§5.6 mono-socket machines:");
    let mono = [
        machine("5220").expect("mono machines are registered"),
        machine("4650g").expect("mono machines are registered"),
    ];
    for m in &mono {
        println!(
            "  {:<26} {} cores, turbo {} .. {}",
            m.name,
            m.n_cores(),
            m.freq.turbo_limit(m.phys_per_socket),
            m.freq.fmax()
        );
    }
    let all: Vec<Json> = machines.iter().chain(&mono).map(machine_json).collect();
    emit_artifact(
        "table23_machines",
        &[],
        vec![("machines", Json::Arr(all))],
        None,
    );
}
