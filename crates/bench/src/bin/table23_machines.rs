//! Tables 2 and 3: the modeled machines and their turbo-frequency
//! ladders, printed from the presets so the reproduction's hardware model
//! can be checked against the paper at a glance.

use nest_bench::banner;
use nest_topology::presets;

fn main() {
    banner("Tables 2/3", "machine characteristics and turbo ladders");
    println!(
        "{:<28} {:<13} {:>7} {:>9} {:>9} {:>10}",
        "CPU", "microarch", "cores", "min freq", "max freq", "max turbo"
    );
    let machines = presets::paper_machines();
    for m in &machines {
        println!(
            "{:<28} {:<13} {:>7} {:>9} {:>9} {:>10}",
            m.name,
            m.microarch,
            format!("{}x{}x2={}", m.sockets, m.phys_per_socket, m.n_cores()),
            format!("{}", m.freq.fmin),
            format!("{}", m.freq.fnominal),
            format!("{}", m.freq.fmax()),
        );
    }
    println!("\nTurbo ladders (GHz by active physical cores on a socket):");
    let cols = [1usize, 2, 3, 4, 5, 8, 9, 12, 13, 16, 17, 20];
    print!("{:<28}", "machine");
    for c in cols {
        print!(" {c:>5}");
    }
    println!();
    for m in &machines {
        print!("{:<28}", m.name);
        for c in cols {
            if c <= m.phys_per_socket {
                print!(" {:>5.1}", m.freq.turbo_limit(c).as_ghz());
            } else {
                print!(" {:>5}", "-");
            }
        }
        println!();
    }
    println!("\n§5.6 mono-socket machines:");
    for m in [presets::xeon_5220(), presets::amd_4650g()] {
        println!(
            "  {:<26} {} cores, turbo {} .. {}",
            m.name,
            m.n_cores(),
            m.freq.turbo_limit(m.phys_per_socket),
            m.freq.fmax()
        );
    }
}
