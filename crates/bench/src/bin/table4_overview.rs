//! Table 4: overview of the Phoronix multicore results — how many tests
//! are slower by >20%, slower by 5-20%, the same (±5%), faster by 5-20%,
//! and faster by >20%, for CFS-performance and Nest-schedutil vs
//! CFS-schedutil.
//!
//! The paper's claim: most tests are unaffected (±5%); at least 7% of
//! tests gain >5% with Nest-schedutil on every machine, 21% on the E7;
//! very few regress badly.
//!
//! The corpus here is the 27 named Figure 13 tests plus archetype tests
//! drawn from the same behaviour space (DESIGN.md documents this
//! substitution; the paper's 222-test suite is not redistributable).

use nest_bench::{
    add_block, banner, emit_artifact, factory, figure_machine_keys, figure_machines, matrix, quick,
    runs, seed, setups_of,
};
use nest_harness::Json;
use nest_metrics::stats::table4_band;
use nest_simcore::SimRng;
use nest_workloads::phoronix;

fn main() {
    banner("Table 4", "Phoronix multicore overview (band counts)");
    let pairs = [
        ("cfs", "schedutil"),
        ("cfs", "performance"),
        ("nest", "schedutil"),
    ];
    let schedulers = setups_of(&pairs);
    let named = phoronix::figure13_specs();
    let n_archetypes = if quick() { 13 } else { 53 };
    let mut rng = SimRng::new(seed() ^ 0xA5C3);
    // The archetype specs are drawn from an RNG, so they are not registry
    // members; they ride the legacy factory path below.
    let archetypes = phoronix::archetype_suite(n_archetypes, &mut rng);
    let suite_len = named.len() + archetypes.len();
    println!(
        "corpus: {} tests ({} named + {} archetype)",
        suite_len, 27, n_archetypes
    );

    let machines = figure_machines();
    let mut m = matrix("table4_overview");
    for (key, machine) in figure_machine_keys().iter().zip(&machines) {
        for spec in &named {
            add_block(
                &mut m,
                key,
                &pairs,
                &format!("phoronix:{}", spec.name),
                None,
            );
        }
        for spec in &archetypes {
            let spec = spec.clone();
            m.add(
                machine.clone(),
                &schedulers,
                runs(),
                factory(move || phoronix::Phoronix::new(spec.clone())),
            );
        }
    }
    let (comps, telemetry) = m.run();

    let bands = [
        "slower>20",
        "slower5to20",
        "same",
        "faster5to20",
        "faster>20",
    ];
    let mut machine_counts = Vec::new();
    for (machine, chunk) in machines.iter().zip(comps.chunks(suite_len)) {
        // counts[scheduler][band]
        let mut counts = [[0usize; 5]; 2];
        for c in chunk {
            for (i, r) in c.rows.iter().skip(1).enumerate() {
                let band = table4_band(r.speedup_pct.as_ref().unwrap().mean);
                let idx = bands.iter().position(|b| *b == band).unwrap();
                counts[i][idx] += 1;
            }
        }
        println!("\n### {}", machine.name);
        println!(
            "{:<12} {:>10} {:>12} {:>8} {:>12} {:>10}",
            "scheduler", "slower>20%", "slower(5,20]", "same", "faster(5,20]", "faster>20%"
        );
        let total = suite_len;
        for (i, label) in ["CFS-perf.", "Nest-sched."].iter().enumerate() {
            let row: Vec<String> = counts[i]
                .iter()
                .map(|&n| format!("{n} ({:.0}%)", 100.0 * n as f64 / total as f64))
                .collect();
            println!(
                "{:<12} {:>10} {:>12} {:>8} {:>12} {:>10}",
                label, row[0], row[1], row[2], row[3], row[4]
            );
        }
        machine_counts.push((machine.name.clone(), counts));
    }
    println!("\nExpected shape (paper): the 'same' column dominates; ≥7% of");
    println!("tests faster by >5% with Nest-sched on every machine.");

    // The artifact carries the band counts (the table itself); the full
    // per-test comparisons would dwarf every other artifact combined.
    let band_json = Json::Arr(
        machine_counts
            .iter()
            .map(|(name, counts)| {
                Json::Obj(vec![
                    ("machine".to_string(), Json::str(name)),
                    ("cfs_perf".to_string(), band_counts_json(&bands, &counts[0])),
                    (
                        "nest_sched".to_string(),
                        band_counts_json(&bands, &counts[1]),
                    ),
                ])
            })
            .collect(),
    );
    emit_artifact(
        "table4_overview",
        &[],
        vec![
            ("corpus_size", Json::usize(suite_len)),
            ("bands", band_json),
        ],
        Some(&telemetry),
    );
}

fn band_counts_json(bands: &[&str; 5], counts: &[usize; 5]) -> Json {
    Json::Obj(
        bands
            .iter()
            .zip(counts)
            .map(|(b, &n)| (b.to_string(), Json::usize(n)))
            .collect(),
    )
}
