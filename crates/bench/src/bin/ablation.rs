//! Ablation studies (§5.2 "Impact of Nest features" and §5.3 likewise):
//! remove Nest's mechanisms one by one and scale the Table 1 parameters
//! by 0.5× / 2× / 10×, on the workloads the paper uses (llvm_ninja and
//! mplayer configuration; h2, graphchi-eval, tradebeans from DaCapo),
//! under schedutil.
//!
//! The paper's findings: for configure only removing the *reserve nest*
//! matters (≈5% loss on the 6130/5218, up to 16% on the E7); for the
//! DaCapo trio *spinning* matters most (10-26% loss), compaction removal
//! costs ~5% on h2/graphchi, and parameter changes within 0.5-10× are
//! mostly neutral.

use nest_bench::{banner, emit_artifact, factory, matrix, quick, runs};
use nest_core::experiment::{Comparison, SchedulerSetup};
use nest_core::{Governor, NestParams, PolicyKind};
use nest_harness::WorkloadFactory;
use nest_workloads::{configure::Configure, dacapo::Dacapo};

/// The ablation grid as registry policy specs: each variant flips one
/// mechanism or scales one Table 1 parameter off the Nest defaults.
fn variant_specs() -> Vec<(&'static str, &'static str)> {
    vec![
        ("no reserve nest", "nest:reserve=off"),
        ("no compaction", "nest:compaction=off"),
        ("no spinning", "nest:spin=off"),
        ("no attachment", "nest:attachment=off"),
        ("no wakeup work conservation", "nest:wwc=off"),
        ("no reservation flag", "nest:resflag=off"),
        ("P_remove x0.5 (1 tick)", "nest:p_remove=1"),
        ("P_remove x2 (4 ticks)", "nest:p_remove=4"),
        ("P_remove x10 (20 ticks)", "nest:p_remove=20"),
        ("R_max x0.5 (2)", "nest:r_max=2"),
        ("R_max x2 (10)", "nest:r_max=10"),
        ("R_max x10 (50)", "nest:r_max=50"),
        ("S_max x0.5 (1 tick)", "nest:s_max=1"),
        ("S_max x2 (4 ticks)", "nest:s_max=4"),
        ("S_max x10 (20 ticks)", "nest:s_max=20"),
        ("R_impatient x0.5 (1)", "nest:r_impatient=1"),
        ("R_impatient x2 (4)", "nest:r_impatient=4"),
        ("R_impatient x10 (20)", "nest:r_impatient=20"),
    ]
}

/// Row labels: baseline full Nest first, then every variant.
fn variant_labels() -> Vec<&'static str> {
    let mut labels = vec!["Nest (full)"];
    labels.extend(variant_specs().iter().map(|(l, _)| *l));
    labels
}

/// Baseline full Nest first, then every ablation/scaling variant, all
/// under schedutil. The baseline is spelled `NestWith(default)` rather
/// than the registry's bare `nest` so its seed-derivation identity stays
/// distinct from the standard figures' Nest rows, as it always has been.
fn variant_setups() -> Vec<SchedulerSetup> {
    let mut setups = vec![SchedulerSetup::new(
        PolicyKind::NestWith(NestParams::default()),
        Governor::Schedutil,
    )];
    setups.extend(variant_specs().iter().map(|(_, spec)| {
        SchedulerSetup::new(
            nest_scenario::policy(spec).expect("ablation specs are valid"),
            Governor::Schedutil,
        )
    }));
    setups
}

fn print_study(c: &Comparison) {
    println!("\n## {} on {}", c.workload, c.machine);
    println!("{:<30} {:>10} {:>9}", "variant", "time(s)", "vs full%");
    for (row, label) in c.rows.iter().zip(variant_labels()) {
        println!(
            "{:<30} {:>10.3} {:>9}",
            label,
            row.time.mean,
            row.speedup_pct
                .as_ref()
                .map_or("base".to_string(), |s| format!("{:+.1}", s.mean)),
        );
    }
}

fn main() {
    banner(
        "Ablation",
        "Nest feature removal and parameter scaling (§5.2/§5.3)",
    );
    let setups = variant_setups();
    let keys = if quick() {
        vec!["5218"]
    } else {
        vec!["5218", "e7-8870"]
    };
    let machines: Vec<_> = keys
        .iter()
        .map(|k| nest_scenario::machine(k).expect("ablation machines are registered"))
        .collect();
    let mut m = matrix("ablation");
    for machine in &machines {
        for bench in ["llvm_ninja", "mplayer"] {
            let make: WorkloadFactory = factory(move || Configure::named(bench));
            m.add(machine.clone(), &setups, runs(), make);
        }
    }
    let dacapo_machine = nest_scenario::machine("6130-2").expect("6130-2 is registered");
    for app in ["h2", "graphchi-eval", "tradebeans"] {
        m.add(
            dacapo_machine.clone(),
            &setups,
            runs(),
            factory(move || Dacapo::named(app)),
        );
    }
    let (comps, telemetry) = m.run();
    for c in &comps {
        print_study(c);
    }
    println!("\nExpected shape (paper): configure is sensitive only to the");
    println!("reserve nest; the DaCapo trio is most sensitive to spinning;");
    println!("parameter scalings stay within a few percent.");
    emit_artifact("ablation", &comps, vec![], Some(&telemetry));
}
