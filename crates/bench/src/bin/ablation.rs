//! Ablation studies (§5.2 "Impact of Nest features" and §5.3 likewise):
//! remove Nest's mechanisms one by one and scale the Table 1 parameters
//! by 0.5× / 2× / 10×, on the workloads the paper uses (llvm_ninja and
//! mplayer configuration; h2, graphchi-eval, tradebeans from DaCapo),
//! under schedutil.
//!
//! The paper's findings: for configure only removing the *reserve nest*
//! matters (≈5% loss on the 6130/5218, up to 16% on the E7); for the
//! DaCapo trio *spinning* matters most (10-26% loss), compaction removal
//! costs ~5% on h2/graphchi, and parameter changes within 0.5-10× are
//! mostly neutral.

use nest_bench::{banner, emit_artifact, factory, matrix, quick, runs};
use nest_core::experiment::{Comparison, SchedulerSetup};
use nest_core::{Governor, NestParams, PolicyKind};
use nest_harness::WorkloadFactory;
use nest_topology::presets;
use nest_workloads::{configure::Configure, dacapo::Dacapo};

fn variants() -> Vec<(&'static str, NestParams)> {
    let base = NestParams::default();
    let mut v: Vec<(&'static str, NestParams)> = vec![
        ("Nest (full)", base.clone()),
        (
            "no reserve nest",
            NestParams {
                enable_reserve: false,
                ..base.clone()
            },
        ),
        (
            "no compaction",
            NestParams {
                enable_compaction: false,
                ..base.clone()
            },
        ),
        (
            "no spinning",
            NestParams {
                enable_spin: false,
                ..base.clone()
            },
        ),
        (
            "no attachment",
            NestParams {
                enable_attachment: false,
                ..base.clone()
            },
        ),
        (
            "no wakeup work conservation",
            NestParams {
                enable_wakeup_work_conservation: false,
                ..base.clone()
            },
        ),
        (
            "no reservation flag",
            NestParams {
                enable_reservation_flag: false,
                ..base.clone()
            },
        ),
    ];
    for (label, p) in [
        (
            "P_remove x0.5 (1 tick)",
            NestParams {
                p_remove_ticks: 1,
                ..base.clone()
            },
        ),
        (
            "P_remove x2 (4 ticks)",
            NestParams {
                p_remove_ticks: 4,
                ..base.clone()
            },
        ),
        (
            "P_remove x10 (20 ticks)",
            NestParams {
                p_remove_ticks: 20,
                ..base.clone()
            },
        ),
        (
            "R_max x0.5 (2)",
            NestParams {
                r_max: 2,
                ..base.clone()
            },
        ),
        (
            "R_max x2 (10)",
            NestParams {
                r_max: 10,
                ..base.clone()
            },
        ),
        (
            "R_max x10 (50)",
            NestParams {
                r_max: 50,
                ..base.clone()
            },
        ),
        (
            "S_max x0.5 (1 tick)",
            NestParams {
                s_max_ticks: 1,
                ..base.clone()
            },
        ),
        (
            "S_max x2 (4 ticks)",
            NestParams {
                s_max_ticks: 4,
                ..base.clone()
            },
        ),
        (
            "S_max x10 (20 ticks)",
            NestParams {
                s_max_ticks: 20,
                ..base.clone()
            },
        ),
        (
            "R_impatient x0.5 (1)",
            NestParams {
                r_impatient: 1,
                ..base.clone()
            },
        ),
        (
            "R_impatient x2 (4)",
            NestParams {
                r_impatient: 4,
                ..base.clone()
            },
        ),
        (
            "R_impatient x10 (20)",
            NestParams {
                r_impatient: 20,
                ..base.clone()
            },
        ),
    ] {
        v.push((label, p));
    }
    v
}

/// Baseline full Nest first, then every ablation/scaling variant, all
/// under schedutil.
fn variant_setups() -> Vec<SchedulerSetup> {
    variants()
        .into_iter()
        .map(|(_, p)| SchedulerSetup::new(PolicyKind::NestWith(p), Governor::Schedutil))
        .collect()
}

fn print_study(c: &Comparison) {
    println!("\n## {} on {}", c.workload, c.machine);
    println!("{:<30} {:>10} {:>9}", "variant", "time(s)", "vs full%");
    for (row, (label, _)) in c.rows.iter().zip(variants()) {
        println!(
            "{:<30} {:>10.3} {:>9}",
            label,
            row.time.mean,
            row.speedup_pct
                .as_ref()
                .map_or("base".to_string(), |s| format!("{:+.1}", s.mean)),
        );
    }
}

fn main() {
    banner(
        "Ablation",
        "Nest feature removal and parameter scaling (§5.2/§5.3)",
    );
    let setups = variant_setups();
    let machines = if quick() {
        vec![presets::xeon_5218()]
    } else {
        vec![presets::xeon_5218(), presets::e7_8870_v4()]
    };
    let mut m = matrix("ablation");
    for machine in &machines {
        for bench in ["llvm_ninja", "mplayer"] {
            let make: WorkloadFactory = factory(move || Configure::named(bench));
            m.add(machine.clone(), &setups, runs(), make);
        }
    }
    let dacapo_machine = presets::xeon_6130(2);
    for app in ["h2", "graphchi-eval", "tradebeans"] {
        m.add(
            dacapo_machine.clone(),
            &setups,
            runs(),
            factory(move || Dacapo::named(app)),
        );
    }
    let (comps, telemetry) = m.run();
    for c in &comps {
        print_study(c);
    }
    println!("\nExpected shape (paper): configure is sensitive only to the");
    println!("reserve nest; the DaCapo trio is most sensitive to spinning;");
    println!("parameter scalings stay within a few percent.");
    emit_artifact("ablation", &comps, vec![], Some(&telemetry));
}
