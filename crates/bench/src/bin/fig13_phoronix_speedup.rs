//! Figure 13: Phoronix multicore speedups vs CFS-schedutil for the tests
//! where CFS-performance or Nest-schedutil moves by at least 20% on some
//! machine (27 named tests, Table 5 key).
//!
//! The paper's highlighted patterns: zstd compression 7/10 speed up a lot
//! under both CFS-perf and Nest-sched; Rodinia 5 behaves oppositely under
//! the two on different machines; libavif avifenc 1 degrades with
//! Nest-sched (up to -22% on the 4-socket 6130).

use nest_bench::{
    add_block, banner, emit_artifact, figure_machine_keys, figure_machines, matrix, metric_row,
};
use nest_workloads::phoronix;

fn main() {
    banner("Figure 13", "Phoronix multicore speedup vs CFS-schedutil");
    // The figure compares CFS-perf and Nest-sched against CFS-sched.
    let pairs = [
        ("cfs", "schedutil"),
        ("cfs", "performance"),
        ("nest", "schedutil"),
    ];
    let machines = figure_machines();
    let specs = phoronix::figure13_specs();
    let mut m = matrix("fig13_phoronix_speedup");
    for key in figure_machine_keys() {
        for spec in &specs {
            add_block(
                &mut m,
                key,
                &pairs,
                &format!("phoronix:{}", spec.name),
                None,
            );
        }
    }
    let (comps, telemetry) = m.run();
    for (machine, chunk) in machines.iter().zip(comps.chunks(specs.len())) {
        println!("\n### {}", machine.name);
        let head = vec![
            "base time ±%".to_string(),
            "CFS perf%".to_string(),
            "Nest sched%".to_string(),
        ];
        println!("{}", metric_row("test", &head));
        for c in chunk {
            let base = &c.rows[0];
            let vals = vec![
                format!("{:.2}s ±{:.0}%", base.time.mean, base.time.std_pct()),
                format!("{:+.1}", c.rows[1].speedup_pct.as_ref().unwrap().mean),
                format!("{:+.1}", c.rows[2].speedup_pct.as_ref().unwrap().mean),
            ];
            println!("{}", metric_row(&c.workload, &vals));
        }
    }
    println!("\nExpected shape (paper): zstd 7/10 large wins for both;");
    println!("libavif avifenc 1 negative for Nest; cpuminer/oidn near zero.");
    emit_artifact("fig13_phoronix_speedup", &comps, vec![], Some(&telemetry));
}
