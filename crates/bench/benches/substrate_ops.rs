//! Criterion microbenchmarks of substrate data structures: event queue,
//! CPU sets, PELT updates, frequency-model advancement.

use criterion::{criterion_group, criterion_main, Criterion};
use nest_freq::{Activity, FreqModel, Governor};
use nest_sched::Pelt;
use nest_simcore::{CoreId, EventQueue, Time, MILLISEC};
use nest_topology::{presets, CpuSet};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.schedule(Time::from_nanos(i * 7919 % 100_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum = sum.wrapping_add(e);
            }
            std::hint::black_box(sum)
        })
    });
}

fn bench_cpuset(c: &mut Criterion) {
    c.bench_function("cpuset_wrapping_scan_160", |b| {
        let mut s = CpuSet::new(160);
        for i in (0..160).step_by(3) {
            s.insert(CoreId::from_index(i));
        }
        b.iter(|| {
            let mut n = 0;
            for core in s.iter_wrapping_from(CoreId(77)) {
                n += core.index();
            }
            std::hint::black_box(n)
        })
    });
}

fn bench_pelt(c: &mut Criterion) {
    c.bench_function("pelt_update_1k_events", |b| {
        b.iter(|| {
            let mut p = Pelt::new(Time::ZERO);
            let mut t = Time::ZERO;
            for i in 0..1000u64 {
                t += (i % 5 + 1) * 100_000;
                p.set_running(t, i % 2 == 0);
            }
            std::hint::black_box(p.value(t))
        })
    });
}

fn bench_freq_advance(c: &mut Criterion) {
    c.bench_function("freq_advance_1ms_e7", |b| {
        let spec = presets::e7_8870_v4();
        let mut m = FreqModel::new(&spec, Governor::Schedutil);
        for i in 0..40 {
            m.set_activity(Time::ZERO, CoreId(i * 2), Activity::Busy);
        }
        let mut t = Time::ZERO;
        b.iter(|| {
            t += MILLISEC;
            std::hint::black_box(m.advance(t, MILLISEC, &mut |_| 0.8).len())
        })
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_cpuset,
    bench_pelt,
    bench_freq_advance
);
criterion_main!(benches);
