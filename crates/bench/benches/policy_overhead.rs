//! Criterion microbenchmarks of core-selection cost: how expensive one
//! fork/wakeup placement decision is under CFS vs Nest vs Smove.
//!
//! The paper notes (§5.6, hackbench) that Nest "adds a lot of code to
//! core selection, which could be optimized" — this benchmark quantifies
//! the analogous cost in the reproduction.

use std::rc::Rc;

use criterion::{criterion_group, criterion_main, Criterion};
use nest_freq::{FreqModel, Governor};
use nest_sched::{Cfs, KernelState, Nest, SchedEnv, SchedPolicy, Smove};
use nest_simcore::{CoreId, SimRng, TaskId, Time};
use nest_topology::{presets, Topology};

struct Fixture {
    k: KernelState,
    topo: Rc<Topology>,
    freq: FreqModel,
    rng: SimRng,
    task: TaskId,
}

fn fixture(occupied: usize) -> Fixture {
    let spec = presets::xeon_6130(4);
    let topo = Rc::new(Topology::new(spec.clone()));
    let mut k = KernelState::new(Rc::clone(&topo));
    let now = Time::ZERO;
    let mut last = TaskId(0);
    for i in 0..=occupied {
        let id = TaskId::from_index(i);
        k.register_task(id, now);
        if i < occupied {
            k.enqueue(now, id, CoreId::from_index(i));
            k.pick_next(now, CoreId::from_index(i));
        }
        last = id;
    }
    Fixture {
        k,
        topo,
        freq: FreqModel::new(&spec, Governor::Schedutil),
        rng: SimRng::new(7),
        task: last,
    }
}

fn bench_selection(c: &mut Criterion) {
    for (name, occupied) in [("empty_machine", 0usize), ("half_loaded", 64)] {
        let mut g = c.benchmark_group(format!("select_wakeup_{name}_6130x4"));
        let policies: Vec<(&str, Box<dyn SchedPolicy>)> = vec![
            ("CFS", Box::new(Cfs::new())),
            ("Nest", Box::new(Nest::new(128))),
            ("Smove", Box::new(Smove::new())),
        ];
        for (label, mut policy) in policies {
            let mut f = fixture(occupied);
            g.bench_function(label, |b| {
                b.iter(|| {
                    let mut env = SchedEnv {
                        now: Time::ZERO,
                        topo: &f.topo,
                        freq: &f.freq,
                        rng: &mut f.rng,
                    };
                    std::hint::black_box(policy.select_core_wakeup(
                        &mut f.k,
                        &mut env,
                        f.task,
                        CoreId(3),
                    ))
                })
            });
        }
        g.finish();
    }
}

criterion_group!(benches, bench_selection);
criterion_main!(benches);
