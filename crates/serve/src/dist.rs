//! Service-time distributions.
//!
//! Each request's service demand is drawn from one of four shapes, all
//! parameterized by the spec's mean so sweeping `dist` at a fixed
//! `service` compares equal offered work with different variability:
//!
//! * `det` — every request costs exactly the mean (M/D/n baseline).
//! * `exp` — exponential around the mean (the M/M/n textbook case).
//! * `lognorm` — lognormal with shape `sigma`, mean-preserving
//!   (`mu = ln(mean) − sigma²/2`), the empirical shape of RPC handlers.
//! * `bimodal` — mostly-cheap requests with a `p_heavy` chance of a
//!   `heavy`-sized one, the "one slow query" tail scenario.

use nest_simcore::SimRng;

use crate::spec::ServeSpec;

/// Cycles of work corresponding to `ms` milliseconds at the 3 GHz
/// reference frequency used to quote workload sizes.
pub fn cycles_at_3ghz(ms: f64) -> f64 {
    ms * 3.0e6
}

/// A service-time distribution shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServiceDist {
    /// Deterministic: every request costs the mean.
    Det,
    /// Exponential with the spec's mean.
    Exp,
    /// Lognormal with shape `sigma`, mean-preserving.
    Lognorm,
    /// Cheap requests with a `p_heavy` chance of a heavy one.
    Bimodal,
}

impl ServiceDist {
    /// Parses a registry key (`det`/`exp`/`lognorm`/`bimodal`).
    pub fn from_key(key: &str) -> Option<ServiceDist> {
        match key {
            "det" => Some(ServiceDist::Det),
            "exp" => Some(ServiceDist::Exp),
            "lognorm" => Some(ServiceDist::Lognorm),
            "bimodal" => Some(ServiceDist::Bimodal),
            _ => None,
        }
    }

    /// The canonical registry key.
    pub fn key(self) -> &'static str {
        match self {
            ServiceDist::Det => "det",
            ServiceDist::Exp => "exp",
            ServiceDist::Lognorm => "lognorm",
            ServiceDist::Bimodal => "bimodal",
        }
    }
}

/// Samples one request's service demand in cycles.
///
/// `scale` divides the spec's mean — fan-out materialization passes
/// `1/fanout` so the sub-tasks of a request jointly carry one request's
/// worth of work. Samples are floored at one cycle.
pub fn sample_service_cycles(spec: &ServeSpec, scale: f64, rng: &mut SimRng) -> u64 {
    let mean = cycles_at_3ghz(spec.service_ms) * scale;
    let raw = match spec.dist {
        ServiceDist::Det => mean,
        ServiceDist::Exp => rng.exponential(mean),
        ServiceDist::Lognorm => {
            let mu = mean.ln() - spec.sigma * spec.sigma / 2.0;
            rng.lognormal(mu, spec.sigma)
        }
        ServiceDist::Bimodal => {
            if rng.chance(spec.p_heavy) {
                cycles_at_3ghz(spec.heavy_ms) * scale
            } else {
                mean
            }
        }
    };
    raw.round().max(1.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec_with(dist: ServiceDist) -> ServeSpec {
        ServeSpec {
            dist,
            ..ServeSpec::default()
        }
    }

    #[test]
    fn keys_round_trip() {
        for d in [
            ServiceDist::Det,
            ServiceDist::Exp,
            ServiceDist::Lognorm,
            ServiceDist::Bimodal,
        ] {
            assert_eq!(ServiceDist::from_key(d.key()), Some(d));
        }
        assert_eq!(ServiceDist::from_key("gaussian"), None);
    }

    #[test]
    fn det_is_exact_and_scaled() {
        let spec = spec_with(ServiceDist::Det);
        let mut rng = SimRng::new(1);
        assert_eq!(sample_service_cycles(&spec, 1.0, &mut rng), 3_000_000);
        assert_eq!(sample_service_cycles(&spec, 0.25, &mut rng), 750_000);
    }

    #[test]
    fn random_dists_preserve_the_mean() {
        for dist in [ServiceDist::Exp, ServiceDist::Lognorm] {
            let spec = spec_with(dist);
            let mut rng = SimRng::new(2);
            let n = 20_000;
            let mean = (0..n)
                .map(|_| sample_service_cycles(&spec, 1.0, &mut rng) as f64)
                .sum::<f64>()
                / n as f64;
            let expected = cycles_at_3ghz(spec.service_ms);
            assert!(
                (mean - expected).abs() / expected < 0.05,
                "{dist:?} mean was {mean}"
            );
        }
    }

    #[test]
    fn bimodal_mixes_heavy_requests() {
        let spec = spec_with(ServiceDist::Bimodal);
        let mut rng = SimRng::new(3);
        let light = (cycles_at_3ghz(spec.service_ms)).round() as u64;
        let heavy = (cycles_at_3ghz(spec.heavy_ms)).round() as u64;
        let mut heavies = 0;
        let n = 10_000;
        for _ in 0..n {
            let v = sample_service_cycles(&spec, 1.0, &mut rng);
            assert!(v == light || v == heavy, "{v}");
            if v == heavy {
                heavies += 1;
            }
        }
        let frac = heavies as f64 / n as f64;
        assert!((frac - spec.p_heavy).abs() < 0.01, "heavy fraction {frac}");
    }
}
