//! Turning a spec into an injection plan.
//!
//! [`materialize()`] samples *everything* up front — arrival schedule,
//! per-request service demands, fan-out sub-task sizes — and returns
//! fixed scripts, so an injected request draws nothing from the engine's
//! RNG at run time. The plan is a pure function of `(spec, plan index,
//! base seed)`: the same triple yields byte-identical tasks no matter
//! how many harness workers run, which machine the cell lands on, or
//! what else shares the run (the `nest-faults` determinism recipe).

use nest_simcore::rng::mix64;
use nest_simcore::{Action, SimRng, TaskSpec};

use crate::dist::{cycles_at_3ghz, sample_service_cycles};
use crate::spec::ServeSpec;

/// Label prefix of request tasks; the metrics probe keys on it to pair
/// creations with exits.
pub const REQUEST_LABEL_PREFIX: &str = "req:";

/// Salt folded into the base seed so the serving stream is independent of
/// every other consumer of the cell seed (workload build, engine, faults).
pub const SERVE_STREAM_SALT: u64 = 0x5EB0_0B5E_57BE_A750;

/// Fraction of the mean service demand spent merging fan-out responses.
const MERGE_FRACTION: f64 = 0.05;

/// Materializes one serving stream: a time-sorted list of
/// `(arrival time ns, request task)` injections.
///
/// `plan` indexes the stream among the run's serving workloads (so two
/// composed `serve:` parts draw independent schedules); `seed` is the
/// cell seed.
///
/// # Panics
///
/// Panics if the spec fails [`ServeSpec::validate`].
pub fn materialize(spec: &ServeSpec, plan: usize, seed: u64) -> Vec<(u64, TaskSpec)> {
    if let Err(e) = spec.validate() {
        panic!("invalid serve spec: {e}");
    }
    let mut rng = SimRng::new(mix64(seed ^ SERVE_STREAM_SALT, plan as u64));
    let times = crate::arrival::arrival_times_ns(spec, &mut rng);
    times
        .into_iter()
        .enumerate()
        .map(|(i, at)| (at, build_request(spec, plan, i, &mut rng)))
        .collect()
}

/// Builds one request task: a single compute stage, or a fan-out chain
/// whose sub-task completions gate a final merge stage.
fn build_request(spec: &ServeSpec, plan: usize, i: usize, rng: &mut SimRng) -> TaskSpec {
    let label = format!("{REQUEST_LABEL_PREFIX}{plan}:{i}");
    if spec.fanout == 0 {
        let cycles = sample_service_cycles(spec, 1.0, rng);
        return TaskSpec::script(label, vec![Action::Compute { cycles }]);
    }
    // The sub-tasks jointly carry one request's worth of work; the parent
    // blocks on all of them (wakeup placement on the response path), then
    // pays a small merge cost before responding.
    let scale = 1.0 / spec.fanout as f64;
    let mut actions = Vec::with_capacity(spec.fanout as usize + 2);
    for k in 0..spec.fanout {
        let cycles = sample_service_cycles(spec, scale, rng);
        actions.push(Action::Fork {
            child: TaskSpec::script(
                format!("sub:{plan}:{i}:{k}"),
                vec![Action::Compute { cycles }],
            ),
        });
    }
    actions.push(Action::WaitChildren);
    let merge = (cycles_at_3ghz(spec.service_ms) * MERGE_FRACTION)
        .round()
        .max(1.0) as u64;
    actions.push(Action::Compute { cycles: merge });
    TaskSpec::script(label, actions)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drains a task's scripted actions into a comparable shape.
    fn shape(spec: TaskSpec) -> (String, Vec<String>) {
        let mut b = spec.behavior;
        let mut rng = SimRng::new(0);
        let mut out = Vec::new();
        loop {
            match b.next(&mut rng) {
                Action::Compute { cycles } => out.push(format!("C{cycles}")),
                Action::Fork { child } => {
                    let (l, inner) = shape(child);
                    out.push(format!("F[{l}:{}]", inner.join(",")));
                }
                Action::WaitChildren => out.push("W".into()),
                Action::Exit => break,
                other => out.push(format!("{other:?}")),
            }
        }
        (spec.label, out)
    }

    #[test]
    fn plan_is_deterministic_and_sorted() {
        let spec = ServeSpec {
            requests: 200,
            ..ServeSpec::default()
        };
        let a = materialize(&spec, 0, 42);
        let b = materialize(&spec, 0, 42);
        assert_eq!(a.len(), 200);
        assert!(a.windows(2).all(|w| w[0].0 < w[1].0), "sorted arrivals");
        let flat = |plan: Vec<(u64, TaskSpec)>| {
            plan.into_iter()
                .map(|(t, s)| (t, shape(s)))
                .collect::<Vec<_>>()
        };
        assert_eq!(flat(a), flat(b));
    }

    #[test]
    fn different_plan_index_or_seed_changes_the_stream() {
        let spec = ServeSpec {
            requests: 50,
            ..ServeSpec::default()
        };
        let times = |plan, seed| {
            materialize(&spec, plan, seed)
                .into_iter()
                .map(|(t, _)| t)
                .collect::<Vec<_>>()
        };
        assert_ne!(times(0, 42), times(1, 42));
        assert_ne!(times(0, 42), times(0, 43));
    }

    #[test]
    fn labels_carry_plan_and_request_index() {
        let spec = ServeSpec {
            requests: 3,
            ..ServeSpec::default()
        };
        let plan = materialize(&spec, 2, 1);
        let labels: Vec<&str> = plan.iter().map(|(_, s)| s.label.as_str()).collect();
        assert_eq!(labels, ["req:2:0", "req:2:1", "req:2:2"]);
        assert!(labels[0].starts_with(REQUEST_LABEL_PREFIX));
    }

    #[test]
    fn fanout_requests_fork_wait_and_merge() {
        let spec = ServeSpec {
            requests: 1,
            fanout: 3,
            ..ServeSpec::default()
        };
        let (_, task) = materialize(&spec, 0, 9).pop().unwrap();
        let (_, actions) = shape(task);
        assert_eq!(actions.len(), 5, "{actions:?}");
        assert!(actions[..3].iter().all(|a| a.starts_with("F[sub:0:0:")));
        assert_eq!(actions[3], "W");
        assert!(actions[4].starts_with('C'));
    }

    #[test]
    #[should_panic(expected = "invalid serve spec")]
    fn invalid_spec_panics() {
        let spec = ServeSpec {
            rate: 0.0,
            ..ServeSpec::default()
        };
        let _ = materialize(&spec, 0, 0);
    }
}
