//! Open-loop request-serving workload generation.
//!
//! Nest's deployment regime is latency-critical serving at low-to-moderate
//! utilization, where keeping tasks on warm cores pays off in tail latency
//! and energy. This crate models that regime as an *open-loop* request
//! stream: arrivals follow a configured stochastic process and do **not**
//! slow down when the system lags, so queueing delay shows up in the
//! measured response times instead of silently throttling the offered
//! load (the coordinated-omission mistake of closed-loop drivers).
//!
//! The pieces:
//!
//! * [`spec`] — [`ServeSpec`], the knob set (`rate`, `dist`, `fanout`,
//!   `slo`, …) shared with the scenario registry's `serve:` grammar.
//! * [`arrival`] — Poisson and bursty on-off (two-state MMPP) arrival
//!   processes, with optional diurnal sinusoidal load ramps.
//! * [`dist`] — pluggable service-time distributions (deterministic,
//!   exponential, lognormal, bimodal).
//! * [`materialize()`] — turns a spec into a time-sorted injection plan of
//!   [`nest_simcore::TaskSpec`]s, a pure function of `(spec, plan index,
//!   seed)` so runs are byte-identical at any worker count.
//! * [`pool`] — the request-driver / service-worker behaviours shared by
//!   the closed-loop `server` and `schbench` workload models.

#![deny(missing_docs)]

pub mod arrival;
pub mod dist;
pub mod materialize;
pub mod pool;
pub mod spec;

pub use arrival::ArrivalKind;
pub use dist::ServiceDist;
pub use materialize::{materialize, REQUEST_LABEL_PREFIX};
pub use pool::{register_behaviors, OpenLoopDriver, ServiceWorker};
pub use spec::{format_duration, parse_duration, ServeSpec};
