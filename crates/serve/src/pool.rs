//! Request-driver and service-worker behaviours.
//!
//! The closed-loop `server` and `schbench` workload models in
//! `nest-workloads` used to carry near-identical copies of these state
//! machines; they now share this module (re-exported from
//! `nest-workloads`). The behaviours are draw-for-draw identical to the
//! originals so existing scenarios stay byte-deterministic.

use nest_simcore::json::{self, Json};
use nest_simcore::{snap, Action, Behavior, BehaviorRegistry, ChannelId, SimRng};

/// Registry kind under which [`OpenLoopDriver`] snapshots itself.
const DRIVER_KIND: &str = "serve.driver";
/// Registry kind under which [`ServiceWorker`] snapshots itself.
const WORKER_KIND: &str = "serve.worker";

/// Registers this crate's behaviours with a snapshot-restore registry.
pub fn register_behaviors(reg: &mut BehaviorRegistry) {
    reg.register(DRIVER_KIND, |state, _| {
        Ok(Box::new(OpenLoopDriver {
            ch: ChannelId(snap::get_u32(state, "ch")?),
            remaining: snap::get_u32(state, "remaining")?,
            interarrival_us: snap::get_f64_bits(state, "interarrival_us")?,
            send_next: snap::get_bool(state, "send_next")?,
        }))
    });
    reg.register(WORKER_KIND, |state, _| {
        let reply = snap::field(state, "reply_ch")?;
        Ok(Box::new(ServiceWorker {
            request_ch: ChannelId(snap::get_u32(state, "request_ch")?),
            reply_ch: match reply.as_u64() {
                Some(ch) => Some(ChannelId(ch as u32)),
                None if reply.is_null() => None,
                None => return Err("reply_ch is neither null nor an integer".to_string()),
            },
            quota: snap::get_u32(state, "quota")?,
            service_cycles: snap::get_u64(state, "service_cycles")?,
            jitter: snap::get_f64_bits(state, "jitter")?,
            phase: snap::get_u32(state, "phase")? as u8,
        }))
    });
}

/// Open-loop request injector: alternates an exponential inter-arrival
/// sleep with a one-message send until `remaining` requests have been
/// issued, then exits. Constructed with `send_next = false` so the first
/// action is a sleep (requests never arrive at exactly t = 0).
pub struct OpenLoopDriver {
    /// Channel the requests are sent on.
    pub ch: ChannelId,
    /// Requests left to inject.
    pub remaining: u32,
    /// Mean inter-arrival time, µs (exponential).
    pub interarrival_us: f64,
    /// `true` when the next action is the send half of the cycle.
    pub send_next: bool,
}

impl Behavior for OpenLoopDriver {
    fn next(&mut self, rng: &mut SimRng) -> Action {
        if self.remaining == 0 {
            return Action::Exit;
        }
        if self.send_next {
            self.send_next = false;
            self.remaining -= 1;
            Action::Send {
                ch: self.ch,
                msgs: 1,
            }
        } else {
            self.send_next = true;
            Action::Sleep {
                ns: (rng.exponential(self.interarrival_us) * 1_000.0).max(100.0) as u64,
            }
        }
    }

    fn snap(&self) -> Option<(&'static str, Json)> {
        Some((
            DRIVER_KIND,
            json::obj(vec![
                ("ch", Json::u64(self.ch.0 as u64)),
                ("remaining", Json::u64(self.remaining as u64)),
                ("interarrival_us", snap::f64_bits(self.interarrival_us)),
                ("send_next", Json::Bool(self.send_next)),
            ]),
        ))
    }
}

/// Service worker with a fixed request quota: receive → compute, with an
/// optional reply send closing each iteration (`reply_ch`).
///
/// Without a reply channel this is the `server` worker (receive, service,
/// loop); with one it is the `schbench` worker (receive, think, reply).
/// The jittered compute draw happens once per iteration in both modes, so
/// the RNG stream matches the pre-unification behaviours exactly.
pub struct ServiceWorker {
    /// Channel requests arrive on.
    pub request_ch: ChannelId,
    /// Channel to acknowledge each request on, if the protocol replies.
    pub reply_ch: Option<ChannelId>,
    /// Requests left to service.
    pub quota: u32,
    /// Mean service demand per request, cycles.
    pub service_cycles: u64,
    /// Relative jitter applied to each request's demand (see
    /// [`SimRng::jitter`]).
    pub jitter: f64,
    /// Internal phase: 0 = receive, 1 = compute, 2 = reply.
    pub phase: u8,
}

impl Behavior for ServiceWorker {
    fn next(&mut self, rng: &mut SimRng) -> Action {
        if self.quota == 0 {
            return Action::Exit;
        }
        match self.phase {
            0 => {
                self.phase = 1;
                Action::Recv {
                    ch: self.request_ch,
                }
            }
            1 => {
                let work = Action::Compute {
                    cycles: rng.jitter(self.service_cycles, self.jitter).max(1),
                };
                match self.reply_ch {
                    Some(_) => self.phase = 2,
                    None => {
                        self.phase = 0;
                        self.quota -= 1;
                    }
                }
                work
            }
            _ => {
                self.phase = 0;
                self.quota -= 1;
                Action::Send {
                    ch: self.reply_ch.expect("phase 2 only exists with a reply"),
                    msgs: 1,
                }
            }
        }
    }

    fn snap(&self) -> Option<(&'static str, Json)> {
        Some((
            WORKER_KIND,
            json::obj(vec![
                ("request_ch", Json::u64(self.request_ch.0 as u64)),
                ("reply_ch", Json::opt_u64(self.reply_ch.map(|c| c.0 as u64))),
                ("quota", Json::u64(self.quota as u64)),
                ("service_cycles", Json::u64(self.service_cycles)),
                ("jitter", snap::f64_bits(self.jitter)),
                ("phase", Json::u64(self.phase as u64)),
            ]),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn action_seq(mut b: impl Behavior) -> String {
        let mut rng = SimRng::new(0);
        let mut seq = String::new();
        loop {
            match b.next(&mut rng) {
                Action::Recv { .. } => seq.push('R'),
                Action::Compute { .. } => seq.push('C'),
                Action::Send { .. } => seq.push('S'),
                Action::Sleep { .. } => seq.push('Z'),
                Action::Exit => break,
                _ => seq.push('?'),
            }
        }
        seq
    }

    #[test]
    fn driver_alternates_sleep_and_send() {
        let d = OpenLoopDriver {
            ch: ChannelId(0),
            remaining: 3,
            interarrival_us: 10.0,
            send_next: false,
        };
        assert_eq!(action_seq(d), "ZSZSZS");
    }

    #[test]
    fn worker_without_reply_loops_recv_compute() {
        let w = ServiceWorker {
            request_ch: ChannelId(0),
            reply_ch: None,
            quota: 3,
            service_cycles: 100,
            jitter: 0.6,
            phase: 0,
        };
        assert_eq!(action_seq(w), "RCRCRC");
    }

    #[test]
    fn worker_with_reply_loops_recv_compute_send() {
        let w = ServiceWorker {
            request_ch: ChannelId(0),
            reply_ch: Some(ChannelId(1)),
            quota: 2,
            service_cycles: 100,
            jitter: 0.3,
            phase: 0,
        };
        assert_eq!(action_seq(w), "RCSRCS");
    }

    #[test]
    fn compute_draw_matches_plain_jitter_stream() {
        // One jitter draw per iteration, nothing else: the worker's
        // compute sizes must replay a bare jitter sequence.
        let mut w = ServiceWorker {
            request_ch: ChannelId(0),
            reply_ch: None,
            quota: 4,
            service_cycles: 1_000,
            jitter: 0.6,
            phase: 0,
        };
        let mut wr = SimRng::new(5);
        let mut seen = Vec::new();
        loop {
            match w.next(&mut wr) {
                Action::Compute { cycles } => seen.push(cycles),
                Action::Exit => break,
                _ => {}
            }
        }
        let mut refr = SimRng::new(5);
        let expected: Vec<u64> = (0..4).map(|_| refr.jitter(1_000, 0.6).max(1)).collect();
        assert_eq!(seen, expected);
    }
}
