//! Arrival processes.
//!
//! Arrival times are generated up front at materialization — an open-loop
//! stream is a fixed schedule, independent of how the system keeps up —
//! and are a pure function of the spec and the generator handed in, so
//! the plan is byte-identical at any worker count.
//!
//! Two base processes:
//!
//! * `poisson` — memoryless arrivals at the spec's mean rate.
//! * `onoff` — a two-state Markov-modulated Poisson process: windows of
//!   mean length `on`/`off` alternate between a hot rate and a quiet
//!   rate whose ratio is `burst`, normalized so the *mean* offered load
//!   still equals `rate` (sweeping `arrival` compares equal load with
//!   different burstiness).
//!
//! A diurnal ramp (`ramp`/`amp`) modulates either base rate sinusoidally
//! by stretching each inter-arrival gap by the reciprocal of the
//! instantaneous rate factor — a discrete approximation of a
//! nonhomogeneous Poisson process that is exact in the limit of short
//! gaps.

use nest_simcore::time::{MILLISEC, SEC};
use nest_simcore::SimRng;

use crate::spec::ServeSpec;

/// An arrival-process shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArrivalKind {
    /// Memoryless arrivals at the mean rate.
    Poisson,
    /// Bursty two-state MMPP (on-off), mean-rate normalized.
    OnOff,
}

impl ArrivalKind {
    /// Parses a registry key (`poisson`/`onoff`).
    pub fn from_key(key: &str) -> Option<ArrivalKind> {
        match key {
            "poisson" => Some(ArrivalKind::Poisson),
            "onoff" => Some(ArrivalKind::OnOff),
            _ => None,
        }
    }

    /// The canonical registry key.
    pub fn key(self) -> &'static str {
        match self {
            ArrivalKind::Poisson => "poisson",
            ArrivalKind::OnOff => "onoff",
        }
    }
}

/// The instantaneous ramp factor at time `t_ns`: `1 + amp·sin(2πt/ramp)`,
/// or `1` when the ramp is disabled.
fn ramp_factor(spec: &ServeSpec, t_ns: u64) -> f64 {
    if spec.ramp_s <= 0.0 || spec.amp == 0.0 {
        return 1.0;
    }
    let t_s = t_ns as f64 / SEC as f64;
    1.0 + spec.amp * (std::f64::consts::TAU * t_s / spec.ramp_s).sin()
}

/// Generates the spec's full arrival schedule: `spec.requests` strictly
/// increasing nanosecond timestamps.
pub fn arrival_times_ns(spec: &ServeSpec, rng: &mut SimRng) -> Vec<u64> {
    let mut times = Vec::with_capacity(spec.requests as usize);
    let mean_gap_ns = SEC as f64 / spec.rate;
    match spec.arrival {
        ArrivalKind::Poisson => {
            let mut t = 0.0f64;
            while times.len() < spec.requests as usize {
                t += rng.exponential(mean_gap_ns) / ramp_factor(spec, t as u64);
                push_strictly_increasing(&mut times, t as u64);
            }
        }
        ArrivalKind::OnOff => {
            // Quiet-state rate such that the time-averaged rate over one
            // on+off cycle equals the spec's rate; hot = burst × quiet.
            let (on, off) = (spec.on_ms * MILLISEC as f64, spec.off_ms * MILLISEC as f64);
            let quiet = spec.rate * (on + off) / (spec.burst * on + off);
            let hot = spec.burst * quiet;
            let mut t = 0.0f64;
            let mut in_on = true;
            let mut window_end = rng.exponential(on);
            while times.len() < spec.requests as usize {
                let rate = if in_on { hot } else { quiet };
                let gap = rng.exponential(SEC as f64 / rate) / ramp_factor(spec, t as u64);
                if t + gap <= window_end {
                    t += gap;
                    push_strictly_increasing(&mut times, t as u64);
                } else {
                    // Cross into the next window and re-draw: exponential
                    // gaps are memoryless, so discarding the partial gap
                    // leaves the process unbiased.
                    t = window_end;
                    in_on = !in_on;
                    window_end += rng.exponential(if in_on { on } else { off });
                }
            }
        }
    }
    times
}

/// Appends `t`, bumped past the previous arrival so timestamps stay
/// strictly increasing even when a gap rounds to zero nanoseconds.
fn push_strictly_increasing(times: &mut Vec<u64>, t: u64) {
    let t = match times.last() {
        Some(prev) => t.max(prev + 1),
        None => t.max(1),
    };
    times.push(t);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_round_trip() {
        for k in [ArrivalKind::Poisson, ArrivalKind::OnOff] {
            assert_eq!(ArrivalKind::from_key(k.key()), Some(k));
        }
        assert_eq!(ArrivalKind::from_key("weibull"), None);
    }

    #[test]
    fn poisson_hits_the_mean_rate() {
        let spec = ServeSpec {
            requests: 20_000,
            ..ServeSpec::default()
        };
        let mut rng = SimRng::new(1);
        let times = arrival_times_ns(&spec, &mut rng);
        assert_eq!(times.len(), 20_000);
        assert!(times.windows(2).all(|w| w[0] < w[1]), "strictly increasing");
        let measured = times.len() as f64 / (*times.last().unwrap() as f64 / SEC as f64);
        assert!(
            (measured - spec.rate).abs() / spec.rate < 0.05,
            "rate was {measured}"
        );
    }

    #[test]
    fn onoff_preserves_mean_rate_but_adds_burstiness() {
        let base = ServeSpec {
            requests: 20_000,
            ..ServeSpec::default()
        };
        let onoff = ServeSpec {
            arrival: ArrivalKind::OnOff,
            ..base.clone()
        };
        let mut rng = SimRng::new(2);
        let times = arrival_times_ns(&onoff, &mut rng);
        let measured = times.len() as f64 / (*times.last().unwrap() as f64 / SEC as f64);
        assert!(
            (measured - onoff.rate).abs() / onoff.rate < 0.10,
            "rate was {measured}"
        );
        // Burstiness: the squared coefficient of variation of the gaps
        // must clearly exceed the Poisson value of 1.
        let cv2 = |ts: &[u64]| {
            let gaps: Vec<f64> = ts.windows(2).map(|w| (w[1] - w[0]) as f64).collect();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
            var / (mean * mean)
        };
        assert!(cv2(&times) > 1.5, "on-off cv² was {}", cv2(&times));
    }

    #[test]
    fn ramp_modulates_local_rate() {
        // One full period; the first half (factor > 1) must hold more
        // arrivals than the second.
        let spec = ServeSpec {
            requests: 8_000,
            rate: 400.0,
            ramp_s: 20.0,
            amp: 0.8,
            ..ServeSpec::default()
        };
        let mut rng = SimRng::new(3);
        let times = arrival_times_ns(&spec, &mut rng);
        let half = 10 * SEC;
        let first = times.iter().filter(|t| **t < half).count();
        let second = times
            .iter()
            .filter(|t| (half..2 * half).contains(*t))
            .count();
        assert!(
            first > second + second / 2,
            "first half {first}, second half {second}"
        );
    }

    #[test]
    fn schedule_is_deterministic() {
        let spec = ServeSpec::default();
        let a = arrival_times_ns(&spec, &mut SimRng::new(7));
        let b = arrival_times_ns(&spec, &mut SimRng::new(7));
        assert_eq!(a, b);
    }
}
