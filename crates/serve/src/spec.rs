//! The serving-workload knob set.
//!
//! [`ServeSpec`] is plain data: every field maps one-to-one onto a
//! `key=value` knob of the scenario registry's `serve:` grammar
//! (e.g. `serve:rate=500,dist=lognorm,slo=2ms`). Parsing and canonical
//! rendering live in `nest-scenario` next to the other workload grammars;
//! this module only hosts the shared duration helpers so `slo=2ms` uses
//! the same `ns`/`us`/`ms`/`s` suffix convention as the fault-plan
//! grammar.

use nest_simcore::time::{MICROSEC, MILLISEC, SEC};

use crate::arrival::ArrivalKind;
use crate::dist::ServiceDist;

/// Default SLO: 2 ms wakeup→completion.
pub const DEFAULT_SLO_NS: u64 = 2 * MILLISEC;

/// Parameters of one open-loop serving stream.
///
/// The defaults describe a moderate-load latency-critical service: 200
/// requests/s of ~1 ms exponential work against a 2 ms SLO — enough to
/// keep a couple of cores warm without saturating a socket, which is the
/// operating point Nest targets.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeSpec {
    /// Mean offered load, requests per second.
    pub rate: f64,
    /// Total requests to inject.
    pub requests: u32,
    /// Service-time distribution.
    pub dist: ServiceDist,
    /// Mean service time per request, ms of work at 3 GHz.
    pub service_ms: f64,
    /// Shape of the lognormal service distribution (`dist=lognorm`).
    pub sigma: f64,
    /// Heavy-mode service time, ms at 3 GHz (`dist=bimodal`).
    pub heavy_ms: f64,
    /// Probability of a heavy request (`dist=bimodal`).
    pub p_heavy: f64,
    /// Microservice fan-out: each request forks this many sub-tasks whose
    /// completions gate the response (`0` = a single-stage request).
    pub fanout: u32,
    /// Arrival process.
    pub arrival: ArrivalKind,
    /// Burst intensity ratio of the on-off process: the ON-state rate is
    /// `burst` times the OFF-state rate (`arrival=onoff`).
    pub burst: f64,
    /// Mean ON-window length, ms (`arrival=onoff`).
    pub on_ms: f64,
    /// Mean OFF-window length, ms (`arrival=onoff`).
    pub off_ms: f64,
    /// Diurnal ramp period in seconds; `0` disables the ramp.
    pub ramp_s: f64,
    /// Relative amplitude of the ramp's rate modulation, in `[0, 1)`.
    pub amp: f64,
    /// Service-level objective on wakeup→completion latency, ns.
    pub slo_ns: u64,
}

impl Default for ServeSpec {
    fn default() -> ServeSpec {
        ServeSpec {
            rate: 200.0,
            requests: 2_000,
            dist: ServiceDist::Exp,
            service_ms: 1.0,
            sigma: 0.5,
            heavy_ms: 10.0,
            p_heavy: 0.05,
            fanout: 0,
            arrival: ArrivalKind::Poisson,
            burst: 8.0,
            on_ms: 50.0,
            off_ms: 200.0,
            ramp_s: 0.0,
            amp: 0.5,
            slo_ns: DEFAULT_SLO_NS,
        }
    }
}

impl ServeSpec {
    /// The workload name shown in figures (e.g. `"serve-r200"`).
    pub fn name(&self) -> String {
        format!("serve-r{}", self.rate)
    }

    /// Checks internal consistency; returns the offending description on
    /// failure. The scenario grammar validates per-knob ranges at parse
    /// time — this is the backstop for specs built in code.
    pub fn validate(&self) -> Result<(), String> {
        let pos = |name: &str, v: f64| {
            if v.is_finite() && v > 0.0 {
                Ok(())
            } else {
                Err(format!("{name} must be positive and finite, got {v}"))
            }
        };
        pos("rate", self.rate)?;
        if self.requests == 0 {
            return Err("requests must be positive".into());
        }
        pos("service", self.service_ms)?;
        pos("sigma", self.sigma)?;
        pos("heavy", self.heavy_ms)?;
        if !(0.0..=1.0).contains(&self.p_heavy) {
            return Err(format!("p_heavy must be in [0, 1], got {}", self.p_heavy));
        }
        if self.burst < 1.0 || !self.burst.is_finite() {
            return Err(format!("burst must be >= 1, got {}", self.burst));
        }
        pos("on", self.on_ms)?;
        pos("off", self.off_ms)?;
        if self.ramp_s < 0.0 || !self.ramp_s.is_finite() {
            return Err(format!("ramp must be >= 0, got {}", self.ramp_s));
        }
        if !(0.0..1.0).contains(&self.amp) {
            return Err(format!("amp must be in [0, 1), got {}", self.amp));
        }
        if self.slo_ns == 0 {
            return Err("slo must be positive".into());
        }
        Ok(())
    }
}

/// Parses a duration with a mandatory `ns`/`us`/`ms`/`s` unit suffix
/// (`"2ms"`, `"500us"`); `None` on malformed input. Mirrors the
/// fault-plan grammar's duration convention.
pub fn parse_duration(s: &str) -> Option<u64> {
    let s = s.trim();
    let (digits, unit) = s.split_at(s.find(|c: char| !c.is_ascii_digit())?);
    let n: u64 = digits.parse().ok()?;
    let scale = match unit {
        "ns" => 1,
        "us" => MICROSEC,
        "ms" => MILLISEC,
        "s" => SEC,
        _ => return None,
    };
    n.checked_mul(scale)
}

/// Renders a nanosecond duration in the largest exact unit (`fmt` inverse
/// of [`parse_duration`]).
pub fn format_duration(ns: u64) -> String {
    if ns == 0 {
        return "0ns".to_string();
    }
    for (scale, unit) in [(SEC, "s"), (MILLISEC, "ms"), (MICROSEC, "us")] {
        if ns.is_multiple_of(scale) {
            return format!("{}{unit}", ns / scale);
        }
    }
    format!("{ns}ns")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_validates() {
        assert_eq!(ServeSpec::default().validate(), Ok(()));
        assert_eq!(ServeSpec::default().name(), "serve-r200");
    }

    #[test]
    fn validation_rejects_bad_knobs() {
        for f in [
            |s: &mut ServeSpec| s.rate = 0.0,
            |s: &mut ServeSpec| s.requests = 0,
            |s: &mut ServeSpec| s.service_ms = -1.0,
            |s: &mut ServeSpec| s.p_heavy = 1.5,
            |s: &mut ServeSpec| s.burst = 0.5,
            |s: &mut ServeSpec| s.amp = 1.0,
            |s: &mut ServeSpec| s.slo_ns = 0,
        ] {
            let mut s = ServeSpec::default();
            f(&mut s);
            assert!(s.validate().is_err());
        }
    }

    #[test]
    fn duration_round_trips() {
        for (s, ns) in [
            ("2ms", 2 * MILLISEC),
            ("500us", 500 * MICROSEC),
            ("3s", 3 * SEC),
            ("7ns", 7),
        ] {
            assert_eq!(parse_duration(s), Some(ns), "{s}");
            assert_eq!(format_duration(ns), s, "{ns}");
        }
        for bad in ["", "2", "ms", "2 ms", "2m", "-1ms"] {
            assert_eq!(parse_duration(bad), None, "{bad:?}");
        }
    }
}
