//! Property-based tests for the scheduler substrate: PELT bounds, kernel
//! runqueue consistency, and Nest's structural invariants under random
//! operation sequences.

// Property-based tests need the external `proptest` crate; the offline
// default build compiles this file to an empty test binary. Enable with
// `--features proptest` after adding proptest to [dev-dependencies].
#![cfg(feature = "proptest")]

use std::rc::Rc;

use proptest::prelude::*;

use nest_freq::{FreqModel, Governor};
use nest_sched::{policy::IdleReason, KernelState, Nest, NestParams, Pelt, SchedEnv, SchedPolicy};
use nest_simcore::{CoreId, SimRng, TaskId, Time};
use nest_topology::{presets, Topology};

proptest! {
    /// PELT stays in [0, 1] and is monotone while continuously running /
    /// idle, for arbitrary event sequences.
    #[test]
    fn pelt_bounded_and_monotone(
        steps in prop::collection::vec((1u64..100_000_000, any::<bool>()), 1..100),
    ) {
        let mut p = Pelt::new(Time::ZERO);
        let mut t = Time::ZERO;
        let mut prev = 0.0f64;
        let mut prev_running = false;
        for (dt, running) in steps {
            t += dt;
            let v = p.value(t);
            prop_assert!((0.0..=1.0).contains(&v), "{v}");
            if prev_running {
                prop_assert!(v >= prev - 1e-12, "running must not decrease");
            } else {
                prop_assert!(v <= prev + 1e-12, "idle must not increase");
            }
            p.set_running(t, running);
            prev = v;
            prev_running = running;
        }
    }

    /// Kernel enqueue/pick/put sequences never lose or duplicate tasks.
    #[test]
    fn kernel_conserves_tasks(
        ops in prop::collection::vec((0u32..8, 0u32..16), 1..300),
    ) {
        let topo = Rc::new(Topology::new(presets::xeon_6130(2)));
        let mut k = KernelState::new(topo);
        let mut now = Time::ZERO;
        let n_tasks = 16usize;
        // Track each task's location: None = outside, Some(core) = on core.
        let mut queued: Vec<Option<u32>> = vec![None; n_tasks];
        let mut running: Vec<Option<u32>> = vec![None; n_tasks];
        for i in 0..n_tasks {
            k.register_task(TaskId::from_index(i), now);
        }
        for (op, tid) in ops {
            now += 100_000;
            let task = TaskId(tid % n_tasks as u32);
            let ti = task.index();
            let core = CoreId(tid % 64);
            match op {
                0..=2 => {
                    // Enqueue if the task is currently outside.
                    if queued[ti].is_none() && running[ti].is_none() {
                        k.enqueue(now, task, core);
                        queued[ti] = Some(core.0);
                    }
                }
                3..=4 => {
                    // Pick on a core with no current task.
                    if k.core(core).curr.is_none() {
                        if let Some(picked) = k.pick_next(now, core) {
                            prop_assert_eq!(queued[picked.index()], Some(core.0));
                            queued[picked.index()] = None;
                            running[picked.index()] = Some(core.0);
                        }
                    }
                }
                5..=6 => {
                    // Put the current task (block).
                    if k.core(core).curr.is_some() {
                        let put = k.put_curr(now, core);
                        prop_assert_eq!(running[put.index()], Some(core.0));
                        running[put.index()] = None;
                    }
                }
                _ => {
                    // Steal from the core's queue.
                    if let Some(stolen) = k.steal_queued(core) {
                        prop_assert_eq!(queued[stolen.index()], Some(core.0));
                        queued[stolen.index()] = None;
                    }
                }
            }
            // Cross-check counts per core.
            for c in 0..64u32 {
                let nq = queued.iter().filter(|&&q| q == Some(c)).count();
                prop_assert_eq!(k.core(CoreId(c)).rq.len(), nq);
            }
        }
    }

    /// Nest's structural invariants hold under arbitrary select/idle
    /// sequences: nests stay disjoint, reserve bounded by R_max, chosen
    /// cores are in range.
    #[test]
    fn nest_structural_invariants(
        ops in prop::collection::vec((0u32..4, 0u32..64, 0u32..32), 1..200),
        r_max in 0usize..8,
    ) {
        let spec = presets::xeon_6130(2);
        let topo = Rc::new(Topology::new(spec.clone()));
        let mut k = KernelState::new(Rc::clone(&topo));
        let freq = FreqModel::new(&spec, Governor::Schedutil);
        let mut rng = SimRng::new(5);
        let params = NestParams { r_max, ..NestParams::default() };
        let mut nest = Nest::with_params(64, params);
        let mut now = Time::ZERO;
        let mut n_tasks = 0usize;
        for (op, core, tid) in ops {
            now += 500_000;
            let core = CoreId(core);
            // Ensure the referenced task exists.
            while n_tasks <= tid as usize {
                k.register_task(TaskId::from_index(n_tasks), now);
                n_tasks += 1;
            }
            let task = TaskId(tid);
            let mut env = SchedEnv {
                now,
                topo: &topo,
                freq: &freq,
                rng: &mut rng,
            };
            match op {
                0 => {
                    let p = nest.select_core_fork(&mut k, &mut env, task, core);
                    prop_assert!(p.core.index() < 64);
                    // Occupy the chosen core if free, so future searches
                    // see a realistic machine.
                    if k.core(p.core).is_idle()
                        && k.task(task).prev_core.is_none()
                        && !k.cores[p.core.index()].rq.iter().any(|&(_, t)| t == task)
                    {
                        k.enqueue(now, task, p.core);
                        k.pick_next(now, p.core);
                    }
                }
                1 => {
                    let p = nest.select_core_wakeup(&mut k, &mut env, task, core);
                    prop_assert!(p.core.index() < 64);
                }
                2 => {
                    if k.core(core).curr.is_some() {
                        k.put_curr(now, core);
                        nest.on_core_idle(&mut k, &mut env, core, IdleReason::TaskExited);
                    }
                }
                _ => {
                    if k.core(core).is_idle() {
                        nest.on_core_idle(&mut k, &mut env, core, IdleReason::TaskBlocked);
                    }
                }
            }
            prop_assert!(
                nest.primary().is_disjoint(nest.reserve()),
                "nests overlap"
            );
            prop_assert!(nest.reserve().len() <= r_max, "reserve overflow");
        }
    }
}
