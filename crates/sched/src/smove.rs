//! The Smove baseline (§2.2 of the paper; Gouicem et al., ATC 2020).
//!
//! Smove addresses *frequency inversion*: a parent at high frequency forks
//! or wakes a child, CFS places the child on an idle (hence possibly slow)
//! core, and the parent immediately blocks waiting for the child. Smove
//! tentatively places the child on the parent's (waker's) core instead —
//! but only when the core CFS chose was observed at a *low frequency at
//! the last clock tick* — and arms a timer that migrates the child to
//! CFS's original choice if it has not started running in time.
//!
//! The tick-sampled observation is why Smove under-triggers on the 6130
//! and 5218 (§5.2): a newly idle core usually has no tick observing a low
//! frequency before it is chosen again, so Smove believes the core is
//! still fast and does nothing.

use nest_simcore::{CoreId, Freq, PlacementPath, TaskId};

use crate::cfs::{self, CfsParams};
use crate::kernel::KernelState;
use crate::policy::{IdleAction, IdleReason, Placement, SchedEnv, SchedPolicy, SmoveArm};

/// Smove tunables.
#[derive(Clone, Debug)]
pub struct SmoveParams {
    /// Migration-timer delay (how long the child may wait on the
    /// parent's core before being moved to CFS's choice).
    pub timer_delay_ns: u64,
    /// A CFS-chosen core triggers the Smove placement when its
    /// tick-observed frequency is strictly below this fraction of the
    /// nominal frequency.
    pub low_freq_factor: f64,
}

impl Default for SmoveParams {
    fn default() -> SmoveParams {
        SmoveParams {
            timer_delay_ns: 100_000,
            low_freq_factor: 1.0,
        }
    }
}

/// The Smove policy: CFS placement plus the tentative parent-core path.
pub struct Smove {
    params: SmoveParams,
    cfs_params: CfsParams,
}

impl Smove {
    /// Creates Smove with default parameters.
    pub fn new() -> Smove {
        Smove {
            params: SmoveParams::default(),
            cfs_params: CfsParams::default(),
        }
    }

    /// Creates Smove with explicit parameters.
    pub fn with_params(params: SmoveParams) -> Smove {
        Smove {
            params,
            cfs_params: CfsParams::default(),
        }
    }

    fn threshold(&self, env: &SchedEnv<'_>) -> Freq {
        let khz = env.topo.spec().freq.fnominal.as_khz() as f64 * self.params.low_freq_factor;
        Freq::from_khz(khz as u64)
    }

    /// Applies the Smove decision to a CFS choice.
    fn decorate(
        &self,
        env: &SchedEnv<'_>,
        cfs_choice: CoreId,
        parent_core: CoreId,
        base_path: PlacementPath,
    ) -> Placement {
        let observed = env.freq.observed_freq(cfs_choice);
        if cfs_choice != parent_core && observed < self.threshold(env) {
            Placement {
                core: parent_core,
                path: PlacementPath::SmoveParent,
                smove_fallback: Some(SmoveArm {
                    fallback: cfs_choice,
                    delay_ns: self.params.timer_delay_ns,
                }),
            }
        } else {
            Placement::simple(cfs_choice, base_path)
        }
    }
}

impl Default for Smove {
    fn default() -> Smove {
        Smove::new()
    }
}

impl SchedPolicy for Smove {
    fn name(&self) -> &'static str {
        "Smove"
    }

    fn select_core_fork(
        &mut self,
        k: &mut KernelState,
        env: &mut SchedEnv<'_>,
        _task: TaskId,
        parent_core: CoreId,
    ) -> Placement {
        let core = cfs::select_fork(k, env, parent_core, false);
        self.decorate(env, core, parent_core, PlacementPath::CfsFork)
    }

    fn select_core_wakeup(
        &mut self,
        k: &mut KernelState,
        env: &mut SchedEnv<'_>,
        task: TaskId,
        waker_core: CoreId,
    ) -> Placement {
        let core = cfs::select_wakeup(k, env, task, waker_core, &self.cfs_params, false, false);
        self.decorate(env, core, waker_core, PlacementPath::CfsWakeup)
    }

    fn on_core_idle(
        &mut self,
        k: &mut KernelState,
        env: &mut SchedEnv<'_>,
        core: CoreId,
        _reason: IdleReason,
    ) -> IdleAction {
        IdleAction {
            pull_from: cfs::newidle_pull_source(k, env, core),
            spin_ticks: 0,
        }
    }

    fn on_tick(
        &mut self,
        k: &mut KernelState,
        env: &mut SchedEnv<'_>,
        core: CoreId,
    ) -> Option<CoreId> {
        cfs::periodic_pull_source(k, env, core, &self.cfs_params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;

    use nest_freq::{Activity, FreqModel, Governor};
    use nest_simcore::{SimRng, Time, MILLISEC};
    use nest_topology::{presets, Topology};

    struct Fixture {
        k: KernelState,
        topo: Rc<Topology>,
        freq: FreqModel,
        rng: SimRng,
    }

    fn fixture() -> Fixture {
        let spec = presets::xeon_6130(2);
        let topo = Rc::new(Topology::new(spec.clone()));
        Fixture {
            k: KernelState::new(Rc::clone(&topo)),
            freq: FreqModel::new(&spec, Governor::Schedutil),
            topo,
            rng: SimRng::new(1),
        }
    }

    fn spawn(f: &mut Fixture, now: Time) -> TaskId {
        let id = TaskId::from_index(f.k.tasks.len());
        f.k.register_task(id, now);
        id
    }

    #[test]
    fn low_observed_freq_triggers_parent_placement() {
        let mut f = fixture();
        // Observations only update on *active* cores (tickless idle), so
        // the low-frequency observation must be taken while the core is
        // briefly busy at its decayed frequency: let the idle machine
        // decay to fmin, activate the cores, sample immediately (before
        // any ramp tick), then idle again.
        let mut t = Time::ZERO;
        for _ in 0..120 {
            t += MILLISEC;
            f.freq.advance(t, MILLISEC, &mut |_| 0.0);
        }
        for c in 0..64 {
            f.freq.set_activity(t, CoreId(c), nest_freq::Activity::Busy);
        }
        f.freq.sample_observed();
        for c in 0..64 {
            f.freq.set_activity(t, CoreId(c), nest_freq::Activity::Idle);
        }
        // The parent must actually be running on core 4, otherwise CFS
        // would pick core 4 itself and no redirect is possible.
        let parent = spawn(&mut f, Time::ZERO);
        f.k.enqueue(Time::ZERO, parent, CoreId(4));
        f.k.pick_next(Time::ZERO, CoreId(4));
        let t = spawn(&mut f, Time::ZERO);
        let mut env = SchedEnv {
            now: Time::ZERO,
            topo: &f.topo,
            freq: &f.freq,
            rng: &mut f.rng,
        };
        let mut s = Smove::new();
        let p = s.select_core_fork(&mut f.k, &mut env, t, CoreId(4));
        assert_eq!(p.core, CoreId(4));
        assert_eq!(p.path, PlacementPath::SmoveParent);
        let arm = p.smove_fallback.expect("timer armed");
        assert_ne!(arm.fallback, CoreId(4));
        assert_eq!(arm.delay_ns, 100_000);
    }

    #[test]
    fn high_observed_freq_leaves_cfs_choice() {
        let mut f = fixture();
        // Warm up core 0's physical core to top turbo, then sample.
        f.freq.set_activity(Time::ZERO, CoreId(0), Activity::Busy);
        let mut t = Time::ZERO;
        for _ in 0..50 {
            t += MILLISEC;
            f.freq.advance(t, MILLISEC, &mut |_| 1.0);
        }
        f.freq.set_activity(t, CoreId(0), Activity::Idle);
        f.freq.sample_observed();
        let task = spawn(&mut f, t);
        f.k.task_mut(task).prev_core = Some(CoreId(0));
        let mut env = SchedEnv {
            now: t,
            topo: &f.topo,
            freq: &f.freq,
            rng: &mut f.rng,
        };
        let mut s = Smove::new();
        // CFS picks core 0 (idle previous); observed 3.7 GHz >= nominal.
        let p = s.select_core_wakeup(&mut f.k, &mut env, task, CoreId(1));
        assert_eq!(p.core, CoreId(0));
        assert_eq!(p.path, PlacementPath::CfsWakeup);
        assert!(p.smove_fallback.is_none());
    }

    #[test]
    fn same_core_choice_never_arms_timer() {
        let mut f = fixture();
        f.freq.sample_observed();
        let task = spawn(&mut f, Time::ZERO);
        f.k.task_mut(task).prev_core = Some(CoreId(4));
        let mut env = SchedEnv {
            now: Time::ZERO,
            topo: &f.topo,
            freq: &f.freq,
            rng: &mut f.rng,
        };
        let mut s = Smove::new();
        // CFS returns the waker's own core: no redirect possible.
        let p = s.select_core_wakeup(&mut f.k, &mut env, task, CoreId(4));
        assert_eq!(p.core, CoreId(4));
        assert!(p.smove_fallback.is_none());
    }
}
