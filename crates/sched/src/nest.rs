//! The Nest scheduling policy (§3, §4 of the paper).
//!
//! Nest maintains two CPU sets: the **primary nest** (cores in use or
//! recently used, expected to be warm) and the **reserve nest** (cores that
//! left the primary nest, or that CFS chose recently and that have not yet
//! proved their necessity). Core selection searches the primary nest, then
//! the reserve nest, then falls back to CFS — a "block of code placed in
//! front of the core selection function of CFS" (§7).
//!
//! Movements between the nests (Figure 1):
//! * reserve hit → promoted to primary;
//! * CFS fallback → chosen core joins the reserve (if it has room);
//! * primary core unused for `P_remove` ticks → demoted to reserve (or
//!   discarded if full) as soon as a task tries to use it (compaction);
//! * task exits leaving its core idle → immediate demotion to reserve;
//! * impatient task (previous core busy more than `R_impatient` times in a
//!   row) skips the primary search and its chosen core joins the primary
//!   nest directly, growing it.
//!
//! Each mechanism has a feature flag so the §5.2/§5.3 ablation studies can
//! disable it.

use nest_simcore::json::{self, Json};
use nest_simcore::{profile, snap, CcxId, CoreId, PlacementPath, TaskId, TraceEvent, TICK_NS};
use nest_topology::{CpuSet, Topology};

use crate::cfs::{self, idle_ok, CfsParams};
use crate::kernel::KernelState;
use crate::policy::{IdleAction, IdleReason, Placement, SchedEnv, SchedPolicy};

/// The domain a nest is local to.
///
/// The paper's Nest is machine-global: one primary and one reserve nest
/// whose searches range over the whole machine, nearest die first. On
/// multi-CCX machines that lets a nest straddle last-level caches, so the
/// domain-local variant confines patient tasks to the nest members of
/// their own CCX; only *impatient* tasks (previous core busy more than
/// `R_impatient` consecutive wakeups) overflow, searching the other CCXs
/// nearest-by-NUMA-distance first.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum NestDomain {
    /// One machine-wide nest (the paper's behavior).
    #[default]
    Machine,
    /// Per-CCX nests with impatience-driven overflow to nearby CCXs.
    Ccx,
}

/// Nest tunables (paper Table 1) and ablation feature flags.
#[derive(Clone, Debug)]
pub struct NestParams {
    /// Ticks an idle primary-nest core may stay unused before it becomes
    /// eligible for compaction (Table 1: 2 ticks = 8 ms).
    pub p_remove_ticks: u64,
    /// Maximum size of the reserve nest (Table 1: 5).
    pub r_max: usize,
    /// Consecutive busy-previous-core wakeups tolerated before a task is
    /// labeled impatient (Table 1: 2).
    pub r_impatient: u32,
    /// Maximum idle-spin duration in ticks (Table 1: 2).
    pub s_max_ticks: u32,
    /// Core from which reserve-nest searches start (the core where the
    /// Nest "system call" ran, §3.1); fixed to reduce dispersal.
    pub anchor_core: CoreId,
    /// The domain nests are local to ([`NestDomain::Machine`] is the
    /// paper's machine-global behavior).
    pub domain: NestDomain,
    /// Ablation: use the reserve nest at all.
    pub enable_reserve: bool,
    /// Ablation: apply nest compaction.
    pub enable_compaction: bool,
    /// Ablation: spin on newly idle cores.
    pub enable_spin: bool,
    /// Ablation: favor the attached core (history of 2, §3.3).
    pub enable_attachment: bool,
    /// Ablation: extend CFS wakeup search to all dies (§3.4).
    pub enable_wakeup_work_conservation: bool,
    /// Ablation: the compare-and-swap placement reservation flag (§3.4).
    pub enable_reservation_flag: bool,
}

impl Default for NestParams {
    fn default() -> NestParams {
        NestParams {
            p_remove_ticks: 2,
            r_max: 5,
            r_impatient: 2,
            s_max_ticks: 2,
            anchor_core: CoreId(0),
            domain: NestDomain::Machine,
            enable_reserve: true,
            enable_compaction: true,
            enable_spin: true,
            enable_attachment: true,
            enable_wakeup_work_conservation: true,
            enable_reservation_flag: true,
        }
    }
}

/// One nest (primary or reserve): the full membership set plus a
/// per-CCX decomposition maintained incrementally on every insert and
/// remove. Searches iterate exactly the nest members of one LLC domain
/// instead of filtering the whole span core by core (DESIGN.md §4.2). On
/// the Table 2 machines the CCX *is* the socket, so the decomposition is
/// exactly the per-socket one the code used to keep.
///
/// The per-domain sets are allocated lazily on first mutation (the
/// topology is not available at construction time); until then every
/// domain reads as empty, matching the empty `all` set.
#[derive(Clone, Debug)]
struct NestSet {
    all: CpuSet,
    per_domain: Vec<CpuSet>,
}

impl NestSet {
    fn new(n_cores: usize) -> NestSet {
        NestSet {
            all: CpuSet::new(n_cores),
            per_domain: Vec::new(),
        }
    }

    fn ensure_domains(&mut self, topo: &Topology) {
        if self.per_domain.is_empty() {
            self.per_domain = vec![CpuSet::new(self.all.capacity()); topo.n_ccx()];
        }
    }

    fn insert(&mut self, topo: &Topology, core: CoreId) -> bool {
        self.ensure_domains(topo);
        let added = self.all.insert(core);
        if added {
            self.per_domain[topo.ccx_of(core).index()].insert(core);
        }
        added
    }

    fn remove(&mut self, topo: &Topology, core: CoreId) -> bool {
        let removed = self.all.remove(core);
        if removed {
            self.per_domain[topo.ccx_of(core).index()].remove(core);
        }
        removed
    }

    fn contains(&self, core: CoreId) -> bool {
        self.all.contains(core)
    }

    fn len(&self) -> usize {
        self.all.len()
    }

    /// The members in CCX `cx` (`None` while no mutation has happened
    /// yet, i.e. the nest is empty).
    fn domain_members(&self, cx: CcxId) -> Option<&CpuSet> {
        self.per_domain.get(cx.index())
    }
}

/// The Nest policy.
pub struct Nest {
    params: NestParams,
    cfs_params: CfsParams,
    primary: NestSet,
    reserve: NestSet,
    /// Reusable buffer for the primary search order; the search may
    /// demote cores mid-iteration, so it walks a snapshot.
    scratch_order: Vec<CoreId>,
    /// Nest-lifecycle trace events queued for the engine, which drains
    /// them via [`SchedPolicy::drain_trace`] after each callback.
    trace: Vec<TraceEvent>,
}

impl Nest {
    /// Creates Nest with the paper's Table 1 parameters.
    pub fn new(n_cores: usize) -> Nest {
        Nest::with_params(n_cores, NestParams::default())
    }

    /// Creates Nest with explicit parameters.
    pub fn with_params(n_cores: usize, params: NestParams) -> Nest {
        Nest {
            params,
            cfs_params: CfsParams::default(),
            primary: NestSet::new(n_cores),
            reserve: NestSet::new(n_cores),
            scratch_order: Vec::new(),
            trace: Vec::new(),
        }
    }

    /// Returns the current primary nest (for tests and metrics).
    pub fn primary(&self) -> &CpuSet {
        &self.primary.all
    }

    /// Returns the current reserve nest (for tests and metrics).
    pub fn reserve(&self) -> &CpuSet {
        &self.reserve.all
    }

    /// Returns the parameters.
    pub fn params(&self) -> &NestParams {
        &self.params
    }

    fn respect_pending(&self) -> bool {
        self.params.enable_reservation_flag
    }

    /// Current `(primary, reserve)` sizes, for trace-event payloads.
    fn sizes(&self) -> (u32, u32) {
        (self.primary.len() as u32, self.reserve.len() as u32)
    }

    /// Demotes a primary core to the reserve, or discards it if the
    /// reserve is full (or disabled).
    fn demote(&mut self, topo: &Topology, core: CoreId) {
        self.demote_as(topo, core, false);
    }

    /// Demotion body; `compaction` selects the trace-event flavor.
    fn demote_as(&mut self, topo: &Topology, core: CoreId, compaction: bool) {
        if !self.primary.remove(topo, core) {
            return;
        }
        if self.params.enable_reserve && self.reserve.len() < self.params.r_max {
            self.reserve.insert(topo, core);
        }
        let (primary, reserve) = self.sizes();
        self.trace.push(if compaction {
            TraceEvent::NestCompaction {
                core,
                primary,
                reserve,
            }
        } else {
            TraceEvent::NestShrink {
                core,
                primary,
                reserve,
            }
        });
    }

    /// Promotes a core into the primary nest, removing it from the
    /// reserve if present.
    fn promote(&mut self, topo: &Topology, core: CoreId) {
        self.reserve.remove(topo, core);
        if self.primary.insert(topo, core) {
            let (primary, reserve) = self.sizes();
            self.trace.push(TraceEvent::NestExpand {
                core,
                primary,
                reserve,
            });
        }
    }

    /// `true` if an idle primary core has been unused long enough for
    /// compaction (§3.1).
    fn compaction_eligible(&self, k: &KernelState, env: &SchedEnv<'_>, core: CoreId) -> bool {
        self.params.enable_compaction
            && k.core(core).is_idle()
            && env.now.saturating_since(k.core(core).last_used)
                >= self.params.p_remove_ticks * TICK_NS
    }

    /// Searches the primary nest, applying lazy compaction.
    ///
    /// Search order: same LLC domain as `ref_core` first (wrapping from
    /// `ref_core`), then the other domains nearest-by-distance — iterating
    /// the per-CCX membership sets directly. With `confine`, only that
    /// CCX's members are considered (the domain-local variant's patient
    /// path). Compaction demotes cores mid-search, so the order is
    /// snapshotted into a reusable buffer (the one allocation the old
    /// clone-the-nest scan also paid, but amortized across calls).
    fn search_primary(
        &mut self,
        k: &KernelState,
        env: &SchedEnv<'_>,
        ref_core: CoreId,
        confine: Option<CcxId>,
    ) -> Option<CoreId> {
        let _prof = profile::span(profile::Subsystem::NestPrimaryScan);
        let respect = self.respect_pending();
        let mut order = std::mem::take(&mut self.scratch_order);
        order.clear();
        match confine {
            Some(cx) => {
                if let Some(members) = self.primary.domain_members(cx) {
                    order.extend(members.iter_wrapping_from(ref_core));
                }
            }
            None => {
                for cx in env.topo.ccxs_nearest_first(ref_core) {
                    if let Some(members) = self.primary.domain_members(cx) {
                        order.extend(members.iter_wrapping_from(ref_core));
                    }
                }
            }
        }
        let mut found = None;
        for &core in &order {
            if self.compaction_eligible(k, env, core) {
                // A task tried to use a stale core: demote it instead.
                self.demote_as(env.topo, core, true);
                continue;
            }
            if idle_ok(k, core, respect) {
                found = Some(core);
                break;
            }
        }
        self.scratch_order = order;
        found
    }

    /// Searches the reserve nest, starting from the fixed anchor. The
    /// search only reads the nest, so it iterates the per-CCX sets in
    /// place — no snapshot, no allocation. With `confine`, only that
    /// CCX's members are considered.
    fn search_reserve(
        &mut self,
        k: &KernelState,
        env: &SchedEnv<'_>,
        ref_core: CoreId,
        confine: Option<CcxId>,
    ) -> Option<CoreId> {
        if !self.params.enable_reserve {
            return None;
        }
        let _prof = profile::span(profile::Subsystem::NestReserveScan);
        let respect = self.respect_pending();
        let anchor = self.params.anchor_core;
        let hit = |members: &CpuSet| {
            members
                .iter_wrapping_from(anchor)
                .find(|&core| idle_ok(k, core, respect))
        };
        match confine {
            Some(cx) => self.reserve.domain_members(cx).and_then(hit),
            None => env
                .topo
                .ccxs_nearest_first(ref_core)
                .into_iter()
                .find_map(|cx| self.reserve.domain_members(cx).and_then(hit)),
        }
    }

    /// The shared selection path for forks and wakeups.
    fn select(
        &mut self,
        k: &mut KernelState,
        env: &mut SchedEnv<'_>,
        task: TaskId,
        ref_core: CoreId,
        waker_core: Option<CoreId>,
    ) -> Placement {
        let is_fork = waker_core.is_none();
        let impatient = !is_fork && k.task(task).impatience > self.params.r_impatient;
        // Domain-local nests: a patient task only sees the nest members
        // of its own CCX; impatience lifts the confinement (overflow to
        // the nearest domains by distance). Machine-global mode never
        // confines, which on the degenerate Table 2 trees makes both
        // modes — and the old per-socket code — coincide.
        let confine = match self.params.domain {
            NestDomain::Machine => None,
            NestDomain::Ccx if impatient => None,
            NestDomain::Ccx => Some(env.topo.ccx_of(ref_core)),
        };

        if !impatient {
            // First choice: the attached core, which may even be
            // reclaimed while compaction-eligible (§3.3).
            if self.params.enable_attachment && !is_fork {
                if let Some(att) = k.task(task).attached_core() {
                    if self.primary.contains(att) && idle_ok(k, att, self.respect_pending()) {
                        return Placement::simple(att, PlacementPath::NestPrimary);
                    }
                }
            }
            if let Some(core) = self.search_primary(k, env, ref_core, confine) {
                return Placement::simple(core, PlacementPath::NestPrimary);
            }
        }

        if let Some(core) = self.search_reserve(k, env, ref_core, confine) {
            self.promote(env.topo, core);
            if impatient {
                k.task_mut(task).impatience = 0;
            }
            return Placement::simple(core, PlacementPath::NestReserve);
        }

        // Fall back to CFS (with Nest's wakeup work-conservation
        // extension), still honoring the reservation flag. A confined
        // (patient, domain-local) wakeup also forgoes work conservation,
        // keeping the scan inside the target LLC domain.
        let core = match waker_core {
            None => cfs::select_fork(k, env, ref_core, self.respect_pending()),
            Some(waker) => cfs::select_wakeup(
                k,
                env,
                task,
                waker,
                &self.cfs_params,
                self.params.enable_wakeup_work_conservation && confine.is_none(),
                self.respect_pending(),
            ),
        };
        if impatient {
            // Grow the primary nest directly (§3.1).
            self.promote(env.topo, core);
            k.task_mut(task).impatience = 0;
        } else if !self.primary.contains(core)
            && !self.reserve.contains(core)
            && self.params.enable_reserve
            && self.reserve.len() < self.params.r_max
        {
            self.reserve.insert(env.topo, core);
        }
        Placement::simple(core, PlacementPath::NestFallback)
    }
}

impl SchedPolicy for Nest {
    fn name(&self) -> &'static str {
        "Nest"
    }

    fn select_core_fork(
        &mut self,
        k: &mut KernelState,
        env: &mut SchedEnv<'_>,
        task: TaskId,
        parent_core: CoreId,
    ) -> Placement {
        self.select(k, env, task, parent_core, None)
    }

    fn select_core_wakeup(
        &mut self,
        k: &mut KernelState,
        env: &mut SchedEnv<'_>,
        task: TaskId,
        waker_core: CoreId,
    ) -> Placement {
        // Impatience accounting: did this wakeup find the previous core
        // busy?
        let ref_core = k.task(task).prev_core.unwrap_or(waker_core);
        if let Some(prev) = k.task(task).prev_core {
            if idle_ok(k, prev, self.respect_pending()) {
                k.task_mut(task).impatience = 0;
            } else {
                k.task_mut(task).impatience += 1;
            }
        }
        self.select(k, env, task, ref_core, Some(waker_core))
    }

    fn on_core_idle(
        &mut self,
        k: &mut KernelState,
        env: &mut SchedEnv<'_>,
        core: CoreId,
        reason: IdleReason,
    ) -> IdleAction {
        if reason == IdleReason::TaskExited {
            // The core is no longer considered useful (§3.1).
            self.demote(env.topo, core);
        }
        let pull_from = cfs::newidle_pull_source(k, env, core);
        let spin_ticks = if pull_from.is_none()
            && self.params.enable_spin
            && reason == IdleReason::TaskBlocked
        {
            self.params.s_max_ticks
        } else {
            0
        };
        IdleAction {
            pull_from,
            spin_ticks,
        }
    }

    fn on_tick(
        &mut self,
        k: &mut KernelState,
        env: &mut SchedEnv<'_>,
        core: CoreId,
    ) -> Option<CoreId> {
        cfs::periodic_pull_source(k, env, core, &self.cfs_params)
    }

    fn on_core_offline(&mut self, k: &mut KernelState, env: &mut SchedEnv<'_>, core: CoreId) {
        let _ = k;
        // An offlined core leaves both nests outright — it must not be
        // parked in the reserve the way a demotion would, because no
        // future search may return it.
        let in_primary = self.primary.remove(env.topo, core);
        let in_reserve = self.reserve.remove(env.topo, core);
        if in_primary || in_reserve {
            let (primary, reserve) = self.sizes();
            self.trace.push(TraceEvent::NestShrink {
                core,
                primary,
                reserve,
            });
        }
    }

    fn drain_trace(&mut self, out: &mut Vec<TraceEvent>) {
        out.append(&mut self.trace);
    }

    fn save(&self) -> Json {
        // The nests are the only decision state Nest carries across
        // events: `scratch_order` is a reusable buffer and `trace` is
        // drained by the engine after every callback, so both are empty
        // between events. Membership is stored as sorted core-index
        // lists; `load` replays the inserts, which also rebuilds the
        // lazily allocated per-socket decomposition.
        let members = |set: &NestSet| {
            Json::Arr(
                set.all
                    .iter()
                    .map(|core| Json::usize(core.index()))
                    .collect(),
            )
        };
        json::obj(vec![
            ("kind", Json::str("nest")),
            ("primary", members(&self.primary)),
            ("reserve", members(&self.reserve)),
        ])
    }

    fn load(&mut self, topo: &Topology, state: &Json) -> Result<(), String> {
        let kind = snap::get_str(state, "kind")?;
        if kind != "nest" {
            return Err(format!(
                "snapshot carries \"{kind}\" policy state, but the scenario runs Nest"
            ));
        }
        let read_set = |field: &'static str| -> Result<NestSet, String> {
            let mut set = NestSet::new(topo.n_cores());
            for entry in snap::get_arr(state, field)? {
                let idx = snap::elem_u64(entry)? as usize;
                if idx >= topo.n_cores() {
                    return Err(format!(
                        "nest \"{field}\" names core {idx}, but the machine has {} cores",
                        topo.n_cores()
                    ));
                }
                set.insert(topo, CoreId::from_index(idx));
            }
            Ok(set)
        };
        self.primary = read_set("primary")?;
        self.reserve = read_set("reserve")?;
        self.scratch_order.clear();
        self.trace.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;

    use nest_freq::{FreqModel, Governor};
    use nest_simcore::{SimRng, Time};
    use nest_topology::{presets, Topology};

    struct Fixture {
        k: KernelState,
        topo: Rc<Topology>,
        freq: FreqModel,
        rng: SimRng,
    }

    impl Fixture {
        fn new() -> Fixture {
            Fixture::with_spec(presets::xeon_6130(2))
        }

        fn with_spec(spec: nest_topology::MachineSpec) -> Fixture {
            let topo = Rc::new(Topology::new(spec.clone()));
            Fixture {
                k: KernelState::new(Rc::clone(&topo)),
                freq: FreqModel::new(&spec, Governor::Schedutil),
                topo,
                rng: SimRng::new(1),
            }
        }

        fn spawn(&mut self, now: Time) -> TaskId {
            let id = TaskId::from_index(self.k.tasks.len());
            self.k.register_task(id, now);
            id
        }

        fn occupy(&mut self, now: Time, core: CoreId) -> TaskId {
            let t = self.spawn(now);
            self.k.enqueue(now, t, core);
            self.k.pick_next(now, core);
            t
        }
    }

    macro_rules! env {
        ($f:expr, $now:expr) => {
            SchedEnv {
                now: $now,
                topo: &$f.topo,
                freq: &$f.freq,
                rng: &mut $f.rng,
            }
        };
    }

    /// Seeded regression for the incremental per-CCX nest sets and the
    /// searches built on them: a pseudo-random promote/demote and
    /// occupancy trace, checked at every step against a naive model
    /// (flat membership sets, searches as filter scans over raw domain
    /// spans — the pre-index shape of the code). Compaction is disabled
    /// so the searches are read-only and the two implementations can be
    /// compared on identical state.
    fn run_nest_vs_naive_trace(mut f: Fixture, seed: u64, steps: u64) {
        use std::collections::BTreeSet;

        let last = f.topo.n_cores() as u64 - 1;
        let params = NestParams {
            enable_compaction: false,
            ..NestParams::default()
        };
        let mut nest = Nest::with_params(f.topo.n_cores(), params);
        let mut primary_model: BTreeSet<u32> = BTreeSet::new();
        let mut reserve_model: BTreeSet<u32> = BTreeSet::new();
        let mut rng = SimRng::new(seed);
        let mut busy: Vec<CoreId> = Vec::new();
        let mut now = Time::ZERO;
        for step in 0..steps {
            now += rng.uniform_u64(10_000, 2_000_000);
            let core = CoreId(rng.uniform_u64(0, last) as u32);
            match rng.uniform_u64(0, 99) {
                // Promote: into primary, out of reserve.
                0..=29 => {
                    nest.promote(&f.topo, core);
                    reserve_model.remove(&core.0);
                    primary_model.insert(core.0);
                }
                // Demote: out of primary, into reserve if it has room.
                30..=59 => {
                    nest.demote(&f.topo, core);
                    if primary_model.remove(&core.0) && reserve_model.len() < nest.params().r_max {
                        reserve_model.insert(core.0);
                    }
                }
                // Occupy an idle core.
                60..=79 => {
                    if f.k.core(core).is_idle() {
                        f.occupy(now, core);
                        busy.push(core);
                    }
                }
                // Free a busy core.
                _ => {
                    if !busy.is_empty() {
                        let i = rng.uniform_u64(0, busy.len() as u64 - 1) as usize;
                        let c = busy.swap_remove(i);
                        f.k.put_curr(now, c);
                    }
                }
            }

            // Membership: the incremental sets must equal the flat model,
            // and the per-socket decomposition must partition `all`.
            let got: BTreeSet<u32> = nest.primary().iter().map(|c| c.0).collect();
            assert_eq!(got, primary_model, "primary diverged at step {step}");
            let got: BTreeSet<u32> = nest.reserve().iter().map(|c| c.0).collect();
            assert_eq!(got, reserve_model, "reserve diverged at step {step}");
            for (set, name) in [(&nest.primary, "primary"), (&nest.reserve, "reserve")] {
                for cx in f.topo.ccxs() {
                    if let Some(members) = set.domain_members(cx) {
                        for c in members.iter() {
                            assert_eq!(
                                f.topo.ccx_of(c),
                                cx,
                                "{name} CCX set holds foreign core at step {step}"
                            );
                            assert!(set.all.contains(c));
                        }
                    }
                }
                let per_domain_total: usize = f
                    .topo
                    .ccxs()
                    .filter_map(|cx| set.domain_members(cx))
                    .map(|m| m.len())
                    .sum();
                if !set.all.is_empty() {
                    assert_eq!(per_domain_total, set.all.len());
                }
            }

            // Searches: per-CCX iteration must pick the same core as a
            // filter scan over each raw domain span, for the unconfined
            // search and the domain-local confined one.
            let ref_core = CoreId(rng.uniform_u64(0, last) as u32);
            let respect = nest.respect_pending();
            let anchor = nest.params().anchor_core;
            let env = env!(f, now);
            let home = f.topo.ccx_of(ref_core);
            for confine in [None, Some(home)] {
                let domains: Vec<_> = match confine {
                    Some(cx) => vec![cx],
                    None => f.topo.ccxs_nearest_first(ref_core),
                };
                let naive_primary = domains
                    .iter()
                    .flat_map(|&cx| {
                        f.topo
                            .ccx_span(cx)
                            .iter_wrapping_from(ref_core)
                            .filter(|&c| nest.primary().contains(c))
                            .collect::<Vec<_>>()
                    })
                    .find(|&c| idle_ok(&f.k, c, respect));
                let naive_reserve = domains.iter().find_map(|&cx| {
                    f.topo
                        .ccx_span(cx)
                        .iter_wrapping_from(anchor)
                        .filter(|&c| nest.reserve().contains(c))
                        .find(|&c| idle_ok(&f.k, c, respect))
                });
                assert_eq!(
                    nest.search_primary(&f.k, &env, ref_core, confine),
                    naive_primary,
                    "search_primary (confine {confine:?}) diverged at step {step}"
                );
                assert_eq!(
                    nest.search_reserve(&f.k, &env, ref_core, confine),
                    naive_reserve,
                    "search_reserve (confine {confine:?}) diverged at step {step}"
                );
            }
        }
    }

    #[test]
    fn nest_sets_and_searches_match_naive_reference_on_seeded_trace() {
        let f = Fixture::new();
        assert_eq!(f.topo.n_cores(), 64);
        run_nest_vs_naive_trace(f, 0x4E57_7E57, 600);
    }

    /// Satellite for the hierarchical-domain refactor: the same oracle on
    /// a 256-core multi-CCX synthetic machine where the per-CCX nest
    /// decomposition genuinely refines sockets.
    #[test]
    fn nest_sets_and_searches_match_naive_reference_on_multi_ccx_machine() {
        use nest_topology::NumaKind;
        let f = Fixture::with_spec(presets::synth(4, 4, 8, 2, NumaKind::Ring));
        assert_eq!(f.topo.n_cores(), 256);
        run_nest_vs_naive_trace(f, 0x4E57_256C, 250);
    }

    #[test]
    fn nests_start_empty_and_stay_disjoint() {
        let mut f = Fixture::new();
        let mut nest = Nest::new(64);
        assert!(nest.primary().is_empty());
        assert!(nest.reserve().is_empty());
        let t0 = Time::ZERO;
        // Drive a number of forks and check the invariant.
        for i in 0..20 {
            let parent = CoreId(i % 4);
            let task = f.spawn(t0);
            let mut e = env!(f, t0);
            let p = nest.select_core_fork(&mut f.k, &mut e, task, parent);
            f.k.begin_placement(p.core);
            f.k.commit_placement(t0, task, p.core);
            f.k.pick_next(t0, p.core);
            assert!(
                nest.primary().is_disjoint(nest.reserve()),
                "nests overlap after fork {i}"
            );
            assert!(nest.reserve().len() <= nest.params().r_max);
        }
    }

    #[test]
    fn cfs_fallback_feeds_reserve_then_promotion() {
        let mut f = Fixture::new();
        let mut nest = Nest::new(64);
        let t0 = Time::ZERO;
        let task = f.spawn(t0);
        let mut e = env!(f, t0);
        // Empty nests: first placement must fall back to CFS and the core
        // joins the reserve.
        let p = nest.select_core_fork(&mut f.k, &mut e, task, CoreId(0));
        assert_eq!(p.path, PlacementPath::NestFallback);
        assert!(nest.reserve().contains(p.core));
        assert!(!nest.primary().contains(p.core));
        // The next placement finds it idle in the reserve and promotes it.
        let task2 = f.spawn(t0);
        let mut e = env!(f, t0);
        let p2 = nest.select_core_wakeup(&mut f.k, &mut e, task2, CoreId(0));
        assert_eq!(p2.core, p.core);
        assert_eq!(p2.path, PlacementPath::NestReserve);
        assert!(nest.primary().contains(p.core));
        assert!(!nest.reserve().contains(p.core));
    }

    #[test]
    fn primary_hit_prefers_same_die_and_prev_neighborhood() {
        let mut f = Fixture::new();
        let mut nest = Nest::new(64);
        // Seed the primary nest with cores on both sockets.
        nest.promote(&f.topo, CoreId(2));
        nest.promote(&f.topo, CoreId(40));
        let now = Time::ZERO;
        let task = f.spawn(now);
        f.k.task_mut(task).push_core_history(CoreId(3));
        f.k.task_mut(task).push_core_history(CoreId(1));
        f.occupy(now, CoreId(1));
        // Touch the cores so they are not compaction-eligible.
        f.k.cores[2].last_used = now;
        f.k.cores[40].last_used = now;
        let mut e = env!(f, now);
        let p = nest.select_core_wakeup(&mut f.k, &mut e, task, CoreId(1));
        assert_eq!(p.core, CoreId(2), "same-die primary core expected");
        assert_eq!(p.path, PlacementPath::NestPrimary);
    }

    #[test]
    fn attachment_beats_search_order() {
        let mut f = Fixture::new();
        let mut nest = Nest::new(64);
        nest.promote(&f.topo, CoreId(2));
        nest.promote(&f.topo, CoreId(9));
        let now = Time::ZERO;
        let task = f.spawn(now);
        // Task ran twice on core 9: attached.
        f.k.task_mut(task).push_core_history(CoreId(9));
        f.k.task_mut(task).push_core_history(CoreId(9));
        f.k.cores[2].last_used = now;
        f.k.cores[9].last_used = now;
        let mut e = env!(f, now);
        let p = nest.select_core_wakeup(&mut f.k, &mut e, task, CoreId(1));
        assert_eq!(p.core, CoreId(9), "attached core must be first choice");
    }

    #[test]
    fn compaction_demotes_stale_primary_core() {
        let mut f = Fixture::new();
        let mut nest = Nest::new(64);
        nest.promote(&f.topo, CoreId(5));
        nest.promote(&f.topo, CoreId(6));
        // Core 5 unused for 3 ticks (> P_remove = 2); core 6 fresh.
        let now = Time::from_nanos(3 * TICK_NS);
        f.k.cores[6].last_used = now;
        let task = f.spawn(now);
        // Two different previous cores: no attachment; and occupy core 4
        // so the search cannot simply return the previous core.
        f.k.task_mut(task).push_core_history(CoreId(7));
        f.k.task_mut(task).push_core_history(CoreId(4));
        f.occupy(now, CoreId(4));
        let mut e = env!(f, now);
        let p = nest.select_core_wakeup(&mut f.k, &mut e, task, CoreId(4));
        // The stale core was demoted to the reserve rather than used, and
        // the search continued to the fresh primary core.
        assert!(!nest.primary().contains(CoreId(5)));
        assert!(nest.reserve().contains(CoreId(5)));
        assert_eq!(p.core, CoreId(6));
        assert_eq!(p.path, PlacementPath::NestPrimary);
    }

    #[test]
    fn compaction_demotion_then_reserve_repromotes_lone_core() {
        let mut f = Fixture::new();
        let mut nest = Nest::new(64);
        nest.promote(&f.topo, CoreId(5));
        let now = Time::from_nanos(3 * TICK_NS);
        let task = f.spawn(now);
        f.k.task_mut(task).push_core_history(CoreId(7));
        f.k.task_mut(task).push_core_history(CoreId(4));
        f.occupy(now, CoreId(4));
        let mut e = env!(f, now);
        let p = nest.select_core_wakeup(&mut f.k, &mut e, task, CoreId(4));
        // The only nest core: demoted by compaction, then immediately
        // found idle in the reserve and promoted back.
        assert_eq!(p.core, CoreId(5));
        assert_eq!(p.path, PlacementPath::NestReserve);
        assert!(nest.primary().contains(CoreId(5)));
        assert!(!nest.reserve().contains(CoreId(5)));
    }

    #[test]
    fn attached_task_reclaims_compaction_eligible_core() {
        let mut f = Fixture::new();
        let mut nest = Nest::new(64);
        nest.promote(&f.topo, CoreId(5));
        let now = Time::from_nanos(3 * TICK_NS);
        let task = f.spawn(now);
        f.k.task_mut(task).push_core_history(CoreId(5));
        f.k.task_mut(task).push_core_history(CoreId(5));
        let mut e = env!(f, now);
        let p = nest.select_core_wakeup(&mut f.k, &mut e, task, CoreId(4));
        assert_eq!(p.core, CoreId(5));
        assert_eq!(p.path, PlacementPath::NestPrimary);
        assert!(
            nest.primary().contains(CoreId(5)),
            "reclaim keeps it primary"
        );
    }

    #[test]
    fn task_exit_demotes_core_immediately() {
        let mut f = Fixture::new();
        let mut nest = Nest::new(64);
        nest.promote(&f.topo, CoreId(3));
        let now = Time::ZERO;
        let mut e = env!(f, now);
        nest.on_core_idle(&mut f.k, &mut e, CoreId(3), IdleReason::TaskExited);
        assert!(!nest.primary().contains(CoreId(3)));
        assert!(nest.reserve().contains(CoreId(3)));
    }

    #[test]
    fn blocked_idle_spins_exited_does_not() {
        let mut f = Fixture::new();
        let mut nest = Nest::new(64);
        let now = Time::ZERO;
        let mut e = env!(f, now);
        let a = nest.on_core_idle(&mut f.k, &mut e, CoreId(3), IdleReason::TaskBlocked);
        assert_eq!(a.spin_ticks, 2);
        let mut e = env!(f, now);
        let a = nest.on_core_idle(&mut f.k, &mut e, CoreId(3), IdleReason::TaskExited);
        assert_eq!(a.spin_ticks, 0);
    }

    #[test]
    fn impatient_task_skips_primary_and_grows_it() {
        let mut f = Fixture::new();
        let mut nest = Nest::new(64);
        let now = Time::ZERO;
        // Primary nest holds one core, kept busy by another task.
        nest.promote(&f.topo, CoreId(2));
        f.occupy(now, CoreId(2));
        let task = f.spawn(now);
        f.k.task_mut(task).prev_core = Some(CoreId(2));
        // Keep waking the task while its previous core is busy; it must
        // eventually escape the (busy) primary nest via CFS with the core
        // joining the primary nest directly.
        let mut grew = false;
        for _ in 0..4 {
            let mut e = env!(f, now);
            let p = nest.select_core_wakeup(&mut f.k, &mut e, task, CoreId(2));
            if p.path == PlacementPath::NestFallback && nest.primary().contains(p.core) {
                grew = true;
                assert_eq!(f.k.task(task).impatience, 0, "impatience resets");
                break;
            }
            // Not placed: simulate that the chosen core did not work out
            // (we do not enqueue), so prev stays busy.
        }
        assert!(grew, "primary nest never grew for the impatient task");
        assert!(nest.primary().len() >= 2);
    }

    #[test]
    fn domain_local_patient_task_stays_in_home_ccx() {
        use nest_topology::NumaKind;
        // 1 socket × 2 CCX × 4 phys, SMT-1: CCX 0 = cores 0-3, CCX 1 =
        // cores 4-7.
        let mut f = Fixture::with_spec(presets::synth(1, 2, 4, 1, NumaKind::Flat));
        let params = NestParams {
            domain: NestDomain::Ccx,
            ..NestParams::default()
        };
        let mut nest = Nest::with_params(8, params);
        // The only primary-nest member is idle — but in the other CCX.
        nest.promote(&f.topo, CoreId(5));
        let now = Time::ZERO;
        f.k.cores[5].last_used = now;
        f.occupy(now, CoreId(1));
        let task = f.spawn(now);
        f.k.task_mut(task).prev_core = Some(CoreId(1));
        let mut e = env!(f, now);
        let p = nest.select_core_wakeup(&mut f.k, &mut e, task, CoreId(0));
        assert_ne!(p.core, CoreId(5), "patient task must not cross the CCX");
        assert_eq!(
            e.topo.ccx_of(p.core).index(),
            0,
            "confined fallback stays in the home CCX"
        );
        // The machine-global default would have taken the warm core.
        let mut global = Nest::with_params(8, NestParams::default());
        global.promote(&f.topo, CoreId(5));
        let task2 = f.spawn(now);
        f.k.task_mut(task2).prev_core = Some(CoreId(1));
        let mut e = env!(f, now);
        let p = global.select_core_wakeup(&mut f.k, &mut e, task2, CoreId(0));
        assert_eq!(p.core, CoreId(5));
    }

    #[test]
    fn domain_local_impatience_overflows_to_nearest_ccx() {
        use nest_topology::NumaKind;
        // 2 sockets × 2 CCX × 2 phys, SMT-1: CCXs are {0,1} {2,3} {4,5}
        // {6,7}; CCX 1 shares task's socket, CCX 2/3 are remote.
        let mut f = Fixture::with_spec(presets::synth(2, 2, 2, 1, NumaKind::Flat));
        let params = NestParams {
            domain: NestDomain::Ccx,
            ..NestParams::default()
        };
        let mut nest = Nest::with_params(8, params);
        nest.promote(&f.topo, CoreId(2)); // same socket, next CCX
        nest.promote(&f.topo, CoreId(4)); // remote socket
        let now = Time::ZERO;
        f.k.cores[2].last_used = now;
        f.k.cores[4].last_used = now;
        // The home CCX is fully busy, so every wake finds prev occupied.
        f.occupy(now, CoreId(0));
        f.occupy(now, CoreId(1));
        let task = f.spawn(now);
        f.k.task_mut(task).prev_core = Some(CoreId(0));
        let mut placed = None;
        for _ in 0..4 {
            let mut e = env!(f, now);
            let p = nest.select_core_wakeup(&mut f.k, &mut e, task, CoreId(0));
            if e.topo.ccx_of(p.core).index() != 0 {
                placed = Some(p);
                break;
            }
        }
        let p = placed.expect("impatience never lifted the confinement");
        assert_eq!(
            f.topo.ccx_of(p.core).index(),
            1,
            "overflow must reach the nearest CCX, not the remote socket"
        );
        assert_eq!(f.k.task(task).impatience, 0, "impatience resets");
        assert!(
            nest.primary().contains(p.core),
            "the overflow core joins the primary nest"
        );
    }

    #[test]
    fn reserve_respects_r_max() {
        let mut f = Fixture::new();
        let params = NestParams {
            r_max: 2,
            ..NestParams::default()
        };
        let mut nest = Nest::with_params(64, params);
        let t0 = Time::ZERO;
        // Repeated CFS fallbacks: keep every chosen core busy so the next
        // fork falls back again.
        for _ in 0..6 {
            let task = f.spawn(t0);
            let mut e = env!(f, t0);
            let p = nest.select_core_fork(&mut f.k, &mut e, task, CoreId(0));
            f.k.begin_placement(p.core);
            f.k.commit_placement(t0, task, p.core);
            f.k.pick_next(t0, p.core);
            assert!(nest.reserve().len() <= 2);
        }
    }

    #[test]
    fn ablation_no_reserve_discards_demotions() {
        let mut f = Fixture::new();
        let params = NestParams {
            enable_reserve: false,
            ..NestParams::default()
        };
        let mut nest = Nest::with_params(64, params);
        nest.promote(&f.topo, CoreId(3));
        let now = Time::ZERO;
        let mut e = env!(f, now);
        nest.on_core_idle(&mut f.k, &mut e, CoreId(3), IdleReason::TaskExited);
        assert!(nest.primary().is_empty());
        assert!(nest.reserve().is_empty(), "reserve disabled");
    }

    #[test]
    fn ablation_no_spin() {
        let mut f = Fixture::new();
        let params = NestParams {
            enable_spin: false,
            ..NestParams::default()
        };
        let mut nest = Nest::with_params(64, params);
        let mut e = env!(f, Time::ZERO);
        let a = nest.on_core_idle(&mut f.k, &mut e, CoreId(0), IdleReason::TaskBlocked);
        assert_eq!(a.spin_ticks, 0);
    }

    #[test]
    fn ablation_no_compaction_keeps_stale_cores() {
        let mut f = Fixture::new();
        let params = NestParams {
            enable_compaction: false,
            ..NestParams::default()
        };
        let mut nest = Nest::with_params(64, params);
        nest.promote(&f.topo, CoreId(5));
        let now = Time::from_nanos(100 * TICK_NS);
        let task = f.spawn(now);
        f.k.task_mut(task).push_core_history(CoreId(7));
        f.k.task_mut(task).push_core_history(CoreId(4));
        f.occupy(now, CoreId(4));
        let mut e = env!(f, now);
        let p = nest.select_core_wakeup(&mut f.k, &mut e, task, CoreId(4));
        assert_eq!(p.core, CoreId(5), "stale core used when compaction off");
        assert_eq!(p.path, PlacementPath::NestPrimary);
    }

    #[test]
    fn core_offline_sheds_from_both_nests_with_one_shrink_event() {
        let mut f = Fixture::new();
        let mut nest = Nest::new(64);
        nest.promote(&f.topo, CoreId(5));
        nest.promote(&f.topo, CoreId(6));
        nest.demote(&f.topo, CoreId(6)); // now in the reserve
        let mut drained = Vec::new();
        nest.drain_trace(&mut drained);

        let now = Time::ZERO;
        f.k.set_online(CoreId(5), false);
        let mut e = env!(f, now);
        nest.on_core_offline(&mut f.k, &mut e, CoreId(5));
        assert!(!nest.primary().contains(CoreId(5)));
        assert!(
            !nest.reserve().contains(CoreId(5)),
            "offline core must not be parked in the reserve"
        );
        drained.clear();
        nest.drain_trace(&mut drained);
        assert_eq!(
            drained,
            vec![TraceEvent::NestShrink {
                core: CoreId(5),
                primary: 0,
                reserve: 1,
            }]
        );

        // Shedding a reserve member also traces.
        f.k.set_online(CoreId(6), false);
        let mut e = env!(f, now);
        nest.on_core_offline(&mut f.k, &mut e, CoreId(6));
        assert!(nest.reserve().is_empty());
        drained.clear();
        nest.drain_trace(&mut drained);
        assert_eq!(drained.len(), 1);

        // A core in neither nest sheds silently.
        let mut e = env!(f, now);
        nest.on_core_offline(&mut f.k, &mut e, CoreId(7));
        drained.clear();
        nest.drain_trace(&mut drained);
        assert!(drained.is_empty());
    }

    #[test]
    fn selection_never_returns_offline_cores() {
        let mut f = Fixture::new();
        let mut nest = Nest::new(64);
        let now = Time::ZERO;
        // Offline all of socket 1 plus a few socket-0 cores, shedding as
        // the engine would.
        let offline: Vec<CoreId> = (1u32..8).chain(32..64).map(CoreId).collect();
        for &c in &offline {
            f.k.set_online(c, false);
            let mut e = env!(f, now);
            nest.on_core_offline(&mut f.k, &mut e, c);
        }
        // Drive forks and wakeups; every placement must land online.
        for i in 0..40 {
            let task = f.spawn(now);
            let mut e = env!(f, now);
            let p = if i % 2 == 0 {
                nest.select_core_fork(&mut f.k, &mut e, task, CoreId(i % 64))
            } else {
                f.k.task_mut(task).push_core_history(CoreId(40)); // offline prev
                nest.select_core_wakeup(&mut f.k, &mut e, task, CoreId(2))
            };
            assert!(
                f.k.is_online(p.core),
                "placement {i} chose offline {:?}",
                p.core
            );
            assert!(nest.primary().is_disjoint(nest.reserve()));
            for c in nest.primary().iter().chain(nest.reserve().iter()) {
                assert!(f.k.is_online(c), "nest holds offline {c:?}");
            }
            f.k.begin_placement(p.core);
            f.k.commit_placement(now, task, p.core);
            if f.k.core(p.core).curr.is_none() {
                f.k.pick_next(now, p.core);
            }
        }
    }
}
