//! Scheduler policies for the Nest simulation.
//!
//! The shared machinery ([`kernel::KernelState`]: vruntime runqueues, PELT
//! averages, preemption, load balancing substrate) is used by three
//! policies that differ only in core selection, exactly as in the paper:
//!
//! * [`cfs::Cfs`] — the Linux v5.9 baseline (§2.1);
//! * [`nest::Nest`] — the paper's contribution (§3-§4);
//! * [`smove::Smove`] — the frequency-inversion baseline (§2.2).

#![deny(missing_docs)]

pub mod cfs;
pub mod kernel;
pub mod nest;
pub mod pelt;
pub mod policy;
pub mod smove;

pub use cfs::{Cfs, CfsParams};
pub use kernel::KernelState;
pub use nest::{Nest, NestDomain, NestParams};
pub use pelt::Pelt;
pub use policy::{IdleAction, IdleReason, Placement, SchedEnv, SchedPolicy, SmoveArm};
pub use smove::{Smove, SmoveParams};
