//! PELT-style load tracking.
//!
//! Linux's Per-Entity Load Tracking maintains, for every task and every
//! runqueue, a geometrically decaying average of recent activity with a
//! 32 ms half-life. Two of the paper's observations hinge on it:
//!
//! * CFS's fork placement *disfavors recently used cores* because their
//!   decaying load has not yet reached zero (§2.1) — the cause of task
//!   dispersal onto long-idle, low-frequency cores;
//! * the `schedutil` governor requests `1.25 × util × fmax`, so a core's
//!   frequency climbs only as its utilization average rebuilds (§2.3).
//!
//! [`Pelt`] implements the average with lazy, closed-form decay so it can
//! be updated at arbitrary event times rather than fixed periods.

use nest_simcore::Time;

/// Half-life of the decaying average, matching Linux (32 ms).
pub const PELT_HALFLIFE_NS: u64 = 32_000_000;

/// A geometrically decaying activity average in `[0, 1]`.
///
/// The value converges to 1 when the tracked entity is continuously
/// running and to 0 when continuously idle.
///
/// # Examples
///
/// ```
/// use nest_sched::pelt::Pelt;
/// use nest_simcore::Time;
///
/// let mut p = Pelt::new(Time::ZERO);
/// p.set_running(Time::ZERO, true);
/// // After one half-life of running, the average is halfway to 1.
/// let v = p.value(Time::from_millis(32));
/// assert!((v - 0.5).abs() < 1e-9);
/// ```
#[derive(Clone, Debug)]
pub struct Pelt {
    value: f64,
    running: bool,
    last_update: Time,
}

impl Pelt {
    /// Creates an average at zero, idle, as of `now`.
    pub fn new(now: Time) -> Pelt {
        Pelt::with_initial(now, 0.0)
    }

    /// Creates an average starting at `value` (e.g. the utilization a
    /// newly forked task inherits, `post_init_entity_util_avg`-style).
    ///
    /// # Panics
    ///
    /// Panics if `value` is outside `[0, 1]`.
    pub fn with_initial(now: Time, value: f64) -> Pelt {
        assert!(
            (0.0..=1.0).contains(&value),
            "invalid initial value {value}"
        );
        Pelt {
            value,
            running: false,
            last_update: now,
        }
    }

    fn decay_factor(dt_ns: u64) -> f64 {
        // Memoized `powf`: scheduler activity clusters on tick and
        // millisecond boundaries, so the same `dt` recurs millions of
        // times per run (the self-profiler counts ~28M decay updates on
        // figure 4 alone). The cache is keyed on the exact integer `dt`
        // and stores the result of the identical expression, so hits are
        // bit-identical to recomputation and the determinism contract
        // holds. Thread-local: workers never share simulation state.
        const SLOTS: usize = 8;
        thread_local! {
            static MEMO: [std::cell::Cell<(u64, f64)>; SLOTS] =
                const { [const { std::cell::Cell::new((u64::MAX, 0.0)) }; SLOTS] };
        }
        MEMO.with(|m| {
            let slot = &m[(dt_ns.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 61) as usize];
            let (key, value) = slot.get();
            if key == dt_ns {
                return value;
            }
            let value = 0.5f64.powf(dt_ns as f64 / PELT_HALFLIFE_NS as f64);
            slot.set((dt_ns, value));
            value
        })
    }

    /// Folds the elapsed time into the average.
    pub fn update(&mut self, now: Time) {
        let dt = now.saturating_since(self.last_update);
        if dt == 0 {
            return;
        }
        if self.value == 0.0 && !self.running {
            // Fully decayed and idle: the fold is `0.0 * d + 0.0`, which
            // is `+0.0` for every positive decay factor — advancing the
            // clock alone produces bit-identical state, and folding the
            // merged interval later still yields `+0.0`.
            self.last_update = now;
            return;
        }
        nest_simcore::profile::count(nest_simcore::profile::Subsystem::PeltDecay);
        let d = Self::decay_factor(dt);
        let contrib = if self.running { 1.0 - d } else { 0.0 };
        self.value = self.value * d + contrib;
        self.last_update = now;
    }

    /// Switches the running state, folding time up to `now` first.
    pub fn set_running(&mut self, now: Time, running: bool) {
        self.update(now);
        self.running = running;
    }

    /// Returns the average as of `now` without mutating state.
    pub fn value(&self, now: Time) -> f64 {
        let dt = now.saturating_since(self.last_update);
        let d = Self::decay_factor(dt);
        let contrib = if self.running { 1.0 - d } else { 0.0 };
        self.value * d + contrib
    }

    /// Returns whether the entity is currently marked running.
    pub fn is_running(&self) -> bool {
        self.running
    }

    /// Returns the raw `(value, running, last_update)` state for a
    /// snapshot. `value` is the *stored* average as of `last_update`,
    /// not the lazily decayed current value — exactly what
    /// [`Pelt::restore`] needs to reproduce future folds bit for bit.
    pub fn snap(&self) -> (f64, bool, Time) {
        (self.value, self.running, self.last_update)
    }

    /// Reconstructs an average from state captured by [`Pelt::snap`].
    pub fn restore(value: f64, running: bool, last_update: Time) -> Pelt {
        Pelt {
            value,
            running,
            last_update,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nest_simcore::MILLISEC;

    #[test]
    fn starts_at_zero() {
        let p = Pelt::new(Time::ZERO);
        assert_eq!(p.value(Time::from_secs(10)), 0.0);
    }

    #[test]
    fn converges_to_one_when_running() {
        let mut p = Pelt::new(Time::ZERO);
        p.set_running(Time::ZERO, true);
        let v = p.value(Time::from_millis(320));
        assert!(v > 0.999, "{v}");
    }

    #[test]
    fn halflife_is_32ms() {
        let mut p = Pelt::new(Time::ZERO);
        p.set_running(Time::ZERO, true);
        assert!((p.value(Time::from_millis(32)) - 0.5).abs() < 1e-9);
        assert!((p.value(Time::from_millis(64)) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn decays_when_idle() {
        let mut p = Pelt::new(Time::ZERO);
        p.set_running(Time::ZERO, true);
        p.set_running(Time::from_millis(320), false);
        let v = p.value(Time::from_millis(320 + 32));
        assert!((v - 0.5).abs() < 1e-3, "{v}");
    }

    #[test]
    fn lazy_update_matches_incremental() {
        let mut a = Pelt::new(Time::ZERO);
        let mut b = Pelt::new(Time::ZERO);
        a.set_running(Time::ZERO, true);
        b.set_running(Time::ZERO, true);
        // Update `a` every ms; leave `b` lazy.
        let mut t = Time::ZERO;
        for _ in 0..50 {
            t += MILLISEC;
            a.update(t);
        }
        assert!((a.value(t) - b.value(t)).abs() < 1e-9);
    }

    #[test]
    fn value_is_pure() {
        let mut p = Pelt::new(Time::ZERO);
        p.set_running(Time::ZERO, true);
        let t = Time::from_millis(10);
        assert_eq!(p.value(t), p.value(t));
    }

    #[test]
    fn bounded_in_unit_interval() {
        let mut p = Pelt::new(Time::ZERO);
        let mut t = Time::ZERO;
        for i in 0..200 {
            t += (i % 7 + 1) * MILLISEC;
            p.set_running(t, i % 3 != 0);
            let v = p.value(t);
            assert!((0.0..=1.0).contains(&v), "{v}");
        }
    }
}
