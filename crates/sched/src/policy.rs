//! The scheduler-policy interface.
//!
//! A [`SchedPolicy`] makes the decisions the paper varies between CFS,
//! Nest, and Smove: which core receives a forked task, which core receives
//! a waking task, what the idle loop does, and what periodic ticks do.
//! Everything else (runqueues, vruntime, preemption) is shared
//! [`KernelState`] machinery.

use nest_freq::FreqModel;
use nest_simcore::{CoreId, PlacementPath, SimRng, TaskId, Time, TraceEvent};
use nest_topology::Topology;

use crate::kernel::KernelState;

/// Read-only environment handed to policy callbacks.
pub struct SchedEnv<'a> {
    /// Current simulation time.
    pub now: Time,
    /// Machine topology.
    pub topo: &'a Topology,
    /// Frequency model (for Smove's observed frequency and diagnostics).
    pub freq: &'a FreqModel,
    /// Deterministic randomness for tie-breaking heuristics.
    pub rng: &'a mut SimRng,
}

/// The outcome of a core-selection decision.
#[derive(Debug, Clone, Copy)]
pub struct Placement {
    /// The core the task will be enqueued on.
    pub core: CoreId,
    /// Which mechanism made the choice (for traces and tests).
    pub path: PlacementPath,
    /// Smove arming: if set, and the task has not started running within
    /// `delay_ns`, the engine migrates it to `fallback` (§2.2).
    pub smove_fallback: Option<SmoveArm>,
}

impl Placement {
    /// A plain placement with no timer.
    pub fn simple(core: CoreId, path: PlacementPath) -> Placement {
        Placement {
            core,
            path,
            smove_fallback: None,
        }
    }
}

/// Smove's migration timer parameters.
#[derive(Debug, Clone, Copy)]
pub struct SmoveArm {
    /// Where to move the task if it does not get to run in time.
    pub fallback: CoreId,
    /// Timer delay in nanoseconds.
    pub delay_ns: u64,
}

/// Why a core became idle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdleReason {
    /// The task running there blocked (sleep, wait, empty channel).
    TaskBlocked,
    /// The task running there exited. Nest demotes the core (§3.1).
    TaskExited,
    /// Anything else (migration emptied the core, startup).
    Other,
}

/// What the idle loop should do on a newly idle core.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdleAction {
    /// Pull one queued task from this core before idling (newidle
    /// balancing); checked before spinning.
    pub pull_from: Option<CoreId>,
    /// Spin for up to this many scheduler ticks to keep the core warm
    /// (Nest §3.2). Zero means halt immediately.
    pub spin_ticks: u32,
}

/// A core-selection and idle policy: CFS, Nest, or Smove.
pub trait SchedPolicy {
    /// Short policy name used in figure labels ("CFS", "Nest", "Smove").
    fn name(&self) -> &'static str;

    /// Chooses a core for a newly forked task.
    fn select_core_fork(
        &mut self,
        k: &mut KernelState,
        env: &mut SchedEnv<'_>,
        task: TaskId,
        parent_core: CoreId,
    ) -> Placement;

    /// Chooses a core for a waking task. `waker_core` is the core that
    /// triggered the wakeup (or the task's previous core for timers).
    fn select_core_wakeup(
        &mut self,
        k: &mut KernelState,
        env: &mut SchedEnv<'_>,
        task: TaskId,
        waker_core: CoreId,
    ) -> Placement;

    /// Called when a core runs out of work.
    fn on_core_idle(
        &mut self,
        k: &mut KernelState,
        env: &mut SchedEnv<'_>,
        core: CoreId,
        reason: IdleReason,
    ) -> IdleAction;

    /// Called on every per-core scheduler tick; returning a core pulls one
    /// queued task from it (periodic load balancing).
    fn on_tick(
        &mut self,
        k: &mut KernelState,
        env: &mut SchedEnv<'_>,
        core: CoreId,
    ) -> Option<CoreId>;

    /// Called when fault injection takes `core` offline, after the kernel
    /// has dropped it from the online mask and before displaced tasks are
    /// re-placed. Policies holding core sets (Nest's primary/reserve
    /// nests) must shed the core here so no later selection can return
    /// it. The default is a no-op: CFS and Smove keep no core sets and
    /// are already guarded by the online-gated scans.
    fn on_core_offline(&mut self, k: &mut KernelState, env: &mut SchedEnv<'_>, core: CoreId) {
        let _ = (k, env, core);
    }

    /// Moves trace events describing the policy's internal transitions
    /// (e.g. Nest's [`TraceEvent::NestExpand`] family) into `out`. The
    /// engine calls this after every policy callback and emits the drained
    /// events to its probes at the current time. Policies with no internal
    /// state worth tracing keep the default no-op.
    fn drain_trace(&mut self, out: &mut Vec<TraceEvent>) {
        let _ = out;
    }

    /// Serializes the policy's internal state for a snapshot.
    ///
    /// Stateless policies (CFS, Smove — their decisions read only
    /// [`KernelState`]) keep the default, which stores nothing.
    /// Stateful policies (Nest's primary/reserve membership) override
    /// both this and [`SchedPolicy::load`].
    fn save(&self) -> nest_simcore::Json {
        nest_simcore::Json::Null
    }

    /// Restores state captured by [`SchedPolicy::save`] into a freshly
    /// built policy of the same kind.
    ///
    /// The default accepts only the default `save`'s `null` — feeding a
    /// stateful policy's snapshot into a stateless policy is a restore
    /// mismatch and fails loudly.
    fn load(&mut self, topo: &Topology, state: &nest_simcore::Json) -> Result<(), String> {
        let _ = topo;
        if state.is_null() {
            Ok(())
        } else {
            Err(format!(
                "policy \"{}\" keeps no internal state, but the snapshot carries policy state \
                 (was it taken under a different policy?)",
                self.name()
            ))
        }
    }
}
