//! Shared scheduler state: runqueues, task accounting, vruntime.
//!
//! [`KernelState`] is the part of the scheduler every policy shares — the
//! analogue of the core CFS machinery that Nest leaves untouched
//! (vruntime-ordered runqueues, PELT averages, min-vruntime placement,
//! preemption checks). Policies (CFS, Nest, Smove) only differ in *core
//! selection*, exactly as the paper describes: "Most of the implementation
//! of Nest amounts to a single block of code placed in front of the core
//! selection function of CFS" (§7).
//!
//! Placement is two-phase, mirroring Linux: a core is *selected* first and
//! the task is *enqueued* after a short delay. The count of in-flight
//! placements per core ([`CoreK::pending`]) is the substrate for the
//! paper's §3.4 collision discussion — CFS ignores it (and collides), Nest
//! checks it with compare-and-swap semantics.

use std::collections::BTreeSet;
use std::rc::Rc;

use nest_simcore::json::{self, Json};
use nest_simcore::{profile, snap, CoreId, TaskId, Time};
use nest_topology::{CpuSet, Topology};

use crate::pelt::Pelt;

/// Target scheduling slice before tick preemption, in nanoseconds.
pub const SLICE_NS: u64 = 4_000_000;

/// Wakeup preemption granularity in vruntime nanoseconds.
pub const WAKEUP_GRANULARITY_NS: u64 = 1_000_000;

/// Sleeper credit: a newly enqueued task's vruntime is clamped to
/// `min_vruntime - SLICE_NS` so sleepers get a small scheduling boost
/// without starving the queue.
const SLEEPER_CREDIT_NS: u64 = SLICE_NS;

/// Per-task scheduler state.
#[derive(Clone, Debug)]
pub struct TaskSched {
    /// Weighted runtime; the runqueue sort key.
    pub vruntime: u64,
    /// The task's own PELT utilization.
    pub util: Pelt,
    /// Core of the previous execution.
    pub prev_core: Option<CoreId>,
    /// Core of the execution before that; `prev == prev_prev` means the
    /// task is *attached* to that core (Nest §3.3).
    pub prev_prev_core: Option<CoreId>,
    /// Consecutive wakeups that found the previous core busy (Nest §3.1).
    pub impatience: u32,
}

/// Utilization a newly forked task starts with. Linux initializes new
/// entities from the parent/cpu average (`post_init_entity_util_avg`);
/// a moderate value makes `schedutil` request a mid-range frequency for
/// fresh tasks until their own history builds up.
pub const NEW_TASK_UTIL: f64 = 0.75;

impl TaskSched {
    fn new(now: Time) -> TaskSched {
        TaskSched {
            vruntime: 0,
            util: Pelt::with_initial(now, NEW_TASK_UTIL),
            prev_core: None,
            prev_prev_core: None,
            impatience: 0,
        }
    }

    /// Returns the core this task is attached to, if its last two
    /// executions used the same core (history of size 2, §3.3).
    pub fn attached_core(&self) -> Option<CoreId> {
        match (self.prev_core, self.prev_prev_core) {
            (Some(a), Some(b)) if a == b => Some(a),
            _ => None,
        }
    }

    /// Records that an execution on `core` ended, shifting the history.
    pub fn push_core_history(&mut self, core: CoreId) {
        self.prev_prev_core = self.prev_core;
        self.prev_core = Some(core);
    }
}

/// Per-core runqueue state.
#[derive(Clone, Debug)]
pub struct CoreK {
    /// The running task, if any.
    pub curr: Option<TaskId>,
    /// Queued runnable tasks ordered by `(vruntime, id)`.
    pub rq: BTreeSet<(u64, TaskId)>,
    /// PELT average of "something was running here" — the core's
    /// utilization, feeding both CFS load comparisons and `schedutil`.
    pub util: Pelt,
    /// Monotonic floor for vruntime placement.
    pub min_vruntime: u64,
    /// In-flight placements: selected for this core, not yet enqueued.
    pub pending: u32,
    /// Last time a task ran on, or was enqueued on, this core.
    pub last_used: Time,
    /// When the current task started its stint.
    pub curr_started: Time,
}

impl CoreK {
    fn new(now: Time) -> CoreK {
        CoreK {
            curr: None,
            rq: BTreeSet::new(),
            util: Pelt::new(now),
            min_vruntime: 0,
            pending: 0,
            last_used: now,
            curr_started: now,
        }
    }

    /// Number of runnable tasks on this core (running + queued).
    pub fn nr_running(&self) -> usize {
        self.rq.len() + usize::from(self.curr.is_some())
    }

    /// `true` if nothing is running or queued here. Pending placements do
    /// **not** make a core non-idle: that is the §3.4 race window.
    pub fn is_idle(&self) -> bool {
        self.curr.is_none() && self.rq.is_empty()
    }
}

/// Cached per-socket statistics used by CFS's top-level fork descent.
///
/// Linux recomputes group statistics from per-core data that is itself
/// updated periodically; between refreshes the view is stale, which is why
/// rapid fork storms on large machines can stack tasks (§5.4, Lepers et
/// al.). The cache refresh interval models that staleness.
#[derive(Clone, Copy, Debug, Default)]
pub struct SocketStats {
    /// Idle cores in the socket at the last refresh.
    pub idle: usize,
    /// Sum of core loads at the last refresh.
    pub load: f64,
}

/// How often the socket-stats cache refreshes, in nanoseconds.
pub const GROUP_STATS_REFRESH_NS: u64 = 250_000;

/// The shared scheduler state.
///
/// Besides the per-core and per-task records, the state maintains three
/// *derived core indexes* — bitsets kept incrementally in sync by every
/// mutator so that placement and balancing scans touch only the cores that
/// can match instead of walking the whole machine:
///
/// * [`KernelState::idle_cores`] — cores with no current task and an empty
///   runqueue (exactly [`CoreK::is_idle`]);
/// * [`KernelState::idle_unreserved_cores`] — idle cores with no in-flight
///   placement either (`pending == 0`), the candidates honored by the
///   reservation-flag path;
/// * [`KernelState::queued_cores`] — cores with at least one *queued*
///   (not running) task, the only possible load-balance sources.
///
/// The indexes are pure acceleration structures: they never influence a
/// decision beyond skipping cores a naive scan would have rejected, which
/// is what keeps results bit-identical to the unindexed implementation
/// (see DESIGN.md §4.2 and the `placement_equivalence` test).
pub struct KernelState {
    /// The machine topology.
    pub topo: Rc<Topology>,
    /// Per-core state, indexed by core id.
    pub cores: Vec<CoreK>,
    /// Per-task state, indexed by task id.
    pub tasks: Vec<TaskSched>,
    socket_cache: Vec<SocketStats>,
    domain_cache: Vec<SocketStats>,
    socket_cache_at: Option<Time>,
    idle: CpuSet,
    idle_free: CpuSet,
    queued: CpuSet,
    online: CpuSet,
}

impl KernelState {
    /// Creates the state for a machine with all cores idle.
    pub fn new(topo: Rc<Topology>) -> KernelState {
        let n = topo.n_cores();
        KernelState {
            cores: (0..n).map(|_| CoreK::new(Time::ZERO)).collect(),
            tasks: Vec::new(),
            socket_cache: vec![SocketStats::default(); topo.n_sockets()],
            domain_cache: vec![SocketStats::default(); topo.n_ccx()],
            socket_cache_at: None,
            idle: CpuSet::full(n),
            idle_free: CpuSet::full(n),
            queued: CpuSet::new(n),
            online: CpuSet::full(n),
            topo,
        }
    }

    /// Re-derives `core`'s bits in the three indexes from its state. Called
    /// by every mutator that can change idleness, pending placements, or
    /// queue occupancy; O(1).
    #[inline]
    fn reindex(&mut self, core: CoreId) {
        let c = &self.cores[core.index()];
        let online = self.online.contains(core);
        let idle = online && c.curr.is_none() && c.rq.is_empty();
        let idle_free = idle && c.pending == 0;
        let queued = online && !c.rq.is_empty();
        if idle {
            self.idle.insert(core);
        } else {
            self.idle.remove(core);
        }
        if idle_free {
            self.idle_free.insert(core);
        } else {
            self.idle_free.remove(core);
        }
        if queued {
            self.queued.insert(core);
        } else {
            self.queued.remove(core);
        }
    }

    /// Cores that are idle ([`CoreK::is_idle`]), maintained incrementally.
    pub fn idle_cores(&self) -> &CpuSet {
        &self.idle
    }

    /// Idle cores with no in-flight placement (`pending == 0`) — the
    /// candidate set when the reservation flag is honored.
    pub fn idle_unreserved_cores(&self) -> &CpuSet {
        &self.idle_free
    }

    /// Cores with at least one queued (not running) task — the only
    /// possible sources for load balancing.
    pub fn queued_cores(&self) -> &CpuSet {
        &self.queued
    }

    /// Cores currently online. All cores start online; fault injection
    /// is the only mutator (via [`KernelState::set_online`]).
    pub fn online_cores(&self) -> &CpuSet {
        &self.online
    }

    /// `true` if `core` is online.
    pub fn is_online(&self, core: CoreId) -> bool {
        self.online.contains(core)
    }

    /// Takes a core offline or brings it back online.
    ///
    /// Offlining only flips the mask and drops the core from the derived
    /// indexes (so no scan can select it); the engine is responsible for
    /// migrating the running task and draining the runqueue. The cached
    /// socket statistics are invalidated: hotplug is a machine-level
    /// reconfiguration the kernel reacts to immediately, unlike ordinary
    /// load changes which it observes with staleness.
    pub fn set_online(&mut self, core: CoreId, online: bool) {
        if online {
            self.online.insert(core);
        } else {
            self.online.remove(core);
        }
        self.reindex(core);
        self.invalidate_socket_stats();
    }

    /// Registers a task id (ids are dense and allocated by the engine).
    ///
    /// # Panics
    ///
    /// Panics if ids are registered out of order.
    pub fn register_task(&mut self, task: TaskId, now: Time) {
        assert_eq!(task.index(), self.tasks.len(), "task ids must be dense");
        self.tasks.push(TaskSched::new(now));
    }

    /// Serializes the full kernel state for a snapshot.
    ///
    /// Everything behaviorally visible is captured — including the
    /// *stale* socket-statistics cache and its refresh timestamp, since
    /// CFS's fork descent reads the cache as-is and a restore that
    /// invalidated it would make different placement decisions than the
    /// uninterrupted run. The three derived bitset indexes are *not*
    /// stored; [`KernelState::load`] re-derives them per core, which is
    /// exact by construction.
    pub fn save(&self) -> Json {
        let pelt = |p: &Pelt| -> Json {
            let (value, running, last_update) = p.snap();
            json::obj(vec![
                ("value", snap::f64_bits(value)),
                ("running", Json::Bool(running)),
                ("at", snap::time_json(last_update)),
            ])
        };
        let opt_core = |c: Option<CoreId>| c.map_or(Json::Null, |c| Json::u64(c.0 as u64));
        let cores = self
            .cores
            .iter()
            .map(|c| {
                json::obj(vec![
                    ("curr", c.curr.map_or(Json::Null, |t| Json::u64(t.0 as u64))),
                    (
                        "rq",
                        Json::Arr(
                            c.rq.iter()
                                .map(|&(v, t)| Json::Arr(vec![Json::u64(v), Json::u64(t.0 as u64)]))
                                .collect(),
                        ),
                    ),
                    ("util", pelt(&c.util)),
                    ("min_vruntime", Json::u64(c.min_vruntime)),
                    ("pending", Json::u64(c.pending as u64)),
                    ("last_used", snap::time_json(c.last_used)),
                    ("curr_started", snap::time_json(c.curr_started)),
                ])
            })
            .collect();
        let tasks = self
            .tasks
            .iter()
            .map(|t| {
                json::obj(vec![
                    ("vruntime", Json::u64(t.vruntime)),
                    ("util", pelt(&t.util)),
                    ("prev", opt_core(t.prev_core)),
                    ("prev_prev", opt_core(t.prev_prev_core)),
                    ("impatience", Json::u64(t.impatience as u64)),
                ])
            })
            .collect();
        let stats_arr = |cache: &[SocketStats]| -> Json {
            Json::Arr(
                cache
                    .iter()
                    .map(|s| {
                        json::obj(vec![
                            ("idle", Json::usize(s.idle)),
                            ("load", snap::f64_bits(s.load)),
                        ])
                    })
                    .collect(),
            )
        };
        json::obj(vec![
            ("cores", Json::Arr(cores)),
            ("tasks", Json::Arr(tasks)),
            ("socket_cache", stats_arr(&self.socket_cache)),
            ("domain_cache", stats_arr(&self.domain_cache)),
            ("socket_cache_at", snap::opt_time_json(self.socket_cache_at)),
            (
                "online",
                Json::Arr(self.online.iter().map(|c| Json::u64(c.0 as u64)).collect()),
            ),
        ])
    }

    /// Restores state captured by [`KernelState::save`] into a freshly
    /// constructed `KernelState` for the same topology.
    pub fn load(&mut self, state: &Json) -> Result<(), String> {
        let pelt = |j: &Json| -> Result<Pelt, String> {
            Ok(Pelt::restore(
                snap::get_f64_bits(j, "value")?,
                snap::get_bool(j, "running")?,
                snap::get_time(j, "at")?,
            ))
        };
        let opt_core = |j: &Json, key: &str| -> Result<Option<CoreId>, String> {
            let v = snap::field(j, key)?;
            if v.is_null() {
                return Ok(None);
            }
            v.as_u64()
                .map(|c| Some(CoreId(c as u32)))
                .ok_or_else(|| format!("field \"{key}\" is neither null nor a core id"))
        };
        let cores = snap::get_arr(state, "cores")?;
        if cores.len() != self.cores.len() {
            return Err(format!(
                "snapshot has {} cores, machine has {}",
                cores.len(),
                self.cores.len()
            ));
        }
        for (core, j) in self.cores.iter_mut().zip(cores) {
            let curr = snap::field(j, "curr")?;
            core.curr = if curr.is_null() {
                None
            } else {
                Some(TaskId(
                    curr.as_u64()
                        .ok_or_else(|| "core \"curr\" is not a task id".to_string())?
                        as u32,
                ))
            };
            core.rq = snap::get_arr(j, "rq")?
                .iter()
                .map(|e| {
                    let pair = e
                        .as_arr()
                        .filter(|a| a.len() == 2)
                        .ok_or_else(|| "rq entry is not a pair".to_string())?;
                    Ok((
                        snap::elem_u64(&pair[0])?,
                        TaskId(snap::elem_u64(&pair[1])? as u32),
                    ))
                })
                .collect::<Result<BTreeSet<_>, String>>()?;
            core.util = pelt(snap::field(j, "util")?)?;
            core.min_vruntime = snap::get_u64(j, "min_vruntime")?;
            core.pending = snap::get_u32(j, "pending")?;
            core.last_used = snap::get_time(j, "last_used")?;
            core.curr_started = snap::get_time(j, "curr_started")?;
        }
        self.tasks = snap::get_arr(state, "tasks")?
            .iter()
            .map(|j| {
                Ok(TaskSched {
                    vruntime: snap::get_u64(j, "vruntime")?,
                    util: pelt(snap::field(j, "util")?)?,
                    prev_core: opt_core(j, "prev")?,
                    prev_prev_core: opt_core(j, "prev_prev")?,
                    impatience: snap::get_u32(j, "impatience")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let sockets = snap::get_arr(state, "socket_cache")?;
        if sockets.len() != self.socket_cache.len() {
            return Err("snapshot socket count differs from machine".to_string());
        }
        for (s, j) in self.socket_cache.iter_mut().zip(sockets) {
            s.idle = snap::get_usize(j, "idle")?;
            s.load = snap::get_f64_bits(j, "load")?;
        }
        let domains = snap::get_arr(state, "domain_cache")?;
        if domains.len() != self.domain_cache.len() {
            return Err("snapshot CCX count differs from machine".to_string());
        }
        for (s, j) in self.domain_cache.iter_mut().zip(domains) {
            s.idle = snap::get_usize(j, "idle")?;
            s.load = snap::get_f64_bits(j, "load")?;
        }
        self.socket_cache_at = snap::get_opt_time(state, "socket_cache_at")?;
        let n = self.cores.len();
        self.online = CpuSet::new(n);
        for c in snap::get_arr(state, "online")? {
            self.online.insert(CoreId(snap::elem_u64(c)? as u32));
        }
        // Re-derive the acceleration indexes from the restored state.
        self.idle = CpuSet::new(n);
        self.idle_free = CpuSet::new(n);
        self.queued = CpuSet::new(n);
        for i in 0..n {
            self.reindex(CoreId(i as u32));
        }
        Ok(())
    }

    /// Returns the per-task state.
    pub fn task(&self, task: TaskId) -> &TaskSched {
        &self.tasks[task.index()]
    }

    /// Returns the per-task state mutably.
    pub fn task_mut(&mut self, task: TaskId) -> &mut TaskSched {
        &mut self.tasks[task.index()]
    }

    /// Returns the per-core state.
    pub fn core(&self, core: CoreId) -> &CoreK {
        &self.cores[core.index()]
    }

    /// Core load as CFS compares it: the decaying utilization plus the
    /// runnable count. A long-idle core scores ~0; a recently vacated one
    /// keeps a residual — making CFS prefer the long-idle (cold) core.
    pub fn core_load(&self, now: Time, core: CoreId) -> f64 {
        let c = &self.cores[core.index()];
        c.util.value(now) + c.nr_running() as f64
    }

    /// Marks the start of a placement targeting `core`.
    pub fn begin_placement(&mut self, core: CoreId) {
        self.cores[core.index()].pending += 1;
        self.reindex(core);
    }

    /// Abandons a pending placement (e.g. an Smove timer re-route).
    ///
    /// # Panics
    ///
    /// Panics if no placement was pending.
    pub fn cancel_placement(&mut self, core: CoreId) {
        let c = &mut self.cores[core.index()];
        assert!(c.pending > 0, "no pending placement on {core}");
        c.pending -= 1;
        self.reindex(core);
    }

    /// Commits a placement: enqueues `task` on `core`.
    ///
    /// Returns `true` if the newly enqueued task should preempt the
    /// running task (wakeup preemption).
    ///
    /// # Panics
    ///
    /// Panics if no placement was pending on `core`.
    pub fn commit_placement(&mut self, now: Time, task: TaskId, core: CoreId) -> bool {
        self.cancel_placement(core);
        self.enqueue(now, task, core)
    }

    /// Enqueues `task` on `core` (no pending bookkeeping); returns the
    /// wakeup-preemption decision.
    pub fn enqueue(&mut self, now: Time, task: TaskId, core: CoreId) -> bool {
        let min_vr = self.cores[core.index()].min_vruntime;
        let t = &mut self.tasks[task.index()];
        t.vruntime = t.vruntime.max(min_vr.saturating_sub(SLEEPER_CREDIT_NS));
        let vr = t.vruntime;
        let c = &mut self.cores[core.index()];
        let inserted = c.rq.insert((vr, task));
        assert!(inserted, "task {task} already queued on {core}");
        c.last_used = now;
        c.util.set_running(now, true);
        let preempt = match c.curr {
            Some(curr) => {
                let curr_vr = self.tasks[curr.index()].vruntime;
                curr_vr > vr + WAKEUP_GRANULARITY_NS
            }
            None => true,
        };
        self.reindex(core);
        preempt
    }

    /// Accounts the running task's progress up to `now` (vruntime and
    /// PELT), without descheduling it.
    pub fn clock_curr(&mut self, now: Time, core: CoreId) {
        let c = &mut self.cores[core.index()];
        if let Some(curr) = c.curr {
            let ran = now.saturating_since(c.curr_started);
            if ran > 0 {
                let t = &mut self.tasks[curr.index()];
                t.vruntime += ran;
                c.curr_started = now;
                c.min_vruntime = c.min_vruntime.max(t.vruntime);
                c.last_used = now;
            }
        }
        c.util.update(now);
    }

    /// Removes the running task from the core (block, exit, migration or
    /// preemption hand-off), recording core history.
    ///
    /// # Panics
    ///
    /// Panics if no task is running on `core`.
    pub fn put_curr(&mut self, now: Time, core: CoreId) -> TaskId {
        self.clock_curr(now, core);
        let c = &mut self.cores[core.index()];
        let task = c.curr.take().expect("no current task");
        self.tasks[task.index()].util.set_running(now, false);
        self.tasks[task.index()].push_core_history(core);
        let c = &mut self.cores[core.index()];
        if c.rq.is_empty() && c.curr.is_none() {
            c.util.set_running(now, false);
        }
        self.reindex(core);
        task
    }

    /// Re-queues a preempted task on its own core (it remains runnable).
    pub fn requeue(&mut self, now: Time, task: TaskId, core: CoreId) {
        let vr = self.tasks[task.index()].vruntime;
        let c = &mut self.cores[core.index()];
        let inserted = c.rq.insert((vr, task));
        assert!(inserted, "task {task} already queued on {core}");
        c.util.set_running(now, true);
        self.reindex(core);
    }

    /// Picks the next task to run on `core` (lowest vruntime), if any.
    pub fn pick_next(&mut self, now: Time, core: CoreId) -> Option<TaskId> {
        let c = &mut self.cores[core.index()];
        assert!(c.curr.is_none(), "pick_next with a task still running");
        let first = c.rq.iter().next().copied()?;
        c.rq.remove(&first);
        let (vr, task) = first;
        c.curr = Some(task);
        c.curr_started = now;
        c.min_vruntime = c.min_vruntime.max(vr);
        c.last_used = now;
        c.util.set_running(now, true);
        self.tasks[task.index()].util.set_running(now, true);
        self.reindex(core);
        Some(task)
    }

    /// `true` if the tick should preempt the running task: something is
    /// waiting and the current task has consumed its slice.
    pub fn tick_preempt_due(&self, now: Time, core: CoreId) -> bool {
        let c = &self.cores[core.index()];
        c.curr.is_some() && !c.rq.is_empty() && now.saturating_since(c.curr_started) >= SLICE_NS
    }

    /// Removes a specific queued (not running) task from `core`'s
    /// runqueue; `true` if it was there. Used by Smove's migration timer.
    pub fn remove_queued(&mut self, task: TaskId, core: CoreId) -> bool {
        let vr = self.tasks[task.index()].vruntime;
        let removed = self.cores[core.index()].rq.remove(&(vr, task));
        if removed {
            self.reindex(core);
        }
        removed
    }

    /// Steals the queued task with the highest vruntime from `core`
    /// (load balancing never migrates the running task).
    pub fn steal_queued(&mut self, core: CoreId) -> Option<TaskId> {
        let c = &mut self.cores[core.index()];
        let last = c.rq.iter().next_back().copied()?;
        c.rq.remove(&last);
        self.reindex(core);
        Some(last.1)
    }

    /// Returns per-socket statistics, refreshed at most every
    /// [`GROUP_STATS_REFRESH_NS`]. The staleness is intentional (see type
    /// docs).
    pub fn socket_stats(&mut self, now: Time) -> &[SocketStats] {
        let fresh = matches!(self.socket_cache_at, Some(at) if now.saturating_since(at) < GROUP_STATS_REFRESH_NS);
        if !fresh {
            let _span = profile::span(profile::Subsystem::SocketStats);
            let topo = Rc::clone(&self.topo);
            self.domain_cache.fill(SocketStats::default());
            for s in topo.sockets() {
                let span = topo.socket_span(s);
                let mut idle = 0;
                let mut load = 0.0;
                for core in span.iter() {
                    if !self.online.contains(core) {
                        continue;
                    }
                    // The per-CCX accumulators ride along in the same pass;
                    // the socket running sum keeps its exact ascending-core
                    // order so existing f64 results stay bit-identical.
                    let core_load = self.core_load(now, core);
                    let ccx = &mut self.domain_cache[topo.ccx_of(core).index()];
                    if self.cores[core.index()].is_idle() {
                        idle += 1;
                        ccx.idle += 1;
                    }
                    load += core_load;
                    ccx.load += core_load;
                }
                self.socket_cache[s.index()] = SocketStats { idle, load };
            }
            self.socket_cache_at = Some(now);
        }
        &self.socket_cache
    }

    /// Returns per-CCX (last-level-cache domain) statistics, refreshed in
    /// the same pass and with the same staleness as
    /// [`KernelState::socket_stats`]. Indexed by [`nest_simcore::CcxId`].
    ///
    /// On degenerate trees (one CCX per socket — every Table 2 machine)
    /// this mirrors the socket cache exactly: both sums visit the same
    /// cores in the same order.
    pub fn domain_stats(&mut self, now: Time) -> &[SocketStats] {
        self.socket_stats(now);
        &self.domain_cache
    }

    /// Forces the socket-stats cache to refresh on next read; tests use
    /// this to bypass staleness.
    pub fn invalidate_socket_stats(&mut self) {
        self.socket_cache_at = None;
    }

    /// Returns the busiest core in `set` by queued-task count, if any has
    /// at least `min_queued` tasks waiting.
    ///
    /// For `min_queued >= 1` only cores in the queued index can qualify,
    /// so the scan covers `set ∩ queued` — usually empty or tiny — instead
    /// of the whole span. Both scans run in ascending core order with a
    /// strictly-greater comparison, so ties keep resolving to the
    /// lowest-numbered core, exactly as the full scan did.
    pub fn busiest_core_in(
        &self,
        set: &nest_topology::CpuSet,
        min_queued: usize,
    ) -> Option<CoreId> {
        let mut best: Option<(usize, CoreId)> = None;
        let mut consider = |q: usize, core: CoreId| {
            if q >= min_queued && best.is_none_or(|(bq, _)| q > bq) {
                best = Some((q, core));
            }
        };
        if min_queued == 0 {
            for core in set.iter_masked(&self.online) {
                consider(self.cores[core.index()].rq.len(), core);
            }
        } else {
            for core in set.iter_masked(&self.queued) {
                consider(self.cores[core.index()].rq.len(), core);
            }
        }
        best.map(|(_, c)| c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nest_topology::presets;

    fn kernel() -> KernelState {
        KernelState::new(Rc::new(Topology::new(presets::xeon_6130(2))))
    }

    fn new_task(k: &mut KernelState, now: Time) -> TaskId {
        let id = TaskId::from_index(k.tasks.len());
        k.register_task(id, now);
        id
    }

    #[test]
    fn enqueue_pick_run_cycle() {
        let mut k = kernel();
        let t0 = Time::ZERO;
        let task = new_task(&mut k, t0);
        let core = CoreId(3);
        k.begin_placement(core);
        assert_eq!(k.core(core).pending, 1);
        let preempt = k.commit_placement(t0, task, core);
        assert!(preempt, "idle core always 'preempts'");
        assert_eq!(k.core(core).pending, 0);
        assert_eq!(k.core(core).nr_running(), 1);
        assert!(!k.core(core).is_idle());

        let picked = k.pick_next(t0, core).unwrap();
        assert_eq!(picked, task);
        assert_eq!(k.core(core).curr, Some(task));

        let t1 = Time::from_millis(2);
        let put = k.put_curr(t1, core);
        assert_eq!(put, task);
        assert!(k.core(core).is_idle());
        assert_eq!(k.task(task).vruntime, 2_000_000);
        assert_eq!(k.task(task).prev_core, Some(core));
    }

    #[test]
    fn rq_orders_by_vruntime() {
        let mut k = kernel();
        let t0 = Time::ZERO;
        let a = new_task(&mut k, t0);
        let b = new_task(&mut k, t0);
        let core = CoreId(0);
        k.tasks[a.index()].vruntime = 100;
        k.tasks[b.index()].vruntime = 50;
        k.enqueue(t0, a, core);
        k.enqueue(t0, b, core);
        assert_eq!(k.pick_next(t0, core), Some(b));
    }

    #[test]
    fn sleeper_credit_bounds_vruntime() {
        let mut k = kernel();
        let t0 = Time::ZERO;
        let core = CoreId(0);
        let a = new_task(&mut k, t0);
        k.cores[core.index()].min_vruntime = 100_000_000;
        k.enqueue(t0, a, core);
        assert_eq!(k.task(a).vruntime, 100_000_000 - SLICE_NS);
    }

    #[test]
    fn wakeup_preemption_decision() {
        let mut k = kernel();
        let t0 = Time::ZERO;
        let core = CoreId(0);
        let running = new_task(&mut k, t0);
        k.tasks[running.index()].vruntime = 10_000_000;
        k.enqueue(t0, running, core);
        k.pick_next(t0, core);
        // A much "younger" task preempts...
        let young = new_task(&mut k, t0);
        k.tasks[young.index()].vruntime = 1_000_000;
        assert!(k.enqueue(t0, young, core));
        // ...but a near-equal one does not.
        let close = new_task(&mut k, t0);
        k.tasks[close.index()].vruntime = 9_800_000;
        assert!(!k.enqueue(t0, close, core));
    }

    #[test]
    fn tick_preempt_requires_waiters_and_elapsed_slice() {
        let mut k = kernel();
        let t0 = Time::ZERO;
        let core = CoreId(0);
        let a = new_task(&mut k, t0);
        k.enqueue(t0, a, core);
        k.pick_next(t0, core);
        assert!(
            !k.tick_preempt_due(Time::from_millis(10), core),
            "no waiter"
        );
        let b = new_task(&mut k, t0);
        k.enqueue(t0, b, core);
        assert!(
            !k.tick_preempt_due(Time::from_millis(3), core),
            "slice not used"
        );
        assert!(k.tick_preempt_due(Time::from_millis(4), core));
    }

    #[test]
    fn attachment_semantics() {
        let mut k = kernel();
        let t = new_task(&mut k, Time::ZERO);
        let ts = k.task_mut(t);
        // Never ran: no attachment.
        assert_eq!(ts.attached_core(), None);
        // Ran once on core 5: not yet attached (history of 2 required).
        ts.push_core_history(CoreId(5));
        assert_eq!(ts.attached_core(), None);
        // Ran there twice: attached.
        ts.push_core_history(CoreId(5));
        assert_eq!(ts.attached_core(), Some(CoreId(5)));
        // Migrated: attachment broken until the history re-stabilizes.
        ts.push_core_history(CoreId(6));
        assert_eq!(ts.attached_core(), None);
        ts.push_core_history(CoreId(6));
        assert_eq!(ts.attached_core(), Some(CoreId(6)));
    }

    #[test]
    fn core_load_decays_after_use() {
        let mut k = kernel();
        let t0 = Time::ZERO;
        let core = CoreId(0);
        let a = new_task(&mut k, t0);
        k.enqueue(t0, a, core);
        k.pick_next(t0, core);
        let t1 = Time::from_millis(64);
        k.put_curr(t1, core);
        let just_after = k.core_load(t1, core);
        assert!(just_after > 0.5, "{just_after}");
        let much_later = k.core_load(t1 + 320 * 1_000_000, core);
        assert!(much_later < 0.01, "{much_later}");
    }

    #[test]
    fn steal_takes_highest_vruntime() {
        let mut k = kernel();
        let t0 = Time::ZERO;
        let core = CoreId(0);
        let a = new_task(&mut k, t0);
        let b = new_task(&mut k, t0);
        k.tasks[a.index()].vruntime = 10;
        k.tasks[b.index()].vruntime = 20;
        k.enqueue(t0, a, core);
        k.enqueue(t0, b, core);
        assert_eq!(k.steal_queued(core), Some(b));
        assert_eq!(k.steal_queued(core), Some(a));
        assert_eq!(k.steal_queued(core), None);
    }

    #[test]
    fn socket_stats_are_stale_between_refreshes() {
        let mut k = kernel();
        let t0 = Time::ZERO;
        let stats = k.socket_stats(t0);
        assert_eq!(stats[0].idle, 32);
        // Occupy a core; within the refresh window the cache still claims
        // 32 idle cores.
        let a = new_task(&mut k, t0);
        k.enqueue(t0, a, CoreId(0));
        k.pick_next(t0, CoreId(0));
        let stats = k.socket_stats(t0 + 100_000);
        assert_eq!(stats[0].idle, 32, "stale view expected");
        let stats = k.socket_stats(t0 + GROUP_STATS_REFRESH_NS);
        assert_eq!(stats[0].idle, 31, "refreshed view expected");
    }

    #[test]
    fn busiest_core_respects_min_queued() {
        let mut k = kernel();
        let t0 = Time::ZERO;
        let a = new_task(&mut k, t0);
        let b = new_task(&mut k, t0);
        let c = new_task(&mut k, t0);
        k.enqueue(t0, a, CoreId(4));
        k.enqueue(t0, b, CoreId(4));
        k.enqueue(t0, c, CoreId(9));
        let all = k.topo.all_cores().clone();
        assert_eq!(k.busiest_core_in(&all, 2), Some(CoreId(4)));
        assert_eq!(k.busiest_core_in(&all, 3), None);
    }

    #[test]
    #[should_panic(expected = "already queued")]
    fn double_enqueue_panics() {
        let mut k = kernel();
        let a = new_task(&mut k, Time::ZERO);
        k.enqueue(Time::ZERO, a, CoreId(0));
        k.enqueue(Time::ZERO, a, CoreId(0));
    }

    /// Recomputes the three core indexes from scratch and compares with
    /// the incrementally maintained ones.
    fn assert_indexes_consistent(k: &KernelState) {
        for (i, c) in k.cores.iter().enumerate() {
            let core = CoreId::from_index(i);
            let on = k.is_online(core);
            assert_eq!(
                k.idle_cores().contains(core),
                on && c.is_idle(),
                "idle[{i}]"
            );
            assert_eq!(
                k.idle_unreserved_cores().contains(core),
                on && c.is_idle() && c.pending == 0,
                "idle_free[{i}]"
            );
            assert_eq!(
                k.queued_cores().contains(core),
                on && !c.rq.is_empty(),
                "queued[{i}]"
            );
        }
    }

    #[test]
    fn offline_cores_leave_every_index() {
        let mut k = kernel();
        let t0 = Time::ZERO;
        let core = CoreId(7);
        assert!(k.is_online(core));
        k.set_online(core, false);
        assert_indexes_consistent(&k);
        assert!(!k.idle_cores().contains(core));
        assert!(!k.idle_unreserved_cores().contains(core));
        assert!(!k.online_cores().contains(core));
        // Mechanical mutations still work while offline (the engine
        // drains displaced tasks through them) but never re-index the
        // core as available.
        let a = new_task(&mut k, t0);
        k.enqueue(t0, a, core);
        assert!(!k.queued_cores().contains(core));
        assert_eq!(k.steal_queued(core), Some(a));
        k.set_online(core, true);
        assert_indexes_consistent(&k);
        assert!(k.idle_cores().contains(core));
    }

    #[test]
    fn socket_stats_and_busiest_skip_offline_cores() {
        let mut k = kernel();
        let t0 = Time::ZERO;
        k.set_online(CoreId(3), false);
        let stats = k.socket_stats(t0);
        assert_eq!(stats[0].idle, 31, "offline core is not idle capacity");
        let all = k.topo.all_cores().clone();
        let a = new_task(&mut k, t0);
        k.enqueue(t0, a, CoreId(3));
        assert_eq!(
            k.busiest_core_in(&all, 0),
            Some(CoreId(0)),
            "min_queued=0 scan must skip the offline core"
        );
        assert_eq!(k.busiest_core_in(&all, 1), None);
    }

    #[test]
    fn core_indexes_track_every_mutation() {
        let mut k = kernel();
        let t0 = Time::ZERO;
        assert_eq!(k.idle_cores().len(), 64);
        assert_eq!(k.idle_unreserved_cores().len(), 64);
        assert!(k.queued_cores().is_empty());

        let a = new_task(&mut k, t0);
        let b = new_task(&mut k, t0);
        let c = new_task(&mut k, t0);
        let core = CoreId(5);

        k.begin_placement(core);
        assert_indexes_consistent(&k);
        assert!(k.idle_cores().contains(core));
        assert!(!k.idle_unreserved_cores().contains(core));

        k.commit_placement(t0, a, core);
        assert_indexes_consistent(&k);
        assert!(!k.idle_cores().contains(core));
        assert!(k.queued_cores().contains(core));

        k.pick_next(t0, core);
        assert_indexes_consistent(&k);
        assert!(!k.queued_cores().contains(core), "rq drained");

        k.enqueue(t0, b, core);
        k.enqueue(t0, c, core);
        assert_indexes_consistent(&k);

        assert_eq!(k.steal_queued(core), Some(c));
        assert!(k.remove_queued(b, core));
        assert_indexes_consistent(&k);

        let t1 = Time::from_millis(1);
        k.put_curr(t1, core);
        assert_indexes_consistent(&k);
        assert!(k.idle_cores().contains(core));
        assert!(k.idle_unreserved_cores().contains(core));

        k.begin_placement(core);
        k.cancel_placement(core);
        assert_indexes_consistent(&k);
        assert!(k.idle_unreserved_cores().contains(core));

        // Requeue path (preemption hand-off).
        k.enqueue(t1, a, core);
        k.pick_next(t1, core);
        let prev = k.put_curr(t1, core);
        k.requeue(t1, prev, core);
        assert_indexes_consistent(&k);
        assert!(k.queued_cores().contains(core));
    }

    #[test]
    fn domain_stats_refine_socket_stats() {
        use nest_topology::NumaKind;
        // 2 sockets × 2 CCX × 4 phys, SMT-1: CCXs are cores 0-3, 4-7,
        // 8-11, 12-15.
        let mut k = KernelState::new(Rc::new(Topology::new(presets::synth(
            2,
            2,
            4,
            1,
            NumaKind::Flat,
        ))));
        let t0 = Time::ZERO;
        let a = new_task(&mut k, t0);
        k.enqueue(t0, a, CoreId(5));
        k.pick_next(t0, CoreId(5));
        k.invalidate_socket_stats();
        let domains = k.domain_stats(t0).to_vec();
        assert_eq!(domains.len(), 4);
        assert_eq!(domains[0].idle, 4);
        assert_eq!(domains[1].idle, 3, "core 5 is busy in CCX 1");
        assert_eq!(domains[2].idle, 4);
        assert_eq!(domains[3].idle, 4);
        // Per-socket counts are the sum of their CCXs.
        let sockets = k.socket_stats(t0).to_vec();
        assert_eq!(sockets[0].idle, domains[0].idle + domains[1].idle);
        assert_eq!(sockets[1].idle, domains[2].idle + domains[3].idle);
        assert_eq!(
            sockets[0].load.to_bits(),
            (domains[0].load + domains[1].load).to_bits()
        );
    }

    #[test]
    fn domain_stats_mirror_sockets_on_degenerate_trees() {
        let mut k = kernel();
        let t0 = Time::ZERO;
        let a = new_task(&mut k, t0);
        k.enqueue(t0, a, CoreId(2));
        let sockets = k.socket_stats(t0).to_vec();
        let domains = k.domain_stats(t0).to_vec();
        assert_eq!(sockets.len(), domains.len());
        for (s, d) in sockets.iter().zip(&domains) {
            assert_eq!(s.idle, d.idle);
            assert_eq!(s.load.to_bits(), d.load.to_bits());
        }
    }

    #[test]
    fn busiest_core_fast_path_matches_full_scan() {
        let mut k = kernel();
        let t0 = Time::ZERO;
        for (core, n) in [(3u32, 2usize), (9, 3), (40, 3)] {
            for _ in 0..n {
                let t = new_task(&mut k, t0);
                k.enqueue(t0, t, CoreId(core));
            }
        }
        let all = k.topo.all_cores().clone();
        // Ties (9 and 40 both have 3 queued) resolve to the lower core.
        assert_eq!(k.busiest_core_in(&all, 1), Some(CoreId(9)));
        assert_eq!(k.busiest_core_in(&all, 3), Some(CoreId(9)));
        assert_eq!(k.busiest_core_in(&all, 4), None);
        // min_queued == 0 exercises the full-scan path; same answer.
        assert_eq!(k.busiest_core_in(&all, 0), Some(CoreId(9)));
    }
}
