//! The CFS baseline: Linux v5.9's placement heuristics as §2.1 describes
//! them.
//!
//! **Fork** descends the scheduling domains from the top: choose the
//! idlest socket from *cached* (hence slightly stale) group statistics,
//! then the best core within it, scanning in numerical order from the
//! forking core and preferring, among idle cores, the one with the lowest
//! decaying load — which disfavors recently used (warm) cores and causes
//! the dispersal the paper's Figure 2(a) shows.
//!
//! **Wakeup** considers only the target LLC domain: first a fully idle
//! SMT pair, then a budget-limited scan for any idle core, then the
//! target's hyperthread, else the target itself. It is *not* work
//! conserving; Nest optionally extends the search to all domains (§3.4).
//!
//! **Load balancing** is shared by all policies: newidle pulls from the
//! busiest core of the same LLC domain, and periodic ticks pull first
//! within the domain, at a longer period across the machine — resolving
//! overloads only gradually (§5.4).
//!
//! The "die" of the paper's Table 2 machines is both the socket and the
//! last-level cache; on those degenerate trees every domain-scoped scan
//! below visits exactly the cores (in exactly the order) the socket scan
//! did. On multi-CCX machines the scans narrow to the CCX — Linux's
//! `sd_llc` — and the fork descent gains a middle level (socket → CCX →
//! core), so no single decision walks more than one CCX plus the
//! per-domain statistics vector.

use nest_simcore::{profile, CcxId, CoreId, PlacementPath, TaskId};
use nest_topology::CpuSet;

use crate::kernel::KernelState;
use crate::policy::{IdleAction, IdleReason, Placement, SchedEnv, SchedPolicy};

/// Tunables for the CFS heuristics.
#[derive(Clone, Debug)]
pub struct CfsParams {
    /// Maximum cores examined by the wakeup idle scan once no fully idle
    /// SMT pair exists (`select_idle_cpu`'s bounded effort).
    pub wakeup_scan_budget: usize,
    /// Ticks between same-die periodic balance attempts by idle cores.
    pub die_balance_ticks: u64,
    /// Ticks between machine-wide periodic balance attempts by idle cores.
    pub numa_balance_ticks: u64,
}

impl Default for CfsParams {
    fn default() -> CfsParams {
        CfsParams {
            wakeup_scan_budget: 8,
            die_balance_ticks: 4,
            numa_balance_ticks: 32,
        }
    }
}

/// The CFS policy.
pub struct Cfs {
    params: CfsParams,
}

impl Cfs {
    /// Creates CFS with default parameters.
    pub fn new() -> Cfs {
        Cfs {
            params: CfsParams::default(),
        }
    }

    /// Creates CFS with explicit parameters.
    pub fn with_params(params: CfsParams) -> Cfs {
        Cfs { params }
    }
}

impl Default for Cfs {
    fn default() -> Cfs {
        Cfs::new()
    }
}

/// `true` if `core` can receive a placement: online, idle, and (when
/// `respect_pending`) no in-flight placement targets it. CFS passes
/// `false` — ignoring in-flight placements is exactly the §3.4 race — and
/// Nest passes `true` (its compare-and-swap reservation flag).
pub fn idle_ok(k: &KernelState, core: CoreId, respect_pending: bool) -> bool {
    let c = k.core(core);
    k.is_online(core) && c.is_idle() && (!respect_pending || c.pending == 0)
}

/// CFS fork-time selection (`find_idlest_group`/`find_idlest_cpu`).
pub fn select_fork(
    k: &mut KernelState,
    env: &mut SchedEnv<'_>,
    parent_core: CoreId,
    respect_pending: bool,
) -> CoreId {
    let _span = profile::span(profile::Subsystem::CfsFork);
    // Top level: idlest socket from the (stale) cached statistics; ties
    // favor the local socket, as Linux prefers not to migrate at fork.
    let topo = env.topo;
    let home = topo.socket_of(parent_core);
    // Sockets with no online core cannot host anything; under hotplug a
    // fully dead home socket forfeits its tie-breaking privilege.
    let online_socks: u64 = topo
        .sockets()
        .filter(|&s| topo.socket_span(s).intersects(k.online_cores()))
        .fold(0, |m, s| m | 1 << s.index());
    let has_online = |s: nest_simcore::SocketId| online_socks & (1 << s.index()) != 0;
    let stats = k.socket_stats(env.now);
    let mut best = if has_online(home) {
        home
    } else {
        topo.sockets()
            .find(|&s| has_online(s))
            .expect("at least one core online")
    };
    let mut best_key = (stats[best.index()].idle, -stats[best.index()].load);
    for s in topo.sockets() {
        if !has_online(s) {
            continue;
        }
        let key = (stats[s.index()].idle, -stats[s.index()].load);
        if key > best_key {
            best = s;
            best_key = key;
        }
    }
    if !topo.has_subsocket_domains() {
        return select_idlest_in(k, env, topo.socket_span(best), parent_core, respect_pending);
    }
    // Middle level (multi-CCX machines only): the idlest CCX within the
    // chosen socket, from the same stale cache and with the same
    // `(idle, -load)` key; the parent's CCX keeps the home tie-breaking
    // privilege when it lies in the chosen socket. The final core scan
    // then covers one CCX, not a whole socket.
    let dstats = k.domain_stats(env.now).to_vec();
    let ccx_online = |cx: CcxId| topo.ccx_span(cx).intersects(k.online_cores());
    let home_ccx = topo.ccx_of(parent_core);
    let mut best_ccx = if topo.domains().socket_of_ccx(home_ccx) == best && ccx_online(home_ccx) {
        home_ccx
    } else {
        topo.domains()
            .ccxs_in_socket(best)
            .find(|&cx| ccx_online(cx))
            .expect("chosen socket has an online core")
    };
    let mut best_ccx_key = (
        dstats[best_ccx.index()].idle,
        -dstats[best_ccx.index()].load,
    );
    for cx in topo.domains().ccxs_in_socket(best) {
        if !ccx_online(cx) {
            continue;
        }
        let key = (dstats[cx.index()].idle, -dstats[cx.index()].load);
        if key > best_ccx_key {
            best_ccx = cx;
            best_ccx_key = key;
        }
    }
    select_idlest_in(
        k,
        env,
        topo.ccx_span(best_ccx),
        parent_core,
        respect_pending,
    )
}

/// Load differences below this margin are ties (Linux compares group and
/// core loads against imbalance thresholds, not exactly). Ties resolve to
/// the earlier core in scan order, so the fork search cycles within a
/// bounded set of cores whose load has decayed — the "pattern repeats"
/// behaviour of Figure 2(a) — instead of walking the whole machine.
const LOAD_EPSILON: f64 = 0.18;

/// Picks the best core within a span: among idle cores, prefer those
/// whose hyperthread is also idle, then lowest decaying load (long-idle
/// beats recently used, up to [`LOAD_EPSILON`]), scanning numerically
/// from `from`. Without idle cores, the least-loaded core wins.
fn select_idlest_in(
    k: &mut KernelState,
    env: &mut SchedEnv<'_>,
    span: &CpuSet,
    from: CoreId,
    respect_pending: bool,
) -> CoreId {
    let mut best_pair: Option<(f64, CoreId)> = None;
    let mut best_idle: Option<(f64, CoreId)> = None;
    let better =
        |load: f64, best: &Option<(f64, CoreId)>| best.is_none_or(|(l, _)| load + LOAD_EPSILON < l);
    // Only idle cores can win the pair/idle tiers, so the scan walks the
    // kernel's idle-core bitset intersected with the span instead of
    // testing `idle_ok` core by core — same cores, same order.
    let idle_set = idle_set(k, respect_pending);
    for core in span.iter_wrapping_from_masked(idle_set, from) {
        let load = k.core_load(env.now, core);
        let sib = env.topo.sibling(core);
        if idle_ok(k, sib, respect_pending) && better(load, &best_pair) {
            best_pair = Some((load, core));
        }
        if better(load, &best_idle) {
            best_idle = Some((load, core));
        }
    }
    if let Some((_, c)) = best_pair.or(best_idle) {
        return c;
    }
    // No idle core in the span: fall back to the least-loaded online
    // core. The naive scan computed this bound alongside the idle tiers;
    // splitting it out keeps the common case (idle cores exist) off the
    // full span.
    let mut best_any: Option<(f64, CoreId)> = None;
    for core in span.iter_wrapping_from(from) {
        if !k.is_online(core) {
            continue;
        }
        let any_key = k.core_load(env.now, core) + k.core(core).nr_running() as f64;
        if better(any_key, &best_any) {
            best_any = Some((any_key, core));
        }
    }
    best_any
        .map(|(_, c)| c)
        .or_else(|| k.online_cores().first())
        .expect("at least one core online")
}

/// The kernel idle-core index matching `idle_ok(_, _, respect_pending)`:
/// membership in the returned set is equivalent to the predicate.
fn idle_set(k: &KernelState, respect_pending: bool) -> &CpuSet {
    if respect_pending {
        k.idle_unreserved_cores()
    } else {
        k.idle_cores()
    }
}

/// CFS wakeup-time selection (`select_task_rq_fair` +
/// `select_idle_sibling`). With `work_conserving` (Nest's extension), the
/// idle search continues onto the other dies when the target die has no
/// idle core.
pub fn select_wakeup(
    k: &mut KernelState,
    env: &mut SchedEnv<'_>,
    task: TaskId,
    waker_core: CoreId,
    params: &CfsParams,
    work_conserving: bool,
    respect_pending: bool,
) -> CoreId {
    let _span = profile::span(profile::Subsystem::CfsWakeup);
    let topo = env.topo;
    let prev = k.task(task).prev_core.unwrap_or(waker_core);
    // Under hotplug, an offlined previous core no longer anchors the
    // search; fall back to the waker's side.
    let prev = if k.is_online(prev) { prev } else { waker_core };
    // Wake-affine: prefer the previous core's LLC domain, unless it is
    // saturated while the waker's has idle capacity. "Has an idle core"
    // is one bitset intersection against the kernel's idle index.
    let prev_llc = topo.ccx_of(prev);
    let waker_llc = topo.ccx_of(waker_core);
    let target = if prev_llc != waker_llc {
        let prev_idle = topo
            .ccx_span(prev_llc)
            .intersects(idle_set(k, respect_pending));
        let waker_idle = topo
            .ccx_span(waker_llc)
            .intersects(idle_set(k, respect_pending));
        if !prev_idle && waker_idle {
            waker_core
        } else {
            prev
        }
    } else {
        prev
    };

    if idle_ok(k, target, respect_pending) {
        return target;
    }
    let die = topo.ccx_span(topo.ccx_of(target));
    if let Some(core) = search_die_for_idle(
        k,
        env,
        die,
        target,
        Some(params.wakeup_scan_budget),
        respect_pending,
    ) {
        return core;
    }
    if work_conserving {
        // Nest §3.4: examine all other LLC domains, unbounded, nearest
        // (by NUMA distance) first.
        for cx in topo.ccxs_nearest_first(target) {
            if cx == topo.ccx_of(target) {
                continue;
            }
            let span = topo.ccx_span(cx);
            if let Some(core) = search_die_for_idle(k, env, span, target, None, respect_pending) {
                return core;
            }
        }
    }
    let sib = topo.sibling(target);
    if idle_ok(k, sib, respect_pending) {
        return sib;
    }
    if k.is_online(target) {
        return target;
    }
    // Hotplug last resort: both the anchor and its sibling are gone;
    // queue on the lowest-numbered online core.
    k.online_cores().first().expect("at least one core online")
}

/// Searches one die: fully idle SMT pair first (full scan), then any idle
/// core under the scan budget (`None` = unbounded).
fn search_die_for_idle(
    k: &mut KernelState,
    env: &mut SchedEnv<'_>,
    die: &CpuSet,
    from: CoreId,
    budget: Option<usize>,
    respect_pending: bool,
) -> Option<CoreId> {
    let idle = idle_set(k, respect_pending);
    // Dies with no idle core at all — the common case under load — cost
    // one bitset intersection instead of two failed scans.
    if !die.intersects(idle) {
        return None;
    }
    // select_idle_core: a core whose hyperthread is idle too. The masked
    // iterator visits exactly the idle die members, in the same wrapping
    // order the naive filter scan produced.
    for core in die.iter_wrapping_from_masked(idle, from) {
        if idle_ok(k, env.topo.sibling(core), respect_pending) {
            return Some(core);
        }
    }
    // select_idle_cpu: bounded scan for any idle core. The budget counts
    // *visited* die members, idle or not (`select_idle_cpu`'s cost model),
    // so the bounded pass must walk the raw span.
    match budget {
        Some(limit) => die
            .iter_wrapping_from(from)
            .take(limit)
            .find(|&core| idle_ok(k, core, respect_pending)),
        None => die.iter_wrapping_from_masked(idle, from).next(),
    }
}

/// Newidle balancing: a core that just went idle pulls one queued task
/// from the busiest core of its LLC domain.
pub fn newidle_pull_source(
    k: &mut KernelState,
    env: &mut SchedEnv<'_>,
    core: CoreId,
) -> Option<CoreId> {
    let _span = profile::span(profile::Subsystem::LoadBalance);
    let die = env.topo.ccx_span(env.topo.ccx_of(core));
    let src = k.busiest_core_in(die, 1)?;
    (src != core).then_some(src)
}

/// Periodic balancing from an idle core's tick: same-die pulls every
/// `die_balance_ticks`, machine-wide pulls every `numa_balance_ticks`
/// (staggered by core number).
pub fn periodic_pull_source(
    k: &mut KernelState,
    env: &mut SchedEnv<'_>,
    core: CoreId,
    params: &CfsParams,
) -> Option<CoreId> {
    if !k.core(core).is_idle() {
        return None;
    }
    let _span = profile::span(profile::Subsystem::LoadBalance);
    let topo = env.topo;
    let tick = env.now.tick_index() + core.index() as u64;
    if tick.is_multiple_of(params.numa_balance_ticks) {
        if let Some(src) = k.busiest_core_in(topo.all_cores(), 1) {
            if src != core {
                return Some(src);
            }
        }
    }
    if tick.is_multiple_of(params.die_balance_ticks) {
        let die = topo.ccx_span(topo.ccx_of(core));
        if let Some(src) = k.busiest_core_in(die, 1) {
            if src != core {
                return Some(src);
            }
        }
    }
    None
}

impl SchedPolicy for Cfs {
    fn name(&self) -> &'static str {
        "CFS"
    }

    fn select_core_fork(
        &mut self,
        k: &mut KernelState,
        env: &mut SchedEnv<'_>,
        _task: TaskId,
        parent_core: CoreId,
    ) -> Placement {
        let core = select_fork(k, env, parent_core, false);
        Placement::simple(core, PlacementPath::CfsFork)
    }

    fn select_core_wakeup(
        &mut self,
        k: &mut KernelState,
        env: &mut SchedEnv<'_>,
        task: TaskId,
        waker_core: CoreId,
    ) -> Placement {
        let core = select_wakeup(k, env, task, waker_core, &self.params, false, false);
        Placement::simple(core, PlacementPath::CfsWakeup)
    }

    fn on_core_idle(
        &mut self,
        k: &mut KernelState,
        env: &mut SchedEnv<'_>,
        core: CoreId,
        _reason: IdleReason,
    ) -> IdleAction {
        IdleAction {
            pull_from: newidle_pull_source(k, env, core),
            spin_ticks: 0,
        }
    }

    fn on_tick(
        &mut self,
        k: &mut KernelState,
        env: &mut SchedEnv<'_>,
        core: CoreId,
    ) -> Option<CoreId> {
        periodic_pull_source(k, env, core, &self.params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;

    use nest_freq::{FreqModel, Governor};
    use nest_simcore::{SimRng, Time};
    use nest_topology::{presets, Topology};

    struct Fixture {
        k: KernelState,
        topo: Rc<Topology>,
        freq: FreqModel,
        rng: SimRng,
    }

    impl Fixture {
        fn new() -> Fixture {
            Fixture::with_spec(presets::xeon_6130(2))
        }

        fn with_spec(spec: nest_topology::MachineSpec) -> Fixture {
            let topo = Rc::new(Topology::new(spec.clone()));
            Fixture {
                k: KernelState::new(Rc::clone(&topo)),
                freq: FreqModel::new(&spec, Governor::Schedutil),
                topo,
                rng: SimRng::new(1),
            }
        }

        // Kept for fixture parity with the nest/smove test modules.
        #[allow(dead_code)]
        fn env(&mut self, now: Time) -> SchedEnv<'_> {
            SchedEnv {
                now,
                topo: &self.topo,
                freq: &self.freq,
                rng: &mut self.rng,
            }
        }

        fn spawn(&mut self, now: Time) -> TaskId {
            let id = TaskId::from_index(self.k.tasks.len());
            self.k.register_task(id, now);
            id
        }

        /// Puts a task running on `core`.
        fn occupy(&mut self, now: Time, core: CoreId) -> TaskId {
            let t = self.spawn(now);
            self.k.enqueue(now, t, core);
            self.k.pick_next(now, core);
            t
        }
    }

    #[test]
    fn fork_on_empty_machine_prefers_local_socket() {
        let mut f = Fixture::new();
        let t = f.spawn(Time::ZERO);
        let mut env = SchedEnv {
            now: Time::ZERO,
            topo: &f.topo,
            freq: &f.freq,
            rng: &mut f.rng,
        };
        let mut cfs = Cfs::new();
        let p = cfs.select_core_fork(&mut f.k, &mut env, t, CoreId(40));
        assert_eq!(env.topo.socket_of(p.core).index(), 1);
        assert_eq!(p.path, PlacementPath::CfsFork);
    }

    #[test]
    fn fork_prefers_long_idle_over_recently_used() {
        let mut f = Fixture::new();
        // Run a task on core 1 for a while, then free it: core 1 keeps
        // residual load.
        let t0 = Time::ZERO;
        f.occupy(t0, CoreId(1));
        let t1 = Time::from_millis(64);
        f.k.put_curr(t1, CoreId(1));
        f.k.invalidate_socket_stats();
        let forker = f.occupy(t1, CoreId(0));
        let _ = forker;
        let child = f.spawn(t1);
        let mut env = SchedEnv {
            now: t1,
            topo: &f.topo,
            freq: &f.freq,
            rng: &mut f.rng,
        };
        let core = {
            let mut cfs = Cfs::new();
            cfs.select_core_fork(&mut f.k, &mut env, child, CoreId(0))
                .core
        };
        // Core 1 was just used (still warm); CFS skips it for a colder one.
        assert_ne!(core, CoreId(1), "CFS should disfavor the warm core");
        assert_ne!(core, CoreId(0), "parent core is busy");
    }

    #[test]
    fn fork_stale_stats_keep_choosing_local_socket() {
        let mut f = Fixture::new();
        let t0 = Time::ZERO;
        // Prime the cache.
        f.k.socket_stats(t0);
        // Fill socket 0 entirely (32 threads busy).
        for c in 0..32 {
            f.occupy(t0, CoreId(c));
        }
        let child = f.spawn(t0);
        let mut env = SchedEnv {
            now: t0 + 100_000, // within the 1 ms staleness window
            topo: &f.topo,
            freq: &f.freq,
            rng: &mut f.rng,
        };
        let mut cfs = Cfs::new();
        let p = cfs.select_core_fork(&mut f.k, &mut env, child, CoreId(0));
        // The stale cache still sees socket 0 as idle as socket 1, so the
        // local socket wins the tie despite being full.
        assert_eq!(env.topo.socket_of(p.core).index(), 0);
    }

    #[test]
    fn wakeup_prefers_previous_core_when_idle() {
        let mut f = Fixture::new();
        let t0 = Time::ZERO;
        let t = f.spawn(t0);
        f.k.task_mut(t).prev_core = Some(CoreId(7));
        let mut env = SchedEnv {
            now: t0,
            topo: &f.topo,
            freq: &f.freq,
            rng: &mut f.rng,
        };
        let mut cfs = Cfs::new();
        let p = cfs.select_core_wakeup(&mut f.k, &mut env, t, CoreId(0));
        assert_eq!(p.core, CoreId(7));
    }

    #[test]
    fn wakeup_is_not_work_conserving_across_dies() {
        let mut f = Fixture::new();
        let t0 = Time::ZERO;
        // Fill socket 0 completely; socket 1 fully idle.
        for c in 0..32 {
            f.occupy(t0, CoreId(c));
        }
        let t = f.spawn(t0);
        f.k.task_mut(t).prev_core = Some(CoreId(5));
        let params = CfsParams::default();
        let mut env = SchedEnv {
            now: t0,
            topo: &f.topo,
            freq: &f.freq,
            rng: &mut f.rng,
        };
        // Plain CFS with the waker on the same (full) die: stays there.
        let core = select_wakeup(&mut f.k, &mut env, t, CoreId(6), &params, false, false);
        assert_eq!(env.topo.socket_of(core).index(), 0, "CFS stacked the task");
        // Work-conserving extension escapes to socket 1.
        let core = select_wakeup(&mut f.k, &mut env, t, CoreId(6), &params, true, false);
        assert_eq!(env.topo.socket_of(core).index(), 1);
    }

    #[test]
    fn wakeup_prefers_fully_idle_smt_pair() {
        let mut f = Fixture::new();
        let t0 = Time::ZERO;
        // Occupy prev core 0 and thread 17 (sibling of 1), leaving core 1
        // half-busy and core 2 fully idle.
        f.occupy(t0, CoreId(0));
        f.occupy(t0, CoreId(17));
        let t = f.spawn(t0);
        f.k.task_mut(t).prev_core = Some(CoreId(0));
        let params = CfsParams::default();
        let mut env = SchedEnv {
            now: t0,
            topo: &f.topo,
            freq: &f.freq,
            rng: &mut f.rng,
        };
        let core = select_wakeup(&mut f.k, &mut env, t, CoreId(0), &params, false, false);
        assert_eq!(core, CoreId(2), "expected the fully idle pair after 0/1");
    }

    #[test]
    fn wakeup_respect_pending_skips_reserved_core() {
        let mut f = Fixture::new();
        let t0 = Time::ZERO;
        let t = f.spawn(t0);
        f.k.task_mut(t).prev_core = Some(CoreId(3));
        f.k.begin_placement(CoreId(3));
        let params = CfsParams::default();
        let mut env = SchedEnv {
            now: t0,
            topo: &f.topo,
            freq: &f.freq,
            rng: &mut f.rng,
        };
        // CFS happily collides with the pending placement...
        let c = select_wakeup(&mut f.k, &mut env, t, CoreId(3), &params, false, false);
        assert_eq!(c, CoreId(3));
        // ...the reservation-aware path does not.
        let c = select_wakeup(&mut f.k, &mut env, t, CoreId(3), &params, false, true);
        assert_ne!(c, CoreId(3));
    }

    #[test]
    fn newidle_pulls_from_same_die_busiest() {
        let mut f = Fixture::new();
        let t0 = Time::ZERO;
        // Core 4 has a running task and two queued.
        f.occupy(t0, CoreId(4));
        let q1 = f.spawn(t0);
        let q2 = f.spawn(t0);
        f.k.enqueue(t0, q1, CoreId(4));
        f.k.enqueue(t0, q2, CoreId(4));
        let mut env = SchedEnv {
            now: t0,
            topo: &f.topo,
            freq: &f.freq,
            rng: &mut f.rng,
        };
        let src = newidle_pull_source(&mut f.k, &mut env, CoreId(9));
        assert_eq!(src, Some(CoreId(4)));
        // A core on the other socket does not see it via newidle.
        let src = newidle_pull_source(&mut f.k, &mut env, CoreId(40));
        assert_eq!(src, None);
    }

    /// Naive reference implementations of the scan paths that were
    /// rewritten on top of the kernel's idle/queued core bitsets. Each is
    /// a direct filter scan over the raw span — the shape the code had
    /// before the indexes — kept here as the oracle for the seeded
    /// equivalence trace below.
    mod naive {
        use super::*;

        /// `select_idlest_in` as one full-span filter scan.
        pub fn select_idlest_in(
            k: &KernelState,
            env: &SchedEnv<'_>,
            span: &CpuSet,
            from: CoreId,
            respect_pending: bool,
        ) -> CoreId {
            let better = |load: f64, best: &Option<(f64, CoreId)>| {
                best.is_none_or(|(l, _)| load + LOAD_EPSILON < l)
            };
            let mut best_pair: Option<(f64, CoreId)> = None;
            let mut best_idle: Option<(f64, CoreId)> = None;
            let mut best_any: Option<(f64, CoreId)> = None;
            for core in span.iter_wrapping_from(from) {
                if !k.is_online(core) {
                    continue;
                }
                let load = k.core_load(env.now, core);
                let any_key = load + k.core(core).nr_running() as f64;
                if better(any_key, &best_any) {
                    best_any = Some((any_key, core));
                }
                if !idle_ok(k, core, respect_pending) {
                    continue;
                }
                if idle_ok(k, env.topo.sibling(core), respect_pending) && better(load, &best_pair) {
                    best_pair = Some((load, core));
                }
                if better(load, &best_idle) {
                    best_idle = Some((load, core));
                }
            }
            best_pair
                .or(best_idle)
                .or(best_any)
                .map(|(_, c)| c)
                .or_else(|| k.online_cores().first())
                .expect("at least one core online")
        }

        /// `search_die_for_idle` as two raw-span filter scans.
        pub fn search_die_for_idle(
            k: &KernelState,
            env: &SchedEnv<'_>,
            die: &CpuSet,
            from: CoreId,
            budget: Option<usize>,
            respect_pending: bool,
        ) -> Option<CoreId> {
            for core in die.iter_wrapping_from(from) {
                if idle_ok(k, core, respect_pending)
                    && idle_ok(k, env.topo.sibling(core), respect_pending)
                {
                    return Some(core);
                }
            }
            match budget {
                Some(limit) => die
                    .iter_wrapping_from(from)
                    .take(limit)
                    .find(|&core| idle_ok(k, core, respect_pending)),
                None => die
                    .iter_wrapping_from(from)
                    .find(|&core| idle_ok(k, core, respect_pending)),
            }
        }

        /// `select_wakeup` built from the naive pieces, with the
        /// wake-affine "die has an idle core" checks as filter scans.
        pub fn select_wakeup(
            k: &KernelState,
            env: &SchedEnv<'_>,
            task: TaskId,
            waker_core: CoreId,
            params: &CfsParams,
            work_conserving: bool,
            respect_pending: bool,
        ) -> CoreId {
            let topo = env.topo;
            let prev = k.task(task).prev_core.unwrap_or(waker_core);
            let prev = if k.is_online(prev) { prev } else { waker_core };
            let has_idle = |cx| {
                topo.ccx_span(cx)
                    .iter()
                    .any(|c| idle_ok(k, c, respect_pending))
            };
            let prev_llc = topo.ccx_of(prev);
            let waker_llc = topo.ccx_of(waker_core);
            let target = if prev_llc != waker_llc && !has_idle(prev_llc) && has_idle(waker_llc) {
                waker_core
            } else {
                prev
            };
            if idle_ok(k, target, respect_pending) {
                return target;
            }
            let die = topo.ccx_span(topo.ccx_of(target));
            if let Some(core) = search_die_for_idle(
                k,
                env,
                die,
                target,
                Some(params.wakeup_scan_budget),
                respect_pending,
            ) {
                return core;
            }
            if work_conserving {
                for cx in topo.ccxs_nearest_first(target) {
                    if cx == topo.ccx_of(target) {
                        continue;
                    }
                    let span = topo.ccx_span(cx);
                    if let Some(core) =
                        search_die_for_idle(k, env, span, target, None, respect_pending)
                    {
                        return core;
                    }
                }
            }
            let sib = topo.sibling(target);
            if idle_ok(k, sib, respect_pending) {
                return sib;
            }
            if k.is_online(target) {
                return target;
            }
            k.online_cores().first().expect("at least one core online")
        }
    }

    /// Drives a seeded pseudo-random trace of kernel mutations and
    /// checks, at every step, that the bitset-indexed, domain-sharded
    /// scan paths choose exactly the core the naive full-span reference
    /// scans choose — the regression guard for the indexed rewrite
    /// (occupancy, reservations, and queued tasks all vary).
    fn run_indexed_vs_naive_trace(mut f: Fixture, seed: u64, steps: u64) {
        let last = f.topo.n_cores() as u64 - 1;
        let mut rng = SimRng::new(seed);
        let mut busy: Vec<CoreId> = Vec::new();
        let mut reserved: Vec<CoreId> = Vec::new();
        let mut offline: Vec<CoreId> = Vec::new();
        let mut now = Time::ZERO;
        for step in 0..steps {
            now += rng.uniform_u64(10_000, 2_000_000);
            match rng.uniform_u64(0, 99) {
                // Occupy an idle core.
                0..=34 => {
                    let idle: Vec<CoreId> = f.topo.all_cores().iter().collect::<Vec<_>>();
                    let idle: Vec<CoreId> = idle
                        .into_iter()
                        .filter(|&c| f.k.is_online(c) && f.k.core(c).is_idle())
                        .collect();
                    if !idle.is_empty() {
                        let c = idle[rng.uniform_u64(0, idle.len() as u64 - 1) as usize];
                        let t = f.spawn(now);
                        f.k.enqueue(now, t, c);
                        f.k.pick_next(now, c);
                        busy.push(c);
                    }
                }
                // Free a busy core (the task blocks and is dropped).
                35..=64 => {
                    if !busy.is_empty() {
                        let i = rng.uniform_u64(0, busy.len() as u64 - 1) as usize;
                        let c = busy.swap_remove(i);
                        f.k.put_curr(now, c);
                    }
                }
                // Queue an extra (not running) task on a busy core.
                65..=79 => {
                    if !busy.is_empty() {
                        let i = rng.uniform_u64(0, busy.len() as u64 - 1) as usize;
                        let t = f.spawn(now);
                        f.k.enqueue(now, t, busy[i]);
                    }
                }
                // Reserve a core (in-flight placement).
                80..=84 => {
                    let c = CoreId(rng.uniform_u64(0, last) as u32);
                    f.k.begin_placement(c);
                    reserved.push(c);
                }
                // Release a reservation.
                85..=89 => {
                    if !reserved.is_empty() {
                        let i = rng.uniform_u64(0, reserved.len() as u64 - 1) as usize;
                        f.k.cancel_placement(reserved.swap_remove(i));
                    }
                }
                // Hotplug: offline an idle, unreserved core (what the
                // engine guarantees after draining).
                90..=94 => {
                    let candidates: Vec<CoreId> = f
                        .topo
                        .all_cores()
                        .iter()
                        .filter(|&c| {
                            f.k.is_online(c) && f.k.core(c).is_idle() && f.k.core(c).pending == 0
                        })
                        .collect();
                    if candidates.len() > 8 {
                        let c =
                            candidates[rng.uniform_u64(0, candidates.len() as u64 - 1) as usize];
                        f.k.set_online(c, false);
                        offline.push(c);
                    }
                }
                // Hotplug: bring an offlined core back.
                _ => {
                    if !offline.is_empty() {
                        let i = rng.uniform_u64(0, offline.len() as u64 - 1) as usize;
                        f.k.set_online(offline.swap_remove(i), true);
                    }
                }
            }
            let from = CoreId(rng.uniform_u64(0, last) as u32);
            let waker = CoreId(rng.uniform_u64(0, last) as u32);
            let prev = CoreId(rng.uniform_u64(0, last) as u32);
            let probe = f.spawn(now);
            f.k.task_mut(probe).prev_core = Some(prev);
            let params = CfsParams::default();
            for respect_pending in [false, true] {
                let mut env = SchedEnv {
                    now,
                    topo: &f.topo,
                    freq: &f.freq,
                    rng: &mut f.rng,
                };
                let span = match step % 3 {
                    0 => env.topo.all_cores(),
                    1 => env.topo.socket_span(env.topo.socket_of(from)),
                    _ => env.topo.ccx_span(env.topo.ccx_of(from)),
                };
                let die = env.topo.ccx_span(env.topo.ccx_of(from));
                assert_eq!(
                    select_idlest_in(&mut f.k, &mut env, span, from, respect_pending),
                    naive::select_idlest_in(&f.k, &env, span, from, respect_pending),
                    "select_idlest_in diverged at step {step}"
                );
                for budget in [Some(params.wakeup_scan_budget), None] {
                    assert_eq!(
                        search_die_for_idle(&mut f.k, &mut env, die, from, budget, respect_pending),
                        naive::search_die_for_idle(&f.k, &env, die, from, budget, respect_pending),
                        "search_die_for_idle (budget {budget:?}) diverged at step {step}"
                    );
                }
                for work_conserving in [false, true] {
                    assert_eq!(
                        select_wakeup(
                            &mut f.k,
                            &mut env,
                            probe,
                            waker,
                            &params,
                            work_conserving,
                            respect_pending
                        ),
                        naive::select_wakeup(
                            &f.k,
                            &env,
                            probe,
                            waker,
                            &params,
                            work_conserving,
                            respect_pending
                        ),
                        "select_wakeup (wc {work_conserving}) diverged at step {step}"
                    );
                }
            }
            // The incremental indexes must agree with first-principles
            // per-core state after every mutation.
            for c in f.topo.all_cores().iter() {
                let core = f.k.core(c);
                let on = f.k.is_online(c);
                assert_eq!(f.k.idle_cores().contains(c), on && core.is_idle());
                assert_eq!(
                    f.k.idle_unreserved_cores().contains(c),
                    on && core.is_idle() && core.pending == 0
                );
                assert_eq!(f.k.queued_cores().contains(c), on && !core.rq.is_empty());
            }
        }
    }

    #[test]
    fn indexed_scans_match_naive_reference_on_seeded_trace() {
        let f = Fixture::new();
        assert_eq!(f.topo.n_cores(), 64);
        run_indexed_vs_naive_trace(f, 0x5EED_64C0, 600);
    }

    /// Satellite for the hierarchical-domain refactor: the same oracle on
    /// a 256-core multi-CCX synthetic machine (4 sockets × 4 CCX × 8
    /// phys, SMT-2, ring NUMA), where the CCX-scoped scans genuinely
    /// narrow the search instead of degenerating to socket spans.
    #[test]
    fn indexed_scans_match_naive_reference_on_multi_ccx_machine() {
        use nest_topology::NumaKind;
        let f = Fixture::with_spec(presets::synth(4, 4, 8, 2, NumaKind::Ring));
        assert_eq!(f.topo.n_cores(), 256);
        assert!(f.topo.has_subsocket_domains());
        run_indexed_vs_naive_trace(f, 0x5EED_256C, 250);
    }

    #[test]
    fn periodic_pull_reaches_across_sockets() {
        let mut f = Fixture::new();
        let t0 = Time::from_millis(0);
        f.occupy(t0, CoreId(4));
        let q = f.spawn(t0);
        f.k.enqueue(t0, q, CoreId(4));
        let params = CfsParams::default();
        // Pick a tick where (tick + core) % numa_balance_ticks == 0.
        let now = Time::from_millis(4 * 24); // tick 24; core 40: 64 % 8 == 0
        let mut env = SchedEnv {
            now,
            topo: &f.topo,
            freq: &f.freq,
            rng: &mut f.rng,
        };
        let src = periodic_pull_source(&mut f.k, &mut env, CoreId(40), &params);
        assert_eq!(src, Some(CoreId(4)));
    }
}
