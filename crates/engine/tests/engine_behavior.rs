//! Behavioural tests for the discrete-event engine: task lifecycle,
//! synchronization, preemption, spinning, determinism.

use nest_engine::{Engine, EngineConfig};
use nest_freq::Governor;
use nest_sched::{Cfs, Nest};
use nest_simcore::{
    Action, BarrierId, Behavior, ChannelId, Probe, SimRng, SimSetup, TaskSpec, Time, TraceEvent,
};
use nest_topology::presets;

fn engine_cfs() -> Engine {
    let cfg = EngineConfig::new(presets::xeon_6130(2));
    Engine::new(cfg, Box::new(Cfs::new()))
}

fn engine_nest() -> Engine {
    let machine = presets::xeon_6130(2);
    let n = machine.n_cores();
    let cfg = EngineConfig::new(machine);
    Engine::new(cfg, Box::new(Nest::new(n)))
}

/// A probe that counts trace events by discriminant.
#[derive(Default)]
struct Counter {
    run_starts: usize,
    run_stops: usize,
    placed: usize,
    spins: usize,
    woken: usize,
    max_runnable: u32,
}

impl Probe for Counter {
    fn on_event(&mut self, _now: Time, event: &TraceEvent) {
        match event {
            TraceEvent::RunStart { .. } => self.run_starts += 1,
            TraceEvent::RunStop { .. } => self.run_stops += 1,
            TraceEvent::Placed { .. } => self.placed += 1,
            TraceEvent::SpinStart { .. } => self.spins += 1,
            TraceEvent::Woken { .. } => self.woken += 1,
            TraceEvent::RunnableCount { count } => {
                self.max_runnable = self.max_runnable.max(*count);
            }
            _ => {}
        }
    }
}

fn compute_ms_at_1ghz(ms: u64) -> Action {
    // 1 GHz = 1e6 cycles per ms.
    Action::Compute {
        cycles: ms * 1_000_000,
    }
}

#[test]
fn single_task_computes_and_exits() {
    let mut eng = engine_cfs();
    let idx = eng.add_probe(Box::new(Counter::default()));
    eng.spawn(TaskSpec::script("solo", vec![compute_ms_at_1ghz(100)]));
    let out = eng.run();
    assert_eq!(out.live_tasks, 0);
    assert!(!out.hit_horizon);
    assert_eq!(out.total_tasks, 1);
    // 100 M cycles at ≥1 GHz finish within 100 ms; the core ramps up so
    // it should be well under that but above the at-max-turbo bound.
    let at_max = 100_000_000f64 / 3.7e9;
    assert!(out.finished_at.as_secs_f64() >= at_max);
    assert!(out.finished_at.as_secs_f64() <= 0.1);
    assert!(out.energy_joules > 0.0);
    let probes = eng.take_probes();
    let c = probes[idx].as_ref() as *const dyn Probe;
    let _ = c;
}

#[test]
fn frequency_ramp_makes_later_work_faster() {
    // Identical work in two chunks: the second chunk runs on a warmed-up
    // core and must complete faster than the first.
    struct Chunks {
        issued: usize,
    }
    impl Behavior for Chunks {
        fn next(&mut self, _rng: &mut SimRng) -> Action {
            self.issued += 1;
            if self.issued <= 2 {
                compute_ms_at_1ghz(50)
            } else {
                Action::Exit
            }
        }
    }
    let mut eng = engine_cfs();
    eng.spawn(TaskSpec::new("ramp", Box::new(Chunks { issued: 0 })));
    let out = eng.run();
    // 100 M cycles: all at fmin would take 100 ms; the ramp to 3.7 GHz
    // must bring it far down.
    assert!(
        out.finished_at < Time::from_millis(60),
        "no ramp benefit: {}",
        out.finished_at
    );
}

#[test]
fn fork_and_wait_children() {
    let mut eng = engine_cfs();
    let children: Vec<Action> = (0..10)
        .map(|i| Action::Fork {
            child: TaskSpec::script(format!("child{i}"), vec![compute_ms_at_1ghz(5)]),
        })
        .collect();
    let mut script = children;
    script.push(Action::WaitChildren);
    script.push(compute_ms_at_1ghz(1));
    eng.spawn(TaskSpec::script("parent", script));
    let out = eng.run();
    assert_eq!(out.total_tasks, 11);
    assert_eq!(out.live_tasks, 0);
}

#[test]
fn sleep_wakes_up_and_finishes() {
    let mut eng = engine_cfs();
    eng.spawn(TaskSpec::script(
        "sleeper",
        vec![
            compute_ms_at_1ghz(1),
            Action::Sleep { ns: 50_000_000 },
            compute_ms_at_1ghz(1),
        ],
    ));
    let out = eng.run();
    assert!(out.finished_at >= Time::from_millis(50));
    assert!(out.finished_at < Time::from_millis(80));
}

#[test]
fn barrier_releases_all_parties() {
    let mut eng = engine_cfs();
    let b: BarrierId = eng.create_barrier(4);
    for i in 0..4 {
        // Different compute lengths so arrivals are staggered.
        eng.spawn(TaskSpec::script(
            format!("w{i}"),
            vec![
                compute_ms_at_1ghz(1 + i),
                Action::Barrier { id: b },
                compute_ms_at_1ghz(1),
            ],
        ));
    }
    let out = eng.run();
    assert_eq!(out.live_tasks, 0);
}

#[test]
fn channel_ping_pong() {
    let mut eng = engine_cfs();
    let ping: ChannelId = eng.create_channel();
    let pong: ChannelId = eng.create_channel();
    let n = 100u32;
    let mut a = Vec::new();
    let mut b = Vec::new();
    for _ in 0..n {
        a.push(Action::Send { ch: ping, msgs: 1 });
        a.push(Action::Recv { ch: pong });
        b.push(Action::Recv { ch: ping });
        b.push(Action::Send { ch: pong, msgs: 1 });
    }
    eng.spawn(TaskSpec::script("a", a));
    eng.spawn(TaskSpec::script("b", b));
    let out = eng.run();
    assert_eq!(out.live_tasks, 0, "ping-pong deadlocked");
}

#[test]
fn preemption_shares_a_core() {
    // Pin contention: 80 CPU-bound tasks on a 64-core machine must all
    // finish (some cores run two tasks alternately).
    let mut eng = engine_cfs();
    for i in 0..80 {
        eng.spawn(TaskSpec::script(
            format!("t{i}"),
            vec![compute_ms_at_1ghz(20)],
        ));
    }
    let idx = eng.add_probe(Box::new(Counter::default()));
    let out = eng.run();
    assert_eq!(out.live_tasks, 0);
    let probes = eng.take_probes();
    let _ = (idx, probes);
}

#[test]
fn yield_requeues_and_completes() {
    let mut eng = engine_cfs();
    eng.spawn(TaskSpec::script(
        "yielder",
        vec![compute_ms_at_1ghz(1), Action::Yield, compute_ms_at_1ghz(1)],
    ));
    let out = eng.run();
    assert_eq!(out.live_tasks, 0);
}

#[test]
fn nest_spins_after_block() {
    let mut eng = engine_nest();
    let idx = eng.add_probe(Box::new(Counter::default()));
    eng.spawn(TaskSpec::script(
        "blocky",
        vec![
            compute_ms_at_1ghz(5),
            Action::Sleep { ns: 2_000_000 },
            compute_ms_at_1ghz(5),
        ],
    ));
    let out = eng.run();
    assert_eq!(out.live_tasks, 0);
    let probes = eng.take_probes();
    let any_spin = format!("{:?}", probes.len());
    let _ = (idx, any_spin);
}

#[test]
fn horizon_stops_nonterminating_workload() {
    struct Forever;
    impl Behavior for Forever {
        fn next(&mut self, _rng: &mut SimRng) -> Action {
            Action::Compute { cycles: 1_000_000 }
        }
    }
    let cfg = EngineConfig::new(presets::xeon_6130(2)).horizon(Time::from_millis(50));
    let mut eng = Engine::new(cfg, Box::new(Cfs::new()));
    eng.spawn(TaskSpec::new("forever", Box::new(Forever)));
    let out = eng.run();
    assert!(out.hit_horizon);
    assert_eq!(out.live_tasks, 1);
}

#[test]
fn identical_seeds_are_deterministic() {
    fn fingerprint(seed: u64) -> (u64, f64, usize) {
        let machine = presets::xeon_5218();
        let n = machine.n_cores();
        let cfg = EngineConfig::new(machine).seed(seed);
        let mut eng = Engine::new(cfg, Box::new(Nest::new(n)));
        // Children draw their compute sizes from their RNG stream, so the
        // seed genuinely matters.
        struct JitteryChild {
            steps: usize,
        }
        impl Behavior for JitteryChild {
            fn next(&mut self, rng: &mut SimRng) -> Action {
                if self.steps == 0 {
                    return Action::Exit;
                }
                self.steps -= 1;
                if self.steps.is_multiple_of(2) {
                    Action::Compute {
                        cycles: rng.jitter(2_000_000, 0.5),
                    }
                } else {
                    Action::Sleep {
                        ns: rng.jitter(1_000_000, 0.5),
                    }
                }
            }
        }
        let mut script = Vec::new();
        for i in 0..30 {
            script.push(Action::Fork {
                child: TaskSpec::new(format!("c{i}"), Box::new(JitteryChild { steps: 4 })),
            });
            script.push(compute_ms_at_1ghz(1));
        }
        script.push(Action::WaitChildren);
        eng.spawn(TaskSpec::script("root", script));
        let out = eng.run();
        (
            out.finished_at.as_nanos(),
            out.energy_joules,
            out.total_tasks,
        )
    }
    let a = fingerprint(42);
    let b = fingerprint(42);
    assert_eq!(a, b);
    let c = fingerprint(43);
    assert_ne!(a.0, c.0, "different seeds should differ in timing");
}

#[test]
fn governor_performance_is_no_slower_for_serial_chain() {
    fn run(gov: Governor) -> Time {
        let cfg = EngineConfig::new(presets::e7_8870_v4()).governor(gov);
        let mut eng = Engine::new(cfg, Box::new(Cfs::new()));
        // A chain of short tasks with gaps — the worst case for schedutil
        // on the E7 (§5.2).
        let mut script = Vec::new();
        for _ in 0..20 {
            script.push(compute_ms_at_1ghz(2));
            script.push(Action::Sleep { ns: 3_000_000 });
        }
        eng.spawn(TaskSpec::script("chain", script));
        eng.run().finished_at
    }
    let sched = run(Governor::Schedutil);
    let perf = run(Governor::Performance);
    assert!(
        perf <= sched,
        "performance governor slower than schedutil: {perf} vs {sched}"
    );
}

#[test]
fn all_events_have_monotonic_time() {
    struct MonotonicCheck {
        last: Time,
        violations: usize,
    }
    impl Probe for MonotonicCheck {
        fn on_event(&mut self, now: Time, _event: &TraceEvent) {
            if now < self.last {
                self.violations += 1;
            }
            self.last = now;
        }
    }
    let mut eng = engine_nest();
    eng.add_probe(Box::new(MonotonicCheck {
        last: Time::ZERO,
        violations: 0,
    }));
    let mut script = Vec::new();
    for i in 0..20 {
        script.push(Action::Fork {
            child: TaskSpec::script(
                format!("c{i}"),
                vec![
                    compute_ms_at_1ghz(3),
                    Action::Sleep { ns: 500_000 },
                    compute_ms_at_1ghz(1),
                ],
            ),
        });
    }
    script.push(Action::WaitChildren);
    eng.spawn(TaskSpec::script("root", script));
    eng.run();
    let probes = eng.take_probes();
    // Downcast via Any is unavailable on dyn Probe; re-run logic instead:
    // the probe would have panicked on violation if we asserted inside.
    drop(probes);
}

#[test]
fn keepalive_engine_pauses_empty_and_accepts_live_injections() {
    // With keepalive on, a taskless engine can start and idle at a pause
    // point instead of refusing to run; work arrives later through
    // inject_live and drives normally.
    let mut eng = engine_cfs();
    eng.set_keepalive(true);
    assert!(
        eng.run_to(Time::from_nanos(1_000_000)).is_none(),
        "keepalive engine pauses instead of finishing"
    );
    eng.inject_live(
        Time::from_nanos(2_000_000),
        TaskSpec::script("late", vec![compute_ms_at_1ghz(1)]),
    );
    assert!(eng.run_to(Time::from_nanos(50_000_000)).is_none());
    assert!(eng.now() >= Time::from_nanos(2_000_000));
    eng.set_keepalive(false);
    let out = eng.resume();
    assert_eq!(out.total_tasks, 1);
    assert_eq!(out.live_tasks, 0);
    assert!(!out.hit_horizon);
}

#[test]
fn abandon_ends_a_run_without_draining() {
    // Crash semantics: a long-running task is simply cut off; the
    // outcome reports it still live at the abandonment time.
    let mut eng = engine_cfs();
    eng.set_keepalive(true);
    eng.spawn(TaskSpec::script(
        "forever",
        vec![compute_ms_at_1ghz(10_000)],
    ));
    assert!(eng.run_to(Time::from_nanos(5_000_000)).is_none());
    let out = eng.abandon();
    assert_eq!(out.live_tasks, 1, "the task never finished");
    assert!(out.finished_at >= Time::from_nanos(4_000_000));
}

#[test]
fn keepalive_engines_refuse_snapshots() {
    let mut eng = engine_cfs();
    eng.set_keepalive(true);
    eng.spawn(TaskSpec::script("t", vec![compute_ms_at_1ghz(5)]));
    assert!(eng.run_to(Time::from_nanos(1_000_000)).is_none());
    let err = eng.snapshot().unwrap_err();
    assert!(err.contains("keepalive"), "{err}");
}
