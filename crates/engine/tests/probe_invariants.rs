//! Invariants of the probe event stream.
//!
//! Every observer in the repo — decision metrics, the trace exporter,
//! the figure probes — leans on ordering guarantees the engine never
//! states per call site. This suite pins them down over full runs:
//!
//! 1. Timestamps are monotonically non-decreasing.
//! 2. Every `RunStart` is preceded by a `Placed` for that task since its
//!    creation or last blocking `RunStop` (preemption and yield re-runs
//!    legitimately reuse the old placement).
//! 3. `SpinStart`/`SpinEnd` strictly alternate per core.
//!
//! The stream is captured with the real `nest-obs` collector, so these
//! tests also cover the capture path the `nest-sim trace` exporter uses.

use std::collections::HashSet;

use nest_engine::{Engine, EngineConfig};
use nest_obs::TraceCollector;
use nest_sched::{Cfs, Nest, SchedPolicy};
use nest_simcore::{Action, CoreId, StopReason, TaskId, TaskSpec, Time, TraceEvent};
use nest_topology::presets;

fn compute_ms_at_1ghz(ms: u64) -> Action {
    Action::Compute {
        cycles: ms * 1_000_000,
    }
}

/// A fork/sleep/yield mix: exercises fork and wakeup placements,
/// preemption re-runs, and (under Nest) idle spinning.
fn spawn_workload(eng: &mut Engine) {
    let mut script = Vec::new();
    for i in 0..24 {
        script.push(Action::Fork {
            child: TaskSpec::script(
                format!("c{i}"),
                vec![
                    compute_ms_at_1ghz(2),
                    Action::Sleep { ns: 700_000 },
                    compute_ms_at_1ghz(1),
                    Action::Yield,
                    compute_ms_at_1ghz(1),
                ],
            ),
        });
        script.push(compute_ms_at_1ghz(1));
    }
    script.push(Action::WaitChildren);
    eng.spawn(TaskSpec::script("root", script));
}

fn captured_stream(policy: Box<dyn SchedPolicy>) -> Vec<(Time, TraceEvent)> {
    let cfg = EngineConfig::new(presets::xeon_6130(2));
    let mut eng = Engine::new(cfg, policy);
    let (collector, log) = TraceCollector::new(TraceCollector::DEFAULT_CAPACITY);
    eng.add_probe(Box::new(collector));
    spawn_workload(&mut eng);
    let out = eng.run();
    assert_eq!(out.live_tasks, 0, "workload must drain");
    let log = log.borrow();
    assert_eq!(log.dropped, 0, "capture must be lossless for this check");
    assert!(!log.events.is_empty());
    log.events.clone()
}

fn check_invariants(events: &[(Time, TraceEvent)]) {
    let mut last = Time::ZERO;
    // Tasks that may not run again until a new `Placed` arrives.
    let mut needs_placement: HashSet<TaskId> = HashSet::new();
    let mut spinning: HashSet<CoreId> = HashSet::new();
    for (now, ev) in events {
        assert!(
            *now >= last,
            "timestamps regressed: {now} after {last} at {ev:?}"
        );
        last = *now;
        match ev {
            TraceEvent::TaskCreated { task, .. } => {
                needs_placement.insert(*task);
            }
            TraceEvent::Placed { task, .. } => {
                needs_placement.remove(task);
            }
            TraceEvent::RunStart { task, .. } => {
                assert!(
                    !needs_placement.contains(task),
                    "{task:?} started running without a placement"
                );
            }
            // Blocking forfeits the placement; preempt/yield re-runs
            // keep it (the task stays on its core's queue).
            TraceEvent::RunStop { task, reason, .. } if *reason == StopReason::Block => {
                needs_placement.insert(*task);
            }
            TraceEvent::SpinStart { core } => {
                assert!(spinning.insert(*core), "{core:?} started spinning twice");
            }
            TraceEvent::SpinEnd { core } => {
                assert!(
                    spinning.remove(core),
                    "{core:?} ended a spin it never began"
                );
            }
            _ => {}
        }
    }
}

#[test]
fn cfs_stream_upholds_probe_invariants() {
    let events = captured_stream(Box::new(Cfs::new()));
    check_invariants(&events);
}

#[test]
fn nest_stream_upholds_probe_invariants() {
    let machine = presets::xeon_6130(2);
    let events = captured_stream(Box::new(Nest::new(machine.n_cores())));
    check_invariants(&events);
    // The mix above blocks and wakes constantly; Nest must have spun and
    // must have reported nest lifecycle transitions through the policy
    // trace plumbing.
    let spun = events
        .iter()
        .any(|(_, e)| matches!(e, TraceEvent::SpinStart { .. }));
    assert!(spun, "Nest never spun on this blocking-heavy mix");
    let nest_events = events
        .iter()
        .filter(|(_, e)| {
            matches!(
                e,
                TraceEvent::NestExpand { .. }
                    | TraceEvent::NestShrink { .. }
                    | TraceEvent::NestCompaction { .. }
            )
        })
        .count();
    assert!(nest_events > 0, "no nest lifecycle events surfaced");
}
