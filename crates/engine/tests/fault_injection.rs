//! Behavioural tests for fault injection: hotplug, throttling,
//! stragglers, timer jitter, watchdogs, and the empty-plan inertness
//! guarantee.

use std::cell::RefCell;
use std::rc::Rc;

use nest_engine::{Engine, EngineConfig};
use nest_faults::FaultPlan;
use nest_sched::{Cfs, Nest, Smove};
use nest_simcore::{Action, Behavior, Probe, SimRng, TaskSpec, Time, TraceEvent};
use nest_topology::presets;

fn compute_ms_at_1ghz(ms: u64) -> Action {
    Action::Compute {
        cycles: ms * 1_000_000,
    }
}

/// A churny fork/sleep workload that keeps placements happening while
/// faults fire.
fn churn_script(n_children: usize) -> TaskSpec {
    let mut script = Vec::new();
    for i in 0..n_children {
        script.push(Action::Fork {
            child: TaskSpec::script(
                format!("c{i}"),
                vec![
                    compute_ms_at_1ghz(3),
                    Action::Sleep { ns: 2_000_000 },
                    compute_ms_at_1ghz(3),
                    Action::Sleep { ns: 1_000_000 },
                    compute_ms_at_1ghz(2),
                ],
            ),
        });
        script.push(compute_ms_at_1ghz(1));
    }
    script.push(Action::WaitChildren);
    // Keep the run alive past every fault window (recovery events only
    // fire while tasks are live).
    script.push(Action::Sleep { ns: 60_000_000 });
    TaskSpec::script("root", script)
}

/// State shared out of [`OfflineActivityCheck`].
#[derive(Default)]
struct OfflineStats {
    offline: std::collections::HashSet<u32>,
    ever_offline: std::collections::HashSet<u32>,
    offlines: usize,
    onlines: usize,
    violations: Vec<String>,
}

/// Tracks per-core online state from the trace and records any event
/// that targets an offline core with new activity.
struct OfflineActivityCheck {
    stats: Rc<RefCell<OfflineStats>>,
}

impl OfflineActivityCheck {
    fn new() -> (OfflineActivityCheck, Rc<RefCell<OfflineStats>>) {
        let stats = Rc::new(RefCell::new(OfflineStats::default()));
        (
            OfflineActivityCheck {
                stats: Rc::clone(&stats),
            },
            stats,
        )
    }
}

impl Probe for OfflineActivityCheck {
    fn on_event(&mut self, now: Time, event: &TraceEvent) {
        let mut s = self.stats.borrow_mut();
        match event {
            TraceEvent::CoreOffline { core } => {
                s.offline.insert(core.0);
                s.ever_offline.insert(core.0);
                s.offlines += 1;
            }
            TraceEvent::CoreOnline { core } => {
                s.offline.remove(&core.0);
                s.onlines += 1;
            }
            TraceEvent::Placed { core, .. }
            | TraceEvent::RunStart { core, .. }
            | TraceEvent::SpinStart { core }
                if s.offline.contains(&core.0) =>
            {
                s.violations
                    .push(format!("{event:?} on offline core at {now}"));
            }
            _ => {}
        }
    }
}

fn run_with_faults(
    policy: &str,
    spec: &str,
    seed: u64,
) -> (nest_engine::RunOutcome, Rc<RefCell<OfflineStats>>) {
    let machine = presets::xeon_6130(2);
    let n = machine.n_cores();
    let cfg = EngineConfig::new(machine)
        .seed(seed)
        .faults(FaultPlan::parse(spec).expect("valid fault spec"));
    let mut eng = match policy {
        "cfs" => Engine::new(cfg, Box::new(Cfs::new())),
        "nest" => Engine::new(cfg, Box::new(Nest::new(n))),
        "smove" => Engine::new(cfg, Box::new(Smove::new())),
        _ => unreachable!(),
    };
    let (probe, stats) = OfflineActivityCheck::new();
    eng.add_probe(Box::new(probe));
    eng.spawn(churn_script(24));
    let out = eng.run();
    (out, stats)
}

#[test]
fn hotplug_offlines_then_onlines_and_nothing_lands_on_dead_cores() {
    for policy in ["cfs", "nest", "smove"] {
        let (out, stats) = run_with_faults(policy, "faults:hotplug=4@5ms:20ms", 7);
        let s = stats.borrow();
        assert_eq!(out.live_tasks, 0, "{policy}: run did not complete");
        assert_eq!(s.offlines, 4, "{policy}: expected 4 offline events");
        assert_eq!(s.onlines, 4, "{policy}: expected 4 online events");
        assert!(
            s.violations.is_empty(),
            "{policy}: activity on offline cores: {:?}",
            s.violations
        );
    }
}

#[test]
fn permanent_hotplug_still_completes() {
    let (out, stats) = run_with_faults("nest", "faults:hotplug=8@2ms", 3);
    let s = stats.borrow();
    assert_eq!(out.live_tasks, 0);
    assert_eq!(s.offlines, 8);
    assert_eq!(s.onlines, 0, "no duration: cores stay down");
    assert!(s.violations.is_empty(), "{:?}", s.violations);
}

#[test]
fn throttle_caps_frequencies_on_the_faulted_socket() {
    #[derive(Default)]
    struct ThrottleStats {
        throttles: Vec<(usize, f64)>,
        max_khz_while_throttled: u64,
        throttled: bool,
        busy: std::collections::HashSet<u32>,
    }
    struct ThrottleWatch {
        stats: Rc<RefCell<ThrottleStats>>,
    }
    impl Probe for ThrottleWatch {
        fn on_event(&mut self, _now: Time, event: &TraceEvent) {
            let mut s = self.stats.borrow_mut();
            match event {
                TraceEvent::SocketThrottle { socket, factor } => {
                    s.throttles.push((*socket, *factor));
                    s.throttled = *factor < 1.0;
                }
                TraceEvent::RunStart { core, .. } => {
                    s.busy.insert(core.0);
                }
                TraceEvent::RunStop { core, .. } => {
                    s.busy.remove(&core.0);
                }
                // Only busy cores are pinned under the cap: an idle core
                // merely decays through it (its clock is gated anyway).
                TraceEvent::FreqChange { core, freq }
                    if core.0 < 32 && s.throttled && s.busy.contains(&core.0) =>
                {
                    s.max_khz_while_throttled = s.max_khz_while_throttled.max(freq.as_khz());
                }
                _ => {}
            }
        }
    }
    let machine = presets::xeon_6130(2);
    let cfg = EngineConfig::new(machine)
        .seed(5)
        .faults(FaultPlan::parse("faults:throttle=s0:0.5@5ms:40ms").unwrap());
    let mut eng = Engine::new(cfg, Box::new(Cfs::new()));
    let stats = Rc::new(RefCell::new(ThrottleStats::default()));
    eng.add_probe(Box::new(ThrottleWatch {
        stats: Rc::clone(&stats),
    }));
    eng.spawn(churn_script(24));
    let out = eng.run();
    assert_eq!(out.live_tasks, 0);
    let s = stats.borrow();
    assert_eq!(s.throttles, vec![(0, 0.5), (0, 1.0)]);
    // 0.5 × 3.7 GHz: nothing on socket 0 may exceed 1.85 GHz while the
    // throttle holds.
    assert!(
        s.max_khz_while_throttled <= 1_850_000,
        "freq {} kHz exceeds the throttled cap",
        s.max_khz_while_throttled
    );
}

#[test]
fn stragglers_spawn_run_and_exit() {
    let machine = presets::xeon_6130(2);
    let n = machine.n_cores();
    let cfg = EngineConfig::new(machine)
        .seed(11)
        .faults(FaultPlan::parse("faults:stragglers=4@3ms:10ms").unwrap());
    let mut eng = Engine::new(cfg, Box::new(Nest::new(n)));
    eng.spawn(churn_script(8));
    let out = eng.run();
    assert_eq!(out.live_tasks, 0, "stragglers must exit");
    assert_eq!(out.total_tasks, 8 + 1 + 4, "root + children + stragglers");
}

#[test]
fn fault_runs_are_deterministic_and_differ_from_fault_free() {
    fn fingerprint(spec: &str) -> (u64, f64, usize) {
        let machine = presets::xeon_6130(2);
        let n = machine.n_cores();
        let cfg = EngineConfig::new(machine)
            .seed(42)
            .faults(FaultPlan::parse(spec).unwrap());
        let mut eng = Engine::new(cfg, Box::new(Nest::new(n)));
        eng.spawn(churn_script(24));
        let out = eng.run();
        (
            out.finished_at.as_nanos(),
            out.energy_joules,
            out.total_tasks,
        )
    }
    let spec = "faults:hotplug=2@5ms:10ms,throttle=s0:0.8@8ms,jitter=200us";
    let a = fingerprint(spec);
    let b = fingerprint(spec);
    assert_eq!(a, b, "same plan, same seed: identical run");
    let free = fingerprint("faults");
    assert_ne!(a.0, free.0, "faults must actually perturb the run");
}

#[test]
fn empty_plan_matches_unconfigured_run_exactly() {
    fn fingerprint(configure: bool) -> (u64, f64, usize) {
        let machine = presets::xeon_6130(2);
        let n = machine.n_cores();
        let mut cfg = EngineConfig::new(machine).seed(9);
        if configure {
            cfg = cfg.faults(FaultPlan::parse("faults").unwrap());
        }
        let mut eng = Engine::new(cfg, Box::new(Nest::new(n)));
        eng.spawn(churn_script(16));
        let out = eng.run();
        (
            out.finished_at.as_nanos(),
            out.energy_joules,
            out.total_tasks,
        )
    }
    assert_eq!(fingerprint(false), fingerprint(true));
}

#[test]
fn event_budget_aborts_runaway_run_with_partial_results() {
    struct Forever;
    impl Behavior for Forever {
        fn next(&mut self, _rng: &mut SimRng) -> Action {
            Action::Compute { cycles: 1_000_000 }
        }
    }
    let cfg = EngineConfig::new(presets::xeon_6130(2)).event_budget(Some(5_000));
    let mut eng = Engine::new(cfg, Box::new(Cfs::new()));
    eng.spawn(TaskSpec::new("forever", Box::new(Forever)));
    let out = eng.run();
    assert!(out.aborted, "budget must abort the run");
    assert!(!out.hit_horizon);
    assert_eq!(out.live_tasks, 1);
    assert!(out.finished_at > Time::ZERO, "partial results survive");
}

#[test]
fn smove_timer_does_not_migrate_onto_dead_fallback() {
    // Offline half the machine early under Smove; its armed timers whose
    // fallback died must be dropped, and the run must still finish.
    let (out, stats) = run_with_faults("smove", "faults:hotplug=16@1ms", 13);
    assert_eq!(out.live_tasks, 0);
    let s = stats.borrow();
    assert!(s.violations.is_empty(), "{:?}", s.violations);
}

#[test]
fn offline_core_zero_is_never_chosen() {
    // Core 0 hosts initial task launch; the schedule generator must never
    // pick it, over many seeds.
    for seed in 0..16 {
        let (out, stats) = run_with_faults("nest", "faults:hotplug=8@1ms", seed);
        assert_eq!(out.live_tasks, 0);
        let s = stats.borrow();
        assert!(s.violations.is_empty());
        assert!(
            !s.ever_offline.contains(&0),
            "core 0 offlined at seed {seed}"
        );
    }
}
