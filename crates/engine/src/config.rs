//! Engine configuration.

use nest_faults::FaultPlan;
use nest_freq::Governor;
use nest_simcore::{CoreId, Time};
use nest_topology::MachineSpec;

/// Configuration of one simulation run.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// The machine to simulate.
    pub machine: MachineSpec,
    /// The power governor.
    pub governor: Governor,
    /// RNG seed; identical seeds give identical runs.
    pub seed: u64,
    /// Delay between core selection and enqueue — the §3.4 race window in
    /// which concurrent placements can collide on one core.
    pub placement_latency_ns: u64,
    /// Core on which initial tasks are launched (where the workload's
    /// launching shell "runs"); also Nest's reserve-search anchor.
    pub initial_core: CoreId,
    /// Hard stop; simulations of non-terminating workloads need one.
    pub horizon: Time,
    /// Perturbations injected through the event queue (hotplug, thermal
    /// throttling, timer jitter, stragglers). An empty plan — the default
    /// — adds no events, draws no randomness, and leaves the run
    /// byte-identical to a build without fault support.
    pub faults: FaultPlan,
    /// Watchdog: abort the run (with partial results) after dispatching
    /// this many events. Deterministic, unlike a wall-clock limit.
    pub event_budget: Option<u64>,
    /// Watchdog: abort the run after this much wall-clock time. Where the
    /// cut lands depends on host speed, so results after an abort are
    /// *not* deterministic; off by default.
    pub wall_limit: Option<std::time::Duration>,
}

impl EngineConfig {
    /// A configuration with conventional defaults for `machine`.
    pub fn new(machine: MachineSpec) -> EngineConfig {
        EngineConfig {
            machine,
            governor: Governor::Schedutil,
            seed: 1,
            placement_latency_ns: 1_500,
            initial_core: CoreId(0),
            horizon: Time::from_secs(600),
            faults: FaultPlan::default(),
            event_budget: None,
            wall_limit: None,
        }
    }

    /// Sets the governor.
    pub fn governor(mut self, governor: Governor) -> EngineConfig {
        self.governor = governor;
        self
    }

    /// Sets the seed.
    pub fn seed(mut self, seed: u64) -> EngineConfig {
        self.seed = seed;
        self
    }

    /// Sets the horizon.
    pub fn horizon(mut self, horizon: Time) -> EngineConfig {
        self.horizon = horizon;
        self
    }

    /// Sets the placement-to-enqueue latency (the §3.4 race window).
    pub fn placement_latency_ns(mut self, ns: u64) -> EngineConfig {
        self.placement_latency_ns = ns;
        self
    }

    /// Sets the core initial tasks launch from.
    pub fn initial_core(mut self, core: CoreId) -> EngineConfig {
        self.initial_core = core;
        self
    }

    /// Sets the fault-injection plan.
    pub fn faults(mut self, faults: FaultPlan) -> EngineConfig {
        self.faults = faults;
        self
    }

    /// Sets the event-budget watchdog.
    pub fn event_budget(mut self, budget: Option<u64>) -> EngineConfig {
        self.event_budget = budget;
        self
    }

    /// Sets the wall-clock watchdog.
    pub fn wall_limit(mut self, limit: Option<std::time::Duration>) -> EngineConfig {
        self.wall_limit = limit;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nest_topology::presets;

    #[test]
    fn builder_covers_every_field() {
        let cfg = EngineConfig::new(presets::xeon_5218())
            .governor(Governor::Performance)
            .seed(9)
            .horizon(Time::from_secs(5))
            .placement_latency_ns(2_000)
            .initial_core(CoreId(3))
            .faults(FaultPlan::parse("faults:hotplug=2@50ms").unwrap())
            .event_budget(Some(1_000_000))
            .wall_limit(Some(std::time::Duration::from_secs(30)));
        assert_eq!(cfg.governor, Governor::Performance);
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.horizon, Time::from_secs(5));
        assert_eq!(cfg.placement_latency_ns, 2_000);
        assert_eq!(cfg.initial_core, CoreId(3));
        assert_eq!(cfg.faults.canonical(), "hotplug=2@50ms");
        assert_eq!(cfg.event_budget, Some(1_000_000));
        assert_eq!(cfg.wall_limit, Some(std::time::Duration::from_secs(30)));
    }

    #[test]
    fn defaults_match_documented_values() {
        let cfg = EngineConfig::new(presets::xeon_5218());
        assert_eq!(cfg.placement_latency_ns, 1_500);
        assert_eq!(cfg.initial_core, CoreId(0));
        assert!(cfg.faults.is_empty());
        assert_eq!(cfg.event_budget, None);
        assert_eq!(cfg.wall_limit, None);
    }
}
