//! Engine configuration.

use nest_freq::Governor;
use nest_simcore::{CoreId, Time};
use nest_topology::MachineSpec;

/// Configuration of one simulation run.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// The machine to simulate.
    pub machine: MachineSpec,
    /// The power governor.
    pub governor: Governor,
    /// RNG seed; identical seeds give identical runs.
    pub seed: u64,
    /// Delay between core selection and enqueue — the §3.4 race window in
    /// which concurrent placements can collide on one core.
    pub placement_latency_ns: u64,
    /// Core on which initial tasks are launched (where the workload's
    /// launching shell "runs"); also Nest's reserve-search anchor.
    pub initial_core: CoreId,
    /// Hard stop; simulations of non-terminating workloads need one.
    pub horizon: Time,
}

impl EngineConfig {
    /// A configuration with conventional defaults for `machine`.
    pub fn new(machine: MachineSpec) -> EngineConfig {
        EngineConfig {
            machine,
            governor: Governor::Schedutil,
            seed: 1,
            placement_latency_ns: 1_500,
            initial_core: CoreId(0),
            horizon: Time::from_secs(600),
        }
    }

    /// Sets the governor.
    pub fn governor(mut self, governor: Governor) -> EngineConfig {
        self.governor = governor;
        self
    }

    /// Sets the seed.
    pub fn seed(mut self, seed: u64) -> EngineConfig {
        self.seed = seed;
        self
    }

    /// Sets the horizon.
    pub fn horizon(mut self, horizon: Time) -> EngineConfig {
        self.horizon = horizon;
        self
    }

    /// Sets the placement-to-enqueue latency (the §3.4 race window).
    pub fn placement_latency_ns(mut self, ns: u64) -> EngineConfig {
        self.placement_latency_ns = ns;
        self
    }

    /// Sets the core initial tasks launch from.
    pub fn initial_core(mut self, core: CoreId) -> EngineConfig {
        self.initial_core = core;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nest_topology::presets;

    #[test]
    fn builder_covers_every_field() {
        let cfg = EngineConfig::new(presets::xeon_5218())
            .governor(Governor::Performance)
            .seed(9)
            .horizon(Time::from_secs(5))
            .placement_latency_ns(2_000)
            .initial_core(CoreId(3));
        assert_eq!(cfg.governor, Governor::Performance);
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.horizon, Time::from_secs(5));
        assert_eq!(cfg.placement_latency_ns, 2_000);
        assert_eq!(cfg.initial_core, CoreId(3));
    }

    #[test]
    fn defaults_match_documented_values() {
        let cfg = EngineConfig::new(presets::xeon_5218());
        assert_eq!(cfg.placement_latency_ns, 1_500);
        assert_eq!(cfg.initial_core, CoreId(0));
    }
}
