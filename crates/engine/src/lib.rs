#![deny(missing_docs)]

//! The discrete-event OS simulator driving the Nest reproduction.
//!
//! [`Engine`] executes [`nest_simcore::TaskSpec`] behaviours on a simulated
//! machine ([`nest_topology::MachineSpec`]) under a pluggable scheduling
//! policy, with the DVFS model of [`nest_freq`] determining task progress
//! and energy.

pub mod config;
pub mod engine;

pub use config::EngineConfig;
pub use engine::{register_behaviors, Engine, RunOutcome};
