//! The discrete-event OS simulator.
//!
//! [`Engine`] executes task behaviours on a simulated machine under a
//! pluggable [`SchedPolicy`]. It owns the event queue, the kernel state
//! (runqueues), the frequency model, and the synchronization objects
//! (barriers, channels), and emits the trace that metrics collectors
//! consume.
//!
//! Fidelity notes, mapped to the paper:
//!
//! * Placement is two-phase (select → commit after
//!   [`EngineConfig::placement_latency_ns`]); selections made inside the
//!   window can collide on a core unless the policy honours the pending
//!   flag — reproducing §3.4.
//! * Compute progress scales with the physical core's current frequency;
//!   frequency ticks re-time in-flight segments.
//! * The idle loop can spin (Nest §3.2); spinning registers as hardware
//!   activity and aborts as soon as the hyperthread gets work.
//! * Smove's migration timer is honoured via [`Placement::smove_fallback`].

use std::collections::VecDeque;
use std::rc::Rc;

use nest_faults::{FaultAction, FaultSchedule};
use nest_freq::{Activity, FreqModel};
use nest_sched::kernel::KernelState;
use nest_sched::policy::{IdleReason, Placement, SchedEnv, SchedPolicy};
use nest_simcore::json::{self, Json};
use nest_simcore::{
    profile, snap, Action, BarrierId, BehaviorRegistry, ChannelId, CoreId, EventQueue, Freq,
    PlacementPath, Probe, SimRng, SimSetup, StopReason, TaskId, TaskSpec, Time, TraceEvent,
    MICROSEC, MILLISEC, TICK_NS,
};
use nest_topology::Topology;

use crate::config::EngineConfig;

/// Serialization cost of successive wakeups issued by one task (the
/// per-`wake_up` overhead on the waking core, ~1 µs). Mass wakeups
/// (barrier releases, batched sends) are staggered by this much so that
/// placement selections interleave with commits, as on real hardware.
const WAKEUP_STRIDE_NS: u64 = 1_000;

/// Outcome of a completed run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Time at which the last task exited (or the horizon).
    pub finished_at: Time,
    /// Total CPU energy consumed, in joules.
    pub energy_joules: f64,
    /// Tasks still alive at the end (0 unless the horizon cut the run).
    pub live_tasks: usize,
    /// Total tasks created over the run.
    pub total_tasks: usize,
    /// `true` if the run ended at the horizon rather than by completion.
    pub hit_horizon: bool,
    /// `true` if a watchdog ([`EngineConfig::event_budget`] or
    /// [`EngineConfig::wall_limit`]) cut the run short; the other fields
    /// then describe the partial run up to the abort.
    pub aborted: bool,
}

#[derive(Debug)]
enum Event {
    /// A selected placement lands on its runqueue.
    Commit { task: TaskId, gen: u64 },
    /// The running task's compute segment completes.
    SegmentDone { task: TaskId, gen: u64 },
    /// A blocked task becomes runnable.
    Wakeup { task: TaskId, waker_core: CoreId },
    /// Per-core scheduler ticks (4 ms), processed machine-wide.
    GlobalTick,
    /// Frequency-model update (1 ms).
    FreqTick,
    /// The idle spin loop times out.
    SpinStop { core: CoreId, gen: u64 },
    /// A spin-wait barrier released; the waiting task resumes in place.
    BarrierContinue { task: TaskId },
    /// Smove's migration timer fires.
    SmoveExpire {
        task: TaskId,
        from: CoreId,
        to: CoreId,
        gen: u64,
    },
    /// An injected fault fires (index into the materialized
    /// [`FaultSchedule`]).
    Fault(usize),
    /// A pre-registered task injection fires (index into
    /// `Engine::injections`).
    Inject(usize),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TaskState {
    /// Selected, waiting for its enqueue to commit.
    Placing,
    /// On a runqueue.
    Queued,
    /// Executing on a core.
    Running(CoreId),
    /// Blocked (sleep, wait-children, barrier, channel).
    Blocked,
    /// Finished.
    Exited,
}

struct SimTask {
    label: String,
    behavior: Box<dyn nest_simcore::Behavior>,
    rng: SimRng,
    state: TaskState,
    /// Remaining cycles of the current compute segment.
    remaining_cycles: u64,
    /// When the current running stint (re)started and at which frequency.
    seg_resumed_at: Time,
    seg_freq: Freq,
    seg_gen: u64,
    commit_gen: u64,
    smove_gen: u64,
    parent: Option<TaskId>,
    live_children: u32,
    waiting_children: bool,
    /// Busy-waiting at a barrier (OpenMP-style spin wait): the task keeps
    /// its core and does not go through wakeup placement on release.
    in_barrier: bool,
}

struct Barrier {
    parties: u32,
    waiting: Vec<TaskId>,
}

#[derive(Default)]
struct Channel {
    msgs: u64,
    waiting: VecDeque<TaskId>,
}

/// The simulator.
pub struct Engine {
    cfg: EngineConfig,
    now: Time,
    queue: EventQueue<Event>,
    kernel: KernelState,
    policy: Box<dyn SchedPolicy>,
    freq: FreqModel,
    topo: Rc<Topology>,
    tasks: Vec<SimTask>,
    barriers: Vec<Barrier>,
    channels: Vec<Channel>,
    probes: Vec<Box<dyn Probe>>,
    rng: SimRng,
    live_tasks: usize,
    runnable: u32,
    spinning: Vec<bool>,
    spin_gen: Vec<u64>,
    /// Maps a task index to the core its in-flight placement targets.
    pending_core: std::collections::HashMap<usize, CoreId>,
    /// Reusable buffer for draining policy-queued trace events.
    policy_trace: Vec<TraceEvent>,
    /// Materialized fault actions (empty for an empty plan).
    fault_schedule: FaultSchedule,
    /// Randomness reserved for fault effects (tick jitter). Seeded from
    /// the plan and the run seed; never drawn from on fault-free runs, so
    /// the main stream — and the run — stay byte-identical.
    fault_rng: SimRng,
    /// Timed task injections registered before the run (open-loop request
    /// arrivals). Each spec is taken when its event fires.
    injections: Vec<(Time, Option<TaskSpec>)>,
    /// Injections not yet fired; keeps the run loop alive while the
    /// machine is idle between arrivals.
    pending_injections: usize,
    started: bool,
    /// Keeps the event loop running even with no live tasks or pending
    /// injections (the periodic ticks self-reschedule, so the queue never
    /// drains). A fleet co-simulation sets this so host engines can idle
    /// between externally routed arrivals; never serialized — fleet runs
    /// are not snapshotable.
    keepalive: bool,
    /// Cumulative events dispatched since the run began — *including*
    /// events dispatched before a snapshot was taken, so the
    /// [`EngineConfig::event_budget`] watchdog behaves identically on a
    /// restored run and an uninterrupted one.
    events_dispatched: u64,
    /// Value of `events_dispatched` when this engine instance started
    /// (0, or the snapshot's count after a restore); the self-profiler
    /// records only the delta this instance actually dispatched.
    events_at_start: u64,
    hit_horizon: bool,
    aborted: bool,
}

impl SimSetup for Engine {
    fn create_barrier(&mut self, parties: u32) -> BarrierId {
        assert!(parties > 0, "a barrier needs at least one party");
        let id = BarrierId::from_index(self.barriers.len());
        self.barriers.push(Barrier {
            parties,
            waiting: Vec::new(),
        });
        id
    }

    fn create_channel(&mut self) -> ChannelId {
        let id = ChannelId::from_index(self.channels.len());
        self.channels.push(Channel::default());
        id
    }

    fn n_cores(&self) -> usize {
        self.topo.n_cores()
    }
}

impl Engine {
    /// Creates an engine for `cfg` under the given policy.
    pub fn new(cfg: EngineConfig, policy: Box<dyn SchedPolicy>) -> Engine {
        let topo = Rc::new(Topology::new(cfg.machine.clone()));
        let freq = FreqModel::new(&cfg.machine, cfg.governor);
        let kernel = KernelState::new(Rc::clone(&topo));
        let n = topo.n_cores();
        let fault_schedule = FaultSchedule::materialize(&cfg.faults, &topo, cfg.seed);
        let fault_rng = SimRng::new(nest_simcore::rng::mix64(
            nest_simcore::rng::hash_str(&cfg.faults.canonical()),
            cfg.seed ^ 0xFA17,
        ));
        Engine {
            rng: SimRng::new(cfg.seed),
            fault_schedule,
            fault_rng,
            freq,
            kernel,
            topo,
            now: Time::ZERO,
            queue: EventQueue::new(),
            policy,
            tasks: Vec::new(),
            barriers: Vec::new(),
            channels: Vec::new(),
            probes: Vec::new(),
            live_tasks: 0,
            runnable: 0,
            spinning: vec![false; n],
            spin_gen: vec![0; n],
            pending_core: std::collections::HashMap::new(),
            policy_trace: Vec::new(),
            injections: Vec::new(),
            pending_injections: 0,
            started: false,
            keepalive: false,
            events_dispatched: 0,
            events_at_start: 0,
            hit_horizon: false,
            aborted: false,
            cfg,
        }
    }

    /// Registers a metrics probe; returns its index for retrieval after
    /// the run.
    pub fn add_probe(&mut self, probe: Box<dyn Probe>) -> usize {
        self.probes.push(probe);
        self.probes.len() - 1
    }

    /// Takes back the probes after a run.
    pub fn take_probes(&mut self) -> Vec<Box<dyn Probe>> {
        std::mem::take(&mut self.probes)
    }

    /// Returns the topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Returns the policy name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    fn emit(&mut self, ev: TraceEvent) {
        let _span = profile::span(profile::Subsystem::TraceProbes);
        for p in &mut self.probes {
            p.on_event(self.now, &ev);
        }
    }

    /// Emits the trace events the policy queued during its last callback
    /// (e.g. Nest-lifecycle transitions), timestamped at the current time.
    fn drain_policy_trace(&mut self) {
        let mut buf = std::mem::take(&mut self.policy_trace);
        self.policy.drain_trace(&mut buf);
        for ev in buf.drain(..) {
            self.emit(ev);
        }
        self.policy_trace = buf;
    }

    fn env<'a>(
        topo: &'a Topology,
        freq: &'a FreqModel,
        rng: &'a mut SimRng,
        now: Time,
    ) -> SchedEnv<'a> {
        SchedEnv {
            now,
            topo,
            freq,
            rng,
        }
    }

    /// Launches an initial task (before or during the run). The placement
    /// goes through the policy's fork path from
    /// [`EngineConfig::initial_core`].
    pub fn spawn(&mut self, spec: TaskSpec) -> TaskId {
        let initial_core = self.cfg.initial_core;
        self.create_task(spec, None, initial_core)
    }

    /// Registers a task to be created at simulated time `at` (an open-loop
    /// arrival). Must be called before [`Engine::run`]; the run stays
    /// alive until every registered injection has fired (or the horizon
    /// cuts it), even if the machine goes fully idle between arrivals.
    ///
    /// # Panics
    ///
    /// Panics if the engine has already started running.
    pub fn inject_at(&mut self, at: Time, spec: TaskSpec) {
        assert!(!self.started, "inject_at must precede run()");
        self.injections.push((at, Some(spec)));
        self.pending_injections += 1;
    }

    /// Keeps (or stops keeping) the run alive when no tasks are live and
    /// no injections are pending. While set, [`Engine::run_to`] pauses at
    /// the requested time instead of finishing, so an external driver —
    /// the fleet co-simulation — can feed arrivals with
    /// [`Engine::inject_live`] between pauses. Clear it before the final
    /// [`Engine::resume`] to let the run drain and finish.
    pub fn set_keepalive(&mut self, on: bool) {
        self.keepalive = on;
    }

    /// Registers a task arrival at simulated time `at` on a *running*
    /// engine (paused via [`Engine::run_to`]). The arrival must not lie in
    /// the past; it enters through the same injection path as
    /// [`Engine::inject_at`], so the task is created exactly as a
    /// pre-registered arrival at the same time would be.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the engine's current time.
    pub fn inject_live(&mut self, at: Time, spec: TaskSpec) {
        if !self.started {
            self.inject_at(at, spec);
            return;
        }
        assert!(at >= self.now, "inject_live arrival lies in the past");
        let idx = self.injections.len();
        self.injections.push((at, Some(spec)));
        self.pending_injections += 1;
        self.queue.schedule(at, Event::Inject(idx));
    }

    /// Ends a run *without* draining remaining work: flushes the profiler,
    /// notifies probes, and builds the outcome from the current state. The
    /// fleet layer uses this when a host crashes mid-run — whatever was in
    /// flight on the host is simply lost. The engine must not be driven
    /// again afterwards.
    pub fn abandon(&mut self) -> RunOutcome {
        assert!(self.started, "nothing to abandon: the engine never ran");
        self.finish()
    }

    fn create_task(
        &mut self,
        spec: TaskSpec,
        parent: Option<TaskId>,
        parent_core: CoreId,
    ) -> TaskId {
        let id = TaskId::from_index(self.tasks.len());
        let rng = self.rng.fork(id.index() as u64);
        self.tasks.push(SimTask {
            label: spec.label.clone(),
            behavior: spec.behavior,
            rng,
            state: TaskState::Placing,
            remaining_cycles: 0,
            seg_resumed_at: Time::ZERO,
            seg_freq: Freq::ZERO,
            seg_gen: 0,
            commit_gen: 0,
            smove_gen: 0,
            parent,
            live_children: 0,
            waiting_children: false,
            in_barrier: false,
        });
        self.kernel.register_task(id, self.now);
        self.live_tasks += 1;
        if let Some(p) = parent {
            self.tasks[p.index()].live_children += 1;
        }
        self.emit(TraceEvent::TaskCreated {
            task: id,
            label: spec.label,
            parent,
        });
        self.set_runnable_delta(1);
        let placement = {
            let mut env = Self::env(&self.topo, &self.freq, &mut self.rng, self.now);
            self.policy
                .select_core_fork(&mut self.kernel, &mut env, id, parent_core)
        };
        self.drain_policy_trace();
        self.place(id, placement);
        id
    }

    fn set_runnable_delta(&mut self, delta: i32) {
        self.runnable = self
            .runnable
            .checked_add_signed(delta)
            .expect("runnable count underflow");
        let count = self.runnable;
        self.emit(TraceEvent::RunnableCount { count });
    }

    /// Begins the two-phase placement of a runnable task.
    fn place(&mut self, task: TaskId, placement: Placement) {
        let Placement {
            core,
            path,
            smove_fallback,
        } = placement;
        self.kernel.begin_placement(core);
        self.tasks[task.index()].state = TaskState::Placing;
        self.emit(TraceEvent::Placed { task, core, path });
        self.tasks[task.index()].commit_gen += 1;
        let gen = self.tasks[task.index()].commit_gen;
        self.queue.schedule(
            self.now + self.cfg.placement_latency_ns,
            Event::Commit { task, gen },
        );
        // Stash where the commit will land; Commit reads it back.
        self.tasks[task.index()].seg_resumed_at = self.now;
        self.pending_core.insert(task.index(), core);
        if let Some(arm) = smove_fallback {
            self.tasks[task.index()].smove_gen += 1;
            let sgen = self.tasks[task.index()].smove_gen;
            self.queue.schedule(
                self.now + arm.delay_ns,
                Event::SmoveExpire {
                    task,
                    from: core,
                    to: arm.fallback,
                    gen: sgen,
                },
            );
        }
    }

    /// Runs the simulation to completion (all tasks exited) or to the
    /// horizon.
    ///
    /// # Panics
    ///
    /// Panics if called twice, or with no spawned tasks.
    pub fn run(&mut self) -> RunOutcome {
        self.start();
        self.drive(None);
        self.finish()
    }

    /// Runs the simulation until the next pending event lies strictly
    /// after `pause_at` (every event with `t <= pause_at` has been
    /// dispatched). Returns `None` while paused — continue with
    /// [`Engine::resume`] (or snapshot first) — or the completed
    /// [`RunOutcome`] if the run ended before reaching the pause point.
    ///
    /// The pause inspects the queue without popping, so
    /// pause-snapshot-restore-continue dispatches exactly the event
    /// sequence an uninterrupted run would.
    pub fn run_to(&mut self, pause_at: Time) -> Option<RunOutcome> {
        if !self.started {
            self.start();
        }
        if self.drive(Some(pause_at)) {
            None
        } else {
            Some(self.finish())
        }
    }

    /// Resumes a paused (or freshly restored) run to completion.
    pub fn resume(&mut self) -> RunOutcome {
        assert!(self.started, "nothing to resume: the engine never ran");
        self.drive(None);
        self.finish()
    }

    /// Schedules the periodic ticks, fault plan, and registered
    /// injections, and marks the engine started.
    fn start(&mut self) {
        assert!(!self.started, "engine can only run once");
        assert!(
            !self.tasks.is_empty() || self.pending_injections > 0 || self.keepalive,
            "no tasks spawned or injections registered"
        );
        self.started = true;
        self.queue.schedule(self.now + TICK_NS, Event::GlobalTick);
        self.queue.schedule(self.now + MILLISEC, Event::FreqTick);
        for i in 0..self.fault_schedule.actions().len() {
            let at = self.fault_schedule.actions()[i].at;
            self.queue.schedule(at, Event::Fault(i));
        }
        for i in 0..self.injections.len() {
            let at = self.injections[i].0;
            self.queue.schedule(at, Event::Inject(i));
        }
    }

    /// The event loop. Returns `true` if it stopped at `pause_at` with
    /// the run still in progress, `false` if the run is over (done,
    /// horizon, or watchdog abort).
    fn drive(&mut self, pause_at: Option<Time>) -> bool {
        let wall_start = std::time::Instant::now();
        // Dispatched events are tallied in a plain field and flushed to
        // the profiler once per run: the loop body stays free of atomics.
        while self.live_tasks > 0 || self.pending_injections > 0 || self.keepalive {
            if let Some(pause) = pause_at {
                // Peek, never pop: a popped event could not go back, and
                // the snapshot must keep it.
                if self.queue.peek_time().is_some_and(|t| t > pause) {
                    return true;
                }
            }
            let Some((t, ev)) = self.queue.pop() else {
                panic!("deadlock: {} live tasks but no events", self.live_tasks);
            };
            if t > self.cfg.horizon {
                self.hit_horizon = true;
                break;
            }
            if let Some(budget) = self.cfg.event_budget {
                if self.events_dispatched >= budget {
                    self.aborted = true;
                    break;
                }
            }
            if self.events_dispatched & 0xFFFF == 0xFFFF {
                // Checked every 64 Ki events: the syscall stays off the
                // hot path, and fault-free runs (no wall limit) never
                // reach it at all.
                if let Some(limit) = self.cfg.wall_limit {
                    if wall_start.elapsed() >= limit {
                        self.aborted = true;
                        break;
                    }
                }
            }
            debug_assert!(t >= self.now, "time went backwards");
            self.now = t;
            self.events_dispatched += 1;
            let _span = profile::span(profile::Subsystem::EventDispatch);
            self.dispatch(ev);
        }
        false
    }

    /// Flushes the profiler and notifies probes; builds the outcome.
    fn finish(&mut self) -> RunOutcome {
        profile::add_events(self.events_dispatched - self.events_at_start);
        let finished_at = self.now;
        for p in &mut self.probes {
            p.on_finish(finished_at);
        }
        RunOutcome {
            finished_at,
            energy_joules: self.freq.energy_joules(finished_at),
            live_tasks: self.live_tasks,
            total_tasks: self.tasks.len(),
            hit_horizon: self.hit_horizon,
            aborted: self.aborted,
        }
    }

    fn dispatch(&mut self, ev: Event) {
        match ev {
            Event::Commit { task, gen } => self.on_commit(task, gen),
            Event::SegmentDone { task, gen } => self.on_segment_done(task, gen),
            Event::Wakeup { task, waker_core } => self.on_wakeup(task, waker_core),
            Event::GlobalTick => self.on_global_tick(),
            Event::FreqTick => self.on_freq_tick(),
            Event::SpinStop { core, gen } => self.on_spin_stop(core, gen),
            Event::BarrierContinue { task } => self.on_barrier_continue(task),
            Event::SmoveExpire {
                task,
                from,
                to,
                gen,
            } => self.on_smove_expire(task, from, to, gen),
            Event::Fault(idx) => self.on_fault(idx),
            Event::Inject(idx) => self.on_inject(idx),
        }
    }

    /// Fires a registered injection: the task enters through the policy's
    /// fork path from the initial core (or the first online core if it is
    /// offline), like a straggler spawn.
    fn on_inject(&mut self, idx: usize) {
        let spec = self.injections[idx].1.take().expect("injection fires once");
        self.pending_injections -= 1;
        let initial_core = self.cfg.initial_core;
        let parent_core = if self.kernel.is_online(initial_core) {
            initial_core
        } else {
            self.kernel
                .online_cores()
                .first()
                .expect("at least one core online")
        };
        self.create_task(spec, None, parent_core);
    }

    // ---- fault injection ---------------------------------------------

    fn on_fault(&mut self, idx: usize) {
        match self.fault_schedule.actions()[idx].action {
            FaultAction::CoreOffline(core) => self.offline_core(core),
            FaultAction::CoreOnline(core) => self.online_core(core),
            FaultAction::ThrottleStart { socket, factor } => {
                self.set_throttle(socket.index(), factor)
            }
            FaultAction::ThrottleEnd { socket } => self.set_throttle(socket.index(), 1.0),
            FaultAction::SpawnStragglers { count, duration_ns } => {
                self.spawn_stragglers(count, duration_ns)
            }
        }
    }

    /// Takes `core` offline: sheds it from the policy's core sets,
    /// migrates the running task and drains the queue, and marks the
    /// hardware idle. Ordering matters for the invariant checker: the
    /// policy shed (and its `NestShrink` trace) lands *before* the
    /// `CoreOffline` marker, and every displacement after it.
    fn offline_core(&mut self, core: CoreId) {
        if !self.kernel.is_online(core) {
            return;
        }
        // Drop from the online mask first: nothing selected from here on
        // can land on the core.
        self.kernel.set_online(core, false);
        {
            let mut env = Self::env(&self.topo, &self.freq, &mut self.rng, self.now);
            self.policy
                .on_core_offline(&mut self.kernel, &mut env, core);
        }
        self.drain_policy_trace();
        self.emit(TraceEvent::CoreOffline { core });
        self.stop_spin(core);
        // Migrate the task running there, then drain the queue; each
        // displaced task is re-placed through the policy.
        if self.kernel.core(core).curr.is_some() {
            self.account_running_segment(core);
            let prev = self.kernel.put_curr(self.now, core);
            self.cancel_segment_event(prev);
            self.tasks[prev.index()].state = TaskState::Queued;
            self.emit(TraceEvent::RunStop {
                task: prev,
                core,
                reason: StopReason::Preempt,
            });
            self.replace_displaced(prev, core);
        }
        while let Some(task) = self.kernel.steal_queued(core) {
            self.replace_displaced(task, core);
        }
        let changed = self.freq.set_activity(self.now, core, Activity::Idle);
        self.emit_freq_changes(&changed);
        self.retime_after_freq_change(&changed);
    }

    /// Brings `core` back online and lets the policy pull work onto it.
    fn online_core(&mut self, core: CoreId) {
        if self.kernel.is_online(core) {
            return;
        }
        self.kernel.set_online(core, true);
        self.emit(TraceEvent::CoreOnline { core });
        self.core_went_idle(core, IdleReason::Other);
    }

    /// Migrates a task displaced by a core offlining onto a live core
    /// chosen by the policy (an emergency load-balance move, not a
    /// two-phase placement: the dead core must be empty *now*).
    fn replace_displaced(&mut self, task: TaskId, from: CoreId) {
        let placement = {
            let mut env = Self::env(&self.topo, &self.freq, &mut self.rng, self.now);
            self.policy
                .select_core_wakeup(&mut self.kernel, &mut env, task, from)
        };
        self.drain_policy_trace();
        let target = placement.core;
        debug_assert!(self.kernel.is_online(target), "policy chose a dead core");
        self.emit(TraceEvent::Placed {
            task,
            core: target,
            path: PlacementPath::LoadBalance,
        });
        self.tasks[task.index()].state = TaskState::Queued;
        self.kernel.enqueue(self.now, task, target);
        if self.kernel.core(target).curr.is_none() {
            self.schedule_core(target);
        }
    }

    fn set_throttle(&mut self, socket: usize, factor: f64) {
        let changed = self.freq.set_socket_throttle(self.now, socket, factor);
        self.emit(TraceEvent::SocketThrottle { socket, factor });
        self.emit_freq_changes(&changed);
        self.retime_after_freq_change(&changed);
    }

    fn spawn_stragglers(&mut self, count: u32, duration_ns: u64) {
        let initial_core = self.cfg.initial_core;
        let parent_core = if self.kernel.is_online(initial_core) {
            initial_core
        } else {
            self.kernel
                .online_cores()
                .first()
                .expect("at least one core online")
        };
        for i in 0..count {
            self.create_task(
                TaskSpec {
                    label: format!("straggler{i}"),
                    behavior: Box::new(Straggler::new(duration_ns)),
                },
                None,
                parent_core,
            );
        }
    }

    // ---- placement commit -------------------------------------------

    fn on_commit(&mut self, task: TaskId, gen: u64) {
        if self.tasks[task.index()].commit_gen != gen
            || self.tasks[task.index()].state != TaskState::Placing
        {
            return;
        }
        let core = self
            .pending_core
            .remove(&task.index())
            .expect("no pending core");
        if !self.kernel.is_online(core) {
            // The target died while the placement was in flight: release
            // the §3.4 reservation (it must never leak) and re-select.
            self.kernel.cancel_placement(core);
            let placement = {
                let mut env = Self::env(&self.topo, &self.freq, &mut self.rng, self.now);
                self.policy
                    .select_core_wakeup(&mut self.kernel, &mut env, task, core)
            };
            self.drain_policy_trace();
            self.place(task, placement);
            return;
        }
        let preempt = self.kernel.commit_placement(self.now, task, core);
        self.tasks[task.index()].state = TaskState::Queued;
        self.stop_spin(core);
        if self.kernel.core(core).curr.is_none() {
            self.schedule_core(core);
        } else if preempt {
            self.preempt(core);
        }
    }

    /// Preempts the running task on `core` and runs the queue head.
    fn preempt(&mut self, core: CoreId) {
        self.account_running_segment(core);
        let prev = self.kernel.put_curr(self.now, core);
        self.cancel_segment_event(prev);
        self.tasks[prev.index()].state = TaskState::Queued;
        self.emit(TraceEvent::RunStop {
            task: prev,
            core,
            reason: StopReason::Preempt,
        });
        self.kernel.requeue(self.now, prev, core);
        self.schedule_core(core);
    }

    // ---- running / segments ------------------------------------------

    /// Picks and starts the next task on `core`; falls to the idle path
    /// if the queue is empty.
    fn schedule_core(&mut self, core: CoreId) {
        match self.kernel.pick_next(self.now, core) {
            Some(task) => self.start_running(task, core),
            None => self.core_went_idle(core, IdleReason::Other),
        }
    }

    fn start_running(&mut self, task: TaskId, core: CoreId) {
        self.tasks[task.index()].state = TaskState::Running(core);
        self.stop_spin(core);
        let sibling = self.topo.sibling(core);
        self.stop_spin(sibling);
        let changed = self.freq.set_activity(self.now, core, Activity::Busy);
        self.emit_freq_changes(&changed);
        self.retime_after_freq_change(&changed);
        self.emit(TraceEvent::RunStart { task, core });
        if self.tasks[task.index()].in_barrier {
            // Still spin-waiting: sit on the core until the release.
            return;
        }
        if self.tasks[task.index()].remaining_cycles > 0 {
            self.begin_segment(task, core);
        } else {
            self.advance_behavior(task, core);
        }
    }

    /// Schedules the completion of the current compute segment at the
    /// core's current frequency.
    fn begin_segment(&mut self, task: TaskId, core: CoreId) {
        let f = self.freq.freq_of(core);
        let t = &mut self.tasks[task.index()];
        t.seg_resumed_at = self.now;
        t.seg_freq = f;
        t.seg_gen += 1;
        let gen = t.seg_gen;
        let dur = f.nanos_for_cycles(t.remaining_cycles);
        self.queue
            .schedule(self.now + dur, Event::SegmentDone { task, gen });
    }

    /// Folds the elapsed portion of the running segment into
    /// `remaining_cycles` (used before preemption or re-timing).
    fn account_running_segment(&mut self, core: CoreId) {
        if let Some(task) = self.kernel.core(core).curr {
            let t = &mut self.tasks[task.index()];
            if t.remaining_cycles > 0 {
                let elapsed = self.now.saturating_since(t.seg_resumed_at);
                let done = t.seg_freq.cycles_in_nanos(elapsed);
                t.remaining_cycles = t.remaining_cycles.saturating_sub(done);
                t.seg_resumed_at = self.now;
            }
        }
    }

    fn cancel_segment_event(&mut self, task: TaskId) {
        // Generation bump invalidates any scheduled SegmentDone.
        self.tasks[task.index()].seg_gen += 1;
    }

    fn on_segment_done(&mut self, task: TaskId, gen: u64) {
        if self.tasks[task.index()].seg_gen != gen {
            return;
        }
        let TaskState::Running(core) = self.tasks[task.index()].state else {
            return;
        };
        self.kernel.clock_curr(self.now, core);
        self.tasks[task.index()].remaining_cycles = 0;
        self.advance_behavior(task, core);
    }

    // ---- behaviour interpretation ------------------------------------

    /// Drives the task's behaviour until it computes, blocks, or exits.
    /// The task is running on `core`.
    fn advance_behavior(&mut self, task: TaskId, core: CoreId) {
        loop {
            let action = {
                let t = &mut self.tasks[task.index()];
                t.behavior.next(&mut t.rng)
            };
            match action {
                Action::Compute { cycles } => {
                    if cycles == 0 {
                        continue;
                    }
                    self.tasks[task.index()].remaining_cycles = cycles;
                    self.begin_segment(task, core);
                    return;
                }
                Action::Sleep { ns } => {
                    self.block_current(task, core);
                    self.queue.schedule(
                        self.now + ns,
                        Event::Wakeup {
                            task,
                            waker_core: core,
                        },
                    );
                    return;
                }
                Action::Fork { child } => {
                    self.create_task(child, Some(task), core);
                    // The parent keeps running; loop for its next action.
                }
                Action::WaitChildren => {
                    if self.tasks[task.index()].live_children == 0 {
                        continue;
                    }
                    self.tasks[task.index()].waiting_children = true;
                    self.block_current(task, core);
                    return;
                }
                Action::Barrier { id } => {
                    // OpenMP-style spin-wait barrier (OMP_WAIT_POLICY
                    // active): waiters burn their core rather than
                    // sleeping, so releases do not go through wakeup
                    // placement — this is why the paper's NAS results are
                    // placement-neutral on machines where forks land
                    // cleanly (§5.4).
                    let b = &mut self.barriers[id.index()];
                    if b.waiting.len() + 1 == b.parties as usize {
                        let woken = std::mem::take(&mut b.waiting);
                        for w in woken {
                            self.tasks[w.index()].in_barrier = false;
                            self.queue
                                .schedule(self.now, Event::BarrierContinue { task: w });
                        }
                        continue;
                    }
                    b.waiting.push(task);
                    self.tasks[task.index()].in_barrier = true;
                    // The task stays on its core, busy-waiting.
                    return;
                }
                Action::Send { ch, msgs } => {
                    let mut nth = 0u64;
                    for _ in 0..msgs {
                        let c = &mut self.channels[ch.index()];
                        if let Some(r) = c.waiting.pop_front() {
                            self.queue.schedule(
                                self.now + nth * WAKEUP_STRIDE_NS,
                                Event::Wakeup {
                                    task: r,
                                    waker_core: core,
                                },
                            );
                            nth += 1;
                        } else {
                            c.msgs += 1;
                        }
                    }
                }
                Action::Recv { ch } => {
                    let c = &mut self.channels[ch.index()];
                    if c.msgs > 0 {
                        c.msgs -= 1;
                        continue;
                    }
                    c.waiting.push_back(task);
                    self.block_current(task, core);
                    return;
                }
                Action::Yield => {
                    self.account_running_segment(core);
                    let prev = self.kernel.put_curr(self.now, core);
                    debug_assert_eq!(prev, task);
                    self.cancel_segment_event(task);
                    self.tasks[task.index()].state = TaskState::Queued;
                    self.emit(TraceEvent::RunStop {
                        task,
                        core,
                        reason: StopReason::Yield,
                    });
                    self.kernel.requeue(self.now, task, core);
                    self.schedule_core(core);
                    return;
                }
                Action::Exit => {
                    self.exit_current(task, core);
                    return;
                }
            }
        }
    }

    /// Blocks the running task (it stops being runnable).
    fn block_current(&mut self, task: TaskId, core: CoreId) {
        let prev = self.kernel.put_curr(self.now, core);
        debug_assert_eq!(prev, task);
        self.cancel_segment_event(task);
        self.tasks[task.index()].state = TaskState::Blocked;
        self.emit(TraceEvent::RunStop {
            task,
            core,
            reason: StopReason::Block,
        });
        self.set_runnable_delta(-1);
        if self.kernel.core(core).rq.is_empty() {
            self.core_went_idle(core, IdleReason::TaskBlocked);
        } else {
            self.schedule_core(core);
        }
    }

    fn exit_current(&mut self, task: TaskId, core: CoreId) {
        let prev = self.kernel.put_curr(self.now, core);
        debug_assert_eq!(prev, task);
        self.cancel_segment_event(task);
        self.tasks[task.index()].state = TaskState::Exited;
        self.live_tasks -= 1;
        self.emit(TraceEvent::RunStop {
            task,
            core,
            reason: StopReason::Exit,
        });
        self.emit(TraceEvent::TaskExited { task });
        self.set_runnable_delta(-1);
        // Notify the parent.
        if let Some(parent) = self.tasks[task.index()].parent {
            let p = &mut self.tasks[parent.index()];
            p.live_children -= 1;
            if p.live_children == 0 && p.waiting_children {
                p.waiting_children = false;
                self.queue.schedule(
                    self.now,
                    Event::Wakeup {
                        task: parent,
                        waker_core: core,
                    },
                );
            }
        }
        if self.kernel.core(core).rq.is_empty() {
            self.core_went_idle(core, IdleReason::TaskExited);
        } else {
            self.schedule_core(core);
        }
    }

    // ---- wakeups ------------------------------------------------------

    /// Resumes a task whose spin-wait barrier released. If it was
    /// preempted while spinning, it resumes when next picked.
    fn on_barrier_continue(&mut self, task: TaskId) {
        if let TaskState::Running(core) = self.tasks[task.index()].state {
            if !self.tasks[task.index()].in_barrier {
                self.kernel.clock_curr(self.now, core);
                self.advance_behavior(task, core);
            }
        }
    }

    fn on_wakeup(&mut self, task: TaskId, waker_core: CoreId) {
        if self.tasks[task.index()].state != TaskState::Blocked {
            return;
        }
        self.emit(TraceEvent::Woken { task });
        self.set_runnable_delta(1);
        let placement = {
            let mut env = Self::env(&self.topo, &self.freq, &mut self.rng, self.now);
            self.policy
                .select_core_wakeup(&mut self.kernel, &mut env, task, waker_core)
        };
        self.drain_policy_trace();
        self.place(task, placement);
    }

    fn on_smove_expire(&mut self, task: TaskId, from: CoreId, to: CoreId, gen: u64) {
        if self.tasks[task.index()].smove_gen != gen {
            return;
        }
        // Only act if the task is still waiting (queued) on the tentative
        // core.
        if self.tasks[task.index()].state != TaskState::Queued {
            return;
        }
        if !self.kernel.is_online(to) {
            // The fallback core died after arming: keep the task where
            // it is rather than migrating onto a dead core.
            return;
        }
        if !self.kernel.remove_queued(task, from) {
            return;
        }
        self.emit(TraceEvent::Placed {
            task,
            core: to,
            path: PlacementPath::SmoveTimer,
        });
        self.kernel.enqueue(self.now, task, to);
        if self.kernel.core(to).curr.is_none() {
            self.schedule_core(to);
        }
    }

    // ---- idle / spinning ----------------------------------------------

    fn core_went_idle(&mut self, core: CoreId, reason: IdleReason) {
        debug_assert!(self.kernel.core(core).is_idle());
        let action = {
            let mut env = Self::env(&self.topo, &self.freq, &mut self.rng, self.now);
            self.policy
                .on_core_idle(&mut self.kernel, &mut env, core, reason)
        };
        self.drain_policy_trace();
        if let Some(src) = action.pull_from {
            if let Some(stolen) = self.kernel.steal_queued(src) {
                self.emit(TraceEvent::Placed {
                    task: stolen,
                    core,
                    path: PlacementPath::LoadBalance,
                });
                self.kernel.enqueue(self.now, stolen, core);
                self.schedule_core(core);
                return;
            }
        }
        if action.spin_ticks > 0 && !self.sibling_busy(core) {
            self.start_spin(core, action.spin_ticks);
        } else {
            let changed = self.freq.set_activity(self.now, core, Activity::Idle);
            self.emit_freq_changes(&changed);
            self.retime_after_freq_change(&changed);
        }
    }

    fn sibling_busy(&mut self, core: CoreId) -> bool {
        let sib = self.topo.sibling(core);
        self.kernel.core(sib).curr.is_some()
    }

    fn start_spin(&mut self, core: CoreId, ticks: u32) {
        self.spinning[core.index()] = true;
        self.spin_gen[core.index()] += 1;
        let gen = self.spin_gen[core.index()];
        let changed = self.freq.set_activity(self.now, core, Activity::Spinning);
        self.emit_freq_changes(&changed);
        self.retime_after_freq_change(&changed);
        self.emit(TraceEvent::SpinStart { core });
        self.queue.schedule(
            self.now + ticks as u64 * TICK_NS,
            Event::SpinStop { core, gen },
        );
    }

    /// Ends a spin (task placed here, hyperthread became busy, or
    /// timeout). Harmless if the core is not spinning.
    fn stop_spin(&mut self, core: CoreId) {
        if !self.spinning[core.index()] {
            return;
        }
        self.spinning[core.index()] = false;
        self.spin_gen[core.index()] += 1;
        self.emit(TraceEvent::SpinEnd { core });
        if self.kernel.core(core).curr.is_none() {
            let changed = self.freq.set_activity(self.now, core, Activity::Idle);
            self.emit_freq_changes(&changed);
            self.retime_after_freq_change(&changed);
        }
    }

    fn on_spin_stop(&mut self, core: CoreId, gen: u64) {
        if self.spin_gen[core.index()] != gen || !self.spinning[core.index()] {
            return;
        }
        self.stop_spin(core);
    }

    // ---- ticks ----------------------------------------------------------

    fn on_global_tick(&mut self) {
        let _span = profile::span(profile::Subsystem::TickLoop);
        // Timer-jitter fault: perturb the tick period. Fault-free runs
        // take the zero branch and draw nothing from the fault stream.
        let jitter = if self.cfg.faults.jitter_ns > 0 {
            self.fault_rng.uniform_u64(0, self.cfg.faults.jitter_ns)
        } else {
            0
        };
        self.queue
            .schedule(self.now + TICK_NS + jitter, Event::GlobalTick);
        self.freq.sample_observed();
        for i in 0..self.topo.n_cores() {
            let core = CoreId::from_index(i);
            if !self.kernel.is_online(core) {
                continue;
            }
            self.kernel.clock_curr(self.now, core);
            // Spinning cores stop as soon as the hyperthread has work.
            if self.spinning[i] && self.sibling_busy(core) {
                self.stop_spin(core);
            }
            if self.kernel.tick_preempt_due(self.now, core) {
                self.preempt(core);
            }
            // Periodic balancing can only pull from a core with queued
            // tasks, and every policy's `on_tick` is a read-only scan for
            // such a source (no RNG draws, no state changes), so when the
            // queued set is empty — the common case on an underloaded
            // machine — skipping the call is behavior-identical.
            // Re-checked per core: a preempt or steal above may requeue.
            if self.kernel.queued_cores().is_empty() {
                continue;
            }
            let pull = {
                let mut env = Self::env(&self.topo, &self.freq, &mut self.rng, self.now);
                self.policy.on_tick(&mut self.kernel, &mut env, core)
            };
            self.drain_policy_trace();
            if let Some(src) = pull {
                if self.kernel.core(core).is_idle() {
                    if let Some(stolen) = self.kernel.steal_queued(src) {
                        self.stop_spin(core);
                        self.emit(TraceEvent::Placed {
                            task: stolen,
                            core,
                            path: PlacementPath::LoadBalance,
                        });
                        self.kernel.enqueue(self.now, stolen, core);
                        self.schedule_core(core);
                    }
                }
            }
        }
    }

    fn on_freq_tick(&mut self) {
        let _span = profile::span(profile::Subsystem::FreqModel);
        self.queue.schedule(self.now + MILLISEC, Event::FreqTick);
        let changed = {
            let kernel = &self.kernel;
            let topo = &self.topo;
            let now = self.now;
            self.freq.advance(now, MILLISEC, &mut |rep: CoreId| {
                // schedutil's input: the physical core's rq utilization,
                // raised to the running task's own (migrated) utilization
                // — Linux's util_est means a warm task requests a high
                // frequency immediately on a cold core, while a core
                // hosting only fractional activity requests less. This is
                // what makes *concentration* (Nest) reach higher
                // frequencies than dispersal (CFS) at equal load.
                let mut u: f64 = 0.0;
                for core in [rep, topo.sibling(rep)] {
                    u = u.max(kernel.core(core).util.value(now));
                    if let Some(t) = kernel.core(core).curr {
                        u = u.max(kernel.task(t).util.value(now));
                    }
                }
                u
            })
        };
        self.emit_freq_changes(&changed);
        self.retime_after_freq_change(&changed);
    }

    fn emit_freq_changes(&mut self, reps: &[CoreId]) {
        for &rep in reps {
            let f = self.freq.freq_of(rep);
            let sib = self.topo.sibling(rep);
            self.emit(TraceEvent::FreqChange { core: rep, freq: f });
            if sib != rep {
                self.emit(TraceEvent::FreqChange { core: sib, freq: f });
            }
        }
    }

    /// Re-times in-flight compute segments on physical cores whose
    /// frequency changed.
    fn retime_after_freq_change(&mut self, reps: &[CoreId]) {
        for &rep in reps {
            let sib = self.topo.sibling(rep);
            let pair = [rep, sib];
            // SMT-1 machines are their own siblings; re-time once.
            let cores = if sib == rep { &pair[..1] } else { &pair[..] };
            for &core in cores {
                if let Some(task) = self.kernel.core(core).curr {
                    if self.tasks[task.index()].remaining_cycles > 0 {
                        self.account_running_segment(core);
                        self.cancel_segment_event(task);
                        if self.tasks[task.index()].remaining_cycles > 0 {
                            self.begin_segment(task, core);
                        } else {
                            // The segment finished exactly at the change.
                            self.queue.schedule(
                                self.now,
                                Event::SegmentDone {
                                    task,
                                    gen: self.tasks[task.index()].seg_gen,
                                },
                            );
                        }
                    }
                }
            }
        }
    }

    /// Returns a task's label (diagnostics, tests).
    pub fn task_label(&self, task: TaskId) -> &str {
        &self.tasks[task.index()].label
    }
}

// `pending_core` is split out to keep `place`/`on_commit` simple: it maps a
// task index to the core its in-flight placement targets.
impl Engine {
    /// Current simulated time (diagnostics, tests).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Cumulative events dispatched. Restores carry the saved tally
    /// forward, so the count compares across a pause/restore boundary.
    pub fn events_dispatched(&self) -> u64 {
        self.events_dispatched
    }
}

// ---- snapshot / restore ----------------------------------------------

/// Registry kind under which [`Straggler`] snapshots itself.
const STRAGGLER_KIND: &str = "straggler";

/// Registers the engine-defined behaviours (the straggler interference
/// task spawned by fault injection) with a restore registry.
pub fn register_behaviors(reg: &mut BehaviorRegistry) {
    reg.register(STRAGGLER_KIND, |state, _| {
        Ok(Box::new(Straggler {
            remaining_cycles: snap::get_u64(state, "remaining")?,
            sleep_next: snap::get_bool(state, "sleep_next")?,
        }))
    });
}

fn event_to_json(ev: &Event) -> Json {
    let tagged = |tag: &str, fields: Vec<(&str, Json)>| {
        let mut all = vec![("t", Json::str(tag))];
        all.extend(fields);
        json::obj(all)
    };
    let task = |t: &TaskId| Json::usize(t.index());
    let core = |c: &CoreId| Json::usize(c.index());
    match ev {
        Event::Commit { task: t, gen } => {
            tagged("commit", vec![("task", task(t)), ("gen", Json::u64(*gen))])
        }
        Event::SegmentDone { task: t, gen } => tagged(
            "seg_done",
            vec![("task", task(t)), ("gen", Json::u64(*gen))],
        ),
        Event::Wakeup {
            task: t,
            waker_core,
        } => tagged(
            "wakeup",
            vec![("task", task(t)), ("waker", core(waker_core))],
        ),
        Event::GlobalTick => tagged("tick", vec![]),
        Event::FreqTick => tagged("freq_tick", vec![]),
        Event::SpinStop { core: c, gen } => tagged(
            "spin_stop",
            vec![("core", core(c)), ("gen", Json::u64(*gen))],
        ),
        Event::BarrierContinue { task: t } => tagged("barrier_cont", vec![("task", task(t))]),
        Event::SmoveExpire {
            task: t,
            from,
            to,
            gen,
        } => tagged(
            "smove",
            vec![
                ("task", task(t)),
                ("from", core(from)),
                ("to", core(to)),
                ("gen", Json::u64(*gen)),
            ],
        ),
        Event::Fault(idx) => tagged("fault", vec![("idx", Json::usize(*idx))]),
        Event::Inject(idx) => tagged("inject", vec![("idx", Json::usize(*idx))]),
    }
}

fn event_from_json(j: &Json) -> Result<Event, String> {
    let task =
        |key: &str| -> Result<TaskId, String> { Ok(TaskId::from_index(snap::get_usize(j, key)?)) };
    let core =
        |key: &str| -> Result<CoreId, String> { Ok(CoreId::from_index(snap::get_usize(j, key)?)) };
    match snap::get_str(j, "t")? {
        "commit" => Ok(Event::Commit {
            task: task("task")?,
            gen: snap::get_u64(j, "gen")?,
        }),
        "seg_done" => Ok(Event::SegmentDone {
            task: task("task")?,
            gen: snap::get_u64(j, "gen")?,
        }),
        "wakeup" => Ok(Event::Wakeup {
            task: task("task")?,
            waker_core: core("waker")?,
        }),
        "tick" => Ok(Event::GlobalTick),
        "freq_tick" => Ok(Event::FreqTick),
        "spin_stop" => Ok(Event::SpinStop {
            core: core("core")?,
            gen: snap::get_u64(j, "gen")?,
        }),
        "barrier_cont" => Ok(Event::BarrierContinue {
            task: task("task")?,
        }),
        "smove" => Ok(Event::SmoveExpire {
            task: task("task")?,
            from: core("from")?,
            to: core("to")?,
            gen: snap::get_u64(j, "gen")?,
        }),
        "fault" => Ok(Event::Fault(snap::get_usize(j, "idx")?)),
        "inject" => Ok(Event::Inject(snap::get_usize(j, "idx")?)),
        other => Err(format!("unknown event tag \"{other}\"")),
    }
}

impl Engine {
    /// Serializes the full mutable simulation state: clock, event queue,
    /// kernel, policy, frequency model, tasks (behaviour cursors and RNG
    /// streams included), synchronization objects, and probes.
    ///
    /// Call only while paused at a [`Engine::run_to`] boundary. Fails
    /// loudly — naming the offender — if any live behaviour or attached
    /// probe does not support snapshots (e.g. the trace collector).
    pub fn snapshot(&self) -> Result<Json, String> {
        if !self.started {
            return Err("snapshot requires a started run (pause with run_to first)".to_string());
        }
        if self.keepalive {
            return Err("fleet host engines (keepalive mode) do not support snapshots".to_string());
        }
        let mut tasks = Vec::with_capacity(self.tasks.len());
        for (i, t) in self.tasks.iter().enumerate() {
            // Exited tasks never act again; their behaviour state is
            // irrelevant (and possibly unsnapshotable), so store null.
            let behavior = if t.state == TaskState::Exited {
                Json::Null
            } else {
                snap::behavior_to_json(t.behavior.as_ref()).ok_or_else(|| {
                    format!(
                        "task #{i} (\"{}\") runs a behaviour that does not support snapshots",
                        t.label
                    )
                })?
            };
            let state = match t.state {
                TaskState::Placing => json::obj(vec![("t", Json::str("placing"))]),
                TaskState::Queued => json::obj(vec![("t", Json::str("queued"))]),
                TaskState::Running(core) => json::obj(vec![
                    ("t", Json::str("running")),
                    ("core", Json::usize(core.index())),
                ]),
                TaskState::Blocked => json::obj(vec![("t", Json::str("blocked"))]),
                TaskState::Exited => json::obj(vec![("t", Json::str("exited"))]),
            };
            tasks.push(json::obj(vec![
                ("label", Json::str(&t.label)),
                ("behavior", behavior),
                ("rng", snap::rng_json(&t.rng)),
                ("state", state),
                ("cycles", Json::u64(t.remaining_cycles)),
                ("seg_resumed_at", snap::time_json(t.seg_resumed_at)),
                ("seg_freq", Json::u64(t.seg_freq.as_khz())),
                ("seg_gen", Json::u64(t.seg_gen)),
                ("commit_gen", Json::u64(t.commit_gen)),
                ("smove_gen", Json::u64(t.smove_gen)),
                ("parent", Json::opt_u64(t.parent.map(|p| p.index() as u64))),
                ("live_children", Json::u64(t.live_children as u64)),
                ("waiting_children", Json::Bool(t.waiting_children)),
                ("in_barrier", Json::Bool(t.in_barrier)),
            ]));
        }
        let barriers = self
            .barriers
            .iter()
            .map(|b| {
                json::obj(vec![
                    ("parties", Json::u64(b.parties as u64)),
                    (
                        "waiting",
                        Json::Arr(b.waiting.iter().map(|t| Json::usize(t.index())).collect()),
                    ),
                ])
            })
            .collect();
        let channels = self
            .channels
            .iter()
            .map(|c| {
                json::obj(vec![
                    ("msgs", Json::u64(c.msgs)),
                    (
                        "waiting",
                        Json::Arr(c.waiting.iter().map(|t| Json::usize(t.index())).collect()),
                    ),
                ])
            })
            .collect();
        let mut pending: Vec<(usize, CoreId)> =
            self.pending_core.iter().map(|(&k, &v)| (k, v)).collect();
        pending.sort_by_key(|&(k, _)| k);
        let injections = self
            .injections
            .iter()
            .enumerate()
            .map(|(i, (at, spec))| {
                let spec_j = match spec {
                    None => Json::Null,
                    Some(s) => snap::task_spec_to_json(s).ok_or_else(|| {
                        format!(
                            "injection #{i} carries a behaviour that does not support snapshots"
                        )
                    })?,
                };
                Ok(json::obj(vec![
                    ("at", snap::time_json(*at)),
                    ("spec", spec_j),
                ]))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let queue = self
            .queue
            .pending_in_schedule_order()
            .into_iter()
            .map(|(at, ev)| json::obj(vec![("at", snap::time_json(at)), ("ev", event_to_json(ev))]))
            .collect();
        let mut probes = Vec::with_capacity(self.probes.len());
        for (i, p) in self.probes.iter().enumerate() {
            let (kind, state) = p.snap().ok_or_else(|| {
                format!("probe #{i} does not support snapshots (rerun without it)")
            })?;
            probes.push(json::obj(vec![("kind", Json::str(kind)), ("state", state)]));
        }
        Ok(json::obj(vec![
            ("now", snap::time_json(self.now)),
            ("events", Json::u64(self.events_dispatched)),
            ("faults", Json::str(&self.cfg.faults.canonical())),
            ("rng", snap::rng_json(&self.rng)),
            ("fault_rng", snap::rng_json(&self.fault_rng)),
            ("live_tasks", Json::usize(self.live_tasks)),
            ("runnable", Json::u64(self.runnable as u64)),
            ("pending_injections", Json::usize(self.pending_injections)),
            ("kernel", self.kernel.save()),
            ("policy", self.policy.save()),
            ("freq", self.freq.save()),
            ("tasks", Json::Arr(tasks)),
            ("barriers", Json::Arr(barriers)),
            ("channels", Json::Arr(channels)),
            (
                "spinning",
                Json::Arr(self.spinning.iter().map(|&b| Json::Bool(b)).collect()),
            ),
            (
                "spin_gen",
                Json::Arr(self.spin_gen.iter().map(|&g| Json::u64(g)).collect()),
            ),
            (
                "pending_core",
                Json::Arr(
                    pending
                        .into_iter()
                        .map(|(t, c)| Json::Arr(vec![Json::usize(t), Json::usize(c.index())]))
                        .collect(),
                ),
            ),
            ("injections", Json::Arr(injections)),
            ("queue", Json::Arr(queue)),
            ("probes", Json::Arr(probes)),
        ]))
    }

    /// Restores state captured by [`Engine::snapshot`] into a freshly
    /// built engine (same config, same probe rig, nothing spawned).
    ///
    /// If the engine's fault plan differs from the snapshot's, the saved
    /// pending `Fault` events are dropped and the new plan's actions are
    /// scheduled at `max(action time, now)` with the fresh fault RNG —
    /// a valid *what-if future* branched at the snapshot point, not a
    /// byte-replay. With an identical plan the saved queue order and
    /// fault RNG are preserved and the continuation is byte-exact.
    pub fn restore(&mut self, body: &Json, reg: &BehaviorRegistry) -> Result<(), String> {
        if self.started {
            return Err("restore requires a freshly built engine (this one already ran)".into());
        }
        if !self.tasks.is_empty() {
            return Err("restore requires an engine with no spawned tasks".into());
        }
        let n_cores = self.topo.n_cores();
        self.now = snap::get_time(body, "now")?;
        self.events_dispatched = snap::get_u64(body, "events")?;
        self.events_at_start = self.events_dispatched;
        self.kernel.load(snap::field(body, "kernel")?)?;
        self.policy.load(&self.topo, snap::field(body, "policy")?)?;
        self.freq.load(snap::field(body, "freq")?)?;
        self.rng = snap::rng_from_json(snap::field(body, "rng")?)?;

        let tasks_j = snap::get_arr(body, "tasks")?;
        let mut tasks = Vec::with_capacity(tasks_j.len());
        for (i, j) in tasks_j.iter().enumerate() {
            let label = snap::get_str(j, "label")?.to_string();
            let state_j = snap::field(j, "state")?;
            let state = match snap::get_str(state_j, "t")? {
                "placing" => TaskState::Placing,
                "queued" => TaskState::Queued,
                "running" => {
                    let c = snap::get_usize(state_j, "core")?;
                    if c >= n_cores {
                        return Err(format!(
                            "task #{i} runs on core {c}, but the machine has {n_cores} cores"
                        ));
                    }
                    TaskState::Running(CoreId::from_index(c))
                }
                "blocked" => TaskState::Blocked,
                "exited" => TaskState::Exited,
                other => return Err(format!("unknown task state \"{other}\"")),
            };
            let behavior_j = snap::field(j, "behavior")?;
            let behavior: Box<dyn nest_simcore::Behavior> = if behavior_j.is_null() {
                if state != TaskState::Exited {
                    return Err(format!(
                        "task #{i} (\"{label}\") has no behaviour state but has not exited"
                    ));
                }
                Box::new(nest_simcore::ScriptBehavior::new(Vec::new()))
            } else {
                snap::behavior_from_json(behavior_j, reg)
                    .map_err(|e| format!("task #{i} (\"{label}\"): {e}"))?
            };
            let parent_j = snap::field(j, "parent")?;
            let parent = if parent_j.is_null() {
                None
            } else {
                Some(TaskId::from_index(parent_j.as_usize().ok_or_else(
                    || format!("task #{i} parent is neither null nor an integer"),
                )?))
            };
            tasks.push(SimTask {
                label,
                behavior,
                rng: snap::rng_from_json(snap::field(j, "rng")?)?,
                state,
                remaining_cycles: snap::get_u64(j, "cycles")?,
                seg_resumed_at: snap::get_time(j, "seg_resumed_at")?,
                seg_freq: Freq::from_khz(snap::get_u64(j, "seg_freq")?),
                seg_gen: snap::get_u64(j, "seg_gen")?,
                commit_gen: snap::get_u64(j, "commit_gen")?,
                smove_gen: snap::get_u64(j, "smove_gen")?,
                parent,
                live_children: snap::get_u32(j, "live_children")?,
                waiting_children: snap::get_bool(j, "waiting_children")?,
                in_barrier: snap::get_bool(j, "in_barrier")?,
            });
        }
        self.tasks = tasks;
        if self.kernel.tasks.len() != self.tasks.len() {
            return Err(format!(
                "kernel snapshot tracks {} tasks, engine snapshot {}",
                self.kernel.tasks.len(),
                self.tasks.len()
            ));
        }

        self.barriers = snap::get_arr(body, "barriers")?
            .iter()
            .map(|j| {
                Ok(Barrier {
                    parties: snap::get_u32(j, "parties")?,
                    waiting: snap::get_arr(j, "waiting")?
                        .iter()
                        .map(|t| Ok(TaskId::from_index(snap::elem_u64(t)? as usize)))
                        .collect::<Result<_, String>>()?,
                })
            })
            .collect::<Result<_, String>>()?;
        self.channels = snap::get_arr(body, "channels")?
            .iter()
            .map(|j| {
                Ok(Channel {
                    msgs: snap::get_u64(j, "msgs")?,
                    waiting: snap::get_arr(j, "waiting")?
                        .iter()
                        .map(|t| Ok(TaskId::from_index(snap::elem_u64(t)? as usize)))
                        .collect::<Result<_, String>>()?,
                })
            })
            .collect::<Result<_, String>>()?;

        self.live_tasks = snap::get_usize(body, "live_tasks")?;
        self.runnable = snap::get_u32(body, "runnable")?;
        self.pending_injections = snap::get_usize(body, "pending_injections")?;

        let spinning = snap::get_arr(body, "spinning")?;
        let spin_gen = snap::get_arr(body, "spin_gen")?;
        if spinning.len() != n_cores || spin_gen.len() != n_cores {
            return Err("spin state does not match the machine's core count".into());
        }
        self.spinning = spinning
            .iter()
            .map(|j| {
                j.as_bool()
                    .ok_or_else(|| "spinning entry is not a boolean".to_string())
            })
            .collect::<Result<_, String>>()?;
        self.spin_gen = spin_gen
            .iter()
            .map(snap::elem_u64)
            .collect::<Result<_, String>>()?;

        self.pending_core.clear();
        for j in snap::get_arr(body, "pending_core")? {
            let pair = j
                .as_arr()
                .filter(|a| a.len() == 2)
                .ok_or_else(|| "pending_core entry is not a [task, core] pair".to_string())?;
            self.pending_core.insert(
                snap::elem_u64(&pair[0])? as usize,
                CoreId::from_index(snap::elem_u64(&pair[1])? as usize),
            );
        }

        self.injections = snap::get_arr(body, "injections")?
            .iter()
            .enumerate()
            .map(|(i, j)| {
                let at = snap::get_time(j, "at")?;
                let spec_j = snap::field(j, "spec")?;
                let spec = if spec_j.is_null() {
                    None
                } else {
                    Some(
                        snap::task_spec_from_json(spec_j, reg)
                            .map_err(|e| format!("injection #{i}: {e}"))?,
                    )
                };
                Ok((at, spec))
            })
            .collect::<Result<_, String>>()?;

        let saved_faults = snap::get_str(body, "faults")?;
        let same_faults = saved_faults == self.cfg.faults.canonical();
        if same_faults {
            self.fault_rng = snap::rng_from_json(snap::field(body, "fault_rng")?)?;
        }
        for (idx, j) in snap::get_arr(body, "queue")?.iter().enumerate() {
            let at = snap::get_time(j, "at")?;
            let ev =
                event_from_json(snap::field(j, "ev")?).map_err(|e| format!("queue[{idx}]: {e}"))?;
            match ev {
                Event::Fault(i) if !same_faults => {
                    // The saved event indexes the *old* plan's schedule;
                    // the override's actions are scheduled below.
                    let _ = i;
                    continue;
                }
                Event::Fault(i) if i >= self.fault_schedule.actions().len() => {
                    return Err(format!("queue[{idx}] references unknown fault action {i}"));
                }
                Event::Inject(i) if i >= self.injections.len() => {
                    return Err(format!("queue[{idx}] references unknown injection {i}"));
                }
                _ => {}
            }
            self.queue.schedule(at, ev);
        }
        if !same_faults {
            for i in 0..self.fault_schedule.actions().len() {
                let at = self.fault_schedule.actions()[i].at.max(self.now);
                self.queue.schedule(at, Event::Fault(i));
            }
        }

        let probes_j = snap::get_arr(body, "probes")?;
        if probes_j.len() != self.probes.len() {
            return Err(format!(
                "snapshot carries {} probes, the restore rig attached {}",
                probes_j.len(),
                self.probes.len()
            ));
        }
        for (i, (p, j)) in self.probes.iter_mut().zip(probes_j).enumerate() {
            let kind = snap::get_str(j, "kind")?;
            let own = p.snap().map(|(k, _)| k);
            if own != Some(kind) {
                return Err(format!(
                    "probe #{i} is \"{}\", but the snapshot carries \"{kind}\"",
                    own.unwrap_or("unsupported")
                ));
            }
            p.snap_restore(snap::field(j, "state")?)
                .map_err(|e| format!("probe #{i} (\"{kind}\"): {e}"))?;
        }

        self.started = true;
        Ok(())
    }
}

/// Background interference task injected by the straggler fault: bursts
/// of compute interleaved with short sleeps (so it generates wakeups,
/// not just occupancy) until its busy-time budget is spent.
struct Straggler {
    /// Remaining compute budget in cycles, at a 2 GHz reference.
    remaining_cycles: u64,
    sleep_next: bool,
}

impl Straggler {
    fn new(duration_ns: u64) -> Straggler {
        Straggler {
            remaining_cycles: duration_ns.saturating_mul(2),
            sleep_next: false,
        }
    }
}

impl nest_simcore::Behavior for Straggler {
    fn next(&mut self, rng: &mut SimRng) -> Action {
        if self.remaining_cycles == 0 {
            return Action::Exit;
        }
        if self.sleep_next {
            self.sleep_next = false;
            return Action::Sleep { ns: 50 * MICROSEC };
        }
        // 0.25–1 ms bursts at the reference frequency.
        let burst = self
            .remaining_cycles
            .min(rng.uniform_u64(500_000, 2_000_000));
        self.remaining_cycles -= burst;
        self.sleep_next = true;
        Action::Compute { cycles: burst }
    }

    fn snap(&self) -> Option<(&'static str, Json)> {
        Some((
            STRAGGLER_KIND,
            json::obj(vec![
                ("remaining", Json::u64(self.remaining_cycles)),
                ("sleep_next", Json::Bool(self.sleep_next)),
            ]),
        ))
    }
}
