//! Software-configuration workloads (§5.2).
//!
//! A configure script is a shell process that forks hundreds of mostly
//! short-lived tasks — compiler probes, feature tests, tool lookups —
//! usually one or two at a time, occasionally small compile chains
//! (`cc → as → ld`). The root task computes a little (shell parsing)
//! between forks and periodically waits for its children, so the number of
//! concurrent tasks hovers between one and three. This frequent forking of
//! short tasks that mostly run alone is the paper's "ideal case for Nest".
//!
//! The eleven benchmarks are the Phoronix Timed Code Compilation packages
//! the paper uses (Figure 4-7); per-package parameters are calibrated so
//! CFS-schedutil runtimes land near the values printed atop Figure 5.

use nest_simcore::json::{self, Json};
use nest_simcore::{snap, Action, Behavior, BehaviorRegistry, SimRng, SimSetup, TaskSpec};

use crate::{ms_at_ghz, Workload};

const ROOT_KIND: &str = "cfg.root";

pub(crate) fn register(reg: &mut BehaviorRegistry) {
    reg.register(ROOT_KIND, |state, reg| {
        let name = snap::get_str(state, "spec")?;
        let spec = by_name(name)
            .ok_or_else(|| format!("snapshot names unknown configure benchmark \"{name}\""))?;
        let phase = match snap::get_str(state, "phase")? {
            "shell" => RootPhase::Shell,
            "fork_and_wait" => RootPhase::ForkAndWait,
            "tail" => RootPhase::Tail,
            "done" => RootPhase::Done,
            other => return Err(format!("unknown configure root phase \"{other}\"")),
        };
        let pendings = snap::get_arr(state, "pendings")?
            .iter()
            .map(|a| snap::action_from_json(a, reg))
            .collect::<Result<Vec<Action>, String>>()?;
        Ok(Box::new(ConfigureRoot {
            spec,
            tests_left: snap::get_u32(state, "tests_left")?,
            tail_left: snap::get_u32(state, "tail_left")?,
            phase,
            pendings,
        }))
    });
}

/// Parameters of one configure benchmark.
#[derive(Clone, Debug)]
pub struct ConfigureSpec {
    /// Benchmark name (Figure 4/5 x-axis label).
    pub name: &'static str,
    /// Number of feature tests the script runs.
    pub n_tests: u32,
    /// Shell work between forks, ms at 3 GHz.
    pub shell_ms: f64,
    /// Mean test-task length, ms at 3 GHz.
    pub test_ms: f64,
    /// Relative jitter on test length (0..1).
    pub jitter: f64,
    /// Probability that a test is a compile *chain* (sequential cc → as →
    /// ld children rather than a single probe).
    pub chain_prob: f64,
    /// Probability that a test runs a small parallel burst (2-3 tests at
    /// once), as some configure scripts overlap probes.
    pub burst_prob: f64,
    /// Extra long-running single tasks appended at the end (count, ms at
    /// 3 GHz each) — e.g. nodejs's configure is dominated by a few long
    /// python steps, making it "trivial" for Nest (§5.2).
    pub long_tail: Option<(u32, f64)>,
}

impl ConfigureSpec {
    fn test_cycles(&self, rng: &mut SimRng) -> u64 {
        rng.jitter(ms_at_ghz(self.test_ms, 3.0), self.jitter)
    }
}

/// The eleven §5.2 configure benchmarks.
///
/// `n_tests × test_ms` targets the Figure 5 CFS-schedutil runtimes on the
/// two-socket machines (order-of-magnitude calibration).
pub fn all_specs() -> Vec<ConfigureSpec> {
    fn spec(
        name: &'static str,
        n_tests: u32,
        test_ms: f64,
        chain_prob: f64,
        long_tail: Option<(u32, f64)>,
    ) -> ConfigureSpec {
        ConfigureSpec {
            name,
            n_tests,
            shell_ms: 0.6,
            test_ms,
            jitter: 0.6,
            chain_prob,
            burst_prob: 0.08,
            long_tail,
        }
    }
    vec![
        // name           tests  ms   chains  tail
        spec("erlang", 700, 16.0, 0.30, None),
        spec("ffmpeg", 350, 13.0, 0.35, None),
        spec("gcc", 90, 12.0, 0.30, None),
        spec("gdb", 80, 12.0, 0.30, None),
        spec("imagemagick", 800, 16.0, 0.30, None),
        spec("linux", 140, 14.0, 0.40, None),
        spec("llvm_ninja", 500, 17.0, 0.30, None),
        spec("llvm_unix", 620, 17.0, 0.30, None),
        spec("mplayer", 520, 16.0, 0.35, None),
        spec("nodejs", 14, 10.0, 0.20, Some((3, 450.0))),
        spec("php", 680, 16.0, 0.30, None),
    ]
}

/// Looks a spec up by name.
pub fn by_name(name: &str) -> Option<ConfigureSpec> {
    all_specs().into_iter().find(|s| s.name == name)
}

/// The root shell task's behaviour.
///
/// Behaviours return one action per call, but a burst needs several forks
/// followed by a wait; `pendings` queues the overflow.
struct ConfigureRoot {
    spec: ConfigureSpec,
    tests_left: u32,
    tail_left: u32,
    phase: RootPhase,
    pendings: Vec<Action>,
}

#[derive(PartialEq)]
enum RootPhase {
    Shell,
    ForkAndWait,
    Tail,
    Done,
}

impl ConfigureRoot {
    fn new(spec: ConfigureSpec) -> ConfigureRoot {
        let tail = spec.long_tail.map_or(0, |(n, _)| n);
        ConfigureRoot {
            tests_left: spec.n_tests,
            tail_left: tail,
            phase: RootPhase::Shell,
            spec,
            pendings: Vec::new(),
        }
    }
}

impl Behavior for ConfigureRoot {
    fn next(&mut self, rng: &mut SimRng) -> Action {
        if !self.pendings.is_empty() {
            return self.pendings.remove(0);
        }
        loop {
            match self.phase {
                RootPhase::Shell => {
                    if self.tests_left == 0 {
                        self.phase = RootPhase::Tail;
                        continue;
                    }
                    self.phase = RootPhase::ForkAndWait;
                    return Action::Compute {
                        cycles: rng.jitter(ms_at_ghz(self.spec.shell_ms, 3.0), 0.5),
                    };
                }
                RootPhase::ForkAndWait => {
                    // Fork this round's test(s); the *next* call emits the
                    // wait so children are placed first.
                    let burst = if rng.chance(self.spec.burst_prob) {
                        rng.uniform_u64(2, 3) as u32
                    } else {
                        1
                    };
                    let n = burst.min(self.tests_left).max(1);
                    self.tests_left -= n;
                    self.phase = RootPhase::Shell;
                    // Fork n-1 immediately via nested forks in the child
                    // list; emit one Fork per call: queue them.
                    let mut forks: Vec<TaskSpec> = Vec::new();
                    for _ in 0..n {
                        forks.push(make_test_task(&self.spec, rng));
                    }
                    // Chain the fork actions through a one-shot script:
                    // emit the first here, stash the rest.
                    if forks.len() == 1 {
                        self.pendings.push(Action::WaitChildren);
                    } else {
                        for f in forks.drain(1..) {
                            self.pendings.push(Action::Fork { child: f });
                        }
                        self.pendings.push(Action::WaitChildren);
                    }
                    return Action::Fork {
                        child: forks.pop().expect("at least one fork"),
                    };
                }
                RootPhase::Tail => {
                    if self.tail_left == 0 {
                        self.phase = RootPhase::Done;
                        continue;
                    }
                    self.tail_left -= 1;
                    let (_, ms) = self.spec.long_tail.expect("tail phase without tail");
                    self.pendings.push(Action::WaitChildren);
                    return Action::Fork {
                        child: TaskSpec::script(
                            format!("{}-tail", self.spec.name),
                            vec![Action::Compute {
                                cycles: rng.jitter(ms_at_ghz(ms, 3.0), 0.2),
                            }],
                        ),
                    };
                }
                RootPhase::Done => return Action::Exit,
            }
        }
    }

    fn snap(&self) -> Option<(&'static str, Json)> {
        // The spec travels as its registry name; restore looks it up via
        // `by_name`, so hand-built specs outside `all_specs()` are not
        // snapshotable (the scenario registry only ever uses named ones).
        by_name(self.spec.name)?;
        let pendings: Option<Vec<Json>> = self.pendings.iter().map(snap::action_to_json).collect();
        let phase = match self.phase {
            RootPhase::Shell => "shell",
            RootPhase::ForkAndWait => "fork_and_wait",
            RootPhase::Tail => "tail",
            RootPhase::Done => "done",
        };
        Some((
            ROOT_KIND,
            json::obj(vec![
                ("spec", Json::str(self.spec.name)),
                ("tests_left", Json::u64(self.tests_left as u64)),
                ("tail_left", Json::u64(self.tail_left as u64)),
                ("phase", Json::str(phase)),
                ("pendings", Json::Arr(pendings?)),
            ]),
        ))
    }
}

fn make_test_task(spec: &ConfigureSpec, rng: &mut SimRng) -> TaskSpec {
    let cycles = spec.test_cycles(rng);
    if rng.chance(spec.chain_prob) {
        // A compile chain: cc forks as, which forks ld; each stage is
        // sequential (parent waits), modeling `cc | as | ld` style tests.
        let ld = TaskSpec::script("ld", vec![Action::Compute { cycles: cycles / 4 }]);
        let as_ = TaskSpec::script(
            "as",
            vec![
                Action::Compute { cycles: cycles / 4 },
                Action::Fork { child: ld },
                Action::WaitChildren,
            ],
        );
        TaskSpec::script(
            "cc",
            vec![
                Action::Compute { cycles: cycles / 2 },
                Action::Fork { child: as_ },
                Action::WaitChildren,
            ],
        )
    } else {
        TaskSpec::script("probe", vec![Action::Compute { cycles }])
    }
}

/// A configure workload instance.
pub struct Configure {
    spec: ConfigureSpec,
}

impl Configure {
    /// Creates the workload from a spec.
    pub fn new(spec: ConfigureSpec) -> Configure {
        Configure { spec }
    }

    /// Creates the workload by benchmark name.
    ///
    /// # Panics
    ///
    /// Panics if the name is unknown.
    pub fn named(name: &str) -> Configure {
        Configure::new(by_name(name).unwrap_or_else(|| panic!("unknown configure test {name}")))
    }
}

impl Workload for Configure {
    fn name(&self) -> String {
        self.spec.name.to_string()
    }

    fn build(&self, _setup: &mut dyn SimSetup, _rng: &mut SimRng) -> Vec<TaskSpec> {
        vec![TaskSpec::new(
            format!("configure-{}", self.spec.name),
            Box::new(ConfigureRoot::new(self.spec.clone())),
        )]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct DummySetup;
    impl SimSetup for DummySetup {
        fn create_barrier(&mut self, _parties: u32) -> nest_simcore::BarrierId {
            unreachable!("configure uses no barriers")
        }
        fn create_channel(&mut self) -> nest_simcore::ChannelId {
            unreachable!("configure uses no channels")
        }
        fn n_cores(&self) -> usize {
            64
        }
    }

    #[test]
    fn all_eleven_benchmarks_present() {
        let names: Vec<&str> = all_specs().iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec![
                "erlang",
                "ffmpeg",
                "gcc",
                "gdb",
                "imagemagick",
                "linux",
                "llvm_ninja",
                "llvm_unix",
                "mplayer",
                "nodejs",
                "php"
            ]
        );
    }

    #[test]
    fn by_name_roundtrip() {
        assert_eq!(by_name("gcc").unwrap().name, "gcc");
        assert!(by_name("notabenchmark").is_none());
    }

    #[test]
    fn build_returns_single_root() {
        let w = Configure::named("gcc");
        let mut rng = SimRng::new(0);
        let tasks = w.build(&mut DummySetup, &mut rng);
        assert_eq!(tasks.len(), 1);
        assert_eq!(w.name(), "gcc");
    }

    #[test]
    fn root_behavior_forks_expected_test_count() {
        // Drive the root behaviour manually and count forked children
        // (chains count as one top-level test).
        let spec = ConfigureSpec {
            burst_prob: 0.0,
            chain_prob: 0.0,
            long_tail: None,
            n_tests: 25,
            ..by_name("gcc").unwrap()
        };
        let mut b = ConfigureRoot::new(spec);
        let mut rng = SimRng::new(1);
        let mut forks = 0;
        loop {
            match b.next(&mut rng) {
                Action::Fork { .. } => forks += 1,
                Action::Exit => break,
                _ => {}
            }
        }
        assert_eq!(forks, 25);
    }

    #[test]
    fn bursts_fork_multiple_then_wait() {
        let spec = ConfigureSpec {
            burst_prob: 1.0,
            chain_prob: 0.0,
            long_tail: None,
            n_tests: 6,
            ..by_name("gcc").unwrap()
        };
        let mut b = ConfigureRoot::new(spec);
        let mut rng = SimRng::new(2);
        let mut saw_consecutive_forks = false;
        let mut prev_was_fork = false;
        loop {
            match b.next(&mut rng) {
                Action::Fork { .. } => {
                    if prev_was_fork {
                        saw_consecutive_forks = true;
                    }
                    prev_was_fork = true;
                }
                Action::Exit => break,
                _ => prev_was_fork = false,
            }
        }
        assert!(saw_consecutive_forks, "bursts should fork back-to-back");
    }

    #[test]
    fn nodejs_has_long_tail() {
        let spec = by_name("nodejs").unwrap();
        assert!(spec.long_tail.is_some());
        let mut b = ConfigureRoot::new(spec);
        let mut rng = SimRng::new(3);
        let mut max_fork_cycles = 0u64;
        loop {
            match b.next(&mut rng) {
                Action::Fork { child } => {
                    // Inspect by running the child's behaviour.
                    let mut beh = child.behavior;
                    if let Action::Compute { cycles } = beh.next(&mut rng) {
                        max_fork_cycles = max_fork_cycles.max(cycles);
                    }
                }
                Action::Exit => break,
                _ => {}
            }
        }
        // The tail tasks are hundreds of ms: > 1e9 cycles at 3 GHz.
        assert!(max_fork_cycles > 1_000_000_000, "{max_fork_cycles}");
    }
}
