//! DaCapo-style Java application workloads (§5.3).
//!
//! Each application is modeled as a pool of worker threads that alternate
//! compute chunks with short sleeps (lock waits, I/O, inter-thread
//! synchronization) plus JVM background threads (GC, JIT) that wake
//! briefly and periodically. Apps the paper marks as involving "only one
//! or a few tasks" (blue in Figure 10) are single-threaded plus background
//! threads.
//!
//! Pool sizes and sleep cadences are set so the underload character
//! matches the labels atop Figure 10 (e.g. tradebeans u:23 on the
//! two-socket 6130 — many threads bouncing; biojava u:0.1 — one long
//! task). Total work targets the Figure 10 CFS-schedutil runtimes,
//! capped at ~40 s of simulated time for the very long benchmarks
//! (batik/biojava/eclipse run 100-200 s in the paper; the cap keeps the
//! full experiment matrix tractable and does not affect relative
//! speedups, which are rate-based).

use nest_simcore::json::{self, Json};
use nest_simcore::{
    snap, Action, Behavior, BehaviorRegistry, ChannelId, SimRng, SimSetup, TaskSpec,
};

use crate::{ms_at_ghz, Workload};

const POOL_KIND: &str = "dc.pool";
const QUEUE_KIND: &str = "dc.queue";
const BACKGROUND_KIND: &str = "dc.background";

pub(crate) fn register(reg: &mut BehaviorRegistry) {
    reg.register(POOL_KIND, |state, _| {
        Ok(Box::new(PoolWorker {
            chunk_cycles: snap::get_u64(state, "chunk_cycles")?,
            sleep_ns: snap::get_u64(state, "sleep_ns")?,
            remaining_cycles: snap::get_u64(state, "remaining_cycles")?,
            jitter: snap::get_f64_bits(state, "jitter")?,
            compute_next: snap::get_bool(state, "compute_next")?,
        }))
    });
    reg.register(QUEUE_KIND, |state, _| {
        Ok(Box::new(QueueWorker {
            ch: ChannelId(snap::get_u32(state, "ch")?),
            quota: snap::get_u32(state, "quota")?,
            burst_chunks: snap::get_u32(state, "burst_chunks")?,
            chunk_cycles: snap::get_u64(state, "chunk_cycles")?,
            jitter: snap::get_f64_bits(state, "jitter")?,
            phase: snap::get_u32(state, "phase")?,
        }))
    });
    reg.register(BACKGROUND_KIND, |state, _| {
        Ok(Box::new(BackgroundThread {
            iterations: snap::get_u32(state, "iterations")?,
            period_ns: snap::get_u64(state, "period_ns")?,
            burst_cycles: snap::get_u64(state, "burst_cycles")?,
        }))
    });
}

/// Parameters of one DaCapo application model.
#[derive(Clone, Debug)]
pub struct DacapoSpec {
    /// Application name (Figure 10 x-axis label).
    pub name: &'static str,
    /// Worker threads; 0 means "one per hardware thread".
    pub workers: u32,
    /// `true` for the paper's blue (single/few task) applications.
    pub single_task: bool,
    /// Compute chunk between sleeps, ms at 3 GHz.
    pub chunk_ms: f64,
    /// Sleep between chunks, ms.
    pub sleep_ms: f64,
    /// Total compute per worker, ms at 3 GHz.
    pub work_per_worker_ms: f64,
    /// JVM background (GC/JIT) threads.
    pub background_threads: u32,
    /// Relative jitter on chunk and sleep lengths.
    pub jitter: f64,
    /// Queue-driven mode (h2, tradebeans, graphchi, tomcat): workers
    /// block on a shared work queue instead of timers, so wakeups come
    /// *from other threads* — engaging CFS's wake-affine/idle-pair
    /// dispersal (the Figure 8 bouncing) and Nest's packing. The value is
    /// the number of compute chunks per request burst (0 = timer mode).
    pub burst_chunks: u32,
    /// Queue-driven mode: number of request tokens circulating — the
    /// application's steady concurrency level.
    pub queue_tokens: u32,
}

/// The 21 applications of Figure 10 (original + "-eval" suites the paper
/// runs), with pool size / cadence calibrated to the figure's underload
/// labels.
pub fn all_specs() -> Vec<DacapoSpec> {
    fn multi(
        name: &'static str,
        workers: u32,
        chunk_ms: f64,
        sleep_ms: f64,
        work_per_worker_ms: f64,
    ) -> DacapoSpec {
        DacapoSpec {
            name,
            workers,
            single_task: false,
            chunk_ms,
            sleep_ms,
            work_per_worker_ms,
            background_threads: 2,
            jitter: 0.5,
            burst_chunks: 0,
            queue_tokens: 0,
        }
    }
    /// Queue-driven app: `tokens` request tokens circulate among
    /// `workers` threads; every burst completion wakes the next waiter
    /// *from another thread's core*, engaging wake-affine placement.
    fn queue(
        name: &'static str,
        workers: u32,
        chunk_ms: f64,
        burst_chunks: u32,
        tokens: u32,
        work_per_worker_ms: f64,
    ) -> DacapoSpec {
        DacapoSpec {
            name,
            workers,
            single_task: false,
            chunk_ms,
            sleep_ms: 0.0,
            work_per_worker_ms,
            background_threads: 2,
            jitter: 0.5,
            burst_chunks,
            queue_tokens: tokens,
        }
    }

    fn single(name: &'static str, work_ms: f64, chunk_ms: f64, sleep_ms: f64) -> DacapoSpec {
        DacapoSpec {
            name,
            workers: 1,
            single_task: true,
            chunk_ms,
            sleep_ms,
            work_per_worker_ms: work_ms,
            background_threads: 2,
            jitter: 0.4,
            burst_chunks: 0,
            queue_tokens: 0,
        }
    }
    vec![
        // Blue (single/few task) apps first, as in Figure 10's layout.
        multi("avrora", 8, 1.2, 1.6, 2_600.0),
        single("batik-eval", 33_000.0, 40.0, 2.0),
        single("biojava-eval", 38_000.0, 60.0, 1.0),
        multi("eclipse-eval", 6, 8.0, 2.0, 6_500.0),
        single("fop", 2_800.0, 3.0, 0.3),
        multi("jme-eval", 4, 10.0, 3.0, 8_000.0),
        single("jython", 19_000.0, 15.0, 1.0),
        multi("kafka-eval", 8, 2.0, 3.0, 5_500.0),
        single("luindex", 4_200.0, 4.0, 0.7),
        multi("tradesoap-eval", 8, 1.5, 1.0, 5_800.0),
        // Multithreaded apps.
        multi("cassandra-eval", 8, 1.5, 1.2, 6_200.0),
        queue("graphchi-eval", 16, 1.0, 3, 6, 2_200.0),
        queue("h2", 24, 0.8, 4, 8, 3_000.0),
        multi("lusearch", 0, 1.5, 0.15, 350.0),
        multi("lusearch-fix", 0, 1.5, 0.15, 350.0),
        multi("pmd", 16, 0.8, 1.2, 1_600.0),
        multi("sunflow", 0, 12.0, 0.3, 700.0),
        queue("tomcat-eval", 24, 0.7, 2, 8, 1_700.0),
        queue("tradebeans", 32, 0.6, 4, 10, 2_600.0),
        multi("xalan", 0, 0.9, 0.2, 450.0),
        multi("zxing-eval", 12, 1.4, 1.2, 2_300.0),
    ]
}

/// Looks a spec up by name.
pub fn by_name(name: &str) -> Option<DacapoSpec> {
    all_specs().into_iter().find(|s| s.name == name)
}

/// A pool worker: compute chunks separated by short sleeps.
struct PoolWorker {
    chunk_cycles: u64,
    sleep_ns: u64,
    remaining_cycles: u64,
    jitter: f64,
    compute_next: bool,
}

impl Behavior for PoolWorker {
    fn next(&mut self, rng: &mut SimRng) -> Action {
        if self.remaining_cycles == 0 {
            return Action::Exit;
        }
        if self.compute_next {
            self.compute_next = false;
            let c = rng
                .jitter(self.chunk_cycles, self.jitter)
                .min(self.remaining_cycles)
                .max(1);
            self.remaining_cycles -= c;
            Action::Compute { cycles: c }
        } else {
            self.compute_next = true;
            Action::Sleep {
                ns: rng.jitter(self.sleep_ns, self.jitter).max(1_000),
            }
        }
    }

    fn snap(&self) -> Option<(&'static str, Json)> {
        Some((
            POOL_KIND,
            json::obj(vec![
                ("chunk_cycles", Json::u64(self.chunk_cycles)),
                ("sleep_ns", Json::u64(self.sleep_ns)),
                ("remaining_cycles", Json::u64(self.remaining_cycles)),
                ("jitter", snap::f64_bits(self.jitter)),
                ("compute_next", Json::Bool(self.compute_next)),
            ]),
        ))
    }
}

/// A queue-driven worker: receive a request token, execute a burst of
/// compute chunks, return the token (waking the next waiter from *this*
/// core — a cross-thread wakeup).
struct QueueWorker {
    ch: nest_simcore::ChannelId,
    quota: u32,
    burst_chunks: u32,
    chunk_cycles: u64,
    jitter: f64,
    /// 0 = recv next, 1..=burst = computing, burst+1 = send.
    phase: u32,
}

impl Behavior for QueueWorker {
    fn next(&mut self, rng: &mut SimRng) -> Action {
        if self.phase == 0 {
            if self.quota == 0 {
                return Action::Exit;
            }
            self.phase = 1;
            return Action::Recv { ch: self.ch };
        }
        if self.phase <= self.burst_chunks {
            self.phase += 1;
            return Action::Compute {
                cycles: rng.jitter(self.chunk_cycles, self.jitter).max(1),
            };
        }
        self.phase = 0;
        self.quota -= 1;
        Action::Send {
            ch: self.ch,
            msgs: 1,
        }
    }

    fn snap(&self) -> Option<(&'static str, Json)> {
        Some((
            QUEUE_KIND,
            json::obj(vec![
                ("ch", Json::u64(self.ch.0 as u64)),
                ("quota", Json::u64(self.quota as u64)),
                ("burst_chunks", Json::u64(self.burst_chunks as u64)),
                ("chunk_cycles", Json::u64(self.chunk_cycles)),
                ("jitter", snap::f64_bits(self.jitter)),
                ("phase", Json::u64(self.phase as u64)),
            ]),
        ))
    }
}

/// A JVM background thread: long sleeps, brief activity bursts.
struct BackgroundThread {
    iterations: u32,
    period_ns: u64,
    burst_cycles: u64,
}

impl Behavior for BackgroundThread {
    fn next(&mut self, rng: &mut SimRng) -> Action {
        if self.iterations == 0 {
            return Action::Exit;
        }
        self.iterations -= 1;
        if self.iterations % 2 == 1 {
            Action::Sleep {
                ns: rng.jitter(self.period_ns, 0.5).max(1_000),
            }
        } else {
            Action::Compute {
                cycles: rng.jitter(self.burst_cycles, 0.5).max(1),
            }
        }
    }

    fn snap(&self) -> Option<(&'static str, Json)> {
        Some((
            BACKGROUND_KIND,
            json::obj(vec![
                ("iterations", Json::u64(self.iterations as u64)),
                ("period_ns", Json::u64(self.period_ns)),
                ("burst_cycles", Json::u64(self.burst_cycles)),
            ]),
        ))
    }
}

/// A DaCapo workload instance.
pub struct Dacapo {
    spec: DacapoSpec,
}

impl Dacapo {
    /// Creates the workload from a spec.
    pub fn new(spec: DacapoSpec) -> Dacapo {
        Dacapo { spec }
    }

    /// Creates the workload by application name.
    ///
    /// # Panics
    ///
    /// Panics if the name is unknown.
    pub fn named(name: &str) -> Dacapo {
        Dacapo::new(by_name(name).unwrap_or_else(|| panic!("unknown DaCapo app {name}")))
    }

    /// Estimated serial duration per worker in ms (used to size
    /// background threads).
    fn est_duration_ms(&self) -> f64 {
        let chunks = self.spec.work_per_worker_ms / self.spec.chunk_ms;
        self.spec.work_per_worker_ms + chunks * self.spec.sleep_ms
    }
}

impl Dacapo {
    /// Builds the queue-driven variant (h2, tradebeans, graphchi-eval,
    /// tomcat-eval).
    fn build_queue_driven(
        &self,
        setup: &mut dyn SimSetup,
        rng: &mut SimRng,
        workers: u32,
    ) -> Vec<TaskSpec> {
        let ch = setup.create_channel();
        let burst_ms = self.spec.chunk_ms * self.spec.burst_chunks as f64;
        let quota = (self.spec.work_per_worker_ms / burst_ms).ceil() as u32;
        let mut forks: Vec<Action> = Vec::new();
        for w in 0..workers {
            forks.push(Action::Fork {
                child: TaskSpec::new(
                    format!("{}-w{w}", self.spec.name),
                    Box::new(QueueWorker {
                        ch,
                        quota: rng.jitter(quota as u64, 0.1).max(1) as u32,
                        burst_chunks: self.spec.burst_chunks,
                        chunk_cycles: ms_at_ghz(self.spec.chunk_ms, 3.0),
                        jitter: self.spec.jitter,
                        phase: 0,
                    }),
                ),
            });
        }
        let duration_ms =
            self.spec.work_per_worker_ms * workers as f64 / self.spec.queue_tokens.max(1) as f64;
        for g in 0..self.spec.background_threads {
            let period_ns = 40_000_000u64;
            let iterations = ((duration_ms * 1e6 / period_ns as f64) * 2.0) as u32;
            forks.push(Action::Fork {
                child: TaskSpec::new(
                    format!("{}-bg{g}", self.spec.name),
                    Box::new(BackgroundThread {
                        iterations: iterations.max(2),
                        period_ns,
                        burst_cycles: ms_at_ghz(1.5, 3.0),
                    }),
                ),
            });
        }
        let mut script = vec![Action::Compute {
            cycles: ms_at_ghz(30.0, 3.0),
        }];
        script.extend(forks);
        // Seed the queue with the steady-state token count.
        script.push(Action::Send {
            ch,
            msgs: self.spec.queue_tokens.max(1),
        });
        script.push(Action::WaitChildren);
        vec![TaskSpec::script(format!("{}-main", self.spec.name), script)]
    }
}

impl Workload for Dacapo {
    fn name(&self) -> String {
        self.spec.name.to_string()
    }

    fn build(&self, setup: &mut dyn SimSetup, rng: &mut SimRng) -> Vec<TaskSpec> {
        let workers = if self.spec.workers == 0 {
            setup.n_cores() as u32
        } else {
            self.spec.workers
        };
        if self.spec.burst_chunks > 0 {
            return self.build_queue_driven(setup, rng, workers);
        }
        // The JVM main thread forks the pool and the background threads,
        // then waits — so every worker goes through fork placement.
        let mut forks: Vec<Action> = Vec::new();
        for w in 0..workers {
            let chunk_cycles = ms_at_ghz(self.spec.chunk_ms, 3.0);
            let total = ms_at_ghz(self.spec.work_per_worker_ms, 3.0);
            forks.push(Action::Fork {
                child: TaskSpec::new(
                    format!("{}-w{w}", self.spec.name),
                    Box::new(PoolWorker {
                        chunk_cycles,
                        sleep_ns: (self.spec.sleep_ms * 1e6) as u64,
                        remaining_cycles: rng.jitter(total, 0.1),
                        jitter: self.spec.jitter,
                        compute_next: true,
                    }),
                ),
            });
        }
        let duration_ms = self.est_duration_ms();
        for g in 0..self.spec.background_threads {
            let period_ns = 40_000_000u64; // ~40 ms GC/JIT cadence
            let iterations = ((duration_ms * 1e6 / period_ns as f64) * 2.0) as u32;
            forks.push(Action::Fork {
                child: TaskSpec::new(
                    format!("{}-bg{g}", self.spec.name),
                    Box::new(BackgroundThread {
                        iterations: iterations.max(2),
                        period_ns,
                        burst_cycles: ms_at_ghz(1.5, 3.0),
                    }),
                ),
            });
        }
        // JVM startup work, then the forks, then wait.
        let mut script = vec![Action::Compute {
            cycles: ms_at_ghz(30.0, 3.0),
        }];
        script.extend(forks);
        script.push(Action::WaitChildren);
        vec![TaskSpec::script(format!("{}-main", self.spec.name), script)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct DummySetup;
    impl SimSetup for DummySetup {
        fn create_barrier(&mut self, _parties: u32) -> nest_simcore::BarrierId {
            unreachable!()
        }
        fn create_channel(&mut self) -> nest_simcore::ChannelId {
            unreachable!()
        }
        fn n_cores(&self) -> usize {
            64
        }
    }

    #[test]
    fn twenty_one_apps() {
        assert_eq!(all_specs().len(), 21);
        let names: std::collections::HashSet<&str> = all_specs().iter().map(|s| s.name).collect();
        assert_eq!(names.len(), 21, "duplicate app names");
        for key in ["h2", "tradebeans", "graphchi-eval", "fop", "lusearch"] {
            assert!(names.contains(key), "{key} missing");
        }
    }

    #[test]
    fn blue_apps_are_single_task() {
        for name in ["fop", "luindex", "jython", "batik-eval", "biojava-eval"] {
            assert!(by_name(name).unwrap().single_task, "{name}");
        }
        assert!(!by_name("h2").unwrap().single_task);
    }

    #[test]
    fn zero_workers_means_one_per_core() {
        let w = Dacapo::named("lusearch");
        let mut rng = SimRng::new(0);
        let tasks = w.build(&mut DummySetup, &mut rng);
        assert_eq!(tasks.len(), 1, "one main task that forks the pool");
        // Count forks in the main script.
        let mut beh = tasks.into_iter().next().unwrap().behavior;
        let mut forks = 0;
        loop {
            match beh.next(&mut rng) {
                Action::Fork { .. } => forks += 1,
                Action::Exit => break,
                _ => {}
            }
        }
        // 64 workers + 2 background threads.
        assert_eq!(forks, 66);
    }

    #[test]
    fn pool_worker_alternates_and_finishes() {
        let mut w = PoolWorker {
            chunk_cycles: 100,
            sleep_ns: 1_000_000,
            remaining_cycles: 250,
            jitter: 0.0,
            compute_next: true,
        };
        let mut rng = SimRng::new(0);
        let mut computed = 0u64;
        let mut actions = 0;
        loop {
            match w.next(&mut rng) {
                Action::Compute { cycles } => computed += cycles,
                Action::Sleep { .. } => {}
                Action::Exit => break,
                other => panic!("unexpected action {other:?}"),
            }
            actions += 1;
            assert!(actions < 100, "did not terminate");
        }
        assert_eq!(computed, 250, "all work accounted");
    }

    #[test]
    fn background_thread_terminates() {
        let mut b = BackgroundThread {
            iterations: 10,
            period_ns: 1000,
            burst_cycles: 10,
        };
        let mut rng = SimRng::new(0);
        let mut n = 0;
        while !matches!(b.next(&mut rng), Action::Exit) {
            n += 1;
            assert!(n < 100);
        }
        assert_eq!(n, 10);
    }

    #[test]
    fn tradebeans_has_many_more_workers_than_fop() {
        assert!(by_name("tradebeans").unwrap().workers > 8 * by_name("fop").unwrap().workers);
    }
}
