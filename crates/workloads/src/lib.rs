#![deny(missing_docs)]

//! Workload models for every benchmark suite in the Nest paper's
//! evaluation.
//!
//! Each module produces [`nest_simcore::TaskSpec`]s whose behaviours mimic
//! the *scheduling-relevant* structure of the original benchmark: how many
//! tasks exist, how long they compute between blocking points, how they
//! fork, synchronize, and terminate. Absolute work sizes are calibrated to
//! land in the same order of magnitude as the paper's CFS-schedutil
//! runtimes; shapes (who blocks when) follow the paper's descriptions.
//!
//! * [`configure`] — software-configuration scripts (§5.2): chains of
//!   short-lived, mostly sequential forked tasks.
//! * [`dacapo`] — DaCapo Java applications (§5.3): thread pools with
//!   frequent short sleeps, plus GC/JIT background threads.
//! * [`nas`] — NAS Parallel Benchmarks (§5.4): one task per core,
//!   barrier-synchronized iterations.
//! * [`phoronix`] — the Figure 13 / Table 4 multicore tests (§5.5).
//! * [`hackbench`], [`schbench`] — scheduler microbenchmarks (§5.6).
//! * [`server`] — request/worker server tests (§5.6).

pub mod configure;
pub mod dacapo;
pub mod fleet;
pub mod hackbench;
pub mod nas;
pub mod phoronix;
pub mod schbench;
pub mod serve;
pub mod server;

use nest_simcore::{BehaviorRegistry, SimRng, SimSetup, TaskSpec};

pub use fleet::FleetLoad;
pub use nest_fleet::FleetSpec;
pub use nest_serve::{OpenLoopDriver, ServeSpec, ServiceWorker};
pub use serve::ServeLoad;

/// Registers every workload behaviour with a snapshot-restore registry.
///
/// The `server` module's driver/worker pair lives in `nest-serve` (see
/// [`nest_serve::register_behaviors`]); everything snapshotable that is
/// defined in *this* crate registers here.
pub fn register_behaviors(reg: &mut BehaviorRegistry) {
    configure::register(reg);
    dacapo::register(reg);
    hackbench::register(reg);
    nas::register(reg);
    phoronix::register(reg);
    schbench::register(reg);
}

/// A workload: a named generator of initial tasks.
pub trait Workload {
    /// Workload name as it appears in figures (e.g. `"llvm_ninja"`).
    fn name(&self) -> String;

    /// Builds the initial tasks. `setup` allocates barriers/channels;
    /// `rng` drives any randomized sizing (already forked per workload).
    fn build(&self, setup: &mut dyn SimSetup, rng: &mut SimRng) -> Vec<TaskSpec>;

    /// Open-loop serving streams this workload carries. The run driver
    /// materializes each spec into a timed injection plan (requests enter
    /// through the engine's event queue rather than the initial task set),
    /// so most workloads — which have none — return an empty list.
    fn serve_specs(&self) -> Vec<ServeSpec> {
        Vec::new()
    }

    /// The fleet front-end this workload runs under, if any. `Some` routes
    /// the run through the multi-host co-simulation driver ([`FleetLoad`]
    /// is the only implementor); everything else runs single-host.
    fn fleet_spec(&self) -> Option<FleetSpec> {
        None
    }
}

/// Converts milliseconds of work *at the given reference frequency in GHz*
/// into cycles. Workload sizes are quoted this way for readability.
pub fn ms_at_ghz(ms: f64, ghz: f64) -> u64 {
    (ms * ghz * 1e6) as u64
}

/// Several workloads launched together — the paper's multi-application
/// scenario (§5.6). All parts' initial tasks start at time zero and share
/// the machine; the name joins the parts with `" + "`.
pub struct Multi {
    parts: Vec<Box<dyn Workload>>,
}

impl Multi {
    /// Combines `parts` into one workload. Panics on an empty list.
    pub fn new(parts: Vec<Box<dyn Workload>>) -> Multi {
        assert!(!parts.is_empty(), "Multi needs at least one workload");
        Multi { parts }
    }
}

impl Workload for Multi {
    fn name(&self) -> String {
        self.parts
            .iter()
            .map(|p| p.name())
            .collect::<Vec<_>>()
            .join(" + ")
    }

    fn build(&self, setup: &mut dyn SimSetup, rng: &mut SimRng) -> Vec<TaskSpec> {
        let mut tasks = Vec::new();
        for p in &self.parts {
            tasks.extend(p.build(setup, rng));
        }
        tasks
    }

    fn serve_specs(&self) -> Vec<ServeSpec> {
        self.parts.iter().flat_map(|p| p.serve_specs()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ms_at_ghz_conversion() {
        // 1 ms at 1 GHz = 1e6 cycles.
        assert_eq!(ms_at_ghz(1.0, 1.0), 1_000_000);
        assert_eq!(ms_at_ghz(2.5, 2.0), 5_000_000);
    }

    #[test]
    fn multi_joins_names_and_concatenates_tasks() {
        use nest_simcore::{BarrierId, ChannelId};

        struct Setup(u32);
        impl SimSetup for Setup {
            fn create_barrier(&mut self, _parties: u32) -> BarrierId {
                self.0 += 1;
                BarrierId(self.0)
            }
            fn create_channel(&mut self) -> ChannelId {
                self.0 += 1;
                ChannelId(self.0)
            }
            fn n_cores(&self) -> usize {
                64
            }
        }

        let a = Box::new(crate::hackbench::Hackbench::new(Default::default()));
        let b = Box::new(crate::schbench::Schbench::new(Default::default()));
        let (an, bn) = (a.name(), b.name());
        let multi = Multi::new(vec![a as Box<dyn Workload>, b]);
        assert_eq!(multi.name(), format!("{an} + {bn}"));

        let mut rng = SimRng::new(7);
        let mut setup = Setup(0);
        let n_a = crate::hackbench::Hackbench::new(Default::default())
            .build(&mut setup, &mut rng)
            .len();
        let n_b = crate::schbench::Schbench::new(Default::default())
            .build(&mut setup, &mut rng)
            .len();
        let combined = multi.build(&mut setup, &mut rng).len();
        assert_eq!(combined, n_a + n_b);
    }
}
