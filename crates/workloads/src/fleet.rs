//! The fleet front-end wrapper.
//!
//! [`FleetLoad`] pairs a [`FleetSpec`] (hosts, load-balancing policy,
//! retry/timeout/hedge parameters) with an inner workload. It *is* the
//! inner workload as far as task construction goes — `build` and
//! `serve_specs` delegate — but its `fleet_spec` hook returns `Some`,
//! which diverts the run into the multi-host co-simulation driver in
//! `nest-core`: each host runs its own copy of the inner workload's
//! background tasks, while the serve streams are materialized once,
//! fleet-wide, and routed by the load balancer.

use nest_fleet::FleetSpec;
use nest_simcore::{SimRng, SimSetup, TaskSpec};

use crate::{ServeSpec, Workload};

/// An inner workload wrapped by a fleet front-end.
pub struct FleetLoad {
    spec: FleetSpec,
    inner: Box<dyn Workload>,
}

impl FleetLoad {
    /// Wraps `inner` under fleet front-end `spec`.
    ///
    /// # Panics
    ///
    /// Panics if the inner workload carries no serve streams (the fleet
    /// balancer routes requests; with nothing to route it is meaningless)
    /// or is itself a fleet (no nesting).
    pub fn new(spec: FleetSpec, inner: Box<dyn Workload>) -> FleetLoad {
        assert!(
            !inner.serve_specs().is_empty(),
            "a fleet needs at least one serve stream to route"
        );
        assert!(inner.fleet_spec().is_none(), "fleets do not nest");
        FleetLoad { spec, inner }
    }

    /// The wrapped workload.
    pub fn inner(&self) -> &dyn Workload {
        self.inner.as_ref()
    }
}

impl Workload for FleetLoad {
    fn name(&self) -> String {
        format!("fleet({}) {}", self.spec.hosts, self.inner.name())
    }

    fn build(&self, setup: &mut dyn SimSetup, rng: &mut SimRng) -> Vec<TaskSpec> {
        self.inner.build(setup, rng)
    }

    fn serve_specs(&self) -> Vec<ServeSpec> {
        self.inner.serve_specs()
    }

    fn fleet_spec(&self) -> Option<FleetSpec> {
        Some(self.spec.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServeLoad;

    #[test]
    fn fleet_load_delegates_and_flags() {
        let spec = FleetSpec::default();
        let wl = FleetLoad::new(spec, Box::new(ServeLoad::new(ServeSpec::default())));
        assert!(wl.fleet_spec().is_some());
        assert_eq!(wl.serve_specs().len(), 1);
        assert!(wl.name().starts_with("fleet(2) "));
    }

    #[test]
    #[should_panic(expected = "at least one serve stream")]
    fn fleet_without_serve_streams_is_rejected() {
        let _ = FleetLoad::new(
            FleetSpec::default(),
            Box::new(crate::hackbench::Hackbench::new(Default::default())),
        );
    }
}
