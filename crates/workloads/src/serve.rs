//! The open-loop serving workload adapter.
//!
//! [`ServeLoad`] lifts a [`nest_serve::ServeSpec`] into the [`Workload`]
//! trait. Unlike every other workload it builds **no** initial tasks: its
//! requests are materialized by the run driver into timed injections on
//! the engine's event queue, so arrivals follow the spec's stochastic
//! process instead of all starting at time zero. Through the trait's
//! [`Workload::serve_specs`] hook it composes with any other workload via
//! `Multi` (the registry's `+`), which is how serving traffic is colocated
//! with batch work.

use nest_serve::ServeSpec;
use nest_simcore::{SimRng, SimSetup, TaskSpec};

use crate::Workload;

/// An open-loop request-serving workload.
pub struct ServeLoad {
    spec: ServeSpec,
}

impl ServeLoad {
    /// Wraps a validated spec. Panics if the spec is invalid, mirroring
    /// the materializer's contract.
    pub fn new(spec: ServeSpec) -> ServeLoad {
        if let Err(e) = spec.validate() {
            panic!("invalid serve spec: {e}");
        }
        ServeLoad { spec }
    }

    /// The underlying spec.
    pub fn spec(&self) -> &ServeSpec {
        &self.spec
    }
}

impl Workload for ServeLoad {
    fn name(&self) -> String {
        self.spec.name()
    }

    fn build(&self, _setup: &mut dyn SimSetup, _rng: &mut SimRng) -> Vec<TaskSpec> {
        // All tasks arrive later, via the injection plan.
        Vec::new()
    }

    fn serve_specs(&self) -> Vec<ServeSpec> {
        vec![self.spec.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Multi;

    #[test]
    fn serve_load_builds_nothing_but_carries_its_spec() {
        let w = ServeLoad::new(ServeSpec::default());
        assert_eq!(w.name(), "serve-r200");
        assert_eq!(w.serve_specs(), vec![ServeSpec::default()]);
    }

    #[test]
    fn multi_concatenates_serve_specs_in_part_order() {
        let fast = ServeSpec {
            rate: 500.0,
            ..ServeSpec::default()
        };
        let multi = Multi::new(vec![
            Box::new(ServeLoad::new(ServeSpec::default())) as Box<dyn Workload>,
            Box::new(crate::hackbench::Hackbench::new(Default::default())),
            Box::new(ServeLoad::new(fast.clone())),
        ]);
        assert_eq!(multi.serve_specs(), vec![ServeSpec::default(), fast]);
    }

    #[test]
    #[should_panic(expected = "invalid serve spec")]
    fn invalid_spec_is_rejected_at_construction() {
        ServeLoad::new(ServeSpec {
            rate: 0.0,
            ..ServeSpec::default()
        });
    }
}
