//! Hackbench (§5.6): groups of sender/receiver pairs exchanging messages.
//!
//! `hackbench -g G -l L` creates `G` groups of 20 senders and 20
//! receivers; every sender sends `L` messages spread over the group's
//! receivers. Execution time is dominated by scheduling (96 % system time
//! with CFS in the paper), and the constant wake/block churn is an
//! adversarial case for Nest. The default sizes here are scaled down from
//! the paper's `-g 100 -l 10000` to keep simulation tractable; the
//! *structure* (pairs, message batching, full-machine churn) is preserved.

use nest_simcore::json::{self, Json};
use nest_simcore::{
    snap, Action, Behavior, BehaviorRegistry, ChannelId, SimRng, SimSetup, TaskSpec,
};

use crate::Workload;

const SENDER_KIND: &str = "hb.sender";
const RECEIVER_KIND: &str = "hb.receiver";

pub(crate) fn register(reg: &mut BehaviorRegistry) {
    reg.register(SENDER_KIND, |state, _| {
        Ok(Box::new(Sender {
            ch: ChannelId(snap::get_u32(state, "ch")?),
            loops: snap::get_u32(state, "loops")?,
            msg_cycles: snap::get_u64(state, "msg_cycles")?,
            send_next: snap::get_bool(state, "send_next")?,
        }))
    });
    reg.register(RECEIVER_KIND, |state, _| {
        Ok(Box::new(Receiver {
            ch: ChannelId(snap::get_u32(state, "ch")?),
            msgs: snap::get_u32(state, "msgs")?,
            msg_cycles: snap::get_u64(state, "msg_cycles")?,
            recv_next: snap::get_bool(state, "recv_next")?,
        }))
    });
}

/// Hackbench parameters.
#[derive(Clone, Debug)]
pub struct HackbenchSpec {
    /// Number of groups.
    pub groups: u32,
    /// Senders (and receivers) per group; hackbench uses 20.
    pub fan: u32,
    /// Messages each sender sends.
    pub loops: u32,
    /// Per-message compute (copy cost), cycles.
    pub msg_cycles: u64,
}

impl Default for HackbenchSpec {
    fn default() -> HackbenchSpec {
        HackbenchSpec {
            groups: 16,
            fan: 10,
            loops: 1_000,
            msg_cycles: 30_000, // ~10 µs at 3 GHz per message
        }
    }
}

struct Sender {
    ch: ChannelId,
    loops: u32,
    msg_cycles: u64,
    send_next: bool,
}

impl Behavior for Sender {
    fn next(&mut self, _rng: &mut SimRng) -> Action {
        if self.send_next {
            self.send_next = false;
            return Action::Send {
                ch: self.ch,
                msgs: 1,
            };
        }
        if self.loops == 0 {
            return Action::Exit;
        }
        self.send_next = true;
        self.loops -= 1;
        Action::Compute {
            cycles: self.msg_cycles,
        }
    }

    fn snap(&self) -> Option<(&'static str, Json)> {
        Some((
            SENDER_KIND,
            json::obj(vec![
                ("ch", Json::u64(self.ch.0 as u64)),
                ("loops", Json::u64(self.loops as u64)),
                ("msg_cycles", Json::u64(self.msg_cycles)),
                ("send_next", Json::Bool(self.send_next)),
            ]),
        ))
    }
}

struct Receiver {
    ch: ChannelId,
    msgs: u32,
    msg_cycles: u64,
    recv_next: bool,
}

impl Behavior for Receiver {
    fn next(&mut self, _rng: &mut SimRng) -> Action {
        if self.msgs == 0 {
            return Action::Exit;
        }
        if self.recv_next {
            self.recv_next = false;
            Action::Recv { ch: self.ch }
        } else {
            self.recv_next = true;
            self.msgs -= 1;
            Action::Compute {
                cycles: self.msg_cycles,
            }
        }
    }

    fn snap(&self) -> Option<(&'static str, Json)> {
        Some((
            RECEIVER_KIND,
            json::obj(vec![
                ("ch", Json::u64(self.ch.0 as u64)),
                ("msgs", Json::u64(self.msgs as u64)),
                ("msg_cycles", Json::u64(self.msg_cycles)),
                ("recv_next", Json::Bool(self.recv_next)),
            ]),
        ))
    }
}

/// The hackbench workload.
pub struct Hackbench {
    spec: HackbenchSpec,
}

impl Hackbench {
    /// Creates hackbench with the given parameters.
    pub fn new(spec: HackbenchSpec) -> Hackbench {
        Hackbench { spec }
    }
}

impl Default for Hackbench {
    fn default() -> Hackbench {
        Hackbench::new(HackbenchSpec::default())
    }
}

impl Workload for Hackbench {
    fn name(&self) -> String {
        format!("hackbench-g{}-l{}", self.spec.groups, self.spec.loops)
    }

    fn build(&self, setup: &mut dyn SimSetup, _rng: &mut SimRng) -> Vec<TaskSpec> {
        let mut tasks = Vec::new();
        for g in 0..self.spec.groups {
            // One shared channel per group; every sender's messages are
            // competed for by the group's receivers (hackbench uses a
            // socket pair matrix; the contention pattern is the same).
            let ch = setup.create_channel();
            for s in 0..self.spec.fan {
                tasks.push(TaskSpec::new(
                    format!("hb-g{g}-send{s}"),
                    Box::new(Sender {
                        ch,
                        loops: self.spec.loops,
                        msg_cycles: self.spec.msg_cycles,
                        send_next: false,
                    }),
                ));
            }
            // Total messages sent into the group, split among receivers.
            let total = self.spec.loops * self.spec.fan;
            let per_recv = total / self.spec.fan;
            for r in 0..self.spec.fan {
                tasks.push(TaskSpec::new(
                    format!("hb-g{g}-recv{r}"),
                    Box::new(Receiver {
                        ch,
                        msgs: per_recv,
                        msg_cycles: self.spec.msg_cycles,
                        recv_next: true,
                    }),
                ));
            }
        }
        tasks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Setup {
        channels: u32,
    }
    impl SimSetup for Setup {
        fn create_barrier(&mut self, _parties: u32) -> nest_simcore::BarrierId {
            unreachable!()
        }
        fn create_channel(&mut self) -> ChannelId {
            self.channels += 1;
            ChannelId(self.channels - 1)
        }
        fn n_cores(&self) -> usize {
            64
        }
    }

    #[test]
    fn builds_2_fan_tasks_per_group() {
        let hb = Hackbench::new(HackbenchSpec {
            groups: 3,
            fan: 5,
            loops: 10,
            msg_cycles: 100,
        });
        let mut setup = Setup { channels: 0 };
        let mut rng = SimRng::new(0);
        let tasks = hb.build(&mut setup, &mut rng);
        assert_eq!(tasks.len(), 3 * (5 + 5));
        assert_eq!(setup.channels, 3);
    }

    #[test]
    fn sender_message_count_matches_loops() {
        let mut s = Sender {
            ch: ChannelId(0),
            loops: 4,
            msg_cycles: 10,
            send_next: false,
        };
        let mut rng = SimRng::new(0);
        let mut sends = 0;
        loop {
            match s.next(&mut rng) {
                Action::Send { msgs, .. } => sends += msgs,
                Action::Exit => break,
                _ => {}
            }
        }
        assert_eq!(sends, 4);
    }

    #[test]
    fn receiver_consumes_expected_messages() {
        let mut r = Receiver {
            ch: ChannelId(0),
            msgs: 4,
            msg_cycles: 10,
            recv_next: true,
        };
        let mut rng = SimRng::new(0);
        let mut recvs = 0;
        loop {
            match r.next(&mut rng) {
                Action::Recv { .. } => recvs += 1,
                Action::Exit => break,
                _ => {}
            }
        }
        assert_eq!(recvs, 4);
    }

    #[test]
    fn messages_balance_group_wide() {
        let spec = HackbenchSpec::default();
        let sent = spec.loops * spec.fan;
        let received = (spec.loops * spec.fan / spec.fan) * spec.fan;
        assert_eq!(sent, received, "group would deadlock");
    }
}
