//! Schbench (§5.6): wakeup-latency microbenchmark.
//!
//! Message threads dispatch requests to worker threads; each worker
//! receives a request, "thinks" (computes), and replies. The benchmark
//! reports the 99.9th-percentile wakeup latency — pair this workload with
//! the metrics crate's `WakeupLatencyProbe` to extract it. The paper tests
//! 2-32 message threads and 2-32 workers per message thread via the
//! Phoronix harness.

use nest_serve::ServiceWorker;
use nest_simcore::json::{self, Json};
use nest_simcore::{
    snap, Action, Behavior, BehaviorRegistry, ChannelId, SimRng, SimSetup, TaskSpec,
};

use crate::{ms_at_ghz, Workload};

const DISPATCHER_KIND: &str = "sch.dispatcher";

pub(crate) fn register(reg: &mut BehaviorRegistry) {
    reg.register(DISPATCHER_KIND, |state, _| {
        Ok(Box::new(Dispatcher {
            request_ch: ChannelId(snap::get_u32(state, "request_ch")?),
            reply_ch: ChannelId(snap::get_u32(state, "reply_ch")?),
            batch: snap::get_u32(state, "batch")?,
            outstanding: snap::get_u32(state, "outstanding")?,
            phase: snap::get_u32(state, "phase")? as u8,
        }))
    });
}

/// Schbench parameters.
#[derive(Clone, Debug)]
pub struct SchbenchSpec {
    /// Message (dispatcher) threads.
    pub message_threads: u32,
    /// Workers per message thread.
    pub workers_per_message: u32,
    /// Requests each worker processes.
    pub requests_per_worker: u32,
    /// Worker think time per request, ms at 3 GHz (schbench default is
    /// ~30 ms cpu time; scaled down for simulation).
    pub think_ms: f64,
}

impl Default for SchbenchSpec {
    fn default() -> SchbenchSpec {
        SchbenchSpec {
            message_threads: 8,
            workers_per_message: 8,
            requests_per_worker: 50,
            think_ms: 3.0,
        }
    }
}

/// Dispatcher: saturates its worker pool with an initial batch, then
/// keeps one request in flight per received reply (schbench keeps every
/// worker busy so wakeup latency reflects contention, not idleness).
struct Dispatcher {
    request_ch: ChannelId,
    reply_ch: ChannelId,
    batch: u32,
    outstanding: u32,
    phase: u8,
}

impl Behavior for Dispatcher {
    fn next(&mut self, _rng: &mut SimRng) -> Action {
        if self.phase == 0 {
            self.phase = 1;
            return Action::Send {
                ch: self.request_ch,
                msgs: self.batch,
            };
        }
        if self.outstanding == 0 {
            return Action::Exit;
        }
        if self.phase == 1 {
            self.phase = 2;
            return Action::Recv { ch: self.reply_ch };
        }
        self.phase = 1;
        self.outstanding -= 1;
        if self.outstanding >= self.batch {
            Action::Send {
                ch: self.request_ch,
                msgs: 1,
            }
        } else {
            // Tail: no refill, just drain the remaining replies.
            Action::Compute { cycles: 1 }
        }
    }

    fn snap(&self) -> Option<(&'static str, Json)> {
        Some((
            DISPATCHER_KIND,
            json::obj(vec![
                ("request_ch", Json::u64(self.request_ch.0 as u64)),
                ("reply_ch", Json::u64(self.reply_ch.0 as u64)),
                ("batch", Json::u64(self.batch as u64)),
                ("outstanding", Json::u64(self.outstanding as u64)),
                ("phase", Json::u64(self.phase as u64)),
            ]),
        ))
    }
}

/// The schbench workload. The worker (receive → think → reply) is the
/// shared [`nest_serve::ServiceWorker`] with a reply channel; only the
/// saturating `Dispatcher` is schbench-specific.
pub struct Schbench {
    spec: SchbenchSpec,
}

impl Schbench {
    /// Creates schbench with the given parameters.
    pub fn new(spec: SchbenchSpec) -> Schbench {
        Schbench { spec }
    }
}

impl Default for Schbench {
    fn default() -> Schbench {
        Schbench::new(SchbenchSpec::default())
    }
}

impl Workload for Schbench {
    fn name(&self) -> String {
        format!(
            "schbench-m{}-w{}",
            self.spec.message_threads, self.spec.workers_per_message
        )
    }

    fn build(&self, setup: &mut dyn SimSetup, _rng: &mut SimRng) -> Vec<TaskSpec> {
        let mut tasks = Vec::new();
        for m in 0..self.spec.message_threads {
            let request_ch = setup.create_channel();
            let reply_ch = setup.create_channel();
            let w = self.spec.workers_per_message;
            // Each dispatcher keeps its pool saturated: total requests =
            // workers × requests_per_worker.
            tasks.push(TaskSpec::new(
                format!("sch-msg{m}"),
                Box::new(Dispatcher {
                    request_ch,
                    reply_ch,
                    batch: w,
                    outstanding: w * self.spec.requests_per_worker,
                    phase: 0,
                }),
            ));
            for i in 0..w {
                tasks.push(TaskSpec::new(
                    format!("sch-m{m}-w{i}"),
                    Box::new(ServiceWorker {
                        request_ch,
                        reply_ch: Some(reply_ch),
                        quota: self.spec.requests_per_worker,
                        service_cycles: ms_at_ghz(self.spec.think_ms, 3.0),
                        jitter: 0.3,
                        phase: 0,
                    }),
                ));
            }
        }
        tasks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Setup {
        channels: u32,
    }
    impl SimSetup for Setup {
        fn create_barrier(&mut self, _parties: u32) -> nest_simcore::BarrierId {
            unreachable!()
        }
        fn create_channel(&mut self) -> ChannelId {
            self.channels += 1;
            ChannelId(self.channels - 1)
        }
        fn n_cores(&self) -> usize {
            64
        }
    }

    #[test]
    fn builds_dispatchers_and_workers() {
        let s = Schbench::new(SchbenchSpec {
            message_threads: 2,
            workers_per_message: 3,
            requests_per_worker: 5,
            think_ms: 1.0,
        });
        let mut setup = Setup { channels: 0 };
        let mut rng = SimRng::new(0);
        let tasks = s.build(&mut setup, &mut rng);
        assert_eq!(tasks.len(), 2 * (1 + 3));
        assert_eq!(setup.channels, 4);
    }

    #[test]
    fn request_reply_counts_balance() {
        // Dispatcher sends w*r requests and waits for w*r replies; workers
        // collectively consume and reply exactly that many.
        let w = 3u32;
        let r = 5u32;
        let mut d = Dispatcher {
            request_ch: ChannelId(0),
            reply_ch: ChannelId(1),
            batch: w,
            outstanding: w * r,
            phase: 0,
        };
        let mut rng = SimRng::new(0);
        let mut sends = 0;
        let mut recvs = 0;
        loop {
            match d.next(&mut rng) {
                Action::Send { msgs, .. } => sends += msgs,
                Action::Recv { .. } => recvs += 1,
                Action::Exit => break,
                _ => {}
            }
        }
        assert_eq!(sends, w * r, "every request sent exactly once");
        assert_eq!(recvs, w * r, "every reply consumed");
    }

    #[test]
    fn worker_cycle_is_recv_think_send() {
        let mut w = ServiceWorker {
            request_ch: ChannelId(0),
            reply_ch: Some(ChannelId(1)),
            quota: 2,
            service_cycles: 100,
            jitter: 0.3,
            phase: 0,
        };
        let mut rng = SimRng::new(0);
        let mut seq = String::new();
        loop {
            match w.next(&mut rng) {
                Action::Recv { .. } => seq.push('R'),
                Action::Compute { .. } => seq.push('C'),
                Action::Send { .. } => seq.push('S'),
                Action::Exit => break,
                _ => {}
            }
        }
        assert_eq!(seq, "RCSRCS");
    }
}
