//! NAS Parallel Benchmarks (§5.4): OpenMP HPC kernels, class C.
//!
//! Each kernel forks one task per hardware thread; workers iterate
//! `compute chunk → barrier`. In the optimal placement every task gets its
//! own core at fork time and never moves. Slight per-iteration jitter
//! desynchronizes workers so stragglers make the others sleep at the
//! barrier — which is where wakeup placement quality matters, and where
//! CFS's fork collisions on large machines cause the overloads Lepers et
//! al. observed.

use nest_simcore::json::{self, Json};
use nest_simcore::{
    snap, Action, BarrierId, Behavior, BehaviorRegistry, SimRng, SimSetup, TaskSpec,
};

use crate::{ms_at_ghz, Workload};

const WORKER_KIND: &str = "nas.worker";
const MASTER_KIND: &str = "nas.master";

fn worker_to_json(w: &NasWorker) -> Json {
    json::obj(vec![
        ("iterations", Json::u64(w.iterations as u64)),
        ("chunk_cycles", Json::u64(w.chunk_cycles)),
        ("jitter", snap::f64_bits(w.jitter)),
        ("barrier", Json::u64(w.barrier.0 as u64)),
        ("at_barrier", Json::Bool(w.at_barrier)),
    ])
}

fn worker_from_json(state: &Json) -> Result<NasWorker, String> {
    Ok(NasWorker {
        iterations: snap::get_u32(state, "iterations")?,
        chunk_cycles: snap::get_u64(state, "chunk_cycles")?,
        jitter: snap::get_f64_bits(state, "jitter")?,
        barrier: BarrierId(snap::get_u32(state, "barrier")?),
        at_barrier: snap::get_bool(state, "at_barrier")?,
    })
}

pub(crate) fn register(reg: &mut BehaviorRegistry) {
    reg.register(WORKER_KIND, |state, _| {
        Ok(Box::new(worker_from_json(state)?))
    });
    reg.register(MASTER_KIND, |state, reg| {
        let script = snap::get_arr(state, "script")?
            .iter()
            .map(|a| snap::action_from_json(a, reg))
            .collect::<Result<Vec<Action>, String>>()?;
        Ok(Box::new(MasterBehavior {
            script: script.into_iter(),
            worker: worker_from_json(snap::field(state, "worker")?)?,
            in_worker_phase: snap::get_bool(state, "in_worker_phase")?,
            waited: snap::get_bool(state, "waited")?,
        }))
    });
}

/// Parameters of one NAS kernel (class C sizing).
#[derive(Clone, Debug)]
pub struct NasSpec {
    /// Kernel name as the paper prints it (e.g. `"bt.C.x"`).
    pub name: &'static str,
    /// Barrier-delimited iterations.
    pub iterations: u32,
    /// Compute per task per iteration, ms at 3 GHz (on a 64-thread run;
    /// scaled by thread count so total work is machine-independent).
    pub chunk_ms_at_64: f64,
    /// Relative jitter between workers within an iteration.
    pub jitter: f64,
    /// Serial setup work before the parallel region, ms at 3 GHz.
    pub setup_ms: f64,
}

/// The nine kernels of Figure 12 (DC is omitted, as in the paper).
pub fn all_specs() -> Vec<NasSpec> {
    fn spec(name: &'static str, iterations: u32, chunk_ms_at_64: f64, jitter: f64) -> NasSpec {
        NasSpec {
            name,
            iterations,
            chunk_ms_at_64,
            jitter,
            setup_ms: 120.0,
        }
    }
    // Iterations are barrier-delimited *phases*: BT/LU/SP synchronize at
    // millisecond granularity (pipelined sweeps), EP only once at the
    // end, FT after each large transform step.
    vec![
        spec("bt.C.x", 3_200, 9.5, 0.04),
        spec("cg.C.x", 1_900, 4.3, 0.05),
        spec("ep.C.x", 16, 180.0, 0.03),
        spec("ft.C.x", 66, 115.0, 0.05),
        spec("is.C.x", 110, 6.3, 0.05),
        spec("lu.C.x", 6_000, 3.5, 0.06),
        spec("mg.C.x", 700, 4.1, 0.05),
        spec("sp.C.x", 6_400, 3.6, 0.05),
        spec("ua.C.x", 2_500, 9.6, 0.06),
    ]
}

/// Looks a spec up by name.
pub fn by_name(name: &str) -> Option<NasSpec> {
    all_specs().into_iter().find(|s| s.name == name)
}

/// One OpenMP worker: iterate compute → barrier.
struct NasWorker {
    iterations: u32,
    chunk_cycles: u64,
    jitter: f64,
    barrier: BarrierId,
    at_barrier: bool,
}

impl Behavior for NasWorker {
    fn next(&mut self, rng: &mut SimRng) -> Action {
        if self.at_barrier {
            self.at_barrier = false;
            return Action::Barrier { id: self.barrier };
        }
        if self.iterations == 0 {
            return Action::Exit;
        }
        self.iterations -= 1;
        self.at_barrier = true;
        Action::Compute {
            cycles: rng.jitter(self.chunk_cycles, self.jitter).max(1),
        }
    }

    fn snap(&self) -> Option<(&'static str, Json)> {
        Some((WORKER_KIND, worker_to_json(self)))
    }
}

/// A NAS workload instance.
pub struct Nas {
    spec: NasSpec,
}

impl Nas {
    /// Creates the workload from a spec.
    pub fn new(spec: NasSpec) -> Nas {
        Nas { spec }
    }

    /// Creates the workload by kernel name.
    ///
    /// # Panics
    ///
    /// Panics if the name is unknown.
    pub fn named(name: &str) -> Nas {
        Nas::new(by_name(name).unwrap_or_else(|| panic!("unknown NAS kernel {name}")))
    }
}

impl Workload for Nas {
    fn name(&self) -> String {
        self.spec.name.to_string()
    }

    fn build(&self, setup: &mut dyn SimSetup, _rng: &mut SimRng) -> Vec<TaskSpec> {
        let n = setup.n_cores() as u32;
        let barrier = setup.create_barrier(n);
        // Fixed total work: scale the per-task chunk by 64/n.
        let chunk_cycles = ms_at_ghz(self.spec.chunk_ms_at_64 * 64.0 / n as f64, 3.0);
        // The OpenMP master does serial setup, then forks the team in a
        // tight loop (one fork per worker, tiny stride in between — this
        // burst is what trips CFS's stale group statistics on big
        // machines), then participates itself.
        let mut script = vec![Action::Compute {
            cycles: ms_at_ghz(self.spec.setup_ms, 3.0),
        }];
        for w in 1..n {
            script.push(Action::Fork {
                child: TaskSpec::new(
                    format!("{}-{w}", self.spec.name),
                    Box::new(NasWorker {
                        iterations: self.spec.iterations,
                        chunk_cycles,
                        jitter: self.spec.jitter,
                        barrier,
                        at_barrier: false,
                    }),
                ),
            });
            // pthread_create + OpenMP team setup stride (~40 µs at 3 GHz).
            script.push(Action::Compute {
                cycles: ms_at_ghz(0.040, 3.0),
            });
        }
        // The master is worker 0.
        let master_worker = NasWorker {
            iterations: self.spec.iterations,
            chunk_cycles,
            jitter: self.spec.jitter,
            barrier,
            at_barrier: false,
        };
        vec![TaskSpec::new(
            format!("{}-master", self.spec.name),
            Box::new(MasterBehavior {
                script: script.into_iter(),
                worker: master_worker,
                in_worker_phase: false,
                waited: false,
            }),
        )]
    }
}

/// Runs the setup script, then becomes a worker, then waits for the team.
struct MasterBehavior {
    script: std::vec::IntoIter<Action>,
    worker: NasWorker,
    in_worker_phase: bool,
    waited: bool,
}

impl Behavior for MasterBehavior {
    fn next(&mut self, rng: &mut SimRng) -> Action {
        if !self.in_worker_phase {
            if let Some(a) = self.script.next() {
                return a;
            }
            self.in_worker_phase = true;
        }
        match self.worker.next(rng) {
            Action::Exit => {
                if self.waited {
                    Action::Exit
                } else {
                    self.waited = true;
                    Action::WaitChildren
                }
            }
            other => other,
        }
    }

    fn snap(&self) -> Option<(&'static str, Json)> {
        let script: Option<Vec<Json>> = self
            .script
            .as_slice()
            .iter()
            .map(snap::action_to_json)
            .collect();
        Some((
            MASTER_KIND,
            json::obj(vec![
                ("script", Json::Arr(script?)),
                ("worker", worker_to_json(&self.worker)),
                ("in_worker_phase", Json::Bool(self.in_worker_phase)),
                ("waited", Json::Bool(self.waited)),
            ]),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CountingSetup {
        barriers: Vec<u32>,
    }
    impl SimSetup for CountingSetup {
        fn create_barrier(&mut self, parties: u32) -> BarrierId {
            self.barriers.push(parties);
            BarrierId(self.barriers.len() as u32 - 1)
        }
        fn create_channel(&mut self) -> nest_simcore::ChannelId {
            unreachable!()
        }
        fn n_cores(&self) -> usize {
            64
        }
    }

    #[test]
    fn nine_kernels() {
        let names: Vec<&str> = all_specs().iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec![
                "bt.C.x", "cg.C.x", "ep.C.x", "ft.C.x", "is.C.x", "lu.C.x", "mg.C.x", "sp.C.x",
                "ua.C.x"
            ]
        );
    }

    #[test]
    fn barrier_spans_all_cores() {
        let w = Nas::named("mg.C.x");
        let mut setup = CountingSetup { barriers: vec![] };
        let mut rng = SimRng::new(0);
        let tasks = w.build(&mut setup, &mut rng);
        assert_eq!(tasks.len(), 1);
        assert_eq!(setup.barriers, vec![64]);
    }

    #[test]
    fn worker_alternates_compute_and_barrier() {
        let mut w = NasWorker {
            iterations: 3,
            chunk_cycles: 1000,
            jitter: 0.0,
            barrier: BarrierId(0),
            at_barrier: false,
        };
        let mut rng = SimRng::new(0);
        let mut seq = Vec::new();
        loop {
            match w.next(&mut rng) {
                Action::Compute { .. } => seq.push('C'),
                Action::Barrier { .. } => seq.push('B'),
                Action::Exit => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(seq.iter().collect::<String>(), "CBCBCB");
    }

    #[test]
    fn master_forks_n_minus_one_workers() {
        let w = Nas::named("is.C.x");
        let mut setup = CountingSetup { barriers: vec![] };
        let mut rng = SimRng::new(0);
        let mut beh = w
            .build(&mut setup, &mut rng)
            .into_iter()
            .next()
            .unwrap()
            .behavior;
        let mut forks = 0;
        // Drive through the setup script; stop once the worker phase's
        // first barrier shows up.
        loop {
            match beh.next(&mut rng) {
                Action::Fork { .. } => forks += 1,
                Action::Barrier { .. } => break,
                _ => {}
            }
        }
        assert_eq!(forks, 63);
    }

    #[test]
    fn total_work_is_machine_independent() {
        // chunk at 64 threads vs 128 threads: per-task halves.
        let spec = by_name("ft.C.x").unwrap();
        let at64 = ms_at_ghz(spec.chunk_ms_at_64 * 64.0 / 64.0, 3.0);
        let at128 = ms_at_ghz(spec.chunk_ms_at_64 * 64.0 / 128.0, 3.0);
        assert_eq!(at64, 2 * at128);
    }
}
