//! Phoronix multicore suite models (§5.5, Figure 13, Table 4).
//!
//! Each named test of Figure 13 gets a behavioural pattern matching the
//! §5.5 narrative: zstd compression is a storm of very short tasks, the
//! cpuminer/oneDNN/oidn tests keep every core busy in synchronized
//! rounds, Rodinia uses 36 cores, libavif's encoder threads drift between
//! sockets, the libgav1 decoders use a frame pipeline of moderate width.
//!
//! Because the full 222-test corpus cannot be run here, the Table 4
//! overview additionally samples parameterized *archetype families*
//! ([`archetype_suite`]) spanning the same behaviour space; DESIGN.md
//! documents the substitution.

use nest_simcore::json::{self, Json};
use nest_simcore::{
    snap, Action, BarrierId, Behavior, BehaviorRegistry, SimRng, SimSetup, TaskSpec,
};

use crate::{ms_at_ghz, Workload};

const STORM_KIND: &str = "px.storm";
const BARRIER_KIND: &str = "px.barrier";

pub(crate) fn register(reg: &mut BehaviorRegistry) {
    reg.register(STORM_KIND, |state, _| {
        Ok(Box::new(StormRoot {
            task_cycles: snap::get_u64(state, "task_cycles")?,
            concurrent: snap::get_u32(state, "concurrent")?,
            remaining: snap::get_u32(state, "remaining")?,
            phase: snap::get_u32(state, "phase")? as u8,
            to_fork: snap::get_u32(state, "to_fork")?,
        }))
    });
    reg.register(BARRIER_KIND, |state, _| {
        Ok(Box::new(BarrierWorker {
            iterations: snap::get_u32(state, "iterations")?,
            chunk_cycles: snap::get_u64(state, "chunk_cycles")?,
            jitter: snap::get_f64_bits(state, "jitter")?,
            barrier: BarrierId(snap::get_u32(state, "barrier")?),
            at_barrier: snap::get_bool(state, "at_barrier")?,
        }))
    });
}

/// How a test's tasks behave.
#[derive(Clone, Debug)]
pub enum Pattern {
    /// A stream of very short tasks forked by a coordinator, `concurrent`
    /// at a time (zstd, graphics-magick).
    Storm {
        /// Concurrent in-flight tasks.
        concurrent: u32,
        /// Task length, ms at 3 GHz.
        task_ms: f64,
        /// Total tasks.
        count: u32,
    },
    /// A pool of threads alternating compute and short sleeps
    /// (ffmpeg, libgav1, libavif, cassandra).
    Pool {
        /// Threads; 0 = one per hardware thread.
        threads: u32,
        /// Chunk, ms at 3 GHz.
        chunk_ms: f64,
        /// Sleep between chunks, ms.
        sleep_ms: f64,
        /// Work per thread, ms at 3 GHz.
        work_ms: f64,
    },
    /// Barrier-synchronized iterations (cpuminer, oneDNN, oidn, rodinia,
    /// arrayfire, askap).
    Barrier {
        /// Threads; 0 = one per hardware thread.
        threads: u32,
        /// Chunk per iteration, ms at 3 GHz.
        chunk_ms: f64,
        /// Worker desynchronization.
        jitter: f64,
        /// Iterations.
        iters: u32,
    },
}

/// A named Phoronix test.
#[derive(Clone, Debug)]
pub struct PhoronixSpec {
    /// Test label as in Figure 13 (e.g. `"zstd compression 7"`).
    pub name: String,
    /// Behaviour pattern.
    pub pattern: Pattern,
}

/// The 27 tests of Figure 13 / Table 5.
pub fn figure13_specs() -> Vec<PhoronixSpec> {
    fn t(name: &str, pattern: Pattern) -> PhoronixSpec {
        PhoronixSpec {
            name: name.to_string(),
            pattern,
        }
    }
    use Pattern::*;
    vec![
        t(
            "arrayfire 2",
            Barrier {
                threads: 0,
                chunk_ms: 1.2,
                jitter: 0.05,
                iters: 500,
            },
        ),
        t(
            "arrayfire 3",
            Barrier {
                threads: 0,
                chunk_ms: 0.8,
                jitter: 0.08,
                iters: 700,
            },
        ),
        t(
            "askap 5",
            Barrier {
                threads: 0,
                chunk_ms: 3.0,
                jitter: 0.05,
                iters: 300,
            },
        ),
        t(
            "cassandra 1",
            Pool {
                threads: 32,
                chunk_ms: 0.8,
                sleep_ms: 0.6,
                work_ms: 2_500.0,
            },
        ),
        t(
            "cpuminer-opt 6",
            Barrier {
                threads: 0,
                chunk_ms: 6.0,
                jitter: 0.02,
                iters: 250,
            },
        ),
        t(
            "cpuminer-opt 7",
            Barrier {
                threads: 0,
                chunk_ms: 6.0,
                jitter: 0.02,
                iters: 225,
            },
        ),
        t(
            "cpuminer-opt 8",
            Barrier {
                threads: 0,
                chunk_ms: 6.0,
                jitter: 0.02,
                iters: 240,
            },
        ),
        t(
            "cpuminer-opt 9",
            Barrier {
                threads: 0,
                chunk_ms: 6.0,
                jitter: 0.02,
                iters: 210,
            },
        ),
        t(
            "cpuminer-opt 11",
            Barrier {
                threads: 0,
                chunk_ms: 6.0,
                jitter: 0.02,
                iters: 230,
            },
        ),
        t(
            "ffmpeg 1",
            Pool {
                threads: 12,
                chunk_ms: 2.5,
                sleep_ms: 0.5,
                work_ms: 2_200.0,
            },
        ),
        t(
            "graphics-magick 4",
            Storm {
                concurrent: 4,
                task_ms: 6.0,
                count: 500,
            },
        ),
        t(
            "libavif avifenc 1",
            Pool {
                threads: 24,
                chunk_ms: 1.8,
                sleep_ms: 1.4,
                work_ms: 3_200.0,
            },
        ),
        t(
            "libgav1 1",
            Pool {
                threads: 8,
                chunk_ms: 1.2,
                sleep_ms: 0.4,
                work_ms: 2_800.0,
            },
        ),
        t(
            "libgav1 2",
            Pool {
                threads: 8,
                chunk_ms: 1.0,
                sleep_ms: 0.4,
                work_ms: 2_300.0,
            },
        ),
        t(
            "libgav1 3",
            Pool {
                threads: 10,
                chunk_ms: 1.2,
                sleep_ms: 0.5,
                work_ms: 3_000.0,
            },
        ),
        t(
            "libgav1 4",
            Pool {
                threads: 10,
                chunk_ms: 1.0,
                sleep_ms: 0.5,
                work_ms: 2_600.0,
            },
        ),
        t(
            "oidn 1",
            Barrier {
                threads: 0,
                chunk_ms: 4.0,
                jitter: 0.04,
                iters: 200,
            },
        ),
        t(
            "oidn 2",
            Barrier {
                threads: 0,
                chunk_ms: 4.0,
                jitter: 0.04,
                iters: 200,
            },
        ),
        t(
            "oidn 3",
            Barrier {
                threads: 0,
                chunk_ms: 5.0,
                jitter: 0.04,
                iters: 160,
            },
        ),
        t(
            "onednn 4",
            Barrier {
                threads: 0,
                chunk_ms: 0.6,
                jitter: 0.10,
                iters: 220,
            },
        ),
        t(
            "onednn 5",
            Barrier {
                threads: 0,
                chunk_ms: 0.5,
                jitter: 0.10,
                iters: 220,
            },
        ),
        t(
            "onednn 7",
            Barrier {
                threads: 0,
                chunk_ms: 2.2,
                jitter: 0.06,
                iters: 140,
            },
        ),
        t(
            "onednn 11",
            Barrier {
                threads: 0,
                chunk_ms: 2.0,
                jitter: 0.06,
                iters: 140,
            },
        ),
        t(
            "onednn 14",
            Barrier {
                threads: 0,
                chunk_ms: 2.0,
                jitter: 0.06,
                iters: 140,
            },
        ),
        t(
            "rodinia 5",
            Barrier {
                threads: 36,
                chunk_ms: 2.4,
                jitter: 0.08,
                iters: 120,
            },
        ),
        t(
            "zstd compression 7",
            Storm {
                concurrent: 6,
                task_ms: 2.2,
                count: 1_800,
            },
        ),
        t(
            "zstd compression 10",
            Storm {
                concurrent: 6,
                task_ms: 2.6,
                count: 1_500,
            },
        ),
    ]
}

/// Looks a Figure 13 spec up by name.
pub fn by_name(name: &str) -> Option<PhoronixSpec> {
    figure13_specs().into_iter().find(|s| s.name == name)
}

/// Generates `n` archetype tests spanning the suite's behaviour space,
/// for the Table 4 aggregate.
pub fn archetype_suite(n: usize, rng: &mut SimRng) -> Vec<PhoronixSpec> {
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let kind = rng.weighted_index(&[0.25, 0.35, 0.40]);
        let pattern = match kind {
            0 => Pattern::Storm {
                concurrent: rng.uniform_u64(1, 8) as u32,
                task_ms: 1.0 + rng.uniform_f64() * 8.0,
                count: rng.uniform_u64(200, 1200) as u32,
            },
            1 => Pattern::Pool {
                threads: rng.uniform_u64(4, 48) as u32,
                chunk_ms: 0.5 + rng.uniform_f64() * 6.0,
                sleep_ms: 0.1 + rng.uniform_f64() * 1.5,
                work_ms: 800.0 + rng.uniform_f64() * 2_500.0,
            },
            _ => Pattern::Barrier {
                threads: if rng.chance(0.6) {
                    0
                } else {
                    rng.uniform_u64(8, 48) as u32
                },
                chunk_ms: 0.5 + rng.uniform_f64() * 6.0,
                jitter: 0.02 + rng.uniform_f64() * 0.1,
                iters: rng.uniform_u64(30, 200) as u32,
            },
        };
        out.push(PhoronixSpec {
            name: format!("archetype {i}"),
            pattern,
        });
    }
    out
}

/// Storm coordinator: keeps `concurrent` short tasks in flight.
struct StormRoot {
    task_cycles: u64,
    concurrent: u32,
    remaining: u32,
    phase: u8,
    to_fork: u32,
}

impl Behavior for StormRoot {
    fn next(&mut self, rng: &mut SimRng) -> Action {
        loop {
            if self.to_fork > 0 {
                self.to_fork -= 1;
                self.remaining -= 1;
                return Action::Fork {
                    child: TaskSpec::script(
                        "storm-task",
                        vec![Action::Compute {
                            cycles: rng.jitter(self.task_cycles, 0.4).max(1),
                        }],
                    ),
                };
            }
            match self.phase {
                0 => {
                    if self.remaining == 0 {
                        return Action::Exit;
                    }
                    self.to_fork = self.concurrent.min(self.remaining);
                    self.phase = 1;
                }
                _ => {
                    self.phase = 0;
                    return Action::WaitChildren;
                }
            }
        }
    }

    fn snap(&self) -> Option<(&'static str, Json)> {
        Some((
            STORM_KIND,
            json::obj(vec![
                ("task_cycles", Json::u64(self.task_cycles)),
                ("concurrent", Json::u64(self.concurrent as u64)),
                ("remaining", Json::u64(self.remaining as u64)),
                ("phase", Json::u64(self.phase as u64)),
                ("to_fork", Json::u64(self.to_fork as u64)),
            ]),
        ))
    }
}

/// A Phoronix workload instance.
pub struct Phoronix {
    spec: PhoronixSpec,
}

impl Phoronix {
    /// Creates the workload from a spec.
    pub fn new(spec: PhoronixSpec) -> Phoronix {
        Phoronix { spec }
    }

    /// Creates the workload by Figure 13 test name.
    ///
    /// # Panics
    ///
    /// Panics if the name is unknown.
    pub fn named(name: &str) -> Phoronix {
        Phoronix::new(by_name(name).unwrap_or_else(|| panic!("unknown Phoronix test {name}")))
    }
}

impl Workload for Phoronix {
    fn name(&self) -> String {
        self.spec.name.clone()
    }

    fn build(&self, setup: &mut dyn SimSetup, rng: &mut SimRng) -> Vec<TaskSpec> {
        match self.spec.pattern {
            Pattern::Storm {
                concurrent,
                task_ms,
                count,
            } => vec![TaskSpec::new(
                format!("{}-root", self.spec.name),
                Box::new(StormRoot {
                    task_cycles: ms_at_ghz(task_ms, 3.0),
                    concurrent,
                    remaining: count,
                    phase: 0,
                    to_fork: 0,
                }),
            )],
            Pattern::Pool {
                threads,
                chunk_ms,
                sleep_ms,
                work_ms,
            } => {
                let spec = crate::dacapo::DacapoSpec {
                    name: "phoronix-pool",
                    workers: threads,
                    single_task: false,
                    chunk_ms,
                    sleep_ms,
                    work_per_worker_ms: work_ms,
                    background_threads: 0,
                    jitter: 0.4,
                    burst_chunks: 0,
                    queue_tokens: 0,
                };
                crate::dacapo::Dacapo::new(spec).build(setup, rng)
            }
            Pattern::Barrier {
                threads,
                chunk_ms,
                jitter,
                iters,
            } => {
                let n = if threads == 0 {
                    setup.n_cores() as u32
                } else {
                    threads
                };
                let barrier = setup.create_barrier(n);
                let chunk = ms_at_ghz(chunk_ms, 3.0);
                // A launcher forks the team (fork burst), then waits.
                let mut script = vec![Action::Compute {
                    cycles: ms_at_ghz(10.0, 3.0),
                }];
                for w in 0..n {
                    script.push(Action::Fork {
                        child: TaskSpec::new(
                            format!("{}-{w}", self.spec.name),
                            Box::new(BarrierWorker {
                                iterations: iters,
                                chunk_cycles: chunk,
                                jitter,
                                barrier,
                                at_barrier: false,
                            }),
                        ),
                    });
                    script.push(Action::Compute {
                        cycles: ms_at_ghz(0.02, 3.0),
                    });
                }
                script.push(Action::WaitChildren);
                vec![TaskSpec::script(format!("{}-root", self.spec.name), script)]
            }
        }
    }
}

/// Same structure as the NAS worker; duplicated locally to keep the
/// Phoronix module self-contained with its own iteration semantics.
struct BarrierWorker {
    iterations: u32,
    chunk_cycles: u64,
    jitter: f64,
    barrier: nest_simcore::BarrierId,
    at_barrier: bool,
}

impl Behavior for BarrierWorker {
    fn next(&mut self, rng: &mut SimRng) -> Action {
        if self.at_barrier {
            self.at_barrier = false;
            return Action::Barrier { id: self.barrier };
        }
        if self.iterations == 0 {
            return Action::Exit;
        }
        self.iterations -= 1;
        self.at_barrier = true;
        Action::Compute {
            cycles: rng.jitter(self.chunk_cycles, self.jitter).max(1),
        }
    }

    fn snap(&self) -> Option<(&'static str, Json)> {
        Some((
            BARRIER_KIND,
            json::obj(vec![
                ("iterations", Json::u64(self.iterations as u64)),
                ("chunk_cycles", Json::u64(self.chunk_cycles)),
                ("jitter", snap::f64_bits(self.jitter)),
                ("barrier", Json::u64(self.barrier.0 as u64)),
                ("at_barrier", Json::Bool(self.at_barrier)),
            ]),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Setup {
        barriers: Vec<u32>,
    }
    impl SimSetup for Setup {
        fn create_barrier(&mut self, parties: u32) -> nest_simcore::BarrierId {
            self.barriers.push(parties);
            nest_simcore::BarrierId(self.barriers.len() as u32 - 1)
        }
        fn create_channel(&mut self) -> nest_simcore::ChannelId {
            unreachable!()
        }
        fn n_cores(&self) -> usize {
            64
        }
    }

    #[test]
    fn twenty_seven_named_tests() {
        assert_eq!(figure13_specs().len(), 27);
        assert!(by_name("rodinia 5").is_some());
        assert!(by_name("zstd compression 7").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn rodinia_uses_36_threads() {
        let spec = by_name("rodinia 5").unwrap();
        match spec.pattern {
            Pattern::Barrier { threads, .. } => assert_eq!(threads, 36),
            _ => panic!("rodinia should be a barrier pattern"),
        }
    }

    #[test]
    fn storm_root_forks_count_tasks_in_batches() {
        let mut root = StormRoot {
            task_cycles: 100,
            concurrent: 4,
            remaining: 10,
            phase: 0,
            to_fork: 0,
        };
        let mut rng = SimRng::new(0);
        let mut forks = 0;
        let mut waits = 0;
        loop {
            match root.next(&mut rng) {
                Action::Fork { .. } => forks += 1,
                Action::WaitChildren => waits += 1,
                Action::Exit => break,
                _ => {}
            }
        }
        assert_eq!(forks, 10);
        assert_eq!(waits, 3, "10 tasks in batches of 4 → 3 waits");
    }

    #[test]
    fn barrier_pattern_allocates_machine_wide_team() {
        let w = Phoronix::named("cpuminer-opt 6");
        let mut setup = Setup { barriers: vec![] };
        let mut rng = SimRng::new(0);
        let tasks = w.build(&mut setup, &mut rng);
        assert_eq!(tasks.len(), 1);
        assert_eq!(setup.barriers, vec![64]);
    }

    #[test]
    fn archetype_suite_is_deterministic_and_sized() {
        let mut r1 = SimRng::new(9);
        let mut r2 = SimRng::new(9);
        let a = archetype_suite(50, &mut r1);
        let b = archetype_suite(50, &mut r2);
        assert_eq!(a.len(), 50);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(format!("{:?}", x.pattern), format!("{:?}", y.pattern));
        }
    }
}
