//! Server workloads (§5.6): request-driven services with worker pools.
//!
//! An open-loop driver injects requests at a configurable rate; a pool of
//! workers receives, services (computes), and loops. Covers the paper's
//! web-server (nginx/apache under increasing concurrency), key-value
//! (leveldb/redis), and interpreter (node/php/perl) server tests at the
//! level scheduling sees: arrival cadence, service time, pool width.

use nest_serve::{OpenLoopDriver, ServiceWorker};
use nest_simcore::{SimRng, SimSetup, TaskSpec};

use crate::{ms_at_ghz, Workload};

/// Parameters of a server test.
#[derive(Clone, Debug)]
pub struct ServerSpec {
    /// Test name (e.g. `"nginx-c100"`).
    pub name: String,
    /// Worker (service) threads.
    pub workers: u32,
    /// Mean service time per request, ms at 3 GHz.
    pub service_ms: f64,
    /// Mean request inter-arrival time, µs (exponential).
    pub interarrival_us: f64,
    /// Total requests to inject.
    pub requests: u32,
}

impl ServerSpec {
    /// An nginx-like test: many light requests, moderate pool.
    pub fn nginx(concurrency: u32) -> ServerSpec {
        ServerSpec {
            name: format!("nginx-c{concurrency}"),
            workers: 16,
            service_ms: 0.35,
            interarrival_us: 6_000.0 / concurrency as f64,
            requests: 8_000,
        }
    }

    /// An apache-like test: heavier per-request work, wider pool — the
    /// case where Nest lags CFS as concurrency grows (§5.6).
    pub fn apache(concurrency: u32) -> ServerSpec {
        ServerSpec {
            name: format!("apache-c{concurrency}"),
            workers: 32,
            service_ms: 1.1,
            interarrival_us: 8_000.0 / concurrency as f64,
            requests: 6_000,
        }
    }

    /// A leveldb-like key-value store: small pool, bursty arrivals.
    pub fn leveldb() -> ServerSpec {
        ServerSpec {
            name: "leveldb".into(),
            workers: 6,
            service_ms: 0.8,
            interarrival_us: 170.0,
            requests: 12_000,
        }
    }

    /// A redis-like store: nearly serial event loop.
    pub fn redis() -> ServerSpec {
        ServerSpec {
            name: "redis".into(),
            workers: 2,
            service_ms: 0.25,
            interarrival_us: 150.0,
            requests: 12_000,
        }
    }
}

/// The server workload. The driver/worker state machines live in
/// [`nest_serve::pool`], shared with `schbench` (they carried their own
/// copies before the serve crate existed).
pub struct Server {
    spec: ServerSpec,
}

impl Server {
    /// Creates the workload from a spec.
    pub fn new(spec: ServerSpec) -> Server {
        Server { spec }
    }
}

impl Workload for Server {
    fn name(&self) -> String {
        self.spec.name.clone()
    }

    fn build(&self, setup: &mut dyn SimSetup, _rng: &mut SimRng) -> Vec<TaskSpec> {
        let ch = setup.create_channel();
        let mut tasks = vec![TaskSpec::new(
            format!("{}-driver", self.spec.name),
            Box::new(OpenLoopDriver {
                ch,
                remaining: self.spec.requests,
                interarrival_us: self.spec.interarrival_us,
                send_next: false,
            }),
        )];
        // Distribute the request quota; the first worker absorbs the
        // remainder so counts balance exactly (no leftover messages).
        let w = self.spec.workers.max(1);
        let base = self.spec.requests / w;
        let rem = self.spec.requests % w;
        for i in 0..w {
            let quota = base + if i == 0 { rem } else { 0 };
            tasks.push(TaskSpec::new(
                format!("{}-worker{i}", self.spec.name),
                Box::new(ServiceWorker {
                    request_ch: ch,
                    reply_ch: None,
                    quota,
                    service_cycles: ms_at_ghz(self.spec.service_ms, 3.0),
                    jitter: 0.6,
                    phase: 0,
                }),
            ));
        }
        tasks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nest_simcore::{Action, Behavior, ChannelId};

    struct Setup {
        channels: u32,
    }
    impl SimSetup for Setup {
        fn create_barrier(&mut self, _parties: u32) -> nest_simcore::BarrierId {
            unreachable!()
        }
        fn create_channel(&mut self) -> ChannelId {
            self.channels += 1;
            ChannelId(self.channels - 1)
        }
        fn n_cores(&self) -> usize {
            64
        }
    }

    #[test]
    fn quotas_sum_to_requests() {
        let spec = ServerSpec {
            name: "t".into(),
            workers: 7,
            service_ms: 0.1,
            interarrival_us: 100.0,
            requests: 100,
        };
        let s = Server::new(spec);
        let mut setup = Setup { channels: 0 };
        let mut rng = SimRng::new(0);
        let tasks = s.build(&mut setup, &mut rng);
        assert_eq!(tasks.len(), 8);
        // Drive all workers, count their total receives.
        let mut total = 0;
        for t in tasks.into_iter().skip(1) {
            let mut b = t.behavior;
            loop {
                match b.next(&mut rng) {
                    Action::Recv { .. } => total += 1,
                    Action::Exit => break,
                    _ => {}
                }
            }
        }
        assert_eq!(total, 100);
    }

    #[test]
    fn driver_sends_exactly_requests() {
        let mut d = OpenLoopDriver {
            ch: ChannelId(0),
            remaining: 5,
            interarrival_us: 10.0,
            send_next: false,
        };
        let mut rng = SimRng::new(0);
        let mut sends = 0;
        loop {
            match d.next(&mut rng) {
                Action::Send { msgs, .. } => sends += msgs,
                Action::Exit => break,
                _ => {}
            }
        }
        assert_eq!(sends, 5);
    }

    #[test]
    fn apache_scales_arrivals_with_concurrency() {
        assert!(ServerSpec::apache(200).interarrival_us < ServerSpec::apache(50).interarrival_us);
        assert_eq!(ServerSpec::nginx(100).name, "nginx-c100");
    }
}
