//! The hardware frequency model.
//!
//! [`FreqModel`] tracks, per *physical* core, the current frequency chosen
//! by the hardware from the interplay the paper describes in §2.3:
//!
//! * the **governor** supplies a requested ceiling (utilization-driven for
//!   `schedutil`, the maximum for `performance`);
//! * the **turbo ladder** caps frequency by the number of active physical
//!   cores on the turbo-counting domain — the socket on the paper's Intel
//!   machines (Table 3), one CCX on AMD-like synthetic machines — with
//!   *spinning* idle loops counting as active, which is precisely how Nest
//!   keeps cores warm. The domain is resolved through
//!   [`Topology::turbo_domain_of_phys`] so this model never hard-codes a
//!   flat-socket assumption;
//! * frequency **ramps** toward its target at a microarchitecture-specific
//!   rate and **decays** toward the governor floor after an idle cooldown.
//!
//! The model also integrates CPU energy: socket power is uncore power plus
//! per-core idle/dynamic power, with the socket voltage set by the fastest
//! active core on the socket (§5.2).

use nest_simcore::json::{self, Json};
use nest_simcore::{snap, CoreId, Freq, Time};
use nest_topology::{MachineSpec, Topology};

use crate::governor::Governor;

/// What a hardware thread is doing, as far as the hardware is concerned.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Activity {
    /// Nothing running; candidate for frequency decay.
    Idle,
    /// A task is executing.
    Busy,
    /// The idle loop is spinning to keep the core warm (Nest §3.2).
    Spinning,
}

#[derive(Clone, Debug)]
struct PhysCore {
    cur: Freq,
    /// Frequency observed at the last scheduler tick (what Smove sees).
    observed: Freq,
    /// When the physical core last became fully inactive.
    idle_since: Option<Time>,
    /// When the physical core was last active (for the turbo window).
    last_active: Option<Time>,
    /// Cached "any hardware thread non-idle" flag, maintained by
    /// [`FreqModel::set_activity`] so the per-millisecond ramp loop reads
    /// one field instead of re-deriving it from both threads.
    active: bool,
}

/// Per-physical-core DVFS and whole-machine energy model.
pub struct FreqModel {
    spec: MachineSpec,
    /// Computed topology: the one accessor through which the
    /// turbo-counting domain of a physical core is resolved.
    topo: Topology,
    governor: Governor,
    /// Activity of each hardware thread.
    thread_activity: Vec<Activity>,
    /// State of each physical core (index: socket * phys_per_socket + p).
    phys: Vec<PhysCore>,
    /// Precomputed hardware-thread pair of each physical core. On SMT-1
    /// machines both entries are the same thread.
    thread_pair: Vec<(usize, usize)>,
    /// Number of active physical cores per turbo-counting domain
    /// (per socket on Intel-like machines, per CCX on AMD-like ones).
    domain_active: Vec<usize>,
    /// Per-socket thermal-throttle factor in `(0, 1]` (1.0 = no
    /// throttle), applied multiplicatively to the turbo-table cap.
    /// Fault injection drives this via
    /// [`FreqModel::set_socket_throttle`].
    throttle: Vec<f64>,
    energy_joules: f64,
    last_integration: Time,
    /// Instantaneous power, cached between changes to its inputs
    /// (`thread_activity`, per-phys frequencies). `None` after any such
    /// change; on cache hit the integrator adds the exact same value
    /// [`FreqModel::power_w`] would recompute, so energy stays
    /// bit-identical.
    power_cache: Option<f64>,
}

impl FreqModel {
    /// Creates the model with all cores idle at the *nominal* frequency —
    /// a warm machine, matching the paper's protocol of discarding warmup
    /// runs before measuring (§5.1). Idle cores decay from there.
    pub fn new(spec: &MachineSpec, governor: Governor) -> FreqModel {
        let start = spec.freq.fnominal;
        let n_phys = spec.sockets * spec.phys_per_socket;
        let pps = spec.phys_per_socket;
        let cps = spec.cores_per_socket();
        let thread_pair = (0..n_phys)
            .map(|phys| {
                let (socket, p) = (phys / pps, phys % pps);
                let t0 = socket * cps + p;
                // SMT-1: a physical core is one thread paired with itself.
                let t1 = if spec.smt == 2 { t0 + pps } else { t0 };
                (t0, t1)
            })
            .collect();
        let topo = Topology::new(spec.clone());
        let n_domains = topo.n_turbo_domains();
        FreqModel {
            spec: spec.clone(),
            topo,
            governor,
            thread_activity: vec![Activity::Idle; spec.n_cores()],
            phys: vec![
                PhysCore {
                    cur: start,
                    observed: start,
                    idle_since: Some(Time::ZERO),
                    last_active: None,
                    active: false,
                };
                n_phys
            ],
            thread_pair,
            domain_active: vec![0; n_domains],
            throttle: vec![1.0; spec.sockets],
            energy_joules: 0.0,
            last_integration: Time::ZERO,
            power_cache: None,
        }
    }

    /// Returns the configured governor.
    pub fn governor(&self) -> Governor {
        self.governor
    }

    fn phys_index(&self, core: CoreId) -> usize {
        let cps = self.spec.cores_per_socket();
        let pps = self.spec.phys_per_socket;
        let socket = core.index() / cps;
        let local = core.index() % cps;
        socket * pps + local % pps
    }

    fn threads_of_phys(&self, phys: usize) -> (usize, usize) {
        self.thread_pair[phys]
    }

    fn phys_is_active(&self, phys: usize) -> bool {
        self.phys[phys].active
    }

    /// Number of turbo-counting domains (sockets, or CCXs on machines
    /// whose ladder is scoped per CCX).
    pub fn n_turbo_domains(&self) -> usize {
        self.domain_active.len()
    }

    /// Returns the number of active physical cores in turbo-counting
    /// domain `domain` right now. On the paper's machines a domain is a
    /// socket, so `domain` coincides with the socket index there.
    pub fn active_phys_in_domain(&self, domain: usize) -> usize {
        self.domain_active[domain]
    }

    /// Returns the number of physical cores in turbo domain `domain` the
    /// hardware considers active for turbo purposes: active now, or
    /// active within the turbo window. This sluggishness is why
    /// dispersing short tasks over many cores keeps every core in the
    /// lower turbo range (§5.2).
    pub fn windowed_active_in_domain(&self, domain: usize, now: Time) -> usize {
        let dp = self.topo.turbo_domain_phys();
        let window = self.spec.freq.turbo_window_ns;
        (domain * dp..(domain + 1) * dp)
            .filter(|&phys| {
                self.phys_is_active(phys)
                    || self.phys[phys]
                        .last_active
                        .is_some_and(|t| now.saturating_since(t) < window)
            })
            .count()
    }

    /// The effective frequency cap on turbo domain `domain`: the
    /// turbo-table limit for the windowed active count, scaled by the
    /// owning socket's throttle factor (never below the hardware
    /// minimum).
    fn capped_turbo(&self, domain: usize, now: Time) -> Freq {
        let cap = self
            .spec
            .freq
            .turbo_limit(self.windowed_active_in_domain(domain, now));
        let f = self.throttle[self.topo.socket_of_turbo_domain(domain).index()];
        if f >= 1.0 {
            return cap;
        }
        let khz = (cap.as_khz() as f64 * f) as u64;
        Freq::from_khz(khz.max(self.spec.freq.fmin.as_khz()))
    }

    /// Sets the thermal-throttle factor for `socket` (1.0 lifts it).
    ///
    /// Cap reductions apply to active cores immediately, mirroring how
    /// [`FreqModel::set_activity`] handles turbo-table drops; lifting the
    /// throttle leaves the recovery to the ramp. Returns the
    /// representative cores whose frequency changed so the engine can
    /// re-time in-flight compute segments.
    pub fn set_socket_throttle(&mut self, now: Time, socket: usize, factor: f64) -> Vec<CoreId> {
        self.integrate_to(now);
        if self.throttle[socket] == factor {
            return Vec::new();
        }
        self.throttle[socket] = factor;
        // Apply the new cap to every turbo domain the socket contains
        // (exactly one on socket-scoped machines).
        let dp = self.topo.turbo_domain_phys();
        let pps = self.spec.phys_per_socket;
        let mut changed = Vec::new();
        for d in socket * pps / dp..(socket + 1) * pps / dp {
            let cap = self.capped_turbo(d, now);
            for ph in d * dp..(d + 1) * dp {
                if self.phys_is_active(ph) && self.phys[ph].cur > cap {
                    self.phys[ph].cur = cap;
                    self.power_cache = None;
                    changed.push(self.rep_core(ph));
                }
            }
        }
        changed
    }

    /// Returns the current throttle factor of `socket` (1.0 = none).
    pub fn socket_throttle(&self, socket: usize) -> f64 {
        self.throttle[socket]
    }

    /// Returns the current frequency of the physical core behind `core`.
    pub fn freq_of(&self, core: CoreId) -> Freq {
        self.phys[self.phys_index(core)].cur
    }

    /// Returns the frequency observed at the last scheduler tick — the
    /// stale view Smove bases its decision on (§2.2).
    pub fn observed_freq(&self, core: CoreId) -> Freq {
        self.phys[self.phys_index(core)].observed
    }

    /// Records the current frequencies as "observed at tick" — but only
    /// on *active* cores. Idle cores are tickless (NOHZ), so their
    /// observation goes stale at the last value seen while running; this
    /// is precisely why Smove rarely triggers on the 6130/5218 (§5.2:
    /// "when a core becomes idle there is often no clock tick that
    /// observes a low frequency").
    pub fn sample_observed(&mut self) {
        for phys in 0..self.phys.len() {
            if self.phys_is_active(phys) {
                self.phys[phys].observed = self.phys[phys].cur;
            }
        }
    }

    /// Returns total CPU energy consumed up to `now`, in joules.
    pub fn energy_joules(&mut self, now: Time) -> f64 {
        self.integrate_to(now);
        self.energy_joules
    }

    /// Computes instantaneous machine power in watts.
    fn power_w(&self) -> f64 {
        instant_power_w(
            &self.spec,
            |t| self.thread_activity[t],
            |phys| self.phys[phys].cur,
        )
    }

    fn integrate_to(&mut self, now: Time) {
        if now <= self.last_integration {
            return;
        }
        let dt_s = (now - self.last_integration) as f64 / 1e9;
        let power = match self.power_cache {
            Some(p) => p,
            None => {
                let _span =
                    nest_simcore::profile::span(nest_simcore::profile::Subsystem::FreqPower);
                let p = self.power_w();
                self.power_cache = Some(p);
                p
            }
        };
        self.energy_joules += power * dt_s;
        self.last_integration = now;
    }

    /// Updates a hardware thread's activity.
    ///
    /// Returns the physical cores whose frequency changed as a result
    /// (activation bumps to the wakeup floor; cap reductions apply
    /// immediately), so the engine can re-time in-flight compute segments.
    pub fn set_activity(&mut self, now: Time, core: CoreId, act: Activity) -> Vec<CoreId> {
        self.integrate_to(now);
        let idx = core.index();
        if self.thread_activity[idx] == act {
            return Vec::new();
        }
        let phys = self.phys_index(core);
        let domain = self.topo.turbo_domain_of_phys(phys);
        let was_active = self.phys[phys].active;
        self.thread_activity[idx] = act;
        self.power_cache = None;
        let (t0, t1) = self.thread_pair[phys];
        let is_active = self.thread_activity[t0] != Activity::Idle
            || self.thread_activity[t1] != Activity::Idle;
        self.phys[phys].active = is_active;

        let mut changed = Vec::new();
        if was_active != is_active {
            if is_active {
                self.domain_active[domain] += 1;
                self.phys[phys].idle_since = None;
                // Waking under `performance` jumps straight to nominal.
                let floor = self.governor.wakeup_floor(&self.spec.freq);
                if self.phys[phys].cur < floor {
                    self.phys[phys].cur = floor;
                    changed.push(self.rep_core(phys));
                }
            } else {
                self.domain_active[domain] -= 1;
                self.phys[phys].idle_since = Some(now);
                self.phys[phys].last_active = Some(now);
            }
            // The turbo cap of every active core in this turbo domain may
            // have moved; apply cap *reductions* immediately (the
            // hardware drops out of turbo without delay), leave raises to
            // the ramp.
            let cap = self.capped_turbo(domain, now);
            let dp = self.topo.turbo_domain_phys();
            for ph in domain * dp..(domain + 1) * dp {
                if self.phys_is_active(ph) && self.phys[ph].cur > cap {
                    self.phys[ph].cur = cap;
                    changed.push(self.rep_core(ph));
                }
            }
        }
        changed
    }

    /// Returns the first hardware thread of a physical core, used as the
    /// representative in change notifications.
    fn rep_core(&self, phys: usize) -> CoreId {
        CoreId::from_index(self.threads_of_phys(phys).0)
    }

    /// Advances the ramp/decay dynamics by `dt_ns` at time `now`
    /// (`now` is the *end* of the interval).
    ///
    /// `util_of` supplies the PELT utilization (`[0, 1]`) of a physical
    /// core, given its representative hardware thread — used by the
    /// `schedutil` request. Returns physical cores (as representative
    /// thread ids) whose frequency changed.
    pub fn advance(
        &mut self,
        now: Time,
        dt_ns: u64,
        util_of: &mut dyn FnMut(CoreId) -> f64,
    ) -> Vec<CoreId> {
        self.integrate_to(now);
        let mut changed = Vec::new();
        let fspec = self.spec.freq.clone();
        let dt_ms = dt_ns as f64 / 1e6;
        let up = (fspec.ramp_up_khz_per_ms as f64 * dt_ms) as u64;
        let down = (fspec.ramp_down_khz_per_ms as f64 * dt_ms) as u64;
        let caps: Vec<Freq> = (0..self.n_turbo_domains())
            .map(|d| self.capped_turbo(d, now))
            .collect();
        for phys in 0..self.phys.len() {
            let cap = caps[self.topo.turbo_domain_of_phys(phys)];
            let rep = self.rep_core(phys);
            let (t0, t1) = self.threads_of_phys(phys);
            let spinning_only = self.thread_activity[t0] != Activity::Busy
                && self.thread_activity[t1] != Activity::Busy
                && (self.thread_activity[t0] == Activity::Spinning
                    || self.thread_activity[t1] == Activity::Spinning);
            let busy = self.thread_activity[t0] == Activity::Busy
                || self.thread_activity[t1] == Activity::Busy;

            let cur = self.phys[phys].cur;
            let next = if busy {
                let req = self.governor.requested_freq(&fspec, util_of(rep));
                let target = req.min(cap);
                step_toward(cur, target, up, down)
            } else if spinning_only {
                // Spinning holds the frequency: the hardware sees
                // activity, so no decay — but the turbo cap still binds.
                cur.min(cap)
            } else {
                // Idle: decay toward the governor floor after cooldown.
                let floor = self.governor.idle_floor(&fspec);
                match self.phys[phys].idle_since {
                    Some(since) if now.saturating_since(since) >= fspec.idle_cooldown_ns => {
                        step_toward(cur, floor, up, down)
                    }
                    _ => cur,
                }
            };
            if next != cur {
                self.phys[phys].cur = next;
                self.power_cache = None;
                changed.push(rep);
            }
        }
        changed
    }

    /// Serializes the model's mutable state for a snapshot.
    ///
    /// The machine spec, governor, and thread-pair table come from
    /// construction and are not stored; [`FreqModel::load`] expects a
    /// model freshly built from the same spec. The energy integrator is
    /// saved as of `last_integration` — not folded forward — so restore
    /// reproduces future integration steps bit for bit. The power cache
    /// is deliberately dropped: a cache miss recomputes the identical
    /// value, so energy stays bit-identical either way.
    pub fn save(&self) -> Json {
        let activity = |a: &Activity| {
            Json::u64(match a {
                Activity::Idle => 0,
                Activity::Busy => 1,
                Activity::Spinning => 2,
            })
        };
        let phys = |p: &PhysCore| {
            json::obj(vec![
                ("cur", Json::u64(p.cur.as_khz())),
                ("observed", Json::u64(p.observed.as_khz())),
                ("idle_since", snap::opt_time_json(p.idle_since)),
                ("last_active", snap::opt_time_json(p.last_active)),
                ("active", Json::Bool(p.active)),
            ])
        };
        json::obj(vec![
            (
                "activity",
                Json::Arr(self.thread_activity.iter().map(activity).collect()),
            ),
            ("phys", Json::Arr(self.phys.iter().map(phys).collect())),
            (
                "domain_active",
                Json::Arr(self.domain_active.iter().map(|&n| Json::usize(n)).collect()),
            ),
            (
                "throttle",
                Json::Arr(self.throttle.iter().map(|&f| snap::f64_bits(f)).collect()),
            ),
            ("energy", snap::f64_bits(self.energy_joules)),
            ("last_integration", snap::time_json(self.last_integration)),
        ])
    }

    /// Restores state captured by [`FreqModel::save`] into a model built
    /// from the same machine spec and governor.
    pub fn load(&mut self, state: &Json) -> Result<(), String> {
        let expect_len = |name: &str, got: usize, want: usize| {
            if got == want {
                Ok(())
            } else {
                Err(format!(
                    "freq snapshot \"{name}\" has {got} entries, the machine needs {want}"
                ))
            }
        };
        let acts = snap::get_arr(state, "activity")?;
        expect_len("activity", acts.len(), self.thread_activity.len())?;
        for (slot, j) in self.thread_activity.iter_mut().zip(acts) {
            *slot = match snap::elem_u64(j)? {
                0 => Activity::Idle,
                1 => Activity::Busy,
                2 => Activity::Spinning,
                other => return Err(format!("unknown activity code {other}")),
            };
        }
        let phys = snap::get_arr(state, "phys")?;
        expect_len("phys", phys.len(), self.phys.len())?;
        for (slot, j) in self.phys.iter_mut().zip(phys) {
            slot.cur = Freq::from_khz(snap::get_u64(j, "cur")?);
            slot.observed = Freq::from_khz(snap::get_u64(j, "observed")?);
            slot.idle_since = snap::get_opt_time(j, "idle_since")?;
            slot.last_active = snap::get_opt_time(j, "last_active")?;
            slot.active = snap::get_bool(j, "active")?;
        }
        let domain_active = snap::get_arr(state, "domain_active")?;
        expect_len(
            "domain_active",
            domain_active.len(),
            self.domain_active.len(),
        )?;
        for (slot, j) in self.domain_active.iter_mut().zip(domain_active) {
            *slot = snap::elem_u64(j)? as usize;
        }
        let throttle = snap::get_arr(state, "throttle")?;
        expect_len("throttle", throttle.len(), self.throttle.len())?;
        for (slot, j) in self.throttle.iter_mut().zip(throttle) {
            *slot = f64::from_bits(snap::elem_u64(j)?);
        }
        self.energy_joules = snap::get_f64_bits(state, "energy")?;
        self.last_integration = snap::get_time(state, "last_integration")?;
        self.power_cache = None;
        Ok(())
    }
}

/// Computes instantaneous machine power in watts from externally
/// tracked state: per-hardware-thread activity and per-physical-core
/// frequency.
///
/// This is the whole of [`FreqModel`]'s power model as a pure function,
/// and the model delegates to it, so any observer that mirrors activity
/// and frequency from the trace stream (the time-series sampler in
/// `nest-obs`) computes exactly the power the energy integrator charges.
/// The float operations run in the same order as the historical method
/// body, keeping integrated energy bit-identical across the refactor.
///
/// `activity_of` is indexed by hardware thread, `freq_of_phys` by
/// physical core (`socket * phys_per_socket + p`). A physical core is
/// *active* when either of its hardware threads is non-idle — the same
/// derivation [`FreqModel::set_activity`] caches.
pub fn instant_power_w(
    spec: &MachineSpec,
    activity_of: impl Fn(usize) -> Activity,
    freq_of_phys: impl Fn(usize) -> Freq,
) -> f64 {
    let fspec = &spec.freq;
    let pspec = &spec.power;
    let pps = spec.phys_per_socket;
    let cps = spec.cores_per_socket();
    let threads_of = |phys: usize| {
        let (socket, p) = (phys / pps, phys % pps);
        let t0 = socket * cps + p;
        let t1 = if spec.smt == 2 { t0 + pps } else { t0 };
        (t0, t1)
    };
    let is_active = |phys: usize| {
        let (t0, t1) = threads_of(phys);
        activity_of(t0) != Activity::Idle || activity_of(t1) != Activity::Idle
    };
    let mut total = 0.0;
    for socket in 0..spec.sockets {
        total += pspec.uncore_w;
        // Socket voltage tracks the fastest active physical core.
        let mut vmax_freq = fspec.fmin;
        for p in 0..pps {
            let phys = socket * pps + p;
            if is_active(phys) && freq_of_phys(phys) > vmax_freq {
                vmax_freq = freq_of_phys(phys);
            }
        }
        let v = pspec.voltage(vmax_freq, fspec.fmin, fspec.fmax());
        for p in 0..pps {
            let phys = socket * pps + p;
            let (t0, t1) = threads_of(phys);
            let busy = activity_of(t0) == Activity::Busy || activity_of(t1) == Activity::Busy;
            if busy {
                total += pspec.dyn_coeff_w_per_ghz * freq_of_phys(phys).as_ghz() * v * v;
            } else if is_active(phys) {
                // Spinning only: awake, but at a low activity factor.
                total += pspec.spin_power_factor
                    * pspec.dyn_coeff_w_per_ghz
                    * freq_of_phys(phys).as_ghz()
                    * v
                    * v;
            } else {
                total += pspec.core_idle_w;
            }
        }
    }
    total
}

/// Nanoseconds the work executed during `dt_ns` at frequency `actual`
/// *would have taken* at `reference` — the ramp-penalty primitive.
///
/// Cycles are counted with the engine's own rounding (cycles retired in
/// an interval round down, time for a cycle count rounds up), so for
/// `reference >= actual` the result never exceeds `dt_ns` and the
/// difference `dt_ns - ns_at_reference(..)` is the exact non-negative
/// time lost to running below `reference`.
pub fn ns_at_reference(actual: Freq, reference: Freq, dt_ns: u64) -> u64 {
    reference.nanos_for_cycles(actual.cycles_in_nanos(dt_ns))
}

/// Moves `cur` toward `target`, rising at most `up` kHz and falling at
/// most `down` kHz.
fn step_toward(cur: Freq, target: Freq, up: u64, down: u64) -> Freq {
    if cur < target {
        Freq::from_khz((cur.as_khz() + up).min(target.as_khz()))
    } else if cur > target {
        Freq::from_khz(cur.as_khz().saturating_sub(down).max(target.as_khz()))
    } else {
        cur
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nest_simcore::MILLISEC;
    use nest_topology::presets;

    fn model(gov: Governor) -> FreqModel {
        FreqModel::new(&presets::xeon_6130(2), gov)
    }

    fn run_ms(m: &mut FreqModel, from_ms: u64, n_ms: u64, util: f64) -> Time {
        let mut t = Time::from_millis(from_ms);
        for _ in 0..n_ms {
            t += MILLISEC;
            m.advance(t, MILLISEC, &mut |_| util);
        }
        t
    }

    #[test]
    fn starts_warm_at_nominal() {
        // A warm machine (post-warmup, §5.1): everything begins at the
        // nominal frequency regardless of governor.
        let m = model(Governor::Schedutil);
        assert_eq!(m.freq_of(CoreId(0)), Freq::from_ghz(2.1));
        let m = model(Governor::Performance);
        assert_eq!(m.freq_of(CoreId(0)), Freq::from_ghz(2.1));
    }

    #[test]
    fn single_busy_core_reaches_top_turbo() {
        let mut m = model(Governor::Schedutil);
        m.set_activity(Time::ZERO, CoreId(0), Activity::Busy);
        run_ms(&mut m, 0, 50, 1.0);
        assert_eq!(m.freq_of(CoreId(0)), Freq::from_ghz(3.7));
    }

    #[test]
    fn low_util_keeps_schedutil_at_nominal() {
        let mut m = model(Governor::Schedutil);
        m.set_activity(Time::ZERO, CoreId(0), Activity::Busy);
        run_ms(&mut m, 0, 50, 0.1);
        // 1.25 × 0.1 × 3.7 GHz ≈ 0.46 GHz, floored at nominal (HWP).
        assert_eq!(m.freq_of(CoreId(0)), Freq::from_ghz(2.1));
    }

    #[test]
    fn performance_wakes_at_nominal() {
        let mut m = model(Governor::Performance);
        let changed = m.set_activity(Time::ZERO, CoreId(5), Activity::Busy);
        assert_eq!(m.freq_of(CoreId(5)), Freq::from_ghz(2.1));
        assert!(changed.is_empty() || m.freq_of(CoreId(5)) >= Freq::from_ghz(2.1));
    }

    #[test]
    fn many_active_cores_reduce_turbo_cap() {
        let mut m = model(Governor::Schedutil);
        // Activate 16 physical cores on socket 0 (threads 0..16).
        for c in 0..16 {
            m.set_activity(Time::ZERO, CoreId(c), Activity::Busy);
        }
        run_ms(&mut m, 0, 60, 1.0);
        // 16 active cores: cap is 2.8 GHz on the 6130.
        assert_eq!(m.freq_of(CoreId(0)), Freq::from_ghz(2.8));
    }

    #[test]
    fn cap_reduction_is_immediate() {
        let mut m = model(Governor::Schedutil);
        m.set_activity(Time::ZERO, CoreId(0), Activity::Busy);
        let t = run_ms(&mut m, 0, 50, 1.0);
        assert_eq!(m.freq_of(CoreId(0)), Freq::from_ghz(3.7));
        // Activating 12 more phys cores caps at 2.8 immediately.
        let mut changed = Vec::new();
        for c in 1..16 {
            changed.extend(m.set_activity(t, CoreId(c), Activity::Busy));
        }
        assert_eq!(m.freq_of(CoreId(0)), Freq::from_ghz(2.8));
        assert!(changed.contains(&CoreId(0)));
    }

    #[test]
    fn hyperthreads_share_physical_frequency() {
        let mut m = model(Governor::Schedutil);
        m.set_activity(Time::ZERO, CoreId(0), Activity::Busy);
        run_ms(&mut m, 0, 50, 1.0);
        // CoreId(16) is the hyperthread of CoreId(0) on the 6130.
        assert_eq!(m.freq_of(CoreId(16)), m.freq_of(CoreId(0)));
        // And both count as one active physical core.
        assert_eq!(m.active_phys_in_domain(0), 1);
        m.set_activity(Time::from_millis(50), CoreId(16), Activity::Busy);
        assert_eq!(m.active_phys_in_domain(0), 1);
    }

    #[test]
    fn idle_core_decays_after_cooldown() {
        let mut m = model(Governor::Schedutil);
        m.set_activity(Time::ZERO, CoreId(0), Activity::Busy);
        let t = run_ms(&mut m, 0, 50, 1.0);
        m.set_activity(t, CoreId(0), Activity::Idle);
        // Within the cooldown (9 ms on the 6130) the frequency holds.
        run_ms(&mut m, 50, 5, 0.0);
        assert_eq!(m.freq_of(CoreId(0)), Freq::from_ghz(3.7));
        // Long after the cooldown (50 MHz/ms decay from 3.7 GHz) it has
        // decayed all the way to fmin.
        run_ms(&mut m, 55, 100, 0.0);
        assert_eq!(m.freq_of(CoreId(0)), Freq::from_ghz(1.0));
    }

    #[test]
    fn windowed_count_outlives_activity() {
        let mut m = model(Governor::Schedutil);
        m.set_activity(Time::ZERO, CoreId(0), Activity::Busy);
        let t = Time::from_millis(10);
        m.set_activity(t, CoreId(0), Activity::Idle);
        // Still counted for the 60 ms turbo window...
        assert_eq!(m.windowed_active_in_domain(0, t + 30 * MILLISEC), 1);
        // ...but not after it expires.
        assert_eq!(m.windowed_active_in_domain(0, t + 61 * MILLISEC), 0);
        assert_eq!(m.active_phys_in_domain(0), 0);
    }

    #[test]
    fn dispersal_keeps_turbo_cap_low() {
        // One task bouncing over 8 physical cores in quick succession
        // keeps the windowed count at 8, capping everyone at 3.4 GHz —
        // while perfect reuse of one core would allow 3.7 GHz.
        let mut m = model(Governor::Schedutil);
        let mut t = Time::ZERO;
        for round in 0..16 {
            let core = CoreId(round % 8);
            m.set_activity(t, core, Activity::Busy);
            t = run_ms(&mut m, (round * 5) as u64, 5, 1.0);
            m.set_activity(t, core, Activity::Idle);
        }
        // At the end of the run the windowed count spans all 8 cores.
        assert_eq!(m.windowed_active_in_domain(0, t), 8);
        // A newly busy core cannot exceed the 5-8 active cap (3.4 GHz).
        m.set_activity(t, CoreId(0), Activity::Busy);
        run_ms(&mut m, 80, 10, 1.0);
        assert!(m.freq_of(CoreId(0)) <= Freq::from_ghz(3.4));
    }

    #[test]
    fn spinning_holds_frequency() {
        let mut m = model(Governor::Schedutil);
        m.set_activity(Time::ZERO, CoreId(0), Activity::Busy);
        let t = run_ms(&mut m, 0, 50, 1.0);
        m.set_activity(t, CoreId(0), Activity::Spinning);
        run_ms(&mut m, 50, 40, 0.0);
        // Spin prevents decay entirely.
        assert_eq!(m.freq_of(CoreId(0)), Freq::from_ghz(3.7));
    }

    #[test]
    fn spinning_counts_toward_turbo_cap() {
        let mut m = model(Governor::Schedutil);
        for c in 0..12 {
            m.set_activity(Time::ZERO, CoreId(c), Activity::Spinning);
        }
        assert_eq!(m.active_phys_in_domain(0), 12);
        m.set_activity(Time::ZERO, CoreId(12), Activity::Busy);
        run_ms(&mut m, 0, 60, 1.0);
        // 13 active physical cores: cap 2.8 GHz.
        assert_eq!(m.freq_of(CoreId(12)), Freq::from_ghz(2.8));
    }

    #[test]
    fn observed_freq_lags_until_sampled() {
        let mut m = model(Governor::Schedutil);
        let initial = m.observed_freq(CoreId(0));
        m.set_activity(Time::ZERO, CoreId(0), Activity::Busy);
        run_ms(&mut m, 0, 50, 1.0);
        assert_eq!(m.observed_freq(CoreId(0)), initial);
        m.sample_observed();
        assert_eq!(m.observed_freq(CoreId(0)), Freq::from_ghz(3.7));
    }

    #[test]
    fn energy_accumulates_and_busy_costs_more() {
        let mut idle = model(Governor::Schedutil);
        let e_idle = idle.energy_joules(Time::from_secs(1));
        assert!(e_idle > 0.0);

        let mut busy = model(Governor::Schedutil);
        for c in 0..16 {
            busy.set_activity(Time::ZERO, CoreId(c), Activity::Busy);
        }
        run_ms(&mut busy, 0, 1000, 1.0);
        let e_busy = busy.energy_joules(Time::from_secs(1));
        assert!(e_busy > e_idle, "busy {e_busy} <= idle {e_idle}");
    }

    #[test]
    fn energy_is_monotone_in_time() {
        let mut m = model(Governor::Performance);
        let e1 = m.energy_joules(Time::from_millis(10));
        let e2 = m.energy_joules(Time::from_millis(20));
        assert!(e2 > e1);
        // Asking for a past time does not rewind the integrator.
        let e3 = m.energy_joules(Time::from_millis(5));
        assert_eq!(e3, e2);
    }

    #[test]
    fn throttle_caps_immediately_and_lifts_via_ramp() {
        let mut m = model(Governor::Schedutil);
        m.set_activity(Time::ZERO, CoreId(0), Activity::Busy);
        let t = run_ms(&mut m, 0, 50, 1.0);
        assert_eq!(m.freq_of(CoreId(0)), Freq::from_ghz(3.7));
        // 0.8 × 3.7 GHz = 2.96 GHz, applied at once.
        let changed = m.set_socket_throttle(t, 0, 0.8);
        assert_eq!(changed, vec![CoreId(0)]);
        assert_eq!(m.freq_of(CoreId(0)), Freq::from_khz(2_960_000));
        assert_eq!(m.socket_throttle(0), 0.8);
        // The capped frequency holds while throttled...
        run_ms(&mut m, 50, 20, 1.0);
        assert_eq!(m.freq_of(CoreId(0)), Freq::from_khz(2_960_000));
        // ...and lifting it recovers through the ramp, not instantly.
        let lifted = m.set_socket_throttle(Time::from_millis(70), 0, 1.0);
        assert!(lifted.is_empty(), "raises are left to the ramp");
        assert_eq!(m.freq_of(CoreId(0)), Freq::from_khz(2_960_000));
        run_ms(&mut m, 70, 50, 1.0);
        assert_eq!(m.freq_of(CoreId(0)), Freq::from_ghz(3.7));
    }

    #[test]
    fn throttle_is_per_socket_and_floors_at_fmin() {
        let mut m = model(Governor::Schedutil);
        m.set_activity(Time::ZERO, CoreId(0), Activity::Busy);
        m.set_activity(Time::ZERO, CoreId(32), Activity::Busy); // socket 1
        let t = run_ms(&mut m, 0, 50, 1.0);
        assert_eq!(m.freq_of(CoreId(32)), Freq::from_ghz(3.7));
        // A near-total throttle of socket 0 floors at fmin (1.0 GHz) and
        // leaves socket 1 untouched.
        m.set_socket_throttle(t, 0, 0.01);
        assert_eq!(m.freq_of(CoreId(0)), Freq::from_ghz(1.0));
        assert_eq!(m.freq_of(CoreId(32)), Freq::from_ghz(3.7));
        // Busy cores under throttle stay pinned at the scaled cap.
        run_ms(&mut m, 50, 10, 1.0);
        assert_eq!(m.freq_of(CoreId(0)), Freq::from_ghz(1.0));
        assert_eq!(m.freq_of(CoreId(32)), Freq::from_ghz(3.7));
    }

    #[test]
    fn unthrottled_model_is_unchanged_by_the_throttle_plumbing() {
        // Empty-fault-plan inertness: a factor of exactly 1.0 short-
        // circuits before any float math touches the cap.
        let mut m = model(Governor::Schedutil);
        m.set_activity(Time::ZERO, CoreId(0), Activity::Busy);
        run_ms(&mut m, 0, 50, 1.0);
        assert_eq!(m.freq_of(CoreId(0)), Freq::from_ghz(3.7));
        assert_eq!(m.socket_throttle(0), 1.0);
        assert!(m
            .set_socket_throttle(Time::from_millis(50), 0, 1.0)
            .is_empty());
    }

    #[test]
    fn save_load_round_trip_is_bit_exact() {
        // Build a model in a messy mid-run state: mixed activity, a
        // throttled socket, partial ramps, stale observations.
        let mut m = model(Governor::Schedutil);
        m.set_activity(Time::ZERO, CoreId(0), Activity::Busy);
        m.set_activity(Time::ZERO, CoreId(3), Activity::Spinning);
        m.set_activity(Time::ZERO, CoreId(33), Activity::Busy);
        let t = run_ms(&mut m, 0, 17, 0.73);
        m.sample_observed();
        m.set_socket_throttle(t, 1, 0.9);
        m.set_activity(t, CoreId(3), Activity::Idle);
        let t = run_ms(&mut m, 17, 5, 0.73);

        let mut r = model(Governor::Schedutil);
        r.load(&m.save()).unwrap();

        // Identical future evolution, including the energy integral.
        let mut tm = t;
        let mut tr = t;
        for step in 0..40u64 {
            tm += MILLISEC;
            tr += MILLISEC;
            let util = (step % 10) as f64 / 10.0;
            assert_eq!(
                m.advance(tm, MILLISEC, &mut |_| util),
                r.advance(tr, MILLISEC, &mut |_| util)
            );
        }
        for c in [0usize, 3, 16, 33] {
            assert_eq!(m.freq_of(CoreId(c as u32)), r.freq_of(CoreId(c as u32)));
            assert_eq!(
                m.observed_freq(CoreId(c as u32)),
                r.observed_freq(CoreId(c as u32))
            );
        }
        assert_eq!(m.energy_joules(tm).to_bits(), r.energy_joules(tr).to_bits());
    }

    #[test]
    fn load_rejects_wrong_machine_shape() {
        let m = model(Governor::Schedutil);
        let mut small = FreqModel::new(&presets::xeon_6130(1), Governor::Schedutil);
        let err = small.load(&m.save()).err().unwrap();
        assert!(err.contains("entries"), "{err}");
    }

    #[test]
    fn ccx_scoped_turbo_caps_are_independent() {
        // synth: 1 socket × 2 CCX × 8 phys, SMT-1, per-CCX ladder
        // (3.5/3.5/3.2/3.2/3.0…). Loading CCX 0 must not cap CCX 1.
        let spec = presets::synth(1, 2, 8, 1, nest_topology::NumaKind::Flat);
        let mut m = FreqModel::new(&spec, Governor::Schedutil);
        assert_eq!(m.n_turbo_domains(), 2);
        for c in 0..8 {
            m.set_activity(Time::ZERO, CoreId(c), Activity::Busy);
        }
        // One lone core on CCX 1 (cores 8..16).
        m.set_activity(Time::ZERO, CoreId(8), Activity::Busy);
        run_ms(&mut m, 0, 60, 1.0);
        assert_eq!(m.active_phys_in_domain(0), 8);
        assert_eq!(m.active_phys_in_domain(1), 1);
        // CCX 0 is pinned at the all-core ceiling, CCX 1 boosts to fmax.
        assert_eq!(m.freq_of(CoreId(0)), Freq::from_ghz(3.0));
        assert_eq!(m.freq_of(CoreId(8)), Freq::from_ghz(3.5));
    }

    #[test]
    fn smt1_threads_are_their_own_pair() {
        let spec = presets::synth(1, 2, 8, 1, nest_topology::NumaKind::Flat);
        let mut m = FreqModel::new(&spec, Governor::Schedutil);
        m.set_activity(Time::ZERO, CoreId(3), Activity::Busy);
        assert_eq!(m.active_phys_in_domain(0), 1);
        m.set_activity(Time::ZERO, CoreId(3), Activity::Idle);
        assert_eq!(m.active_phys_in_domain(0), 0);
    }

    #[test]
    fn throttle_spans_all_ccxs_of_the_socket() {
        let spec = presets::synth(1, 2, 4, 1, nest_topology::NumaKind::Flat);
        let mut m = FreqModel::new(&spec, Governor::Schedutil);
        m.set_activity(Time::ZERO, CoreId(0), Activity::Busy); // CCX 0
        m.set_activity(Time::ZERO, CoreId(4), Activity::Busy); // CCX 1
        let t = run_ms(&mut m, 0, 50, 1.0);
        assert_eq!(m.freq_of(CoreId(0)), Freq::from_ghz(3.5));
        assert_eq!(m.freq_of(CoreId(4)), Freq::from_ghz(3.5));
        let changed = m.set_socket_throttle(t, 0, 0.5);
        assert_eq!(changed, vec![CoreId(0), CoreId(4)]);
        assert_eq!(m.freq_of(CoreId(0)), Freq::from_khz(1_750_000));
        assert_eq!(m.freq_of(CoreId(4)), Freq::from_khz(1_750_000));
    }

    #[test]
    fn synth_save_load_round_trip() {
        let spec = presets::synth(2, 2, 4, 1, nest_topology::NumaKind::Ring);
        let mut m = FreqModel::new(&spec, Governor::Schedutil);
        m.set_activity(Time::ZERO, CoreId(0), Activity::Busy);
        m.set_activity(Time::ZERO, CoreId(9), Activity::Spinning);
        let t = run_ms(&mut m, 0, 13, 0.9);
        let mut r = FreqModel::new(&spec, Governor::Schedutil);
        r.load(&m.save()).unwrap();
        let mut tm = t;
        for _ in 0..20 {
            tm += MILLISEC;
            assert_eq!(
                m.advance(tm, MILLISEC, &mut |_| 0.8),
                r.advance(tm, MILLISEC, &mut |_| 0.8)
            );
        }
        assert_eq!(m.energy_joules(tm).to_bits(), r.energy_joules(tm).to_bits());
    }

    #[test]
    fn pure_power_matches_the_model_bit_for_bit() {
        let spec = presets::xeon_6130(2);
        let mut m = FreqModel::new(&spec, Governor::Schedutil);
        let mut acts = vec![Activity::Idle; spec.n_cores()];
        for (c, a) in [
            (0u32, Activity::Busy),
            (3, Activity::Spinning),
            (16, Activity::Busy), // hyperthread of core 0
            (33, Activity::Busy), // socket 1
        ] {
            m.set_activity(Time::ZERO, CoreId(c), a);
            acts[c as usize] = a;
        }
        // One integration step of exactly 1 s: energy == power × 1.0.
        let e = m.energy_joules(Time::from_secs(1));
        let pps = spec.phys_per_socket;
        let cps = spec.cores_per_socket();
        let p = instant_power_w(
            &spec,
            |t| acts[t],
            |phys| m.freq_of(CoreId::from_index((phys / pps) * cps + phys % pps)),
        );
        assert_eq!(e.to_bits(), (p * 1.0).to_bits());
    }

    #[test]
    fn ns_at_reference_never_exceeds_the_interval() {
        let fmax = Freq::from_ghz(3.7);
        for khz in [1_000_000u64, 2_100_000, 2_099_999, 3_700_000] {
            let f = Freq::from_khz(khz);
            for dt in [0u64, 1, 999, 1_000_003, 250_000_000] {
                let at_ref = ns_at_reference(f, fmax, dt);
                assert!(at_ref <= dt, "{khz} kHz over {dt} ns gave {at_ref}");
            }
        }
        // Slower actual frequency loses proportionally more time.
        let dt = 1_000_000;
        let slow = ns_at_reference(Freq::from_ghz(1.0), fmax, dt);
        let fast = ns_at_reference(Freq::from_ghz(3.6), fmax, dt);
        assert!(slow < fast && fast < dt, "{slow} {fast}");
    }

    #[test]
    fn e7_ramps_slower_than_6130() {
        let spec_e7 = presets::e7_8870_v4();
        let mut m_e7 = FreqModel::new(&spec_e7, Governor::Schedutil);
        let mut m_61 = model(Governor::Schedutil);
        m_e7.set_activity(Time::ZERO, CoreId(0), Activity::Busy);
        m_61.set_activity(Time::ZERO, CoreId(0), Activity::Busy);
        let mut t = Time::ZERO;
        for _ in 0..4 {
            t += MILLISEC;
            m_e7.advance(t, MILLISEC, &mut |_| 1.0);
            m_61.advance(t, MILLISEC, &mut |_| 1.0);
        }
        let gain_e7 = m_e7.freq_of(CoreId(0)).as_khz() - spec_e7.freq.fmin.as_khz();
        let gain_61 = m_61.freq_of(CoreId(0)).as_khz() - 1_000_000;
        assert!(gain_e7 < gain_61);
    }
}
