#![deny(missing_docs)]

//! DVFS frequency and energy model.
//!
//! Reproduces the governor/hardware interplay the paper describes (§2.3):
//! power governors ([`Governor`]) suggest frequency ranges; the hardware
//! model ([`FreqModel`]) picks per-physical-core frequencies subject to the
//! Table 3 turbo ladders and ramp dynamics, and integrates CPU energy.

pub mod governor;
pub mod model;

pub use governor::Governor;
pub use model::{instant_power_w, ns_at_reference, Activity, FreqModel};
