//! Power governors.
//!
//! The governor suggests a frequency range to the hardware; the hardware
//! picks the actual frequency within it (§2.3 of the paper). Two governors
//! are modeled, matching the evaluation:
//!
//! * [`Governor::Performance`] requests at least the nominal frequency —
//!   tasks never run below nominal, but nothing concentrates them.
//! * [`Governor::Schedutil`] requests `1.25 × util × fmax`, so a core that
//!   has been idle long (decayed utilization) restarts slow and climbs as
//!   utilization rebuilds — the effect Nest's core reuse avoids.

use nest_simcore::Freq;
use nest_topology::FreqSpec;

/// A Linux power governor.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Governor {
    /// Request at least the nominal frequency (`performance`).
    Performance,
    /// Request a frequency proportional to recent utilization
    /// (`schedutil`).
    Schedutil,
}

impl Governor {
    /// Short name used in figure labels ("sched" / "perf" in the paper).
    pub fn short_name(self) -> &'static str {
        match self {
            Governor::Performance => "perf",
            Governor::Schedutil => "sched",
        }
    }

    /// Returns the frequency the governor requests for a busy core with
    /// the given PELT utilization (in `[0, 1]`).
    ///
    /// The hardware will further cap this by the active-core turbo limit.
    pub fn requested_freq(self, spec: &FreqSpec, util: f64) -> Freq {
        match self {
            Governor::Performance => spec.fmax(),
            Governor::Schedutil => {
                // Linux: next_freq = 1.25 * max_freq * util. The floor is
                // the *nominal* frequency: hardware-managed P-states
                // (HWP) grant a running core at least its base ratio even
                // at low utilization — what keeps lightly utilized but
                // busy cores in the 2.1+ GHz range in the paper's traces.
                let raw = 1.25 * util.clamp(0.0, 1.0) * spec.fmax().as_khz() as f64;
                let khz = (raw as u64).clamp(spec.fnominal.as_khz(), spec.fmax().as_khz());
                Freq::from_khz(khz)
            }
        }
    }

    /// Returns the frequency floor an idle core decays toward.
    ///
    /// `performance` keeps cores at nominal; `schedutil` lets them fall to
    /// the machine minimum.
    pub fn idle_floor(self, spec: &FreqSpec) -> Freq {
        match self {
            Governor::Performance => spec.fnominal,
            Governor::Schedutil => spec.fmin,
        }
    }

    /// Returns the frequency a core starts at when it wakes from idle.
    ///
    /// Under `performance` the request floor is nominal, so a waking core
    /// immediately runs at least at nominal; under `schedutil` it resumes
    /// from wherever it had decayed to.
    pub fn wakeup_floor(self, spec: &FreqSpec) -> Freq {
        match self {
            Governor::Performance => spec.fnominal,
            Governor::Schedutil => spec.fmin,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nest_topology::presets;

    #[test]
    fn performance_requests_max() {
        let spec = presets::xeon_6130(2).freq;
        assert_eq!(
            Governor::Performance.requested_freq(&spec, 0.0),
            spec.fmax()
        );
    }

    #[test]
    fn schedutil_scales_with_util() {
        let spec = presets::xeon_6130(2).freq;
        let lo = Governor::Schedutil.requested_freq(&spec, 0.5);
        let hi = Governor::Schedutil.requested_freq(&spec, 0.75);
        assert!(lo < hi);
        assert!(lo >= spec.fnominal, "busy cores request at least nominal");
        assert!(hi <= spec.fmax());
    }

    #[test]
    fn schedutil_floors_at_nominal() {
        let spec = presets::xeon_6130(2).freq;
        assert_eq!(
            Governor::Schedutil.requested_freq(&spec, 0.0),
            spec.fnominal
        );
    }

    #[test]
    fn schedutil_full_util_requests_max() {
        let spec = presets::xeon_6130(2).freq;
        // 1.25 × 1.0 × fmax clamps to fmax.
        assert_eq!(Governor::Schedutil.requested_freq(&spec, 1.0), spec.fmax());
        // 80% utilization already requests the maximum (1.25 × 0.8 = 1.0).
        assert_eq!(Governor::Schedutil.requested_freq(&spec, 0.8), spec.fmax());
    }

    #[test]
    fn idle_floors_differ() {
        let spec = presets::xeon_5218().freq;
        assert_eq!(Governor::Performance.idle_floor(&spec), spec.fnominal);
        assert_eq!(Governor::Schedutil.idle_floor(&spec), spec.fmin);
    }

    #[test]
    fn short_names_match_paper_labels() {
        assert_eq!(Governor::Performance.short_name(), "perf");
        assert_eq!(Governor::Schedutil.short_name(), "sched");
    }
}
