//! Property-based tests for the DVFS model: frequencies stay inside the
//! machine envelope, turbo caps are respected, and energy is monotone,
//! under arbitrary activity sequences.

// Property-based tests need the external `proptest` crate; the offline
// default build compiles this file to an empty test binary. Enable with
// `--features proptest` after adding proptest to [dev-dependencies].
#![cfg(feature = "proptest")]

use proptest::prelude::*;

use nest_freq::{Activity, FreqModel, Governor};
use nest_simcore::{CoreId, Time, MILLISEC};
use nest_topology::presets;

fn activity(i: u32) -> Activity {
    match i % 3 {
        0 => Activity::Idle,
        1 => Activity::Busy,
        _ => Activity::Spinning,
    }
}

proptest! {
    /// Under any activity/advance interleaving, every core's frequency
    /// remains within [fmin, fmax(1)], and busy cores respect the
    /// windowed turbo cap after an advance step.
    #[test]
    fn frequency_stays_in_envelope(
        ops in prop::collection::vec((0u32..64, 0u32..3, 0.0f64..1.0), 1..200),
        gov_perf in any::<bool>(),
    ) {
        let spec = presets::xeon_5218();
        let gov = if gov_perf { Governor::Performance } else { Governor::Schedutil };
        let mut m = FreqModel::new(&spec, gov);
        let mut now = Time::ZERO;
        for (core, act, util) in ops {
            now += MILLISEC;
            m.set_activity(now, CoreId(core), activity(act));
            m.advance(now, MILLISEC, &mut |_| util);
            for c in 0..64u32 {
                let f = m.freq_of(CoreId(c));
                prop_assert!(f >= spec.freq.fmin, "below fmin: {f}");
                prop_assert!(f <= spec.freq.fmax(), "above fmax: {f}");
            }
            for s in 0..2 {
                let windowed = m.windowed_active_in_domain(s, now);
                let instant = m.active_phys_in_domain(s);
                prop_assert!(windowed >= instant, "window must include current activity");
                prop_assert!(windowed <= 16);
            }
        }
    }

    /// Energy is nonnegative and monotone in time, whatever the activity.
    #[test]
    fn energy_monotone(
        ops in prop::collection::vec((0u32..64, 0u32..3), 1..100),
    ) {
        let spec = presets::xeon_6130(2);
        let mut m = FreqModel::new(&spec, Governor::Schedutil);
        let mut now = Time::ZERO;
        let mut prev = 0.0f64;
        for (core, act) in ops {
            now += MILLISEC;
            m.set_activity(now, CoreId(core), activity(act));
            m.advance(now, MILLISEC, &mut |_| 0.5);
            let e = m.energy_joules(now);
            prop_assert!(e >= prev, "energy decreased: {e} < {prev}");
            prev = e;
        }
        prop_assert!(prev > 0.0, "no energy accumulated");
    }

    /// A machine kept fully busy consumes strictly more energy than an
    /// idle one over the same horizon.
    #[test]
    fn busy_costs_more_than_idle(ms in 10u64..200) {
        let spec = presets::xeon_6130(2);
        let horizon = Time::from_millis(ms);
        let mut idle = FreqModel::new(&spec, Governor::Schedutil);
        let e_idle = idle.energy_joules(horizon);
        let mut busy = FreqModel::new(&spec, Governor::Schedutil);
        for c in 0..64 {
            busy.set_activity(Time::ZERO, CoreId(c), Activity::Busy);
        }
        let mut t = Time::ZERO;
        while t < horizon {
            t += MILLISEC;
            busy.advance(t.min(horizon), MILLISEC, &mut |_| 1.0);
        }
        let e_busy = busy.energy_joules(horizon);
        prop_assert!(e_busy > e_idle);
    }
}
