//! Per-request latency attribution.
//!
//! [`PhaseBreakdownProbe`] watches one run's trace for the request tasks
//! the serve subsystem injects (labels starting with
//! [`nest_serve::REQUEST_LABEL_PREFIX`]) and decomposes each request's
//! arrival→completion latency into exhaustive, ns-exact phases. The probe
//! keeps a tiny state machine per in-flight request; every trace event
//! that changes a request's state closes the elapsed span into exactly
//! one phase, so the phase durations of a completed request sum *exactly*
//! (in integer nanoseconds) to its measured latency — the accounting
//! identity the phase-sum property test asserts.
//!
//! The phases, in [`PHASE_NAMES`] order:
//!
//! * **arrival_queue** — creation (the arrival event) to first run start.
//! * **runqueue_wait** — runnable-but-not-running spans from preemption,
//!   yields, or wakeups with no warmer explanation.
//! * **service_fmax** — on-CPU time converted to what it *would* have
//!   cost at fmax ([`nest_freq::ns_at_reference`]).
//! * **ramp_penalty** — the rest of the on-CPU time: the cost of running
//!   below fmax while the hardware ramps. This is the phase the paper's
//!   mechanism targets — Nest's warm cores should shrink it.
//! * **spin_overlap** — wakeup-to-run spans where placement chose a core
//!   that was spin-waiting (the handoff a warm nest core absorbs).
//! * **migration_stall** — wakeup-to-run spans that resumed on a
//!   different CCX than the request last ran on.
//! * **merge_wait** — blocked spans: a fan-out parent waiting for its
//!   sub-tasks before the merge step.
//!
//! On-CPU spans are split at every frequency change of the running
//! physical core, mirroring the engine's own segment re-timing, so the
//! fmax/ramp split uses the exact frequency trajectory. The probe
//! reconstructs everything from the existing [`TraceEvent`] stream — the
//! engine needed no new event variants, and runs without serve plans pay
//! only a label prefix check per task creation.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use nest_freq::ns_at_reference;
use nest_serve::REQUEST_LABEL_PREFIX;
use nest_simcore::json::{obj, Json};
use nest_simcore::{snap, CoreId, Freq, Probe, StopReason, TaskId, Time, TraceEvent};
use nest_topology::MachineSpec;

use crate::tail::TailHistogram;

/// Registry kind under which [`PhaseBreakdownProbe`] snapshots itself.
pub const PHASE_BREAKDOWN_PROBE_KIND: &str = "metrics.phase";

/// The attribution phases, in accounting order. Phase indices throughout
/// this module are positions in this array.
pub const PHASE_NAMES: [&str; N_PHASES] = [
    "arrival_queue",
    "runqueue_wait",
    "service_fmax",
    "ramp_penalty",
    "spin_overlap",
    "migration_stall",
    "merge_wait",
];

/// Number of attribution phases.
pub const N_PHASES: usize = 7;

const ARRIVAL_QUEUE: usize = 0;
const RUNQUEUE_WAIT: usize = 1;
const SERVICE_FMAX: usize = 2;
const RAMP_PENALTY: usize = 3;
const SPIN_OVERLAP: usize = 4;
const MIGRATION_STALL: usize = 5;
const MERGE_WAIT: usize = 6;

/// Aggregated per-phase latency attribution over one or more runs.
///
/// Every field is an order-independent sum (histograms merge
/// bucket-wise), so merging in any grouping yields the same values —
/// the same discipline as `decision_metrics` and `serve_metrics`.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseMetrics {
    /// Runs merged into this aggregate.
    pub runs: u64,
    /// Total simulated nanoseconds across the merged runs.
    pub sim_ns: u64,
    /// Completed requests attributed across those runs.
    pub requests: u64,
    /// Requests whose phase durations did not sum to their measured
    /// latency. Always zero unless the state machine desynchronized
    /// from the engine; the identity property test asserts on it.
    pub identity_violations: u64,
    /// Arrival→completion latency histogram (every attributed request).
    pub total: TailHistogram,
    /// One histogram per phase, indexed like [`PHASE_NAMES`]; each
    /// request records into every phase (zeros included), so per-phase
    /// sample counts equal `requests`.
    pub phases: Vec<TailHistogram>,
}

impl Default for PhaseMetrics {
    fn default() -> PhaseMetrics {
        PhaseMetrics {
            runs: 0,
            sim_ns: 0,
            requests: 0,
            identity_violations: 0,
            total: TailHistogram::default(),
            phases: vec![TailHistogram::default(); N_PHASES],
        }
    }
}

impl PhaseMetrics {
    /// Folds `other` into `self`.
    pub fn merge(&mut self, other: &PhaseMetrics) {
        self.runs += other.runs;
        self.sim_ns += other.sim_ns;
        self.requests += other.requests;
        self.identity_violations += other.identity_violations;
        self.total.merge(&other.total);
        for (mine, theirs) in self.phases.iter_mut().zip(&other.phases) {
            mine.merge(theirs);
        }
    }

    /// Fraction of all attributed nanoseconds spent in phase `i`.
    pub fn share(&self, i: usize) -> Option<f64> {
        (self.total.sum > 0).then(|| self.phases[i].sum as f64 / self.total.sum as f64)
    }

    /// Serializes the metrics as the `phase_metrics` telemetry block:
    /// a `total` percentile block plus one per phase, with each phase's
    /// exact ns sum and share of the total.
    pub fn to_json(&self) -> Json {
        let block = |h: &TailHistogram| {
            obj(vec![
                ("p50_ns", Json::opt_u64(h.quantile(0.50))),
                ("p99_ns", Json::opt_u64(h.quantile(0.99))),
                ("p999_ns", Json::opt_u64(h.quantile(0.999))),
                ("mean_ns", Json::opt_f64(h.mean())),
                ("sum_ns", Json::u64(h.sum)),
                ("samples", Json::u64(h.len())),
            ])
        };
        let phases = PHASE_NAMES
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let mut b = block(&self.phases[i]);
                if let Json::Obj(fields) = &mut b {
                    fields.push(("share".to_string(), Json::opt_f64(self.share(i))));
                }
                (name.to_string(), b)
            })
            .collect();
        obj(vec![
            ("runs", Json::u64(self.runs)),
            ("sim_ns", Json::u64(self.sim_ns)),
            ("requests", Json::u64(self.requests)),
            ("identity_violations", Json::u64(self.identity_violations)),
            ("total", block(&self.total)),
            ("phases", Json::Obj(phases)),
        ])
    }
}

/// Where a tracked request currently is in its lifecycle.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ReqState {
    /// Created, never run: accruing arrival queueing.
    Arrival,
    /// Runnable (queued), accruing one of the wait phases.
    Runnable,
    /// On CPU on this core, accruing service/ramp time.
    Running(CoreId),
    /// Blocked (a fan-out parent in its merge wait).
    Blocked,
    /// Stopped with [`StopReason::Exit`]; awaiting the exit event.
    Exiting,
}

struct InFlight {
    created: Time,
    /// Start of the currently accruing span.
    since: Time,
    state: ReqState,
    /// The current runnable span began with a wakeup (not a preemption).
    woken: bool,
    /// That wakeup's placement chose a core that was spin-waiting.
    wake_spin: bool,
    /// CCX the request last ran on, for migration classification.
    last_ccx: Option<u32>,
    /// Accumulated nanoseconds per phase, indexed like [`PHASE_NAMES`].
    acc: [u64; N_PHASES],
}

impl InFlight {
    fn new(now: Time) -> InFlight {
        InFlight {
            created: now,
            since: now,
            state: ReqState::Arrival,
            woken: false,
            wake_spin: false,
            last_ccx: None,
            acc: [0; N_PHASES],
        }
    }
}

/// A probe computing [`PhaseMetrics`] over one run.
///
/// Mirrors the frequency model's per-physical-core frequency from the
/// `FreqChange` stream (starting at nominal, like the warm machine) so
/// on-CPU spans can be split into at-fmax service and ramp penalty, and
/// the per-core spin flags so wakeups into spinning cores are credited
/// to `spin_overlap`.
pub struct PhaseBreakdownProbe {
    out: Rc<RefCell<PhaseMetrics>>,
    m: PhaseMetrics,
    fmax: Freq,
    /// CCX index of each logical core (from the topology).
    ccx_of: Vec<u32>,
    /// Physical-core index behind each logical core.
    phys_of: Vec<usize>,
    /// The (one or two) hardware threads of each physical core.
    threads_of_phys: Vec<(usize, usize)>,
    /// Mirrored current frequency per physical core.
    phys_freq: Vec<Freq>,
    /// Mirrored spin flag per logical core.
    spinning: Vec<bool>,
    /// The tracked request running on each logical core, if any.
    running: Vec<Option<TaskId>>,
    inflight: HashMap<TaskId, InFlight>,
}

impl PhaseBreakdownProbe {
    /// Creates a probe for `spec` with the per-core CCX table (as
    /// computed by the topology). The handle receives the metrics after
    /// the run finishes.
    pub fn new(
        spec: &MachineSpec,
        ccx_of: Vec<u32>,
    ) -> (PhaseBreakdownProbe, Rc<RefCell<PhaseMetrics>>) {
        let n_cores = spec.n_cores();
        assert_eq!(ccx_of.len(), n_cores, "ccx table must cover every core");
        let pps = spec.phys_per_socket;
        let cps = spec.cores_per_socket();
        let n_phys = spec.sockets * pps;
        let phys_of = (0..n_cores)
            .map(|c| (c / cps) * pps + (c % cps) % pps)
            .collect();
        let threads_of_phys = (0..n_phys)
            .map(|phys| {
                let (socket, p) = (phys / pps, phys % pps);
                let t0 = socket * cps + p;
                let t1 = if spec.smt == 2 { t0 + pps } else { t0 };
                (t0, t1)
            })
            .collect();
        let out = Rc::new(RefCell::new(PhaseMetrics::default()));
        let probe = PhaseBreakdownProbe {
            out: Rc::clone(&out),
            m: PhaseMetrics::default(),
            fmax: spec.freq.fmax(),
            ccx_of,
            phys_of,
            threads_of_phys,
            phys_freq: vec![spec.freq.fnominal; n_phys],
            spinning: vec![false; n_cores],
            running: vec![None; n_cores],
            inflight: HashMap::new(),
        };
        (probe, out)
    }

    /// Splits an on-CPU span at frequency `freq` into at-fmax service
    /// and ramp penalty.
    fn run_segment(acc: &mut [u64; N_PHASES], freq: Freq, fmax: Freq, dt: u64) {
        let at_fmax = ns_at_reference(freq, fmax, dt).min(dt);
        acc[SERVICE_FMAX] += at_fmax;
        acc[RAMP_PENALTY] += dt - at_fmax;
    }
}

impl Probe for PhaseBreakdownProbe {
    fn on_event(&mut self, now: Time, event: &TraceEvent) {
        match event {
            TraceEvent::TaskCreated { task, label, .. }
                if label.starts_with(REQUEST_LABEL_PREFIX) =>
            {
                self.inflight.insert(*task, InFlight::new(now));
            }
            TraceEvent::Woken { task } => {
                if let Some(r) = self.inflight.get_mut(task) {
                    if r.state == ReqState::Blocked {
                        r.acc[MERGE_WAIT] += now.saturating_since(r.since);
                        r.since = now;
                        r.state = ReqState::Runnable;
                        r.woken = true;
                        r.wake_spin = false;
                    }
                }
            }
            TraceEvent::Placed { task, core, .. } => {
                // Placement is decided while the chosen core still spins
                // (the spin ends when the placement commits), so this
                // reads the flag at exactly the decision instant.
                let spin = self.spinning[core.index()];
                if let Some(r) = self.inflight.get_mut(task) {
                    if r.state == ReqState::Runnable && r.woken && spin {
                        r.wake_spin = true;
                    }
                }
            }
            TraceEvent::RunStart { task, core } => {
                let ccx = self.ccx_of[core.index()];
                if let Some(r) = self.inflight.get_mut(task) {
                    let dt = now.saturating_since(r.since);
                    match r.state {
                        ReqState::Arrival => r.acc[ARRIVAL_QUEUE] += dt,
                        ReqState::Runnable => {
                            let phase = if r.woken && r.last_ccx.is_some_and(|c| c != ccx) {
                                MIGRATION_STALL
                            } else if r.woken && r.wake_spin {
                                SPIN_OVERLAP
                            } else {
                                RUNQUEUE_WAIT
                            };
                            r.acc[phase] += dt;
                        }
                        // Defensive: unmatched starts still keep the
                        // identity (the span lands in *a* phase).
                        ReqState::Blocked | ReqState::Exiting => r.acc[MERGE_WAIT] += dt,
                        ReqState::Running(prev) => {
                            let f = self.phys_freq[self.phys_of[prev.index()]];
                            Self::run_segment(&mut r.acc, f, self.fmax, dt);
                            self.running[prev.index()] = None;
                        }
                    }
                    r.since = now;
                    r.state = ReqState::Running(*core);
                    r.woken = false;
                    r.wake_spin = false;
                    r.last_ccx = Some(ccx);
                    self.running[core.index()] = Some(*task);
                }
            }
            TraceEvent::RunStop { task, reason, .. } => {
                if let Some(r) = self.inflight.get_mut(task) {
                    if let ReqState::Running(c) = r.state {
                        let dt = now.saturating_since(r.since);
                        let f = self.phys_freq[self.phys_of[c.index()]];
                        Self::run_segment(&mut r.acc, f, self.fmax, dt);
                        self.running[c.index()] = None;
                    }
                    r.since = now;
                    r.woken = false;
                    r.wake_spin = false;
                    r.state = match reason {
                        StopReason::Block => ReqState::Blocked,
                        StopReason::Preempt | StopReason::Yield => ReqState::Runnable,
                        StopReason::Exit => ReqState::Exiting,
                    };
                }
            }
            TraceEvent::TaskExited { task } => {
                if let Some(mut r) = self.inflight.remove(task) {
                    let dt = now.saturating_since(r.since);
                    match r.state {
                        ReqState::Arrival => r.acc[ARRIVAL_QUEUE] += dt,
                        ReqState::Runnable => r.acc[RUNQUEUE_WAIT] += dt,
                        ReqState::Running(c) => {
                            let f = self.phys_freq[self.phys_of[c.index()]];
                            Self::run_segment(&mut r.acc, f, self.fmax, dt);
                            self.running[c.index()] = None;
                        }
                        ReqState::Blocked | ReqState::Exiting => r.acc[MERGE_WAIT] += dt,
                    }
                    let total = now.saturating_since(r.created);
                    if r.acc.iter().sum::<u64>() != total {
                        self.m.identity_violations += 1;
                    }
                    self.m.requests += 1;
                    self.m.total.record(total);
                    for (i, h) in self.m.phases.iter_mut().enumerate() {
                        h.record(r.acc[i]);
                    }
                }
            }
            TraceEvent::FreqChange { core, freq } => {
                let p = self.phys_of[core.index()];
                if self.phys_freq[p] != *freq {
                    let (t0, t1) = self.threads_of_phys[p];
                    let old = self.phys_freq[p];
                    for t in std::iter::once(t0).chain((t1 != t0).then_some(t1)) {
                        if let Some(task) = self.running[t] {
                            if let Some(r) = self.inflight.get_mut(&task) {
                                let dt = now.saturating_since(r.since);
                                Self::run_segment(&mut r.acc, old, self.fmax, dt);
                                r.since = now;
                            }
                        }
                    }
                    self.phys_freq[p] = *freq;
                }
            }
            TraceEvent::SpinStart { core } => self.spinning[core.index()] = true,
            TraceEvent::SpinEnd { core } => self.spinning[core.index()] = false,
            _ => {}
        }
    }

    fn on_finish(&mut self, now: Time) {
        self.m.sim_ns = now.as_nanos();
        self.m.runs = 1;
        *self.out.borrow_mut() = std::mem::take(&mut self.m);
    }

    fn snap(&self) -> Option<(&'static str, Json)> {
        // The machine shape (fmax, ccx/phys tables) comes from
        // construction; only accumulated counters, the mirrored hardware
        // view, and in-flight request states travel — the latter sorted
        // by task id for stable bytes. `running` is rebuilt on restore
        // from the `Running` states.
        let state_code = |s: &ReqState| match s {
            ReqState::Arrival => (0u64, 0u64),
            ReqState::Runnable => (1, 0),
            ReqState::Running(c) => (2, c.index() as u64 + 1),
            ReqState::Blocked => (3, 0),
            ReqState::Exiting => (4, 0),
        };
        let mut inflight: Vec<(&TaskId, &InFlight)> = self.inflight.iter().collect();
        inflight.sort_by_key(|(task, _)| task.0);
        Some((
            PHASE_BREAKDOWN_PROBE_KIND,
            obj(vec![
                ("requests", Json::u64(self.m.requests)),
                ("identity_violations", Json::u64(self.m.identity_violations)),
                ("total", self.m.total.save()),
                (
                    "phases",
                    Json::Arr(self.m.phases.iter().map(|h| h.save()).collect()),
                ),
                (
                    "phys_freq",
                    Json::Arr(
                        self.phys_freq
                            .iter()
                            .map(|f| Json::u64(f.as_khz()))
                            .collect(),
                    ),
                ),
                (
                    "spinning",
                    Json::Arr(self.spinning.iter().map(|&b| Json::Bool(b)).collect()),
                ),
                (
                    "inflight",
                    Json::Arr(
                        inflight
                            .into_iter()
                            .map(|(task, r)| {
                                let (state, core) = state_code(&r.state);
                                obj(vec![
                                    ("task", Json::u64(task.0 as u64)),
                                    ("created", snap::time_json(r.created)),
                                    ("since", snap::time_json(r.since)),
                                    ("state", Json::u64(state)),
                                    ("core", Json::u64(core)),
                                    ("woken", Json::Bool(r.woken)),
                                    ("wake_spin", Json::Bool(r.wake_spin)),
                                    (
                                        "last_ccx",
                                        Json::u64(r.last_ccx.map_or(0, |c| c as u64 + 1)),
                                    ),
                                    (
                                        "acc",
                                        Json::Arr(r.acc.iter().map(|&v| Json::u64(v)).collect()),
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ))
    }

    fn snap_restore(&mut self, state: &Json) -> Result<(), String> {
        let expect_len = |name: &str, got: usize, want: usize| {
            if got == want {
                Ok(())
            } else {
                Err(format!(
                    "phase snapshot \"{name}\" has {got} entries, the machine needs {want}"
                ))
            }
        };
        self.m.requests = snap::get_u64(state, "requests")?;
        self.m.identity_violations = snap::get_u64(state, "identity_violations")?;
        self.m.total = TailHistogram::load(snap::field(state, "total")?)?;
        let phases = snap::get_arr(state, "phases")?;
        expect_len("phases", phases.len(), N_PHASES)?;
        self.m.phases = phases
            .iter()
            .map(TailHistogram::load)
            .collect::<Result<_, _>>()?;
        let freqs = snap::get_arr(state, "phys_freq")?;
        expect_len("phys_freq", freqs.len(), self.phys_freq.len())?;
        for (slot, j) in self.phys_freq.iter_mut().zip(freqs) {
            *slot = Freq::from_khz(snap::elem_u64(j)?);
        }
        let spinning = snap::get_arr(state, "spinning")?;
        expect_len("spinning", spinning.len(), self.spinning.len())?;
        for (slot, j) in self.spinning.iter_mut().zip(spinning) {
            *slot = j.as_bool().ok_or("spin flag is not a bool")?;
        }
        self.inflight.clear();
        self.running = vec![None; self.running.len()];
        for entry in snap::get_arr(state, "inflight")? {
            let task = TaskId(snap::get_u64(entry, "task")? as u32);
            let core = snap::get_u64(entry, "core")?;
            let state_code = snap::get_u64(entry, "state")?;
            let state = match state_code {
                0 => ReqState::Arrival,
                1 => ReqState::Runnable,
                2 => {
                    if core == 0 {
                        return Err("running request without a core".to_string());
                    }
                    let c = CoreId::from_index(core as usize - 1);
                    if c.index() >= self.running.len() {
                        return Err(format!("request core {} out of range", c.index()));
                    }
                    self.running[c.index()] = Some(task);
                    ReqState::Running(c)
                }
                3 => ReqState::Blocked,
                4 => ReqState::Exiting,
                other => return Err(format!("unknown request state code {other}")),
            };
            let accs = snap::get_arr(entry, "acc")?;
            expect_len("acc", accs.len(), N_PHASES)?;
            let mut acc = [0u64; N_PHASES];
            for (slot, j) in acc.iter_mut().zip(accs) {
                *slot = snap::elem_u64(j)?;
            }
            let last_ccx = snap::get_u64(entry, "last_ccx")?;
            self.inflight.insert(
                task,
                InFlight {
                    created: snap::get_time(entry, "created")?,
                    since: snap::get_time(entry, "since")?,
                    state,
                    woken: snap::get_bool(entry, "woken")?,
                    wake_spin: snap::get_bool(entry, "wake_spin")?,
                    last_ccx: (last_ccx > 0).then(|| last_ccx as u32 - 1),
                    acc,
                },
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nest_topology::presets;

    fn probe() -> (PhaseBreakdownProbe, Rc<RefCell<PhaseMetrics>>) {
        let spec = presets::xeon_6130(1);
        // Pretend the socket splits into two CCXs so migration stalls
        // are observable on an Intel preset.
        let n = spec.n_cores();
        let ccx_of = (0..n).map(|c| ((c % 32) / 16) as u32).collect();
        PhaseBreakdownProbe::new(&spec, ccx_of)
    }

    fn created(task: u32) -> TraceEvent {
        TraceEvent::TaskCreated {
            task: TaskId(task),
            label: format!("req:0:{task}"),
            parent: None,
        }
    }

    fn start(task: u32, core: u32) -> TraceEvent {
        TraceEvent::RunStart {
            task: TaskId(task),
            core: CoreId(core),
        }
    }

    fn stop(task: u32, core: u32, reason: StopReason) -> TraceEvent {
        TraceEvent::RunStop {
            task: TaskId(task),
            core: CoreId(core),
            reason,
        }
    }

    fn exited(task: u32) -> TraceEvent {
        TraceEvent::TaskExited { task: TaskId(task) }
    }

    fn idx(name: &str) -> usize {
        PHASE_NAMES.iter().position(|n| *n == name).unwrap()
    }

    #[test]
    fn simple_request_splits_into_arrival_service_and_ramp() {
        let (mut p, out) = probe();
        let t = Time::from_nanos;
        p.on_event(t(100), &created(1));
        p.on_event(t(300), &start(1, 0));
        p.on_event(t(800), &stop(1, 0, StopReason::Exit));
        p.on_event(t(800), &exited(1));
        p.on_finish(t(1_000));
        let m = out.borrow();
        assert_eq!(m.requests, 1);
        assert_eq!(m.identity_violations, 0);
        assert_eq!(m.phases[idx("arrival_queue")].sum, 200);
        // 500 ns at nominal (2.1 GHz) vs fmax (3.7 GHz): some of the
        // span is service, the strictly positive rest is ramp penalty.
        let service = m.phases[idx("service_fmax")].sum;
        let ramp = m.phases[idx("ramp_penalty")].sum;
        assert!(service > 0 && ramp > 0, "{service} {ramp}");
        assert_eq!(service + ramp, 500);
        assert_eq!(m.total.sum, 700);
    }

    #[test]
    fn at_fmax_there_is_no_ramp_penalty() {
        let (mut p, out) = probe();
        let t = Time::from_nanos;
        p.on_event(
            t(0),
            &TraceEvent::FreqChange {
                core: CoreId(0),
                freq: Freq::from_ghz(3.7),
            },
        );
        p.on_event(t(0), &created(1));
        p.on_event(t(0), &start(1, 0));
        p.on_event(t(1_000_000), &stop(1, 0, StopReason::Exit));
        p.on_event(t(1_000_000), &exited(1));
        p.on_finish(t(1_000_000));
        let m = out.borrow();
        assert_eq!(m.phases[idx("service_fmax")].sum, 1_000_000);
        assert_eq!(m.phases[idx("ramp_penalty")].sum, 0);
    }

    #[test]
    fn freq_change_splits_the_running_segment() {
        let (mut p, out) = probe();
        let t = Time::from_nanos;
        p.on_event(t(0), &created(1));
        p.on_event(t(0), &start(1, 0));
        // Half the span at nominal, half at fmax.
        p.on_event(
            t(1_000),
            &TraceEvent::FreqChange {
                core: CoreId(0),
                freq: Freq::from_ghz(3.7),
            },
        );
        p.on_event(t(2_000), &stop(1, 0, StopReason::Exit));
        p.on_event(t(2_000), &exited(1));
        p.on_finish(t(2_000));
        let m = out.borrow();
        let service = m.phases[idx("service_fmax")].sum;
        let ramp = m.phases[idx("ramp_penalty")].sum;
        assert_eq!(service + ramp, 2_000);
        // The fmax half contributes no penalty; the nominal half does.
        assert!(ramp > 0 && ramp < 1_000, "{ramp}");
        assert_eq!(m.identity_violations, 0);
    }

    #[test]
    fn fanout_block_is_merge_wait_and_wake_classifies() {
        let (mut p, out) = probe();
        let t = Time::from_nanos;
        p.on_event(t(0), &created(1));
        p.on_event(t(0), &start(1, 0));
        p.on_event(t(1_000), &stop(1, 0, StopReason::Block));
        p.on_event(t(5_000), &TraceEvent::Woken { task: TaskId(1) });
        // Placement chooses a spinning core on the same CCX.
        p.on_event(t(5_000), &TraceEvent::SpinStart { core: CoreId(2) });
        p.on_event(
            t(5_000),
            &TraceEvent::Placed {
                task: TaskId(1),
                core: CoreId(2),
                path: nest_simcore::PlacementPath::NestPrimary,
            },
        );
        p.on_event(t(5_000), &TraceEvent::SpinEnd { core: CoreId(2) });
        p.on_event(t(5_400), &start(1, 2));
        p.on_event(t(6_400), &stop(1, 2, StopReason::Exit));
        p.on_event(t(6_400), &exited(1));
        p.on_finish(t(10_000));
        let m = out.borrow();
        assert_eq!(m.phases[idx("merge_wait")].sum, 4_000);
        assert_eq!(m.phases[idx("spin_overlap")].sum, 400);
        assert_eq!(m.phases[idx("migration_stall")].sum, 0);
        assert_eq!(m.identity_violations, 0);
        assert_eq!(m.total.sum, 6_400);
    }

    #[test]
    fn cross_ccx_resume_is_a_migration_stall() {
        let (mut p, out) = probe();
        let t = Time::from_nanos;
        p.on_event(t(0), &created(1));
        p.on_event(t(0), &start(1, 0)); // CCX 0
        p.on_event(t(1_000), &stop(1, 0, StopReason::Block));
        p.on_event(t(2_000), &TraceEvent::Woken { task: TaskId(1) });
        p.on_event(t(2_500), &start(1, 16)); // CCX 1
        p.on_event(t(3_000), &stop(1, 16, StopReason::Exit));
        p.on_event(t(3_000), &exited(1));
        p.on_finish(t(3_000));
        let m = out.borrow();
        assert_eq!(m.phases[idx("migration_stall")].sum, 500);
        assert_eq!(m.phases[idx("merge_wait")].sum, 1_000);
        assert_eq!(m.identity_violations, 0);
    }

    #[test]
    fn preemption_wait_is_runqueue_time() {
        let (mut p, out) = probe();
        let t = Time::from_nanos;
        p.on_event(t(0), &created(1));
        p.on_event(t(0), &start(1, 0));
        p.on_event(t(1_000), &stop(1, 0, StopReason::Preempt));
        p.on_event(t(4_000), &start(1, 0));
        p.on_event(t(5_000), &stop(1, 0, StopReason::Exit));
        p.on_event(t(5_000), &exited(1));
        p.on_finish(t(5_000));
        let m = out.borrow();
        assert_eq!(m.phases[idx("runqueue_wait")].sum, 3_000);
        assert_eq!(m.identity_violations, 0);
    }

    #[test]
    fn non_request_tasks_are_ignored() {
        let (mut p, out) = probe();
        let t = Time::from_nanos;
        p.on_event(
            t(0),
            &TraceEvent::TaskCreated {
                task: TaskId(7),
                label: "worker-1".to_string(),
                parent: None,
            },
        );
        p.on_event(t(0), &start(7, 0));
        p.on_event(t(500), &stop(7, 0, StopReason::Exit));
        p.on_event(t(500), &exited(7));
        p.on_finish(t(500));
        assert_eq!(out.borrow().requests, 0);
    }

    #[test]
    fn merge_is_order_independent_and_json_round_trips() {
        let mk = |latency: u64| {
            let (mut p, out) = probe();
            let t = Time::from_nanos;
            p.on_event(t(0), &created(1));
            p.on_event(t(10), &start(1, 0));
            p.on_event(t(latency), &stop(1, 0, StopReason::Exit));
            p.on_event(t(latency), &exited(1));
            p.on_finish(t(latency));
            let m = out.borrow().clone();
            m
        };
        let a = mk(5_000);
        let b = mk(50_000);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.runs, 2);
        assert_eq!(ab.requests, 2);
        let json = ab.to_json();
        for key in ["runs", "requests", "identity_violations", "total", "phases"] {
            assert!(json.get(key).is_some(), "missing {key}");
        }
        for name in PHASE_NAMES {
            assert!(
                json.get("phases").and_then(|p| p.get(name)).is_some(),
                "missing phase {name}"
            );
        }
        let text = json.to_pretty();
        assert_eq!(nest_simcore::json::parse(&text).unwrap(), json);
    }

    #[test]
    fn snapshot_round_trip_preserves_inflight_attribution() {
        let t = Time::from_nanos;
        let feed_first_half = |p: &mut PhaseBreakdownProbe| {
            p.on_event(t(0), &created(1));
            p.on_event(t(100), &start(1, 0));
            p.on_event(t(900), &stop(1, 0, StopReason::Block));
            p.on_event(t(950), &TraceEvent::SpinStart { core: CoreId(3) });
            p.on_event(t(1_000), &created(2));
        };
        let feed_second_half = |p: &mut PhaseBreakdownProbe| {
            p.on_event(t(2_000), &TraceEvent::Woken { task: TaskId(1) });
            p.on_event(t(2_400), &start(1, 16));
            p.on_event(t(3_000), &stop(1, 16, StopReason::Exit));
            p.on_event(t(3_000), &exited(1));
            p.on_event(t(3_500), &start(2, 3));
            p.on_event(t(4_000), &stop(2, 3, StopReason::Exit));
            p.on_event(t(4_000), &exited(2));
            p.on_finish(t(4_000));
        };

        let (mut straight, straight_out) = probe();
        feed_first_half(&mut straight);
        let (kind, state) = straight.snap().unwrap();
        assert_eq!(kind, PHASE_BREAKDOWN_PROBE_KIND);

        let (mut restored, restored_out) = probe();
        restored.snap_restore(&state).unwrap();
        feed_second_half(&mut straight);
        feed_second_half(&mut restored);
        assert_eq!(*straight_out.borrow(), *restored_out.borrow());
        assert_eq!(restored_out.borrow().requests, 2);
        assert_eq!(restored_out.borrow().identity_violations, 0);
    }
}
