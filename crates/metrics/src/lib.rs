#![deny(missing_docs)]

//! Measurement for the Nest reproduction.
//!
//! Probes subscribe to the engine's trace stream and compute the paper's
//! metrics: underload (§5.2), frequency residency (Figures 6/11),
//! execution traces (Figures 2/8/9), wakeup latency (schbench, §5.6), and
//! placement accounting; [`stats`] provides the measurement conventions of
//! §5.1 (averages, standard deviations, normalized speedups).

pub mod fleet;
pub mod freqdist;
pub mod latency;
pub mod phase;
pub mod placement;
pub mod serve;
pub mod stats;
pub mod summary;
pub mod tail;
pub mod trace;
pub mod underload;

pub use fleet::{FleetMetrics, FleetRunStats, FleetSummary, FleetWindow};
pub use freqdist::{FreqResidency, FreqResidencyProbe, FREQ_RESIDENCY_PROBE_KIND};
pub use latency::{WakeupLatencies, WakeupLatencyProbe, WAKEUP_LATENCY_PROBE_KIND};
pub use phase::{
    PhaseBreakdownProbe, PhaseMetrics, N_PHASES, PHASE_BREAKDOWN_PROBE_KIND, PHASE_NAMES,
};
pub use placement::{PlacementCounts, PlacementProbe, PLACEMENT_PROBE_KIND};
pub use serve::{ServeMetrics, ServeMetricsProbe, ServeSummary, SERVE_METRICS_PROBE_KIND};
pub use stats::{improvement_pct, improvement_stats, savings_pct, speedup_pct, table4_band, Stats};
pub use summary::{LatencySummary, RunSummary};
pub use tail::TailHistogram;
pub use trace::{ExecutionTrace, ExecutionTraceProbe, Span};
pub use underload::{UnderloadData, UnderloadProbe, UNDERLOAD_PROBE_KIND};
