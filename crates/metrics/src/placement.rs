//! Placement-decision accounting.
//!
//! Counts which mechanism placed tasks (primary nest, reserve nest, CFS
//! fallback, Smove parent path, load balancing) and how placements spread
//! over cores and sockets — the raw material for verifying statements like
//! "Nest places the tasks on only two cores" (§5.2).

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use nest_simcore::json::{self, Json};
use nest_simcore::{snap, PlacementPath, Probe, Time, TraceEvent};

/// Registry kind under which [`PlacementProbe`] snapshots itself.
pub const PLACEMENT_PROBE_KIND: &str = "metrics.placement";

/// Placement counters; obtain via [`PlacementProbe::new`].
#[derive(Debug, Default)]
pub struct PlacementCounts {
    /// Placements per mechanism.
    pub by_path: HashMap<PlacementPath, u64>,
    /// Placements per core index.
    pub by_core: Vec<u64>,
}

impl PlacementCounts {
    /// Total placements observed.
    pub fn total(&self) -> u64 {
        self.by_path.values().sum()
    }

    /// Count for one mechanism.
    pub fn count(&self, path: PlacementPath) -> u64 {
        self.by_path.get(&path).copied().unwrap_or(0)
    }

    /// Number of distinct cores that received any placement.
    pub fn distinct_cores(&self) -> usize {
        self.by_core.iter().filter(|&&c| c > 0).count()
    }

    /// Number of distinct sockets used, given cores per socket.
    pub fn distinct_sockets(&self, cores_per_socket: usize) -> usize {
        let mut used = std::collections::HashSet::new();
        for (core, &n) in self.by_core.iter().enumerate() {
            if n > 0 {
                used.insert(core / cores_per_socket);
            }
        }
        used.len()
    }
}

/// Probe counting placement decisions.
pub struct PlacementProbe {
    data: Rc<RefCell<PlacementCounts>>,
    by_path: HashMap<PlacementPath, u64>,
    by_core: Vec<u64>,
}

impl PlacementProbe {
    /// Creates the probe and its shared result handle.
    pub fn new(n_cores: usize) -> (PlacementProbe, Rc<RefCell<PlacementCounts>>) {
        let data = Rc::new(RefCell::new(PlacementCounts::default()));
        (
            PlacementProbe {
                data: Rc::clone(&data),
                by_path: HashMap::new(),
                by_core: vec![0; n_cores],
            },
            data,
        )
    }
}

impl Probe for PlacementProbe {
    fn on_event(&mut self, _now: Time, event: &TraceEvent) {
        if let TraceEvent::Placed { core, path, .. } = event {
            *self.by_path.entry(*path).or_insert(0) += 1;
            self.by_core[core.index()] += 1;
        }
    }

    fn on_finish(&mut self, _now: Time) {
        let mut d = self.data.borrow_mut();
        d.by_path = std::mem::take(&mut self.by_path);
        d.by_core = std::mem::take(&mut self.by_core);
    }

    fn snap(&self) -> Option<(&'static str, Json)> {
        // Path counters travel densely in `PlacementPath::ALL` order so
        // the bytes do not depend on HashMap iteration order.
        Some((
            PLACEMENT_PROBE_KIND,
            json::obj(vec![
                (
                    "by_path",
                    Json::Arr(
                        PlacementPath::ALL
                            .iter()
                            .map(|p| Json::u64(self.by_path.get(p).copied().unwrap_or(0)))
                            .collect(),
                    ),
                ),
                (
                    "by_core",
                    Json::Arr(self.by_core.iter().map(|&n| Json::u64(n)).collect()),
                ),
            ]),
        ))
    }

    fn snap_restore(&mut self, state: &Json) -> Result<(), String> {
        let by_path = snap::get_arr(state, "by_path")?;
        if by_path.len() != PlacementPath::ALL.len() {
            return Err(format!(
                "placement snapshot has {} path counters, expected {}",
                by_path.len(),
                PlacementPath::ALL.len()
            ));
        }
        self.by_path.clear();
        for (path, n) in PlacementPath::ALL.iter().zip(by_path) {
            let n = snap::elem_u64(n)?;
            if n > 0 {
                self.by_path.insert(*path, n);
            }
        }
        let by_core = snap::get_arr(state, "by_core")?;
        if by_core.len() != self.by_core.len() {
            return Err(format!(
                "placement snapshot has {} cores, the machine has {}",
                by_core.len(),
                self.by_core.len()
            ));
        }
        for (slot, n) in self.by_core.iter_mut().zip(by_core) {
            *slot = snap::elem_u64(n)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nest_simcore::{CoreId, TaskId};

    #[test]
    fn counts_by_path_and_core() {
        let (mut p, d) = PlacementProbe::new(8);
        for (core, path) in [
            (0, PlacementPath::NestPrimary),
            (0, PlacementPath::NestPrimary),
            (5, PlacementPath::NestFallback),
        ] {
            p.on_event(
                Time::ZERO,
                &TraceEvent::Placed {
                    task: TaskId(0),
                    core: CoreId(core),
                    path,
                },
            );
        }
        p.on_finish(Time::ZERO);
        let d = d.borrow();
        assert_eq!(d.total(), 3);
        assert_eq!(d.count(PlacementPath::NestPrimary), 2);
        assert_eq!(d.count(PlacementPath::CfsFork), 0);
        assert_eq!(d.distinct_cores(), 2);
        assert_eq!(d.distinct_sockets(4), 2);
        assert_eq!(d.distinct_sockets(8), 1);
    }
}
