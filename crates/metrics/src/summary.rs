//! Plain-data, serializable summaries of a simulation run.
//!
//! A [`RunSummary`] carries every per-run metric the paper's figures
//! consume — completion time, energy, underload, frequency residency,
//! placement spread, wakeup-latency percentiles — as plain owned data with
//! no interior mutability. That makes it `Send`, comparable, and cheap to
//! serialize, which is what the experiment harness needs to fan runs out
//! across worker threads, memoize them in the on-disk result cache, and
//! emit them into JSON artifacts.
//!
//! Heavy raw data (execution traces, individual latency samples) is
//! deliberately *not* carried: trace figures use the uncached raw-run path.

use crate::fleet::FleetSummary;
use crate::freqdist::FreqResidency;
use crate::latency::WakeupLatencies;
use crate::placement::PlacementCounts;
use crate::serve::ServeSummary;
use crate::underload::UnderloadData;

/// Wakeup-latency percentiles of one run (nanoseconds).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LatencySummary {
    /// Median, or `None` with no samples.
    pub p50_ns: Option<u64>,
    /// 99th percentile.
    pub p99_ns: Option<u64>,
    /// 99.9th percentile — schbench's headline metric.
    pub p999_ns: Option<u64>,
    /// Mean latency.
    pub mean_ns: Option<f64>,
    /// Number of wakeups observed.
    pub samples: usize,
}

impl LatencySummary {
    /// Summarizes collected latencies.
    pub fn from_latencies(l: &WakeupLatencies) -> LatencySummary {
        LatencySummary {
            p50_ns: l.p50(),
            p99_ns: l.p99(),
            p999_ns: l.p999(),
            mean_ns: l.mean(),
            samples: l.samples.len(),
        }
    }
}

/// Every scalar metric of one run, as plain data.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunSummary {
    /// Wall-clock completion time in (simulated) seconds.
    pub time_s: f64,
    /// CPU energy in joules.
    pub energy_j: f64,
    /// The Figure 4 metric: underload per second over 1 s windows.
    pub underload_per_s: f64,
    /// Sum of per-4ms-interval underloads (the Figure 3 total).
    pub total_underload: u64,
    /// Frequency-residency bucket upper edges in GHz.
    pub freq_edges_ghz: Vec<f64>,
    /// Busy nanoseconds attributed to each bucket.
    pub freq_busy_ns: Vec<u64>,
    /// Placements per mechanism, sorted by mechanism label so the order
    /// (and any serialization of it) is deterministic.
    pub placements: Vec<(String, u64)>,
    /// Number of distinct cores that received any placement.
    pub distinct_cores: usize,
    /// Wakeup-latency percentiles.
    pub latency: LatencySummary,
    /// Total tasks created.
    pub total_tasks: usize,
    /// Whether the horizon cut the run short.
    pub hit_horizon: bool,
    /// Request-serving metrics; `None` unless the workload carried serve
    /// specs, so non-serving runs serialize exactly as before.
    pub serve: Option<ServeSummary>,
    /// Fleet (multi-host) metrics; `None` unless the workload ran under a
    /// `fleet:` front-end, so single-host runs serialize exactly as before.
    pub fleet: Option<FleetSummary>,
}

impl RunSummary {
    /// Builds a summary from the probe outputs of one run. One parameter
    /// per probe, mirroring `RunResult`'s fields.
    #[allow(clippy::too_many_arguments)]
    pub fn collect(
        time_s: f64,
        energy_j: f64,
        underload: &UnderloadData,
        freq: &FreqResidency,
        placements: &PlacementCounts,
        latency: &WakeupLatencies,
        total_tasks: usize,
        hit_horizon: bool,
    ) -> RunSummary {
        let mut by_path: Vec<(String, u64)> = placements
            .by_path
            .iter()
            .map(|(p, n)| (format!("{p:?}"), *n))
            .collect();
        by_path.sort();
        RunSummary {
            time_s,
            energy_j,
            underload_per_s: underload.underload_per_second(),
            total_underload: underload.total_underload(),
            freq_edges_ghz: freq.edges_ghz.clone(),
            freq_busy_ns: freq.busy_ns.clone(),
            placements: by_path,
            distinct_cores: placements.distinct_cores(),
            latency: LatencySummary::from_latencies(latency),
            total_tasks,
            hit_horizon,
            serve: None,
            fleet: None,
        }
    }

    /// Total busy time across all frequency buckets.
    pub fn total_busy_ns(&self) -> u64 {
        self.freq_busy_ns.iter().sum()
    }

    /// Fraction of busy time per frequency bucket (sums to 1 when any
    /// work ran); mirrors [`FreqResidency::fractions`].
    pub fn freq_fractions(&self) -> Vec<f64> {
        let total = self.total_busy_ns();
        if total == 0 {
            return vec![0.0; self.freq_busy_ns.len()];
        }
        self.freq_busy_ns
            .iter()
            .map(|&ns| ns as f64 / total as f64)
            .collect()
    }

    /// Fraction of busy time spent in the top `n` buckets.
    pub fn top_fraction(&self, n: usize) -> f64 {
        self.freq_fractions().iter().rev().take(n).sum()
    }

    /// Renders bucket labels like `(1.0, 1.6]`; mirrors
    /// [`FreqResidency::labels`].
    pub fn freq_labels(&self) -> Vec<String> {
        let mut lo = 0.0;
        self.freq_edges_ghz
            .iter()
            .map(|&hi| {
                let s = format!("({lo:.1}, {hi:.1}]");
                lo = hi;
                s
            })
            .collect()
    }

    /// Total placements observed.
    pub fn total_placements(&self) -> u64 {
        self.placements.iter().map(|(_, n)| n).sum()
    }

    /// Placement count for the mechanism with the given debug label
    /// (e.g. `"NestPrimary"`).
    pub fn placement_count(&self, path_label: &str) -> u64 {
        self.placements
            .iter()
            .find(|(l, _)| l == path_label)
            .map_or(0, |(_, n)| *n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunSummary {
        RunSummary {
            time_s: 2.0,
            energy_j: 100.0,
            freq_edges_ghz: vec![1.0, 2.0, 3.0],
            freq_busy_ns: vec![100, 300, 600],
            placements: vec![("CfsFork".into(), 3), ("NestPrimary".into(), 7)],
            ..RunSummary::default()
        }
    }

    #[test]
    fn fractions_and_top() {
        let s = sample();
        let f = s.freq_fractions();
        assert!((f[0] - 0.1).abs() < 1e-12);
        assert!((f[2] - 0.6).abs() < 1e-12);
        assert!((s.top_fraction(2) - 0.9).abs() < 1e-12);
        assert_eq!(s.freq_labels()[1], "(1.0, 2.0]");
    }

    #[test]
    fn empty_busy_time_gives_zero_fractions() {
        let s = RunSummary {
            freq_busy_ns: vec![0, 0],
            freq_edges_ghz: vec![1.0, 2.0],
            ..RunSummary::default()
        };
        assert_eq!(s.freq_fractions(), vec![0.0, 0.0]);
        assert_eq!(s.top_fraction(2), 0.0);
    }

    #[test]
    fn placement_lookup() {
        let s = sample();
        assert_eq!(s.total_placements(), 10);
        assert_eq!(s.placement_count("NestPrimary"), 7);
        assert_eq!(s.placement_count("Smove"), 0);
    }
}
