//! Run statistics and speedup computation, matching the paper's
//! measurement protocol (§5.1): average over N runs, report the standard
//! deviation, and normalize speedups so 0 % means identical performance.

/// Mean and standard deviation of a sample set.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Stats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Sample count.
    pub n: usize,
}

impl Stats {
    /// Computes statistics over samples.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn from_samples(samples: &[f64]) -> Stats {
        assert!(!samples.is_empty(), "no samples");
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        Stats {
            mean,
            std: var.sqrt(),
            n,
        }
    }

    /// Standard deviation as a percentage of the mean (the "±X%" the
    /// paper prints atop its graphs).
    pub fn std_pct(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            100.0 * self.std / self.mean.abs()
        }
    }
}

/// Speedup of `new` over `baseline` for a lower-is-better metric
/// (running time, energy): `baseline/new - 1`, as a percentage.
///
/// 0 means identical, positive means improvement — the paper's
/// normalization (§5.1).
///
/// # Examples
///
/// ```
/// use nest_metrics::stats::speedup_pct;
///
/// // Halving the runtime is a 100% speedup.
/// assert_eq!(speedup_pct(10.0, 5.0), 100.0);
/// // A 25% slowdown.
/// assert!((speedup_pct(10.0, 12.5) - -20.0).abs() < 1e-9);
/// ```
pub fn speedup_pct(baseline: f64, new: f64) -> f64 {
    assert!(baseline > 0.0 && new > 0.0, "times must be positive");
    100.0 * (baseline / new - 1.0)
}

/// Improvement of `new` over `baseline` for a higher-is-better metric
/// (throughput): `new/baseline - 1`, as a percentage.
pub fn improvement_pct(baseline: f64, new: f64) -> f64 {
    assert!(baseline > 0.0 && new > 0.0, "values must be positive");
    100.0 * (new / baseline - 1.0)
}

/// Energy savings of `new` versus `baseline` as a percentage (positive =
/// less energy used), the normalization of Figure 7.
pub fn savings_pct(baseline: f64, new: f64) -> f64 {
    assert!(baseline > 0.0, "baseline must be positive");
    100.0 * (1.0 - new / baseline)
}

/// The per-run standard deviation of an improvement series, computed the
/// paper's way (§5.1): each run of the candidate is compared against the
/// *average* of the baseline.
pub fn improvement_stats(baseline_mean: f64, candidate_runs: &[f64]) -> Stats {
    let speedups: Vec<f64> = candidate_runs
        .iter()
        .map(|&r| speedup_pct(baseline_mean, r))
        .collect();
    Stats::from_samples(&speedups)
}

/// Buckets a speedup percentage into the Table 4 bands.
///
/// Returns one of `"slower>20"`, `"slower5to20"`, `"same"`,
/// `"faster5to20"`, `"faster>20"`.
pub fn table4_band(speedup_pct: f64) -> &'static str {
    if speedup_pct < -20.0 {
        "slower>20"
    } else if speedup_pct < -5.0 {
        "slower5to20"
    } else if speedup_pct <= 5.0 {
        "same"
    } else if speedup_pct <= 20.0 {
        "faster5to20"
    } else {
        "faster>20"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_basic() {
        let s = Stats::from_samples(&[2.0, 4.0, 6.0]);
        assert!((s.mean - 4.0).abs() < 1e-12);
        assert!((s.std - (8.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.n, 3);
    }

    #[test]
    fn std_pct_relative_to_mean() {
        let s = Stats::from_samples(&[9.0, 11.0]);
        assert!((s.std_pct() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn speedup_sign_conventions() {
        assert_eq!(speedup_pct(10.0, 10.0), 0.0);
        assert!(speedup_pct(10.0, 8.0) > 0.0);
        assert!(speedup_pct(10.0, 12.0) < 0.0);
        assert!(improvement_pct(100.0, 125.0) - 25.0 < 1e-9);
        assert!((savings_pct(100.0, 81.0) - 19.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn speedup_rejects_zero() {
        speedup_pct(0.0, 1.0);
    }

    #[test]
    fn improvement_stats_use_baseline_mean() {
        let s = improvement_stats(10.0, &[10.0, 5.0]);
        assert_eq!(s.n, 2);
        assert!((s.mean - 50.0).abs() < 1e-9); // (0% + 100%) / 2
    }

    #[test]
    fn table4_bands() {
        assert_eq!(table4_band(-30.0), "slower>20");
        assert_eq!(table4_band(-10.0), "slower5to20");
        assert_eq!(table4_band(0.0), "same");
        assert_eq!(table4_band(5.0), "same");
        assert_eq!(table4_band(10.0), "faster5to20");
        assert_eq!(table4_band(45.0), "faster>20");
    }
}
