//! Request-serving tail-latency and SLO metrics.
//!
//! [`ServeMetricsProbe`] watches one run's trace for the request tasks the
//! serve subsystem injects (labels starting with
//! [`nest_serve::REQUEST_LABEL_PREFIX`]) and measures each request's
//! arrival→completion latency: the span from the task's creation event —
//! the instant the open-loop arrival process wakes it — to its exit, which
//! for fan-out requests only happens after every sub-task has finished.
//! Latencies accumulate into a [`TailHistogram`], so per-run metrics merge
//! order-independently into per-cell aggregates exactly like
//! `decision_metrics`, and p50/p99/p999 stay accurate at the tail.
//!
//! [`ServeMetrics`] is the mergeable aggregate written into
//! `.telemetry.json`; [`ServeSummary`] is its plain-scalar projection
//! carried inside `RunSummary` (and therefore through the result cache and
//! figure artifacts).

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use nest_serve::REQUEST_LABEL_PREFIX;
use nest_simcore::json::{obj, Json};
use nest_simcore::{snap, Probe, TaskId, Time, TraceEvent};

use crate::tail::TailHistogram;

/// Registry kind under which [`ServeMetricsProbe`] snapshots itself.
pub const SERVE_METRICS_PROBE_KIND: &str = "metrics.serve";

/// Aggregated request-serving metrics over one or more runs.
///
/// Every field is an order-independent sum (the histogram merges
/// bucket-wise; `slo_ns` is the first spec's SLO and identical across the
/// runs of one cell), so merging in any grouping yields the same values.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServeMetrics {
    /// Runs merged into this aggregate.
    pub runs: u64,
    /// Requests that arrived (request tasks created) across those runs.
    pub offered: u64,
    /// Requests that completed (request tasks exited).
    pub completed: u64,
    /// Completed requests whose latency was within their spec's SLO.
    pub within_slo: u64,
    /// The SLO bound (ns) of the first serve spec, for reporting.
    pub slo_ns: u64,
    /// Total simulated nanoseconds across the merged runs.
    pub sim_ns: u64,
    /// CPU energy in joules across the merged runs (filled in by the
    /// run driver from the frequency model's energy integral).
    pub energy_j: f64,
    /// Arrival→completion latency histogram.
    pub hist: TailHistogram,
}

impl ServeMetrics {
    /// Folds `other` into `self`.
    pub fn merge(&mut self, other: &ServeMetrics) {
        self.runs += other.runs;
        self.offered += other.offered;
        self.completed += other.completed;
        self.within_slo += other.within_slo;
        if self.slo_ns == 0 {
            self.slo_ns = other.slo_ns;
        }
        self.sim_ns += other.sim_ns;
        self.energy_j += other.energy_j;
        self.hist.merge(&other.hist);
    }

    /// Simulated seconds across all runs.
    pub fn sim_secs(&self) -> f64 {
        self.sim_ns as f64 / 1e9
    }

    /// SLO-conformant completions per simulated second — the goodput the
    /// serving lens optimizes for.
    pub fn goodput_per_s(&self) -> Option<f64> {
        (self.sim_ns > 0).then(|| self.within_slo as f64 / self.sim_secs())
    }

    /// Requests offered per simulated second (the realized arrival rate).
    pub fn offered_per_s(&self) -> Option<f64> {
        (self.sim_ns > 0).then(|| self.offered as f64 / self.sim_secs())
    }

    /// Joules of CPU energy per completed request.
    pub fn energy_per_request_j(&self) -> Option<f64> {
        (self.completed > 0).then(|| self.energy_j / self.completed as f64)
    }

    /// Fraction of completed requests within their SLO.
    pub fn slo_fraction(&self) -> Option<f64> {
        (self.completed > 0).then(|| self.within_slo as f64 / self.completed as f64)
    }

    /// Serializes the metrics as the `serve_metrics` telemetry block.
    pub fn to_json(&self) -> Json {
        obj(vec![
            ("runs", Json::u64(self.runs)),
            ("sim_ns", Json::u64(self.sim_ns)),
            ("offered", Json::u64(self.offered)),
            ("completed", Json::u64(self.completed)),
            ("within_slo", Json::u64(self.within_slo)),
            ("slo_ns", Json::u64(self.slo_ns)),
            (
                "latency",
                obj(vec![
                    ("p50_ns", Json::opt_u64(self.hist.quantile(0.50))),
                    ("p99_ns", Json::opt_u64(self.hist.quantile(0.99))),
                    ("p999_ns", Json::opt_u64(self.hist.quantile(0.999))),
                    ("mean_ns", Json::opt_f64(self.hist.mean())),
                    ("samples", Json::u64(self.hist.len())),
                ]),
            ),
            ("offered_per_s", Json::opt_f64(self.offered_per_s())),
            ("goodput_per_s", Json::opt_f64(self.goodput_per_s())),
            ("slo_fraction", Json::opt_f64(self.slo_fraction())),
            ("energy_j", Json::f64(self.energy_j)),
            (
                "energy_per_request_j",
                Json::opt_f64(self.energy_per_request_j()),
            ),
        ])
    }
}

/// Plain-scalar projection of one run's [`ServeMetrics`], carried inside
/// `RunSummary` so it flows through the result cache and into figure
/// artifacts.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServeSummary {
    /// Requests that arrived during the run.
    pub offered: u64,
    /// Requests that completed.
    pub completed: u64,
    /// Completions within the SLO.
    pub within_slo: u64,
    /// The SLO bound in nanoseconds.
    pub slo_ns: u64,
    /// Median arrival→completion latency.
    pub p50_ns: Option<u64>,
    /// 99th percentile latency.
    pub p99_ns: Option<u64>,
    /// 99.9th percentile latency — the headline tail metric.
    pub p999_ns: Option<u64>,
    /// Mean latency.
    pub mean_ns: Option<f64>,
    /// SLO-conformant completions per simulated second.
    pub goodput_per_s: Option<f64>,
    /// Joules per completed request.
    pub energy_per_request_j: Option<f64>,
}

impl ServeSummary {
    /// Projects a single run's metrics down to summary scalars.
    pub fn from_metrics(m: &ServeMetrics) -> ServeSummary {
        ServeSummary {
            offered: m.offered,
            completed: m.completed,
            within_slo: m.within_slo,
            slo_ns: m.slo_ns,
            p50_ns: m.hist.quantile(0.50),
            p99_ns: m.hist.quantile(0.99),
            p999_ns: m.hist.quantile(0.999),
            mean_ns: m.hist.mean(),
            goodput_per_s: m.goodput_per_s(),
            energy_per_request_j: m.energy_per_request_j(),
        }
    }
}

/// A probe computing [`ServeMetrics`] over one run.
///
/// Constructed with one SLO bound per serve spec, indexed by the plan
/// index embedded in each request label (`req:{plan}:{i}`), so colocated
/// serve streams with different SLOs are judged against their own bound.
pub struct ServeMetricsProbe {
    out: Rc<RefCell<ServeMetrics>>,
    m: ServeMetrics,
    slos: Vec<u64>,
    arrived: HashMap<TaskId, (Time, u64)>,
}

impl ServeMetricsProbe {
    /// Creates a probe for serve plans with the given SLO bounds (ns).
    /// The handle receives the metrics after the run finishes.
    pub fn new(slos: Vec<u64>) -> (ServeMetricsProbe, Rc<RefCell<ServeMetrics>>) {
        assert!(!slos.is_empty(), "serve probe needs at least one SLO");
        let out = Rc::new(RefCell::new(ServeMetrics::default()));
        let probe = ServeMetricsProbe {
            out: Rc::clone(&out),
            m: ServeMetrics::default(),
            slos,
            arrived: HashMap::new(),
        };
        (probe, out)
    }
}

impl Probe for ServeMetricsProbe {
    fn on_event(&mut self, now: Time, event: &TraceEvent) {
        match event {
            TraceEvent::TaskCreated { task, label, .. } => {
                let Some(rest) = label.strip_prefix(REQUEST_LABEL_PREFIX) else {
                    return;
                };
                let plan: usize = rest
                    .split(':')
                    .next()
                    .and_then(|p| p.parse().ok())
                    .expect("request label must embed its plan index");
                let slo = *self.slos.get(plan).expect("plan index within SLO table");
                self.m.offered += 1;
                self.arrived.insert(*task, (now, slo));
            }
            TraceEvent::TaskExited { task } => {
                if let Some((arrived, slo)) = self.arrived.remove(task) {
                    let ns = now.saturating_since(arrived);
                    self.m.hist.record(ns);
                    self.m.completed += 1;
                    if ns <= slo {
                        self.m.within_slo += 1;
                    }
                }
            }
            _ => {}
        }
    }

    fn on_finish(&mut self, now: Time) {
        self.m.sim_ns = now.as_nanos();
        self.m.runs = 1;
        self.m.slo_ns = self.slos[0];
        *self.out.borrow_mut() = std::mem::take(&mut self.m);
    }

    fn snap(&self) -> Option<(&'static str, Json)> {
        // The SLO table comes from construction (it is part of the
        // scenario); only the accumulated counters and in-flight requests
        // travel, with the arrived map sorted by task id for stable bytes.
        let mut arrived: Vec<(&TaskId, &(Time, u64))> = self.arrived.iter().collect();
        arrived.sort_by_key(|(task, _)| task.0);
        Some((
            SERVE_METRICS_PROBE_KIND,
            obj(vec![
                ("offered", Json::u64(self.m.offered)),
                ("completed", Json::u64(self.m.completed)),
                ("within_slo", Json::u64(self.m.within_slo)),
                ("hist", self.m.hist.save()),
                (
                    "arrived",
                    Json::Arr(
                        arrived
                            .into_iter()
                            .map(|(task, &(at, slo))| {
                                Json::Arr(vec![
                                    Json::u64(task.0 as u64),
                                    snap::time_json(at),
                                    Json::u64(slo),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ))
    }

    fn snap_restore(&mut self, state: &Json) -> Result<(), String> {
        self.m.offered = snap::get_u64(state, "offered")?;
        self.m.completed = snap::get_u64(state, "completed")?;
        self.m.within_slo = snap::get_u64(state, "within_slo")?;
        self.m.hist = TailHistogram::load(snap::field(state, "hist")?)?;
        self.arrived.clear();
        for entry in snap::get_arr(state, "arrived")? {
            let items = entry.as_arr().ok_or("arrived entry is not a triple")?;
            if items.len() != 3 {
                return Err("arrived entry is not a [task, time, slo] triple".to_string());
            }
            self.arrived.insert(
                TaskId(snap::elem_u64(&items[0])? as u32),
                (
                    Time::from_nanos(snap::elem_u64(&items[1])?),
                    snap::elem_u64(&items[2])?,
                ),
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn created(task: u32, label: &str) -> TraceEvent {
        TraceEvent::TaskCreated {
            task: TaskId(task),
            label: label.to_string(),
            parent: None,
        }
    }

    fn exited(task: u32) -> TraceEvent {
        TraceEvent::TaskExited { task: TaskId(task) }
    }

    #[test]
    fn pairs_request_creation_with_exit() {
        let (mut p, out) = ServeMetricsProbe::new(vec![1_000_000]);
        let t = Time::from_nanos;
        p.on_event(t(100), &created(1, "req:0:0"));
        p.on_event(t(200), &created(2, "worker-3"));
        p.on_event(t(500_100), &exited(1));
        p.on_event(t(700_000), &exited(2));
        p.on_finish(t(1_000_000));
        let m = out.borrow();
        assert_eq!(m.offered, 1, "non-request tasks are ignored");
        assert_eq!(m.completed, 1);
        assert_eq!(m.within_slo, 1);
        assert_eq!(m.hist.quantile(1.0), Some(500_000));
        assert_eq!(m.runs, 1);
        assert_eq!(m.sim_ns, 1_000_000);
        assert_eq!(m.slo_ns, 1_000_000);
    }

    #[test]
    fn slo_is_judged_per_plan() {
        let (mut p, out) = ServeMetricsProbe::new(vec![1_000, 1_000_000]);
        let t = Time::from_nanos;
        p.on_event(t(0), &created(1, "req:0:0"));
        p.on_event(t(0), &created(2, "req:1:0"));
        // Both take 5 µs: over plan 0's 1 µs SLO, within plan 1's 1 ms.
        p.on_event(t(5_000), &exited(1));
        p.on_event(t(5_000), &exited(2));
        p.on_finish(t(10_000));
        let m = out.borrow();
        assert_eq!(m.completed, 2);
        assert_eq!(m.within_slo, 1);
        assert_eq!(m.slo_fraction(), Some(0.5));
    }

    #[test]
    fn unfinished_requests_count_as_offered_only() {
        let (mut p, out) = ServeMetricsProbe::new(vec![1_000]);
        let t = Time::from_nanos;
        p.on_event(t(0), &created(1, "req:0:0"));
        p.on_finish(t(1_000_000_000));
        let m = out.borrow();
        assert_eq!(m.offered, 1);
        assert_eq!(m.completed, 0);
        assert_eq!(m.goodput_per_s(), Some(0.0));
        assert_eq!(m.energy_per_request_j(), None);
    }

    #[test]
    fn merge_is_order_independent() {
        let mk = |latency: u64, within: bool| {
            let (mut p, out) = ServeMetricsProbe::new(vec![10_000]);
            let t = Time::from_nanos;
            p.on_event(t(0), &created(1, "req:0:0"));
            p.on_event(t(latency), &exited(1));
            p.on_finish(t(1_000_000));
            let mut m = out.borrow().clone();
            m.energy_j = if within { 1.0 } else { 2.0 };
            m
        };
        let a = mk(5_000, true);
        let b = mk(50_000, false);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.runs, 2);
        assert_eq!(ab.offered, 2);
        assert_eq!(ab.within_slo, 1);
        assert_eq!(ab.energy_j, 3.0);
        assert_eq!(ab.hist.quantile(1.0), Some(50_000));
    }

    #[test]
    fn json_block_has_the_documented_fields_and_round_trips() {
        let (mut p, out) = ServeMetricsProbe::new(vec![2_000_000]);
        let t = Time::from_nanos;
        p.on_event(t(0), &created(1, "req:0:0"));
        p.on_event(t(1_500_000), &exited(1));
        p.on_finish(t(1_000_000_000));
        let mut m = out.borrow().clone();
        m.energy_j = 0.5;
        let json = m.to_json();
        for key in [
            "runs",
            "sim_ns",
            "offered",
            "completed",
            "within_slo",
            "slo_ns",
            "latency",
            "offered_per_s",
            "goodput_per_s",
            "slo_fraction",
            "energy_j",
            "energy_per_request_j",
        ] {
            assert!(json.get(key).is_some(), "missing {key}");
        }
        let text = json.to_pretty();
        assert_eq!(nest_simcore::json::parse(&text).unwrap(), json);
    }

    #[test]
    fn summary_projects_the_scalars() {
        let (mut p, out) = ServeMetricsProbe::new(vec![2_000_000]);
        let t = Time::from_nanos;
        p.on_event(t(0), &created(1, "req:0:0"));
        p.on_event(t(1_000_000), &exited(1));
        p.on_finish(t(2_000_000_000));
        let mut m = out.borrow().clone();
        m.energy_j = 4.0;
        let s = ServeSummary::from_metrics(&m);
        assert_eq!(s.offered, 1);
        assert_eq!(s.completed, 1);
        assert_eq!(s.within_slo, 1);
        assert_eq!(s.slo_ns, 2_000_000);
        assert_eq!(s.p50_ns, Some(1_000_000));
        assert_eq!(s.p999_ns, Some(1_000_000));
        assert_eq!(s.goodput_per_s, Some(0.5));
        assert_eq!(s.energy_per_request_j, Some(4.0));
    }
}
