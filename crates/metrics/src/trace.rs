//! Execution-trace collection for the paper's core/frequency trace plots
//! (Figures 2, 8, 9).
//!
//! Records, for each core, the busy spans with the frequency in effect,
//! splitting spans on frequency changes, and renders an ASCII heat strip
//! usable in harness output.

use std::cell::RefCell;
use std::rc::Rc;

use nest_simcore::{Freq, Probe, Time, TraceEvent};

/// One busy span of a core at a fixed frequency.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Span {
    /// Core the span ran on.
    pub core: u32,
    /// Span start.
    pub start: Time,
    /// Span end.
    pub end: Time,
    /// Frequency in effect during the span, GHz.
    pub freq_ghz: f64,
}

/// Collected execution trace; obtain via [`ExecutionTraceProbe::new`].
#[derive(Debug, Default)]
pub struct ExecutionTrace {
    /// All busy spans, in completion order.
    pub spans: Vec<Span>,
    /// End of the observation.
    pub duration: Time,
}

impl ExecutionTrace {
    /// Cores that ran anything, ascending.
    pub fn cores_used(&self) -> Vec<u32> {
        let mut cores: Vec<u32> = self.spans.iter().map(|s| s.core).collect();
        cores.sort_unstable();
        cores.dedup();
        cores
    }

    /// Fraction of busy time spent within the frequency band `(lo, hi]`
    /// GHz.
    ///
    /// The band is half-open on the *left*: a span running at exactly
    /// `lo` GHz is excluded, one at exactly `hi` GHz is included. This
    /// way adjacent bands `(a, b]`, `(b, c]` partition the busy time —
    /// a span on the shared edge `b` counts toward the lower band only —
    /// which the figure binaries rely on when stacking residency bands.
    /// Returns `0.0` when the trace has no busy time at all.
    pub fn busy_fraction_in(&self, lo: f64, hi: f64) -> f64 {
        let total: u64 = self.spans.iter().map(|s| s.end - s.start).sum();
        if total == 0 {
            return 0.0;
        }
        let in_range: u64 = self
            .spans
            .iter()
            .filter(|s| s.freq_ghz > lo && s.freq_ghz <= hi)
            .map(|s| s.end - s.start)
            .sum();
        in_range as f64 / total as f64
    }

    /// Renders one text row per used core; each column is a time slot of
    /// `slot_ns`, shown as `.` (idle) or a digit 1-9 scaling with
    /// frequency relative to `fmax_ghz`.
    pub fn render_ascii(&self, slot_ns: u64, fmax_ghz: f64) -> String {
        let cores = self.cores_used();
        if cores.is_empty() {
            return String::from("(no activity)\n");
        }
        let slots = (self.duration.as_nanos() / slot_ns + 1) as usize;
        let mut out = String::new();
        for &core in &cores {
            let mut row = vec![b'.'; slots.min(400)];
            let width = row.len();
            for s in self.spans.iter().filter(|s| s.core == core) {
                let a = ((s.start.as_nanos() / slot_ns) as usize).min(width - 1);
                let b = ((s.end.as_nanos() / slot_ns) as usize).min(width - 1);
                let level = ((s.freq_ghz / fmax_ghz) * 9.0).round().clamp(1.0, 9.0) as u8;
                for slot in row.iter_mut().take(b + 1).skip(a) {
                    *slot = b'0' + level;
                }
            }
            out.push_str(&format!("core {core:>4} |"));
            out.push_str(std::str::from_utf8(&row).unwrap());
            out.push('\n');
        }
        out
    }
}

/// Probe recording busy spans with frequencies.
pub struct ExecutionTraceProbe {
    data: Rc<RefCell<ExecutionTrace>>,
    busy_since: Vec<Option<Time>>,
    freq: Vec<Freq>,
    spans: Vec<Span>,
}

impl ExecutionTraceProbe {
    /// Creates the probe with all cores initially at `initial` frequency.
    pub fn new(
        n_cores: usize,
        initial: Freq,
    ) -> (ExecutionTraceProbe, Rc<RefCell<ExecutionTrace>>) {
        let data = Rc::new(RefCell::new(ExecutionTrace::default()));
        (
            ExecutionTraceProbe {
                data: Rc::clone(&data),
                busy_since: vec![None; n_cores],
                freq: vec![initial; n_cores],
                spans: Vec::new(),
            },
            data,
        )
    }

    fn close(&mut self, core: usize, now: Time, reopen: bool) {
        if let Some(start) = self.busy_since[core] {
            if now > start {
                self.spans.push(Span {
                    core: core as u32,
                    start,
                    end: now,
                    freq_ghz: self.freq[core].as_ghz(),
                });
            }
            self.busy_since[core] = reopen.then_some(now);
        }
    }
}

impl Probe for ExecutionTraceProbe {
    fn on_event(&mut self, now: Time, event: &TraceEvent) {
        match event {
            TraceEvent::RunStart { core, .. } => {
                self.busy_since[core.index()] = Some(now);
            }
            TraceEvent::RunStop { core, .. } => {
                self.close(core.index(), now, false);
            }
            TraceEvent::FreqChange { core, freq } => {
                self.close(core.index(), now, true);
                self.freq[core.index()] = *freq;
            }
            _ => {}
        }
    }

    fn on_finish(&mut self, now: Time) {
        for c in 0..self.busy_since.len() {
            self.close(c, now, false);
        }
        let mut d = self.data.borrow_mut();
        d.spans = std::mem::take(&mut self.spans);
        d.duration = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nest_simcore::{CoreId, StopReason, TaskId};

    #[test]
    fn records_spans_split_on_freq_change() {
        let (mut p, d) = ExecutionTraceProbe::new(4, Freq::from_ghz(1.0));
        p.on_event(
            Time::ZERO,
            &TraceEvent::RunStart {
                task: TaskId(0),
                core: CoreId(2),
            },
        );
        p.on_event(
            Time::from_millis(3),
            &TraceEvent::FreqChange {
                core: CoreId(2),
                freq: Freq::from_ghz(3.0),
            },
        );
        p.on_event(
            Time::from_millis(7),
            &TraceEvent::RunStop {
                task: TaskId(0),
                core: CoreId(2),
                reason: StopReason::Exit,
            },
        );
        p.on_finish(Time::from_millis(7));
        let d = d.borrow();
        assert_eq!(d.spans.len(), 2);
        assert_eq!(d.spans[0].freq_ghz, 1.0);
        assert_eq!(d.spans[1].freq_ghz, 3.0);
        assert_eq!(d.cores_used(), vec![2]);
        // 3 ms at 1 GHz, 4 ms at 3 GHz.
        assert!((d.busy_fraction_in(0.0, 1.5) - 3.0 / 7.0).abs() < 1e-9);
        assert!((d.busy_fraction_in(1.5, 3.5) - 4.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn busy_fraction_band_is_left_open_right_closed() {
        let span = |freq_ghz: f64, start: u64, end: u64| Span {
            core: 0,
            start: Time::from_millis(start),
            end: Time::from_millis(end),
            freq_ghz,
        };
        let trace = ExecutionTrace {
            // 1 ms at exactly 1.0 GHz, 1 ms at exactly 2.0 GHz.
            spans: vec![span(1.0, 0, 1), span(2.0, 1, 2)],
            duration: Time::from_millis(2),
        };
        // A span at exactly `hi` is included, one at exactly `lo` is not:
        // the shared edge 1.0 belongs to (0.0, 1.0], not (1.0, 2.0].
        assert_eq!(trace.busy_fraction_in(0.0, 1.0), 0.5);
        assert_eq!(trace.busy_fraction_in(1.0, 2.0), 0.5);
        // Adjacent bands partition the busy time without double counting.
        let total = trace.busy_fraction_in(0.0, 1.0) + trace.busy_fraction_in(1.0, 2.0);
        assert_eq!(total, 1.0);
        assert_eq!(ExecutionTrace::default().busy_fraction_in(0.0, 4.0), 0.0);
    }

    #[test]
    fn ascii_render_has_one_row_per_core() {
        let (mut p, d) = ExecutionTraceProbe::new(4, Freq::from_ghz(2.0));
        for core in [0u32, 3] {
            p.on_event(
                Time::ZERO,
                &TraceEvent::RunStart {
                    task: TaskId(0),
                    core: CoreId(core),
                },
            );
            p.on_event(
                Time::from_millis(1),
                &TraceEvent::RunStop {
                    task: TaskId(0),
                    core: CoreId(core),
                    reason: StopReason::Exit,
                },
            );
        }
        p.on_finish(Time::from_millis(2));
        let s = d.borrow().render_ascii(500_000, 4.0);
        assert_eq!(s.lines().count(), 2);
        assert!(s.contains("core    0 |"));
        assert!(s.contains('5'), "2.0/4.0 GHz renders as level 5: {s}");
    }

    #[test]
    fn zero_length_spans_are_dropped() {
        let (mut p, d) = ExecutionTraceProbe::new(1, Freq::from_ghz(1.0));
        p.on_event(
            Time::ZERO,
            &TraceEvent::RunStart {
                task: TaskId(0),
                core: CoreId(0),
            },
        );
        p.on_event(
            Time::ZERO,
            &TraceEvent::RunStop {
                task: TaskId(0),
                core: CoreId(0),
                reason: StopReason::Block,
            },
        );
        p.on_finish(Time::from_millis(1));
        assert!(d.borrow().spans.is_empty());
    }
}
