//! The paper's *underload* metric (§5.2).
//!
//! Underload in a time interval is the difference between the number of
//! cores used at any point in the interval and the maximum number of tasks
//! simultaneously runnable in it. Positive underload means insufficient
//! core reuse: a long-idle (cold, slow) core was chosen although a warm
//! core used earlier in the interval would have sufficed.
//!
//! Two granularities are tracked, matching the paper's two uses:
//!
//! * 4 ms (one tick) intervals for the underload *timeline* (Figure 3);
//! * 1 s windows for the *underload per second* figure-of-merit
//!   (Figure 4): "the average amount of underload occurring within the
//!   execution of an application over 1 second".

use std::cell::RefCell;
use std::rc::Rc;

use nest_simcore::json::{self, Json};
use nest_simcore::{snap, Probe, Time, TraceEvent, SEC, TICK_NS};

/// Registry kind under which [`UnderloadProbe`] snapshots itself.
pub const UNDERLOAD_PROBE_KIND: &str = "metrics.underload";

/// Per-interval usage snapshot.
#[derive(Clone, Copy, Debug, Default)]
pub struct IntervalStat {
    /// Distinct cores that ran anything during the interval.
    pub cores_used: u32,
    /// Maximum simultaneously runnable tasks during the interval.
    pub max_runnable: u32,
}

impl IntervalStat {
    /// Positive part of `cores_used - max_runnable`.
    pub fn underload(&self) -> u32 {
        self.cores_used.saturating_sub(self.max_runnable)
    }
}

/// One fixed-size-window underload tracker.
struct WindowTracker {
    interval_ns: u64,
    cur_interval: usize,
    used_mark: Vec<Option<usize>>,
    intervals: Vec<IntervalStat>,
}

impl WindowTracker {
    fn new(n_cores: usize, interval_ns: u64) -> WindowTracker {
        WindowTracker {
            interval_ns,
            cur_interval: 0,
            used_mark: vec![None; n_cores],
            intervals: vec![IntervalStat::default()],
        }
    }

    fn roll_to(&mut self, now: Time, busy: &[bool], cur_runnable: u32) {
        let idx = (now.as_nanos() / self.interval_ns) as usize;
        while self.cur_interval < idx {
            self.cur_interval += 1;
            let mut stat = IntervalStat {
                cores_used: 0,
                max_runnable: cur_runnable,
            };
            // Cores busy across the boundary count in the new interval.
            for (c, &b) in busy.iter().enumerate() {
                if b {
                    stat.cores_used += 1;
                    self.used_mark[c] = Some(self.cur_interval);
                }
            }
            self.intervals.push(stat);
        }
    }

    fn mark_used(&mut self, core: usize) {
        if self.used_mark[core] != Some(self.cur_interval) {
            self.used_mark[core] = Some(self.cur_interval);
            self.intervals[self.cur_interval].cores_used += 1;
        }
    }

    fn note_runnable(&mut self, count: u32) {
        let cur = &mut self.intervals[self.cur_interval];
        cur.max_runnable = cur.max_runnable.max(count);
    }

    fn save(&self) -> Json {
        json::obj(vec![
            ("cur_interval", Json::usize(self.cur_interval)),
            (
                "used_mark",
                Json::Arr(
                    self.used_mark
                        .iter()
                        .map(|m| Json::opt_u64(m.map(|i| i as u64)))
                        .collect(),
                ),
            ),
            (
                "intervals",
                Json::Arr(
                    self.intervals
                        .iter()
                        .map(|s| {
                            json::obj(vec![
                                ("cores_used", Json::u64(s.cores_used as u64)),
                                ("max_runnable", Json::u64(s.max_runnable as u64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    fn load(&mut self, state: &Json) -> Result<(), String> {
        self.cur_interval = snap::get_usize(state, "cur_interval")?;
        let marks = snap::get_arr(state, "used_mark")?;
        if marks.len() != self.used_mark.len() {
            return Err(format!(
                "underload snapshot has {} cores, the machine has {}",
                marks.len(),
                self.used_mark.len()
            ));
        }
        for (slot, m) in self.used_mark.iter_mut().zip(marks) {
            *slot = if m.is_null() {
                None
            } else {
                Some(snap::elem_u64(m)? as usize)
            };
        }
        self.intervals = snap::get_arr(state, "intervals")?
            .iter()
            .map(|s| {
                Ok(IntervalStat {
                    cores_used: snap::get_u32(s, "cores_used")?,
                    max_runnable: snap::get_u32(s, "max_runnable")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        if self.cur_interval >= self.intervals.len() {
            return Err("underload snapshot's current interval is out of range".to_string());
        }
        Ok(())
    }
}

/// Collected underload data; obtain via [`UnderloadProbe::new`].
#[derive(Debug, Default)]
pub struct UnderloadData {
    /// One entry per 4 ms tick interval (the Figure 3 timeline).
    pub intervals: Vec<IntervalStat>,
    /// One entry per 1 s window (the Figure 4 metric).
    pub seconds: Vec<IntervalStat>,
    /// Total simulated duration observed.
    pub duration: Time,
}

impl UnderloadData {
    /// Sum of per-tick-interval underloads (timeline total).
    pub fn total_underload(&self) -> u64 {
        self.intervals.iter().map(|i| i.underload() as u64).sum()
    }

    /// The Figure 4 metric: underload accumulated by the 1-second
    /// windows, normalized by the run duration.
    pub fn underload_per_second(&self) -> f64 {
        let secs = self.duration.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        let total: u64 = self.seconds.iter().map(|i| i.underload() as u64).sum();
        total as f64 / secs
    }

    /// The underload timeline as `(seconds, underload)` pairs (Figure 3),
    /// at tick (4 ms) granularity.
    pub fn series(&self) -> Vec<(f64, u32)> {
        self.intervals
            .iter()
            .enumerate()
            .map(|(i, s)| ((i as u64 * TICK_NS) as f64 / 1e9, s.underload()))
            .collect()
    }
}

/// Probe computing underload from the trace stream.
pub struct UnderloadProbe {
    data: Rc<RefCell<UnderloadData>>,
    ticks: WindowTracker,
    seconds: WindowTracker,
    busy: Vec<bool>,
    cur_runnable: u32,
}

impl UnderloadProbe {
    /// Creates the probe and the shared handle its results land in.
    pub fn new(n_cores: usize) -> (UnderloadProbe, Rc<RefCell<UnderloadData>>) {
        let data = Rc::new(RefCell::new(UnderloadData::default()));
        (
            UnderloadProbe {
                data: Rc::clone(&data),
                ticks: WindowTracker::new(n_cores, TICK_NS),
                seconds: WindowTracker::new(n_cores, SEC),
                busy: vec![false; n_cores],
                cur_runnable: 0,
            },
            data,
        )
    }

    fn roll_to(&mut self, now: Time) {
        self.ticks.roll_to(now, &self.busy, self.cur_runnable);
        self.seconds.roll_to(now, &self.busy, self.cur_runnable);
    }
}

impl Probe for UnderloadProbe {
    fn on_event(&mut self, now: Time, event: &TraceEvent) {
        self.roll_to(now);
        match event {
            TraceEvent::RunStart { core, .. } => {
                self.busy[core.index()] = true;
                self.ticks.mark_used(core.index());
                self.seconds.mark_used(core.index());
            }
            TraceEvent::RunStop { core, .. } => {
                self.busy[core.index()] = false;
            }
            TraceEvent::RunnableCount { count } => {
                self.cur_runnable = *count;
                self.ticks.note_runnable(*count);
                self.seconds.note_runnable(*count);
            }
            _ => {}
        }
    }

    fn on_finish(&mut self, now: Time) {
        self.roll_to(now);
        let mut d = self.data.borrow_mut();
        d.intervals = std::mem::take(&mut self.ticks.intervals);
        d.seconds = std::mem::take(&mut self.seconds.intervals);
        d.duration = now;
    }

    fn snap(&self) -> Option<(&'static str, Json)> {
        Some((
            UNDERLOAD_PROBE_KIND,
            json::obj(vec![
                ("ticks", self.ticks.save()),
                ("seconds", self.seconds.save()),
                (
                    "busy",
                    Json::Arr(self.busy.iter().map(|&b| Json::Bool(b)).collect()),
                ),
                ("cur_runnable", Json::u64(self.cur_runnable as u64)),
            ]),
        ))
    }

    fn snap_restore(&mut self, state: &Json) -> Result<(), String> {
        self.ticks.load(snap::field(state, "ticks")?)?;
        self.seconds.load(snap::field(state, "seconds")?)?;
        let busy = snap::get_arr(state, "busy")?;
        if busy.len() != self.busy.len() {
            return Err(format!(
                "underload snapshot has {} cores, the machine has {}",
                busy.len(),
                self.busy.len()
            ));
        }
        for (slot, b) in self.busy.iter_mut().zip(busy) {
            *slot = b.as_bool().ok_or("busy entry is not a bool")?;
        }
        self.cur_runnable = snap::get_u32(state, "cur_runnable")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nest_simcore::{CoreId, TaskId};

    fn run_start(core: u32) -> TraceEvent {
        TraceEvent::RunStart {
            task: TaskId(0),
            core: CoreId(core),
        }
    }

    fn run_stop(core: u32) -> TraceEvent {
        TraceEvent::RunStop {
            task: TaskId(0),
            core: CoreId(core),
            reason: nest_simcore::StopReason::Block,
        }
    }

    #[test]
    fn no_activity_no_underload() {
        let (mut p, d) = UnderloadProbe::new(4);
        p.on_finish(Time::from_millis(40));
        assert_eq!(d.borrow().total_underload(), 0);
        assert_eq!(d.borrow().intervals.len(), 11);
        assert_eq!(d.borrow().underload_per_second(), 0.0);
    }

    #[test]
    fn serial_task_bouncing_cores_creates_underload() {
        let (mut p, d) = UnderloadProbe::new(8);
        // One runnable task hopping over 3 cores within one tick:
        // 3 used - 1 runnable = 2 underload in the tick timeline.
        p.on_event(Time::ZERO, &TraceEvent::RunnableCount { count: 1 });
        for (i, c) in [0u32, 1, 2].iter().enumerate() {
            let t = Time::from_nanos(i as u64 * 1_000_000);
            p.on_event(t, &run_start(*c));
            p.on_event(t + 500_000, &run_stop(*c));
        }
        p.on_finish(Time::from_nanos(TICK_NS));
        assert_eq!(d.borrow().total_underload(), 2);
        // The same 2 underload lands in the single 1-second window.
        let dref = d.borrow();
        assert_eq!(dref.seconds.len(), 1);
        assert_eq!(dref.seconds[0].underload(), 2);
    }

    #[test]
    fn per_second_windows_aggregate_tick_bounces() {
        let (mut p, d) = UnderloadProbe::new(16);
        p.on_event(Time::ZERO, &TraceEvent::RunnableCount { count: 1 });
        // The task visits one *new* core every 100 ms: tick intervals see
        // single-core usage (0 underload each), but the second window
        // sees 10 cores for 1 runnable → 9 underload per second.
        for i in 0..10u64 {
            let t = Time::from_nanos(i * 100 * 1_000_000);
            p.on_event(t, &run_start(i as u32));
            p.on_event(t + 50_000_000, &run_stop(i as u32));
        }
        p.on_finish(Time::from_secs(1));
        let dref = d.borrow();
        assert_eq!(dref.total_underload(), 0, "ticks see no bounce");
        assert!((dref.underload_per_second() - 9.0).abs() < 1e-9);
    }

    #[test]
    fn reuse_of_one_core_has_zero_underload() {
        let (mut p, d) = UnderloadProbe::new(8);
        p.on_event(Time::ZERO, &TraceEvent::RunnableCount { count: 1 });
        for i in 0..3u64 {
            let t = Time::from_nanos(i * 1_000_000);
            p.on_event(t, &run_start(0));
            p.on_event(t + 500_000, &run_stop(0));
        }
        p.on_finish(Time::from_nanos(TICK_NS));
        assert_eq!(d.borrow().total_underload(), 0);
        assert_eq!(d.borrow().underload_per_second(), 0.0);
    }

    #[test]
    fn parallel_tasks_are_not_underload() {
        let (mut p, d) = UnderloadProbe::new(8);
        p.on_event(Time::ZERO, &TraceEvent::RunnableCount { count: 4 });
        for c in 0..4u32 {
            p.on_event(Time::from_nanos(c as u64 * 1000), &run_start(c));
        }
        p.on_finish(Time::from_nanos(TICK_NS));
        assert_eq!(d.borrow().total_underload(), 0);
        assert_eq!(d.borrow().underload_per_second(), 0.0);
    }

    #[test]
    fn busy_core_spans_interval_boundary() {
        let (mut p, d) = UnderloadProbe::new(8);
        p.on_event(Time::ZERO, &TraceEvent::RunnableCount { count: 1 });
        p.on_event(Time::ZERO, &run_start(0));
        p.on_event(Time::from_nanos(TICK_NS + 1000), &run_start(1));
        p.on_finish(Time::from_nanos(2 * TICK_NS));
        let d = d.borrow();
        assert_eq!(d.intervals[0].underload(), 0);
        assert_eq!(d.intervals[1].cores_used, 2);
        assert_eq!(d.intervals[1].underload(), 1);
    }

    #[test]
    fn underload_per_second_normalizes_by_duration() {
        let (mut p, d) = UnderloadProbe::new(8);
        p.on_event(Time::ZERO, &TraceEvent::RunnableCount { count: 1 });
        p.on_event(Time::ZERO, &run_start(0));
        p.on_event(Time::from_nanos(1000), &run_stop(0));
        p.on_event(Time::from_nanos(2000), &run_start(1));
        p.on_event(Time::from_nanos(3000), &run_stop(1));
        p.on_finish(Time::from_secs(2));
        // 1 underload (in the first second window) over 2 seconds.
        assert!((d.borrow().underload_per_second() - 0.5).abs() < 1e-9);
    }
}
